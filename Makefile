GO ?= go

.PHONY: all build test race vet docs bench-smoke ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime, stream, wal and recovery packages carry the
# concurrency-sensitive code (event loop, delivery streams, flow-control
# wakeups, background WAL fsync, restart paths); the root package
# exercises the facade across all three drivers.
race:
	$(GO) test -race ./internal/runtime/... ./internal/stream/... ./internal/core/... ./internal/wal/... ./internal/recovery/... ./internal/transport/... .

vet:
	$(GO) vet ./...

# Benchmark smoke: compile and run every benchmark for exactly one
# iteration, plus one repetition of the abbench pipeline figure on the
# simulator, so benchmark code can no longer rot silently (it is not
# compiled by plain `go test`).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/abbench -fig pipeline -reps 1 -warmup 500ms -measure 1s

# Documentation gate: gofmt-clean tree, documented exported symbols in
# modab.go, package comments on every internal package, no broken local
# markdown links (mirrors the CI docs job).
docs:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) test -run 'TestExportedSymbolsDocumented|TestInternalPackagesHaveComments|TestMarkdownLinks' .

ci: build vet test race docs bench-smoke
