GO ?= go

.PHONY: all build test race vet ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime and stream packages carry the concurrency-sensitive code
# (event loop, delivery streams, flow-control wakeups); the root package
# exercises the facade across all three drivers.
race:
	$(GO) test -race ./internal/runtime/... ./internal/stream/... ./internal/core/... .

vet:
	$(GO) vet ./...

ci: build vet test race
