GO ?= go

.PHONY: all build test race vet docs bench-smoke test-chaos fuzz-smoke ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime, stream, wal, recovery, rsm, fd and obs packages carry the
# concurrency-sensitive code (event loop, delivery streams, flow-control
# wakeups, background WAL fsync, restart paths, applier/snapshot-store
# locking, heartbeat suspicion reporting, lock-free histograms scraped
# mid-run); member carries the view history consulted from driver
# callbacks; the root package exercises the facade — including dynamic
# membership — across all three drivers.
race:
	$(GO) test -race ./internal/runtime/... ./internal/stream/... ./internal/core/... ./internal/wal/... ./internal/recovery/... ./internal/rsm/... ./internal/transport/... ./internal/fd/... ./internal/obs/... ./internal/payload/... ./internal/member/... .

# Chaos soak: the fixed-seed short sweep of the fault-injection harness
# (six scenario families plus randomized schedules, both stacks, every
# atomic broadcast property checked per run) — bounded well under a
# minute so it can gate every push. The nightly-style deep sweep is the
# same target with CHAOS_SEEDS=200 (or any seed count).
test-chaos:
	$(GO) test ./internal/chaos -run 'TestChaosSeedSweep|TestChaosRandomSchedules' -count=1 -timeout 10m -v

vet:
	$(GO) vet ./...

# Fuzz smoke: a bounded run of each fuzz target on top of its checked-in
# seed corpus (testdata/fuzz/...). Plain `go test` already replays the
# seeds; this target actually mutates for a short budget so the corpus
# can grow when a new crasher appears.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzSnapshotOpen -fuzztime=30s ./internal/rsm

# Benchmark smoke: compile and run every benchmark for exactly one
# iteration, plus one repetition each of the abbench pipeline, KV,
# ring, digest and membership figures and one lifecycle-trace dump on
# the simulator, so benchmark and observability code can no longer rot
# silently (it is not compiled by plain `go test`).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/abbench -fig pipeline -reps 1 -warmup 500ms -measure 1s
	$(GO) run ./cmd/abbench -fig kv -reps 1 -warmup 500ms -measure 1s
	$(GO) run ./cmd/abbench -fig ring -reps 1 -warmup 500ms -measure 1s
	$(GO) run ./cmd/abbench -fig digest -reps 1 -warmup 500ms -measure 1s
	$(GO) run ./cmd/abbench -fig membership -reps 1 -warmup 500ms -measure 1s
	$(GO) run ./cmd/abbench -trace-sample 64

# Documentation gate: gofmt-clean tree, documented exported symbols in
# modab.go, package comments on every internal package, no broken local
# markdown links (mirrors the CI docs job).
docs:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) test -run 'TestExportedSymbolsDocumented|TestInternalPackagesHaveComments|TestMarkdownLinks' .

ci: build vet test race docs bench-smoke test-chaos
