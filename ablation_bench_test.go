// Ablation benchmarks: design choices docs/ARCHITECTURE.md calls out, measured the
// same way as the main figures.
//
//   - BenchmarkAblationRBcastMode — §3.1's majority-relay optimization
//     vs. the classical ≈n² reliable broadcast in the modular stack.
//   - BenchmarkAblationWindow — the flow-control window (hence M, the
//     batch size) around the paper's claim that M ≈ 4 "optimizes
//     performance of both stacks".
//   - BenchmarkAblationDispatchCost — sensitivity of the modularity gap
//     to the per-dispatch (framework) cost, isolating how much of the
//     overhead is event routing vs. extra network messages.
package modab_test

import (
	"fmt"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/types"
)

// ablationPoint runs one simulated point with a custom engine config and
// cost model.
func ablationPoint(b *testing.B, stk types.Stack, cfg engine.Config, model netsim.CostModel) {
	b.Helper()
	var lat, thr, m float64
	for i := 0; i < b.N; i++ {
		lc, err := netsim.NewLoadedCluster(
			netsim.Options{N: cfg.N, Stack: stk, Seed: 42 + int64(i), Engine: cfg, Model: model},
			netsim.Workload{OfferedLoad: 4000, Size: 16384},
			time.Second, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		lc.Run(4 * time.Second)
		if errs := lc.Errs(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		lat = lc.Recorder.MeanLatency() * 1e3
		thr = lc.Recorder.Throughput()
		m = lc.TotalCounters().AvgBatch()
	}
	b.ReportMetric(lat, "ms-latency")
	b.ReportMetric(thr, "msgs/s")
	b.ReportMetric(m, "M")
}

func BenchmarkAblationRBcastMode(b *testing.B) {
	for _, classic := range []bool{false, true} {
		name := "majority"
		if classic {
			name = "classic"
		}
		for _, n := range []int{3, 7} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				cfg := engine.DefaultConfig(n)
				cfg.ClassicRBcast = classic
				ablationPoint(b, types.Modular, cfg, netsim.DefaultModel())
			})
		}
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		for _, window := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/window=%d", stk, window), func(b *testing.B) {
				cfg := engine.DefaultConfig(3)
				cfg.Window = window
				ablationPoint(b, stk, cfg, netsim.DefaultModel())
			})
		}
	}
}

func BenchmarkAblationDispatchCost(b *testing.B) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		for _, mult := range []int{0, 1, 4} {
			b.Run(fmt.Sprintf("%s/dispatchx%d", stk, mult), func(b *testing.B) {
				model := netsim.DefaultModel()
				model.PerDispatch *= time.Duration(mult)
				ablationPoint(b, stk, engine.DefaultConfig(3), model)
			})
		}
	}
}
