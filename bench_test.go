// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see EXPERIMENTS.md for the recorded series and cmd/abbench for the full
// sweeps):
//
//	A1/A2 (§5.2)  BenchmarkAnalytical*   closed forms + simulated counters
//	Figure 8      BenchmarkFig08*        early latency vs offered load
//	Figure 9      BenchmarkFig09*        early latency vs message size
//	Figure 10     BenchmarkFig10*        throughput vs offered load
//	Figure 11     BenchmarkFig11*        throughput vs message size
//
// Each benchmark iteration simulates one measured point and reports the
// paper's metric via b.ReportMetric (ms-latency or msgs/s), so `go test
// -bench` prints the reproduced series shape directly.
package modab_test

import (
	"fmt"
	"testing"
	"time"

	"modab/internal/analytical"
	"modab/internal/benchharness"
	"modab/internal/netsim"
	"modab/internal/types"
)

// benchOpts are deliberately short: benches report shape, cmd/abbench
// produces the full-resolution figures.
func benchOpts() benchharness.RunOptions {
	return benchharness.RunOptions{
		Warmup:      500 * time.Millisecond,
		Measure:     1500 * time.Millisecond,
		Repetitions: 1,
		Seed:        42,
	}
}

// benchPoint measures one configuration per iteration and reports the
// relevant metrics.
func benchPoint(b *testing.B, n int, stk types.Stack, load float64, size int) {
	b.Helper()
	var last benchharness.Point
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Seed += int64(i)
		p, err := benchharness.RunPoint(n, stk, load, size, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = p
	}
	b.ReportMetric(last.LatencyMs, "ms-latency")
	b.ReportMetric(last.Throughput, "msgs/s")
	b.ReportMetric(last.M, "M")
	b.ReportMetric(last.MsgsPerDec, "msgs/decision")
}

// --- A1/A2: §5.2 analytical model ---------------------------------------

// BenchmarkAnalyticalMessageCounts evaluates the closed forms (A1) — and,
// once per run, cross-checks them against simulated counters.
func BenchmarkAnalyticalMessageCounts(b *testing.B) {
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{3, 7} {
			sink += analytical.ModularMessages(n, 4) + analytical.MonolithicMessages(n)
		}
	}
	if sink == 0 {
		b.Fatal("unreachable")
	}
	b.ReportMetric(float64(analytical.ModularMessages(3, 4)), "modular-n3")
	b.ReportMetric(float64(analytical.MonolithicMessages(3)), "mono-n3")
	b.ReportMetric(float64(analytical.ModularMessages(7, 4)), "modular-n7")
	b.ReportMetric(float64(analytical.MonolithicMessages(7)), "mono-n7")
}

// BenchmarkAnalyticalDataVolume evaluates A2 and reports the modularity
// overhead ratios the paper quotes (50% at n=3, 75% at n=7).
func BenchmarkAnalyticalDataVolume(b *testing.B) {
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{3, 7} {
			sink += analytical.ModularData(n, 4, 16384) + analytical.MonolithicData(n, 4, 16384)
		}
	}
	if sink == 0 {
		b.Fatal("unreachable")
	}
	b.ReportMetric(analytical.Overhead(3)*100, "overhead%-n3")
	b.ReportMetric(analytical.Overhead(7)*100, "overhead%-n7")
}

// --- Figures 8 and 10: load sweeps at 16384 bytes ------------------------

func BenchmarkFig08LatencyVsLoad(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Monolithic, types.Modular} {
			for _, load := range []float64{500, 2000, 7000} {
				b.Run(fmt.Sprintf("n=%d/%s/load=%.0f", n, stk, load), func(b *testing.B) {
					benchPoint(b, n, stk, load, 16384)
				})
			}
		}
	}
}

func BenchmarkFig10ThroughputVsLoad(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Monolithic, types.Modular} {
			for _, load := range []float64{500, 2000, 7000} {
				b.Run(fmt.Sprintf("n=%d/%s/load=%.0f", n, stk, load), func(b *testing.B) {
					benchPoint(b, n, stk, load, 16384)
				})
			}
		}
	}
}

// --- Figures 9 and 11: size sweeps at 2000 msgs/s ------------------------

func BenchmarkFig09LatencyVsSize(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Monolithic, types.Modular} {
			for _, size := range []int{64, 1024, 16384, 32768} {
				b.Run(fmt.Sprintf("n=%d/%s/size=%d", n, stk, size), func(b *testing.B) {
					benchPoint(b, n, stk, 2000, size)
				})
			}
		}
	}
}

func BenchmarkFig11ThroughputVsSize(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Monolithic, types.Modular} {
			for _, size := range []int{64, 1024, 16384, 32768} {
				b.Run(fmt.Sprintf("n=%d/%s/size=%d", n, stk, size), func(b *testing.B) {
					benchPoint(b, n, stk, 2000, size)
				})
			}
		}
	}
}

// --- Microbenchmarks: the mechanisms under the figures -------------------

// BenchmarkSimThroughput measures simulator event-processing speed (wall
// time per simulated second under saturation) — the cost of regenerating
// the figures themselves.
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lc, err := netsim.NewLoadedCluster(
			netsim.Options{N: 3, Stack: types.Monolithic, Seed: int64(i)},
			netsim.Workload{OfferedLoad: 2000, Size: 16384},
			200*time.Millisecond, 800*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		lc.Run(time.Second)
	}
}
