// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see docs/BENCHMARKS.md for recorded runs and cmd/abbench for the full
// sweeps):
//
//	A1/A2 (§5.2)  BenchmarkAnalytical*   closed forms + simulated counters
//	Figure 8      BenchmarkFig08*        early latency vs offered load
//	Figure 9      BenchmarkFig09*        early latency vs message size
//	Figure 10     BenchmarkFig10*        throughput vs offered load
//	Figure 11     BenchmarkFig11*        throughput vs message size
//
// Each benchmark iteration simulates one measured point and reports the
// paper's metric via b.ReportMetric (ms-latency or msgs/s), so `go test
// -bench` prints the reproduced series shape directly.
package modab_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"modab"
	"modab/internal/analytical"
	"modab/internal/benchharness"
	"modab/internal/netsim"
	"modab/internal/types"
)

// benchOpts are deliberately short: benches report shape, cmd/abbench
// produces the full-resolution figures.
func benchOpts() benchharness.RunOptions {
	return benchharness.RunOptions{
		Warmup:      500 * time.Millisecond,
		Measure:     1500 * time.Millisecond,
		Repetitions: 1,
		Seed:        42,
	}
}

// benchPoint measures one configuration per iteration and reports the
// relevant metrics.
func benchPoint(b *testing.B, n int, stk types.Stack, load float64, size int) {
	b.Helper()
	var last benchharness.Point
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Seed += int64(i)
		p, err := benchharness.RunPoint(n, stk, load, size, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = p
	}
	b.ReportMetric(last.LatencyMs, "ms-latency")
	b.ReportMetric(last.Throughput, "msgs/s")
	b.ReportMetric(last.M, "M")
	b.ReportMetric(last.MsgsPerDec, "msgs/decision")
}

// --- A1/A2: §5.2 analytical model ---------------------------------------

// BenchmarkAnalyticalMessageCounts evaluates the closed forms (A1) — and,
// once per run, cross-checks them against simulated counters.
func BenchmarkAnalyticalMessageCounts(b *testing.B) {
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{3, 7} {
			sink += analytical.ModularMessages(n, 4) + analytical.MonolithicMessages(n)
		}
	}
	if sink == 0 {
		b.Fatal("unreachable")
	}
	b.ReportMetric(float64(analytical.ModularMessages(3, 4)), "modular-n3")
	b.ReportMetric(float64(analytical.MonolithicMessages(3)), "mono-n3")
	b.ReportMetric(float64(analytical.ModularMessages(7, 4)), "modular-n7")
	b.ReportMetric(float64(analytical.MonolithicMessages(7)), "mono-n7")
}

// BenchmarkAnalyticalDataVolume evaluates A2 and reports the modularity
// overhead ratios the paper quotes (50% at n=3, 75% at n=7).
func BenchmarkAnalyticalDataVolume(b *testing.B) {
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{3, 7} {
			sink += analytical.ModularData(n, 4, 16384) + analytical.MonolithicData(n, 4, 16384)
		}
	}
	if sink == 0 {
		b.Fatal("unreachable")
	}
	b.ReportMetric(analytical.Overhead(3)*100, "overhead%-n3")
	b.ReportMetric(analytical.Overhead(7)*100, "overhead%-n7")
}

// --- Figures 8 and 10: load sweeps at 16384 bytes ------------------------

func BenchmarkFig08LatencyVsLoad(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Monolithic, types.Modular} {
			for _, load := range []float64{500, 2000, 7000} {
				b.Run(fmt.Sprintf("n=%d/%s/load=%.0f", n, stk, load), func(b *testing.B) {
					benchPoint(b, n, stk, load, 16384)
				})
			}
		}
	}
}

func BenchmarkFig10ThroughputVsLoad(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Monolithic, types.Modular} {
			for _, load := range []float64{500, 2000, 7000} {
				b.Run(fmt.Sprintf("n=%d/%s/load=%.0f", n, stk, load), func(b *testing.B) {
					benchPoint(b, n, stk, load, 16384)
				})
			}
		}
	}
}

// --- Figures 9 and 11: size sweeps at 2000 msgs/s ------------------------

func BenchmarkFig09LatencyVsSize(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Monolithic, types.Modular} {
			for _, size := range []int{64, 1024, 16384, 32768} {
				b.Run(fmt.Sprintf("n=%d/%s/size=%d", n, stk, size), func(b *testing.B) {
					benchPoint(b, n, stk, 2000, size)
				})
			}
		}
	}
}

func BenchmarkFig11ThroughputVsSize(b *testing.B) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Monolithic, types.Modular} {
			for _, size := range []int{64, 1024, 16384, 32768} {
				b.Run(fmt.Sprintf("n=%d/%s/size=%d", n, stk, size), func(b *testing.B) {
					benchPoint(b, n, stk, 2000, size)
				})
			}
		}
	}
}

// --- Sender-side batching: amortizing the cost of modularity -------------

// BenchmarkBatchingAmortization measures the throughput of the modular
// stack at a 10-process, 64-byte-payload, saturating-load setting on the
// calibrated simulator — the same measurement methodology as the paper's
// figures — with and without sender-side batching. Both modes run the
// identical flow-control window (64 per process), so the difference is
// pure amortization, not admission capacity. The reported msgs/s is the
// paper's T; on this configuration batching sustains well over 2x the
// unbatched throughput, because the fixed per-frame costs (diffusion
// sends, receive handling, layer dispatches) amortize over msgs/batch
// messages. hdrB/msg shows the protocol overhead per application message
// shrinking accordingly.
func BenchmarkBatchingAmortization(b *testing.B) {
	pinned := func() benchharness.RunOptions {
		o := benchOpts()
		o.Window = 64 // identical admission capacity in both modes
		return o
	}
	modes := []struct {
		name  string
		batch benchharness.RunOptions
	}{
		{"unbatched", pinned()},
		{"batched", func() benchharness.RunOptions {
			o := pinned()
			o.Batch.MaxMsgs = 32
			o.Batch.MaxDelay = 2 * time.Millisecond
			return o
		}()},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var last benchharness.Point
			for i := 0; i < b.N; i++ {
				opts := mode.batch
				opts.Seed += int64(i)
				p, err := benchharness.RunPoint(10, types.Modular, 20000, 64, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = p
			}
			b.ReportMetric(last.Throughput, "msgs/s")
			b.ReportMetric(last.MsgsPerBat, "msgs/batch")
			b.ReportMetric(last.HeaderPerMsg, "hdrB/msg")
		})
	}
}

// BenchmarkBatchingRealtimeInMemory is the real-time companion: the same
// 10-process modular group over the in-memory driver. Gains are smaller
// than in the calibrated simulation because goroutine scheduling and
// channel hops — identical in both modes — dominate the in-process
// driver; the wire-level amortization still shows as ~1.4x.
func BenchmarkBatchingRealtimeInMemory(b *testing.B) {
	modes := []struct {
		name string
		opts []modab.Option
	}{
		{"unbatched", nil},
		{"batched", []modab.Option{modab.WithBatching(32, 0, 2*time.Millisecond)}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			benchClusterThroughput(b, mode.opts...)
		})
	}
}

// benchClusterThroughput drives b.N messages through a 10-process modular
// in-memory cluster (round-robin senders, 64-byte payloads) and waits for
// full delivery.
func benchClusterThroughput(b *testing.B, extra ...modab.Option) {
	b.Helper()
	const n = 10
	cfg := modab.DefaultConfig(n)
	cfg.Window = 64 // identical admission capacity in both modes
	opts := append([]modab.Option{modab.WithConfig(cfg)}, extra...)
	cluster, err := modab.New(n, modab.Modular, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	body := make([]byte, 64)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	perProc := (b.N + n - 1) / n
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if _, err := cluster.Abcast(ctx, p, body); err != nil {
					b.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	want := int64(perProc * n * n) // every message adelivered at every process
	for cluster.Stats().Total.ADeliver < want {
		if ctx.Err() != nil {
			b.Fatal("timed out waiting for deliveries")
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	elapsed := time.Since(start).Seconds()
	b.ReportMetric(float64(perProc*n)/elapsed, "msgs/s")
	if mb := cluster.Stats().Total.MsgsPerSenderBatch(); mb > 0 {
		b.ReportMetric(mb, "msgs/batch")
	}
}

// --- Microbenchmarks: the mechanisms under the figures -------------------

// BenchmarkSimThroughput measures simulator event-processing speed (wall
// time per simulated second under saturation) — the cost of regenerating
// the figures themselves.
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lc, err := netsim.NewLoadedCluster(
			netsim.Options{N: 3, Stack: types.Monolithic, Seed: int64(i)},
			netsim.Workload{OfferedLoad: 2000, Size: 16384},
			200*time.Millisecond, 800*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		lc.Run(time.Second)
	}
}
