// Command abanalytic prints the closed-form §5.2 model of "On the Cost
// of Modularity in Atomic Broadcast" for arbitrary parameters: messages
// and payload bytes sent per consensus execution by each stack, and the
// modularity overhead (n-1)/(n+1).
//
// Usage:
//
//	abanalytic                 # the paper's table (n up to 9, M=4, l=16384)
//	abanalytic -n 5 -m 8 -l 1024
package main

import (
	"flag"
	"fmt"
	"os"

	"modab/internal/analytical"
)

func main() {
	var (
		nFlag = flag.Int("n", 0, "single group size (0 = table for n=2..9)")
		m     = flag.Int("m", 4, "messages ordered per consensus (the paper's M)")
		l     = flag.Int("l", 16384, "payload size in bytes (the paper's l)")
	)
	flag.Parse()

	sizes := []int{2, 3, 4, 5, 6, 7, 8, 9}
	if *nFlag > 1 {
		sizes = []int{*nFlag}
	}

	w := os.Stdout
	fmt.Fprintf(w, "Analytical model (§5.2), M=%d, l=%d bytes\n\n", *m, *l)
	fmt.Fprintf(w, "%-4s %14s %14s %14s %14s %10s\n",
		"n", "msgs modular", "msgs mono", "bytes modular", "bytes mono", "overhead")
	for _, n := range sizes {
		fmt.Fprintf(w, "%-4d %14d %14d %14d %14d %9.0f%%\n",
			n,
			analytical.ModularMessages(n, *m),
			analytical.MonolithicMessages(n),
			analytical.ModularData(n, *m, *l),
			analytical.MonolithicData(n, *m, *l),
			analytical.Overhead(n)*100,
		)
	}
	fmt.Fprintf(w, "\nReliable broadcast cost per rbcast: majority-optimized (n-1)·⌊(n+1)/2⌋, classic (n-1)·n\n")
	fmt.Fprintf(w, "%-4s %14s %14s\n", "n", "majority", "classic")
	for _, n := range sizes {
		fmt.Fprintf(w, "%-4d %14d %14d\n", n,
			analytical.RBcastMessages(n), analytical.ClassicRBcastMessages(n))
	}
}
