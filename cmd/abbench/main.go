// Command abbench regenerates the evaluation of "On the Cost of
// Modularity in Atomic Broadcast" (DSN 2007): Figures 8-11 as parameter
// sweeps over the deterministic simulator, plus the §5.2 analytical
// tables.
//
// Usage:
//
//	abbench -fig all                # every figure (several minutes)
//	abbench -fig 8                  # one figure
//	abbench -analytical             # §5.2 closed-form tables only
//	abbench -fig 10 -reps 5 -measure 8s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"modab/internal/benchharness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig        = flag.String("fig", "all", `figure to regenerate: "8", "9", "10", "11" or "all"`)
		analytical = flag.Bool("analytical", false, "print the §5.2 analytical tables and exit")
		reps       = flag.Int("reps", 3, "repetitions per point (95% CIs are computed across them)")
		warmup     = flag.Duration("warmup", 2*time.Second, "virtual warm-up before measuring")
		measure    = flag.Duration("measure", 4*time.Second, "virtual measurement window")
		seed       = flag.Int64("seed", 42, "base simulation seed")
	)
	flag.Parse()

	if *analytical {
		benchharness.RenderAnalytical(os.Stdout, 4, 16384)
		return nil
	}

	opts := benchharness.RunOptions{
		Warmup:      *warmup,
		Measure:     *measure,
		Repetitions: *reps,
		Seed:        *seed,
	}
	type gen func(benchharness.RunOptions) (benchharness.Figure, error)
	figures := map[string]gen{
		"8":  benchharness.Fig8,
		"9":  benchharness.Fig9,
		"10": benchharness.Fig10,
		"11": benchharness.Fig11,
	}
	order := []string{"8", "9", "10", "11"}

	benchharness.RenderAnalytical(os.Stdout, 4, 16384)
	for _, id := range order {
		if *fig != "all" && *fig != id {
			continue
		}
		f, err := figures[id](opts)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		benchharness.Render(os.Stdout, f)
	}
	return nil
}
