// Command abbench regenerates the evaluation of "On the Cost of
// Modularity in Atomic Broadcast" (DSN 2007): Figures 8-11 as parameter
// sweeps over the deterministic simulator, plus the §5.2 analytical
// tables.
//
// Usage:
//
//	abbench -fig all                # every figure (several minutes)
//	abbench -fig 8                  # one figure
//	abbench -analytical             # §5.2 closed-form tables only
//	abbench -fig 10 -reps 5 -measure 8s
//	abbench -fig 11 -batch-msgs 32  # sender-side batching enabled
//
// With -batch-msgs >= 1 every measured engine runs sender-side batching
// (see modab.WithBatching); the msgs/batch and hdrB/msg columns then show
// how amortization closes the modular-vs-monolithic overhead gap.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"modab/internal/batch"
	"modab/internal/benchharness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig        = flag.String("fig", "all", `figure to regenerate: "8", "9", "10", "11" or "all"`)
		analytical = flag.Bool("analytical", false, "print the §5.2 analytical tables and exit")
		reps       = flag.Int("reps", 3, "repetitions per point (95% CIs are computed across them)")
		warmup     = flag.Duration("warmup", 2*time.Second, "virtual warm-up before measuring")
		measure    = flag.Duration("measure", 4*time.Second, "virtual measurement window")
		seed       = flag.Int64("seed", 42, "base simulation seed")
		batchMsgs  = flag.Int("batch-msgs", 0, "sender-side batching: messages per batch (0 = disabled)")
		batchBytes = flag.Int("batch-bytes", 0, "sender-side batching: encoded bytes per batch (0 = no byte cap)")
		batchDelay = flag.Duration("batch-delay", 2*time.Millisecond, "sender-side batching: flush delay for undersized batches")
	)
	flag.Parse()

	if *analytical {
		benchharness.RenderAnalytical(os.Stdout, 4, 16384)
		return nil
	}

	opts := benchharness.RunOptions{
		Warmup:      *warmup,
		Measure:     *measure,
		Repetitions: *reps,
		Seed:        *seed,
		Batch:       batch.Config{MaxMsgs: *batchMsgs, MaxBytes: *batchBytes, MaxDelay: *batchDelay},
	}
	if err := opts.Batch.Validate(); err != nil {
		return err
	}
	type gen func(benchharness.RunOptions) (benchharness.Figure, error)
	figures := map[string]gen{
		"8":  benchharness.Fig8,
		"9":  benchharness.Fig9,
		"10": benchharness.Fig10,
		"11": benchharness.Fig11,
	}
	order := []string{"8", "9", "10", "11"}

	benchharness.RenderAnalytical(os.Stdout, 4, 16384)
	for _, id := range order {
		if *fig != "all" && *fig != id {
			continue
		}
		f, err := figures[id](opts)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		benchharness.Render(os.Stdout, f)
	}
	return nil
}
