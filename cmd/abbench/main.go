// Command abbench regenerates the evaluation of "On the Cost of
// Modularity in Atomic Broadcast" (DSN 2007): Figures 8-11 as parameter
// sweeps over the deterministic simulator, plus the §5.2 analytical
// tables.
//
// Usage:
//
//	abbench -fig all                # every figure (several minutes)
//	abbench -fig 8                  # one figure
//	abbench -fig recovery           # crash-recovery cost comparison
//	abbench -fig pipeline           # consensus pipelining sweep (W = 1..16)
//	abbench -fig chaos              # property-checked fault-schedule soak
//	abbench -fig kv                 # replicated KV service: ops/s + submit→applied
//	abbench -fig ring               # dissemination topology: all-to-all vs ring relay
//	abbench -fig digest             # digest ordering: payload vs descriptor consensus
//	abbench -fig membership         # dynamic membership: rolling replace under load
//	abbench -analytical             # §5.2 closed-form tables only
//	abbench -fig 10 -reps 5 -measure 8s
//	abbench -fig 11 -batch-msgs 32  # sender-side batching enabled
//	abbench -fig 10 -pipeline 8     # 8 instances in flight in every engine
//	abbench -fig all -json BENCH_$(date +%Y%m%d).json
//
// With -batch-msgs >= 1 every measured engine runs sender-side batching
// (see modab.WithBatching); the msgs/batch and hdrB/msg columns then show
// how amortization closes the modular-vs-monolithic overhead gap. With
// -pipeline >= 2 every measured engine keeps that many consensus
// instances in flight (see modab.WithPipelining).
//
// -fig recovery runs the scenario the paper never covered: a node of a
// loaded, durable cluster crashes and restarts, and the table compares
// what recovery costs each stack (replayed and fetched messages, catch-up
// latency). -fig pipeline sweeps the pipeline window W over both stacks
// at n=3/64 B saturating load on the metro cost model (modern CPUs, 1 ms
// links — the latency-bound regime pipelining reclaims), with throughput
// and adeliver-latency columns per depth. -fig chaos runs seeded
// randomized fault schedules (partitions, lossy links, wrong suspicions,
// crash+restart) through internal/chaos with every atomic broadcast
// property checked per run, and tables the injected fault volume against
// each stack's repair cost; any property violation fails the run.
// -fig kv measures the replicated key/value service end to end: applied
// ops/s and the submit→applied latency distribution (mean and p99) each
// stack's ordering layer puts in front of the state machine, with
// snapshotting and WAL truncation active.
// -fig ring sweeps both stacks under both dissemination topologies
// (all-to-all vs ring relay, see modab.WithDissemination) over growing
// group sizes with large payloads at saturating load on the metro model,
// with per-process egress-bytes columns — the coordinator-NIC bottleneck
// experiment. -dissem ring retargets the standard figures instead.
// -fig digest sweeps both stacks with digest ordering off and on (n=5,
// 64 B messages, 1000-message sender batches, saturating load on a
// payload-bound model), with ordering-path vs dissemination-path bytes
// per message — the split that stops consensus traffic from scaling with
// payload size (see modab.WithDigestOrdering). -digest retargets the
// standard figures instead.
// -fig membership measures dynamic membership end to end: a 3-process
// cluster under load rolling-replaces its entire boot group (join a
// fresh process, let it catch up through state transfer, retire an old
// one — three times inside the measurement window, every config change
// riding the total order), and the table compares the ordered-throughput
// dip against a steady-membership control run plus each joiner's
// catch-up latency per stack.
// -trace-sample k dumps the observability layer's sampled message
// lifecycle timelines instead of a figure: a short run of each stack with
// 1-in-k tracing, printing each sampled message's stage history
// (accept → seal → propose → decide → adeliver → apply) in virtual time —
// deterministic for a given -seed.
// -json additionally writes every
// produced figure as a machine-readable report (schema modab-bench/v4)
// for performance trajectory tracking.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"modab/internal/batch"
	"modab/internal/benchharness"
	"modab/internal/dissem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig        = flag.String("fig", "all", `figure to regenerate: "8", "9", "10", "11", "recovery", "pipeline", "chaos", "kv", "ring", "digest", "membership" or "all"`)
		analytical = flag.Bool("analytical", false, "print the §5.2 analytical tables and exit")
		reps       = flag.Int("reps", 3, "repetitions per point (95% CIs are computed across them)")
		warmup     = flag.Duration("warmup", 2*time.Second, "virtual warm-up before measuring")
		measure    = flag.Duration("measure", 4*time.Second, "virtual measurement window")
		seed       = flag.Int64("seed", 42, "base simulation seed")
		batchMsgs  = flag.Int("batch-msgs", 0, "sender-side batching: messages per batch (0 = disabled)")
		batchBytes = flag.Int("batch-bytes", 0, "sender-side batching: encoded bytes per batch (0 = no byte cap)")
		batchDelay = flag.Duration("batch-delay", 2*time.Millisecond, "sender-side batching: flush delay for undersized batches")
		pipeline   = flag.Int("pipeline", 0, "consensus pipeline window W for the standard figures (0/1 = sequential)")
		dissemArg  = flag.String("dissem", "", `payload dissemination for the standard figures: "all-to-all" (default) or "ring"`)
		digest     = flag.Bool("digest", false, "digest ordering for the standard figures: disseminate payloads once, order descriptors")
		jsonPath   = flag.String("json", "", "also write the produced figures as a machine-readable report to this path")
		traceK     = flag.Uint64("trace-sample", 0, "dump sampled message lifecycle timelines (1 in k messages) from a short run of each stack and exit; k=1 traces everything")
	)
	flag.Parse()

	if *analytical {
		benchharness.RenderAnalytical(os.Stdout, 4, 16384)
		return nil
	}

	dissemStrategy, err := dissem.ParseStrategy(*dissemArg)
	if err != nil {
		return fmt.Errorf("-dissem %q: %w", *dissemArg, err)
	}
	opts := benchharness.RunOptions{
		Warmup:        *warmup,
		Measure:       *measure,
		Repetitions:   *reps,
		Seed:          *seed,
		Batch:         batch.Config{MaxMsgs: *batchMsgs, MaxBytes: *batchBytes, MaxDelay: *batchDelay},
		Pipeline:      *pipeline,
		Dissemination: dissemStrategy,
		Digest:        *digest,
	}
	if err := opts.Batch.Validate(); err != nil {
		return err
	}
	if *traceK > 0 {
		for _, stk := range benchharness.Stacks {
			ts, err := benchharness.RunTraceSample(stk, *traceK, opts)
			if err != nil {
				return fmt.Errorf("trace sample (%s): %w", stk, err)
			}
			benchharness.RenderTraceSample(os.Stdout, ts)
		}
		return nil
	}
	type gen func(benchharness.RunOptions) (benchharness.Figure, error)
	figures := map[string]gen{
		"8":  benchharness.Fig8,
		"9":  benchharness.Fig9,
		"10": benchharness.Fig10,
		"11": benchharness.Fig11,
	}
	order := []string{"8", "9", "10", "11"}

	benchharness.RenderAnalytical(os.Stdout, 4, 16384)
	var produced []benchharness.Figure
	for _, id := range order {
		if *fig != "all" && *fig != id {
			continue
		}
		f, err := figures[id](opts)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		benchharness.Render(os.Stdout, f)
		produced = append(produced, f)
	}
	var recFig *benchharness.RecoveryFigure
	if *fig == "all" || *fig == "recovery" {
		rf, err := benchharness.FigRecovery(opts)
		if err != nil {
			return fmt.Errorf("figure recovery: %w", err)
		}
		benchharness.RenderRecovery(os.Stdout, rf)
		recFig = &rf
	}
	var pipeFig *benchharness.PipelineFigure
	if *fig == "all" || *fig == "pipeline" {
		pf, err := benchharness.FigPipeline(opts)
		if err != nil {
			return fmt.Errorf("figure pipeline: %w", err)
		}
		benchharness.RenderPipeline(os.Stdout, pf)
		pipeFig = &pf
	}
	var chaosFig *benchharness.ChaosFigure
	if *fig == "all" || *fig == "chaos" {
		cf, err := benchharness.FigChaos(opts)
		if err != nil {
			return fmt.Errorf("figure chaos: %w", err)
		}
		benchharness.RenderChaos(os.Stdout, cf)
		chaosFig = &cf
	}
	var kvFig *benchharness.KVFigure
	if *fig == "all" || *fig == "kv" {
		kf, err := benchharness.FigKV(opts)
		if err != nil {
			return fmt.Errorf("figure kv: %w", err)
		}
		benchharness.RenderKV(os.Stdout, kf)
		kvFig = &kf
	}
	var ringFig *benchharness.RingFigure
	if *fig == "all" || *fig == "ring" {
		rf, err := benchharness.FigRing(opts)
		if err != nil {
			return fmt.Errorf("figure ring: %w", err)
		}
		benchharness.RenderRing(os.Stdout, rf)
		ringFig = &rf
	}
	var digFig *benchharness.DigestFigure
	if *fig == "all" || *fig == "digest" {
		df, err := benchharness.FigDigest(opts)
		if err != nil {
			return fmt.Errorf("figure digest: %w", err)
		}
		benchharness.RenderDigest(os.Stdout, df)
		digFig = &df
	}
	var memFig *benchharness.MembershipFigure
	if *fig == "all" || *fig == "membership" {
		mf, err := benchharness.FigMembership(opts)
		if err != nil {
			return fmt.Errorf("figure membership: %w", err)
		}
		benchharness.RenderMembership(os.Stdout, mf)
		memFig = &mf
	}
	if *jsonPath != "" {
		if err := benchharness.WriteJSON(*jsonPath, benchharness.NewReport(opts, produced, recFig, pipeFig, chaosFig, kvFig, ringFig, digFig, memFig)); err != nil {
			return err
		}
		fmt.Printf("machine-readable report written to %s\n", *jsonPath)
	}
	return nil
}
