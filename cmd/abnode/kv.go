package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"modab"
)

// kvServer exposes the replicated KV state machine over HTTP. Every
// mutation — and by default every read — is routed through Abcast, so a
// response reflects the command's position in the total order; the
// handler blocks on the local applier's Await for read-your-writes.
//
//	GET    /kv/<key>          ordered (linearizable) read
//	GET    /kv/<key>?local=1  local replica read (may lag the order)
//	PUT    /kv/<key>          set key to the request body
//	PUT    /kv/<key>          with If-Match: <old> — compare-and-swap
//	DELETE /kv/<key>          remove the key
//
// Status mapping: 200 with the value (gets), 204 (put/delete/CAS ok),
// 404 (missing key), 412 (CAS expectation failed), 504 (apply wait
// timed out).
type kvServer struct {
	cluster *modab.Cluster
	self    int
	local   *modab.KV
}

// startKVServer listens on addr and serves the KV API until the
// returned server is closed.
func startKVServer(addr string, cluster *modab.Cluster, self int, local *modab.KV) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: &kvServer{cluster: cluster, self: self, local: local}}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

func (s *kvServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key, ok := strings.CutPrefix(r.URL.Path, "/kv/")
	if !ok || key == "" {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet:
		if r.URL.Query().Get("local") != "" {
			v, ok := s.local.Get([]byte(key))
			if !ok {
				http.Error(w, "key not found", http.StatusNotFound)
				return
			}
			_, _ = w.Write(v)
			return
		}
		s.order(w, r, modab.KVGet([]byte(key)))
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if old, casReq := r.Header["If-Match"]; casReq && len(old) > 0 {
			s.order(w, r, modab.KVCAS([]byte(key), []byte(old[0]), body))
			return
		}
		s.order(w, r, modab.KVPut([]byte(key), body))
	case http.MethodDelete:
		s.order(w, r, modab.KVDelete([]byte(key)))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// order abcasts one KV command and waits for the local replica to apply
// it before answering.
func (s *kvServer) order(w http.ResponseWriter, r *http.Request, cmd []byte) {
	ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
	defer cancel()
	id, err := s.cluster.Abcast(ctx, s.self, cmd)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	select {
	case res := <-s.cluster.Applier(s.self).Await(id):
		if res == nil {
			// Applied, but the result left the bounded history before the
			// wait was registered (or arrived inside an installed snapshot).
			http.Error(w, "applied; result no longer available", http.StatusInternalServerError)
			return
		}
		st, val := modab.DecodeKVResult(res)
		switch st {
		case modab.KVStatusOK:
			if len(val) > 0 {
				_, _ = w.Write(val)
			} else {
				w.WriteHeader(http.StatusNoContent)
			}
		case modab.KVStatusMissing:
			http.Error(w, "key not found", http.StatusNotFound)
		case modab.KVStatusCASFailed:
			http.Error(w, "compare-and-swap failed", http.StatusPreconditionFailed)
		default:
			http.Error(w, "bad command", http.StatusBadRequest)
		}
	case <-ctx.Done():
		http.Error(w, "timed out waiting for apply", http.StatusGatewayTimeout)
	}
}
