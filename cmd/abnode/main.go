// Command abnode runs one process of an atomic broadcast group over real
// TCP — the deployment shape of the paper's testbed. Start n copies (on
// one machine or several), give each the same -peers list and its own
// -id, and they form a group.
//
// Example (three processes on one machine):
//
//	abnode -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -stack monolithic -rate 100 -size 1024
//	abnode -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -stack monolithic -rate 100 -size 1024
//	abnode -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -stack monolithic -rate 100 -size 1024
//
// Each process abcasts -size byte messages at -rate msgs/s for -dur, then
// reports its measured throughput, latency of its own messages, and the
// group-visible counters. Deliveries are consumed from the cluster's
// pull-based stream; -dropslow switches the stream to the drop overflow
// policy so a lagging consumer shows up as a nonzero streamDropped
// counter instead of backpressuring the protocol.
//
// With -digest (requires -batch-msgs) the group runs digest ordering:
// each sender disseminates its payload batches exactly once over the
// -dissem topology and consensus orders compact descriptors instead of
// payload-carrying frames (see modab.WithDigestOrdering). All processes
// must agree on the flag.
//
// With -join the process starts outside the boot group and asks a
// running member (-sponsor) to admit it: the AddProcess op rides the
// total order, every member learns the joiner's address from the
// decided op itself, and the joiner catches up through state transfer
// before participating. Its own listen address must appear in its
// -peers list at index -id; the boot members keep their original short
// -peers list. For a second or later joiner, whose -peers already
// lists earlier joiners, -bootn must name the original boot-group
// size. Removal is an operator action on any member (see
// modab.Cluster.Remove); the removed process is then simply stopped.
//
// Example (join a fourth process to the group above):
//
//	abnode -id 3 -peers 127.0.0.1:7000,...,127.0.0.1:7003 -join -sponsor 0 -stack monolithic -wal /tmp/p3
//
// With -wal the process runs in the crash-recovery model: admissions and
// decisions are persisted to a write-ahead log in that directory (-fsync
// picks the policy), and a killed process restarted with the same -wal
// directory replays its log and performs state transfer before resuming.
//
// With -kv the process additionally runs the built-in replicated
// key/value state machine and serves it over HTTP (see kv.go for the
// API); -snapshot-every sets the snapshot cadence, and combined with
// -wal a restarted process recovers its KV state from the newest
// snapshot plus a bounded log suffix. KV serving usually wants a long
// -dur and -rate 0 (no synthetic load — synthetic payloads are not KV
// commands and apply as no-op bad commands).
// -seqlog appends one "sender seq instance" line per delivery — across a
// restart the file accumulates both incarnations' streams, which is how
// the integration tests verify the recovered total order.
//
// With -metrics the process serves its live observability surface over
// HTTP: Prometheus text format at /metrics (every counter plus latency
// histograms for adeliver, apply, fsync, recovery and snapshot install),
// expvar at /debug/vars, and net/http/pprof under /debug/pprof/. Use
// ":0" to pick a free port; the bound address is printed at startup.
//
// SIGINT/SIGTERM trigger a graceful shutdown: injection stops, the WAL is
// flushed, the transport closes, and the delivery stream drains before
// the summary prints.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"modab"
	"modab/internal/obs"
	"modab/internal/stats"
	"modab/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", -1, "this process's ID (0-based index into -peers)")
		peers    = flag.String("peers", "", "comma-separated listen addresses, indexed by ID")
		stackArg = flag.String("stack", "modular", `implementation: "modular" or "monolithic"`)
		rate     = flag.Float64("rate", 50, "abcast rate of this process (msgs/s); 0 = listen only")
		size     = flag.Int("size", 1024, "payload size (bytes)")
		dur      = flag.Duration("dur", 10*time.Second, "injection duration")
		quiet    = flag.Bool("quiet", false, "suppress per-delivery output")
		dropslow = flag.Bool("dropslow", false, "drop deliveries instead of backpressuring when the consumer lags")

		batchMsgs  = flag.Int("batch-msgs", 0, "sender-side batching: messages per batch (0 = disabled)")
		batchBytes = flag.Int("batch-bytes", 0, "sender-side batching: encoded bytes per batch (0 = no byte cap)")
		batchDelay = flag.Duration("batch-delay", 2*time.Millisecond, "sender-side batching: flush delay for undersized batches")
		pipeline   = flag.Int("pipeline", 0, "consensus pipeline window W: instances kept in flight concurrently (0/1 = sequential)")
		dissemArg  = flag.String("dissem", "", `payload dissemination topology: "all-to-all" (default) or "ring"`)
		digest     = flag.Bool("digest", false, "digest ordering: disseminate payload batches once, run consensus on compact descriptors (requires -batch-msgs)")

		join    = flag.Bool("join", false, "start as a joiner: this process is not in the boot group; it asks -sponsor to admit it and catches up through state transfer (its own address must still be in -peers at index -id)")
		sponsor = flag.Int("sponsor", 0, "with -join: ID of the member asked to sponsor the admission")
		bootN   = flag.Int("bootn", 0, "with -join: original boot-group size (0 = infer as -id; set explicitly when -peers already lists earlier joiners)")

		walDir  = flag.String("wal", "", "write-ahead-log directory: enables crash recovery (restart with the same directory to rejoin)")
		fsync   = flag.String("fsync", "always", `WAL fsync policy: "always", "interval" or "none"`)
		seqPath = flag.String("seqlog", "", "append one line per delivered message to this file (total-order audit trail)")

		kvAddr    = flag.String("kv", "", "serve the replicated key/value store over HTTP at this address (usually with -rate 0)")
		snapEvery = flag.Uint64("snapshot-every", 64, "with -kv: snapshot the state machine every N consensus instances (0 = never)")

		metricsAddr = flag.String("metrics", "", `serve live metrics at this address: Prometheus /metrics, expvar /debug/vars, net/http/pprof (":0" picks a free port; the bound address is printed)`)
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) < 1 {
		return fmt.Errorf("-peers required (comma-separated addresses)")
	}
	if *id < 0 || *id >= len(addrs) {
		return fmt.Errorf("-id must index into -peers (got %d of %d)", *id, len(addrs))
	}
	var stk modab.Stack
	switch *stackArg {
	case "modular":
		stk = modab.Modular
	case "monolithic":
		stk = modab.Monolithic
	default:
		return fmt.Errorf("unknown -stack %q", *stackArg)
	}

	self := modab.ProcessID(*id)
	opts := []modab.Option{modab.WithTransportTCP(addrs, self)}
	if *join {
		if *sponsor < 0 || *sponsor >= len(addrs) || *sponsor == *id {
			return fmt.Errorf("-sponsor must name another peer (got %d)", *sponsor)
		}
		opts = append(opts, modab.WithJoin(*bootN))
	}
	if *dropslow {
		opts = append(opts, modab.WithDeliveryOverflow(modab.OverflowDrop))
	}
	bcfg := modab.BatchConfig{MaxMsgs: *batchMsgs, MaxBytes: *batchBytes, MaxDelay: *batchDelay}
	if err := bcfg.Validate(); err != nil {
		return err
	}
	if bcfg.Enabled() {
		opts = append(opts, modab.WithBatching(bcfg.MaxMsgs, bcfg.MaxBytes, bcfg.MaxDelay))
	}
	if *pipeline > 1 {
		opts = append(opts, modab.WithPipelining(*pipeline))
	}
	if *dissemArg != "" {
		strategy, err := modab.ParseDissemination(*dissemArg)
		if err != nil {
			return fmt.Errorf("unknown -dissem %q", *dissemArg)
		}
		opts = append(opts, modab.WithDissemination(strategy))
	}
	if *digest {
		if !bcfg.Enabled() {
			return fmt.Errorf("-digest requires sender batching (-batch-msgs)")
		}
		opts = append(opts, modab.WithDigestOrdering())
	}
	if *walDir != "" {
		var policy modab.SyncPolicy
		switch *fsync {
		case "always":
			policy = modab.SyncAlways
		case "interval":
			policy = modab.SyncInterval
		case "none":
			policy = modab.SyncNone
		default:
			return fmt.Errorf("unknown -fsync %q", *fsync)
		}
		opts = append(opts, modab.WithDurability(*walDir, policy))
	}
	if *metricsAddr != "" {
		opts = append(opts, modab.WithObservability(0))
	}
	var kvLocal *modab.KV
	if *kvAddr != "" {
		opts = append(opts, modab.WithStateMachine(func() modab.StateMachine {
			kvLocal = modab.NewKV()
			return kvLocal
		}, *snapEvery))
	}

	var seqlog *bufio.Writer
	var seqfile *os.File
	if *seqPath != "" {
		f, err := os.OpenFile(*seqPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		seqfile = f
		seqlog = bufio.NewWriter(f)
	}

	cluster, err := modab.New(len(addrs), stk, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("%s up as %s of %d peers, stack=%s\n", self, self, len(addrs), stk)
	var kvSrv *http.Server
	if *kvAddr != "" {
		srv, err := startKVServer(*kvAddr, cluster, *id, kvLocal)
		if err != nil {
			_ = cluster.Close()
			return fmt.Errorf("kv listen: %w", err)
		}
		kvSrv = srv
		fmt.Printf("%s serving KV over HTTP at %s\n", self, *kvAddr)
	}
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			_ = cluster.Close()
			return fmt.Errorf("metrics listen: %w", err)
		}
		metricsSrv = &http.Server{Handler: obs.NewHTTPHandler(
			func() trace.Snapshot { return cluster.Counters(*id) },
			cluster.Obs(*id))}
		go func() { _ = metricsSrv.Serve(ln) }()
		fmt.Printf("%s serving metrics at http://%s/metrics\n", self, ln.Addr())
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop injecting, flush the WAL
	// and close the transport (cluster.Close), drain the delivery stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join {
		fmt.Printf("%s requesting admission via %s\n", self, modab.ProcessID(*sponsor))
		jctx, jcancel := context.WithTimeout(ctx, time.Minute)
		err := cluster.RequestJoin(jctx, modab.ProcessID(*sponsor))
		jcancel()
		if err != nil {
			_ = cluster.Close()
			return fmt.Errorf("join: %w", err)
		}
		fmt.Printf("%s admitted: view %v\n", self, cluster.View(*id))
	}

	// Consume deliveries from the stream on a dedicated goroutine.
	var (
		mu        sync.Mutex
		delivered int
		t0s       = map[modab.MsgID]time.Time{}
		lat       stats.Series
	)
	sub := cluster.Deliveries()
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		for ev := range sub.C() {
			mu.Lock()
			delivered++
			if t0, ok := t0s[ev.D.Msg.ID]; ok {
				lat.Add(time.Since(t0).Seconds())
				delete(t0s, ev.D.Msg.ID)
			}
			count := delivered
			if seqlog != nil {
				fmt.Fprintf(seqlog, "%d %d %d\n", int32(ev.D.Msg.ID.Sender), ev.D.Msg.ID.Seq, ev.D.Instance)
			}
			mu.Unlock()
			if !*quiet && count%100 == 0 {
				fmt.Printf("%s delivered %d messages (last: %s in instance %d)\n",
					self, count, ev.D.Msg.ID, ev.D.Instance)
			}
		}
	}()

	// Give peers a moment to come up before injecting.
	select {
	case <-time.After(time.Second):
	case <-ctx.Done():
	}

	start := time.Now()
	sent := 0
	interrupted := false
	if *rate > 0 && ctx.Err() == nil {
		interval := time.Duration(float64(time.Second) / *rate)
		body := make([]byte, *size)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		abctx, cancel := context.WithDeadline(ctx, start.Add(*dur+time.Minute))
		defer cancel()
	inject:
		for time.Since(start) < *dur {
			select {
			case <-ticker.C:
			case <-ctx.Done():
				interrupted = true
				break inject
			}
			submit := time.Now()
			msgID, err := cluster.Abcast(abctx, *id, body)
			if err != nil {
				if ctx.Err() != nil {
					interrupted = true
					break inject
				}
				return fmt.Errorf("abcast: %w", err)
			}
			mu.Lock()
			t0s[msgID] = submit
			mu.Unlock()
			sent++
		}
	} else {
		select {
		case <-time.After(*dur):
		case <-ctx.Done():
			interrupted = true
		}
	}

	// Drain: wait for our own messages to come back (skipped when a
	// signal asked for an immediate, orderly exit).
	deadline := time.Now().Add(10 * time.Second)
	for !interrupted {
		mu.Lock()
		outstanding := len(t0s)
		mu.Unlock()
		if outstanding == 0 || time.Now().After(deadline) {
			break
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			interrupted = true
		}
	}

	elapsed := time.Since(start).Seconds()
	counters := cluster.Counters(*id)
	// Close order: the KV front end first (stop taking requests), then the
	// cluster (final WAL sync, transport teardown, stream end), then the
	// consumer drains what is buffered, then the audit trail flushes.
	if kvSrv != nil {
		_ = kvSrv.Close()
	}
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	closeErr := cluster.Close()
	consumerWG.Wait()
	if seqlog != nil {
		mu.Lock()
		_ = seqlog.Flush()
		_ = seqfile.Close()
		mu.Unlock()
	}
	mu.Lock()
	defer mu.Unlock()
	if interrupted {
		fmt.Printf("\n%s interrupted: graceful shutdown complete\n", self)
	}
	fmt.Printf("\n%s summary: sent=%d delivered=%d (%.1f msgs/s)\n",
		self, sent, delivered, float64(delivered)/elapsed)
	if lat.N() > 0 {
		fmt.Printf("own-message latency: mean=%.2fms p50=%.2fms p99=%.2fms (n=%d)\n",
			lat.Mean()*1e3, lat.Median()*1e3, lat.Percentile(99)*1e3, lat.N())
	}
	fmt.Printf("counters: %s\n", counters)
	if dropped := sub.Dropped(); dropped > 0 {
		fmt.Printf("delivery stream dropped %d messages (consumer lagged)\n", dropped)
	}
	return closeErr
}
