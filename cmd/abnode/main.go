// Command abnode runs one process of an atomic broadcast group over real
// TCP — the deployment shape of the paper's testbed. Start n copies (on
// one machine or several), give each the same -peers list and its own
// -id, and they form a group.
//
// Example (three processes on one machine):
//
//	abnode -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -stack monolithic -rate 100 -size 1024
//	abnode -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -stack monolithic -rate 100 -size 1024
//	abnode -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -stack monolithic -rate 100 -size 1024
//
// Each process abcasts -size byte messages at -rate msgs/s for -dur, then
// reports its measured throughput, latency of its own messages, and the
// group-visible counters. Deliveries are consumed from the cluster's
// pull-based stream; -dropslow switches the stream to the drop overflow
// policy so a lagging consumer shows up as a nonzero streamDropped
// counter instead of backpressuring the protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"modab"
	"modab/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", -1, "this process's ID (0-based index into -peers)")
		peers    = flag.String("peers", "", "comma-separated listen addresses, indexed by ID")
		stackArg = flag.String("stack", "modular", `implementation: "modular" or "monolithic"`)
		rate     = flag.Float64("rate", 50, "abcast rate of this process (msgs/s); 0 = listen only")
		size     = flag.Int("size", 1024, "payload size (bytes)")
		dur      = flag.Duration("dur", 10*time.Second, "injection duration")
		quiet    = flag.Bool("quiet", false, "suppress per-delivery output")
		dropslow = flag.Bool("dropslow", false, "drop deliveries instead of backpressuring when the consumer lags")

		batchMsgs  = flag.Int("batch-msgs", 0, "sender-side batching: messages per batch (0 = disabled)")
		batchBytes = flag.Int("batch-bytes", 0, "sender-side batching: encoded bytes per batch (0 = no byte cap)")
		batchDelay = flag.Duration("batch-delay", 2*time.Millisecond, "sender-side batching: flush delay for undersized batches")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) < 1 {
		return fmt.Errorf("-peers required (comma-separated addresses)")
	}
	if *id < 0 || *id >= len(addrs) {
		return fmt.Errorf("-id must index into -peers (got %d of %d)", *id, len(addrs))
	}
	var stk modab.Stack
	switch *stackArg {
	case "modular":
		stk = modab.Modular
	case "monolithic":
		stk = modab.Monolithic
	default:
		return fmt.Errorf("unknown -stack %q", *stackArg)
	}

	self := modab.ProcessID(*id)
	opts := []modab.Option{modab.WithTransportTCP(addrs, self)}
	if *dropslow {
		opts = append(opts, modab.WithDeliveryOverflow(modab.OverflowDrop))
	}
	bcfg := modab.BatchConfig{MaxMsgs: *batchMsgs, MaxBytes: *batchBytes, MaxDelay: *batchDelay}
	if err := bcfg.Validate(); err != nil {
		return err
	}
	if bcfg.Enabled() {
		opts = append(opts, modab.WithBatching(bcfg.MaxMsgs, bcfg.MaxBytes, bcfg.MaxDelay))
	}
	cluster, err := modab.New(len(addrs), stk, opts...)
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("%s up as %s of %d peers, stack=%s\n", self, self, len(addrs), stk)

	// Consume deliveries from the stream on a dedicated goroutine.
	var (
		mu        sync.Mutex
		delivered int
		t0s       = map[modab.MsgID]time.Time{}
		lat       stats.Series
	)
	sub := cluster.Deliveries()
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		for ev := range sub.C() {
			mu.Lock()
			delivered++
			if t0, ok := t0s[ev.D.Msg.ID]; ok {
				lat.Add(time.Since(t0).Seconds())
				delete(t0s, ev.D.Msg.ID)
			}
			count := delivered
			mu.Unlock()
			if !*quiet && count%100 == 0 {
				fmt.Printf("%s delivered %d messages (last: %s in instance %d)\n",
					self, count, ev.D.Msg.ID, ev.D.Instance)
			}
		}
	}()

	// Give peers a moment to come up before injecting.
	time.Sleep(time.Second)

	start := time.Now()
	sent := 0
	if *rate > 0 {
		interval := time.Duration(float64(time.Second) / *rate)
		body := make([]byte, *size)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		ctx, cancel := context.WithDeadline(context.Background(), start.Add(*dur+time.Minute))
		defer cancel()
		for time.Since(start) < *dur {
			<-ticker.C
			submit := time.Now()
			msgID, err := cluster.Abcast(ctx, *id, body)
			if err != nil {
				return fmt.Errorf("abcast: %w", err)
			}
			mu.Lock()
			t0s[msgID] = submit
			mu.Unlock()
			sent++
		}
	} else {
		time.Sleep(*dur)
	}

	// Drain: wait for our own messages to come back.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		outstanding := len(t0s)
		mu.Unlock()
		if outstanding == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	elapsed := time.Since(start).Seconds()
	counters := cluster.Counters(*id)
	sub.Close()
	consumerWG.Wait()
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\n%s summary: sent=%d delivered=%d (%.1f msgs/s)\n",
		self, sent, delivered, float64(delivered)/elapsed)
	if lat.N() > 0 {
		fmt.Printf("own-message latency: mean=%.2fms p50=%.2fms p99=%.2fms (n=%d)\n",
			lat.Mean()*1e3, lat.Median()*1e3, lat.Percentile(99)*1e3, lat.N())
	}
	fmt.Printf("counters: %s\n", counters)
	if dropped := sub.Dropped(); dropped > 0 {
		fmt.Printf("delivery stream dropped %d messages (consumer lagged)\n", dropped)
	}
	return nil
}
