package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildAbnode compiles the abnode binary once per test run.
func buildAbnode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "abnode")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// seqEntry is one parsed seqlog line.
type seqEntry struct {
	sender int32
	seq    uint64
}

// readSeqlog parses a "-seqlog" audit file, tolerating a torn final line
// (a SIGKILLed process loses its unflushed buffer tail).
func readSeqlog(t *testing.T, path string) []seqEntry {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	var out []seqEntry
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		var e seqEntry
		var instance uint64
		if _, err := fmt.Sscanf(line, "%d %d %d", &e.sender, &e.seq, &instance); err != nil {
			if i >= len(lines)-2 {
				continue // torn tail from the kill
			}
			t.Fatalf("%s line %d malformed: %q", path, i+1, line)
		}
		out = append(out, e)
	}
	return out
}

// assertPrefixConsistent checks that one sequence is a prefix of the other
// (two correct processes observing the same total order, one of which
// exited earlier).
func assertPrefixConsistent(t *testing.T, name string, a, b []seqEntry) {
	t.Helper()
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("%s: order diverges at %d: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// assertRecoveredOrder checks the restarted process's concatenated
// streams (both incarnations in one file) against the reference order:
// a prefix of ref, then at most one gap — the deliveries lost in the
// crash window plus whatever the dead process missed before its catch-up
// resumed — then a contiguous run of ref. No duplicates, no reordering.
func assertRecoveredOrder(t *testing.T, got, ref []seqEntry) {
	t.Helper()
	seen := make(map[seqEntry]struct{}, len(got))
	for _, e := range got {
		if _, dup := seen[e]; dup {
			t.Fatalf("restarted process delivered %v twice", e)
		}
		seen[e] = struct{}{}
	}
	refIdx := make(map[seqEntry]int, len(ref))
	for i, e := range ref {
		refIdx[e] = i
	}
	gaps := 0
	next := 0
	for i, e := range got {
		ri, ok := refIdx[e]
		if !ok {
			// The reference process may have exited before this delivery;
			// tolerate a tail the reference never saw, but only at the end.
			for _, rest := range got[i:] {
				if _, known := refIdx[rest]; known {
					t.Fatalf("delivery %v missing from the reference order mid-stream", e)
				}
			}
			break
		}
		if ri != next {
			if ri < next {
				t.Fatalf("restarted process reordered: %v at ref %d, expected ref >= %d", e, ri, next)
			}
			gaps++
			if gaps > 1 {
				t.Fatalf("restarted process's stream has %d gaps, want at most 1 (crash window)", gaps)
			}
		}
		next = ri + 1
	}
}

// TestAbnodeRestartIntegration is the TCP acceptance test of the
// crash-recovery subsystem: three real abnode processes over real TCP
// with file-backed WALs; one is SIGKILLed mid-run and restarted against
// the live pair, and the audit trails must show one consistent total
// order with the restarted process recovering into it.
func TestAbnodeRestartIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildAbnode(t)
	dir := t.TempDir()
	addrs := freePorts(t, 3)
	peers := strings.Join(addrs, ",")

	args := func(id int, rate float64, dur time.Duration) []string {
		return []string{
			"-id", fmt.Sprint(id),
			"-peers", peers,
			"-stack", "modular",
			"-rate", fmt.Sprint(rate),
			"-size", "64",
			"-dur", dur.String(),
			"-quiet",
			"-wal", filepath.Join(dir, fmt.Sprintf("wal%d", id)),
			"-fsync", "none",
			"-seqlog", filepath.Join(dir, fmt.Sprintf("seq%d", id)),
		}
	}

	var outs [3]strings.Builder
	procs := make([]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		cmd := exec.Command(bin, args(i, 120, 5*time.Second)...)
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start abnode %d: %v", i, err)
		}
		procs[i] = cmd
	}

	// Let the group order traffic, then kill p3 hard mid-run.
	time.Sleep(2500 * time.Millisecond)
	if err := procs[2].Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = procs[2].Wait()

	// Restart it against the live pair with the same WAL and audit file;
	// listen-only, long enough to catch up and observe the pair's tail.
	time.Sleep(300 * time.Millisecond)
	var restartOut strings.Builder
	restarted := exec.Command(bin, args(2, 0, 3*time.Second)...)
	restarted.Stdout = &restartOut
	restarted.Stderr = &restartOut
	if err := restarted.Start(); err != nil {
		t.Fatalf("restart abnode 2: %v", err)
	}

	for i := 0; i < 2; i++ {
		if err := procs[i].Wait(); err != nil {
			t.Fatalf("abnode %d: %v\n%s", i, err, outs[i].String())
		}
	}
	if err := restarted.Wait(); err != nil {
		t.Fatalf("restarted abnode 2: %v\n%s", err, restartOut.String())
	}
	if !strings.Contains(restartOut.String(), "recoveries=1") {
		t.Errorf("restarted process reported no recovery:\n%s", restartOut.String())
	}

	seq0 := readSeqlog(t, filepath.Join(dir, "seq0"))
	seq1 := readSeqlog(t, filepath.Join(dir, "seq1"))
	seq2 := readSeqlog(t, filepath.Join(dir, "seq2"))
	if len(seq0) == 0 || len(seq1) == 0 || len(seq2) == 0 {
		t.Fatalf("empty audit trails: %d/%d/%d", len(seq0), len(seq1), len(seq2))
	}
	assertPrefixConsistent(t, "p1 vs p2", seq0, seq1)
	ref := seq0
	if len(seq1) > len(ref) {
		ref = seq1
	}
	assertRecoveredOrder(t, seq2, ref)
}

// TestAbnodeJoinIntegration is the TCP acceptance test of dynamic
// membership: a three-process boot group orders traffic, then a fourth
// abnode starts with -join, self-requests admission through a sponsor,
// catches up through state transfer, and contributes its own messages.
// The boot group's audit trails must show one consistent total order
// from instance 1; the joiner's trail starts at its admitting view
// (config-at-k, not history — the pre-join past arrives as state, not
// deliveries) and from there must be a gap-free dup-free run of the
// reference order.
func TestAbnodeJoinIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildAbnode(t)
	dir := t.TempDir()
	addrs := freePorts(t, 4)
	bootPeers := strings.Join(addrs[:3], ",")
	allPeers := strings.Join(addrs, ",")

	args := func(id int, peers string, rate float64, dur time.Duration, extra ...string) []string {
		base := []string{
			"-id", fmt.Sprint(id),
			"-peers", peers,
			"-stack", "monolithic",
			"-rate", fmt.Sprint(rate),
			"-size", "64",
			"-dur", dur.String(),
			"-quiet",
			"-wal", filepath.Join(dir, fmt.Sprintf("wal%d", id)),
			"-fsync", "none",
			"-seqlog", filepath.Join(dir, fmt.Sprintf("seq%d", id)),
		}
		return append(base, extra...)
	}

	var outs [3]strings.Builder
	procs := make([]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		cmd := exec.Command(bin, args(i, bootPeers, 60, 8*time.Second)...)
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start abnode %d: %v", i, err)
		}
		procs[i] = cmd
	}

	// Let the boot group order traffic before the joiner shows up.
	time.Sleep(2500 * time.Millisecond)
	var joinOut strings.Builder
	joiner := exec.Command(bin, args(3, allPeers, 40, 3*time.Second, "-join", "-sponsor", "0")...)
	joiner.Stdout = &joinOut
	joiner.Stderr = &joinOut
	if err := joiner.Start(); err != nil {
		t.Fatalf("start joiner: %v", err)
	}
	if err := joiner.Wait(); err != nil {
		t.Fatalf("joiner: %v\n%s", err, joinOut.String())
	}
	for i := 0; i < 3; i++ {
		if err := procs[i].Wait(); err != nil {
			t.Fatalf("abnode %d: %v\n%s", i, err, outs[i].String())
		}
	}
	if !strings.Contains(joinOut.String(), "admitted") {
		t.Fatalf("joiner never reported admission:\n%s", joinOut.String())
	}

	seqs := make([][]seqEntry, 4)
	for i := range seqs {
		seqs[i] = readSeqlog(t, filepath.Join(dir, fmt.Sprintf("seq%d", i)))
		if len(seqs[i]) == 0 {
			t.Fatalf("p%d has an empty audit trail", i)
		}
	}
	for i := 1; i < 3; i++ {
		assertPrefixConsistent(t, fmt.Sprintf("p0 vs p%d", i), seqs[0], seqs[i])
	}
	// The joiner's stream aligns mid-reference (one leading "gap": the
	// pre-join history it received as state) and runs contiguously after.
	ref := seqs[0]
	if len(seqs[1]) > len(ref) {
		ref = seqs[1]
	}
	assertRecoveredOrder(t, seqs[3], ref)
	// The joiner's own messages must have been ordered at the boot group.
	joinerSent := false
	for _, e := range seqs[0] {
		if e.sender == 3 {
			joinerSent = true
			break
		}
	}
	if !joinerSent {
		t.Fatalf("no joiner-originated message in the reference order")
	}
}

// TestAbnodeKVHTTP spins up a three-process group serving the
// replicated KV over HTTP — with digest ordering on, so every command
// travels once as an announced payload batch and consensus orders
// descriptors — and exercises the full surface end to end: put/get/CAS/
// delete with read-your-writes at the submitting node, and an ordered
// cross-node read observing a write accepted elsewhere.
func TestAbnodeKVHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildAbnode(t)
	addrs := freePorts(t, 6)
	peers := strings.Join(addrs[:3], ",")
	kvAddrs := addrs[3:]

	var outs [3]strings.Builder
	procs := make([]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		cmd := exec.Command(bin,
			"-id", fmt.Sprint(i),
			"-peers", peers,
			"-stack", "monolithic",
			"-rate", "0",
			"-dur", "20s",
			"-quiet",
			"-kv", kvAddrs[i],
			"-snapshot-every", "8",
			"-batch-msgs", "4",
			"-batch-delay", "2ms",
			"-digest",
		)
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start abnode %d: %v", i, err)
		}
		procs[i] = cmd
		defer func() { _ = cmd.Process.Signal(syscall.SIGTERM); _ = cmd.Wait() }()
	}

	client := &http.Client{Timeout: 15 * time.Second}
	req := func(method, node, key, body string, hdr map[string]string) (int, string) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		r, err := http.NewRequest(method, "http://"+node+"/kv/"+key, rd)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			r.Header.Set(k, v)
		}
		resp, err := client.Do(r)
		if err != nil {
			t.Fatalf("%s %s: %v", method, key, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	// Wait for the HTTP front ends to come up and the group to order the
	// first command.
	deadline := time.Now().Add(15 * time.Second)
	for {
		r, err := http.NewRequest(http.MethodPut, "http://"+kvAddrs[0]+"/kv/boot", strings.NewReader("1"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(r)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusNoContent {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("KV front end never came up: %v\n%s", err, outs[0].String())
		}
		time.Sleep(200 * time.Millisecond)
	}

	if code, _ := req(http.MethodPut, kvAddrs[0], "color", "blue", nil); code != http.StatusNoContent {
		t.Fatalf("put: %d", code)
	}
	if code, body := req(http.MethodGet, kvAddrs[0], "color", "", nil); code != http.StatusOK || body != "blue" {
		t.Fatalf("read-your-writes get = (%d, %q)", code, body)
	}
	// Ordered read at a different node than the writer.
	if code, body := req(http.MethodGet, kvAddrs[1], "color", "", nil); code != http.StatusOK || body != "blue" {
		t.Fatalf("cross-node get = (%d, %q)", code, body)
	}
	// CAS: wrong expectation rejected, right one applied.
	if code, _ := req(http.MethodPut, kvAddrs[2], "color", "green", map[string]string{"If-Match": "red"}); code != http.StatusPreconditionFailed {
		t.Fatalf("CAS wrong old = %d, want 412", code)
	}
	if code, _ := req(http.MethodPut, kvAddrs[2], "color", "green", map[string]string{"If-Match": "blue"}); code != http.StatusNoContent {
		t.Fatalf("CAS right old = %d, want 204", code)
	}
	if code, body := req(http.MethodGet, kvAddrs[0], "color", "", nil); code != http.StatusOK || body != "green" {
		t.Fatalf("get after CAS = (%d, %q)", code, body)
	}
	// Local (stale-tolerant) read hits the replica directly.
	if code, body := req(http.MethodGet, kvAddrs[0], "color?local=1", "", nil); code != http.StatusOK || body != "green" {
		t.Fatalf("local get = (%d, %q)", code, body)
	}
	// Delete, then both flavors of missing.
	if code, _ := req(http.MethodDelete, kvAddrs[1], "color", "", nil); code != http.StatusNoContent {
		t.Fatalf("delete = %d", code)
	}
	if code, _ := req(http.MethodGet, kvAddrs[1], "color", "", nil); code != http.StatusNotFound {
		t.Fatalf("get after delete = %d, want 404", code)
	}
	if code, _ := req(http.MethodDelete, kvAddrs[1], "color", "", nil); code != http.StatusNotFound {
		t.Fatalf("delete missing = %d, want 404", code)
	}
}

// lockedBuf is a concurrency-safe output sink: the metrics test reads a
// node's stdout while the process is still writing to it.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestAbnodeMetricsHTTP runs a loaded three-process group with the
// observability endpoint enabled on one node and scrapes it mid-load:
// Prometheus /metrics (counters and latency histograms, with deliveries
// actually counted), expvar /debug/vars, and a one-second CPU profile
// from /debug/pprof/profile.
func TestAbnodeMetricsHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildAbnode(t)
	addrs := freePorts(t, 3)
	peers := strings.Join(addrs, ",")

	outs := make([]*lockedBuf, 3)
	procs := make([]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		args := []string{
			"-id", fmt.Sprint(i),
			"-peers", peers,
			"-stack", "monolithic",
			"-rate", "150",
			"-size", "64",
			"-dur", "15s",
			"-quiet",
		}
		if i == 0 {
			args = append(args, "-metrics", "127.0.0.1:0")
		}
		outs[i] = &lockedBuf{}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = outs[i]
		cmd.Stderr = outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start abnode %d: %v", i, err)
		}
		procs[i] = cmd
		defer func() { _ = cmd.Process.Signal(syscall.SIGTERM); _ = cmd.Wait() }()
	}

	// The bound metrics address is printed at startup:
	// "p0 serving metrics at http://ADDR/metrics".
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never printed:\n%s", outs[0].String())
		}
		out := outs[0].String()
		if i := strings.Index(out, "http://"); i >= 0 {
			rest := out[i+len("http://"):]
			if j := strings.Index(rest, "/metrics"); j >= 0 {
				base = "http://" + rest[:j]
			}
		}
		if base == "" {
			time.Sleep(100 * time.Millisecond)
		}
	}

	client := &http.Client{Timeout: 15 * time.Second}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	// Scrape /metrics until the group has ordered traffic: the adeliver
	// counter and the deliver-latency histogram must both be live.
	deadline = time.Now().Add(12 * time.Second)
	for {
		code, body := get("/metrics")
		if code != http.StatusOK {
			t.Fatalf("GET /metrics = %d", code)
		}
		for _, want := range []string{
			"# TYPE modab_a_deliver counter",
			"modab_deliver_latency_seconds_bucket",
			"modab_deliver_latency_seconds_count",
			"modab_trace_sample_every",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("/metrics lacks %q:\n%s", want, body)
			}
		}
		var adeliver int64
		for _, line := range strings.Split(body, "\n") {
			if _, err := fmt.Sscanf(line, "modab_a_deliver %d", &adeliver); err == nil {
				break
			}
		}
		if adeliver > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("modab_a_deliver never went positive under load:\n%s", body)
		}
		time.Sleep(200 * time.Millisecond)
	}

	if code, body := get("/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, `"modab"`) || !strings.Contains(body, "counters") {
		t.Fatalf("GET /debug/vars = %d, want modab counters var:\n%s", code, body)
	}

	// One-second CPU profile while the group is still ordering load.
	if code, body := get("/debug/pprof/profile?seconds=1"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("GET /debug/pprof/profile = (%d, %d bytes)", code, len(body))
	}
}

// TestAbnodeGracefulSignal: SIGTERM mid-run exits cleanly (WAL flushed,
// stream drained, summary printed) instead of dying mid-write.
func TestAbnodeGracefulSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildAbnode(t)
	dir := t.TempDir()
	addrs := freePorts(t, 1)

	var out strings.Builder
	cmd := exec.Command(bin,
		"-id", "0",
		"-peers", addrs[0],
		"-stack", "monolithic",
		"-rate", "100",
		"-size", "32",
		"-dur", "30s",
		"-quiet",
		"-wal", filepath.Join(dir, "wal0"),
		"-fsync", "interval",
		"-seqlog", filepath.Join(dir, "seq0"),
	)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	time.Sleep(2 * time.Second)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("no exit within 10s of SIGTERM:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "graceful shutdown complete") {
		t.Errorf("missing graceful-shutdown marker:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "summary:") {
		t.Errorf("missing summary after signal:\n%s", out.String())
	}
	// The flushed WAL must replay cleanly: a follow-up listen-only run on
	// the same directory recovers instead of starting fresh.
	var out2 strings.Builder
	cmd2 := exec.Command(bin,
		"-id", "0", "-peers", addrs[0], "-stack", "monolithic",
		"-rate", "0", "-dur", "500ms", "-quiet",
		"-wal", filepath.Join(dir, "wal0"), "-fsync", "none",
	)
	cmd2.Stdout = &out2
	cmd2.Stderr = &out2
	if err := cmd2.Run(); err != nil {
		t.Fatalf("rerun on flushed WAL: %v\n%s", err, out2.String())
	}
	if !strings.Contains(out2.String(), "recoveries=1") {
		t.Errorf("rerun did not recover from the WAL:\n%s", out2.String())
	}
}
