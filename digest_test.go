package modab_test

import (
	"context"
	"testing"
	"time"

	"modab"
)

// digestStacks enumerates the stacks exercised by the digest-ordering
// facade tests.
var digestStacks = []modab.Stack{modab.Modular, modab.Monolithic}

// TestDigestOrderingSimulated drives both stacks with digest ordering on
// under the deterministic simulator: every submitted message is adelivered
// exactly once per process, and the ordering-path byte volume stays far
// below the disseminated payload volume.
func TestDigestOrderingSimulated(t *testing.T) {
	const n, msgs = 3, 40
	body := make([]byte, 256)
	for i := range body {
		body[i] = byte(i)
	}
	for _, stk := range digestStacks {
		cluster, err := modab.New(n, stk,
			modab.WithSimulation(7),
			modab.WithDigestOrdering(),
			modab.WithBatching(8, 0, 2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for j := 0; j < msgs; j++ {
			if _, err := cluster.Abcast(ctx, j%n, body); err != nil {
				t.Fatalf("%s: abcast %d: %v", stk, j, err)
			}
		}
		cluster.Sim().RunIdle(5 * time.Second)
		st := cluster.Stats()
		if got, want := st.Total.ADeliver, int64(n*msgs); got != want {
			t.Fatalf("%s: ADeliver=%d, want %d", stk, got, want)
		}
		if st.Total.OrderedBytes == 0 || st.Total.DisseminatedBytes == 0 {
			t.Fatalf("%s: byte-split counters empty: ordered=%d disseminated=%d",
				stk, st.Total.OrderedBytes, st.Total.DisseminatedBytes)
		}
		// Descriptors are ~32 wire bytes against 256-byte bodies: ordering
		// traffic must not carry the payload volume.
		if st.Total.OrderedBytes >= st.Total.DisseminatedBytes {
			t.Fatalf("%s: ordered bytes (%d) not below disseminated bytes (%d)",
				stk, st.Total.OrderedBytes, st.Total.DisseminatedBytes)
		}
		if err := cluster.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDigestOrderingRing composes digest ordering with ring dissemination:
// the announce frames relay around the successor ring while descriptors
// order all-to-all.
func TestDigestOrderingRing(t *testing.T) {
	const n, msgs = 5, 30
	for _, stk := range digestStacks {
		cluster, err := modab.New(n, stk,
			modab.WithSimulation(11),
			modab.WithDigestOrdering(),
			modab.WithDissemination(modab.DissemRing),
			modab.WithBatching(8, 0, 2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for j := 0; j < msgs; j++ {
			if _, err := cluster.Abcast(ctx, j%n, []byte("ring-digest")); err != nil {
				t.Fatalf("%s: abcast %d: %v", stk, j, err)
			}
		}
		cluster.Sim().RunIdle(5 * time.Second)
		if got, want := cluster.Stats().Total.ADeliver, int64(n*msgs); got != want {
			t.Fatalf("%s: ADeliver=%d, want %d", stk, got, want)
		}
		if err := cluster.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDigestOrderingUnbatched covers the unbatched digest path: each
// message announces as its own single-message batch.
func TestDigestOrderingUnbatched(t *testing.T) {
	for _, stk := range digestStacks {
		cluster, err := modab.New(3, stk,
			modab.WithSimulation(3),
			modab.WithDigestOrdering())
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for j := 0; j < 12; j++ {
			if _, err := cluster.Abcast(ctx, j%3, []byte{byte(j)}); err != nil {
				t.Fatalf("%s: abcast %d: %v", stk, j, err)
			}
		}
		cluster.Sim().RunIdle(5 * time.Second)
		if got := cluster.Stats().Total.ADeliver; got != 36 {
			t.Fatalf("%s: ADeliver=%d, want 36", stk, got)
		}
		if err := cluster.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
