// Documentation checks enforced by the CI docs job: every exported
// symbol of the public facade (modab.go) carries a doc comment (the
// equivalent of revive's exported rule, without the dependency), every
// internal package has a package comment, and the authored markdown does
// not link to files that do not exist.
package modab_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented fails on any exported top-level symbol
// or method in modab.go without a doc comment.
func TestExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "modab.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	report := func(pos token.Pos, what string) {
		t.Errorf("%s: undocumented exported %s", fset.Position(pos), what)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Doc == nil {
				kind := "function " + d.Name.Name
				if d.Recv != nil {
					kind = "method " + d.Name.Name
				}
				report(d.Pos(), kind)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && s.Doc == nil && d.Doc == nil {
							report(s.Pos(), "value "+name.Name)
						}
					}
				}
			}
		}
	}
}

// TestInternalPackagesHaveComments fails on any internal package whose
// files all lack a package comment.
func TestInternalPackagesHaveComments(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		checked := 0
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			checked++
			f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			if f.Doc != nil {
				documented = true
				break
			}
		}
		if checked > 0 && !documented {
			t.Errorf("package %s has no package comment", dir)
		}
	}
}

// mdLink matches markdown inline links; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks verifies that every local link in the authored
// markdown points at an existing file or directory.
func TestMarkdownLinks(t *testing.T) {
	pages := []string{"README.md", "MIGRATION.md"}
	docPages, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	pages = append(pages, docPages...)
	for _, page := range pages {
		raw, err := os.ReadFile(page)
		if err != nil {
			t.Fatalf("%s: %v", page, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			local := filepath.Join(filepath.Dir(page), target)
			if _, err := os.Stat(local); err != nil {
				t.Errorf("%s: broken link %q (%s)", page, m[1], local)
			}
		}
	}
}
