package modab_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"modab"
)

// TestDurabilityRestartGroup drives the crash-recovery surface through
// the facade on the default in-memory group driver: WithDurability, a
// crash, Restart, and post-recovery convergence.
func TestDurabilityRestartGroup(t *testing.T) {
	cluster, err := modab.New(3, modab.Monolithic,
		modab.WithDurability(t.TempDir(), modab.SyncNone),
		modab.WithFailureDetector(10*time.Millisecond, 80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var mu sync.Mutex
	perProc := make(map[int]int)
	sub := cluster.Deliveries()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range sub.C() {
			mu.Lock()
			perProc[int(ev.P)]++
			mu.Unlock()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	total := 0
	submit := func(p, k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if _, err := cluster.Abcast(ctx, p, []byte("payload")); err != nil {
				t.Fatalf("abcast at p%d: %v", p+1, err)
			}
			total++
		}
	}
	delivered := func(p int) int {
		mu.Lock()
		defer mu.Unlock()
		return perProc[p]
	}
	waitAll := func(procs ...int) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			done := true
			for _, p := range procs {
				if delivered(p) < total {
					done = false
				}
			}
			if done {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timeout: delivered=%v want %d", perProc, total)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	submit(0, 10)
	submit(1, 10)
	waitAll(0, 1, 2)

	if err := cluster.Crash(1); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := cluster.Abcast(ctx, 1, []byte("x")); !errors.Is(err, modab.ErrCrashed) {
		t.Fatalf("abcast at crashed process = %v, want ErrCrashed", err)
	}
	submit(0, 10)
	waitAll(0, 2)

	if err := cluster.Restart(1); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	submit(1, 5)
	waitAll(0, 1, 2)

	snap := cluster.Counters(1)
	if snap.Recoveries != 1 || snap.RecoveryFetchedMsgs == 0 {
		t.Fatalf("restarted process counters: %+v", snap)
	}
	sub.Close()
	wg.Wait()
}

// TestDurabilityRestartSim drives the same surface on the simulated
// driver, where WithDurability means a deterministic in-memory durable
// store and Restart happens at the current virtual instant.
func TestDurabilityRestartSim(t *testing.T) {
	cluster, err := modab.New(3, modab.Modular,
		modab.WithSimulation(42),
		modab.WithDurability("", modab.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sim := cluster.Sim()

	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := cluster.Abcast(ctx, i%3, []byte("m")); err != nil {
			t.Fatalf("abcast: %v", err)
		}
	}
	sim.RunIdle(time.Minute)

	if err := cluster.Crash(1); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cluster.Abcast(ctx, 0, []byte("while-down")); err != nil {
			t.Fatalf("abcast while p2 down: %v", err)
		}
	}
	sim.RunIdle(time.Minute)

	if err := cluster.Restart(1); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	sim.RunIdle(time.Minute)
	if _, err := cluster.Abcast(ctx, 1, []byte("back")); err != nil {
		t.Fatalf("abcast after restart: %v", err)
	}
	sim.RunIdle(time.Minute)

	for _, err := range sim.Errs() {
		t.Errorf("sim error: %v", err)
	}
	snap := cluster.Counters(1)
	if snap.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", snap.Recoveries)
	}
	if snap.RecoveryFetchedMsgs == 0 {
		t.Fatal("restarted process fetched nothing")
	}
	// Every live process ends with the same delivery count (total order,
	// no gaps): 8 + 6 + 1 messages.
	want := int64(15)
	for p := 0; p < 3; p++ {
		if got := cluster.Counters(p).ADeliver; got != want {
			t.Fatalf("p%d ADeliver = %d, want %d", p+1, got, want)
		}
	}
}

// TestDurabilityValidation: the real-time drivers refuse an empty
// directory, and Restart without WithDurability is rejected.
func TestDurabilityValidation(t *testing.T) {
	if _, err := modab.New(3, modab.Modular, modab.WithDurability("", modab.SyncAlways)); err == nil {
		t.Fatal("WithDurability(\"\") on the group driver succeeded")
	}
	cluster, err := modab.New(3, modab.Modular)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Restart(0); err == nil {
		t.Fatal("Restart without WithDurability succeeded")
	}
}
