// Replicated bank: total order as a correctness tool.
//
// Accounts are replicated on every process; transfers are abcast and
// applied in delivery order. A transfer only succeeds if the source
// balance covers it — a decision that every replica must make
// identically, which requires every replica to see the same transfer
// order. The example ends by checking that all replicas agree on every
// balance and that money was neither created nor destroyed.
//
//	go run ./examples/bank
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"modab"
)

const (
	accounts       = 8
	initialBalance = 1000
	n              = 3
	clientsPerNode = 2
	transfersEach  = 30
)

// transfer is the replicated command.
type transfer struct {
	From, To, Amount int
}

// bank is one replica's ledger.
type bank struct {
	mu       sync.Mutex
	balance  [accounts]int
	applied  int
	rejected int
}

func newBank() *bank {
	b := &bank{}
	for i := range b.balance {
		b.balance[i] = initialBalance
	}
	return b
}

// apply executes one transfer deterministically: rejected if underfunded.
func (b *bank) apply(t transfer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.applied++
	if t.From == t.To || t.Amount <= 0 || b.balance[t.From] < t.Amount {
		b.rejected++
		return
	}
	b.balance[t.From] -= t.Amount
	b.balance[t.To] += t.Amount
}

func (b *bank) snapshot() ([accounts]int, int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balance, b.applied, b.rejected
}

func main() {
	replicas := make([]*bank, n)
	for i := range replicas {
		replicas[i] = newBank()
	}

	group, err := modab.NewLocalGroup(n, modab.Modular, func(p modab.ProcessID, d modab.Delivery) {
		var t transfer
		if err := json.Unmarshal(d.Msg.Body, &t); err == nil {
			replicas[p].apply(t)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer group.Close()

	total := n * clientsPerNode * transfersEach
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		for c := 0; c < clientsPerNode; c++ {
			wg.Add(1)
			go func(node, c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(node*100 + c)))
				for i := 0; i < transfersEach; i++ {
					t := transfer{
						From:   rng.Intn(accounts),
						To:     rng.Intn(accounts),
						Amount: 1 + rng.Intn(400),
					}
					body, _ := json.Marshal(t)
					if _, err := group.Abcast(node, body); err != nil {
						log.Printf("abcast: %v", err)
						return
					}
				}
			}(node, c)
		}
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, r := range replicas {
			if _, applied, _ := r.snapshot(); applied < total {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	ref, _, _ := replicas[0].snapshot()
	consistent := true
	for i, r := range replicas {
		bal, applied, rejected := r.snapshot()
		sum := 0
		for _, v := range bal {
			sum += v
		}
		fmt.Printf("replica %d: applied=%d rejected=%d total-money=%d\n", i+1, applied, rejected, sum)
		if bal != ref {
			consistent = false
		}
		if sum != accounts*initialBalance {
			fmt.Printf("  MONEY LEAK on replica %d!\n", i+1)
		}
	}
	fmt.Printf("balances identical on all replicas: %v\n", consistent)
	fmt.Printf("final balances: %v\n", ref)
}
