// Replicated bank: total order as a correctness tool.
//
// Accounts are replicated on every process; transfers are abcast and
// applied in delivery order. A transfer only succeeds if the source
// balance covers it — a decision that every replica must make
// identically, which requires every replica to see the same transfer
// order. Replicas apply commands from the cluster's delivery stream;
// the example ends by checking that all replicas agree on every balance
// and that money was neither created nor destroyed.
//
//	go run ./examples/bank
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"modab"
)

const (
	accounts       = 8
	initialBalance = 1000
	n              = 3
	clientsPerNode = 2
	transfersEach  = 30
)

// transfer is the replicated command.
type transfer struct {
	From, To, Amount int
}

// bank is one replica's ledger. No mutex: each replica is mutated only
// by the single stream-consumer goroutine and read after it finishes.
type bank struct {
	balance  [accounts]int
	applied  int
	rejected int
}

func newBank() *bank {
	b := &bank{}
	for i := range b.balance {
		b.balance[i] = initialBalance
	}
	return b
}

// apply executes one transfer deterministically: rejected if underfunded.
func (b *bank) apply(t transfer) {
	b.applied++
	if t.From == t.To || t.Amount <= 0 || b.balance[t.From] < t.Amount {
		b.rejected++
		return
	}
	b.balance[t.From] -= t.Amount
	b.balance[t.To] += t.Amount
}

func main() {
	replicas := make([]*bank, n)
	for i := range replicas {
		replicas[i] = newBank()
	}

	cluster, err := modab.New(n, modab.Modular)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The state machines consume the totally ordered command stream.
	sub := cluster.Deliveries()
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for ev := range sub.C() {
			var t transfer
			if err := json.Unmarshal(ev.D.Msg.Body, &t); err == nil {
				replicas[ev.P].apply(t)
			}
		}
	}()

	total := n * clientsPerNode * transfersEach
	ctx := context.Background()
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		for c := 0; c < clientsPerNode; c++ {
			wg.Add(1)
			go func(node, c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(node*100 + c)))
				for i := 0; i < transfersEach; i++ {
					t := transfer{
						From:   rng.Intn(accounts),
						To:     rng.Intn(accounts),
						Amount: 1 + rng.Intn(400),
					}
					body, _ := json.Marshal(t)
					if _, err := cluster.Abcast(ctx, node, body); err != nil {
						log.Printf("abcast: %v", err)
						return
					}
				}
			}(node, c)
		}
	}
	wg.Wait()

	// Wait for every replica to adeliver everything, then end the stream.
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Stats().Total.ADeliver < int64(n*total) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := cluster.Close(); err != nil {
		log.Fatal(err)
	}
	consumer.Wait()

	ref := replicas[0].balance
	consistent := true
	for i, r := range replicas {
		sum := 0
		for _, v := range r.balance {
			sum += v
		}
		fmt.Printf("replica %d: applied=%d rejected=%d total-money=%d\n", i+1, r.applied, r.rejected, sum)
		if r.balance != ref {
			consistent = false
		}
		if sum != accounts*initialBalance {
			fmt.Printf("  MONEY LEAK on replica %d!\n", i+1)
		}
	}
	fmt.Printf("balances identical on all replicas: %v\n", consistent)
	fmt.Printf("final balances: %v\n", ref)
}
