// Failover: crash the consensus coordinator mid-stream.
//
// A five-process group orders a continuous stream of messages while
// process p1 — the round-1 coordinator of every consensus instance — is
// crashed. The failure detectors suspect it, the Chandra-Toueg round
// change elects the next coordinator, and the stream continues without
// violating total order. This exercises the crash paths that the paper
// requires for correctness but excludes from its good-run benchmarks.
// The writer uses a context-aware Abcast, so shutting the cluster down
// unblocks it promptly even if it is parked on flow control.
//
//	go run ./examples/failover
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"modab"
)

func main() {
	const n = 5
	cluster, err := modab.New(n, modab.Modular)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	orders := make([][]modab.MsgID, n)
	sub := cluster.Deliveries()
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for ev := range sub.C() {
			orders[ev.P] = append(orders[ev.P], ev.D.Msg.ID)
		}
	}()

	// A writer on process p3 keeps abcasting throughout; cancellation
	// stops it even when it is blocked on flow control.
	ctx, stop := context.WithCancel(context.Background())
	var sent int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := cluster.Abcast(ctx, 2, []byte(fmt.Sprintf("op-%d", sent))); err != nil {
				if !errors.Is(err, context.Canceled) {
					log.Printf("abcast: %v", err)
				}
				return
			}
			sent++
			time.Sleep(4 * time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	fmt.Println("crashing p1 (the round-1 coordinator of every instance)...")
	if err := cluster.Crash(0); err != nil {
		log.Printf("crash: %v", err)
	}

	// Keep the stream running through suspicion + round change.
	time.Sleep(1500 * time.Millisecond)
	stop()
	wg.Wait()

	// Let the survivors drain, then end the delivery stream.
	time.Sleep(500 * time.Millisecond)
	if err := cluster.Close(); err != nil {
		log.Fatal(err)
	}
	consumer.Wait()

	fmt.Printf("writer abcast %d messages; survivor delivery counts:", sent)
	for p := 1; p < n; p++ {
		fmt.Printf(" p%d=%d", p+1, len(orders[p]))
	}
	fmt.Println()

	// Survivors must agree on a single total order (prefix equality).
	ref := orders[1]
	consistent := true
	for p := 2; p < n; p++ {
		m := len(ref)
		if len(orders[p]) < m {
			m = len(orders[p])
		}
		for i := 0; i < m; i++ {
			if orders[p][i] != ref[i] {
				consistent = false
				fmt.Printf("ORDER VIOLATION at %d: p2=%v p%d=%v\n", i, ref[i], p+1, orders[p][i])
			}
		}
	}
	fmt.Printf("total order preserved across the crash: %v\n", consistent)
	fmt.Printf("progress after crash: %v (deliveries continued under the new coordinator)\n",
		len(ref) > 0)
}
