// Modular vs monolithic: the paper's experiment in one program.
//
// Runs both atomic broadcast implementations on the deterministic
// simulator under an identical saturating workload (n=3, 16 KiB messages)
// and prints the head-to-head comparison: latency, throughput, messages
// and payload bytes per consensus — next to the §5.2 analytical
// predictions. The clusters are built through the modab.New facade with
// the simulation driver; the workload generator and latency recorder
// plug into the same delivery events the application would consume.
//
//	go run ./examples/modular-vs-monolithic
package main

import (
	"fmt"
	"log"
	"time"

	"modab"
	"modab/internal/analytical"
	"modab/internal/netsim"
)

func main() {
	const (
		n    = 3
		size = 16384
		load = 4000 // msgs/s offered, well past saturation
	)
	warmup, measure := 2*time.Second, 4*time.Second

	fmt.Printf("group of %d, %d-byte messages, offered load %d msgs/s\n\n", n, size, load)
	fmt.Printf("%-11s %10s %12s %8s %10s %14s\n",
		"stack", "lat(ms)", "thr(msg/s)", "M", "msgs/dec", "payloadB/dec")

	type row struct {
		lat, thr float64
	}
	results := map[modab.Stack]row{}
	for _, stk := range []modab.Stack{modab.Modular, modab.Monolithic} {
		rec := netsim.NewRecorder(n, warmup, warmup+measure)
		cluster, err := modab.New(n, stk,
			modab.WithSimulation(7),
			modab.WithOnDeliver(func(ev modab.Event) {
				rec.OnDeliver(ev.P, ev.D.Msg.ID, ev.At)
			}))
		if err != nil {
			log.Fatal(err)
		}
		sim := cluster.Sim()
		netsim.InstallWorkload(sim, netsim.Workload{
			OfferedLoad: load, Size: size, End: warmup + measure,
		}, rec)
		sim.Run(warmup + measure + time.Second)
		if errs := sim.Errs(); len(errs) > 0 {
			log.Fatalf("engine error: %v", errs[0])
		}
		tot := cluster.Stats().Total
		decisions := float64(tot.ConsensusDecided) / float64(n)
		lat := rec.MeanLatency() * 1e3
		thr := rec.Throughput()
		results[stk] = row{lat, thr}
		fmt.Printf("%-11s %10.2f %12.1f %8.2f %10.2f %14.0f\n",
			stk, lat, thr, tot.AvgBatch(),
			float64(tot.MsgsSent)/decisions,
			float64(tot.PayloadBytesSent)/decisions)
		_ = cluster.Close()
	}

	mod, mono := results[modab.Modular], results[modab.Monolithic]
	fmt.Printf("\nmeasured modularity cost: latency +%.0f%%, throughput -%.0f%%\n",
		(mod.lat/mono.lat-1)*100, (1-mod.thr/mono.thr)*100)
	fmt.Printf("analytical (§5.2, M=4): messages %d vs %d per consensus, data overhead %.0f%%\n",
		analytical.ModularMessages(n, 4), analytical.MonolithicMessages(n),
		analytical.Overhead(n)*100)
}
