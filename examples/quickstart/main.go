// Quickstart: a three-process atomic broadcast group in one OS process.
//
// Three processes concurrently abcast greetings; every process adelivers
// exactly the same sequence, demonstrating uniform total order — the
// property that makes atomic broadcast the standard tool for replication.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"modab"
)

func main() {
	const n = 3
	var (
		mu     sync.Mutex
		orders = make([][]string, n)
	)

	group, err := modab.NewLocalGroup(n, modab.Modular, func(p modab.ProcessID, d modab.Delivery) {
		mu.Lock()
		orders[p] = append(orders[p], fmt.Sprintf("%s:%q", d.Msg.ID, d.Msg.Body))
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	defer group.Close()

	// Every process broadcasts concurrently — arrival order at each
	// process's network is arbitrary, the delivery order is not.
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 1; i <= 3; i++ {
				msg := fmt.Sprintf("hello %d from p%d", i, p+1)
				if _, err := group.Abcast(p, []byte(msg)); err != nil {
					log.Printf("abcast: %v", err)
				}
			}
		}(p)
	}
	wg.Wait()

	// Wait until everyone delivered all nine messages.
	waitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, o := range orders {
			if len(o) < n*3 {
				return false
			}
		}
		return true
	})

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("delivery order at each process:")
	for p, o := range orders {
		fmt.Printf("  p%d: %v\n", p+1, o)
	}
	same := true
	for p := 1; p < n; p++ {
		for i := range orders[0] {
			if orders[p][i] != orders[0][i] {
				same = false
			}
		}
	}
	fmt.Printf("identical total order at all processes: %v\n", same)
}

func waitFor(cond func() bool) {
	for !cond() {
		time.Sleep(5 * time.Millisecond)
	}
}
