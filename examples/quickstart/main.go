// Quickstart: a three-process atomic broadcast group in one OS process.
//
// Three processes concurrently abcast greetings; every process adelivers
// exactly the same sequence, demonstrating uniform total order — the
// property that makes atomic broadcast the standard tool for replication.
// Deliveries are consumed from the cluster's pull-based stream.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"modab"
)

func main() {
	const n = 3
	cluster, err := modab.New(n, modab.Modular)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// One consumer drains the cluster-wide delivery stream.
	orders := make([][]string, n)
	sub := cluster.Deliveries()
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for ev := range sub.C() {
			orders[ev.P] = append(orders[ev.P], fmt.Sprintf("%s:%q", ev.D.Msg.ID, ev.D.Msg.Body))
		}
	}()

	// Every process broadcasts concurrently — arrival order at each
	// process's network is arbitrary, the delivery order is not.
	ctx := context.Background()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 1; i <= 3; i++ {
				msg := fmt.Sprintf("hello %d from p%d", i, p+1)
				if _, err := cluster.Abcast(ctx, p, []byte(msg)); err != nil {
					log.Printf("abcast: %v", err)
				}
			}
		}(p)
	}
	wg.Wait()

	// Wait until everyone delivered all nine messages, then end the
	// stream so the consumer goroutine finishes.
	for cluster.Stats().Total.ADeliver < n*n*3 {
		time.Sleep(5 * time.Millisecond)
	}
	if err := cluster.Close(); err != nil {
		log.Fatal(err)
	}
	consumer.Wait()

	fmt.Println("delivery order at each process:")
	for p, o := range orders {
		fmt.Printf("  p%d: %v\n", p+1, o)
	}
	same := true
	for p := 1; p < n; p++ {
		for i := range orders[0] {
			if orders[p][i] != orders[0][i] {
				same = false
			}
		}
	}
	fmt.Printf("identical total order at all processes: %v\n", same)
}
