// Replicated key-value store: the canonical use of atomic broadcast.
//
// Every replica applies the same totally ordered stream of commands to a
// local map, so all replicas stay byte-identical without any further
// coordination (state machine replication, the motivation in the paper's
// introduction). Concurrent writers race — but they race identically at
// every replica. The replicas pull their command streams from
// per-replica delivery subscriptions, demonstrating multi-subscriber
// fan-out on one cluster.
//
//	go run ./examples/replicated-kv
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"modab"
)

// command is the replicated operation, encoded as "SET key value" or
// "DEL key".
type command struct {
	op, key, value string
}

func (c command) encode() []byte {
	if c.op == "DEL" {
		return []byte("DEL " + c.key)
	}
	return []byte("SET " + c.key + " " + c.value)
}

func decode(b []byte) (command, bool) {
	parts := strings.SplitN(string(b), " ", 3)
	switch {
	case len(parts) == 2 && parts[0] == "DEL":
		return command{op: "DEL", key: parts[1]}, true
	case len(parts) == 3 && parts[0] == "SET":
		return command{op: "SET", key: parts[1], value: parts[2]}, true
	default:
		return command{}, false
	}
}

// store is one replica's state machine, driven by one consumer goroutine.
type store struct {
	data    map[string]string
	applied int
}

func (s *store) apply(c command) {
	switch c.op {
	case "SET":
		s.data[c.key] = c.value
	case "DEL":
		delete(s.data, c.key)
	}
	s.applied++
}

// fingerprint hashes the full state, for replica comparison.
func (s *store) fingerprint() string {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s;", k, s.data[k])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func main() {
	const (
		n        = 3
		writers  = 3
		opsEach  = 40
		totalOps = writers * opsEach
	)
	replicas := make([]*store, n)
	for i := range replicas {
		replicas[i] = &store{data: make(map[string]string)}
	}

	cluster, err := modab.New(n, modab.Monolithic)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// One subscription per replica: each consumer applies only its own
	// process's deliveries, at its own pace.
	var consumers sync.WaitGroup
	for i := 0; i < n; i++ {
		sub := cluster.Deliveries()
		consumers.Add(1)
		go func(i int, sub *modab.DeliveryStream) {
			defer consumers.Done()
			for ev := range sub.C() {
				if int(ev.P) != i {
					continue
				}
				if c, ok := decode(ev.D.Msg.Body); ok {
					replicas[i].apply(c)
				}
			}
		}(i, sub)
	}

	// Concurrent writers on different processes, hammering the same keys.
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("k%d", i%7) // deliberate contention
				cmd := command{op: "SET", key: key, value: fmt.Sprintf("w%d-%d", w, i)}
				if i%10 == 9 {
					cmd = command{op: "DEL", key: key}
				}
				if _, err := cluster.Abcast(ctx, w, cmd.encode()); err != nil {
					log.Printf("abcast: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Wait for every process to adeliver everything, then end the streams.
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Stats().Total.ADeliver < int64(n*totalOps) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := cluster.Close(); err != nil {
		log.Fatal(err)
	}
	consumers.Wait()

	fmt.Println("replica states after concurrent writes to contended keys:")
	first := replicas[0].fingerprint()
	consistent := true
	for i, r := range replicas {
		fp := r.fingerprint()
		fmt.Printf("  replica %d: applied=%d state=%s\n", i+1, r.applied, fp)
		if fp != first {
			consistent = false
		}
	}
	fmt.Printf("replicas identical: %v\n", consistent)
}
