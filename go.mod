module modab

go 1.24
