// Package abcast implements the atomic broadcast microprotocol of the
// modular stack: the Chandra–Toueg reduction of atomic broadcast to
// consensus (paper §3.3).
//
// An abcast message is first diffused to every process over the
// quasi-reliable channels (the paper's optimization over rbcast
// diffusion), collected into the pending set, and then ordered by a
// sequence of consensus instances: each instance decides a batch of
// pending messages, which every process adelivers in a deterministic
// order. With sender-side batching enabled (engine.Config.Batch), a
// submitted message first waits in an internal/batch accumulator and is
// diffused together with its batch in a single frame, amortizing the
// per-message layer headers and handler dispatches the paper measures.
// Consensus instances are black boxes here — this layer cannot see
// the coordinator's identity, cannot piggyback payloads on consensus
// messages, and cannot merge a decision with the next proposal. Those are
// exactly the optimizations reserved to the monolithic stack (§4).
//
// Correctness outside good runs: if a sender crashes mid-diffusion, the
// survivors holding the message re-diffuse it after observing consensus
// instances that failed to order it (driven by the idle-kick timer and by
// decision processing), so the coordinator eventually proposes it. This
// implements the guarantee the paper obtains with its "start a consensus
// after t seconds of silence" rule.
package abcast

import (
	"fmt"
	"sort"
	"time"

	"modab/internal/batch"
	"modab/internal/engine"
	"modab/internal/flow"
	"modab/internal/stack"
	"modab/internal/types"
	"modab/internal/wire"
)

// Layer-local timers.
const (
	// timerKick is the idle/retry timer.
	timerKick engine.TimerID = 1
	// timerFlush is the sender-side batching age trigger: armed when a
	// message enters an empty accumulator, it seals whatever accumulated
	// by cfg.Batch.MaxDelay later.
	timerFlush engine.TimerID = 2
)

// rediffuseGrace is how many decided instances a pending message may miss
// before the holder re-diffuses it. It must sit comfortably above the
// flow-control backlog divided by M (the natural number of instances a
// message waits under saturation, 2-3) so the recovery path never fires in
// good runs.
const rediffuseGrace = 8

// Layer is the atomic broadcast microprotocol.
type Layer struct {
	ctx *stack.Context
	cfg engine.Config

	self types.ProcessID
	n    int
	fc   *flow.Controller

	// pending maps unordered known messages to their content; epoch
	// records the next-to-decide instance at insertion time, for staleness
	// detection.
	pending map[types.MsgID]pendingMsg
	// delivered deduplicates adelivered messages per sender.
	delivered map[types.ProcessID]*dedup
	// nextDecide is the lowest instance not yet processed locally.
	nextDecide uint64
	// myProposed is the highest instance this process proposed.
	myProposed uint64
	// decisionsBuf holds out-of-order decisions until their turn.
	decisionsBuf map[uint64]wire.Batch
	// lastProgress is when the last decision was processed or consensus
	// started (guards the kick timer against firing during healthy load).
	lastProgress time.Duration
	// acc is the sender-side batching accumulator, nil when batching is
	// disabled. Admitted messages wait here — already holding a
	// flow-control slot but not yet diffused — until a count, byte or age
	// trigger seals the batch.
	acc *batch.Accumulator
}

var _ stack.Layer = (*Layer)(nil)

// pendingMsg is one unordered message with its staleness epoch.
type pendingMsg struct {
	msg   wire.AppMsg
	epoch uint64
}

// New returns an atomic broadcast layer with the given configuration.
func New(cfg engine.Config) *Layer {
	return &Layer{cfg: cfg}
}

// Tag implements stack.Layer.
func (l *Layer) Tag() stack.Tag { return stack.TagABcast }

// Init implements stack.Layer.
func (l *Layer) Init(ctx *stack.Context) {
	l.ctx = ctx
	l.self = ctx.Env().Self()
	l.n = ctx.Env().N()
	l.fc = flow.NewController(l.self, l.cfg.EffectiveWindow())
	if l.cfg.Batch.Enabled() {
		l.acc = batch.NewAccumulator(l.cfg.Batch)
	}
	l.pending = make(map[types.MsgID]pendingMsg)
	l.delivered = make(map[types.ProcessID]*dedup, l.n)
	l.decisionsBuf = make(map[uint64]wire.Batch)
	l.nextDecide = 1
}

// Start implements stack.Layer.
func (l *Layer) Start() {
	l.armKick()
}

// Pending returns the number of known, unordered messages, including any
// still waiting in the sender-side batch accumulator (diagnostics).
func (l *Layer) Pending() int {
	n := len(l.pending)
	if l.acc != nil {
		n += l.acc.Len()
	}
	return n
}

// InFlight returns the number of local messages held by flow control.
func (l *Layer) InFlight() int { return l.fc.InFlight() }

// Abcast submits one application payload: admit through flow control,
// then either diffuse immediately (batching disabled) or accumulate into
// the sender-side batch, which is diffused and proposed as one unit when
// a count, byte or age trigger seals it.
func (l *Layer) Abcast(body []byte) (types.MsgID, error) {
	id, err := l.fc.Admit()
	if err != nil {
		return types.MsgID{}, err
	}
	msg := wire.AppMsg{ID: id, Body: body}
	c := l.ctx.Env().Counters()
	c.ABCast.Add(1)
	c.Dispatches.Add(1) // application downcall into the stack
	if l.acc == nil {
		l.pending[id] = pendingMsg{msg: msg, epoch: l.nextDecide}
		c.PayloadBytesSent.Add(int64(len(body) * (l.n - 1)))
		l.diffuseOne(msg)
		l.maybeStartConsensus()
		l.armKick()
		return id, nil
	}
	sealed, act := l.acc.Add(msg)
	for _, b := range sealed {
		l.ingestBatch(b)
	}
	switch act {
	case batch.TimerArm:
		l.ctx.SetTimer(timerFlush, l.cfg.Batch.MaxDelay)
	case batch.TimerCancel:
		l.ctx.CancelTimer(timerFlush)
	}
	l.armKick()
	return id, nil
}

// ingestBatch moves a sealed sender-side batch into the ordering path:
// every message becomes pending, the batch is diffused as one frame, and
// consensus is (re)started.
func (l *Layer) ingestBatch(b wire.Batch) {
	c := l.ctx.Env().Counters()
	c.SenderBatches.Add(1)
	c.SenderBatchedMsgs.Add(int64(len(b)))
	c.PayloadBytesSent.Add(int64(b.PayloadBytes() * (l.n - 1)))
	for _, m := range b {
		l.pending[m.ID] = pendingMsg{msg: m, epoch: l.nextDecide}
	}
	w := wire.GetWriter(1 + b.WireSize())
	wire.AppendBatchFrame(w, b)
	l.ctx.NetSendAll(w.Bytes())
	wire.PutWriter(w)
	l.maybeStartConsensus()
}

// diffuseOne sends a single-message diffuse frame to every peer through a
// pooled writer (NetSendAll copies the payload before the writer is
// returned to the pool).
func (l *Layer) diffuseOne(m wire.AppMsg) {
	w := wire.GetWriter(1 + m.WireSize())
	wire.AppendMsgFrame(w, m)
	l.ctx.NetSendAll(w.Bytes())
	wire.PutWriter(w)
}

// Receive implements stack.Layer: a diffused message or batch from a
// peer. Both frame kinds decode to a batch, so one path handles both.
func (l *Layer) Receive(from types.ProcessID, data []byte) error {
	b, err := wire.UnmarshalFrame(data)
	if err != nil {
		return fmt.Errorf("abcast: bad diffuse from %s: %w", from, err)
	}
	for _, msg := range b {
		if l.isDelivered(msg.ID) {
			continue
		}
		if _, known := l.pending[msg.ID]; !known {
			l.pending[msg.ID] = pendingMsg{msg: msg, epoch: l.nextDecide}
		}
	}
	l.armKick()
	l.maybeStartConsensus()
	return nil
}

// maybeStartConsensus proposes the current pending set for the next
// undecided instance, unless a proposal of ours is still in flight.
func (l *Layer) maybeStartConsensus() {
	if l.myProposed >= l.nextDecide {
		return // consensus running
	}
	if len(l.pending) == 0 {
		return
	}
	batch := l.pendingBatch()
	l.myProposed = l.nextDecide
	l.lastProgress = l.ctx.Env().Now()
	l.ctx.Emit(stack.TagConsensus, stack.Event{
		Kind:     stack.EvProposeReq,
		Instance: l.nextDecide,
		Batch:    batch,
	})
}

// pendingBatch snapshots the pending set as a deterministic, optionally
// capped batch.
func (l *Layer) pendingBatch() wire.Batch {
	batch := make(wire.Batch, 0, len(l.pending))
	for _, p := range l.pending {
		batch = append(batch, p.msg)
	}
	batch.SortDeterministic()
	if l.cfg.MaxBatch > 0 && len(batch) > l.cfg.MaxBatch {
		batch = batch[:l.cfg.MaxBatch]
	}
	return batch
}

// Event implements stack.Layer: consensus decisions arrive here, possibly
// out of instance order.
func (l *Layer) Event(ev stack.Event) {
	if ev.Kind != stack.EvDecide {
		return
	}
	if ev.Instance < l.nextDecide {
		return // duplicate decision for an already-processed instance
	}
	l.decisionsBuf[ev.Instance] = ev.Batch
	for {
		batch, ok := l.decisionsBuf[l.nextDecide]
		if !ok {
			break
		}
		delete(l.decisionsBuf, l.nextDecide)
		l.processDecision(l.nextDecide, batch)
		l.nextDecide++
	}
	l.maybeStartConsensus()
	l.armKick()
}

// processDecision adelivers a decided batch in deterministic order,
// releases flow-control slots, and re-diffuses stale survivors.
func (l *Layer) processDecision(k uint64, batch wire.Batch) {
	l.lastProgress = l.ctx.Env().Now()
	ordered := make(wire.Batch, len(batch))
	copy(ordered, batch)
	ordered.SortDeterministic()
	c := l.ctx.Env().Counters()
	for _, m := range ordered {
		delete(l.pending, m.ID)
		if l.isDelivered(m.ID) {
			continue
		}
		l.markDelivered(m.ID)
		c.ADeliver.Add(1)
		l.ctx.Env().Deliver(engine.Delivery{Msg: m, Instance: k})
		if err := l.fc.Delivered(m.ID); err != nil {
			// Duplicate releases indicate a protocol bug; surface loudly
			// in tests via the counters rather than corrupting state.
			c.Retransmissions.Add(1)
		}
	}
	// Survivor re-diffusion: a pending message that predates several
	// decided instances was missed by the coordinator — the only causes
	// are a sender crash mid-diffusion or extreme reordering. Re-diffuse
	// so the next proposal includes it.
	for _, id := range l.sortedPendingIDs() {
		p := l.pending[id]
		if k >= p.epoch && k-p.epoch >= rediffuseGrace {
			p.epoch = l.nextDecide + 1
			l.pending[id] = p
			c.Retransmissions.Add(int64(l.n - 1))
			c.PayloadBytesSent.Add(int64(len(p.msg.Body) * (l.n - 1)))
			l.diffuseOne(p.msg)
		}
	}
}

// Timer implements stack.Layer: the batching age trigger and the idle
// kick. timerFlush seals whatever the accumulator holds (a fire that
// races a count-trigger seal finds it empty and diffuses nothing).
// timerKick retries the proposal when nothing has progressed for the
// configured period (and lets processDecision's staleness rule
// re-diffuse).
func (l *Layer) Timer(id engine.TimerID) {
	if id == timerFlush {
		if l.acc == nil {
			return
		}
		if b := l.acc.Flush(); len(b) > 0 {
			l.ingestBatch(b)
			l.armKick()
		}
		return
	}
	if id != timerKick || l.cfg.IdleKick <= 0 {
		return
	}
	now := l.ctx.Env().Now()
	if len(l.pending) > 0 && now-l.lastProgress >= l.cfg.IdleKick {
		// Stalled: re-diffuse everything still pending so the round-1
		// coordinator certainly learns of it, then (re)propose.
		c := l.ctx.Env().Counters()
		for _, mid := range l.sortedPendingIDs() {
			p := l.pending[mid]
			p.epoch = l.nextDecide + 1
			l.pending[mid] = p
			c.Retransmissions.Add(int64(l.n - 1))
			c.PayloadBytesSent.Add(int64(len(p.msg.Body) * (l.n - 1)))
			l.diffuseOne(p.msg)
		}
		l.maybeStartConsensus()
	}
	if len(l.pending) > 0 {
		l.armKick()
	}
}

// armKick (re-)arms the idle timer when there is anything to watch over.
func (l *Layer) armKick() {
	if l.cfg.IdleKick <= 0 {
		return
	}
	if len(l.pending) > 0 || l.fc.InFlight() > 0 {
		l.ctx.SetTimer(timerKick, l.cfg.IdleKick)
	}
}

// Suspect implements stack.Layer; the reduction itself ignores the failure
// detector (consensus consumes it).
func (l *Layer) Suspect(types.ProcessID, bool) {}

// marshalDiffuse builds a single-message diffuse frame (tests craft
// inbound frames with it; the hot path uses diffuseOne's pooled writer).
func marshalDiffuse(m wire.AppMsg) []byte {
	w := wire.NewWriter(1 + m.WireSize())
	wire.AppendMsgFrame(w, m)
	return w.Bytes()
}

// sortedPendingIDs returns the pending message IDs in deterministic order
// (iteration-driven sends must be reproducible under simulation).
func (l *Layer) sortedPendingIDs() []types.MsgID {
	ids := make([]types.MsgID, 0, len(l.pending))
	for id := range l.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// dedup suppresses duplicate deliveries per sender with a contiguous
// watermark plus sparse set (bounded memory on long runs).
type dedup struct {
	watermark uint64
	sparse    map[uint64]struct{}
}

func (l *Layer) dedupFor(sender types.ProcessID) *dedup {
	d := l.delivered[sender]
	if d == nil {
		d = &dedup{sparse: make(map[uint64]struct{})}
		l.delivered[sender] = d
	}
	return d
}

func (l *Layer) isDelivered(id types.MsgID) bool {
	d := l.dedupFor(id.Sender)
	if id.Seq <= d.watermark {
		return true
	}
	_, ok := d.sparse[id.Seq]
	return ok
}

func (l *Layer) markDelivered(id types.MsgID) {
	d := l.dedupFor(id.Sender)
	if id.Seq <= d.watermark {
		return
	}
	d.sparse[id.Seq] = struct{}{}
	for {
		if _, ok := d.sparse[d.watermark+1]; !ok {
			break
		}
		delete(d.sparse, d.watermark+1)
		d.watermark++
	}
}
