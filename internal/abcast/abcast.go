// Package abcast implements the atomic broadcast microprotocol of the
// modular stack: the Chandra–Toueg reduction of atomic broadcast to
// consensus (paper §3.3).
//
// An abcast message is first diffused to every process over the
// quasi-reliable channels (the paper's optimization over rbcast
// diffusion), collected into the pending set, and then ordered by a
// sequence of consensus instances: each instance decides a batch of
// pending messages, which every process adelivers in a deterministic
// order. With sender-side batching enabled (engine.Config.Batch), a
// submitted message first waits in an internal/batch accumulator and is
// diffused together with its batch in a single frame, amortizing the
// per-message layer headers and handler dispatches the paper measures.
// With pipelining enabled (engine.Config.PipelineDepth > 1) the layer
// keeps up to W consensus instances in flight concurrently, partitioning
// the pending set across them, instead of leaving the wire idle while
// each decision round-trips; depth 1 reproduces the paper's strictly
// sequential instances bit-for-bit.
// Consensus instances are black boxes here — this layer cannot see
// the coordinator's identity, cannot piggyback payloads on consensus
// messages, and cannot merge a decision with the next proposal. Those are
// exactly the optimizations reserved to the monolithic stack (§4).
//
// Correctness outside good runs: if a sender crashes mid-diffusion, the
// survivors holding the message re-diffuse it after observing consensus
// instances that failed to order it (driven by the idle-kick timer and by
// decision processing), so the coordinator eventually proposes it. This
// implements the guarantee the paper obtains with its "start a consensus
// after t seconds of silence" rule.
package abcast

import (
	"fmt"
	"sort"
	"time"

	"modab/internal/batch"
	"modab/internal/dedup"
	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/flow"
	"modab/internal/member"
	"modab/internal/obs"
	"modab/internal/payload"
	"modab/internal/recovery"
	"modab/internal/stack"
	"modab/internal/types"
	"modab/internal/wire"
)

// Layer-local timers.
const (
	// timerKick is the idle/retry timer.
	timerKick engine.TimerID = 1
	// timerFlush is the sender-side batching age trigger: armed when a
	// message enters an empty accumulator, it seals whatever accumulated
	// by cfg.Batch.MaxDelay later.
	timerFlush engine.TimerID = 2
	// timerRecover drives state-transfer retries after a crash-recovery
	// restart.
	timerRecover engine.TimerID = 3
	// timerPayload drives decided-but-not-resident payload refetches under
	// digest ordering: armed when the head decision blocks on a missing
	// payload, it fetches from one rotating live holder per fire (the same
	// deferred single-target pattern as the ring decision refetch).
	timerPayload engine.TimerID = 4
)

// rediffuseGrace is how many decided instances a pending message may miss
// before the holder re-diffuses it. It must sit comfortably above the
// flow-control backlog divided by M (the natural number of instances a
// message waits under saturation, 2-3) so the recovery path never fires in
// good runs. With pipelining the grace scales by the window W: a W-deep
// pipeline both widens the flow-control backlog W× and keeps W instances
// worth of messages legitimately waiting, so the natural instance wait
// grows by the same factor.
const rediffuseGrace = 8

// Layer is the atomic broadcast microprotocol.
type Layer struct {
	ctx *stack.Context
	cfg engine.Config

	self types.ProcessID
	// n is the boot upper bound of the process-ID space (Env.N), used only
	// for sizing hints; group-size decisions go through hist.
	n  int
	fc *flow.Controller
	// hist is the decided membership history: every fan-out, quorum-size
	// and retention decision consults a view from it, never the boot n. A
	// decided config op appends a view here and propagates to the
	// consensus and rbcast layers as a stack.EvConfig event.
	hist *member.History
	// retires maps a remove boundary (the new view's activation instance)
	// to the origins removed there; consumed when the last old-view
	// instance is processed — the earliest point at which no undecided
	// instance can still reference the removed origin's pending state.
	retires map[uint64][]types.ProcessID
	// draining guards drainDecisions against re-entry: applying a config
	// op mid-delivery synchronously pokes the consensus layer, which may
	// bounce an event back into this layer.
	draining bool
	// diss is the payload-dissemination strategy (internal/dissem): every
	// diffuse frame goes out through spread, which either broadcasts it
	// (AllToAll — the paper's pinned behavior) or hands it to the ring's
	// first live successor for relaying.
	diss dissem.Disseminator

	// pending maps unordered known messages to their content; epoch
	// records the next-to-decide instance at insertion time, for staleness
	// detection, and assigned the in-flight proposal (if any) currently
	// carrying the message.
	pending map[types.MsgID]pendingMsg
	// delivered deduplicates adelivered messages per sender.
	delivered dedup.Map
	// nextDecide is the lowest instance not yet processed locally.
	nextDecide uint64
	// inflight maps every instance this process proposed and has not yet
	// processed the decision of to the message IDs it proposed there. Its
	// size is bounded by pipe: that bound IS the consensus pipeline.
	inflight map[uint64][]types.MsgID
	// pipe is the effective pipeline window W (>= 1); 1 reproduces the
	// paper's strictly sequential instances bit-for-bit.
	pipe int
	// decisionsBuf holds out-of-order decisions until their turn. With
	// pipelining, decisions for up to W instances legitimately race each
	// other here (the paper's sequential stack only ever buffered
	// reordered rbcast deliveries). Under digest ordering a buffered
	// decision is either a descriptor batch straight from consensus
	// (resolved == false) or a payload batch from state transfer
	// (resolved == true) — the flag is explicit because a real
	// application message with a 16-byte body would alias a descriptor.
	decisionsBuf map[uint64]decision
	// snapIDs caches the proposable (pending, unassigned) message IDs in
	// sorted order between pendingBatch calls; snapClean reports the cache
	// still matches the pending set and assignments.
	snapIDs   []types.MsgID
	snapClean bool
	// lastProgress is when the last decision was processed or consensus
	// started (guards the kick timer against firing during healthy load).
	lastProgress time.Duration
	// acc is the sender-side batching accumulator, nil when batching is
	// disabled. Admitted messages wait here — already holding a
	// flow-control slot but not yet diffused — until a count, byte or age
	// trigger seals the batch.
	acc *batch.Accumulator
	// rec tracks state-transfer progress after a crash-recovery restart;
	// while active the layer does not propose (re-entering long-decided,
	// peer-pruned instances could manufacture a conflicting decision).
	rec recovery.Catchup
	// recLastSeen is nextDecide at the last recovery-timer fire: the timer
	// re-announces only when no progress happened in between, so a healthy
	// transfer is not multiplied by periodic re-broadcasts.
	recLastSeen uint64
	// snap tracks an in-progress snapshot fetch: the far-behind branch of
	// the catch-up, entered when a responder reports a snapshot at or
	// above our missing instance but cannot serve the instances themselves
	// (it truncated its log below the snapshot horizon).
	snap snapFetch

	// Digest-ordering state (cfg.DigestOrdering; all nil/zero otherwise).
	// store holds disseminated payload bytes while consensus orders only
	// descriptors; nextDSeq mints incarnation-tagged descriptor sequence
	// numbers; descDone remembers delivered descriptors (pruned with the
	// decision horizon) so duplicate announces don't re-enter pending;
	// recoveredDescs are the restart-regrouped own descriptors Start
	// re-announces; pw is the blocked-head payload wait; suspectedSet
	// feeds the refetch target rotation.
	store          *payload.Store
	nextDSeq       uint64
	descDone       map[types.MsgID]uint64
	recoveredDescs []wire.Descriptor
	pw             payloadWait
	suspectedSet   map[types.ProcessID]bool
}

// decision is one buffered consensus outcome; resolved reports whether
// Batch already carries real application messages (state transfer) rather
// than descriptors still needing payload resolution.
type decision struct {
	batch    wire.Batch
	resolved bool
}

// payloadWait tracks a head decision blocked on a non-resident payload:
// since anchors the blocked-time accounting, to is the refetch rotation
// cursor.
type payloadWait struct {
	active bool
	since  time.Duration
	to     types.ProcessID
}

// snapFetch is the chunk-assembly state of one snapshot transfer.
type snapFetch struct {
	active    bool
	from      types.ProcessID
	index     uint64
	total     int
	buf       []byte
	startedAt time.Duration
	lastLen   int // buffered bytes at the last recovery-timer fire
	stalls    int // consecutive recovery-timer fires without progress
}

var _ stack.Layer = (*Layer)(nil)

// pendingMsg is one unordered message with its staleness epoch and the
// in-flight instance it is currently proposed in (0 = unassigned). The
// assignment partitions the pending set across the open pipeline window:
// no message of ours rides two concurrent proposals, so concurrent
// instances order disjoint slices of the backlog.
type pendingMsg struct {
	msg      wire.AppMsg
	epoch    uint64
	assigned uint64
}

// New returns an atomic broadcast layer with the given configuration.
func New(cfg engine.Config) *Layer {
	return &Layer{cfg: cfg}
}

// Tag implements stack.Layer.
func (l *Layer) Tag() stack.Tag { return stack.TagABcast }

// Init implements stack.Layer.
func (l *Layer) Init(ctx *stack.Context) {
	l.ctx = ctx
	l.self = ctx.Env().Self()
	l.n = ctx.Env().N()
	l.fc = flow.NewController(l.self, l.cfg.EffectiveWindow())
	if l.cfg.Batch.Enabled() {
		l.acc = batch.NewAccumulator(l.cfg.Batch)
	}
	var incarnation uint64
	if st := l.cfg.Recovered; st != nil {
		incarnation = st.Boots
	}
	l.diss = dissem.New(l.cfg.Dissemination, l.self, l.n, incarnation)
	l.pending = make(map[types.MsgID]pendingMsg)
	l.delivered = dedup.NewMap(l.n)
	l.decisionsBuf = make(map[uint64]decision)
	l.inflight = make(map[uint64][]types.MsgID)
	l.pipe = l.cfg.EffectivePipeline()
	l.nextDecide = 1
	if v := l.cfg.InitialView; v != nil {
		l.hist = member.NewHistoryFrom(*v)
	} else {
		l.hist = member.NewHistory(l.n)
	}
	l.retires = make(map[uint64][]types.ProcessID)
	if l.cfg.DigestOrdering {
		l.store = payload.NewStore()
		l.descDone = make(map[types.MsgID]uint64)
		l.suspectedSet = make(map[types.ProcessID]bool)
		l.nextDSeq = incarnation << wire.DSeqIncarnationShift
	}
	if st := l.cfg.Recovered; st != nil {
		// Adopt the replayed state: decided watermark, per-sender delivered
		// suppression, the unordered own backlog (re-occupying its
		// flow-control slots) and the resumed sequence numbering.
		l.nextDecide = st.NextDecide
		if st.Delivered != nil {
			l.delivered = st.Delivered
		}
		seqs := make([]uint64, 0, len(st.Own))
		for _, m := range st.Own {
			seqs = append(seqs, m.ID.Seq)
			if !l.cfg.DigestOrdering {
				l.pending[m.ID] = pendingMsg{msg: m, epoch: l.nextDecide}
			}
		}
		if l.cfg.DigestOrdering {
			// The replayed backlog re-enters the ordering path as fresh
			// incarnation-tagged descriptors over maximal contiguous runs
			// (batch boundaries are not logged, so the regrouping may
			// differ from the pre-crash ones; per-message delivery dedup
			// makes any overlap harmless).
			l.recoveredDescs = l.regroupOwn(st.Own)
		}
		var last uint64
		if st.NextSeq > 0 {
			last = st.NextSeq - 1
		}
		l.fc.Resume(last, seqs)
		// Rebuild the membership history from the replayed log: config ops
		// ride the total order as ordinary decided messages, so re-applying
		// them in instance order reconstructs exactly the view sequence the
		// pre-crash incarnation held. (A log truncated below a config op
		// loses that provenance; the netsim and runtime drivers keep
		// membership runs untruncated, and joiners get InitialView instead.)
		if l.cfg.Persist != nil {
			for k := uint64(1); k < l.nextDecide; k++ {
				b, ok := l.cfg.Persist.ReadDecision(k)
				if !ok {
					continue
				}
				for _, m := range b {
					if op, isCfg := member.DecodeOp(m.Body); isCfg {
						l.hist.Apply(op, k, l.pipe)
					}
				}
			}
		}
	}
}

// regroupOwn splits the replayed own backlog into maximal contiguous
// sequence runs, mints a descriptor for each, makes the payloads resident
// and the descriptors pending. Only called under digest ordering.
func (l *Layer) regroupOwn(own wire.Batch) []wire.Descriptor {
	if len(own) == 0 {
		return nil
	}
	sorted := make(wire.Batch, len(own))
	copy(sorted, own)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID.Seq < sorted[j].ID.Seq })
	var descs []wire.Descriptor
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) && sorted[i].ID.Seq == sorted[i-1].ID.Seq+1 {
			continue
		}
		run := sorted[start:i]
		l.nextDSeq++
		d, err := wire.DescriptorFor(run, l.nextDSeq)
		if err == nil {
			l.store.PutBatch(run)
			pm := d.AppMsg()
			l.pending[pm.ID] = pendingMsg{msg: pm, epoch: l.nextDecide}
			descs = append(descs, d)
		}
		start = i
	}
	return descs
}

// Start implements stack.Layer. A recovered layer re-diffuses its
// unordered own messages (already logged — no re-persist), announces
// itself, and catches up on missed decisions before proposing anything.
func (l *Layer) Start() {
	// Propagate any non-boot views (joiner seed, replayed config ops) to
	// the peer layers now that every layer is initialized, and point the
	// local dissemination/flow seams at the current view. The modular
	// driver additionally seeds the consensus and rbcast layers directly
	// for joiners; the re-emission is idempotent there.
	if cur := l.hist.Current(); cur.Epoch > 0 {
		for _, v := range l.hist.Views() {
			if v.Epoch == 0 {
				continue
			}
			l.emitConfig(v)
		}
		l.reconfigureLocal(cur)
	}
	if st := l.cfg.Recovered; st != nil {
		c := l.ctx.Env().Counters()
		c.Recoveries.Add(1)
		c.RecoveryReplayedMsgs.Add(st.ReplayedMsgs)
		if len(st.Own) > 0 {
			if l.cfg.DigestOrdering {
				// Re-announce the regrouped backlog: payloads travel once
				// more through the dissemination seam, descriptors re-enter
				// the ordering path.
				for _, d := range l.recoveredDescs {
					if b, ok := l.store.Range(d); ok {
						l.announce(d, b)
					}
				}
			} else {
				w := wire.GetWriter(1 + st.Own.WireSize())
				wire.AppendBatchFrame(w, st.Own)
				l.spread(w.Bytes(), st.Own.PayloadBytes())
				wire.PutWriter(w)
			}
		}
		if l.others() > 0 {
			l.rec.Begin(l.ctx.Env().Now(), recovery.Quorum(len(l.hist.Current().Members)))
			l.recLastSeen = l.nextDecide
			l.sendRecoverReq(types.Nobody)
			if l.cfg.ResendEvery > 0 {
				l.ctx.SetTimer(timerRecover, l.cfg.ResendEvery)
			}
		} else {
			l.maybeStartConsensus()
		}
	}
	l.armKick()
}

// sendRecoverReq sends a state-transfer request — to one peer, or to all
// of them when to is types.Nobody (announce/retry).
func (l *Layer) sendRecoverReq(to types.ProcessID) {
	w := wire.GetWriter(16)
	wire.AppendRecoverReqFrame(w, wire.RecoverReq{From: l.nextDecide})
	if to == types.Nobody {
		l.ctx.NetSendMembers(l.hist.Current().Members, w.Bytes())
	} else {
		l.ctx.NetSend(to, w.Bytes())
	}
	wire.PutWriter(w)
}

// Pending returns the number of known, unordered messages, including any
// still waiting in the sender-side batch accumulator (diagnostics).
func (l *Layer) Pending() int {
	n := len(l.pending)
	if l.acc != nil {
		n += l.acc.Len()
	}
	return n
}

// InFlight returns the number of local messages held by flow control.
func (l *Layer) InFlight() int { return l.fc.InFlight() }

// Abcast submits one application payload: admit through flow control,
// then either diffuse immediately (batching disabled) or accumulate into
// the sender-side batch, which is diffused and proposed as one unit when
// a count, byte or age trigger seals it.
func (l *Layer) Abcast(body []byte) (types.MsgID, error) {
	id, err := l.fc.Admit()
	if err != nil {
		return types.MsgID{}, err
	}
	msg := wire.AppMsg{ID: id, Body: body}
	c := l.ctx.Env().Counters()
	c.ABCast.Add(1)
	c.Dispatches.Add(1) // application downcall into the stack
	l.cfg.Obs.Submitted(id, l.ctx.Env().Now())
	if l.acc == nil {
		if l.cfg.DigestOrdering {
			// Unbatched digest mode: the message is its own announced batch.
			l.ingestBatch(wire.Batch{msg})
			l.armKick()
			return id, nil
		}
		if l.cfg.Persist != nil {
			// Write-ahead of the first diffusion: nothing reaches the wire
			// that a restarted incarnation would not find in its log.
			l.cfg.Persist.PersistAdmit(wire.Batch{msg})
		}
		l.pending[id] = pendingMsg{msg: msg, epoch: l.nextDecide}
		l.snapClean = false
		// Unbatched: the message is its own sealed batch.
		l.cfg.Obs.Stage(id, obs.StageSeal, l.ctx.Env().Now())
		l.diffuseOne(msg)
		l.maybeStartConsensus()
		l.armKick()
		return id, nil
	}
	sealed, act := l.acc.Add(msg)
	for _, b := range sealed {
		l.ingestBatch(b)
	}
	switch act {
	case batch.TimerArm:
		l.ctx.SetTimer(timerFlush, l.cfg.Batch.MaxDelay)
	case batch.TimerCancel:
		l.ctx.CancelTimer(timerFlush)
	}
	l.armKick()
	return id, nil
}

// ingestBatch moves a sealed sender-side batch into the ordering path:
// every message becomes pending, the batch is diffused as one frame, and
// consensus is (re)started.
func (l *Layer) ingestBatch(b wire.Batch) {
	if l.cfg.Persist != nil {
		// Write-ahead of the batch's first diffusion. Messages still inside
		// the accumulator are not yet durable — their sequence numbers never
		// reached the wire, so a crash simply forgets them.
		l.cfg.Persist.PersistAdmit(b)
	}
	c := l.ctx.Env().Counters()
	c.SenderBatches.Add(1)
	c.SenderBatchedMsgs.Add(int64(len(b)))
	if o := l.cfg.Obs; o != nil {
		now := l.ctx.Env().Now()
		for _, m := range b {
			o.Stage(m.ID, obs.StageSeal, now)
		}
	}
	if l.cfg.DigestOrdering {
		// Disseminate the payload once, order only the descriptor: the
		// batch becomes resident, its descriptor becomes the pending
		// pseudo-message consensus will carry. Own sealed batches are
		// contiguous by construction (flow control assigns sequential
		// seqs and the accumulator preserves admission order).
		l.nextDSeq++
		d, err := wire.DescriptorFor(b, l.nextDSeq)
		if err == nil {
			l.store.PutBatch(b)
			pm := d.AppMsg()
			l.pending[pm.ID] = pendingMsg{msg: pm, epoch: l.nextDecide}
			l.snapClean = false
			l.announce(d, b)
			l.maybeStartConsensus()
			return
		}
		// Unreachable for own batches; fall through to plain diffusion so
		// a shape bug degrades instead of losing the messages.
	}
	for _, m := range b {
		l.pending[m.ID] = pendingMsg{msg: m, epoch: l.nextDecide}
	}
	l.snapClean = false
	w := wire.GetWriter(1 + b.WireSize())
	wire.AppendBatchFrame(w, b)
	l.spread(w.Bytes(), b.PayloadBytes())
	wire.PutWriter(w)
	l.maybeStartConsensus()
}

// announce spreads one payload-announce frame (descriptor + batch)
// through the dissemination strategy.
func (l *Layer) announce(d wire.Descriptor, b wire.Batch) {
	w := wire.GetWriter(32 + b.WireSize())
	wire.AppendAnnounceFrame(w, d, b)
	l.spread(w.Bytes(), b.PayloadBytes())
	wire.PutWriter(w)
}

// diffuseOne spreads a single-message diffuse frame through a pooled
// writer (the drivers copy the payload before the writer is returned to
// the pool).
func (l *Layer) diffuseOne(m wire.AppMsg) {
	w := wire.GetWriter(1 + m.WireSize())
	wire.AppendMsgFrame(w, m)
	l.spread(w.Bytes(), len(m.Body))
	wire.PutWriter(w)
}

// spread transmits one diffuse frame according to the dissemination
// strategy and owns its payload-byte accounting: a plain broadcast costs
// the origin payloadBytes on each of n-1 links (the paper's behavior,
// bit-identical under AllToAll), a ring origin pays for exactly one
// transmission and lets the successors carry the rest.
func (l *Layer) spread(frame []byte, payloadBytes int) {
	c := l.ctx.Env().Counters()
	h, to, relay := l.diss.Origin()
	if !relay {
		members := l.hist.Current().Members
		others := l.others()
		c.PayloadBytesSent.Add(int64(payloadBytes * others))
		c.DisseminatedBytes.Add(int64(len(frame) * others))
		l.ctx.NetSendMembers(members, frame)
		return
	}
	c.PayloadBytesSent.Add(int64(payloadBytes))
	w := wire.GetWriter(16 + len(frame))
	wire.AppendRelayFrame(w, h, frame)
	c.DisseminatedBytes.Add(int64(len(w.Bytes())))
	l.ctx.NetSend(to, w.Bytes())
	wire.PutWriter(w)
}

// spreadFanout is how many transmissions one spread costs the origin —
// the multiplier the retransmission accounting uses.
func (l *Layer) spreadFanout() int {
	if l.diss.Strategy() == dissem.Ring && len(l.hist.Current().Members) >= 3 {
		return 1
	}
	return l.others()
}

// others returns the number of current-view members other than self —
// the broadcast fan-out. A process being removed (self no longer a
// member) still counts every member.
func (l *Layer) others() int {
	n := 0
	for _, p := range l.hist.Current().Members {
		if p != l.self {
			n++
		}
	}
	return n
}

// Receive implements stack.Layer: a diffused message or batch from a
// peer (both decode to a batch, so one path handles both), or a
// state-transfer frame of the crash-recovery protocol.
func (l *Layer) Receive(from types.ProcessID, data []byte) error {
	switch wire.FrameKind(data) {
	case wire.FrameRecoverReq:
		req, err := wire.UnmarshalRecoverReq(data)
		if err != nil {
			return fmt.Errorf("abcast: bad recover-req from %s: %w", from, err)
		}
		l.handleRecoverReq(from, req)
		return nil
	case wire.FrameRecoverResp:
		resp, err := wire.UnmarshalRecoverResp(data)
		if err != nil {
			return fmt.Errorf("abcast: bad recover-resp from %s: %w", from, err)
		}
		l.handleRecoverResp(from, resp)
		return nil
	case wire.FrameSnapReq:
		req, err := wire.UnmarshalSnapReq(data)
		if err != nil {
			return fmt.Errorf("abcast: bad snap-req from %s: %w", from, err)
		}
		l.handleSnapReq(from, req)
		return nil
	case wire.FrameSnapResp:
		resp, err := wire.UnmarshalSnapResp(data)
		if err != nil {
			return fmt.Errorf("abcast: bad snap-resp from %s: %w", from, err)
		}
		l.handleSnapResp(from, resp)
		return nil
	case wire.FrameRelay:
		return l.handleRelay(from, data)
	case wire.FrameAnnounce:
		if !l.cfg.DigestOrdering {
			return fmt.Errorf("abcast: announce from %s without digest ordering", from)
		}
		d, b, err := wire.UnmarshalAnnounceFrame(data)
		if err != nil {
			return fmt.Errorf("abcast: bad announce from %s: %w", from, err)
		}
		l.handleAnnounce(d, b)
		return nil
	case wire.FramePayloadFetch:
		if !l.cfg.DigestOrdering {
			return fmt.Errorf("abcast: payload-fetch from %s without digest ordering", from)
		}
		d, err := wire.UnmarshalPayloadFetch(data)
		if err != nil {
			return fmt.Errorf("abcast: bad payload-fetch from %s: %w", from, err)
		}
		l.handlePayloadFetch(from, d)
		return nil
	case wire.FramePayloadResp:
		if !l.cfg.DigestOrdering {
			return fmt.Errorf("abcast: payload-resp from %s without digest ordering", from)
		}
		d, b, err := wire.UnmarshalPayloadRespFrame(data)
		if err != nil {
			return fmt.Errorf("abcast: bad payload-resp from %s: %w", from, err)
		}
		l.handlePayloadResp(d, b)
		return nil
	}
	if l.cfg.DigestOrdering {
		// A plain payload diffuse under digest ordering means the cluster
		// runs mixed configurations; reject it before it poisons the
		// pending set with payload-mode entries.
		return fmt.Errorf("abcast: plain diffuse from %s under digest ordering", from)
	}
	b, err := wire.UnmarshalFrame(data)
	if err != nil {
		return fmt.Errorf("abcast: bad diffuse from %s: %w", from, err)
	}
	l.ingestDiffused(b)
	return nil
}

// handleAnnounce ingests a disseminated payload batch and its descriptor:
// the payload becomes resident (fetchable, resolvable), the descriptor
// becomes pending for ordering unless already delivered, and a head
// decision blocked on this payload unblocks.
func (l *Layer) handleAnnounce(d wire.Descriptor, b wire.Batch) {
	if !l.hist.Current().Contains(d.Origin) {
		// A removed (or not-yet-added) origin's announce must not re-enter
		// the pending set: nothing will ever propose it past the remove
		// boundary, so pooling it would leak and re-kick forever. A joiner
		// racing its own add simply re-announces until the add activates.
		return
	}
	pm := d.AppMsg()
	if _, done := l.descDone[pm.ID]; done {
		return // duplicate announce of a delivered descriptor
	}
	l.store.PutBatch(b)
	if l.rangeFullyDelivered(d) {
		// Every message of the range is already adelivered — learned
		// through a recovery chunk or snapshot install that never named
		// this descriptor ID — so there is nothing left to order. Retire
		// it instead of pooling: a pending entry no decision will ever
		// cover would be re-announced by the origin's kick forever.
		delete(l.pending, pm.ID)
		l.snapClean = false
		l.descDone[pm.ID] = l.nextDecide - 1
		l.store.MarkDelivered(d, l.nextDecide-1)
		return
	}
	if _, known := l.pending[pm.ID]; !known {
		l.pending[pm.ID] = pendingMsg{msg: pm, epoch: l.nextDecide}
		l.snapClean = false
	}
	l.drainDecisions()
	l.maybeStartConsensus()
	l.armKick()
}

// handlePayloadFetch serves a decided-but-not-resident repair request from
// the local store; a miss is silently ignored — the requester's timer
// rotates to the next holder.
func (l *Layer) handlePayloadFetch(from types.ProcessID, d wire.Descriptor) {
	b, ok := l.store.Range(d)
	if !ok {
		return
	}
	c := l.ctx.Env().Counters()
	c.Retransmissions.Add(1)
	c.PayloadBytesSent.Add(int64(b.PayloadBytes()))
	w := wire.GetWriter(32 + b.WireSize())
	wire.AppendPayloadRespFrame(w, d, b)
	c.DisseminatedBytes.Add(int64(len(w.Bytes())))
	l.ctx.NetSend(from, w.Bytes())
	wire.PutWriter(w)
}

// handlePayloadResp ingests a repair response (validated against its
// descriptor at the wire layer) and retries the blocked head.
func (l *Layer) handlePayloadResp(d wire.Descriptor, b wire.Batch) {
	l.store.PutBatch(b)
	l.drainDecisions()
	l.maybeStartConsensus()
	l.armKick()
}

// handleRelay processes a ring-relayed diffuse frame: validate the inner
// frame, consult the disseminator's dedup watermark (a duplicate is
// dropped whole), forward the frame to our successor when the lap is not
// complete, then ingest the inner batch exactly like a directly diffused
// frame.
func (l *Layer) handleRelay(from types.ProcessID, data []byte) error {
	h, inner, err := wire.UnmarshalRelayFrame(data)
	if err != nil {
		return fmt.Errorf("abcast: bad relay from %s: %w", from, err)
	}
	if l.cfg.DigestOrdering {
		// Ring dissemination under digest ordering relays announce frames.
		if wire.FrameKind(inner) != wire.FrameAnnounce {
			return fmt.Errorf("abcast: relayed non-announce from %s under digest ordering", from)
		}
		d, b, err := wire.UnmarshalAnnounceFrame(inner)
		if err != nil {
			return fmt.Errorf("abcast: bad relayed announce from %s: %w", from, err)
		}
		nh, to, process, forward := l.diss.Accept(h)
		if !process {
			return nil
		}
		if forward {
			c := l.ctx.Env().Counters()
			c.PayloadBytesSent.Add(int64(b.PayloadBytes()))
			c.DisseminatedBytes.Add(int64(len(data)))
			w := wire.GetWriter(len(data))
			wire.AppendRelayFrame(w, nh, inner)
			l.ctx.NetSend(to, w.Bytes())
			wire.PutWriter(w)
		}
		l.handleAnnounce(d, b)
		return nil
	}
	b, err := wire.UnmarshalFrame(inner)
	if err != nil {
		return fmt.Errorf("abcast: bad relayed diffuse from %s: %w", from, err)
	}
	nh, to, process, forward := l.diss.Accept(h)
	if !process {
		return nil
	}
	if forward {
		c := l.ctx.Env().Counters()
		c.PayloadBytesSent.Add(int64(b.PayloadBytes()))
		c.DisseminatedBytes.Add(int64(len(data)))
		w := wire.GetWriter(len(data))
		wire.AppendRelayFrame(w, nh, inner)
		l.ctx.NetSend(to, w.Bytes())
		wire.PutWriter(w)
	}
	l.ingestDiffused(b)
	return nil
}

// ingestDiffused adds a received diffuse batch to the pending set and
// (re)starts consensus — the shared tail of the direct and relayed
// receive paths.
func (l *Layer) ingestDiffused(b wire.Batch) {
	cur := l.hist.Current()
	for _, msg := range b {
		if l.isDelivered(msg.ID) || !cur.Contains(msg.ID.Sender) {
			continue
		}
		if _, known := l.pending[msg.ID]; !known {
			l.pending[msg.ID] = pendingMsg{msg: msg, epoch: l.nextDecide}
			l.snapClean = false
		}
	}
	l.armKick()
	l.maybeStartConsensus()
}

// handleRecoverReq serves a restarted peer a chunk of decided instances
// from the local write-ahead log. The layer itself retains no decided
// batches (decisions live behind the consensus black box), so without a
// log it can only report its decided horizon and let another peer serve
// the data.
func (l *Layer) handleRecoverReq(from types.ProcessID, req wire.RecoverReq) {
	resp := wire.RecoverResp{UpTo: l.nextDecide - 1}
	if l.cfg.Snapshots != nil && l.cfg.Snapshots.Latest != nil {
		if idx, ok := l.cfg.Snapshots.Latest(); ok {
			resp.SnapIndex = idx
		}
	}
	end := recovery.ChunkEnd(req.From, resp.UpTo)
	for k := req.From; end > 0 && k <= end && l.cfg.Persist != nil; k++ {
		batch, ok := l.cfg.Persist.ReadDecision(k)
		if !ok {
			break // can't serve a contiguous run past this point
		}
		resp.Decisions = append(resp.Decisions, wire.DecidedInstance{K: k, Batch: batch})
	}
	c := l.ctx.Env().Counters()
	c.Retransmissions.Add(1)
	for _, d := range resp.Decisions {
		c.PayloadBytesSent.Add(int64(d.Batch.PayloadBytes()))
	}
	w := wire.GetWriter(16)
	wire.AppendRecoverRespFrame(w, resp)
	l.ctx.NetSend(from, w.Bytes())
	wire.PutWriter(w)
}

// handleRecoverResp applies a state-transfer chunk through the normal
// decision path (persisted, adelivered, deduplicated), then either
// completes the catch-up or pulls the next chunk from the same peer.
//
// Decisions are applied even when the catch-up has already finished: the
// finish can race a still-in-flight chunk (the quorum check can be
// satisfied by a responder that is itself lagging — e.g. the peer that
// sat on the other side of a healed partition), and the raced chunk may
// carry decisions whose dissemination this process permanently missed
// while down. Discarding it would leave an unhealable gap (found by the
// chaos harness under partition+crash+restart schedules).
func (l *Layer) handleRecoverResp(from types.ProcessID, resp wire.RecoverResp) {
	c := l.ctx.Env().Counters()
	before := l.nextDecide
	for _, d := range resp.Decisions {
		if d.K < l.nextDecide {
			continue // already applied (replay, buffered decision, racing chunk)
		}
		c.RecoveryFetchedMsgs.Add(int64(len(d.Batch)))
		// State-transfer decisions are served from the responder's log,
		// which stores resolved payload batches even under digest ordering.
		l.enqueueDecision(d.K, d.Batch, true)
	}
	if !l.rec.Active() {
		return // finished catch-up: the decisions above were still usable
	}
	l.rec.Observe(from, resp.UpTo)
	if dur, done := l.rec.MaybeFinish(l.nextDecide, l.ctx.Env().Now()); done {
		c.RecoveryNanos.Add(dur.Nanoseconds())
		l.cfg.Obs.RecoveryObserved(dur)
		l.ctx.CancelTimer(timerRecover)
		l.finishRecovery()
		return
	}
	// Pull the next chunk only from a peer whose response advanced us:
	// the broadcast announce fans out to everyone, and without this gate
	// every responder would ship the same backlog in parallel.
	if l.nextDecide > before && l.nextDecide <= l.rec.Target() {
		l.sendRecoverReq(from)
		return
	}
	// Far-behind branch: the responder could not serve our missing
	// instance (it truncated its log below its snapshot horizon) but holds
	// a snapshot covering it. Fetch and install the snapshot, then resume
	// per-instance catch-up above it.
	if l.nextDecide == before && resp.SnapIndex >= l.nextDecide &&
		l.cfg.Snapshots != nil && !l.snap.active {
		l.beginSnapFetch(from, resp.SnapIndex)
	}
}

// beginSnapFetch starts fetching the snapshot at index from one peer.
func (l *Layer) beginSnapFetch(from types.ProcessID, index uint64) {
	l.snap = snapFetch{active: true, from: from, index: index, startedAt: l.ctx.Env().Now()}
	l.sendSnapReq()
}

// sendSnapReq requests the next chunk of the in-progress snapshot fetch.
func (l *Layer) sendSnapReq() {
	w := wire.GetWriter(24)
	wire.AppendSnapReqFrame(w, wire.SnapReq{Index: l.snap.index, Offset: uint64(len(l.snap.buf))})
	l.ctx.NetSend(l.snap.from, w.Bytes())
	wire.PutWriter(w)
}

// handleSnapReq serves one chunk of the local latest snapshot. A request
// for a snapshot this process no longer has (it moved on) is answered
// with the newest one from offset 0; the requester restarts its assembly.
func (l *Layer) handleSnapReq(from types.ProcessID, req wire.SnapReq) {
	if l.cfg.Snapshots == nil || l.cfg.Snapshots.Latest == nil || l.cfg.Snapshots.Read == nil {
		return
	}
	resp := wire.SnapResp{UpTo: l.nextDecide - 1}
	if idx, ok := l.cfg.Snapshots.Latest(); ok {
		off := req.Offset
		if idx != req.Index {
			off = 0
		}
		if data, total, ok := l.cfg.Snapshots.Read(idx, int(off), wire.SnapChunk); ok {
			resp.Index = idx
			resp.Total = uint64(total)
			resp.Offset = off
			resp.Data = data
		}
	}
	c := l.ctx.Env().Counters()
	c.Retransmissions.Add(1)
	w := wire.GetWriter(64 + len(resp.Data))
	wire.AppendSnapRespFrame(w, resp)
	l.ctx.NetSend(from, w.Bytes())
	wire.PutWriter(w)
}

// handleSnapResp assembles snapshot chunks and installs the completed
// envelope: application state through the driver hook, dedup merge and
// watermark jump in the layer, then per-instance catch-up resumes for
// whatever suffix remains above the snapshot.
func (l *Layer) handleSnapResp(from types.ProcessID, resp wire.SnapResp) {
	if !l.snap.active || from != l.snap.from {
		return
	}
	if resp.Total == 0 || resp.Index < l.nextDecide {
		// The responder lost its snapshot, or we advanced past it while
		// fetching; the recovery timer finds another path.
		l.snap = snapFetch{}
		return
	}
	if resp.Index != l.snap.index {
		// The responder rotated to a newer snapshot: restart the assembly.
		l.snap.index = resp.Index
		l.snap.buf = l.snap.buf[:0]
		if resp.Offset != 0 {
			l.sendSnapReq()
			return
		}
	}
	if int(resp.Offset) != len(l.snap.buf) {
		l.sendSnapReq() // duplicate or reordered chunk: re-request in place
		return
	}
	l.snap.total = int(resp.Total)
	l.snap.buf = append(l.snap.buf, resp.Data...)
	l.rec.Observe(from, resp.UpTo)
	if len(l.snap.buf) < l.snap.total {
		l.sendSnapReq()
		return
	}
	env, err := wire.UnmarshalSnapshotEnvelope(l.snap.buf)
	took := l.ctx.Env().Now() - l.snap.startedAt
	l.snap = snapFetch{}
	if err != nil || env.Index < l.nextDecide {
		return
	}
	if err := l.installSnapshot(env); err != nil {
		return
	}
	c := l.ctx.Env().Counters()
	c.SnapshotInstalls.Add(1)
	c.SnapshotInstallNanos.Add(took.Nanoseconds())
	l.cfg.Obs.InstallObserved(took)
	if dur, done := l.rec.MaybeFinish(l.nextDecide, l.ctx.Env().Now()); done {
		c.RecoveryNanos.Add(dur.Nanoseconds())
		l.cfg.Obs.RecoveryObserved(dur)
		l.ctx.CancelTimer(timerRecover)
		l.finishRecovery()
		return
	}
	if l.rec.Active() {
		l.sendRecoverReq(from)
	}
}

// installSnapshot adopts a fetched snapshot: the application side first
// (persist + state machine restore, through the driver hook), then the
// layer's own consequences — merged dedup state, jumped decided
// watermark, released flow slots for own messages the snapshot ordered.
func (l *Layer) installSnapshot(env wire.SnapshotEnvelope) error {
	dm, err := dedup.UnmarshalMap(env.Dedup)
	if err != nil {
		return err
	}
	if l.cfg.Snapshots.Install != nil {
		if err := l.cfg.Snapshots.Install(env); err != nil {
			return err
		}
	}
	l.delivered.Merge(dm)
	l.nextDecide = env.Index + 1
	for k := range l.decisionsBuf {
		if k < l.nextDecide {
			delete(l.decisionsBuf, k)
		}
	}
	if l.cfg.DigestOrdering {
		// Pending entries are descriptor pseudo-messages here: one is
		// obsolete when every real message of its range is now delivered.
		// Own flow slots release per covered real message either way (a
		// partially covered descriptor stays pending but its delivered own
		// seqs must not hold the window; double releases are rejected by
		// the controller and ignored, exactly like the payload-mode path).
		for id, p := range l.pending {
			d, err := wire.ParseDescriptor(p.msg)
			if err != nil {
				continue
			}
			covered := 0
			for i := uint32(0); i < d.Count; i++ {
				rid := types.MsgID{Sender: d.Origin, Seq: d.FirstSeq + uint64(i)}
				if !l.isDelivered(rid) {
					continue
				}
				covered++
				if d.Origin == l.self {
					_ = l.fc.Delivered(rid)
				}
			}
			if covered == int(d.Count) {
				delete(l.pending, id)
				l.snapClean = false
				l.descDone[id] = env.Index
				l.store.MarkDelivered(d, env.Index)
			}
		}
		// The blocked head (if any) was either pruned by the watermark jump
		// or is still blocked; reset the wait, then re-drain so a still
		// blocked head re-arms the refetch timer from scratch.
		if l.pw.active {
			l.pw.active = false
			l.ctx.CancelTimer(timerPayload)
		}
		l.drainDecisions()
	} else {
		for id := range l.pending {
			if l.isDelivered(id) {
				delete(l.pending, id)
				l.snapClean = false
				_ = l.fc.Delivered(id)
			}
		}
	}
	l.lastProgress = l.ctx.Env().Now()
	return nil
}

// finishRecovery resumes normal operation after catch-up: pending-set
// staleness restarts from here (the fetched instances could not have
// ordered what only this process holds), and proposing is allowed again.
func (l *Layer) finishRecovery() {
	l.snap = snapFetch{}
	for id, p := range l.pending {
		p.epoch = l.nextDecide
		l.pending[id] = p
	}
	if l.cfg.DigestOrdering {
		l.drainDecisions()
	}
	l.maybeStartConsensus()
	l.armKick()
}

// maybeStartConsensus opens consensus instances until the pipeline window
// is full or the proposable backlog runs out: each new proposal takes the
// pending messages no other in-flight proposal of ours already carries.
// With pipe == 1 this is exactly the paper's sequential rule — one
// proposal at a time, for the next undecided instance, of the whole
// pending set.
func (l *Layer) maybeStartConsensus() {
	if l.rec.Active() {
		return // never propose while catching up on missed decisions
	}
	for len(l.inflight) < l.pipe {
		batch := l.pendingBatch()
		if len(batch) == 0 {
			return
		}
		// The lowest instance that is neither decided locally, nor already
		// carrying one of our proposals, nor decided-but-buffered: the first
		// one this proposal can still win.
		k := l.nextDecide
		for {
			_, ours := l.inflight[k]
			_, buffered := l.decisionsBuf[k]
			if !ours && !buffered {
				break
			}
			k++
		}
		ids := make([]types.MsgID, len(batch))
		for i, m := range batch {
			ids[i] = m.ID
			p := l.pending[m.ID]
			p.assigned = k
			l.pending[m.ID] = p
		}
		l.snapClean = false
		l.inflight[k] = ids
		l.lastProgress = l.ctx.Env().Now()
		l.ctx.Env().Counters().ObserveDepth(len(l.inflight))
		if o := l.cfg.Obs; o != nil {
			for _, m := range batch {
				o.Stage(m.ID, obs.StagePropose, l.lastProgress)
			}
		}
		l.ctx.Emit(stack.TagConsensus, stack.Event{
			Kind:     stack.EvProposeReq,
			Instance: k,
			Batch:    batch,
		})
	}
}

// pendingBatch snapshots the proposable pending set — known, unordered
// messages not assigned to an in-flight proposal — as a deterministic,
// optionally capped batch. The sorted ID order is cached across calls and
// rebuilt only after the pending set or the assignments changed, so a
// proposal attempt against an unchanged backlog costs no re-sort; the
// returned batch is always a fresh slice because the consensus layer
// retains it.
func (l *Layer) pendingBatch() wire.Batch {
	if !l.snapClean {
		cur := l.hist.Current()
		l.snapIDs = l.snapIDs[:0]
		for id, p := range l.pending {
			// Only current members' messages are proposable: from the moment
			// the remove op is applied, no proposal of ours carries the
			// removed origin again, which bounds its in-flight references to
			// instances below the activation boundary (where its state is
			// then retired).
			if p.assigned == 0 && cur.Contains(id.Sender) {
				l.snapIDs = append(l.snapIDs, id)
			}
		}
		sort.Slice(l.snapIDs, func(i, j int) bool { return l.snapIDs[i].Less(l.snapIDs[j]) })
		l.snapClean = true
	}
	n := len(l.snapIDs)
	if l.cfg.MaxBatch > 0 && n > l.cfg.MaxBatch {
		n = l.cfg.MaxBatch
	}
	if n == 0 {
		return nil
	}
	batch := make(wire.Batch, n)
	for i := range batch {
		batch[i] = l.pending[l.snapIDs[i]].msg
	}
	return wire.CapBatchBytes(batch)
}

// Event implements stack.Layer: consensus decisions arrive here, possibly
// out of instance order.
func (l *Layer) Event(ev stack.Event) {
	if ev.Kind != stack.EvDecide {
		return
	}
	l.enqueueDecision(ev.Instance, ev.Batch, false)
}

// enqueueDecision buffers one decision (from consensus or state transfer)
// and drains the in-order prefix. A resolved entry is never downgraded by
// a late unresolved duplicate.
func (l *Layer) enqueueDecision(k uint64, b wire.Batch, resolved bool) {
	if k < l.nextDecide {
		return // duplicate decision for an already-processed instance
	}
	if old, ok := l.decisionsBuf[k]; !ok || !old.resolved {
		l.decisionsBuf[k] = decision{batch: b, resolved: resolved}
	}
	l.drainDecisions()
	l.maybeStartConsensus()
	l.armKick()
}

// drainDecisions processes buffered decisions in instance order. Under
// digest ordering an unresolved head is first expanded through the payload
// store; if any descriptor's payload is not yet resident the drain stops
// without advancing — adelivery of a decided digest blocks until its
// payload is resident — and the payload-wait timer takes over the repair.
func (l *Layer) drainDecisions() {
	if l.draining {
		return
	}
	l.draining = true
	defer func() { l.draining = false }()
	for {
		dec, ok := l.decisionsBuf[l.nextDecide]
		if !ok {
			return
		}
		if l.cfg.DigestOrdering && !dec.resolved {
			resolved, descs, blocked := l.resolveDecision(dec.batch)
			if blocked {
				l.beginPayloadWait()
				return
			}
			l.endPayloadWait()
			delete(l.decisionsBuf, l.nextDecide)
			l.processDecision(l.nextDecide, resolved, descs)
			l.nextDecide++
			continue
		}
		delete(l.decisionsBuf, l.nextDecide)
		l.processDecision(l.nextDecide, dec.batch, nil)
		l.nextDecide++
	}
}

// resolveDecision expands a decided descriptor batch into its payload
// messages, in the deterministic order of the decided batch itself (the
// caller re-sorts the whole expansion). A descriptor whose payload is not
// resident blocks the decision — unless its entire range was already
// delivered through an overlapping post-restart descriptor, in which case
// it resolves to nothing. Elements that do not parse as descriptors pass
// through unchanged (a deterministic last resort; own batches are always
// announced as descriptors).
func (l *Layer) resolveDecision(b wire.Batch) (resolved wire.Batch, descs []wire.Descriptor, blocked bool) {
	resolved = make(wire.Batch, 0, len(b))
	for _, m := range b {
		d, err := wire.ParseDescriptor(m)
		if err != nil {
			resolved = append(resolved, m)
			continue
		}
		pb, ok := l.store.Range(d)
		if !ok {
			if l.rangeFullyDelivered(d) {
				descs = append(descs, d)
				continue
			}
			return nil, nil, true
		}
		resolved = append(resolved, pb...)
		descs = append(descs, d)
	}
	return resolved, descs, false
}

// rangeFullyDelivered reports whether every real message of the
// descriptor's range was already adelivered (possible only with
// overlapping post-restart descriptors).
func (l *Layer) rangeFullyDelivered(d wire.Descriptor) bool {
	for i := uint32(0); i < d.Count; i++ {
		if !l.isDelivered(types.MsgID{Sender: d.Origin, Seq: d.FirstSeq + uint64(i)}) {
			return false
		}
	}
	return true
}

// beginPayloadWait starts (or keeps) the blocked-head payload wait. No
// fetch is sent immediately: the announce is usually still in flight, so
// the first repair attempt is deferred to the timer (the same discipline
// as the ring decision refetch).
func (l *Layer) beginPayloadWait() {
	if l.pw.active {
		return
	}
	l.pw.active = true
	l.pw.since = l.ctx.Env().Now()
	if l.cfg.ResendEvery > 0 {
		l.ctx.SetTimer(timerPayload, l.cfg.ResendEvery)
	}
}

// endPayloadWait closes an active payload wait, accounting the blocked
// time.
func (l *Layer) endPayloadWait() {
	if !l.pw.active {
		return
	}
	dur := l.ctx.Env().Now() - l.pw.since
	l.ctx.Env().Counters().PayloadFetchNanos.Add(dur.Nanoseconds())
	l.cfg.Obs.PayloadFetchObserved(dur)
	l.pw.active = false
	l.ctx.CancelTimer(timerPayload)
}

// headMissingDescriptor returns the first descriptor of the head decision
// whose payload is neither resident nor fully delivered.
func (l *Layer) headMissingDescriptor() (wire.Descriptor, bool) {
	dec, ok := l.decisionsBuf[l.nextDecide]
	if !ok || dec.resolved {
		return wire.Descriptor{}, false
	}
	for _, m := range dec.batch {
		d, err := wire.ParseDescriptor(m)
		if err != nil {
			continue
		}
		if _, resident := l.store.Range(d); !resident && !l.rangeFullyDelivered(d) {
			return d, true
		}
	}
	return wire.Descriptor{}, false
}

// nextFetchTarget rotates the payload-fetch cursor to the next live
// process: never self, skipping currently suspected processes, falling
// back to plain rotation when everyone else is suspected (a wrongly
// suspected holder can still answer).
func (l *Layer) nextFetchTarget() types.ProcessID {
	members := l.hist.Current().Members
	n := len(members)
	if n < 2 {
		return types.Nobody
	}
	// Rank of the first member strictly after the cursor (wrapping); for
	// the static boot view this is the original (cursor+1+i) mod n walk.
	start := 0
	for i, p := range members {
		if p > l.pw.to {
			start = i
			break
		}
	}
	for i := 0; i < n; i++ {
		p := members[(start+i)%n]
		if p == l.self || l.suspectedSet[p] {
			continue
		}
		l.pw.to = p
		return p
	}
	for i := 0; i < n; i++ {
		p := members[(start+i)%n]
		if p != l.self {
			l.pw.to = p
			return p
		}
	}
	return types.Nobody
}

// SubmitConfig implements engine.ConfigSubmitter: validate the op
// against the current view, stamp it with the current epoch (the
// compare-and-swap that makes concurrent and replayed ops idempotent),
// and submit it through the ordinary abcast path — it is diffused,
// proposed and decided exactly like an application message.
func (l *Layer) SubmitConfig(op member.Op) (types.MsgID, error) {
	cur := l.hist.Current()
	op.BaseEpoch = cur.Epoch
	switch op.Kind {
	case member.OpAdd:
		if op.Target < 0 || cur.Contains(op.Target) {
			return types.MsgID{}, types.ErrBadConfig
		}
	case member.OpRemove:
		if !cur.Contains(op.Target) || len(cur.Members) <= 1 {
			return types.MsgID{}, types.ErrBadConfig
		}
	default:
		return types.MsgID{}, types.ErrBadConfig
	}
	return l.Abcast(member.EncodeOp(op))
}

// CurrentView implements engine.ConfigSubmitter.
func (l *Layer) CurrentView() member.View { return l.hist.Current() }

// Views returns the full decided view sequence (checker support: the
// chaos harness asserts all correct processes agree on the
// epoch → activation map).
func (l *Layer) Views() []member.View { return l.hist.Views() }

// applyConfig applies one decided config op at instance k. A failed
// apply (stale epoch, duplicate add, absent remove) is a deterministic
// no-op at every process — the op was ordered, so everyone rejects it
// with the same history. A successful apply appends the new view
// (activating at k plus the pipeline window), propagates it to the
// consensus and rbcast layers and the local dissemination/flow seams,
// schedules the removed origin's state retirement, and notifies the
// driver.
func (l *Layer) applyConfig(k uint64, op member.Op) {
	v, ok := l.hist.Apply(op, k, l.pipe)
	if !ok {
		return
	}
	l.ctx.Env().Counters().ConfigChanges.Add(1)
	l.emitConfig(v)
	l.reconfigureLocal(v)
	if op.Kind == member.OpRemove {
		l.retires[v.Activation] = append(l.retires[v.Activation], op.Target)
	}
	if l.cfg.OnConfig != nil {
		l.cfg.OnConfig(v, op)
	}
}

// emitConfig propagates a view to the peer layers of the modular stack.
func (l *Layer) emitConfig(v member.View) {
	ev := stack.Event{Kind: stack.EvConfig, Instance: v.Activation, Members: v.Members}
	l.ctx.Emit(stack.TagConsensus, ev)
	l.ctx.Emit(stack.TagRBcast, ev)
}

// reconfigureLocal points this layer's own seams at a new view: the
// dissemination topology follows the member list, the flow-control
// window is re-derived from the group size when it was the size-derived
// default (an explicitly configured window is left alone), and the
// proposable-snapshot cache is invalidated so the membership filter in
// pendingBatch re-applies.
func (l *Layer) reconfigureLocal(v member.View) {
	l.diss.SetMembers(v.Members)
	if l.cfg.Window == engine.DefaultWindow(l.cfg.N) {
		ncfg := l.cfg
		ncfg.Window = engine.DefaultWindow(len(v.Members))
		l.fc.SetWindow(ncfg.EffectiveWindow())
	}
	l.snapClean = false
}

// retireOrigin drops the local state of a removed origin at its
// activation boundary: undelivered pending entries (no proposal will
// carry them again), undelivered payload residency (no decision will
// resolve through them; delivered entries stay on the normal retention
// horizon for repair serving), and suspicion bookkeeping.
func (l *Layer) retireOrigin(origin types.ProcessID) {
	for id := range l.pending {
		if id.Sender == origin {
			delete(l.pending, id)
			l.snapClean = false
		}
	}
	delete(l.suspectedSet, origin)
	if l.store != nil {
		if retired := l.store.RetireOrigin(origin); retired > 0 {
			l.ctx.Env().Counters().PayloadsRetired.Add(int64(retired))
		}
	}
}

// processDecision adelivers a decided batch in deterministic order,
// releases flow-control slots, and re-diffuses stale survivors. With
// durability enabled the decision is logged first — write-ahead of the
// deliveries it implies. Under digest ordering batch is the RESOLVED
// payload expansion and descs the descriptors it came from: the log
// stores resolved batches (so recovery, state transfer and replay work
// unchanged), and the descriptors retire from pending/descDone/store
// here.
func (l *Layer) processDecision(k uint64, batch wire.Batch, descs []wire.Descriptor) {
	if l.cfg.Persist != nil {
		l.cfg.Persist.PersistDecision(k, batch)
	}
	l.lastProgress = l.ctx.Env().Now()
	for _, d := range descs {
		pmID := types.MsgID{Sender: d.Origin, Seq: d.DSeq}
		delete(l.pending, pmID)
		l.snapClean = false
		l.descDone[pmID] = k
		l.store.MarkDelivered(d, k)
	}
	ordered := make(wire.Batch, len(batch))
	copy(ordered, batch)
	ordered.SortDeterministic()
	c := l.ctx.Env().Counters()
	for _, m := range ordered {
		if !l.cfg.DigestOrdering {
			// Under digest ordering the pending set holds only descriptor
			// pseudo-messages; the resolved real IDs alias pseudo IDs at
			// incarnation 0 (real seq n vs descriptor counter n), so a
			// delete here would silently drop an undecided descriptor.
			delete(l.pending, m.ID)
			l.snapClean = false
		}
		if l.isDelivered(m.ID) {
			// With pipelining, two concurrent instances may both order a
			// message (different processes proposed it to different
			// instances); the per-sender suppressor makes the second
			// decision a no-op at delivery.
			continue
		}
		l.markDelivered(m.ID)
		if op, isCfg := member.DecodeOp(m.Body); isCfg {
			// Config ops ride the total order but never reach the
			// application: apply the membership change here — in delivery
			// order, at the same point of the order at every process — and
			// release the submitter's flow slot like any delivery.
			l.applyConfig(k, op)
			if err := l.fc.Delivered(m.ID); err != nil {
				c.Retransmissions.Add(1)
			}
			continue
		}
		c.ADeliver.Add(1)
		if o := l.cfg.Obs; o != nil {
			o.Stage(m.ID, obs.StageDecide, l.lastProgress)
			o.Delivered(m.ID, l.lastProgress)
		}
		l.ctx.Env().Deliver(engine.Delivery{Msg: m, Instance: k})
		if err := l.fc.Delivered(m.ID); err != nil {
			// Duplicate releases indicate a protocol bug; surface loudly
			// in tests via the counters rather than corrupting state.
			c.Retransmissions.Add(1)
		}
	}
	// Close our in-flight proposal for k: messages of ours this instance
	// did not order (another proposal won) become proposable again for a
	// later instance.
	if ids, ok := l.inflight[k]; ok {
		delete(l.inflight, k)
		for _, id := range ids {
			if p, ok := l.pending[id]; ok && p.assigned == k {
				p.assigned = 0
				l.pending[id] = p
				l.snapClean = false
			}
		}
	}
	// Retire pending descriptors the delivery loop just made obsolete: a
	// post-restart regrouped descriptor overlaps its pre-crash ancestors,
	// so a decision naming the ancestor can deliver the whole range of a
	// still-pending sibling. That sibling resolves to nothing, no future
	// decision needs to name it, and — if its proposal frame was lost to a
	// partition — nothing would ever decide it out of the pending set.
	// (Flow slots for covered own seqs were already released above when the
	// real messages delivered.)
	if l.cfg.DigestOrdering {
		for _, id := range l.sortedPendingIDs() {
			d, err := wire.ParseDescriptor(l.pending[id].msg)
			if err != nil || !l.rangeFullyDelivered(d) {
				continue
			}
			delete(l.pending, id)
			l.snapClean = false
			l.descDone[id] = k
			l.store.MarkDelivered(d, k)
		}
	}
	// Retire the state of origins removed at boundary k+1: k is the last
	// old-view instance, so every instance that could still reference the
	// removed origin (a proposal made before its proposer applied the
	// remove) has now been processed. Undelivered pending entries, payload
	// residency and suspicion bookkeeping of the origin go here.
	if origins := l.retires[k+1]; len(origins) > 0 {
		delete(l.retires, k+1)
		for _, origin := range origins {
			l.retireOrigin(origin)
		}
	}
	// Retire resolved payload and descriptor bookkeeping that fell behind
	// the decision retention horizon: entries this old are no longer
	// servable targets of the repair paths.
	if h := uint64(l.cfg.DecisionHorizon); l.cfg.DigestOrdering && h > 0 && k > h {
		cutoff := k - h
		l.store.PruneBelow(cutoff)
		for id, dk := range l.descDone {
			if dk <= cutoff {
				delete(l.descDone, id)
			}
		}
	}
	// Survivor re-diffusion: a pending message that predates several
	// decided instances was missed by the coordinator — the only causes
	// are a sender crash mid-diffusion or extreme reordering. Re-diffuse
	// so the next proposal includes it. Suppressed during state-transfer
	// catch-up: the fetched (old) instances could never contain the
	// replayed backlog, so the staleness rule would re-broadcast it every
	// few applied chunks for nothing — finishRecovery restarts the epochs
	// instead.
	if l.rec.Active() {
		return
	}
	for _, id := range l.sortedPendingIDs() {
		p := l.pending[id]
		if k >= p.epoch && k-p.epoch >= rediffuseGrace*uint64(l.pipe) {
			p.epoch = l.nextDecide + 1
			l.pending[id] = p
			if l.rediffuse(p.msg) {
				c.Retransmissions.Add(int64(l.spreadFanout()))
			}
		}
	}
}

// rediffuse re-spreads one stale pending entry. In payload mode it is a
// plain diffuse; under digest ordering the entry is a descriptor
// pseudo-message re-announced together with its resident payload (a
// descriptor whose payload this process no longer holds is skipped — it
// either resolves trivially as fully delivered, or another holder
// re-announces it).
func (l *Layer) rediffuse(m wire.AppMsg) bool {
	if !l.cfg.DigestOrdering {
		l.diffuseOne(m)
		return true
	}
	d, err := wire.ParseDescriptor(m)
	if err != nil {
		return false
	}
	b, ok := l.store.Range(d)
	if !ok {
		return false
	}
	l.announce(d, b)
	return true
}

// Timer implements stack.Layer: the batching age trigger and the idle
// kick. timerFlush seals whatever the accumulator holds (a fire that
// races a count-trigger seal finds it empty and diffuses nothing).
// timerKick retries the proposal when nothing has progressed for the
// configured period (and lets processDecision's staleness rule
// re-diffuse).
func (l *Layer) Timer(id engine.TimerID) {
	if id == timerFlush {
		if l.acc == nil {
			return
		}
		if b := l.acc.Flush(); len(b) > 0 {
			l.ingestBatch(b)
			l.armKick()
		}
		return
	}
	if id == timerRecover {
		if l.rec.Active() {
			// Re-announce only when the transfer stalled since the last
			// fire — a lost request/response or a dead serving peer; a
			// healthy chunk chain re-arms without extra broadcasts. A
			// stalled snapshot fetch first retries its chunk, then (still
			// stalled) abandons the peer and re-announces.
			if l.snap.active {
				if len(l.snap.buf) == l.snap.lastLen {
					l.snap.stalls++
					if l.snap.stalls >= 2 {
						l.snap = snapFetch{}
						l.sendRecoverReq(types.Nobody)
					} else {
						l.sendSnapReq()
					}
				} else {
					l.snap.stalls = 0
					l.snap.lastLen = len(l.snap.buf)
				}
			} else if l.nextDecide == l.recLastSeen {
				l.sendRecoverReq(types.Nobody)
			}
			l.recLastSeen = l.nextDecide
			if l.cfg.ResendEvery > 0 {
				l.ctx.SetTimer(timerRecover, l.cfg.ResendEvery)
			}
		}
		return
	}
	if id == timerPayload {
		if !l.pw.active {
			return
		}
		// Payloads may have arrived without triggering a drain (e.g. via a
		// racing snapshot install); retry before fetching.
		l.drainDecisions()
		if !l.pw.active {
			l.maybeStartConsensus()
			l.armKick()
			return
		}
		// Still blocked: fetch the first missing payload from one rotating
		// live holder. Bounded to a single target per fire so a cluster-wide
		// stall does not multiply into a fetch storm.
		if d, ok := l.headMissingDescriptor(); ok {
			if to := l.nextFetchTarget(); to != types.Nobody {
				c := l.ctx.Env().Counters()
				c.PayloadFetches.Add(1)
				c.Retransmissions.Add(1)
				w := wire.GetWriter(32)
				wire.AppendPayloadFetchFrame(w, d)
				l.ctx.NetSend(to, w.Bytes())
				wire.PutWriter(w)
			}
		}
		if l.cfg.ResendEvery > 0 {
			l.ctx.SetTimer(timerPayload, l.cfg.ResendEvery)
		}
		return
	}
	if id != timerKick || l.cfg.IdleKick <= 0 {
		return
	}
	now := l.ctx.Env().Now()
	stalled := now-l.lastProgress >= l.cfg.IdleKick
	if stalled && !l.rec.Active() && l.others() > 0 && l.staleGap() {
		// Backstop for missed decision dissemination: a buffered decision
		// far beyond the deliverable watermark proves the cluster decided
		// instances whose announcements this process permanently missed
		// (e.g. the catch-up finish raced the deciding traffic). Re-enter
		// the state-transfer protocol to pull the gap from a peer's log.
		l.rec.Begin(now, recovery.Quorum(len(l.hist.Current().Members)))
		l.recLastSeen = l.nextDecide
		l.sendRecoverReq(types.Nobody)
		if l.cfg.ResendEvery > 0 {
			l.ctx.SetTimer(timerRecover, l.cfg.ResendEvery)
		}
		l.armKick()
		return
	}
	if len(l.pending) > 0 && stalled {
		// Stalled: re-diffuse everything still pending so the round-1
		// coordinator certainly learns of it, then (re)propose.
		c := l.ctx.Env().Counters()
		for _, mid := range l.sortedPendingIDs() {
			p := l.pending[mid]
			p.epoch = l.nextDecide + 1
			l.pending[mid] = p
			if l.rediffuse(p.msg) {
				c.Retransmissions.Add(int64(l.spreadFanout()))
			}
		}
		l.maybeStartConsensus()
	}
	if len(l.pending) > 0 {
		l.armKick()
	}
}

// armKick (re-)arms the idle timer when there is anything to watch over.
func (l *Layer) armKick() {
	if l.cfg.IdleKick <= 0 {
		return
	}
	if len(l.pending) > 0 || l.fc.InFlight() > 0 || len(l.decisionsBuf) > 0 {
		l.ctx.SetTimer(timerKick, l.cfg.IdleKick)
	}
}

// staleGap reports whether a buffered out-of-order decision sits so far
// beyond the deliverable watermark that it cannot be explained by
// in-flight racing (the same staleness bound the re-diffusion rule uses):
// the instances below it were decided by the cluster, and their
// announcements are not coming back.
func (l *Layer) staleGap() bool {
	bound := l.nextDecide + rediffuseGrace*uint64(l.pipe)
	for k := range l.decisionsBuf {
		if k >= bound {
			return true
		}
	}
	return false
}

// Suspect implements stack.Layer. The reduction itself ignores the
// failure detector (consensus consumes it), but the dissemination
// strategy tracks it: a ring relayer skips a suspected successor, which
// is how a cut ring repairs itself.
func (l *Layer) Suspect(p types.ProcessID, suspected bool) {
	l.diss.Suspect(p, suspected)
	if l.suspectedSet != nil {
		if suspected {
			l.suspectedSet[p] = true
		} else {
			delete(l.suspectedSet, p)
		}
	}
}

// marshalDiffuse builds a single-message diffuse frame (tests craft
// inbound frames with it; the hot path uses diffuseOne's pooled writer).
func marshalDiffuse(m wire.AppMsg) []byte {
	w := wire.NewWriter(1 + m.WireSize())
	wire.AppendMsgFrame(w, m)
	return w.Bytes()
}

// sortedPendingIDs returns the pending message IDs in deterministic order
// (iteration-driven sends must be reproducible under simulation).
func (l *Layer) sortedPendingIDs() []types.MsgID {
	ids := make([]types.MsgID, 0, len(l.pending))
	for id := range l.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// isDelivered and markDelivered wrap the shared per-sender suppressor
// (internal/dedup; crash recovery rebuilds it from the replayed log).
func (l *Layer) isDelivered(id types.MsgID) bool { return l.delivered.Seen(id) }

func (l *Layer) markDelivered(id types.MsgID) { l.delivered.Mark(id) }
