package abcast

import (
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/enginetest"
	"modab/internal/stack"
	"modab/internal/types"
	"modab/internal/wire"
)

// consensusStub records proposals and lets the test inject decisions.
type consensusStub struct {
	ctx       *stack.Context
	proposals map[uint64]wire.Batch
}

var _ stack.Layer = (*consensusStub)(nil)

func (c *consensusStub) Tag() stack.Tag        { return stack.TagConsensus }
func (c *consensusStub) Init(x *stack.Context) { c.ctx = x }
func (c *consensusStub) Start()                {}
func (c *consensusStub) Event(ev stack.Event) {
	if ev.Kind == stack.EvProposeReq {
		c.proposals[ev.Instance] = ev.Batch
	}
}
func (c *consensusStub) Receive(types.ProcessID, []byte) error { return nil }
func (c *consensusStub) Timer(engine.TimerID)                  {}
func (c *consensusStub) Suspect(types.ProcessID, bool)         {}

// decide injects a decision event into the abcast layer.
func (c *consensusStub) decide(k uint64, batch wire.Batch) {
	c.ctx.Emit(stack.TagABcast, stack.Event{Kind: stack.EvDecide, Instance: k, Batch: batch})
}

func rig(t *testing.T, cfg engine.Config) (*enginetest.Env, *Layer, *consensusStub) {
	t.Helper()
	env := enginetest.New(0, 3)
	if cfg.N == 0 {
		cfg = engine.DefaultConfig(3)
		cfg.IdleKick = 0
	}
	ab := New(cfg)
	cs := &consensusStub{proposals: make(map[uint64]wire.Batch)}
	st := stack.New(env, cs, ab)
	st.Start()
	return env, ab, cs
}

func msg(sender types.ProcessID, seq uint64) wire.AppMsg {
	return wire.AppMsg{ID: types.MsgID{Sender: sender, Seq: seq}, Body: []byte{byte(seq)}}
}

func TestAbcastDiffusesAndProposes(t *testing.T) {
	env, ab, cs := rig(t, engine.Config{})
	id, err := ab.Abcast([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if id.Sender != 0 || id.Seq != 1 {
		t.Fatalf("id = %v", id)
	}
	if len(env.Sends) != 2 {
		t.Fatalf("diffusion sends = %d, want n-1", len(env.Sends))
	}
	got, ok := cs.proposals[1]
	if !ok || len(got) != 1 || got[0].ID != id {
		t.Fatalf("proposal = %v", got)
	}
}

func TestNoSecondProposalWhileRunning(t *testing.T) {
	_, ab, cs := rig(t, engine.Config{})
	if _, err := ab.Abcast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := ab.Abcast([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if len(cs.proposals) != 1 {
		t.Fatalf("proposals = %d, want 1 while instance 1 runs", len(cs.proposals))
	}
	// Deciding instance 1 releases the next proposal with the leftover.
	cs.decide(1, cs.proposals[1])
	if got := cs.proposals[2]; len(got) != 1 || got[0].ID.Seq != 2 {
		t.Fatalf("proposal 2 = %v", got)
	}
}

func TestOutOfOrderDecisionsBuffered(t *testing.T) {
	env, ab, cs := rig(t, engine.Config{})
	if _, err := ab.Abcast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	// Decision for instance 2 arrives before instance 1.
	b2 := wire.Batch{msg(1, 1)}
	b1 := wire.Batch{msg(0, 1)}
	cs.decide(2, b2)
	if len(env.Deliveries) != 0 {
		t.Fatal("delivered out of order")
	}
	cs.decide(1, b1)
	if len(env.Deliveries) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(env.Deliveries))
	}
	if env.Deliveries[0].Msg.ID != b1[0].ID || env.Deliveries[1].Msg.ID != b2[0].ID {
		t.Fatalf("wrong order: %v", env.Deliveries)
	}
	if env.Deliveries[0].Instance != 1 || env.Deliveries[1].Instance != 2 {
		t.Fatal("instance metadata wrong")
	}
}

func TestDecisionBatchSortedOnDelivery(t *testing.T) {
	env, _, cs := rig(t, engine.Config{})
	// Unsorted decided batch must be delivered in (sender, seq) order.
	batch := wire.Batch{msg(2, 1), msg(0, 5), msg(1, 3)}
	cs.decide(1, batch)
	if len(env.Deliveries) != 3 {
		t.Fatalf("deliveries = %d", len(env.Deliveries))
	}
	for i := 1; i < 3; i++ {
		if !env.Deliveries[i-1].Msg.ID.Less(env.Deliveries[i].Msg.ID) {
			t.Fatalf("unsorted delivery: %v", env.Deliveries)
		}
	}
}

func TestDuplicateInDecisionsDeliveredOnce(t *testing.T) {
	env, _, cs := rig(t, engine.Config{})
	m := msg(1, 1)
	cs.decide(1, wire.Batch{m})
	cs.decide(2, wire.Batch{m, msg(1, 2)})
	count := 0
	for _, d := range env.Deliveries {
		if d.Msg.ID == m.ID {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate delivered %d times", count)
	}
}

func TestReceiveAddsPendingAndProposes(t *testing.T) {
	env, ab, cs := rig(t, engine.Config{})
	m := msg(2, 1)
	frame := marshalDiffuse(m)
	if err := ab.Receive(2, frame); err != nil {
		t.Fatal(err)
	}
	if got := cs.proposals[1]; len(got) != 1 || got[0].ID != m.ID {
		t.Fatalf("proposal = %v", got)
	}
	_ = env
}

func TestMaxBatchCapsProposal(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	cfg.MaxBatch = 2
	cfg.Window = 8
	_, ab, cs := rig(t, cfg)
	for i := 0; i < 5; i++ {
		if _, err := ab.Abcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(cs.proposals[1]); got != 1 {
		// The first proposal went out on the first abcast, before the
		// rest existed; decide it and check the cap on the follow-up.
		t.Fatalf("proposal 1 size = %d", got)
	}
	cs.decide(1, cs.proposals[1])
	if got := len(cs.proposals[2]); got != 2 {
		t.Fatalf("proposal 2 size = %d, want MaxBatch 2", got)
	}
}

func TestKickRediffusesStalePending(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 10 * time.Millisecond
	env, ab, cs := rig(t, cfg)
	// A foreign message is pending but never ordered.
	if err := ab.Receive(2, marshalDiffuse(msg(2, 1))); err != nil {
		t.Fatal(err)
	}
	env.Sends = nil
	env.Clock = time.Second // long past the kick deadline
	ab.Timer(timerKick)
	if len(env.Sends) != 2 {
		t.Fatalf("kick re-diffusion sends = %d, want n-1", len(env.Sends))
	}
	if env.Cnt.Retransmissions.Load() == 0 {
		t.Error("retransmissions not counted")
	}
	_ = cs
}

func TestRediffusionAfterMissedInstances(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	env, ab, cs := rig(t, cfg)
	if err := ab.Receive(2, marshalDiffuse(msg(2, 9))); err != nil {
		t.Fatal(err)
	}
	env.Sends = nil
	// Decisions for rediffuseGrace+1 instances pass without ordering it.
	for k := uint64(1); k <= rediffuseGrace+1; k++ {
		cs.decide(k, wire.Batch{msg(0, k)})
	}
	if len(env.Sends) == 0 {
		t.Fatal("stale pending message never re-diffused")
	}
	_ = ab
}

func TestMalformedDiffuse(t *testing.T) {
	_, ab, _ := rig(t, engine.Config{})
	if err := ab.Receive(1, []byte{1, 2, 3}); err == nil {
		t.Fatal("malformed diffuse accepted")
	}
}

func TestFlowReleaseOnlyForOwn(t *testing.T) {
	_, ab, cs := rig(t, engine.Config{})
	if _, err := ab.Abcast([]byte("mine")); err != nil {
		t.Fatal(err)
	}
	if got := ab.InFlight(); got != 1 {
		t.Fatalf("in flight = %d", got)
	}
	// A decision with only foreign messages does not release our window.
	cs.decide(1, wire.Batch{msg(1, 1)})
	if got := ab.InFlight(); got != 1 {
		t.Fatalf("in flight after foreign decision = %d", got)
	}
	cs.decide(2, wire.Batch{{ID: types.MsgID{Sender: 0, Seq: 1}, Body: []byte("mine")}})
	if got := ab.InFlight(); got != 0 {
		t.Fatalf("in flight after own decision = %d", got)
	}
}

// batchCfg returns a config with sender-side batching enabled.
func batchCfg(maxMsgs, maxBytes int) engine.Config {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	cfg.Batch.MaxMsgs = maxMsgs
	cfg.Batch.MaxBytes = maxBytes
	cfg.Batch.MaxDelay = 5 * time.Millisecond
	return cfg
}

func TestBatchingAccumulatesUntilCountTrigger(t *testing.T) {
	env, ab, cs := rig(t, batchCfg(3, 0))
	for i := 0; i < 2; i++ {
		if _, err := ab.Abcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(env.Sends) != 0 || len(cs.proposals) != 0 {
		t.Fatalf("diffused before the count trigger: sends=%d proposals=%d",
			len(env.Sends), len(cs.proposals))
	}
	if _, err := ab.Abcast([]byte{2}); err != nil {
		t.Fatal(err)
	}
	// One batch frame to each of the n-1 peers, one proposal of 3.
	if len(env.Sends) != 2 {
		t.Fatalf("batch diffusion sends = %d, want n-1", len(env.Sends))
	}
	b, err := wire.UnmarshalFrame(env.Sends[0].Data[1:]) // skip layer tag
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 {
		t.Fatalf("diffused batch size = %d, want 3", len(b))
	}
	if got := cs.proposals[1]; len(got) != 3 {
		t.Fatalf("proposal = %v, want 3 messages", got)
	}
	if env.Cnt.SenderBatches.Load() != 1 || env.Cnt.SenderBatchedMsgs.Load() != 3 {
		t.Fatalf("batch counters = %d/%d",
			env.Cnt.SenderBatches.Load(), env.Cnt.SenderBatchedMsgs.Load())
	}
}

func TestBatchingFlushTimerSealsSingleMessageBatch(t *testing.T) {
	env, ab, cs := rig(t, batchCfg(64, 0))
	if _, err := ab.Abcast([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	if len(env.Sends) != 0 {
		t.Fatal("undersized batch diffused before the age trigger")
	}
	ab.Timer(timerFlush)
	if len(env.Sends) != 2 {
		t.Fatalf("flush sends = %d, want n-1", len(env.Sends))
	}
	if got := cs.proposals[1]; len(got) != 1 {
		t.Fatalf("proposal = %v, want the single flushed message", got)
	}
	if env.Cnt.SenderBatchedMsgs.Load() != 1 {
		t.Fatalf("single-message batch not counted")
	}
}

func TestBatchingEmptyFlushTimerIsNoop(t *testing.T) {
	env, ab, cs := rig(t, batchCfg(2, 0))
	// The count trigger seals the batch; the age timer then fires against
	// an empty accumulator and must diffuse nothing.
	for i := 0; i < 2; i++ {
		if _, err := ab.Abcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sends, proposals := len(env.Sends), len(cs.proposals)
	ab.Timer(timerFlush)
	if len(env.Sends) != sends || len(cs.proposals) != proposals {
		t.Fatalf("empty flush produced traffic: sends %d->%d proposals %d->%d",
			sends, len(env.Sends), proposals, len(cs.proposals))
	}
}

func TestBatchingMaxBytesOverflowSplits(t *testing.T) {
	// Each message encodes to 16+100 bytes; a 300-byte cap seals after two.
	env, ab, _ := rig(t, batchCfg(100, 300))
	body := make([]byte, 100)
	for i := 0; i < 3; i++ {
		if _, err := ab.Abcast(body); err != nil {
			t.Fatal(err)
		}
	}
	if env.Cnt.SenderBatches.Load() != 1 || env.Cnt.SenderBatchedMsgs.Load() != 2 {
		t.Fatalf("overflow split: batches=%d msgs=%d, want 1 batch of 2",
			env.Cnt.SenderBatches.Load(), env.Cnt.SenderBatchedMsgs.Load())
	}
	if got := ab.Pending(); got != 3 {
		t.Fatalf("pending (incl. accumulator) = %d, want 3", got)
	}
}

func TestBatchingWindowSpansBatchBoundary(t *testing.T) {
	// Window 2 would deadlock a 4-message batch; EffectiveWindow widens it
	// to two batches (8), so a full batch can accumulate while the sealed
	// one is in flight — and the 9th submission hits flow control.
	cfg := batchCfg(4, 0)
	cfg.Window = 2
	env, ab, cs := rig(t, cfg)
	for i := 0; i < 8; i++ {
		if _, err := ab.Abcast([]byte{byte(i)}); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	if _, err := ab.Abcast([]byte{9}); err == nil {
		t.Fatal("9th submission admitted past the widened window")
	}
	if env.Cnt.SenderBatches.Load() != 2 {
		t.Fatalf("sealed batches = %d, want 2", env.Cnt.SenderBatches.Load())
	}
	// Delivering the first decided batch frees slots spanning the boundary.
	cs.decide(1, cs.proposals[1])
	if got := ab.InFlight(); got != 4 {
		t.Fatalf("in flight after decision = %d, want 4", got)
	}
	if _, err := ab.Abcast([]byte{10}); err != nil {
		t.Fatalf("admission after window drained: %v", err)
	}
}

func TestReceiveBatchFrame(t *testing.T) {
	_, ab, cs := rig(t, engine.Config{})
	b := wire.Batch{msg(1, 1), msg(1, 2), msg(2, 7)}
	w := wire.NewWriter(1 + b.WireSize())
	wire.AppendBatchFrame(w, b)
	if err := ab.Receive(1, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got := cs.proposals[1]; len(got) != 3 {
		t.Fatalf("proposal from batch frame = %v, want 3 messages", got)
	}
}

// TestPipelinedProposals checks the windowed propose path directly: with
// PipelineDepth 3, three proposals go out for three distinct instances,
// each carrying a disjoint slice of the pending set, and a decision for
// the head of the window immediately opens the next slot.
func TestPipelinedProposals(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	cfg.Window = 16
	cfg.PipelineDepth = 3
	_, ab, cs := rig(t, cfg)

	var first types.MsgID
	for i := 0; i < 3; i++ {
		id, err := ab.Abcast([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = id
		}
	}
	if len(cs.proposals) != 3 {
		t.Fatalf("open proposals = %d, want 3 (one per submission, window 3)", len(cs.proposals))
	}
	seen := make(map[types.MsgID]uint64)
	for k, b := range cs.proposals {
		if len(b) != 1 {
			t.Fatalf("instance %d proposed %d messages, want 1 (partitioning)", k, len(b))
		}
		if prev, dup := seen[b[0].ID]; dup {
			t.Fatalf("message %s proposed in instances %d and %d", b[0].ID, prev, k)
		}
		seen[b[0].ID] = k
	}
	// Decide instance 1 with the first message: slot opens, and the next
	// submission must land in instance 4 (2 and 3 are still in flight).
	cs.decide(1, wire.Batch{{ID: first, Body: []byte{0}}})
	if _, err := ab.Abcast([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.proposals[4]; !ok {
		t.Fatalf("proposals after decide+submit: %v, want instance 4 opened", keys(cs.proposals))
	}
}

func keys(m map[uint64]wire.Batch) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestPendingBatchSnapshotCache pins the pendingBatch micro-optimization:
// repeated snapshots of an unchanged pending set must not rebuild or
// re-sort the ID cache — only the handed-out batch slice may allocate —
// and any mutation (new message, decision, assignment) must invalidate
// the cache.
func TestPendingBatchSnapshotCache(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	_, ab, _ := rig(t, cfg)
	for i := uint64(1); i <= 64; i++ {
		m := msg(1, i)
		ab.pending[m.ID] = pendingMsg{msg: m, epoch: 1}
	}
	ab.snapClean = false

	first := ab.pendingBatch()
	if len(first) != 64 {
		t.Fatalf("snapshot = %d messages, want 64", len(first))
	}
	if !ab.snapClean {
		t.Fatal("snapshot did not mark the cache clean")
	}
	// Unchanged set: one allocation (the returned batch), no re-sort.
	allocs := testing.AllocsPerRun(100, func() {
		if got := ab.pendingBatch(); len(got) != 64 {
			t.Fatalf("cached snapshot = %d messages", len(got))
		}
	})
	if allocs > 1 {
		t.Fatalf("pendingBatch on an unchanged set allocates %.0f times, want <= 1 (scratch reuse)", allocs)
	}
	// Mutation invalidates: a new message must appear in the next batch.
	extra := msg(2, 1)
	ab.pending[extra.ID] = pendingMsg{msg: extra, epoch: 1}
	ab.snapClean = false
	if got := ab.pendingBatch(); len(got) != 65 {
		t.Fatalf("post-mutation snapshot = %d messages, want 65", len(got))
	}
}

// BenchmarkPendingBatch measures the snapshot path the proposal hot loop
// sits on, in the regime the cache targets: repeated proposal attempts
// over a stable backlog (the common case under flow-control saturation,
// where Receive-driven maybeStartConsensus calls vastly outnumber
// backlog changes).
func BenchmarkPendingBatch(b *testing.B) {
	for _, mutate := range []bool{false, true} {
		name := "stable"
		if mutate {
			name = "mutating"
		}
		b.Run(name, func(b *testing.B) {
			cfg := engine.DefaultConfig(3)
			cfg.IdleKick = 0
			env := enginetest.New(0, 3)
			ab := New(cfg)
			cs := &consensusStub{proposals: make(map[uint64]wire.Batch)}
			stack.New(env, cs, ab).Start()
			for i := uint64(1); i <= 256; i++ {
				m := msg(1, i)
				ab.pending[m.ID] = pendingMsg{msg: m, epoch: 1}
			}
			ab.snapClean = false
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mutate {
					ab.snapClean = false // worst case: re-sort every snapshot
				}
				if len(ab.pendingBatch()) != 256 {
					b.Fatal("bad snapshot")
				}
			}
		})
	}
}
