// Package analytical implements the closed-form performance model of
// paper §5.2: the number of point-to-point messages and the number of
// payload bytes each implementation sends per consensus execution (i.e.
// to adeliver M abcast messages of l bytes in a group of n), plus the
// modularity overhead ratio. The simulator's traced counters are asserted
// against these formulas in tests, tying implementation to model.
package analytical

// ModularMessages returns the messages sent per consensus execution by
// the modular stack: (n-1)·(M + 2 + ⌊(n+1)/2⌋).
//
// Breakdown: M·(n-1) diffusion messages, n-1 for the proposal, n-1 acks,
// and (n-1)·⌊(n+1)/2⌋ for the reliable broadcast of the decision.
func ModularMessages(n, m int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) * (m + 2 + (n+1)/2)
}

// MonolithicMessages returns the messages sent per consensus execution by
// the monolithic stack in a saturated pipeline: 2·(n-1) — one combined
// proposal+decision fan-out plus one ack+diffusion per non-coordinator.
func MonolithicMessages(n int) int {
	if n <= 1 {
		return 0
	}
	return 2 * (n - 1)
}

// ModularData returns the payload bytes sent per consensus execution by
// the modular stack: 2·(n-1)·M·l (each payload crosses the network once
// in diffusion and once inside the proposal).
func ModularData(n, m, l int) int {
	if n <= 1 {
		return 0
	}
	return 2 * (n - 1) * m * l
}

// MonolithicData returns the payload bytes sent per consensus execution
// by the monolithic stack: (n-1)·(1+1/n)·M·l (each payload rides one ack
// to the coordinator — except the coordinator's own M/n — and once inside
// the proposal).
//
// The value is returned in exact integer form: (n-1)·(n+1)·M·l / n.
func MonolithicData(n, m, l int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) * (n + 1) * m * l / n
}

// Overhead returns the relative data overhead of the modular stack over
// the monolithic one, (Datamod - Datamono)/Datamono = (n-1)/(n+1):
// 50% at n=3, 75% at n=7.
func Overhead(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) / float64(n+1)
}

// RBcastMessages returns the messages per reliable broadcast for the
// majority-optimized algorithm, (n-1)·⌊(n+1)/2⌋ (paper §4.3 quotes this
// as the modular decision-dissemination cost).
func RBcastMessages(n int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) * ((n + 1) / 2)
}

// ClassicRBcastMessages returns the messages per reliable broadcast for
// the classical re-send-to-all algorithm, (n-1)·n ≈ n².
func ClassicRBcastMessages(n int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) * n
}
