package analytical

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperNumbers pins the concrete values quoted in the paper.
func TestPaperNumbers(t *testing.T) {
	// §5.2.1: n=3, M=4 — "the monolithic implementation needs 4 messages
	// to order these 4 abcast messages ... In the case of the modular
	// stack, 16 messages are needed".
	if got := ModularMessages(3, 4); got != 16 {
		t.Errorf("ModularMessages(3,4) = %d, want 16", got)
	}
	if got := MonolithicMessages(3); got != 4 {
		t.Errorf("MonolithicMessages(3) = %d, want 4", got)
	}
	// §5.2.2: overhead 50% at n=3, 75% at n=7.
	if got := Overhead(3); got != 0.5 {
		t.Errorf("Overhead(3) = %g, want 0.5", got)
	}
	if got := Overhead(7); got != 0.75 {
		t.Errorf("Overhead(7) = %g, want 0.75", got)
	}
	// §3.1: optimized rbcast sends (n-1)(⌊(n-1)/2⌋+1) messages.
	if got := RBcastMessages(3); got != 4 {
		t.Errorf("RBcastMessages(3) = %d, want 4", got)
	}
	if got := RBcastMessages(7); got != 24 {
		t.Errorf("RBcastMessages(7) = %d, want 24", got)
	}
}

// TestOverheadConsistency: the closed-form overhead must equal the ratio
// of the two data formulas.
func TestOverheadConsistency(t *testing.T) {
	f := func(rawN, rawM uint8, rawL uint16) bool {
		n := int(rawN%16) + 2
		m := int(rawM%16) + 1
		// l multiple of n so integer division in MonolithicData is exact.
		l := (int(rawL%1024) + 1) * n
		mod := float64(ModularData(n, m, l))
		mono := float64(MonolithicData(n, m, l))
		want := Overhead(n)
		got := (mod - mono) / mono
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMessageBreakdown: the modular total decomposes into diffusion +
// proposal + acks + rbcast of the decision.
func TestMessageBreakdown(t *testing.T) {
	f := func(rawN, rawM uint8) bool {
		n := int(rawN%16) + 2
		m := int(rawM % 32)
		diffusion := m * (n - 1)
		proposal := n - 1
		acks := n - 1
		decision := RBcastMessages(n)
		return ModularMessages(n, m) == diffusion+proposal+acks+decision
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateGroups(t *testing.T) {
	for _, fn := range []func() int{
		func() int { return ModularMessages(1, 4) },
		func() int { return MonolithicMessages(1) },
		func() int { return ModularData(1, 4, 100) },
		func() int { return MonolithicData(1, 4, 100) },
		func() int { return RBcastMessages(1) },
		func() int { return ClassicRBcastMessages(0) },
	} {
		if got := fn(); got != 0 {
			t.Errorf("degenerate group cost = %d, want 0", got)
		}
	}
	if Overhead(1) != 0 {
		t.Error("Overhead(1) != 0")
	}
}

// TestMonolithicAlwaysCheaper: for every n >= 2, M >= 1 the monolithic
// stack sends strictly fewer messages and bytes.
func TestMonolithicAlwaysCheaper(t *testing.T) {
	f := func(rawN, rawM uint8, rawL uint8) bool {
		n := int(rawN%16) + 2
		m := int(rawM%32) + 1
		l := (int(rawL) + 1) * n
		return MonolithicMessages(n) < ModularMessages(n, m) &&
			MonolithicData(n, m, l) < ModularData(n, m, l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
