// Package batch implements the sender-side batching accumulator that
// amortizes the per-message cost of modularity over many application
// messages. The paper's analysis (§5.2) shows every composed layer adds
// header bytes and handler dispatches per message; the standard remedy in
// high-throughput atomic broadcast — Ring Paxos, Chop Chop — is to pack
// many application messages into one diffusion frame and one consensus
// proposal so those fixed costs are paid once per batch instead of once
// per message.
//
// The Accumulator is a pure data structure: it never spawns goroutines,
// reads clocks, or sends. The owning protocol layer (internal/abcast for
// the modular stack, internal/monolithic for the merged one) drives it
// from its single-threaded event loop and implements the age trigger with
// the engine timer mechanism (engine.TimerFlush / the abcast layer's
// local flush timer), so batching behaves identically under the real-time
// driver and the deterministic simulator.
//
// Three triggers seal a batch:
//
//   - count: the batch reaches Config.MaxMsgs messages;
//   - bytes: appending the next message would push the encoded size past
//     Config.MaxBytes (the overflowing message starts the next batch);
//   - age: Config.MaxDelay elapsed since the batch's first message — the
//     owner's flush timer calls Flush.
package batch

import (
	"fmt"
	"time"

	"modab/internal/types"
	"modab/internal/wire"
)

// Config tunes sender-side batching. The zero value disables it.
type Config struct {
	// MaxMsgs seals a batch once it holds this many messages. Batching is
	// enabled iff MaxMsgs >= 1 (MaxMsgs == 1 degenerates to one batch per
	// message, useful for isolating the frame-format overhead).
	MaxMsgs int
	// MaxBytes seals a batch before its encoded size (wire.Batch message
	// bytes, headers included) would exceed this bound; 0 means no byte
	// cap. A single message larger than MaxBytes still forms its own
	// batch — the cap splits, it never rejects.
	MaxBytes int
	// MaxDelay bounds how long an undersized batch may wait after its
	// first message before the owner's flush timer seals it. Required
	// (> 0) when batching is enabled, or a trickle of messages below the
	// count trigger would never be diffused.
	MaxDelay time.Duration
}

// Enabled reports whether the configuration turns batching on.
func (c Config) Enabled() bool { return c.MaxMsgs > 0 }

// Validate reports whether the configuration is usable. A byte cap
// without a message cap is rejected rather than silently ignored:
// batching is enabled by MaxMsgs, and a config that sets only MaxBytes
// almost certainly expected batches to form.
func (c Config) Validate() error {
	if !c.Enabled() {
		if c.MaxBytes > 0 {
			return fmt.Errorf("%w: batch byte cap without a message cap (batching is enabled by MaxMsgs >= 1)", types.ErrBadConfig)
		}
		return nil
	}
	switch {
	case c.MaxBytes < 0:
		return fmt.Errorf("%w: negative batch byte cap", types.ErrBadConfig)
	case c.MaxDelay <= 0:
		return fmt.Errorf("%w: batching requires a positive flush delay", types.ErrBadConfig)
	default:
		return nil
	}
}

// Accumulator coalesces application messages into batches according to a
// Config. It is driven from a single goroutine (the engine event loop)
// and needs no locking.
type Accumulator struct {
	cfg   Config
	buf   wire.Batch
	bytes int
}

// NewAccumulator returns an empty accumulator for the given (enabled,
// validated) configuration.
func NewAccumulator(cfg Config) *Accumulator { return &Accumulator{cfg: cfg} }

// Len returns the number of accumulated, not-yet-sealed messages.
func (a *Accumulator) Len() int { return len(a.buf) }

// Bytes returns the encoded size of the accumulated messages.
func (a *Accumulator) Bytes() int { return a.bytes }

// Empty reports whether nothing is accumulated.
func (a *Accumulator) Empty() bool { return len(a.buf) == 0 }

// TimerAction tells the owning layer what to do with its flush timer
// after an Add, so the age-trigger protocol lives here and both stacks
// only map the verdict onto their timer APIs.
type TimerAction uint8

const (
	// TimerNone leaves the flush timer as it is (the batch in progress
	// already has a running age clock).
	TimerNone TimerAction = iota
	// TimerArm (re)starts the age clock: a message just started a fresh
	// batch, which must be flushed MaxDelay from now at the latest.
	TimerArm
	// TimerCancel disarms the flush timer: the accumulator is empty, so
	// there is nothing for an age trigger to seal.
	TimerCancel
)

// Add appends m and returns the batches sealed by the count and byte
// triggers, in diffusion order (nil when m just accumulated), plus the
// flush-timer action for the owner. At most two batches come back: when
// m would overflow MaxBytes the current batch is sealed first, and m
// itself may then trip a trigger alone (MaxMsgs == 1, or a single
// message at or above MaxBytes).
func (a *Accumulator) Add(m wire.AppMsg) ([]wire.Batch, TimerAction) {
	wasEmpty := len(a.buf) == 0
	var sealed []wire.Batch
	sz := m.WireSize()
	if a.cfg.MaxBytes > 0 && len(a.buf) > 0 && a.bytes+sz > a.cfg.MaxBytes {
		sealed = append(sealed, a.Flush())
	}
	if a.buf == nil {
		a.buf = make(wire.Batch, 0, min(a.cfg.MaxMsgs, 64))
	}
	a.buf = append(a.buf, m)
	a.bytes += sz
	if len(a.buf) >= a.cfg.MaxMsgs || (a.cfg.MaxBytes > 0 && a.bytes >= a.cfg.MaxBytes) {
		sealed = append(sealed, a.Flush())
	}
	switch {
	case len(sealed) == 0 && wasEmpty:
		// First message of a fresh batch: start its age clock.
		return sealed, TimerArm
	case len(sealed) > 0 && len(a.buf) == 0:
		return sealed, TimerCancel
	case len(sealed) > 0:
		// A byte-overflow split left m as the first of a new batch.
		return sealed, TimerArm
	default:
		return sealed, TimerNone
	}
}

// Flush seals and returns whatever has accumulated, or nil when empty —
// the age-trigger path, called by the owning layer's flush timer. A flush
// timer that fires after the count trigger already sealed the batch finds
// the accumulator empty and must treat nil as "nothing to diffuse".
func (a *Accumulator) Flush() wire.Batch {
	if len(a.buf) == 0 {
		return nil
	}
	b := a.buf
	a.buf = nil
	a.bytes = 0
	return b
}
