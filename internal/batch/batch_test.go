package batch

import (
	"testing"
	"time"

	"modab/internal/types"
	"modab/internal/wire"
)

func mkMsg(seq uint64, bodyLen int) wire.AppMsg {
	return wire.AppMsg{
		ID:   types.MsgID{Sender: 0, Seq: seq},
		Body: make([]byte, bodyLen),
	}
}

func TestConfigEnabledAndValidate(t *testing.T) {
	var zero Config
	if zero.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	ok := Config{MaxMsgs: 8, MaxBytes: 4096, MaxDelay: time.Millisecond}
	if !ok.Enabled() {
		t.Fatal("MaxMsgs >= 1 must enable batching")
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{MaxMsgs: 8}).Validate(); err == nil {
		t.Fatal("enabled config without MaxDelay accepted")
	}
	if err := (Config{MaxMsgs: 8, MaxBytes: -1, MaxDelay: time.Millisecond}).Validate(); err == nil {
		t.Fatal("negative MaxBytes accepted")
	}
}

func TestCountTriggerSeals(t *testing.T) {
	a := NewAccumulator(Config{MaxMsgs: 3, MaxDelay: time.Millisecond})
	sealed, act := a.Add(mkMsg(1, 8))
	if sealed != nil || act != TimerArm {
		t.Fatalf("first add: sealed=%v act=%d, want arm", sealed, act)
	}
	sealed, act = a.Add(mkMsg(2, 8))
	if sealed != nil || act != TimerNone {
		t.Fatalf("second add: sealed=%v act=%d, want none", sealed, act)
	}
	sealed, act = a.Add(mkMsg(3, 8))
	if len(sealed) != 1 || len(sealed[0]) != 3 {
		t.Fatalf("count trigger: sealed = %v", sealed)
	}
	if act != TimerCancel {
		t.Fatalf("count trigger: act = %d, want cancel", act)
	}
	if !a.Empty() || a.Bytes() != 0 {
		t.Fatal("accumulator not reset after seal")
	}
}

func TestSingleMessageBatch(t *testing.T) {
	// MaxMsgs == 1 degenerates to one batch per message.
	a := NewAccumulator(Config{MaxMsgs: 1, MaxDelay: time.Millisecond})
	sealed, act := a.Add(mkMsg(1, 8))
	if len(sealed) != 1 || len(sealed[0]) != 1 {
		t.Fatalf("sealed = %v", sealed)
	}
	if act != TimerCancel {
		t.Fatalf("act = %d, want cancel", act)
	}
}

func TestMaxBytesOverflowSplits(t *testing.T) {
	// Each message encodes to 16 (header) + 100 (body) = 116 bytes; a cap
	// of 300 holds two, and the third must split into a fresh batch.
	a := NewAccumulator(Config{MaxMsgs: 100, MaxBytes: 300, MaxDelay: time.Millisecond})
	if sealed, _ := a.Add(mkMsg(1, 100)); sealed != nil {
		t.Fatalf("sealed early: %v", sealed)
	}
	if sealed, _ := a.Add(mkMsg(2, 100)); sealed != nil {
		t.Fatalf("sealed early: %v", sealed)
	}
	sealed, act := a.Add(mkMsg(3, 100))
	if len(sealed) != 1 || len(sealed[0]) != 2 {
		t.Fatalf("overflow split: sealed = %v", sealed)
	}
	if act != TimerArm {
		t.Fatalf("overflow split must restart the age clock, act = %d", act)
	}
	if a.Len() != 1 {
		t.Fatalf("overflowing message must start the next batch, len = %d", a.Len())
	}
	if a.Bytes() != mkMsg(3, 100).WireSize() {
		t.Fatalf("bytes = %d", a.Bytes())
	}
}

func TestOversizedMessageFormsOwnBatch(t *testing.T) {
	// A message above MaxBytes seals immediately: first the resident batch
	// (overflow split), then itself (byte trigger) — two seals in one Add.
	a := NewAccumulator(Config{MaxMsgs: 100, MaxBytes: 64, MaxDelay: time.Millisecond})
	if sealed, _ := a.Add(mkMsg(1, 10)); sealed != nil {
		t.Fatalf("sealed early: %v", sealed)
	}
	sealed, act := a.Add(mkMsg(2, 1000))
	if len(sealed) != 2 {
		t.Fatalf("want 2 sealed batches, got %v", sealed)
	}
	if len(sealed[0]) != 1 || sealed[0][0].ID.Seq != 1 {
		t.Fatalf("first sealed = %v", sealed[0])
	}
	if len(sealed[1]) != 1 || sealed[1][0].ID.Seq != 2 {
		t.Fatalf("second sealed = %v", sealed[1])
	}
	if act != TimerCancel {
		t.Fatalf("act = %d, want cancel", act)
	}
	if !a.Empty() {
		t.Fatal("accumulator must be empty")
	}
}

func TestFlushEmptyReturnsNil(t *testing.T) {
	// The age-trigger path must tolerate a timer that fires after a count
	// trigger already sealed the batch.
	a := NewAccumulator(Config{MaxMsgs: 4, MaxDelay: time.Millisecond})
	if b := a.Flush(); b != nil {
		t.Fatalf("empty flush = %v", b)
	}
	a.Add(mkMsg(1, 8))
	if b := a.Flush(); len(b) != 1 {
		t.Fatalf("flush = %v", b)
	}
	if b := a.Flush(); b != nil {
		t.Fatalf("second flush = %v", b)
	}
}
