// Package benchharness regenerates the paper's evaluation (§5.3): the
// four experimental figures (8-11) as parameter sweeps over the
// deterministic simulator, and the §5.2 analytical tables. cmd/abbench
// and the root bench_test.go are thin wrappers over this package.
package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/analytical"
	"modab/internal/batch"
	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/stats"
	"modab/internal/types"
)

// Point is one measured configuration.
type Point struct {
	N           int
	Stack       types.Stack
	OfferedLoad float64 // msgs/s, global
	Size        int     // bytes

	LatencyMs    float64 // mean early latency
	LatencyCI    float64 // 95% CI half-width (ms), across repetitions
	Throughput   float64 // msgs/s (paper's T)
	ThroughCI    float64
	M            float64 // avg messages ordered per consensus
	MsgsPerDec   float64 // messages sent per consensus decided (group-wide)
	MsgsPerBat   float64 // avg app messages per sender-side batch (0 unbatched)
	HeaderPerMsg float64 // protocol overhead bytes per app message (group-wide)
	Utilization  float64 // busiest-process CPU utilization
	Blocked      int64   // flow-control rejections in the window
	// StreamDropped counts adeliveries discarded by drop-policy delivery
	// streams (trace.Counters.StreamDropped) — nonzero means the
	// application side of the benchmark could not keep up.
	StreamDropped int64
}

// RunOptions control one sweep point.
type RunOptions struct {
	// Warmup and Measure bound the measurement window. Defaults: 2s + 4s.
	Warmup, Measure time.Duration
	// Repetitions with distinct seeds; the CIs are computed across them.
	// Default 3.
	Repetitions int
	// Seed is the base seed (repetition i uses Seed+i).
	Seed int64
	// Model overrides the hardware model (zero = calibrated default).
	Model netsim.CostModel
	// Batch enables sender-side batching in every measured engine (zero =
	// disabled, the paper's original per-message behavior), so the
	// modular-vs-monolithic overhead gap can be measured with and without
	// amortization.
	Batch batch.Config
	// Window overrides the per-process flow-control window (0 = the stack
	// defaults, which for a batched engine include EffectiveWindow's
	// widening to two batches). Pin it to the same value in a batched and
	// an unbatched run to compare pure amortization at equal admission
	// capacity — otherwise the batched run also enjoys a larger in-flight
	// allowance.
	Window int
	// Pipeline sets the consensus pipeline window W in every measured
	// engine (0 or 1 = the paper's strictly sequential instances). The
	// dedicated pipeline figure (FigPipeline) sweeps depths itself; this
	// field pipelines the standard figures.
	Pipeline int
	// Dissemination selects the payload topology in every measured engine
	// (zero = AllToAll, the paper's behavior). The dedicated ring figure
	// (FigRing) sweeps both strategies itself; this field retargets the
	// standard figures.
	Dissemination dissem.Strategy
	// Digest turns digest ordering on in every measured engine (payloads
	// disseminate once, consensus orders ~32-byte descriptors). The
	// dedicated digest figure (FigDigest) sweeps both modes itself; this
	// field retargets the standard figures.
	Digest bool
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Warmup <= 0 {
		o.Warmup = 2 * time.Second
	}
	if o.Measure <= 0 {
		o.Measure = 4 * time.Second
	}
	if o.Repetitions <= 0 {
		o.Repetitions = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// RunPoint measures one configuration, averaging over repetitions.
func RunPoint(n int, stk types.Stack, load float64, size int, opts RunOptions) (Point, error) {
	opts = opts.withDefaults()
	var engCfg engine.Config // zero value: netsim applies DefaultConfig(n)
	if opts.Batch.Enabled() || opts.Window > 0 || opts.Pipeline > 0 || opts.Dissemination != dissem.AllToAll || opts.Digest {
		engCfg = engine.DefaultConfig(n)
		engCfg.Batch = opts.Batch
		if opts.Window > 0 {
			engCfg.Window = opts.Window
		}
		engCfg.PipelineDepth = opts.Pipeline
		engCfg.Dissemination = opts.Dissemination
		engCfg.DigestOrdering = opts.Digest
	}
	var lat, thr, avgM, msgsPerDec, msgsPerBat, hdrPerMsg, util stats.Welford
	var blocked, dropped int64
	for rep := 0; rep < opts.Repetitions; rep++ {
		lc, err := netsim.NewLoadedCluster(
			netsim.Options{N: n, Stack: stk, Engine: engCfg, Seed: opts.Seed + int64(rep), Model: opts.Model},
			netsim.Workload{OfferedLoad: load, Size: size},
			opts.Warmup, opts.Measure)
		if err != nil {
			return Point{}, err
		}
		lc.Run(opts.Warmup + opts.Measure + time.Second)
		if errs := lc.Errs(); len(errs) > 0 {
			return Point{}, fmt.Errorf("engine error: %w", errs[0])
		}
		tot := lc.TotalCounters()
		lat.Add(lc.Recorder.MeanLatency() * 1e3)
		thr.Add(lc.Recorder.Throughput())
		avgM.Add(tot.AvgBatch())
		decisionsPerProc := float64(tot.ConsensusDecided) / float64(n)
		if decisionsPerProc > 0 {
			msgsPerDec.Add(float64(tot.MsgsSent) / decisionsPerProc)
		}
		msgsPerBat.Add(tot.MsgsPerSenderBatch())
		hdrPerMsg.Add(tot.HeaderBytesPerMsg())
		maxUtil := 0.0
		for p := 0; p < n; p++ {
			if u := lc.Utilization(types.ProcessID(p)); u > maxUtil {
				maxUtil = u
			}
		}
		util.Add(maxUtil)
		blocked += lc.Recorder.Blocked
		dropped += tot.StreamDropped
	}
	return Point{
		N:             n,
		Stack:         stk,
		OfferedLoad:   load,
		Size:          size,
		LatencyMs:     lat.Mean(),
		LatencyCI:     lat.CI95(),
		Throughput:    thr.Mean(),
		ThroughCI:     thr.CI95(),
		M:             avgM.Mean(),
		MsgsPerDec:    msgsPerDec.Mean(),
		MsgsPerBat:    msgsPerBat.Mean(),
		HeaderPerMsg:  hdrPerMsg.Mean(),
		Utilization:   util.Mean(),
		Blocked:       blocked / int64(opts.Repetitions),
		StreamDropped: dropped / int64(opts.Repetitions),
	}, nil
}

// Figure is one regenerated evaluation figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Points []Point
}

// Series parameters mirroring the paper.
var (
	// LoadSweep is the offered-load x-axis of Figures 8 and 10 (msgs/s).
	LoadSweep = []float64{250, 500, 1000, 2000, 3000, 4000, 5000, 6000, 7000}
	// SizeSweep is the message-size x-axis of Figures 9 and 11 (bytes).
	SizeSweep = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	// GroupSizes are the paper's two group sizes.
	GroupSizes = []int{3, 7}
	// Stacks under comparison.
	Stacks = []types.Stack{types.Monolithic, types.Modular}
)

// fig8Size is the fixed message size of Figures 8 and 10.
const fig8Size = 16384

// fig9Load is the fixed offered load of Figures 9 and 11 (msgs/s).
const fig9Load = 2000

// sweep runs the cartesian product of group sizes, stacks and xs.
func sweep(opts RunOptions, xs int, run func(n int, stk types.Stack, i int) (Point, error)) ([]Point, error) {
	points := make([]Point, 0, len(GroupSizes)*len(Stacks)*xs)
	for _, n := range GroupSizes {
		for _, stk := range Stacks {
			for i := 0; i < xs; i++ {
				p, err := run(n, stk, i)
				if err != nil {
					return nil, err
				}
				points = append(points, p)
			}
		}
	}
	return points, nil
}

// Fig8 regenerates Figure 8: early latency vs offered load, 16384-byte
// messages.
func Fig8(opts RunOptions) (Figure, error) {
	pts, err := sweep(opts, len(LoadSweep), func(n int, stk types.Stack, i int) (Point, error) {
		return RunPoint(n, stk, LoadSweep[i], fig8Size, opts)
	})
	return Figure{
		ID:     "fig8",
		Title:  "Early latency vs. offered load (message size = 16384 bytes)",
		XLabel: "offered load (msgs/s)",
		YLabel: "early latency (ms)",
		Points: pts,
	}, err
}

// Fig9 regenerates Figure 9: early latency vs message size at 2000 msgs/s.
func Fig9(opts RunOptions) (Figure, error) {
	pts, err := sweep(opts, len(SizeSweep), func(n int, stk types.Stack, i int) (Point, error) {
		return RunPoint(n, stk, fig9Load, SizeSweep[i], opts)
	})
	return Figure{
		ID:     "fig9",
		Title:  "Early latency vs. message size (offered load = 2000 msgs/s)",
		XLabel: "message size (bytes)",
		YLabel: "early latency (ms)",
		Points: pts,
	}, err
}

// Fig10 regenerates Figure 10: throughput vs offered load, 16384-byte
// messages.
func Fig10(opts RunOptions) (Figure, error) {
	pts, err := sweep(opts, len(LoadSweep), func(n int, stk types.Stack, i int) (Point, error) {
		return RunPoint(n, stk, LoadSweep[i], fig8Size, opts)
	})
	return Figure{
		ID:     "fig10",
		Title:  "Throughput vs. offered load (message size = 16384 bytes)",
		XLabel: "offered load (msgs/s)",
		YLabel: "throughput (msgs/s)",
		Points: pts,
	}, err
}

// Fig11 regenerates Figure 11: throughput vs message size at 2000 msgs/s.
func Fig11(opts RunOptions) (Figure, error) {
	pts, err := sweep(opts, len(SizeSweep), func(n int, stk types.Stack, i int) (Point, error) {
		return RunPoint(n, stk, fig9Load, SizeSweep[i], opts)
	})
	return Figure{
		ID:     "fig11",
		Title:  "Throughput vs. message size (offered load = 2000 msgs/s)",
		XLabel: "message size (bytes)",
		YLabel: "throughput (msgs/s)",
		Points: pts,
	}, err
}

// Render writes the figure as an aligned text table, one row per point,
// grouped the way the paper's curves are labelled. The msgs/batch column
// is the average sender-side batch size (0 when batching is disabled);
// hdrB/msg is the protocol overhead in wire bytes per application
// message, the quantity batching amortizes.
func Render(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "%s — %s\n", fig.ID, fig.Title)
	fmt.Fprintf(w, "%-6s %-11s %12s %10s %14s %14s %7s %9s %10s %9s %6s %8s %6s\n",
		"group", "stack", fig.XLabel, "lat(ms)", "±95%CI", "thr(msg/s)", "M", "msgs/dec",
		"msgs/batch", "hdrB/msg", "util", "blocked", "drops")
	for _, p := range fig.Points {
		x := p.OfferedLoad
		if fig.ID == "fig9" || fig.ID == "fig11" {
			x = float64(p.Size)
		}
		fmt.Fprintf(w, "%-6d %-11s %12.0f %10.3f %14.3f %14.1f %7.2f %9.2f %10.2f %9.1f %6.2f %8d %6d\n",
			p.N, p.Stack, x, p.LatencyMs, p.LatencyCI, p.Throughput, p.M, p.MsgsPerDec,
			p.MsgsPerBat, p.HeaderPerMsg, p.Utilization, p.Blocked, p.StreamDropped)
	}
	fmt.Fprintln(w)
}

// RenderAnalytical writes the §5.2 tables (A1: messages per consensus,
// A2: payload bytes per consensus and overhead) for the given M and l.
func RenderAnalytical(w io.Writer, m, l int) {
	fmt.Fprintf(w, "A1 (§5.2.1) — messages sent per consensus execution (M=%d)\n", m)
	fmt.Fprintf(w, "%-6s %10s %12s %8s\n", "n", "modular", "monolithic", "ratio")
	for _, n := range GroupSizes {
		mod := analytical.ModularMessages(n, m)
		mono := analytical.MonolithicMessages(n)
		fmt.Fprintf(w, "%-6d %10d %12d %8.2f\n", n, mod, mono, float64(mod)/float64(mono))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "A2 (§5.2.2) — payload bytes per consensus execution (M=%d, l=%d)\n", m, l)
	fmt.Fprintf(w, "%-6s %12s %12s %10s\n", "n", "modular", "monolithic", "overhead")
	for _, n := range GroupSizes {
		fmt.Fprintf(w, "%-6d %12d %12d %9.0f%%\n",
			n, analytical.ModularData(n, m, l), analytical.MonolithicData(n, m, l),
			analytical.Overhead(n)*100)
	}
	fmt.Fprintln(w)
}
