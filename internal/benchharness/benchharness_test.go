package benchharness

import (
	"strings"
	"testing"
	"time"

	"modab/internal/types"
)

// quickOpts keeps harness tests fast: one repetition, short windows.
func quickOpts() RunOptions {
	return RunOptions{
		Warmup:      300 * time.Millisecond,
		Measure:     700 * time.Millisecond,
		Repetitions: 1,
		Seed:        1,
	}
}

func TestRunPointProducesSaneNumbers(t *testing.T) {
	p, err := RunPoint(3, types.Monolithic, 1000, 1024, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput <= 0 || p.LatencyMs <= 0 {
		t.Fatalf("degenerate point: %+v", p)
	}
	if p.Throughput > 1100 {
		t.Fatalf("throughput above offered load: %v", p.Throughput)
	}
	if p.Utilization <= 0 || p.Utilization > 1 {
		t.Fatalf("utilization: %v", p.Utilization)
	}
}

func TestRunPointRepetitionCI(t *testing.T) {
	opts := quickOpts()
	opts.Repetitions = 3
	p, err := RunPoint(3, types.Modular, 2000, 4096, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.LatencyCI < 0 || p.ThroughCI < 0 {
		t.Fatalf("negative CI: %+v", p)
	}
}

func TestRenderFormats(t *testing.T) {
	fig := Figure{
		ID:     "fig8",
		Title:  "test",
		XLabel: "offered load (msgs/s)",
		Points: []Point{{N: 3, Stack: types.Modular, OfferedLoad: 1000, LatencyMs: 5, Throughput: 900, M: 4}},
	}
	var sb strings.Builder
	Render(&sb, fig)
	out := sb.String()
	for _, want := range []string{"fig8", "modular", "1000", "5.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderAnalyticalQuotesPaper(t *testing.T) {
	var sb strings.Builder
	RenderAnalytical(&sb, 4, 16384)
	out := sb.String()
	// 16 vs 4 messages at n=3, 50%/75% overhead.
	for _, want := range []string{"16", "50%", "75%"} {
		if !strings.Contains(out, want) {
			t.Errorf("analytical table missing %q in:\n%s", want, out)
		}
	}
}

// TestRunKVPointProducesSaneNumbers exercises the replicated-KV point:
// commands apply, latency is measured, and snapshots run.
func TestRunKVPointProducesSaneNumbers(t *testing.T) {
	opts := quickOpts()
	opts.Warmup = 500 * time.Millisecond
	opts.Measure = 2 * time.Second
	p, err := RunKVPoint(3, types.Monolithic, 1000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.OpsPerSec <= 0 || p.ApplyMeanMs <= 0 {
		t.Fatalf("degenerate KV point: %+v", p)
	}
	if p.ApplyP99Ms < p.ApplyMeanMs {
		t.Fatalf("p99 below mean: %+v", p)
	}
	if p.SnapshotsTaken == 0 {
		t.Fatalf("no snapshots under sustained load: %+v", p)
	}

	var sb strings.Builder
	RenderKV(&sb, KVFigure{Title: "test", Points: []KVPoint{p}})
	if !strings.Contains(sb.String(), "monolithic") {
		t.Errorf("render missing stack name:\n%s", sb.String())
	}
}

// TestTinyFigureSweep runs a reduced Fig-10-shaped sweep end to end.
func TestTinyFigureSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opts := quickOpts()
	// Shrink the sweep axes for the test, restore after.
	loads, groups := LoadSweep, GroupSizes
	LoadSweep = []float64{500, 2000}
	GroupSizes = []int{3}
	defer func() { LoadSweep, GroupSizes = loads, groups }()

	fig, err := Fig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2*len(Stacks) {
		t.Fatalf("points = %d", len(fig.Points))
	}
	// Below saturation both stacks deliver the offered load.
	for _, p := range fig.Points {
		if p.OfferedLoad == 500 && (p.Throughput < 450 || p.Throughput > 550) {
			t.Errorf("%s at 500: thr %.0f", p.Stack, p.Throughput)
		}
	}
}
