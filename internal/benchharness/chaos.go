package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/chaos"
	"modab/internal/types"
)

// ChaosPoint is one stack's aggregate over the chaos soak: seeds run,
// injected fault volume, and what the faults cost in deliveries and
// repair traffic. A ChaosPoint only exists for violation-free runs —
// any property violation aborts FigChaos with an error instead.
type ChaosPoint struct {
	Stack types.Stack
	Seeds int
	// Deliveries is the mean adeliveries per process per run.
	Deliveries float64
	// Dropped/Duped/Reordered are mean fault injections per run;
	// PartitionSecs is the mean per-run partition exposure.
	Dropped       float64
	Duped         float64
	Reordered     float64
	PartitionSecs float64
	// Retransmissions is the mean recovery-path sends per run — what the
	// engines spent repairing the damage.
	Retransmissions float64
}

// ChaosFigure is the chaos soak table: both stacks over the same seeded
// schedules.
type ChaosFigure struct {
	Title  string
	Points []ChaosPoint
}

// chaosFigureSeeds is how many randomized schedules the figure runs per
// stack; each is a full two-stack property-checked scenario.
const chaosFigureSeeds = 12

// FigChaos runs the chaos soak as a benchmark figure: seeded randomized
// fault schedules (partitions, lossy links, wrong suspicions,
// crash+restart) against both stacks with every atomic broadcast property
// checked, reporting fault volume and repair cost. Any violation makes
// the figure an error — a benchmark run on a broken protocol is not a
// result.
func FigChaos(opts RunOptions) (ChaosFigure, error) {
	opts = opts.withDefaults()
	fig := ChaosFigure{
		Title: fmt.Sprintf("Chaos soak, randomized fault schedules (n=3, %d seeds, durable, base seed %d)",
			chaosFigureSeeds, opts.Seed),
	}
	agg := map[types.Stack]*ChaosPoint{
		types.Modular:    {Stack: types.Modular},
		types.Monolithic: {Stack: types.Monolithic},
	}
	for i := 0; i < chaosFigureSeeds; i++ {
		seed := opts.Seed + int64(i)
		rng := chaos.ScheduleRNG(seed)
		sch := chaos.RandomSchedule(rng, 3, time.Second, true)
		res, err := chaos.Run(seed, sch, chaos.StackConfig{Durable: true})
		if err != nil {
			return fig, err
		}
		if !res.Ok() {
			return fig, fmt.Errorf("property violation during the chaos figure:\n%s", res.Report())
		}
		for _, sr := range res.Stacks {
			p := agg[sr.Stack]
			p.Seeds++
			tot := sr.Stats.Total
			n := float64(sr.Stats.N)
			p.Deliveries += float64(tot.ADeliver) / n
			p.Dropped += float64(tot.DroppedByFault)
			p.Duped += float64(tot.DupedByFault)
			p.Reordered += float64(tot.ReorderedByFault)
			p.PartitionSecs += tot.PartitionSecs()
			p.Retransmissions += float64(tot.Retransmissions)
		}
	}
	for _, stk := range Stacks {
		p := agg[stk]
		if p.Seeds > 0 {
			d := float64(p.Seeds)
			p.Deliveries /= d
			p.Dropped /= d
			p.Duped /= d
			p.Reordered /= d
			p.PartitionSecs /= d
			p.Retransmissions /= d
		}
		fig.Points = append(fig.Points, *p)
	}
	return fig, nil
}

// RenderChaos writes the chaos figure as an aligned text table.
func RenderChaos(w io.Writer, fig ChaosFigure) {
	fmt.Fprintf(w, "chaos — %s\n", fig.Title)
	fmt.Fprintf(w, "%-11s %6s %10s %9s %7s %9s %8s %8s\n",
		"stack", "seeds", "deliv/proc", "dropped", "duped", "reordered", "partSecs", "retrans")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%-11s %6d %10.1f %9.1f %7.1f %9.1f %8.2f %8.1f\n",
			p.Stack, p.Seeds, p.Deliveries, p.Dropped, p.Duped, p.Reordered,
			p.PartitionSecs, p.Retransmissions)
	}
	fmt.Fprintln(w)
}
