package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/batch"
	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/stats"
	"modab/internal/types"
)

// DigestPoint is one measured (stack, digest on/off, load) configuration
// of the digest-ordering figure: the dissemination/ordering split
// experiment. The byte-split columns are what the split changes — with
// digest ordering off every consensus frame carries the payload batch, so
// ordering traffic scales with payload size; with it on the batch travels
// once as an announce and consensus orders a ~32-byte descriptor.
type DigestPoint struct {
	N           int
	Stack       types.Stack
	Digest      bool
	OfferedLoad float64 // msgs/s, global
	Size        int     // bytes

	Throughput float64 // msgs/s (paper's T)
	ThroughCI  float64 // 95% CI half-width across repetitions
	LatencyMs  float64 // mean adeliver (early) latency, ms
	LatencyCI  float64
	// OrderedBPerMsg is the ordering-path wire bytes (proposal, ack,
	// estimate, decision frames — full frame size, fanout included) per
	// adelivered message: the acceptance metric, which must collapse when
	// payloads leave the ordering path.
	OrderedBPerMsg float64
	// DissemBPerMsg is the payload-dissemination wire bytes (announce,
	// payload-resp, digest-mode relay frames) per adelivered message.
	DissemBPerMsg float64
	// PayloadFetches counts decided-descriptor payload repairs — zero in
	// these failure-free runs unless an announce raced a decision.
	PayloadFetches int64
	Utilization    float64 // busiest-process CPU utilization
	Blocked        int64   // flow-control rejections per repetition
}

// Digest sweep parameters: the paper-scale group under small messages and
// deep sender batches, on a payload-bound cost profile — per-byte receive
// and serialization costs dominate the fixed per-message costs, the
// regime where moving every 1000-message batch through the ordering path
// (once per consensus fanout) rather than once is the binding constraint.
var DigestLoadSweep = []float64{20000, 40000, 100000}

const (
	digestN    = 5
	digestSize = 64
	// digestBatchMsgs packs 1000 application messages per sender batch, so
	// one descriptor stands in for ~90 KB of batch frame on the ordering
	// path.
	digestBatchMsgs = 1000
	digestBatchWait = 5 * time.Millisecond
	// digestWindow admits two full batches per origin — enough to keep the
	// pipeline fed, small enough that overload is rejected at submission
	// (Blocked) instead of queueing seconds of backlog whose latency then
	// trips the crash-path retransmission timers into a rediffusion storm.
	digestWindow   = 2 * digestBatchMsgs
	digestPipeline = 8
	// digestResend slows the crash-path timers: these runs are
	// failure-free, and a resend period below the saturated adeliver
	// latency would re-spread healthy in-flight batches.
	digestResend = 2 * time.Second
)

// digestModel is the payload-bound cost profile: DefaultModel's per-byte
// costs scaled up and its NIC scaled down to a 100 Mb/s fabric, with the
// fixed per-message CPU costs scaled far down so frame handling is priced
// by size, not count. Under DefaultModel the fixed per-submit CPU cost
// alone saturates both modes at the same point and the split is invisible.
func digestModel() netsim.CostModel {
	m := netsim.DefaultModel()
	m.RecvPerMsg /= 100
	m.SendPerMsg /= 100
	m.PerDispatch /= 100
	m.AbcastPerMsg /= 100
	m.RecvNsPerByte *= 10
	m.SendNsPerByte *= 10
	m.BandwidthBytesPerSec /= 10
	return m
}

// RunDigestPoint measures one (stack, digest, load) configuration,
// averaging over repetitions.
func RunDigestPoint(stk types.Stack, digest bool, load float64, opts RunOptions) (DigestPoint, error) {
	opts = opts.withDefaults()
	model := opts.Model
	if model == (netsim.CostModel{}) {
		model = digestModel()
	}
	engCfg := engine.DefaultConfig(digestN)
	engCfg.DigestOrdering = digest
	engCfg.Batch = batch.Config{MaxMsgs: digestBatchMsgs, MaxDelay: digestBatchWait}
	engCfg.Window = digestWindow
	engCfg.PipelineDepth = digestPipeline
	engCfg.ResendEvery = digestResend
	engCfg.Dissemination = opts.Dissemination
	var thr, lat, ordB, disB, util stats.Welford
	var fetches, blocked int64
	for rep := 0; rep < opts.Repetitions; rep++ {
		lc, err := netsim.NewLoadedCluster(
			netsim.Options{N: digestN, Stack: stk, Engine: engCfg, Seed: opts.Seed + int64(rep), Model: model},
			netsim.Workload{OfferedLoad: load, Size: digestSize},
			opts.Warmup, opts.Measure)
		if err != nil {
			return DigestPoint{}, err
		}
		lc.Run(opts.Warmup + opts.Measure + time.Second)
		if errs := lc.Errs(); len(errs) > 0 {
			return DigestPoint{}, fmt.Errorf("engine error: %w", errs[0])
		}
		tot := lc.TotalCounters()
		thr.Add(lc.Recorder.Throughput())
		lat.Add(lc.Recorder.MeanLatency() * 1e3)
		ordB.Add(tot.OrderedBytesPerMsg())
		disB.Add(tot.DisseminatedBytesPerMsg())
		maxUtil := 0.0
		for p := 0; p < digestN; p++ {
			if u := lc.Utilization(types.ProcessID(p)); u > maxUtil {
				maxUtil = u
			}
		}
		util.Add(maxUtil)
		fetches += tot.PayloadFetches
		blocked += lc.Recorder.Blocked
	}
	return DigestPoint{
		N:              digestN,
		Stack:          stk,
		Digest:         digest,
		OfferedLoad:    load,
		Size:           digestSize,
		Throughput:     thr.Mean(),
		ThroughCI:      thr.CI95(),
		LatencyMs:      lat.Mean(),
		LatencyCI:      lat.CI95(),
		OrderedBPerMsg: ordB.Mean(),
		DissemBPerMsg:  disB.Mean(),
		PayloadFetches: fetches / int64(opts.Repetitions),
		Utilization:    util.Mean(),
		Blocked:        blocked / int64(opts.Repetitions),
	}, nil
}

// DigestFigure is the dissemination/ordering split comparison: both
// stacks, digest ordering off and on, over a saturating load sweep.
type DigestFigure struct {
	Title  string
	Points []DigestPoint
}

// FigDigest measures both stacks with digest ordering off and on at every
// load in DigestLoadSweep (n=5, 64-byte messages, 1000-message sender
// batches, payload-bound model).
func FigDigest(opts RunOptions) (DigestFigure, error) {
	fig := DigestFigure{
		Title: fmt.Sprintf("Digest ordering, payload vs descriptor consensus (n=%d, size=%d B, batch=%d, W=%d, payload-bound model)",
			digestN, digestSize, digestBatchMsgs, digestPipeline),
	}
	for _, stk := range Stacks {
		for _, digest := range []bool{false, true} {
			for _, load := range DigestLoadSweep {
				p, err := RunDigestPoint(stk, digest, load, opts)
				if err != nil {
					return fig, err
				}
				fig.Points = append(fig.Points, p)
			}
		}
	}
	return fig, nil
}

// digestMode names a point's ordering mode in the rendered table.
func digestMode(d bool) string {
	if d {
		return "digest"
	}
	return "payload"
}

// RenderDigest writes the digest figure as an aligned text table, then a
// per-stack summary line — the acceptance metrics. The ordered-bytes
// ratio is taken at the lowest load, where both modes deliver the full
// offered rate and the per-message byte costs compare cleanly; the
// throughput ratio compares each mode's peak sustained rate across the
// sweep, so a payload-mode overload collapse (retransmission storms
// re-spreading full batches) doesn't inflate the gain.
func RenderDigest(w io.Writer, fig DigestFigure) {
	fmt.Fprintf(w, "digest — %s\n", fig.Title)
	fmt.Fprintf(w, "%-6s %-11s %-8s %12s %12s %10s %9s %10s %10s %8s %6s %8s\n",
		"group", "stack", "mode", "load(msg/s)", "thr(msg/s)", "±95%CI", "lat(ms)",
		"ordB/msg", "dissB/msg", "fetches", "util", "blocked")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%-6d %-11s %-8s %12.0f %12.1f %10.1f %9.2f %10.1f %10.1f %8d %6.2f %8d\n",
			p.N, p.Stack, digestMode(p.Digest), p.OfferedLoad, p.Throughput, p.ThroughCI,
			p.LatencyMs, p.OrderedBPerMsg, p.DissemBPerMsg, p.PayloadFetches,
			p.Utilization, p.Blocked)
	}
	for _, stk := range Stacks {
		var offB, onB, offPeak, onPeak float64
		for _, p := range fig.Points {
			if p.Stack != stk {
				continue
			}
			if p.Digest {
				if p.OfferedLoad == DigestLoadSweep[0] {
					onB = p.OrderedBPerMsg
				}
				if p.Throughput > onPeak {
					onPeak = p.Throughput
				}
			} else {
				if p.OfferedLoad == DigestLoadSweep[0] {
					offB = p.OrderedBPerMsg
				}
				if p.Throughput > offPeak {
					offPeak = p.Throughput
				}
			}
		}
		if onB == 0 || offPeak == 0 {
			continue
		}
		fmt.Fprintf(w, "%s: ordered bytes/msg %.1f -> %.1f (%.1fx), peak throughput %.0f -> %.0f msgs/s (%.2fx)\n",
			stk, offB, onB, offB/onB, offPeak, onPeak, onPeak/offPeak)
	}
	fmt.Fprintln(w)
}
