package benchharness

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ReportSchema versions the machine-readable benchmark output; bump it on
// breaking shape changes so trajectory tooling can dispatch. v2 adds the
// ring figure (dissemination topology sweep) and the dissemination run
// option; v3 adds the histogram-backed adeliver-latency percentile
// columns (LatencyP50Ms/LatencyP99Ms on the pipeline and ring points,
// DeliverP50Ms/DeliverP99Ms on the KV points) sourced from the
// observability layer's log₂ latency histograms; v4 adds the digest
// figure (ordering/dissemination byte split with digest ordering off and
// on) and the digest run option; v5 adds the membership figure (rolling-
// replace throughput dip and joiner catch-up cost).
const ReportSchema = "modab-bench/v5"

// Report is the machine-readable form of one abbench run: every figure's
// points plus the recovery sweep, under a versioned schema — the input of
// BENCH_*.json performance-trajectory tracking.
type Report struct {
	Schema      string            `json:"schema"`
	GeneratedAt time.Time         `json:"generated_at"`
	Options     ReportOptions     `json:"options"`
	Figures     []Figure          `json:"figures,omitempty"`
	Recovery    *RecoveryFigure   `json:"recovery,omitempty"`
	Pipeline    *PipelineFigure   `json:"pipeline,omitempty"`
	Chaos       *ChaosFigure      `json:"chaos,omitempty"`
	KV          *KVFigure         `json:"kv,omitempty"`
	Ring        *RingFigure       `json:"ring,omitempty"`
	Digest      *DigestFigure     `json:"digest,omitempty"`
	Membership  *MembershipFigure `json:"membership,omitempty"`
}

// ReportOptions records the sweep parameters the numbers were produced
// under, so two reports are comparable (or visibly not).
type ReportOptions struct {
	WarmupSec   float64 `json:"warmup_sec"`
	MeasureSec  float64 `json:"measure_sec"`
	Repetitions int     `json:"repetitions"`
	Seed        int64   `json:"seed"`
	BatchMsgs   int     `json:"batch_msgs,omitempty"`
	BatchBytes  int     `json:"batch_bytes,omitempty"`
	Pipeline    int     `json:"pipeline,omitempty"`
	Dissem      string  `json:"dissem,omitempty"`
	Digest      bool    `json:"digest,omitempty"`
}

// NewReport assembles a report from run options and results.
func NewReport(opts RunOptions, figs []Figure, rec *RecoveryFigure, pipe *PipelineFigure, cha *ChaosFigure, kv *KVFigure, ring *RingFigure, dig *DigestFigure, mem *MembershipFigure) Report {
	opts = opts.withDefaults()
	dissemName := ""
	if opts.Dissemination != 0 {
		dissemName = opts.Dissemination.String()
	}
	return Report{
		Schema:      ReportSchema,
		GeneratedAt: time.Now().UTC(),
		Options: ReportOptions{
			WarmupSec:   opts.Warmup.Seconds(),
			MeasureSec:  opts.Measure.Seconds(),
			Repetitions: opts.Repetitions,
			Seed:        opts.Seed,
			BatchMsgs:   opts.Batch.MaxMsgs,
			BatchBytes:  opts.Batch.MaxBytes,
			Pipeline:    opts.Pipeline,
			Dissem:      dissemName,
			Digest:      opts.Digest,
		},
		Figures:    figs,
		Recovery:   rec,
		Pipeline:   pipe,
		Chaos:      cha,
		KV:         kv,
		Ring:       ring,
		Digest:     dig,
		Membership: mem,
	}
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func WriteJSON(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchharness: encode report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchharness: write report: %w", err)
	}
	return nil
}
