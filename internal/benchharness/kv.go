package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/obs"
	"modab/internal/rsm"
	"modab/internal/stats"
	"modab/internal/types"
)

// KVPoint is one measured replicated-KV configuration: every process
// submits put commands against a rotating keyspace, and the point
// reports the end-to-end service metrics — applied operations per
// second and the submit→applied latency distribution (the client-visible
// cost of ordering plus apply), alongside the snapshot activity the
// workload provoked.
type KVPoint struct {
	N           int
	Stack       types.Stack
	OfferedLoad float64 // KV ops/s offered, global

	OpsPerSec   float64 // applied ops/s (per-process mean over the window)
	OpsCI       float64 // 95% CI half-width across repetitions
	ApplyMeanMs float64 // mean submit→applied at the submitter, virtual ms
	ApplyP99Ms  float64 // p99 submit→applied, virtual ms
	ApplyCI     float64 // 95% CI half-width of the mean across repetitions
	// DeliverP50Ms/DeliverP99Ms are the submit→adeliver percentiles from
	// the observability histograms over the measurement window (log₂
	// bucket upper bounds — the histogram-backed counterpart of the exact
	// series percentiles above).
	DeliverP50Ms float64
	DeliverP99Ms float64

	SnapshotsTaken int64 // per run, at one process
	WalTruncated   int64 // WAL segments truncated per run, at one process
}

// kvLoad, kvKeyspace, kvValueSize and kvSnapshotEvery pin the KV sweep's
// workload: a put-only stream over a bounded keyspace, so state stays
// small while snapshots and truncation keep running.
const (
	kvLoad          = 1000
	kvKeyspace      = 512
	kvValueSize     = 64
	kvSnapshotEvery = 64
)

// RunKVPoint measures one replicated-KV configuration, averaging over
// repetitions.
func RunKVPoint(n int, stk types.Stack, load float64, opts RunOptions) (KVPoint, error) {
	opts = opts.withDefaults()
	var ops, mean, p99 stats.Welford
	var snaps, truncated int64
	var hist obs.HistSnapshot
	for rep := 0; rep < opts.Repetitions; rep++ {
		windowStart, windowEnd := opts.Warmup, opts.Warmup+opts.Measure

		// Submit→applied latency at the submitter: applies happen
		// synchronously at delivery, so the delivery instant at the
		// sending process is its applied instant.
		t0 := make(map[types.MsgID]time.Duration)
		var lat stats.Series
		var appliedInWindow int64
		c, err := netsim.NewCluster(netsim.Options{
			N: n, Stack: stk, Seed: opts.Seed + int64(rep),
			Model: opts.Model, Durable: true,
			StateMachine:  func() rsm.StateMachine { return rsm.NewKV() },
			SnapshotEvery: kvSnapshotEvery,
			OnDeliver: func(p types.ProcessID, d engine.Delivery, at time.Duration) {
				if at >= windowStart && at < windowEnd {
					appliedInWindow++
				}
				if types.ProcessID(d.Msg.ID.Sender) != p {
					return
				}
				if start, ok := t0[d.Msg.ID]; ok {
					lat.Add((at - start).Seconds())
					delete(t0, d.Msg.ID)
				}
			},
		})
		if err != nil {
			return KVPoint{}, err
		}
		installKVWorkload(c, n, load, windowEnd, func(id types.MsgID, at time.Duration, err error) {
			if err == nil && at >= windowStart {
				t0[id] = at
			}
		})
		// Drop warm-up samples from the deliver histograms so the
		// percentile columns cover the same window as the series above.
		c.At(windowStart, func() {
			for p := 0; p < n; p++ {
				c.Obs(types.ProcessID(p)).Deliver.Reset()
			}
		})
		c.Run(windowEnd + time.Second)
		c.RunIdle(10 * time.Second)
		if errs := c.Errs(); len(errs) > 0 {
			return KVPoint{}, fmt.Errorf("engine error: %w", errs[0])
		}
		window := (windowEnd - windowStart).Seconds()
		ops.Add(float64(appliedInWindow) / window / float64(n))
		mean.Add(lat.Mean() * 1e3)
		p99.Add(lat.Percentile(99) * 1e3)
		cnt := c.Counters(0)
		snaps += cnt.SnapshotsTaken
		truncated += cnt.WalTruncatedSegments
		for p := 0; p < n; p++ {
			hist = hist.Merge(c.Obs(types.ProcessID(p)).Deliver.Snapshot())
		}
	}
	reps := int64(opts.Repetitions)
	return KVPoint{
		N:              n,
		Stack:          stk,
		OfferedLoad:    load,
		OpsPerSec:      ops.Mean(),
		OpsCI:          ops.CI95(),
		ApplyMeanMs:    mean.Mean(),
		ApplyP99Ms:     p99.Mean(),
		ApplyCI:        mean.CI95(),
		DeliverP50Ms:   histMs(hist.P50()),
		DeliverP99Ms:   histMs(hist.P99()),
		SnapshotsTaken: snaps / reps,
		WalTruncated:   truncated / reps,
	}, nil
}

// installKVWorkload schedules every process to submit put commands over
// a rotating keyspace at rate load/n until end.
func installKVWorkload(c *netsim.Cluster, n int, load float64, end time.Duration,
	report func(types.MsgID, time.Duration, error)) {
	interval := time.Duration(float64(time.Second) / (load / float64(n)))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	for i := 0; i < n; i++ {
		p := types.ProcessID(i)
		scheduleKVSender(c, p, i, n, end, report, time.Duration(i)*interval/time.Duration(n), interval)
	}
}

// scheduleKVSender arms one process's periodic KV put loop.
func scheduleKVSender(c *netsim.Cluster, p types.ProcessID, k, n int, end time.Duration,
	report func(types.MsgID, time.Duration, error), next, interval time.Duration) {
	if next >= end {
		return
	}
	cmd := rsm.EncodePut(
		[]byte(fmt.Sprintf("key-%04d", k%kvKeyspace)),
		[]byte(fmt.Sprintf("%0*d", kvValueSize, k)))
	c.Abcast(p, next, cmd, func(id types.MsgID, t0 time.Duration, err error) {
		if err != types.ErrCrashed {
			report(id, t0, err)
		}
	})
	c.At(next, func() {
		scheduleKVSender(c, p, k+n, n, end, report, next+interval, interval)
	})
}

// KVFigure is the replicated-KV service comparison: both stacks, both
// group sizes, put workload with snapshotting and truncation active.
type KVFigure struct {
	Title  string
	Points []KVPoint
}

// FigKV measures the end-to-end replicated KV service on both stacks:
// applied ops/s and the submit→applied latency the ordering layer adds
// in front of the state machine.
func FigKV(opts RunOptions) (KVFigure, error) {
	fig := KVFigure{
		Title: fmt.Sprintf("Replicated KV service (load = %d ops/s, %d-key space, %d B values, snapshot every %d instances)",
			kvLoad, kvKeyspace, kvValueSize, kvSnapshotEvery),
	}
	for _, n := range GroupSizes {
		for _, stk := range Stacks {
			p, err := RunKVPoint(n, stk, kvLoad, opts)
			if err != nil {
				return fig, err
			}
			fig.Points = append(fig.Points, p)
		}
	}
	return fig, nil
}

// RenderKV writes the KV figure as an aligned text table.
func RenderKV(w io.Writer, fig KVFigure) {
	fmt.Fprintf(w, "kv — %s\n", fig.Title)
	fmt.Fprintf(w, "%-6s %-11s %12s %10s %12s %12s %10s %9s %9s %10s %10s\n",
		"group", "stack", "ops/s", "±95%CI", "apply(ms)", "p99(ms)", "±95%CI", "h-p50(ms)", "h-p99(ms)", "snapshots", "trunc-seg")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%-6d %-11s %12.1f %10.1f %12.3f %12.3f %10.3f %9.3f %9.3f %10d %10d\n",
			p.N, p.Stack, p.OpsPerSec, p.OpsCI, p.ApplyMeanMs, p.ApplyP99Ms, p.ApplyCI,
			p.DeliverP50Ms, p.DeliverP99Ms, p.SnapshotsTaken, p.WalTruncated)
	}
	fmt.Fprintln(w)
}
