package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/stats"
	"modab/internal/types"
)

// MembershipPoint is one measured rolling-replace configuration: a
// 3-process cluster under continuous load replaces every boot process
// inside the measurement window (join a fresh process, let it catch up
// through state transfer, retire an old one — three times), and the
// point reports what the churn cost in ordered throughput against an
// identical steady-membership control run, plus how long each joiner's
// catch-up took.
type MembershipPoint struct {
	N           int
	Stack       types.Stack
	OfferedLoad float64 // msgs/s, global
	Size        int     // bytes

	SteadyThr   float64 // unique ordered msgs/s, control run (no config changes)
	ChurnThr    float64 // same metric across the rolling replace
	DipPct      float64 // 100 * (1 - churn/steady)
	CatchupMs   float64 // mean joiner catch-up latency, virtual ms
	CatchupCI   float64 // 95% CI half-width across joiners and repetitions
	FetchedMsgs float64 // messages fetched per joiner during catch-up
	FinalEpoch  uint64  // decided config epochs (3 adds + 3 removes = 6)
}

// membershipLoad and membershipSize pin the rolling-replace workload
// (moderate load, mid-size messages: the churn and the catch-up volume,
// not the link, are the variables under study).
const (
	membershipLoad = 1000
	membershipSize = 1024
)

// membershipRun is one simulated run's results.
type membershipRun struct {
	thr        float64
	catchupMs  []float64
	fetched    []float64
	finalEpoch uint64
}

// memberSender injects Size-byte messages at p every interval inside
// [at, until). Ticks while p is not (yet) live are skipped, which lets
// one loop serve both a joiner scheduled before its spawn and a retired
// process after its crash.
func memberSender(c *netsim.Cluster, p types.ProcessID, body []byte, at, until, interval time.Duration) {
	if at >= until {
		return
	}
	c.At(at, func() {
		if c.Live(p) {
			c.Abcast(p, at, body, func(types.MsgID, time.Duration, error) {})
		}
		memberSender(c, p, body, at+interval, until, interval)
	})
}

// runMembershipOnce runs one 3-process cluster for the measurement
// window, with (churn) or without (control) the rolling replace, and
// returns the unique-ordered throughput over the window plus the
// joiners' catch-up numbers.
func runMembershipOnce(stk types.Stack, churn bool, seed int64, opts RunOptions) (membershipRun, error) {
	const n = 3
	w, m := opts.Warmup, opts.Measure
	end := w + m
	delivered := make(map[types.MsgID]struct{})
	inWindow := 0
	c, err := netsim.NewCluster(netsim.Options{
		N: n, Stack: stk, Seed: seed, Model: opts.Model, Durable: true,
		OnDeliver: func(_ types.ProcessID, d engine.Delivery, at time.Duration) {
			if _, seen := delivered[d.Msg.ID]; seen {
				return
			}
			delivered[d.Msg.ID] = struct{}{}
			if at >= w && at < end {
				inWindow++
			}
		},
	})
	if err != nil {
		return membershipRun{}, err
	}
	body := make([]byte, membershipSize)
	interval := time.Duration(float64(time.Second) * n / membershipLoad)

	if !churn {
		for p := types.ProcessID(0); p < n; p++ {
			memberSender(c, p, body, 0, end, interval)
		}
	} else {
		// Rolling replace, spread across the window: join i+3, retire i,
		// crash i — the retired process stops submitting when its removal
		// is proposed and its successor takes over the load share.
		delta := m / 12
		for i := 0; i < n; i++ {
			join := w + m*time.Duration(1+4*i)/12 // w + m/12, w + 5m/12, w + 9m/12
			remove := join + delta
			sponsor := types.ProcessID(i + 1) // 1, 2, then joiner 3
			old := types.ProcessID(i)
			joiner := types.ProcessID(n + i)
			c.Join(sponsor, joiner, join)
			c.Remove(sponsor, old, remove)
			c.Crash(old, remove+delta)
			memberSender(c, old, body, 0, remove, interval)
			memberSender(c, joiner, body, remove, end, interval)
		}
	}

	c.Run(end + 2*time.Second)
	if errs := c.Errs(); len(errs) > 0 {
		return membershipRun{}, fmt.Errorf("engine error: %w", errs[0])
	}
	run := membershipRun{thr: float64(inWindow) / m.Seconds()}
	if churn {
		if c.Procs() != 2*n {
			return membershipRun{}, fmt.Errorf("expected %d procs after the replace, have %d", 2*n, c.Procs())
		}
		final := c.View(types.ProcessID(n))
		if len(final.Members) != n {
			return membershipRun{}, fmt.Errorf("final view has %d members, want %d", len(final.Members), n)
		}
		run.finalEpoch = final.Epoch
		for i := 0; i < n; i++ {
			snap := c.Counters(types.ProcessID(n + i))
			run.catchupMs = append(run.catchupMs, float64(snap.RecoveryNanos)/1e6)
			run.fetched = append(run.fetched, float64(snap.RecoveryFetchedMsgs))
		}
	}
	return run, nil
}

// RunMembershipPoint measures one stack's rolling-replace cost,
// averaging over repetitions (each repetition runs a churn pass and a
// steady-membership control pass on the same seed).
func RunMembershipPoint(stk types.Stack, opts RunOptions) (MembershipPoint, error) {
	opts = opts.withDefaults()
	var steady, churn, catchup, fetched stats.Welford
	var finalEpoch uint64
	for rep := 0; rep < opts.Repetitions; rep++ {
		seed := opts.Seed + int64(rep)
		ctl, err := runMembershipOnce(stk, false, seed, opts)
		if err != nil {
			return MembershipPoint{}, err
		}
		chn, err := runMembershipOnce(stk, true, seed, opts)
		if err != nil {
			return MembershipPoint{}, err
		}
		steady.Add(ctl.thr)
		churn.Add(chn.thr)
		for _, ms := range chn.catchupMs {
			catchup.Add(ms)
		}
		for _, f := range chn.fetched {
			fetched.Add(f)
		}
		finalEpoch = chn.finalEpoch
	}
	p := MembershipPoint{
		N:           3,
		Stack:       stk,
		OfferedLoad: membershipLoad,
		Size:        membershipSize,
		SteadyThr:   steady.Mean(),
		ChurnThr:    churn.Mean(),
		CatchupMs:   catchup.Mean(),
		CatchupCI:   catchup.CI95(),
		FetchedMsgs: fetched.Mean(),
		FinalEpoch:  finalEpoch,
	}
	if p.SteadyThr > 0 {
		p.DipPct = 100 * (1 - p.ChurnThr/p.SteadyThr)
	}
	return p, nil
}

// MembershipFigure is the dynamic-membership cost comparison: both
// stacks rolling-replace their entire boot group under load.
type MembershipFigure struct {
	Title  string
	Points []MembershipPoint
}

// FigMembership measures what a rolling replace of all three processes
// costs each stack: the ordered-throughput dip against a steady-
// membership control run and the joiners' state-transfer catch-up time.
func FigMembership(opts RunOptions) (MembershipFigure, error) {
	fig := MembershipFigure{
		Title: fmt.Sprintf("Rolling replace under load (n = 3, load = %d msgs/s, size = %d B): join, catch up, retire ×3",
			membershipLoad, membershipSize),
	}
	for _, stk := range Stacks {
		p, err := RunMembershipPoint(stk, opts)
		if err != nil {
			return fig, err
		}
		fig.Points = append(fig.Points, p)
	}
	return fig, nil
}

// RenderMembership writes the membership figure as an aligned text table.
func RenderMembership(w io.Writer, fig MembershipFigure) {
	fmt.Fprintf(w, "membership — %s\n", fig.Title)
	fmt.Fprintf(w, "%-6s %-11s %14s %13s %7s %12s %10s %15s %7s\n",
		"group", "stack", "steady(msg/s)", "churn(msg/s)", "dip%", "catchup(ms)", "±95%CI", "fetched/joiner", "epochs")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%-6d %-11s %14.1f %13.1f %7.1f %12.2f %10.2f %15.0f %7d\n",
			p.N, p.Stack, p.SteadyThr, p.ChurnThr, p.DipPct, p.CatchupMs, p.CatchupCI, p.FetchedMsgs, p.FinalEpoch)
	}
	fmt.Fprintln(w)
}
