package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/obs"
	"modab/internal/stats"
	"modab/internal/types"
)

// PipelinePoint is one measured (stack, pipeline depth) configuration of
// the pipelining figure: the modular-vs-monolithic comparison the paper
// ran with strictly sequential consensus, re-run with a window of W
// concurrent instances through both stacks.
type PipelinePoint struct {
	N           int
	Stack       types.Stack
	Depth       int     // configured pipeline window W
	OfferedLoad float64 // msgs/s, global (saturating)
	Size        int     // bytes

	Throughput    float64 // msgs/s (paper's T)
	ThroughCI     float64 // 95% CI half-width across repetitions
	LatencyMs     float64 // mean adeliver (early) latency, ms
	LatencyCI     float64
	LatencyP50Ms  float64 // p50 submit→adeliver over the window (obs histograms)
	LatencyP99Ms  float64 // p99 submit→adeliver over the window
	M             float64 // avg messages ordered per consensus
	DepthObserved int64   // high-water mark of concurrent instances
	AvgDepth      float64 // mean in-flight instances per proposal
	Utilization   float64 // busiest-process CPU utilization
}

// Pipeline sweep parameters: the acceptance configuration of the
// pipelined refactor — n=3, 64-byte messages, saturating offered load —
// measured on the metro cost model (netsim.MetroModel), where the
// sequential stacks are bound by the decision round-trip rather than by
// CPU. On the default 2007-calibrated model both stacks saturate their
// CPUs near depth 1 and the window buys only the residual idle (~1.3x);
// use -pipeline with the standard figures to measure that regime.
var PipelineDepths = []int{1, 2, 4, 8, 16}

const (
	pipelineN    = 3
	pipelineLoad = 120000
	pipelineSize = 64
)

// RunPipelinePoint measures one (stack, depth) configuration, averaging
// over repetitions.
func RunPipelinePoint(n int, stk types.Stack, depth int, opts RunOptions) (PipelinePoint, error) {
	opts = opts.withDefaults()
	model := opts.Model
	if model == (netsim.CostModel{}) {
		model = netsim.MetroModel()
	}
	engCfg := engine.DefaultConfig(n)
	engCfg.PipelineDepth = depth
	engCfg.Batch = opts.Batch
	if opts.Window > 0 {
		engCfg.Window = opts.Window
	}
	var thr, lat, avgM, avgDepth, util stats.Welford
	var depthObserved int64
	var hist obs.HistSnapshot
	for rep := 0; rep < opts.Repetitions; rep++ {
		lc, err := netsim.NewLoadedCluster(
			netsim.Options{N: n, Stack: stk, Engine: engCfg, Seed: opts.Seed + int64(rep), Model: model},
			netsim.Workload{OfferedLoad: pipelineLoad, Size: pipelineSize},
			opts.Warmup, opts.Measure)
		if err != nil {
			return PipelinePoint{}, err
		}
		lc.Run(opts.Warmup + opts.Measure + time.Second)
		if errs := lc.Errs(); len(errs) > 0 {
			return PipelinePoint{}, fmt.Errorf("engine error: %w", errs[0])
		}
		tot := lc.TotalCounters()
		thr.Add(lc.Recorder.Throughput())
		lat.Add(lc.Recorder.MeanLatency() * 1e3)
		hist = hist.Merge(lc.DeliverHistogram())
		avgM.Add(tot.AvgBatch())
		avgDepth.Add(tot.AvgPipelineDepth())
		if tot.PipelineDepthObserved > depthObserved {
			depthObserved = tot.PipelineDepthObserved
		}
		maxUtil := 0.0
		for p := 0; p < n; p++ {
			if u := lc.Utilization(types.ProcessID(p)); u > maxUtil {
				maxUtil = u
			}
		}
		util.Add(maxUtil)
	}
	return PipelinePoint{
		N:             n,
		Stack:         stk,
		Depth:         depth,
		OfferedLoad:   pipelineLoad,
		Size:          pipelineSize,
		Throughput:    thr.Mean(),
		ThroughCI:     thr.CI95(),
		LatencyMs:     lat.Mean(),
		LatencyCI:     lat.CI95(),
		LatencyP50Ms:  histMs(hist.P50()),
		LatencyP99Ms:  histMs(hist.P99()),
		M:             avgM.Mean(),
		DepthObserved: depthObserved,
		AvgDepth:      avgDepth.Mean(),
		Utilization:   util.Mean(),
	}, nil
}

// PipelineFigure is the pipelining comparison: both stacks at every
// window depth, with throughput and adeliver-latency columns.
type PipelineFigure struct {
	Title  string
	Points []PipelinePoint
}

// FigPipeline measures both stacks at W ∈ PipelineDepths under the
// acceptance configuration (n=3, 64 B, saturating load, metro model).
func FigPipeline(opts RunOptions) (PipelineFigure, error) {
	fig := PipelineFigure{
		Title: fmt.Sprintf("Consensus pipelining, modular vs monolithic (n=%d, size=%d B, load=%d msgs/s, metro model)",
			pipelineN, pipelineSize, pipelineLoad),
	}
	for _, stk := range Stacks {
		for _, w := range PipelineDepths {
			p, err := RunPipelinePoint(pipelineN, stk, w, opts)
			if err != nil {
				return fig, err
			}
			fig.Points = append(fig.Points, p)
		}
	}
	return fig, nil
}

// RenderPipeline writes the pipeline figure as an aligned text table.
// depthSeen/avgDepth report what the window actually did (a sequential
// run pins both at 1); the latency columns are the mean adeliver latency
// of the early delivery plus the p50/p99 of the submit→adeliver
// distribution from the observability histograms (log₂ bucket upper
// bounds, so they quantize coarser than the mean).
func RenderPipeline(w io.Writer, fig PipelineFigure) {
	fmt.Fprintf(w, "pipeline — %s\n", fig.Title)
	fmt.Fprintf(w, "%-6s %-11s %3s %14s %12s %10s %10s %8s %8s %7s %9s %9s %6s\n",
		"group", "stack", "W", "thr(msg/s)", "±95%CI", "lat(ms)", "±95%CI", "p50(ms)", "p99(ms)", "M", "depthSeen", "avgDepth", "util")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%-6d %-11s %3d %14.1f %12.1f %10.3f %10.3f %8.3f %8.3f %7.2f %9d %9.2f %6.2f\n",
			p.N, p.Stack, p.Depth, p.Throughput, p.ThroughCI, p.LatencyMs, p.LatencyCI,
			p.LatencyP50Ms, p.LatencyP99Ms, p.M, p.DepthObserved, p.AvgDepth, p.Utilization)
	}
	fmt.Fprintln(w)
}

// histMs converts a histogram duration to fractional milliseconds.
func histMs(d time.Duration) float64 { return d.Seconds() * 1e3 }
