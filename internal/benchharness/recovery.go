package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/netsim"
	"modab/internal/stats"
	"modab/internal/types"
)

// RecoveryPoint is one measured crash-recovery configuration: a node of a
// loaded, durable cluster crashes mid-measurement and restarts after
// DownTime; the point reports what its recovery cost — the axis the paper
// never measured, extended here to the modularity question.
type RecoveryPoint struct {
	N           int
	Stack       types.Stack
	OfferedLoad float64       // msgs/s, global
	Size        int           // bytes
	DownTime    time.Duration // crash-to-restart gap (virtual)

	ReplayedMsgs float64 // messages reconstructed from the local log
	FetchedMsgs  float64 // messages fetched from peers during catch-up
	RecoveryMs   float64 // catch-up latency, virtual ms (announce to caught-up)
	RecoveryCI   float64 // 95% CI half-width across repetitions
	Throughput   float64 // cluster throughput over the window, msgs/s
}

// RunRecoveryPoint measures one crash-recovery configuration, averaging
// over repetitions.
func RunRecoveryPoint(n int, stk types.Stack, load float64, size int, down time.Duration, opts RunOptions) (RecoveryPoint, error) {
	opts = opts.withDefaults()
	var replayed, fetched, recMs, thr stats.Welford
	for rep := 0; rep < opts.Repetitions; rep++ {
		lc, err := netsim.NewLoadedCluster(
			netsim.Options{
				N: n, Stack: stk, Seed: opts.Seed + int64(rep),
				Model: opts.Model, Durable: true,
			},
			netsim.Workload{OfferedLoad: load, Size: size},
			opts.Warmup, opts.Measure)
		if err != nil {
			return RecoveryPoint{}, err
		}
		victim := types.ProcessID(n - 1)
		crashAt := opts.Warmup + opts.Measure/4
		lc.Crash(victim, crashAt)
		lc.Restart(victim, crashAt+down)
		lc.Run(opts.Warmup + opts.Measure + time.Second)
		if errs := lc.Errs(); len(errs) > 0 {
			return RecoveryPoint{}, fmt.Errorf("engine error: %w", errs[0])
		}
		snap := lc.Counters(victim)
		replayed.Add(float64(snap.RecoveryReplayedMsgs))
		fetched.Add(float64(snap.RecoveryFetchedMsgs))
		recMs.Add(float64(snap.RecoveryNanos) / 1e6)
		thr.Add(lc.Recorder.Throughput())
	}
	return RecoveryPoint{
		N:            n,
		Stack:        stk,
		OfferedLoad:  load,
		Size:         size,
		DownTime:     down,
		ReplayedMsgs: replayed.Mean(),
		FetchedMsgs:  fetched.Mean(),
		RecoveryMs:   recMs.Mean(),
		RecoveryCI:   recMs.CI95(),
		Throughput:   thr.Mean(),
	}, nil
}

// RecoveryFigure is the recovery-cost comparison: both stacks, both group
// sizes, one crash-and-restart per run.
type RecoveryFigure struct {
	Title  string
	Points []RecoveryPoint
}

// recoveryLoad and recoverySize pin the workload of the recovery sweep
// (moderate load, small messages: the catch-up volume, not the link, is
// the variable under study).
const (
	recoveryLoad = 1000
	recoverySize = 1024
)

// recoveryDownTime is how long the crashed node stays down.
const recoveryDownTime = 500 * time.Millisecond

// FigRecovery measures the crash-recovery cost of both stacks: replayed
// and fetched message counts and the catch-up latency of a node that was
// down for half a second under load.
func FigRecovery(opts RunOptions) (RecoveryFigure, error) {
	fig := RecoveryFigure{
		Title: fmt.Sprintf("Crash-recovery cost (load = %d msgs/s, size = %d B, downtime = %v)",
			recoveryLoad, recoverySize, recoveryDownTime),
	}
	for _, n := range GroupSizes {
		for _, stk := range Stacks {
			p, err := RunRecoveryPoint(n, stk, recoveryLoad, recoverySize, recoveryDownTime, opts)
			if err != nil {
				return fig, err
			}
			fig.Points = append(fig.Points, p)
		}
	}
	return fig, nil
}

// RenderRecovery writes the recovery figure as an aligned text table.
func RenderRecovery(w io.Writer, fig RecoveryFigure) {
	fmt.Fprintf(w, "recovery — %s\n", fig.Title)
	fmt.Fprintf(w, "%-6s %-11s %10s %10s %12s %10s %14s\n",
		"group", "stack", "replayed", "fetched", "recovery(ms)", "±95%CI", "thr(msg/s)")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%-6d %-11s %10.0f %10.0f %12.2f %10.2f %14.1f\n",
			p.N, p.Stack, p.ReplayedMsgs, p.FetchedMsgs, p.RecoveryMs, p.RecoveryCI, p.Throughput)
	}
	fmt.Fprintln(w)
}
