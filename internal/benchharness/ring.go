package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/obs"
	"modab/internal/stats"
	"modab/internal/types"
)

// RingPoint is one measured (n, stack, dissemination) configuration of
// the topology figure: the coordinator-NIC bottleneck experiment. The
// egress columns are what the topology changes — under AllToAll the
// origin (and, in the monolithic stack, the round coordinator) transmits
// O(n) copies of every payload; under Ring it transmits one.
type RingPoint struct {
	N           int
	Stack       types.Stack
	Dissem      dissem.Strategy
	OfferedLoad float64 // msgs/s, global (saturating)
	Size        int     // bytes

	Throughput float64 // msgs/s (paper's T)
	ThroughCI  float64 // 95% CI half-width across repetitions
	LatencyMs  float64 // mean adeliver (early) latency, ms
	LatencyCI  float64
	// LatencyP50Ms/LatencyP99Ms are the submit→adeliver percentiles over
	// the measurement window (obs histograms, log₂ bucket upper bounds).
	LatencyP50Ms float64
	LatencyP99Ms float64
	// CoordEgressBPerMsg is the round-1 coordinator's (p0's) total egress
	// bytes per adelivered message — the NIC-bottleneck metric. Under Ring
	// it must stay O(1) in n; under AllToAll it grows linearly.
	CoordEgressBPerMsg float64
	// MaxEgressBPerMsg is the same metric at the busiest-egress process.
	MaxEgressBPerMsg float64
	// PerProcEgressBytes is each process's raw egress byte count (last
	// repetition) — the abbench table prints it so a ring run's flat
	// profile is visible next to AllToAll's coordinator spike.
	PerProcEgressBytes []int64
	Utilization        float64 // busiest-process CPU utilization
}

// Ring sweep parameters: large payloads at saturating offered load on the
// metro cost model (10 GbE, 1 ms links), where moving bulk bytes — not
// per-message CPU — is the binding constraint, and a deep pipeline so the
// ring's longer per-frame latency (n-1 sequential hops instead of one)
// overlaps across instances instead of serializing them.
var RingGroupSizes = []int{3, 5, 8, 12, 16}

// RingStrategies is the comparison axis of the ring figure.
var RingStrategies = []dissem.Strategy{dissem.AllToAll, dissem.Ring}

// The payload is sized so the all-to-all coordinator's NIC is the hard
// ceiling at scale (n-1 copies of 64 KB per message: ~1.3 k msgs/s at
// n=16 on 10 GbE), while a ring relayer — one copy per payload — never
// leaves the latency-bound regime; the offered load sits well above the
// all-to-all ceiling so those points are saturating. The pipeline and the
// widened admission window cover the ring's serial relay latency (n-1
// one-millisecond hops at n=16) so laps overlap across instances instead
// of serializing: DefaultWindow targets a dozen in-flight messages
// group-wide — right for the latency figure, but a flow-control ceiling
// of Window/latency here that would bind long before either NIC does.
// Both strategies get the same window, so the comparison stays fair.
const (
	ringLoad     = 12000
	ringSize     = 65536
	ringPipeline = 16
	ringWindow   = 16
	// ringBatch caps messages per consensus instance: an unbounded batch
	// under this deep a backlog would encode multi-megabyte frames whose
	// per-hop serialization time dominates the ring lap. 32 × 64 KB ≈ 2 MB
	// per frame keeps store-and-forward latency per hop under 2 ms.
	ringBatch = 32
)

// RunRingPoint measures one (n, stack, strategy) configuration, averaging
// over repetitions.
func RunRingPoint(n int, stk types.Stack, s dissem.Strategy, opts RunOptions) (RingPoint, error) {
	opts = opts.withDefaults()
	model := opts.Model
	if model == (netsim.CostModel{}) {
		model = netsim.MetroModel()
	}
	engCfg := engine.DefaultConfig(n)
	engCfg.Dissemination = s
	engCfg.PipelineDepth = ringPipeline
	engCfg.Window = ringWindow
	engCfg.MaxBatch = ringBatch
	engCfg.Batch = opts.Batch
	if opts.Window > 0 {
		engCfg.Window = opts.Window
	}
	var thr, lat, coordEg, maxEg, util stats.Welford
	var perProc []int64
	var hist obs.HistSnapshot
	for rep := 0; rep < opts.Repetitions; rep++ {
		lc, err := netsim.NewLoadedCluster(
			netsim.Options{N: n, Stack: stk, Engine: engCfg, Seed: opts.Seed + int64(rep), Model: model},
			netsim.Workload{OfferedLoad: ringLoad, Size: ringSize},
			opts.Warmup, opts.Measure)
		if err != nil {
			return RingPoint{}, err
		}
		lc.Run(opts.Warmup + opts.Measure + time.Second)
		if errs := lc.Errs(); len(errs) > 0 {
			return RingPoint{}, fmt.Errorf("engine error: %w", errs[0])
		}
		thr.Add(lc.Recorder.Throughput())
		lat.Add(lc.Recorder.MeanLatency() * 1e3)
		hist = hist.Merge(lc.DeliverHistogram())
		perProc = perProc[:0]
		maxB, maxUtil := int64(0), 0.0
		for p := 0; p < n; p++ {
			snap := lc.Counters(types.ProcessID(p))
			perProc = append(perProc, snap.BytesSent)
			if snap.BytesSent > maxB {
				maxB = snap.BytesSent
			}
			if u := lc.Utilization(types.ProcessID(p)); u > maxUtil {
				maxUtil = u
			}
		}
		if del := lc.Counters(0).ADeliver; del > 0 {
			coordEg.Add(float64(lc.Counters(0).BytesSent) / float64(del))
			maxEg.Add(float64(maxB) / float64(del))
		}
		util.Add(maxUtil)
	}
	return RingPoint{
		N:                  n,
		Stack:              stk,
		Dissem:             s,
		OfferedLoad:        ringLoad,
		Size:               ringSize,
		Throughput:         thr.Mean(),
		ThroughCI:          thr.CI95(),
		LatencyMs:          lat.Mean(),
		LatencyCI:          lat.CI95(),
		LatencyP50Ms:       histMs(hist.P50()),
		LatencyP99Ms:       histMs(hist.P99()),
		CoordEgressBPerMsg: coordEg.Mean(),
		MaxEgressBPerMsg:   maxEg.Mean(),
		PerProcEgressBytes: perProc,
		Utilization:        util.Mean(),
	}, nil
}

// RingFigure is the dissemination-topology comparison: both stacks, both
// strategies, over growing group sizes.
type RingFigure struct {
	Title  string
	Points []RingPoint
}

// FigRing measures both stacks under AllToAll and Ring at every group
// size in RingGroupSizes (64 KB payloads, saturating load, metro model,
// pipeline W=16).
func FigRing(opts RunOptions) (RingFigure, error) {
	fig := RingFigure{
		Title: fmt.Sprintf("Dissemination topology, all-to-all vs ring (size=%d B, load=%d msgs/s, W=%d, metro model)",
			ringSize, ringLoad, ringPipeline),
	}
	for _, stk := range Stacks {
		for _, s := range RingStrategies {
			for _, n := range RingGroupSizes {
				p, err := RunRingPoint(n, stk, s, opts)
				if err != nil {
					return fig, err
				}
				fig.Points = append(fig.Points, p)
			}
		}
	}
	return fig, nil
}

// RenderRing writes the ring figure as an aligned text table. The
// coordB/msg column is the acceptance metric: flat in n under ring,
// linear under all-to-all. egress(B) lists every process's raw egress so
// the coordinator spike (or its absence) is visible directly.
func RenderRing(w io.Writer, fig RingFigure) {
	fmt.Fprintf(w, "ring — %s\n", fig.Title)
	fmt.Fprintf(w, "%-6s %-11s %-10s %12s %10s %9s %8s %8s %10s %10s %6s  %s\n",
		"group", "stack", "dissem", "thr(msg/s)", "±95%CI", "lat(ms)", "p50(ms)", "p99(ms)", "coordB/msg", "maxB/msg", "util", "egress(B) per process")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%-6d %-11s %-10s %12.1f %10.1f %9.2f %8.2f %8.2f %10.0f %10.0f %6.2f  %v\n",
			p.N, p.Stack, p.Dissem, p.Throughput, p.ThroughCI, p.LatencyMs,
			p.LatencyP50Ms, p.LatencyP99Ms,
			p.CoordEgressBPerMsg, p.MaxEgressBPerMsg, p.Utilization, p.PerProcEgressBytes)
	}
	fmt.Fprintln(w)
}
