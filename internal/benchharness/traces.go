package benchharness

import (
	"fmt"
	"io"
	"time"

	"modab/internal/netsim"
	"modab/internal/obs"
	"modab/internal/types"
)

// Trace-sample run parameters: a short, lightly loaded run — the point is
// to read individual message timelines, not to saturate.
const (
	traceN    = 3
	traceLoad = 3000
	traceSize = 256
	traceRun  = 500 * time.Millisecond
	// traceMaxTimelines bounds how many sampled messages each process
	// prints (RenderTraceSample notes what was elided).
	traceMaxTimelines = 8
)

// ProcessTrace is one process's sampled message timelines.
type ProcessTrace struct {
	P         types.ProcessID
	Timelines []obs.Timeline
}

// TraceSample is the output of one lifecycle-trace run: every process's
// sampled messages with their stage timelines in virtual time
// (deterministic for a given seed).
type TraceSample struct {
	Stack       types.Stack
	SampleEvery uint64
	PerProcess  []ProcessTrace
}

// RunTraceSample runs a short loaded cluster with lifecycle tracing at
// the given sampling period (0 = the default, one in 32) and returns
// every process's sampled message timelines. Stage timestamps are
// virtual, so the same seed reproduces the same timelines exactly.
func RunTraceSample(stk types.Stack, sampleEvery uint64, opts RunOptions) (TraceSample, error) {
	opts = opts.withDefaults()
	lc, err := netsim.NewLoadedCluster(
		netsim.Options{
			N:     traceN,
			Stack: stk,
			Seed:  opts.Seed,
			Model: opts.Model,
			Obs:   obs.Config{SampleEvery: sampleEvery},
		},
		netsim.Workload{OfferedLoad: traceLoad, Size: traceSize, End: traceRun},
		0, traceRun)
	if err != nil {
		return TraceSample{}, err
	}
	lc.Run(traceRun + time.Second)
	if errs := lc.Errs(); len(errs) > 0 {
		return TraceSample{}, fmt.Errorf("engine error: %w", errs[0])
	}
	ts := TraceSample{Stack: stk, SampleEvery: lc.Obs(0).SampleEvery()}
	for p := 0; p < traceN; p++ {
		pid := types.ProcessID(p)
		ts.PerProcess = append(ts.PerProcess, ProcessTrace{
			P:         pid,
			Timelines: obs.Timelines(lc.Obs(pid).TraceEvents()),
		})
	}
	return ts, nil
}

// RenderTraceSample writes the sampled timelines as text, one line per
// (process, message): the stages the message passed at that process, each
// stamped with its virtual time. The submitter shows the full pipeline
// (accept → seal → propose → decide → adeliver → apply); a non-origin
// process joins at the stages it participates in.
func RenderTraceSample(w io.Writer, ts TraceSample) {
	fmt.Fprintf(w, "trace — %s stack, 1-in-%d lifecycle sampling (n=%d, load=%d msgs/s, %v run)\n",
		ts.Stack, ts.SampleEvery, traceN, traceLoad, traceRun)
	for _, pt := range ts.PerProcess {
		fmt.Fprintf(w, "%s: %d sampled message(s)\n", pt.P, len(pt.Timelines))
		shown := pt.Timelines
		if len(shown) > traceMaxTimelines {
			shown = shown[:traceMaxTimelines]
		}
		for _, tl := range shown {
			fmt.Fprintf(w, "  %s\n", tl)
		}
		if elided := len(pt.Timelines) - len(shown); elided > 0 {
			fmt.Fprintf(w, "  ... %d more elided\n", elided)
		}
	}
	fmt.Fprintln(w)
}
