// Package chaos is the deterministic fault-injection harness over the two
// atomic broadcast stacks: it runs a seeded fault schedule (link
// partitions, probabilistic drops, delay/jitter, duplication, bounded
// reordering, crashes and restarts — see internal/netsim's link-fault
// model) against the modular and the monolithic stack with identical
// seeds, and checks the atomic broadcast properties on every run:
//
//	validity          — a message abcast by a process that stays correct
//	                    is eventually adelivered by every correct process;
//	uniform agreement — if any process adelivers m (even one that later
//	                    crashes), every correct process adelivers m;
//	uniform integrity — every process adelivers m at most once, and only
//	                    if m was abcast;
//	uniform total order — any two delivery sequences are consistent: one
//	                    is a prefix of the other's order;
//	liveness after heal — once every fault has cleared, the cluster
//	                    quiesces within a bounded amount of virtual time
//	                    with nothing left undelivered.
//
// Runs with StackConfig.KV additionally load the replicated key/value
// state machine and check applied-state equivalence: the final KV state
// is byte-identical across every correct process — including processes
// that recovered through a snapshot install, whose delivery logs
// legitimately skip the installed region — and across the two stacks
// when both delivered the same command set.
//
// On a violation the harness re-runs the schedule through a greedy
// minimizer and reports the seed, the minimized schedule, and the
// divergent suffix of the two delivery logs that witnessed the violation
// — everything needed to reproduce the failure with one command.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/netsim"
	"modab/internal/obs"
	"modab/internal/rsm"
	"modab/internal/trace"
	"modab/internal/types"
)

// StackConfig parameterizes the cluster and workload a schedule runs
// against. The zero value of every field selects a sensible default.
type StackConfig struct {
	// N is the group size (default 3).
	N int
	// Engine carries protocol tunables; zero means engine.DefaultConfig(N).
	Engine engine.Config
	// Model is the hardware cost model; zero means netsim.DefaultModel().
	Model netsim.CostModel
	// Durable gives every process a simulated durable store (required by
	// schedules containing restarts; forced on for those).
	Durable bool
	// Load is the global submission rate in msgs/s (default 300).
	Load float64
	// Size is the payload size in bytes (default 64).
	Size int
	// InjectEnd bounds the submission interval [0, InjectEnd)
	// (default 1200ms).
	InjectEnd time.Duration
	// Horizon is how long the schedule phase runs; it must cover the
	// schedule's end (default: the later of InjectEnd and the schedule
	// end, plus 500ms).
	Horizon time.Duration
	// Settle bounds the virtual time the cluster may take to quiesce
	// after Horizon — the liveness-after-heal budget (default 30s).
	Settle time.Duration
	// KV runs the replicated key/value state machine on every process:
	// each submission becomes a unique-key put command, snapshots run
	// every SnapshotEvery instances (truncating durable logs as they
	// go), and the checker adds applied-state equivalence — final KV
	// state byte-identical across processes, and across stacks when both
	// delivered the same command set. A process that recovered through a
	// snapshot install has a legitimate gap in its delivery log (the
	// installed region is applied wholesale, never delivered), so its
	// order check relaxes to an order-preserving subsequence; the state
	// digest comparison is what holds it to the same final state.
	KV bool
	// SnapshotEvery is the snapshot cadence when KV is set (default 8).
	SnapshotEvery uint64
}

func (c StackConfig) withDefaults(sch Schedule) StackConfig {
	if c.N == 0 {
		c.N = 3
	}
	if c.Load == 0 {
		c.Load = 300
	}
	if c.Size == 0 {
		c.Size = 64
	}
	if c.InjectEnd == 0 {
		c.InjectEnd = 1200 * time.Millisecond
	}
	if c.Horizon == 0 {
		end, _ := sch.End()
		c.Horizon = c.InjectEnd
		if end > c.Horizon {
			c.Horizon = end
		}
		c.Horizon += 500 * time.Millisecond
	}
	if c.Settle == 0 {
		c.Settle = 30 * time.Second
	}
	if c.KV && c.SnapshotEvery == 0 {
		c.SnapshotEvery = 8
	}
	if sch.NeedsDurability() {
		c.Durable = true
	}
	return c
}

// Submission is one abcast attempt the harness injected.
type Submission struct {
	// By is the submitting process and At the submission time.
	By types.ProcessID
	At time.Duration
	// ID is the assigned message ID; the zero ID means the submission was
	// rejected (flow control) or hit a crashed process.
	ID types.MsgID
}

// StackResult is the observable outcome of one stack's run.
type StackResult struct {
	Stack types.Stack
	// Logs holds each process's delivery sequence, pre-crash and
	// post-restart deliveries concatenated. Schedules with joins grow the
	// slice past the boot group; a joiner's log starts at its first
	// catch-up delivery (instance 1, so normally the full prefix).
	Logs [][]types.MsgID
	// Views holds each process's decided view sequence — schedules with
	// membership ops feed the no-straddle check: correct processes must
	// agree on every epoch's activation instance and member set.
	Views [][]member.View
	// Submissions records every injected abcast attempt.
	Submissions []Submission
	// Stats is the cluster-wide counter snapshot after quiescence.
	Stats trace.Stats
	// Quiesced reports that the event queue drained within the settle
	// budget; false is a liveness violation.
	Quiesced bool
	// Errs carries engine errors surfaced by the simulator.
	Errs []error
	// Digests holds each process's canonical applied-state serialization
	// (KV runs only; nil otherwise).
	Digests [][]byte
	// SnapshotInstalls counts snapshot installs per process (KV runs
	// only) — an installed process's delivery log legitimately skips the
	// installed region.
	SnapshotInstalls []int64
	// Traces holds each process's sampled message lifecycle events from
	// the observability layer (1-in-k by sequence number, so both stacks
	// sample the same messages); Report attaches a few timelines to
	// violation reports as ordering evidence.
	Traces [][]obs.StageEvent
}

// Violation is one property violation found by the checker.
type Violation struct {
	Stack    types.Stack
	Property string
	Detail   string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("property %s (%s): %s", v.Property, v.Stack, v.Detail)
}

// Result is the outcome of one chaos run over both stacks.
type Result struct {
	Seed       int64
	Schedule   Schedule
	Config     StackConfig
	Stacks     []StackResult
	Violations []Violation
	// Minimized is the greedily minimized schedule that still violates;
	// only set when Violations is non-empty.
	Minimized Schedule
}

// Ok reports whether every property held in both stacks.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// Report renders the violation report: seed, violations with divergent
// log suffixes, and the minimized schedule — or a one-line all-clear.
func (r *Result) Report() string {
	var b strings.Builder
	if r.Ok() {
		total := 0
		if len(r.Stacks) > 0 {
			total = int(r.Stacks[0].Stats.Total.ADeliver)
		}
		fmt.Fprintf(&b, "chaos: seed=%d ok (%d ops, %d adeliveries/stack-process set)", r.Seed, len(r.Schedule), total)
		return b.String()
	}
	fmt.Fprintf(&b, "chaos: seed=%d VIOLATION\n", r.Seed)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	fmt.Fprintf(&b, "  minimized schedule (%d of %d ops):\n%s\n", len(r.Minimized), len(r.Schedule), indent(r.Minimized.String()))
	for _, sr := range r.Stacks {
		b.WriteString(indent(sr.traceReport()))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  repro: chaos.Run(%d, schedule, cfg) — same seed, same schedule, same run", r.Seed)
	return strings.TrimRight(b.String(), "\n")
}

// traceMaxTimelines bounds how many sampled lifecycle timelines a
// violation report shows per stack — enough to see where ordering went
// sideways without drowning the minimized schedule.
const traceMaxTimelines = 3

// traceReport renders a stack's sampled lifecycle timelines (merged
// across processes, grouped per message) for attachment to a violation
// report.
func (sr *StackResult) traceReport() string {
	var all []obs.StageEvent
	for _, evs := range sr.Traces {
		all = append(all, evs...)
	}
	tls := obs.Timelines(all)
	if len(tls) == 0 {
		return fmt.Sprintf("%s: no sampled lifecycle traces", sr.Stack)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s sampled lifecycle traces:", sr.Stack)
	shown := tls
	if len(shown) > traceMaxTimelines {
		shown = shown[:traceMaxTimelines]
	}
	for _, tl := range shown {
		fmt.Fprintf(&b, "\n  %s", tl)
	}
	if elided := len(tls) - len(shown); elided > 0 {
		fmt.Fprintf(&b, "\n  ... %d more elided", elided)
	}
	return b.String()
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

// Run executes the schedule against both stacks with identical seeds and
// workloads, checks every property, and — when a violation is found —
// minimizes the schedule before returning. The run is bit-for-bit
// reproducible: same seed, schedule and config give the same Result.
func Run(seed int64, sch Schedule, cfg StackConfig) (*Result, error) {
	res, err := run(seed, sch, cfg)
	if err != nil {
		return nil, err
	}
	if !res.Ok() {
		res.Minimized = Minimize(seed, sch, cfg)
	}
	return res, nil
}

// run executes and checks without minimizing (the minimizer's inner loop).
func run(seed int64, sch Schedule, cfg StackConfig) (*Result, error) {
	cfg = cfg.withDefaults(sch)
	res := &Result{Seed: seed, Schedule: sch, Config: cfg}
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		sr, err := runStack(stk, seed, sch, cfg)
		if err != nil {
			return nil, err
		}
		res.Stacks = append(res.Stacks, *sr)
		res.Violations = append(res.Violations, checkStack(sr, sch, cfg)...)
	}
	res.Violations = append(res.Violations, checkCrossStack(res.Stacks, sch)...)
	return res, nil
}

// runStack drives one stack through the schedule. The submission schedule
// is derived from the seed alone, so both stacks see identical workloads.
func runStack(stk types.Stack, seed int64, sch Schedule, cfg StackConfig) (*StackResult, error) {
	sr := &StackResult{Stack: stk, Logs: make([][]types.MsgID, cfg.N)}
	opts := netsim.Options{
		N:       cfg.N,
		Stack:   stk,
		Engine:  cfg.Engine,
		Model:   cfg.Model,
		Seed:    seed,
		Durable: cfg.Durable,
		OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
			for int(p) >= len(sr.Logs) { // joiners extend the log set
				sr.Logs = append(sr.Logs, nil)
			}
			sr.Logs[p] = append(sr.Logs[p], d.Msg.ID)
		},
	}
	if cfg.KV {
		opts.StateMachine = func() rsm.StateMachine { return rsm.NewKV() }
		opts.SnapshotEvery = cfg.SnapshotEvery
	}
	c, err := netsim.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	sch.Apply(c)

	// Seed-derived workload, identical across stacks: random processes
	// submit fixed-size payloads at random times inside [0, InjectEnd).
	// KV runs submit unique-key puts instead — keyed by submission index,
	// so the final map depends only on the set of applied commands, never
	// on the order the stacks interleaved them in.
	rng := newSubmitRNG(seed)
	total := int(cfg.Load * cfg.InjectEnd.Seconds())
	body := make([]byte, cfg.Size)
	for i := 0; i < total; i++ {
		p := types.ProcessID(rng.Intn(cfg.N))
		at := time.Duration(rng.Int63n(int64(cfg.InjectEnd)))
		idx := len(sr.Submissions)
		sr.Submissions = append(sr.Submissions, Submission{By: p, At: at})
		payload := body
		if cfg.KV {
			payload = rsm.EncodePut([]byte(fmt.Sprintf("chaos-%05d", i)), body)
		}
		c.Abcast(p, at, payload, func(id types.MsgID, _ time.Duration, err error) {
			if err == nil {
				sr.Submissions[idx].ID = id
			}
		})
	}

	c.Run(cfg.Horizon)
	c.RunIdle(cfg.Settle)
	sr.Quiesced = c.Events() == 0
	sr.Stats = c.Stats()
	sr.Errs = c.Errs()
	nprocs := c.Procs() // boot group plus any joiners the schedule spawned
	for len(sr.Logs) < nprocs {
		sr.Logs = append(sr.Logs, nil)
	}
	sr.Traces = make([][]obs.StageEvent, nprocs)
	sr.Views = make([][]member.View, nprocs)
	for p := 0; p < nprocs; p++ {
		sr.Traces[p] = c.Obs(types.ProcessID(p)).TraceEvents()
		sr.Views[p] = c.ViewHistory(types.ProcessID(p))
	}
	if cfg.KV {
		sr.Digests = make([][]byte, nprocs)
		sr.SnapshotInstalls = make([]int64, nprocs)
		for p := 0; p < nprocs; p++ {
			sr.Digests[p] = c.Applier(types.ProcessID(p)).StateDigest()
			sr.SnapshotInstalls[p] = c.Counters(types.ProcessID(p)).SnapshotInstalls
		}
	}
	if testMutateLog != nil {
		for p := range sr.Logs {
			sr.Logs[p] = testMutateLog(stk, types.ProcessID(p), sr.Logs[p])
		}
	}
	return sr, nil
}

// newSubmitRNG derives the submission-schedule RNG from the run seed; it
// is independent of the cluster's fault RNG so both stacks inject the
// exact same workload.
func newSubmitRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x5eedc4a05))
}

// testMutateLog, when set by a test, corrupts collected delivery logs
// before checking — the intentional-bug hook proving the checker catches
// agreement violations end to end.
var testMutateLog func(stk types.Stack, p types.ProcessID, log []types.MsgID) []types.MsgID
