package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
)

// TestPartitionRunHoldsProperties is the smoke test of the harness: a
// symmetric partition of the round-1 coordinator, healed mid-run, must
// leave every property intact in both stacks.
func TestPartitionRunHoldsProperties(t *testing.T) {
	sch := Schedule{
		{Kind: OpPartition, A: 0, B: 1, From: 300 * time.Millisecond, To: 800 * time.Millisecond},
		{Kind: OpPartition, A: 0, B: 2, From: 300 * time.Millisecond, To: 800 * time.Millisecond},
	}
	res, err := Run(7, sch, StackConfig{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("properties violated:\n%s", res.Report())
	}
	for _, sr := range res.Stacks {
		if sr.Stats.Total.DroppedByFault == 0 {
			t.Errorf("%s: partition dropped nothing", sr.Stack)
		}
		if sr.Stats.Total.PartitionNanos == 0 {
			t.Errorf("%s: partition time not accounted", sr.Stack)
		}
		if sr.Stats.Total.ADeliver == 0 {
			t.Errorf("%s: no deliveries", sr.Stack)
		}
	}
}

// TestRunDeterministic: the same seed, schedule and config must reproduce
// the exact same delivery logs and counters.
func TestRunDeterministic(t *testing.T) {
	sch := Schedule{
		{Kind: OpLinkFault, A: 0, B: 1, From: 200 * time.Millisecond, To: 900 * time.Millisecond,
			Fault: lossy()},
		{Kind: OpPartition, A: 1, B: 2, From: 400 * time.Millisecond, To: 700 * time.Millisecond},
	}
	a, err := Run(11, sch, StackConfig{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(11, sch, StackConfig{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fmt.Sprint(a.Stacks) != fmt.Sprint(b.Stacks) {
		t.Fatal("same seed produced different chaos runs")
	}
	if !a.Ok() {
		t.Fatalf("properties violated:\n%s", a.Report())
	}
}

// TestInjectedAgreementBugCaught corrupts one process's delivery log
// through the test-only hook and requires the checker to flag it and the
// minimizer to produce a (possibly empty) reproducing schedule — the
// acceptance gate that the checker is actually wired to the logs.
func TestInjectedAgreementBugCaught(t *testing.T) {
	defer func() { testMutateLog = nil }()
	testMutateLog = func(stk types.Stack, p types.ProcessID, log []types.MsgID) []types.MsgID {
		if stk == types.Modular && p == 2 && len(log) > 4 {
			out := append([]types.MsgID(nil), log...)
			out[1], out[3] = out[3], out[1] // divergent order at p3
			return out
		}
		return log
	}
	sch := Schedule{
		{Kind: OpPartition, A: 0, B: 1, From: 300 * time.Millisecond, To: 600 * time.Millisecond},
		{Kind: OpSuspect, A: 1, B: 2, From: 100 * time.Millisecond, To: 300 * time.Millisecond},
	}
	res, err := Run(3, sch, StackConfig{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ok() {
		t.Fatal("checker missed the injected agreement bug")
	}
	found := false
	for _, v := range res.Violations {
		if v.Stack == types.Modular && (v.Property == "uniform-total-order" || v.Property == "uniform-agreement") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a total-order/agreement violation, got:\n%s", res.Report())
	}
	report := res.Report()
	for _, want := range []string{"seed=3", "minimized schedule", "suffix"} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
	// The corruption survives any schedule, so the minimizer must shrink
	// to the empty schedule — the strongest possible minimization.
	if len(res.Minimized) != 0 {
		t.Errorf("minimizer kept %d ops for a schedule-independent bug:\n%s", len(res.Minimized), res.Report())
	}
}

// TestKVRunSnapshotInstall drives the KV-loaded snapshot-install
// scenario through the harness and asserts the machinery actually
// engaged: the restarted process installed a snapshot in at least one
// stack, digests were collected for every process, and every property —
// applied-state equivalence included — held.
func TestKVRunSnapshotInstall(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.DecisionHorizon = 16
	sch := Schedule{
		{Kind: OpCrash, A: 2, From: 250 * time.Millisecond},
		{Kind: OpRestart, A: 2, From: 950 * time.Millisecond},
	}
	res, err := Run(9, sch, StackConfig{Engine: cfg, Durable: true, KV: true, SnapshotEvery: 4, Load: 400})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("properties violated:\n%s", res.Report())
	}
	installs := int64(0)
	for _, sr := range res.Stacks {
		if len(sr.Digests) != 3 {
			t.Fatalf("%s: %d digests, want 3", sr.Stack, len(sr.Digests))
		}
		for p, d := range sr.Digests {
			if len(d) == 0 {
				t.Errorf("%s: empty digest at %s", sr.Stack, types.ProcessID(p))
			}
		}
		installs += sr.SnapshotInstalls[2]
	}
	if installs == 0 {
		t.Fatal("restarted process installed no snapshot in either stack — the scenario no longer exercises snapshot state transfer")
	}
}

// TestMembershipChurnRunEngages drives one replace-under-fire schedule
// through the harness and asserts the membership machinery actually
// engaged in both stacks: the joiner spawned and delivered the full
// reference order, every process reached the final 3-member view with
// the joiner in and the victim out, view histories agreed, and the
// joiner's KV digest matches the survivors'.
func TestMembershipChurnRunEngages(t *testing.T) {
	sch := Schedule{
		{Kind: OpJoin, A: 3, B: 1, From: 250 * time.Millisecond},
		{Kind: OpLeave, A: 0, B: 1, From: 650 * time.Millisecond},
		{Kind: OpCrash, A: 0, From: 950 * time.Millisecond},
	}
	res, err := Run(13, sch, StackConfig{Durable: true, KV: true, SnapshotEvery: 1 << 20, Load: 400})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("properties violated:\n%s", res.Report())
	}
	for _, sr := range res.Stacks {
		if len(sr.Logs) != 4 {
			t.Fatalf("%s: %d logs, want 4 (joiner missing)", sr.Stack, len(sr.Logs))
		}
		if len(sr.Logs[3]) == 0 || len(sr.Logs[3]) != len(sr.Logs[1]) {
			t.Errorf("%s: joiner delivered %d of %d messages", sr.Stack, len(sr.Logs[3]), len(sr.Logs[1]))
		}
		for p := 1; p < 4; p++ {
			views := sr.Views[p]
			if len(views) == 0 {
				t.Fatalf("%s: no view history at p%d", sr.Stack, p+1)
			}
			final := views[len(views)-1]
			if len(final.Members) != 3 || !final.Contains(3) || final.Contains(0) {
				t.Errorf("%s: p%d final view %v, want {1,2,3} with the victim out", sr.Stack, p+1, final)
			}
		}
		if string(sr.Digests[3]) != string(sr.Digests[1]) {
			t.Errorf("%s: joiner KV digest differs from survivor's", sr.Stack)
		}
	}
}

// TestScheduleEnd covers the heal/window end computation.
func TestScheduleEnd(t *testing.T) {
	open := Schedule{{Kind: OpPartition, A: 0, B: 1, From: 100 * time.Millisecond}}
	if _, ok := open.End(); ok {
		t.Error("open-ended partition without heal reported healable")
	}
	healed := append(open, Op{Kind: OpHeal, From: 500 * time.Millisecond})
	end, ok := healed.End()
	if !ok || end != 500*time.Millisecond {
		t.Errorf("End() = %v, %v; want 500ms, true", end, ok)
	}
	windowed := Schedule{
		{Kind: OpPartition, A: 0, B: 1, From: 100 * time.Millisecond, To: 400 * time.Millisecond},
		{Kind: OpCrash, A: 2, From: 200 * time.Millisecond},
		{Kind: OpRestart, A: 2, From: 900 * time.Millisecond},
	}
	end, ok = windowed.End()
	if !ok || end != 900*time.Millisecond {
		t.Errorf("End() = %v, %v; want 900ms, true", end, ok)
	}
	if down := windowed.CrashedForever(); len(down) != 0 {
		t.Errorf("CrashedForever() = %v, want none (restarted)", down)
	}
}

// TestHealClearsOpenEndedPartition: an open-ended partition terminated
// only by Heal must still satisfy liveness after heal.
func TestHealClearsOpenEndedPartition(t *testing.T) {
	sch := Schedule{
		{Kind: OpPartition, A: 0, B: 2, From: 250 * time.Millisecond},
		{Kind: OpHeal, From: 750 * time.Millisecond},
	}
	res, err := Run(5, sch, StackConfig{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("properties violated:\n%s", res.Report())
	}
}
