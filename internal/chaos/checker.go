package chaos

import (
	"bytes"
	"fmt"

	"modab/internal/member"
	"modab/internal/types"
)

// suffixCap bounds how much of a divergent log suffix a violation report
// prints.
const suffixCap = 10

// checkStack verifies the atomic broadcast properties on one stack's run.
// Processes the schedule crashes and never restarts are the faulty ones;
// everyone else — restarted processes included — must behave like a
// correct process.
func checkStack(sr *StackResult, sch Schedule, cfg StackConfig) []Violation {
	var out []Violation
	add := func(property, format string, args ...any) {
		out = append(out, Violation{Stack: sr.Stack, Property: property, Detail: fmt.Sprintf(format, args...)})
	}
	for _, err := range sr.Errs {
		add("engine-health", "engine error: %v", err)
	}

	down := sch.CrashedForever()
	n := len(sr.Logs)

	// Reference order: the longest correct log (every correct process must
	// match it exactly; crashed processes must be a prefix of it).
	ref := -1
	for p := 0; p < n; p++ {
		if down[types.ProcessID(p)] {
			continue
		}
		if ref == -1 || len(sr.Logs[p]) > len(sr.Logs[ref]) {
			ref = p
		}
	}
	if ref == -1 {
		add("validity", "schedule leaves no correct process")
		return out
	}
	refLog := sr.Logs[ref]

	// Uniform agreement + uniform total order: correct processes deliver
	// identical sequences; crashed processes deliver a prefix. A process
	// that recovered through a snapshot install legitimately skips the
	// installed region (applied wholesale, never delivered), so its check
	// relaxes to an order-preserving subsequence of the reference — the
	// applied-state equivalence check below still holds it to the same
	// final state.
	for p := 0; p < n; p++ {
		if p == ref {
			continue
		}
		got := sr.Logs[p]
		crashed := down[types.ProcessID(p)]
		if len(sr.SnapshotInstalls) > 0 && sr.SnapshotInstalls[p] > 0 {
			if i := firstOrderBreak(refLog, got); i >= 0 {
				add("uniform-total-order", "snapshot-installed %s is not an order-preserving subsequence of %s (break at its index %d):\n    %s suffix: %v",
					types.ProcessID(p), types.ProcessID(ref), i, types.ProcessID(p), suffix(got, i))
			}
			continue
		}
		if i := firstDivergence(refLog, got); i >= 0 {
			add("uniform-total-order", "%s and %s diverge at index %d:\n    %s suffix: %v\n    %s suffix: %v",
				types.ProcessID(ref), types.ProcessID(p), i,
				types.ProcessID(ref), suffix(refLog, i), types.ProcessID(p), suffix(got, i))
			continue
		}
		if !crashed && len(got) != len(refLog) {
			add("uniform-agreement", "correct %s delivered %d messages, correct %s delivered %d:\n    %s suffix: %v",
				types.ProcessID(p), len(got), types.ProcessID(ref), len(refLog),
				types.ProcessID(ref), suffix(refLog, len(got)))
		}
	}

	// Config agreement (schedules with membership ops): correct processes
	// must agree on every epoch's activation instance and member set —
	// the observable witness that no decided instance straddled two
	// configurations (an op decided at k activates at exactly k+W
	// everywhere, joiners included; a joiner's history legitimately
	// starts at its admitting view, hence the shared-epoch comparison).
	if len(sr.Views) > 0 {
		refViews := epochMap(sr.Views[ref])
		for p := 0; p < len(sr.Views); p++ {
			if p == ref || down[types.ProcessID(p)] {
				continue
			}
			for _, v := range sr.Views[p] {
				rv, ok := refViews[v.Epoch]
				if !ok {
					continue
				}
				if v.Activation != rv.Activation {
					add("config-agreement", "%s activates epoch %d at instance %d, %s at %d",
						types.ProcessID(p), v.Epoch, v.Activation, types.ProcessID(ref), rv.Activation)
					continue
				}
				if !sameMembers(v.Members, rv.Members) {
					add("config-agreement", "%s and %s disagree on epoch %d members: %v vs %v",
						types.ProcessID(p), types.ProcessID(ref), v.Epoch, v.Members, rv.Members)
				}
			}
		}
	}

	// Applied-state equivalence (KV runs): every process that is correct
	// at the end — restarted and snapshot-installed ones included — must
	// hold byte-identical state machine state.
	if len(sr.Digests) > 0 {
		for p := 0; p < n; p++ {
			if down[types.ProcessID(p)] || p == ref {
				continue
			}
			if !bytes.Equal(sr.Digests[p], sr.Digests[ref]) {
				add("applied-state-equivalence", "%s and %s hold different final KV state (%d vs %d canonical bytes)",
					types.ProcessID(p), types.ProcessID(ref), len(sr.Digests[p]), len(sr.Digests[ref]))
			}
		}
	}

	// Uniform integrity: no process delivers twice, nothing undelivered is
	// invented.
	valid := make(map[types.MsgID]bool, len(sr.Submissions))
	for _, s := range sr.Submissions {
		if s.ID != (types.MsgID{}) {
			valid[s.ID] = true
		}
	}
	for p := 0; p < n; p++ {
		seen := make(map[types.MsgID]bool, len(sr.Logs[p]))
		for i, id := range sr.Logs[p] {
			if seen[id] {
				add("uniform-integrity", "%s delivered %s twice (second at index %d)", types.ProcessID(p), id, i)
			}
			seen[id] = true
			if !valid[id] {
				add("uniform-integrity", "%s delivered never-abcast %s (index %d)", types.ProcessID(p), id, i)
			}
		}
	}

	// Validity + liveness after heal: every admission at a correct process
	// is in the reference order, and the cluster quiesced inside the
	// settle budget once faults cleared.
	delivered := make(map[types.MsgID]bool, len(refLog))
	for _, id := range refLog {
		delivered[id] = true
	}
	missing := 0
	for _, s := range sr.Submissions {
		if s.ID == (types.MsgID{}) || down[s.By] || delivered[s.ID] {
			continue
		}
		missing++
		if missing <= 3 {
			add("validity", "%s admitted at correct %s (t=%v) never delivered", s.ID, s.By, s.At)
		}
	}
	if missing > 3 {
		add("validity", "... and %d more undelivered admissions", missing-3)
	}
	if !sr.Quiesced {
		add("liveness-after-heal", "cluster failed to quiesce within %v of virtual settle time after the horizon", cfg.Settle)
	}
	return out
}

// checkCrossStack compares the two stacks' final applied state (KV runs
// only). The stacks may legitimately admit different command sets (flow
// control and crash timing are stack-dependent), so the digests are only
// required to match when the reference delivery sets match — which they
// do in the sweep families, making this the cross-stack half of the
// applied-state equivalence property.
func checkCrossStack(stacks []StackResult, sch Schedule) []Violation {
	if len(stacks) != 2 || len(stacks[0].Digests) == 0 || len(stacks[1].Digests) == 0 {
		return nil
	}
	down := sch.CrashedForever()
	refs := make([]int, 2)
	sets := make([]map[types.MsgID]bool, 2)
	for i, sr := range stacks {
		ref := -1
		for p := range sr.Logs {
			if down[types.ProcessID(p)] {
				continue
			}
			if ref == -1 || len(sr.Logs[p]) > len(sr.Logs[ref]) {
				ref = p
			}
		}
		if ref == -1 {
			return nil
		}
		refs[i] = ref
		sets[i] = make(map[types.MsgID]bool, len(sr.Logs[ref]))
		for _, id := range sr.Logs[ref] {
			sets[i][id] = true
		}
	}
	if len(sets[0]) != len(sets[1]) {
		return nil
	}
	for id := range sets[0] {
		if !sets[1][id] {
			return nil
		}
	}
	if !bytes.Equal(stacks[0].Digests[refs[0]], stacks[1].Digests[refs[1]]) {
		return []Violation{{
			Stack:    stacks[1].Stack,
			Property: "applied-state-equivalence",
			Detail: fmt.Sprintf("stacks delivered the same %d commands but converged to different KV state (%s %d vs %s %d canonical bytes)",
				len(sets[0]), stacks[0].Stack, len(stacks[0].Digests[refs[0]]), stacks[1].Stack, len(stacks[1].Digests[refs[1]])),
		}}
	}
	return nil
}

// epochMap indexes a decided view sequence by epoch.
func epochMap(views []member.View) map[uint64]member.View {
	m := make(map[uint64]member.View, len(views))
	for _, v := range views {
		m[v.Epoch] = v
	}
	return m
}

// sameMembers reports whether two sorted member sets are identical.
func sameMembers(a, b []types.ProcessID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstOrderBreak returns the first index of got that breaks the order of
// ref (an entry missing from ref, or one that steps backwards), or -1
// when got is an order-preserving subsequence of ref.
func firstOrderBreak(ref, got []types.MsgID) int {
	idx := make(map[types.MsgID]int, len(ref))
	for i, id := range ref {
		idx[id] = i
	}
	next := 0
	for i, id := range got {
		ri, ok := idx[id]
		if !ok || ri < next {
			return i
		}
		next = ri + 1
	}
	return -1
}

// firstDivergence returns the first index where the two logs disagree on
// a common position, or -1 when one is a prefix of the other.
func firstDivergence(a, b []types.MsgID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// suffix returns up to suffixCap entries of log starting at i.
func suffix(log []types.MsgID, i int) []types.MsgID {
	if i >= len(log) {
		return nil
	}
	end := i + suffixCap
	if end > len(log) {
		end = len(log)
	}
	return log[i:end]
}
