package chaos

import (
	"time"

	"modab/internal/netsim"
)

// lossy returns the standard lossy-link degradation used across the chaos
// tests: 20% drops, small delay and jitter, occasional duplication and
// bounded reordering.
func lossy() netsim.LinkFault {
	return netsim.LinkFault{
		Drop:    0.2,
		Delay:   500 * time.Microsecond,
		Jitter:  time.Millisecond,
		Dup:     0.05,
		Reorder: 0.1,
	}
}
