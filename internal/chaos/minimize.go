package chaos

// minimizeTrials bounds the number of full re-runs the greedy minimizer
// spends shrinking a violating schedule.
const minimizeTrials = 48

// Minimize greedily shrinks a violating schedule: it repeatedly tries to
// drop one operation (re-running the full deterministic two-stack
// scenario each time) and keeps any removal that still violates, until a
// fixpoint or the trial budget is reached. The result reproduces the
// violation with chaos.Run(seed, minimized, cfg).
//
// Crash/restart pairs are dropped together: a restart without its crash
// (or vice versa) changes the scenario's fault semantics rather than
// shrinking it.
func Minimize(seed int64, sch Schedule, cfg StackConfig) Schedule {
	violates := func(s Schedule) bool {
		if _, healable := s.End(); !healable {
			// Dropping a heal left an open-ended fault: that schedule
			// violates liveness trivially, not because of the bug under
			// minimization.
			return false
		}
		res, err := run(seed, s, cfg)
		return err == nil && !res.Ok()
	}
	cur := append(Schedule(nil), sch...)
	trials := 0
	for shrunk := true; shrunk && trials < minimizeTrials; {
		shrunk = false
		for i := 0; i < len(cur) && trials < minimizeTrials; i++ {
			next := dropOp(cur, i)
			trials++
			if violates(next) {
				cur = next
				shrunk = true
				i--
			}
		}
	}
	return cur
}

// dropOp returns the schedule without operation i — and without its
// paired crash/restart op on the same process, so fault semantics are
// preserved.
func dropOp(s Schedule, i int) Schedule {
	drop := map[int]bool{i: true}
	switch s[i].Kind {
	case OpCrash:
		for j := i + 1; j < len(s); j++ {
			if s[j].Kind == OpRestart && s[j].A == s[i].A {
				drop[j] = true
				break
			}
		}
	case OpRestart:
		for j := i - 1; j >= 0; j-- {
			if s[j].Kind == OpCrash && s[j].A == s[i].A {
				drop[j] = true
				break
			}
		}
	}
	out := make(Schedule, 0, len(s)-len(drop))
	for j, op := range s {
		if !drop[j] {
			out = append(out, op)
		}
	}
	return out
}
