package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"modab/internal/netsim"
	"modab/internal/types"
)

// OpKind discriminates schedule operations.
type OpKind int

// Schedule operation kinds.
const (
	// OpPartition symmetrically cuts both directions between A and B
	// during [From, To).
	OpPartition OpKind = iota + 1
	// OpPartitionOneWay cuts only the direction A -> B during [From, To).
	OpPartitionOneWay
	// OpLinkFault installs Fault on the directed link A -> B (drops,
	// delay, jitter, duplication, bounded reordering).
	OpLinkFault
	// OpHeal clears every link fault at From.
	OpHeal
	// OpCrash crash-stops process A at From.
	OpCrash
	// OpRestart restarts a crashed process A at From (requires a durable
	// cluster).
	OpRestart
	// OpSuspect injects a wrong suspicion: B suspects A during [From, To)
	// although A is alive and reachable.
	OpSuspect
	// OpJoin admits process A at From: sponsor B submits the config change
	// and the joiner spawns once the decided view admitting it applies.
	// Joiner IDs must be dense (the next unused ID) and explicit at
	// schedule-build time, so runs stay bit-for-bit reproducible.
	OpJoin
	// OpLeave removes member A at From through sponsor B. The removed
	// process keeps running until a later OpCrash decommissions it —
	// schedules pair every leave with a crash, which also makes the
	// checker treat the process as faulty.
	OpLeave
)

// Op is one schedule operation. A and B name processes, From and To bound
// the operation in virtual time (To is ignored by point operations), and
// Fault carries the link degradation of OpLinkFault.
type Op struct {
	Kind  OpKind
	A, B  types.ProcessID
	From  time.Duration
	To    time.Duration
	Fault netsim.LinkFault
}

// String renders one operation compactly for violation reports.
func (op Op) String() string {
	switch op.Kind {
	case OpPartition:
		return fmt.Sprintf("partition %s<->%s [%v,%v)", op.A, op.B, op.From, op.To)
	case OpPartitionOneWay:
		return fmt.Sprintf("partition %s->%s [%v,%v)", op.A, op.B, op.From, op.To)
	case OpLinkFault:
		f := op.Fault
		return fmt.Sprintf("fault %s->%s [%v,%v) drop=%.2f delay=%v jitter=%v dup=%.2f reorder=%.2f",
			op.A, op.B, f.From, f.To, f.Drop, f.Delay, f.Jitter, f.Dup, f.Reorder)
	case OpHeal:
		return fmt.Sprintf("heal at %v", op.From)
	case OpCrash:
		return fmt.Sprintf("crash %s at %v", op.A, op.From)
	case OpRestart:
		return fmt.Sprintf("restart %s at %v", op.A, op.From)
	case OpSuspect:
		return fmt.Sprintf("suspect %s at %s [%v,%v)", op.A, op.B, op.From, op.To)
	case OpJoin:
		return fmt.Sprintf("join %s via %s at %v", op.A, op.B, op.From)
	case OpLeave:
		return fmt.Sprintf("leave %s via %s at %v", op.A, op.B, op.From)
	default:
		return fmt.Sprintf("op(%d)", int(op.Kind))
	}
}

// Schedule is a deterministic fault schedule: the same schedule applied to
// the same seeded cluster reproduces the same run bit for bit.
type Schedule []Op

// String renders the schedule one operation per line.
func (s Schedule) String() string {
	if len(s) == 0 {
		return "  (empty schedule)"
	}
	var b strings.Builder
	for _, op := range s {
		fmt.Fprintf(&b, "  %s\n", op)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Apply installs every operation on the cluster.
func (s Schedule) Apply(c *netsim.Cluster) {
	for _, op := range s {
		switch op.Kind {
		case OpPartition:
			c.Partition(op.A, op.B, op.From, op.To)
		case OpPartitionOneWay:
			c.PartitionOneWay(op.A, op.B, op.From, op.To)
		case OpLinkFault:
			f := op.Fault
			f.From, f.To = op.From, op.To
			c.SetLinkFault(op.A, op.B, f)
		case OpHeal:
			c.Heal(op.From)
		case OpCrash:
			c.Crash(op.A, op.From)
		case OpRestart:
			c.Restart(op.A, op.From)
		case OpSuspect:
			c.SuspectWindow(op.B, op.A, op.From, op.To-op.From)
		case OpJoin:
			c.Join(op.B, op.A, op.From)
		case OpLeave:
			c.Remove(op.B, op.A, op.From)
		}
	}
}

// End returns the virtual time by which every operation has ceased: the
// latest window end, heal, or restart. Open-ended faults without a later
// heal make the schedule unhealable; End returns ok=false for those.
func (s Schedule) End() (end time.Duration, ok bool) {
	ok = true
	var lastHeal time.Duration
	for _, op := range s {
		if op.Kind == OpHeal && op.From > lastHeal {
			lastHeal = op.From
		}
	}
	for _, op := range s {
		t := op.To
		switch op.Kind {
		case OpHeal, OpCrash, OpRestart, OpJoin, OpLeave:
			t = op.From
		}
		if t == 0 { // open-ended window: needs a heal after it opens
			if lastHeal <= op.From {
				ok = false
			}
			t = lastHeal
		}
		if t > end {
			end = t
		}
	}
	return end, ok
}

// CrashedForever returns the processes the schedule crashes and never
// restarts — the processes the properties treat as faulty.
func (s Schedule) CrashedForever() map[types.ProcessID]bool {
	down := make(map[types.ProcessID]bool)
	for _, op := range s {
		switch op.Kind {
		case OpCrash:
			down[op.A] = true
		case OpRestart:
			delete(down, op.A)
		}
	}
	return down
}

// NeedsDurability reports whether the schedule restarts a process (which
// requires the cluster to run a durable store).
func (s Schedule) NeedsDurability() bool {
	for _, op := range s {
		if op.Kind == OpRestart {
			return true
		}
	}
	return false
}

// ScheduleRNG derives the generator RandomSchedule consumers feed from a
// run seed — deliberately distinct from the submission-schedule RNG, so
// fault topology and workload vary independently per seed.
func ScheduleRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*7919 + 17))
}

// RandomSchedule derives a randomized fault schedule from rng for a group
// of n processes with fault activity inside [0, span): one to three fault
// episodes drawn from partitions (symmetric and asymmetric), lossy-link
// windows, wrong suspicions, and — when durable is set — crash+restart
// pairs. Half the schedules end in a closing Heal (which may be the only
// terminator of an open-ended partition, so the heal path is genuinely
// exercised); the rest rely on their self-closing windows. Crash episodes
// never exceed the tolerated minority.
func RandomSchedule(rng *rand.Rand, n int, span time.Duration, durable bool) Schedule {
	var s Schedule
	episodes := 1 + rng.Intn(3)
	withHeal := rng.Intn(2) == 0
	crashes := 0
	pick := func() types.ProcessID { return types.ProcessID(rng.Intn(n)) }
	pair := func() (types.ProcessID, types.ProcessID) {
		a := pick()
		b := pick()
		for b == a {
			b = pick()
		}
		return a, b
	}
	window := func() (time.Duration, time.Duration) {
		from := time.Duration(rng.Int63n(int64(span / 2)))
		dur := span/10 + time.Duration(rng.Int63n(int64(span/4)))
		return from, from + dur
	}
	for i := 0; i < episodes; i++ {
		kinds := 4
		if durable && crashes < types.MaxFaulty(n) {
			kinds = 5
		}
		switch rng.Intn(kinds) {
		case 0:
			a, b := pair()
			from, to := window()
			if withHeal && rng.Intn(3) == 0 {
				to = 0 // open-ended: the closing heal terminates it
			}
			s = append(s, Op{Kind: OpPartition, A: a, B: b, From: from, To: to})
		case 1:
			a, b := pair()
			from, to := window()
			s = append(s, Op{Kind: OpPartitionOneWay, A: a, B: b, From: from, To: to})
		case 2:
			a, b := pair()
			from, to := window()
			s = append(s, Op{Kind: OpLinkFault, A: a, B: b, From: from, To: to,
				Fault: netsim.LinkFault{
					Drop:    0.05 + 0.25*rng.Float64(),
					Delay:   time.Duration(rng.Int63n(int64(2 * time.Millisecond))),
					Jitter:  time.Duration(rng.Int63n(int64(2 * time.Millisecond))),
					Dup:     0.1 * rng.Float64(),
					Reorder: 0.2 * rng.Float64(),
				}})
		case 3:
			a, b := pair()
			from, to := window()
			s = append(s, Op{Kind: OpSuspect, A: a, B: b, From: from, To: to})
		case 4:
			crashes++
			p := pick()
			from, to := window()
			s = append(s, Op{Kind: OpCrash, A: p, From: from})
			s = append(s, Op{Kind: OpRestart, A: p, From: to})
		}
	}
	if withHeal {
		s = append(s, Op{Kind: OpHeal, From: span * 3 / 4})
	}
	return s
}
