package chaos

import (
	"os"
	"strconv"
	"testing"
	"time"

	"modab/internal/batch"
	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/types"
)

// sweepFamily is one scenario family of the seed-sweep regression: a
// schedule generator (seeded, so every seed yields a fresh variation) and
// the stack configuration it runs under.
type sweepFamily struct {
	name     string
	schedule func(seed int64) Schedule
	config   func() StackConfig
}

// sweepFamilies are the six regression families of the chaos sweep:
// a partition during a W=4 pipeline, asymmetric drops on the round-1
// coordinator's outbound links, a partition overlapping a crash+restart
// on a durable cluster, a KV-loaded snapshot-install recovery (the
// crashed process comes back after its peers snapshotted and truncated
// past its watermark, so its only way back is a snapshot install — with
// applied-state equivalence checked across processes and stacks), a
// ring-dissemination cut (a partitioned ring edge on even seeds, a
// crashed-and-restarted mid-ring relayer on odd ones, under
// Dissemination=Ring on a durable cluster), and a digest-ordering family
// (KV-loaded batched cluster with WithDigestOrdering semantics: a
// lost-payload-before-decide partition that severs the announce path
// between two non-coordinator processes so decided descriptors arrive
// with non-resident payloads and the post-decide re-fetch must repair
// them, rotated by seed with crash+restart and an overlapping
// partition+crash on the durable cluster).
var sweepFamilies = []sweepFamily{
	{
		name: "partition-during-pipeline",
		schedule: func(seed int64) Schedule {
			a := types.ProcessID(seed % 3)
			b := types.ProcessID((seed + 1 + seed/3%2) % 3)
			from := 200*time.Millisecond + time.Duration(seed%7)*37*time.Millisecond
			return Schedule{
				{Kind: OpPartition, A: a, B: b, From: from, To: from + 400*time.Millisecond},
			}
		},
		config: func() StackConfig {
			cfg := engine.DefaultConfig(3)
			cfg.PipelineDepth = 4
			return StackConfig{Engine: cfg, Model: netsim.MetroModel(), Load: 900}
		},
	},
	{
		name: "asymmetric-drop-on-coordinator",
		schedule: func(seed int64) Schedule {
			// Degrade the round-1 coordinator's outbound links only: peers
			// stop hearing p1 reliably while p1 hears everything.
			drop := 0.15 + float64(seed%5)*0.1
			from := 150*time.Millisecond + time.Duration(seed%5)*53*time.Millisecond
			to := from + 500*time.Millisecond
			f := netsim.LinkFault{Drop: drop, Jitter: time.Millisecond, Dup: 0.05, Reorder: 0.1}
			return Schedule{
				{Kind: OpLinkFault, A: 0, B: 1, From: from, To: to, Fault: f},
				{Kind: OpLinkFault, A: 0, B: 2, From: from, To: to, Fault: f},
			}
		},
		config: func() StackConfig { return StackConfig{} },
	},
	{
		name: "partition-crash-restart",
		schedule: func(seed int64) Schedule {
			victim := types.ProcessID(1 + seed%2) // never the round-1 coordinator twice over
			other := types.ProcessID(2 - seed%2)
			crashAt := 300*time.Millisecond + time.Duration(seed%4)*41*time.Millisecond
			return Schedule{
				{Kind: OpPartition, A: 0, B: other, From: 200 * time.Millisecond, To: 650 * time.Millisecond},
				{Kind: OpCrash, A: victim, From: crashAt},
				{Kind: OpRestart, A: victim, From: crashAt + 500*time.Millisecond},
			}
		},
		config: func() StackConfig { return StackConfig{Durable: true} },
	},
	{
		name: "snapshot-install-recovery",
		schedule: func(seed int64) Schedule {
			victim := types.ProcessID(1 + seed%2)
			crashAt := 250*time.Millisecond + time.Duration(seed%4)*31*time.Millisecond
			// The long downtime lets the peers advance several snapshot
			// intervals past the victim's watermark while the short
			// decision horizon (below) prunes the decided instances it
			// would otherwise catch up from.
			return Schedule{
				{Kind: OpCrash, A: victim, From: crashAt},
				{Kind: OpRestart, A: victim, From: crashAt + 700*time.Millisecond},
			}
		},
		config: func() StackConfig {
			cfg := engine.DefaultConfig(3)
			cfg.DecisionHorizon = 16
			return StackConfig{Engine: cfg, Durable: true, KV: true, SnapshotEvery: 4, Load: 400}
		},
	},
	{
		name: "ring-cut",
		schedule: func(seed int64) Schedule {
			if seed%2 == 0 {
				// Cut one ring edge a→(a+1) mid-relay: the frames in flight
				// on it die, the FD-driven skip and the re-spread backstop
				// must route around until the heal.
				a := types.ProcessID(seed / 2 % 3)
				b := types.ProcessID((int(a) + 1) % 3)
				from := 250*time.Millisecond + time.Duration(seed%5)*43*time.Millisecond
				return Schedule{
					{Kind: OpPartition, A: a, B: b, From: from, To: from + 400*time.Millisecond},
				}
			}
			// Crash the mid-ring relayer p1 (p0 is the round-1 coordinator,
			// so p1 is the first hop of every proposal relay) and bring it
			// back on the durable cluster.
			crashAt := 300*time.Millisecond + time.Duration(seed%4)*37*time.Millisecond
			return Schedule{
				{Kind: OpCrash, A: 1, From: crashAt},
				{Kind: OpRestart, A: 1, From: crashAt + 450*time.Millisecond},
			}
		},
		config: func() StackConfig {
			cfg := engine.DefaultConfig(3)
			cfg.Dissemination = dissem.Ring
			return StackConfig{Engine: cfg, Durable: true, Load: 500}
		},
	},
	{
		name: "digest-ordering",
		schedule: func(seed int64) Schedule {
			switch seed % 3 {
			case 0:
				// Lost payload before decide: cut the link between the two
				// non-coordinator processes mid-injection. Announces each
				// origin sends the other die on the cut, while p0 keeps
				// ordering descriptors for everyone — so the far side
				// decides descriptors whose payload batches it never
				// received and must repair them through the post-decide
				// payload fetch (rotating away from the suspected origin).
				a := types.ProcessID(1)
				b := types.ProcessID(2)
				from := 150*time.Millisecond + time.Duration(seed%5)*47*time.Millisecond
				return Schedule{
					{Kind: OpPartition, A: a, B: b, From: from, To: from + 450*time.Millisecond},
				}
			case 1:
				// Crash+restart under digest ordering on the durable
				// cluster: recovery regroups the replayed own backlog into
				// fresh incarnation-tagged descriptors and re-announces.
				victim := types.ProcessID(1 + seed%2)
				crashAt := 300*time.Millisecond + time.Duration(seed%4)*43*time.Millisecond
				return Schedule{
					{Kind: OpCrash, A: victim, From: crashAt},
					{Kind: OpRestart, A: victim, From: crashAt + 500*time.Millisecond},
				}
			default:
				// Partition overlapping a crash: the payload holder set
				// shrinks while a link is down, so repair has to rotate
				// past both the dead origin and the unreachable peer.
				victim := types.ProcessID(1 + seed%2)
				other := types.ProcessID(2 - seed%2)
				crashAt := 300*time.Millisecond + time.Duration(seed%4)*37*time.Millisecond
				return Schedule{
					{Kind: OpPartition, A: 0, B: other, From: 200 * time.Millisecond, To: 650 * time.Millisecond},
					{Kind: OpCrash, A: victim, From: crashAt},
					{Kind: OpRestart, A: victim, From: crashAt + 450*time.Millisecond},
				}
			}
		},
		config: func() StackConfig {
			cfg := engine.DefaultConfig(3)
			cfg.DigestOrdering = true
			cfg.Batch = batch.Config{MaxMsgs: 8, MaxDelay: 2 * time.Millisecond}
			return StackConfig{Engine: cfg, Durable: true, KV: true, Load: 400}
		},
	},
	{
		name: "membership-churn",
		schedule: func(seed int64) Schedule {
			// One replace under fire: p4 joins, then a rotating boot member
			// is removed and decommissioned by a crash. Even seeds overlap
			// the join with a partition (the joiner's catch-up and the
			// config ops must ride out the cut); odd seeds crash+restart a
			// surviving member so its WAL replay rescans the decided config
			// ops, plus a wrong suspicion across the remove boundary.
			victim := types.ProcessID(seed % 3)
			sponsor := types.ProcessID((int(victim) + 1) % 3)
			other := types.ProcessID((int(victim) + 2) % 3)
			joinAt := 200*time.Millisecond + time.Duration(seed%5)*31*time.Millisecond
			removeAt := joinAt + 400*time.Millisecond
			crashAt := removeAt + 300*time.Millisecond
			s := Schedule{
				{Kind: OpJoin, A: 3, B: sponsor, From: joinAt},
				{Kind: OpLeave, A: victim, B: sponsor, From: removeAt},
				{Kind: OpCrash, A: victim, From: crashAt},
			}
			if seed%2 == 0 {
				s = append(s, Op{Kind: OpPartition, A: victim, B: other,
					From: joinAt - 50*time.Millisecond, To: joinAt + 250*time.Millisecond})
			} else {
				s = append(s,
					Op{Kind: OpCrash, A: other, From: joinAt + 100*time.Millisecond},
					Op{Kind: OpRestart, A: other, From: joinAt + 450*time.Millisecond},
					Op{Kind: OpSuspect, A: sponsor, B: other,
						From: removeAt, To: removeAt + 150*time.Millisecond})
			}
			return s
		},
		config: func() StackConfig {
			// KV state-digest equality must include the joiner; snapshots
			// stay effectively off (a joiner restarting from a truncated
			// WAL is the documented membership limitation).
			return StackConfig{Durable: true, KV: true, SnapshotEvery: 1 << 20, Load: 400}
		},
	},
}

// sweepSeeds returns how many seeds per family the sweep runs: 8 by
// default (the CI short soak), or CHAOS_SEEDS when set — the nightly-style
// long sweep (CHAOS_SEEDS=200 is the acceptance configuration).
func sweepSeeds(t *testing.T) int64 {
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil || n < 1 {
			t.Fatalf("bad CHAOS_SEEDS=%q: %v", env, err)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 8
}

// TestChaosSeedSweep is the seed-sweep regression: every family x seed
// runs the full two-stack scenario and asserts a gap-free, duplicate-free,
// identical total order in both stacks plus liveness after heal. A
// failure message carries the exact repro line.
func TestChaosSeedSweep(t *testing.T) {
	seeds := sweepSeeds(t)
	for _, fam := range sweepFamilies {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				sch := fam.schedule(seed)
				res, err := Run(seed, sch, fam.config())
				if err != nil {
					t.Fatalf("family %s seed %d: Run: %v", fam.name, seed, err)
				}
				if !res.Ok() {
					t.Fatalf("family %s seed %d violated properties\n%s\nrepro: CHAOS_SEEDS=%d go test ./internal/chaos -run TestChaosSeedSweep/%s",
						fam.name, seed, res.Report(), seed+1, fam.name)
				}
			}
		})
	}
}

// TestChaosRandomSchedules sweeps fully randomized schedules (the
// generator exercised by the soak) over a smaller seed range.
func TestChaosRandomSchedules(t *testing.T) {
	seeds := sweepSeeds(t)
	if seeds > 32 {
		t.Logf("randomized-schedule sweep capped at 32 of the requested %d seeds (the family sweep carries the depth)", seeds)
		seeds = 32
	}
	for seed := int64(0); seed < seeds; seed++ {
		sch := RandomSchedule(ScheduleRNG(seed), 3, time.Second, true)
		res, err := Run(seed, sch, StackConfig{Durable: true})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		if !res.Ok() {
			t.Fatalf("random schedule seed %d violated properties\n%s\nschedule:\n%s",
				seed, res.Report(), sch)
		}
	}
}
