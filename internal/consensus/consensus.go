// Package consensus implements the optimized Chandra–Toueg ◇S consensus
// microprotocol of the modular stack (paper §3.2).
//
// The algorithm proceeds in asynchronous rounds; the coordinator of round
// r is process (r-1) mod n. The paper's optimizations (from Urbán '03) are
// all implemented:
//
//   - the estimate phase of round 1 is suppressed: the round-1 coordinator
//     proposes its own initial value directly;
//   - a new round starts only when the current round's coordinator is
//     suspected by the local failure detector (instead of rounds free-running);
//   - decisions are disseminated through reliable broadcast as a small
//     DECISION tag; receivers decide the proposal they already hold for
//     that round, and fetch the full decision only if they miss it.
//
// The layer manages many consensus instances (one per atomic broadcast
// batch) but exposes each as an independent black box: nothing about
// instance k is reused for instance k+1. That independence is precisely
// the modularity cost the paper measures; the monolithic engine removes it.
// It is also what makes the abcast layer's pipelining
// (engine.Config.PipelineDepth) transparent here: W concurrent EvProposeReq
// instances run their rounds, suspicion-driven round advancement and
// decision dissemination fully independently, and retention (prune) only
// ever drops decided instances, so an in-flight window can never lose
// state to GC.
package consensus

import (
	"fmt"
	"sort"
	"time"

	"modab/internal/dedup"
	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/stack"
	"modab/internal/types"
	"modab/internal/wire"
)

// timerResend is the layer-local timer driving decision-fetch retries.
const timerResend engine.TimerID = 1

// Layer is the consensus microprotocol. It accepts stack.EvProposeReq
// events, emits stack.EvDecide events to the subscriber layer, and sends
// its decisions through the reliable broadcast layer.
type Layer struct {
	ctx        *stack.Context
	subscriber stack.Tag
	resend     time.Duration
	horizon    int

	self types.ProcessID
	// views is the ascending-activation sequence of membership views
	// this layer has been told about (stack.EvConfig from the abcast
	// layer, which processes decisions in total order). Every quorum
	// comparison and coordinator lookup for instance k goes through
	// viewAt(k) — never through a majority cached at construction, which
	// is exactly the stale-quorum bug dynamic membership exposes: a
	// decided remove from n=5 to 4 must shrink the quorum on the very
	// next governed instance.
	views      []member.View
	insts      map[uint64]*instance
	suspected  map[types.ProcessID]bool
	maxDecided uint64
	// decidedSet records every instance this process ever decided
	// (contiguous watermark plus sparse set, so memory stays bounded once
	// decisions become contiguous). It outlives pruning: a vote-producing
	// message (proposal, estimate, ack) for an instance this process
	// decided and then pruned must be ignored — recreating the instance
	// as undecided and voting again could hand a badly lagging proposer a
	// majority for a second, conflicting decision (the original and the
	// new majority must intersect, and with every decided-then-pruned
	// participant refusing, the intersection kills the new one).
	// Instances this process has NOT decided — its own undecided gap
	// during a partition, whether or not the instance state exists yet —
	// keep processing normally; retransmitted proposals are how the gap
	// heals.
	decidedSet *dedup.Set
}

// pruned reports whether instance k was decided here and then pruned.
func (l *Layer) pruned(k uint64) bool {
	return l.decidedSet.Seen(k) && l.insts[k] == nil
}

var _ stack.Layer = (*Layer)(nil)

// New returns a consensus layer that reports decisions to the subscriber
// layer. resendEvery drives crash-path retransmissions; horizon bounds how
// many decided instances are retained for catch-up.
func New(subscriber stack.Tag, resendEvery time.Duration, horizon int) *Layer {
	if horizon < 1 {
		horizon = 1
	}
	return &Layer{subscriber: subscriber, resend: resendEvery, horizon: horizon}
}

// Tag implements stack.Layer.
func (l *Layer) Tag() stack.Tag { return stack.TagConsensus }

// Init implements stack.Layer.
func (l *Layer) Init(ctx *stack.Context) {
	l.ctx = ctx
	l.self = ctx.Env().Self()
	if l.views == nil {
		l.views = member.NewHistory(ctx.Env().N()).Views()
	}
	l.insts = make(map[uint64]*instance)
	l.suspected = make(map[types.ProcessID]bool)
	l.decidedSet = dedup.NewSet()
}

// SeedView replaces the boot view (joiners start from the config they
// were admitted into, not from epoch 0). Call before the stack starts;
// it survives Init in either order.
func (l *Layer) SeedView(v member.View) {
	l.views = []member.View{v}
}

// Start implements stack.Layer.
func (l *Layer) Start() {}

// viewAt returns the membership view governing instance k.
func (l *Layer) viewAt(k uint64) member.View {
	for i := len(l.views) - 1; i >= 0; i-- {
		if l.views[i].Activation <= k {
			return l.views[i]
		}
	}
	return l.views[0]
}

// coordinatorAt returns the coordinator of round r (1-based) of
// instance k: the view's sorted members rotated by round. For the
// static epoch-0 view this is the paper's (r-1) mod n.
func (l *Layer) coordinatorAt(k uint64, r uint32) types.ProcessID {
	return l.viewAt(k).Coordinator(r)
}

// applyView appends a decided membership view and re-evaluates
// suspicion-driven round advancement for instances the new rotation now
// governs (a peer past the boundary may already have opened them in us
// via proposals under the old rotation).
func (l *Layer) applyView(activation uint64, members []types.ProcessID) {
	cur := l.views[len(l.views)-1]
	if activation <= cur.Activation {
		return
	}
	l.views = append(l.views, member.View{
		Epoch:      cur.Epoch + 1,
		Activation: activation,
		Members:    append([]types.ProcessID(nil), members...),
	})
	for _, k := range l.sortedInstanceKeys() {
		if k < activation {
			continue
		}
		inst := l.insts[k]
		for !inst.decided && l.suspected[l.coordinatorAt(k, inst.round)] {
			l.advanceRound(inst)
		}
	}
}

// instance state.
type instance struct {
	k uint64
	// round is the local progression: the round whose proposal this
	// process awaits or has acknowledged.
	round uint32
	// estimate/estTS/hasEstimate implement the CT locking rule: the
	// estimate is adopted from each acknowledged proposal with ts = round.
	estimate    wire.Batch
	estTS       uint32
	hasEstimate bool
	// proposals stores received proposals per round (needed to resolve
	// DECISION tags).
	proposals map[uint32]wire.Batch
	nacked    map[uint32]bool
	// coord holds this process's coordinator duties per round.
	coord map[uint32]*coordRound
	// decision state.
	decided         bool
	decision        wire.Batch
	decisionRound   uint32
	waitingDecision bool
}

type coordRound struct {
	estimates map[types.ProcessID]estimateEntry
	proposed  bool
	proposal  wire.Batch
	acks      map[types.ProcessID]bool
}

func (inst *instance) coordRound(r uint32) *coordRound {
	cr := inst.coord[r]
	if cr == nil {
		cr = &coordRound{
			estimates: make(map[types.ProcessID]estimateEntry),
			acks:      make(map[types.ProcessID]bool),
		}
		inst.coord[r] = cr
	}
	return cr
}

// get returns the instance state for k, creating it in round 1 (and
// immediately advancing past rounds whose coordinator is already
// suspected).
func (l *Layer) get(k uint64) *instance {
	inst := l.insts[k]
	if inst != nil {
		return inst
	}
	inst = &instance{
		k:         k,
		round:     1,
		proposals: make(map[uint32]wire.Batch),
		nacked:    make(map[uint32]bool),
		coord:     make(map[uint32]*coordRound),
	}
	l.insts[k] = inst
	for l.suspected[l.coordinatorAt(k, inst.round)] {
		l.advanceRound(inst)
	}
	return inst
}

// Event implements stack.Layer: EvProposeReq sets the local initial value;
// EvRDeliver carries reliably broadcast consensus messages (decisions).
func (l *Layer) Event(ev stack.Event) {
	switch ev.Kind {
	case stack.EvProposeReq:
		l.propose(ev.Instance, ev.Batch)
	case stack.EvRDeliver:
		m, err := unmarshalMessage(ev.Data)
		if err != nil || m.Type != mtDecisionTag {
			return
		}
		l.handleDecisionTag(ev.From, m)
	case stack.EvConfig:
		l.applyView(ev.Instance, ev.Members)
	}
}

// propose records the local initial value for instance k (the paper's
// propose primitive) and, if this process coordinates round 1, proposes
// immediately — the suppressed estimate phase.
func (l *Layer) propose(k uint64, batch wire.Batch) {
	if l.pruned(k) {
		return // decided long ago; the subscriber already holds the outcome
	}
	inst := l.get(k)
	if inst.decided || inst.hasEstimate {
		return
	}
	l.ctx.Env().Counters().ConsensusStarted.Add(1)
	inst.estimate = batch
	inst.estTS = 0
	inst.hasEstimate = true
	if l.coordinatorAt(k, 1) == l.self && inst.round == 1 && !inst.coordRound(1).proposed {
		l.proposeRound(inst, 1, batch)
		return
	}
	// A later-round coordinatorship may have been waiting for a local
	// initial value (all collected estimates were bottom).
	rounds := make([]uint32, 0, len(inst.coord))
	for r := range inst.coord {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	for _, r := range rounds {
		if !inst.coord[r].proposed {
			l.coordMaybePropose(inst, r)
		}
	}
}

// proposeRound makes this process (the coordinator of round r) send its
// proposal and adopt it as its own estimate.
func (l *Layer) proposeRound(inst *instance, r uint32, batch wire.Batch) {
	cr := inst.coordRound(r)
	cr.proposal = batch
	cr.proposed = true
	cr.acks[l.self] = true
	inst.estimate = batch
	inst.estTS = r
	inst.hasEstimate = true
	if r > inst.round {
		inst.round = r
	}
	inst.proposals[r] = batch
	l.sendAll(message{Type: mtProposal, Instance: inst.k, Round: r, Batch: batch})
	l.checkDecide(inst, r)
}

// coordMaybePropose proposes for round r >= 2 once a majority of estimates
// (including the local one) is available and at least one carries a value.
func (l *Layer) coordMaybePropose(inst *instance, r uint32) {
	if r < 2 || inst.decided {
		return
	}
	cr := inst.coordRound(r)
	if cr.proposed {
		return
	}
	view := l.viewAt(inst.k)
	votes := 0
	for p := range cr.estimates {
		if view.Contains(p) {
			votes++ // only the governing view's members form the quorum
		}
	}
	if _, ok := cr.estimates[l.self]; !ok && view.Contains(l.self) {
		votes++ // the local estimate participates implicitly
	}
	if votes < view.Majority() {
		return
	}
	// Choose the estimate with the largest timestamp ("the eldest value").
	// Iterate in member order so tie-breaks are deterministic.
	best := estimateEntry{hasValue: inst.hasEstimate, ts: inst.estTS, batch: inst.estimate}
	for _, p := range view.Members {
		e, ok := cr.estimates[p]
		if !ok || !e.hasValue {
			continue
		}
		if !best.hasValue || e.ts > best.ts {
			best = e
		}
	}
	if !best.hasValue {
		return // no initial value anywhere yet; retried when one arrives
	}
	l.proposeRound(inst, r, best.batch)
}

// advanceRound moves the local progression past a suspected coordinator:
// nack the abandoned round and send the current estimate to the next
// coordinator (the paper's round-change path; never taken in good runs).
func (l *Layer) advanceRound(inst *instance) {
	r := inst.round
	if c := l.coordinatorAt(inst.k, r); c != l.self && !inst.nacked[r] {
		l.send(c, message{Type: mtNack, Instance: inst.k, Round: r})
	}
	inst.nacked[r] = true
	inst.round = r + 1
	l.ctx.Env().Counters().Rounds.Add(1)
	next := l.coordinatorAt(inst.k, inst.round)
	if next == l.self {
		l.coordMaybePropose(inst, inst.round)
		return
	}
	l.send(next, message{
		Type:     mtEstimate,
		Instance: inst.k,
		Round:    inst.round,
		TS:       inst.estTS,
		HasValue: inst.hasEstimate,
		Batch:    inst.estimate,
	})
}

// Receive implements stack.Layer.
func (l *Layer) Receive(from types.ProcessID, data []byte) error {
	m, err := unmarshalMessage(data)
	if err != nil {
		return fmt.Errorf("consensus: from %s: %w", from, err)
	}
	switch m.Type {
	case mtProposal:
		if l.pruned(m.Instance) {
			return nil // decided and pruned: never vote again (see prunedFloor)
		}
		l.handleProposal(from, m)
	case mtAck:
		if l.pruned(m.Instance) {
			return nil
		}
		l.handleAck(from, m)
	case mtNack:
		if l.pruned(m.Instance) {
			return nil // late nack for a settled instance: never resurrect it
		}
		l.handleNack(m)
	case mtEstimate:
		if l.pruned(m.Instance) {
			return nil
		}
		l.handleEstimate(from, m)
	case mtDecisionTag:
		// Decision tags normally arrive through reliable broadcast
		// (Event/EvRDeliver); accept direct ones for robustness.
		l.handleDecisionTag(from, m)
	case mtDecisionReq:
		l.handleDecisionReq(from, m)
	case mtDecisionFull:
		l.handleDecisionFull(m)
	default:
		return fmt.Errorf("consensus: unexpected message type %d from %s", uint8(m.Type), from)
	}
	return nil
}

func (l *Layer) handleProposal(from types.ProcessID, m message) {
	inst := l.get(m.Instance)
	if inst.decided {
		return
	}
	inst.proposals[m.Round] = m.Batch
	if inst.waitingDecision && m.Round == inst.decisionRound {
		l.decideLocal(inst, m.Batch, m.Round)
		return
	}
	if m.Round < inst.round {
		// Stale proposal from an abandoned round.
		l.send(from, message{Type: mtNack, Instance: inst.k, Round: m.Round})
		return
	}
	inst.round = m.Round
	if inst.nacked[m.Round] {
		return
	}
	// Adopt the proposal (CT locking) and acknowledge.
	inst.estimate = m.Batch
	inst.estTS = m.Round
	inst.hasEstimate = true
	l.send(from, message{Type: mtAck, Instance: inst.k, Round: m.Round})
}

func (l *Layer) handleAck(from types.ProcessID, m message) {
	inst := l.get(m.Instance)
	if inst.decided {
		return
	}
	cr := inst.coordRound(m.Round)
	if !cr.proposed {
		return // stray ack for a round this process never proposed
	}
	cr.acks[from] = true
	l.checkDecide(inst, m.Round)
}

// handleNack processes a nack for a round this process coordinated. The
// optimized protocol starts new rounds only on suspicion, which is
// complete under quasi-reliable channels EXCEPT when the proposal was
// lost to a crash-recovery restart (the restarted peer has no memory of
// it and no reason to suspect anyone): the nacker has abandoned the round
// for good, so an unsuspected coordinator stuck waiting for a majority
// would wait forever. Advancing the local round re-enters the rotation —
// always safe in Chandra–Toueg (the estimate locking rule protects
// agreement); in good runs nacks only follow wrong suspicions and the
// instance has usually decided before the nack arrives.
func (l *Layer) handleNack(m message) {
	inst := l.get(m.Instance)
	if inst.decided || m.Round != inst.round {
		return
	}
	cr := inst.coord[m.Round]
	if cr == nil || !cr.proposed {
		return
	}
	// Advance, then keep advancing past coordinators that are currently
	// suspected (the same cascade Suspect performs): stopping on a round
	// whose coordinator is down would send the estimate into a void.
	l.advanceRound(inst)
	for !inst.decided && l.suspected[l.coordinatorAt(inst.k, inst.round)] {
		l.advanceRound(inst)
	}
}

func (l *Layer) handleEstimate(from types.ProcessID, m message) {
	inst := l.get(m.Instance)
	if inst.decided {
		// Catch the lagging process up instead.
		l.send(from, message{Type: mtDecisionFull, Instance: inst.k, Round: inst.decisionRound, Batch: inst.decision})
		return
	}
	if l.coordinatorAt(m.Instance, m.Round) != l.self || m.Round < 2 {
		return
	}
	cr := inst.coordRound(m.Round)
	cr.estimates[from] = estimateEntry{from: from, ts: m.TS, hasValue: m.HasValue, batch: m.Batch}
	l.coordMaybePropose(inst, m.Round)
}

// checkDecide decides once a majority (including the coordinator itself)
// has acknowledged the round-r proposal.
func (l *Layer) checkDecide(inst *instance, r uint32) {
	cr := inst.coordRound(r)
	if inst.decided || !cr.proposed {
		return
	}
	view := l.viewAt(inst.k)
	votes := 0
	for p := range cr.acks {
		if view.Contains(p) {
			votes++ // only the governing view's members form the quorum
		}
	}
	if votes < view.Majority() {
		return
	}
	// Disseminate the DECISION tag through reliable broadcast, then decide
	// locally. Receivers decide the proposal they already hold.
	tag := message{Type: mtDecisionTag, Instance: inst.k, Round: r}
	l.ctx.Emit(stack.TagRBcast, stack.Event{Kind: stack.EvBroadcastReq, Data: tag.marshal()})
	l.decideLocal(inst, cr.proposal, r)
}

// decideLocal finalizes the instance at this process and notifies the
// subscriber layer.
func (l *Layer) decideLocal(inst *instance, batch wire.Batch, r uint32) {
	if inst.decided {
		return
	}
	inst.decided = true
	inst.decision = batch
	inst.decisionRound = r
	inst.waitingDecision = false
	l.decidedSet.Mark(inst.k)
	c := l.ctx.Env().Counters()
	c.ConsensusDecided.Add(1)
	c.BatchedMsgs.Add(int64(len(batch)))
	if inst.k > l.maxDecided {
		l.maxDecided = inst.k
	}
	l.ctx.Emit(l.subscriber, stack.Event{Kind: stack.EvDecide, Instance: inst.k, Batch: batch})
	l.prune()
}

// handleDecisionTag processes the reliably broadcast DECISION tag: decide
// the matching proposal if held, otherwise fetch the full decision.
func (l *Layer) handleDecisionTag(origin types.ProcessID, m message) {
	if l.pruned(m.Instance) {
		return // long decided and pruned: a late duplicate tag
	}
	inst := l.get(m.Instance)
	if inst.decided {
		return
	}
	if batch, ok := inst.proposals[m.Round]; ok {
		l.decideLocal(inst, batch, m.Round)
		return
	}
	inst.waitingDecision = true
	inst.decisionRound = m.Round
	if origin != l.self && origin != types.Nobody {
		l.send(origin, message{Type: mtDecisionReq, Instance: inst.k})
		l.ctx.Env().Counters().Retransmissions.Add(1)
	}
	if l.resend > 0 {
		l.ctx.SetTimer(timerResend, l.resend)
	}
}

func (l *Layer) handleDecisionReq(from types.ProcessID, m message) {
	inst := l.insts[m.Instance]
	if inst == nil || !inst.decided {
		return
	}
	l.send(from, message{Type: mtDecisionFull, Instance: inst.k, Round: inst.decisionRound, Batch: inst.decision})
	l.ctx.Env().Counters().Retransmissions.Add(1)
}

func (l *Layer) handleDecisionFull(m message) {
	if l.pruned(m.Instance) {
		return
	}
	inst := l.get(m.Instance)
	if inst.decided {
		return
	}
	l.decideLocal(inst, m.Batch, m.Round)
}

// Timer implements stack.Layer: retry decision fetches for instances stuck
// waiting on a DECISION tag whose proposal never arrived.
func (l *Layer) Timer(id engine.TimerID) {
	if id != timerResend {
		return
	}
	waiting := false
	for _, k := range l.sortedInstanceKeys() {
		inst := l.insts[k]
		if !inst.waitingDecision || inst.decided {
			continue
		}
		waiting = true
		req := message{Type: mtDecisionReq, Instance: inst.k}
		sent := l.sendAll(req)
		l.ctx.Env().Counters().Retransmissions.Add(int64(sent))
	}
	if waiting && l.resend > 0 {
		l.ctx.SetTimer(timerResend, l.resend)
	}
}

// sortedInstanceKeys returns the live instance numbers in ascending order,
// so that iteration-driven sends are deterministic (required for
// reproducible simulation).
func (l *Layer) sortedInstanceKeys() []uint64 {
	keys := make([]uint64, 0, len(l.insts))
	for k := range l.insts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Suspect implements stack.Layer: advance every undecided instance whose
// current coordinator is now suspected (the only trigger for new rounds in
// the optimized protocol).
func (l *Layer) Suspect(p types.ProcessID, suspected bool) {
	l.suspected[p] = suspected
	if !suspected {
		return
	}
	for _, k := range l.sortedInstanceKeys() {
		inst := l.insts[k]
		for !inst.decided && l.suspected[l.coordinatorAt(k, inst.round)] {
			l.advanceRound(inst)
		}
	}
}

// prune drops decided instances that fell behind the retention horizon.
// Undecided instances are never pruned, whatever their number: with
// pipelining, up to PipelineDepth instances above maxDecided are
// legitimately still running.
func (l *Layer) prune() {
	if len(l.insts) <= l.horizon || l.maxDecided < uint64(l.horizon) {
		return
	}
	cutoff := l.maxDecided - uint64(l.horizon)
	for k, inst := range l.insts {
		if inst.decided && k <= cutoff {
			delete(l.insts, k)
		}
	}
}

// send marshals and transmits one consensus message, accounting payload
// bytes for the data-volume analysis and whole-frame bytes as ordering
// traffic (OrderedBytes): every consensus frame exists only to order, so
// its full wire size — batch included — is the cost of ordering. Under
// digest ordering the batch is a 16-byte descriptor body and this counter
// stops scaling with payload size; that drop is the figure's headline.
func (l *Layer) send(to types.ProcessID, m message) {
	data := m.marshal()
	c := l.ctx.Env().Counters()
	c.PayloadBytesSent.Add(int64(m.Batch.PayloadBytes()))
	c.OrderedBytes.Add(int64(len(data)))
	l.ctx.NetSend(to, data)
}

// sendAll transmits one consensus message to every other member of the
// view governing its instance, returning the number of sends.
func (l *Layer) sendAll(m message) int {
	data := m.marshal()
	members := l.viewAt(m.Instance).Members
	sends := 0
	for _, p := range members {
		if p != l.self {
			sends++
		}
	}
	c := l.ctx.Env().Counters()
	c.PayloadBytesSent.Add(int64(m.Batch.PayloadBytes() * sends))
	c.OrderedBytes.Add(int64(len(data) * sends))
	l.ctx.NetSendMembers(members, data)
	return sends
}
