package consensus

import (
	"reflect"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/enginetest"
	"modab/internal/rbcast"
	"modab/internal/stack"
	"modab/internal/types"
	"modab/internal/wire"
)

// decider records EvDecide events; it stands in for the abcast layer.
type decider struct {
	decisions map[uint64]wire.Batch
}

var _ stack.Layer = (*decider)(nil)

func (d *decider) Tag() stack.Tag      { return stack.TagABcast }
func (d *decider) Init(*stack.Context) {}
func (d *decider) Start()              {}
func (d *decider) Event(ev stack.Event) {
	if ev.Kind == stack.EvDecide {
		if _, dup := d.decisions[ev.Instance]; dup {
			panic("duplicate decision event")
		}
		d.decisions[ev.Instance] = ev.Batch
	}
}
func (d *decider) Receive(types.ProcessID, []byte) error { return nil }
func (d *decider) Timer(engine.TimerID)                  {}
func (d *decider) Suspect(types.ProcessID, bool)         {}

// harness is a fully wired consensus group (rbcast + consensus + decider
// per process) over the enginetest network.
type harness struct {
	n       int
	envs    []*enginetest.Env
	stacks  []*stack.Stack
	layers  []*Layer
	decided []*decider
	net     *enginetest.Net
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{
		n:       n,
		envs:    make([]*enginetest.Env, n),
		stacks:  make([]*stack.Stack, n),
		layers:  make([]*Layer, n),
		decided: make([]*decider, n),
	}
	for i := 0; i < n; i++ {
		h.envs[i] = enginetest.New(types.ProcessID(i), n)
		h.layers[i] = New(stack.TagABcast, 50*time.Millisecond, 16)
		h.decided[i] = &decider{decisions: make(map[uint64]wire.Batch)}
		rb := rbcast.New(stack.TagConsensus, rbcast.Majority, 0)
		h.stacks[i] = stack.New(h.envs[i], rb, h.layers[i], h.decided[i])
		h.stacks[i].Start()
	}
	h.net = &enginetest.Net{
		Envs: h.envs,
		Deliver: func(to, from types.ProcessID, data []byte) error {
			return h.stacks[to].Receive(from, data)
		},
	}
	return h
}

func (h *harness) propose(p int, k uint64, batch wire.Batch) {
	h.stacks[p].Emit(stack.TagConsensus, stack.Event{Kind: stack.EvProposeReq, Instance: k, Batch: batch})
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	if err := h.net.Run(); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) suspect(p int, target types.ProcessID) {
	h.stacks[p].Suspect(target, true)
}

// checkAgreement asserts every process decided instance k with the same
// batch, and returns it.
func (h *harness) checkAgreement(t *testing.T, k uint64, expectAll bool) wire.Batch {
	t.Helper()
	var ref wire.Batch
	found := false
	for p := 0; p < h.n; p++ {
		b, ok := h.decided[p].decisions[k]
		if !ok {
			if expectAll {
				t.Fatalf("p%d did not decide instance %d", p+1, k)
			}
			continue
		}
		if !found {
			ref, found = b, true
			continue
		}
		if !reflect.DeepEqual(ref.IDs(), b.IDs()) {
			t.Fatalf("agreement violation on instance %d: %v vs %v", k, ref.IDs(), b.IDs())
		}
	}
	if !found {
		t.Fatalf("nobody decided instance %d", k)
	}
	return ref
}

func batchOf(sender types.ProcessID, seqs ...uint64) wire.Batch {
	b := make(wire.Batch, 0, len(seqs))
	for _, s := range seqs {
		b = append(b, wire.AppMsg{ID: types.MsgID{Sender: sender, Seq: s}, Body: []byte{byte(s)}})
	}
	return b
}

func TestGoodRunDecidesEverywhere(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7} {
		h := newHarness(t, n)
		val := batchOf(0, 1, 2)
		for p := 0; p < n; p++ {
			h.propose(p, 1, batchOf(types.ProcessID(p), 1, 2))
		}
		h.run(t)
		got := h.checkAgreement(t, 1, true)
		// Validity: the decision is the round-1 coordinator's value.
		if !reflect.DeepEqual(got.IDs(), val.IDs()) {
			t.Fatalf("n=%d decided %v, want coordinator value %v", n, got.IDs(), val.IDs())
		}
	}
}

// TestGoodRunMessageCount pins the §5.2.1 consensus cost: proposal (n-1) +
// acks (n-1) + decision rbcast (n-1)·⌊(n+1)/2⌋.
func TestGoodRunMessageCount(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		h := newHarness(t, n)
		for p := 0; p < n; p++ {
			h.propose(p, 1, batchOf(types.ProcessID(p), 1))
		}
		h.run(t)
		h.checkAgreement(t, 1, true)
		want := (n - 1) + (n - 1) + (n-1)*((n+1)/2)
		if h.net.Delivered != want {
			t.Errorf("n=%d: %d messages, want %d", n, h.net.Delivered, want)
		}
	}
}

func TestOnlyCoordinatorValueDecidedInRound1(t *testing.T) {
	h := newHarness(t, 3)
	// Non-coordinators propose; nothing can be decided yet.
	h.propose(1, 1, batchOf(1, 1))
	h.propose(2, 1, batchOf(2, 1))
	h.run(t)
	for p := 0; p < 3; p++ {
		if len(h.decided[p].decisions) != 0 {
			t.Fatal("decided without a coordinator proposal")
		}
	}
	// The coordinator's proposal completes the instance.
	h.propose(0, 1, batchOf(0, 7))
	h.run(t)
	got := h.checkAgreement(t, 1, true)
	if got[0].ID.Sender != 0 || got[0].ID.Seq != 7 {
		t.Fatalf("decided %v, want p1#7", got.IDs())
	}
}

func TestDecisionTagWithoutProposalTriggersRecovery(t *testing.T) {
	h := newHarness(t, 3)
	// Drop the coordinator's proposal to p3 only: p3 will rdeliver the
	// DECISION tag without holding the proposal and must fetch it.
	h.net.Drop = func(from, to types.ProcessID, data []byte) bool {
		return from == 0 && to == 2 && data[0] == byte(stack.TagConsensus) &&
			msgTypeOf(data[1:]) == mtProposal
	}
	for p := 0; p < 3; p++ {
		h.propose(p, 1, batchOf(types.ProcessID(p), 1))
	}
	h.run(t)
	h.checkAgreement(t, 1, true)
	if h.envs[2].Cnt.Retransmissions.Load() == 0 {
		t.Error("p3 decided without the recovery path?")
	}
}

// msgTypeOf peeks at a consensus wire message's type byte.
func msgTypeOf(data []byte) msgType {
	if len(data) == 0 {
		return 0
	}
	return msgType(data[0])
}

func TestCoordinatorCrashRoundChange(t *testing.T) {
	h := newHarness(t, 3)
	// p1 (coordinator) is crashed: all its messages are dropped.
	h.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return from == 0 || to == 0
	}
	h.propose(1, 1, batchOf(1, 5))
	h.propose(2, 1, batchOf(2, 6))
	h.run(t)
	// Nothing decided yet (round 1 coordinator is dead, nobody suspects).
	if len(h.decided[1].decisions)+len(h.decided[2].decisions) != 0 {
		t.Fatal("decided without coordinator")
	}
	// Suspicion triggers the round change; p2 coordinates round 2.
	h.suspect(1, 0)
	h.suspect(2, 0)
	h.run(t)
	got := h.checkAgreement(t, 1, false)
	if len(got) == 0 {
		t.Fatal("empty decision")
	}
	if h.envs[1].Cnt.Rounds.Load() == 0 {
		t.Error("no round change counted")
	}
}

// TestLockingPreservesAgreementOnWrongSuspicion reproduces the classic CT
// safety scenario: the round-1 coordinator decides v, while wrongly
// suspected; the round-2 coordinator must decide the same v.
func TestLockingPreservesAgreementOnWrongSuspicion(t *testing.T) {
	h := newHarness(t, 3)
	// p2 never receives the round-1 proposal (only p3 acks it).
	h.net.Drop = func(from, to types.ProcessID, data []byte) bool {
		return from == 0 && to == 1 && data[0] == byte(stack.TagConsensus) &&
			msgTypeOf(data[1:]) == mtProposal
	}
	v := batchOf(0, 42)
	h.propose(0, 1, v)
	h.propose(1, 1, batchOf(1, 9))
	h.propose(2, 1, batchOf(2, 8))
	h.run(t)
	// p1 decided v in round 1 (self ack + p3's ack = majority).
	if got, ok := h.decided[0].decisions[1]; !ok || got[0].ID.Seq != 42 {
		t.Fatalf("coordinator did not decide round 1: %v", got.IDs())
	}
	// Now p2 and p3 wrongly suspect p1 and run round 2 (coordinator p2).
	h.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return from == 0 || to == 0 // p1 partitioned away after deciding
	}
	h.suspect(1, 0)
	h.suspect(2, 0)
	h.run(t)
	got := h.checkAgreement(t, 1, false)
	if len(got) != 1 || got[0].ID.Seq != 42 {
		t.Fatalf("locking broken: round-2 decision %v != locked p1#42", got.IDs())
	}
}

func TestResendTimerRecoversOrphanedDecisionTag(t *testing.T) {
	h := newHarness(t, 3)
	// p3 misses BOTH the proposal and any DecisionFull from p1 (as if p1
	// crashed right after rbcasting the tag); the tag still reaches p3 via
	// the relay. p3's resend timer must then fetch the decision from p2.
	h.net.Drop = func(from, to types.ProcessID, data []byte) bool {
		if from != 0 || to != 2 || data[0] != byte(stack.TagConsensus) {
			return false
		}
		mt := msgTypeOf(data[1:])
		return mt == mtProposal || mt == mtDecisionFull
	}
	for p := 0; p < 3; p++ {
		h.propose(p, 1, batchOf(types.ProcessID(p), 1))
	}
	h.run(t)
	if _, ok := h.decided[2].decisions[1]; ok {
		t.Fatal("p3 decided without proposal or recovery")
	}
	// Fire p3's resend timer (the driver would do this after ResendEvery).
	for _, tm := range h.envs[2].Timers {
		if !tm.Canceled {
			h.stacks[2].HandleTimer(tm.ID)
			break
		}
	}
	h.run(t)
	h.checkAgreement(t, 1, true)
}

func TestInstancesAreIndependent(t *testing.T) {
	h := newHarness(t, 3)
	for k := uint64(1); k <= 5; k++ {
		for p := 0; p < 3; p++ {
			h.propose(p, k, batchOf(types.ProcessID(p), k))
		}
	}
	h.run(t)
	for k := uint64(1); k <= 5; k++ {
		got := h.checkAgreement(t, k, true)
		if got[0].ID.Seq != k {
			t.Fatalf("instance %d decided %v", k, got.IDs())
		}
	}
}

func TestPruneBoundsInstanceMap(t *testing.T) {
	h := newHarness(t, 3)
	const horizon = 16 // as configured in newHarness
	for k := uint64(1); k <= 3*horizon; k++ {
		for p := 0; p < 3; p++ {
			h.propose(p, k, batchOf(types.ProcessID(p), k))
		}
		h.run(t)
	}
	for p := 0; p < 3; p++ {
		if got := len(h.layers[p].insts); got > horizon+1 {
			t.Fatalf("p%d retains %d instances, horizon %d", p+1, got, horizon)
		}
	}
}

func TestProposeAfterDecideIgnored(t *testing.T) {
	h := newHarness(t, 3)
	for p := 0; p < 3; p++ {
		h.propose(p, 1, batchOf(types.ProcessID(p), 1))
	}
	h.run(t)
	started := h.envs[0].Cnt.ConsensusStarted.Load()
	h.propose(0, 1, batchOf(0, 99)) // late re-propose
	h.run(t)
	if h.envs[0].Cnt.ConsensusStarted.Load() != started {
		t.Fatal("re-propose after decide started a new consensus")
	}
	if got := h.decided[0].decisions[1]; got[0].ID.Seq != 1 {
		t.Fatal("decision changed after re-propose")
	}
}

func TestMalformedConsensusMessage(t *testing.T) {
	h := newHarness(t, 3)
	err := h.stacks[0].Receive(1, []byte{byte(stack.TagConsensus), 0xFF, 0, 1})
	if err == nil {
		t.Fatal("malformed message accepted")
	}
}

func TestSuspectedAtCreationStartsAtLaterRound(t *testing.T) {
	h := newHarness(t, 3)
	// Everyone suspects p1 before any instance exists.
	h.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return from == 0 || to == 0
	}
	h.suspect(1, 0)
	h.suspect(2, 0)
	h.propose(1, 1, batchOf(1, 3))
	h.propose(2, 1, batchOf(2, 4))
	h.run(t)
	got := h.checkAgreement(t, 1, false)
	if len(got) == 0 {
		t.Fatal("no decision with pre-suspected coordinator")
	}
}
