package consensus

import (
	"testing"

	"modab/internal/stack"
	"modab/internal/types"
)

// TestDuplicateAcksDoNotFakeMajority replays one ack many times; the
// coordinator must not decide off a single acknowledging process in a
// group of 5 (majority 3 = self + 2 distinct others).
func TestDuplicateAcksDoNotFakeMajority(t *testing.T) {
	h := newHarness(t, 5)
	// Only p2's messages reach p1; everyone else is partitioned away.
	h.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return !(from == 0 || (from == 1 && to == 0))
	}
	h.propose(0, 1, batchOf(0, 1))
	h.run(t)
	// p1 has self-ack + p2's ack = 2 < majority 3.
	if _, decided := h.decided[0].decisions[1]; decided {
		t.Fatal("decided with 2 of 5 acks")
	}
	// Replay p2's ack a few times by re-delivering manually.
	ack := message{Type: mtAck, Instance: 1, Round: 1}
	for i := 0; i < 5; i++ {
		if err := h.stacks[0].Receive(1,
			append([]byte{byte(stack.TagConsensus)}, ack.marshal()...)); err != nil {
			t.Fatal(err)
		}
	}
	if _, decided := h.decided[0].decisions[1]; decided {
		t.Fatal("duplicate acks counted as distinct processes")
	}
}

// TestStaleProposalNacked: a proposal for an abandoned round must be
// nacked, not adopted.
func TestStaleProposalNacked(t *testing.T) {
	h := newHarness(t, 3)
	// p3 advances to round 2 by suspecting p1 before any proposal.
	h.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return true // isolate everything; we drive by hand
	}
	h.suspect(2, 0)
	h.run(t)
	// Now p1's round-1 proposal arrives late at p3.
	h.net.Drop = nil
	prop := message{Type: mtProposal, Instance: 1, Round: 1, Batch: batchOf(0, 1)}
	if err := h.stacks[2].Receive(0,
		append([]byte{byte(stack.TagConsensus)}, prop.marshal()...)); err != nil {
		t.Fatal(err)
	}
	// p3 must NOT have adopted round 1 (its round is 2) — it nacks, and
	// no ack is recorded at p1.
	if err := h.net.Run(); err != nil {
		t.Fatal(err)
	}
	inst := h.layers[0].insts[1]
	if inst != nil && len(inst.coordRound(1).acks) > 1 {
		t.Fatal("stale proposal was acked")
	}
}

// TestAckForUnproposedRoundIgnored: stray acks for rounds this process
// never proposed must not corrupt coordinator state.
func TestAckForUnproposedRoundIgnored(t *testing.T) {
	h := newHarness(t, 3)
	ack := message{Type: mtAck, Instance: 7, Round: 1}
	if err := h.stacks[0].Receive(1,
		append([]byte{byte(stack.TagConsensus)}, ack.marshal()...)); err != nil {
		t.Fatal(err)
	}
	if _, decided := h.decided[0].decisions[7]; decided {
		t.Fatal("stray ack caused a decision")
	}
}

// TestDecisionReqForUnknownInstanceIgnored: a catch-up request for an
// instance this process knows nothing about is dropped silently.
func TestDecisionReqForUnknownInstanceIgnored(t *testing.T) {
	h := newHarness(t, 3)
	req := message{Type: mtDecisionReq, Instance: 42}
	if err := h.stacks[1].Receive(2,
		append([]byte{byte(stack.TagConsensus)}, req.marshal()...)); err != nil {
		t.Fatal(err)
	}
	if len(h.envs[1].Sends) != 0 {
		t.Fatal("replied to a request for an unknown instance")
	}
}

// TestMessageRoundTrips covers every consensus message variant through
// the codec.
func TestMessageRoundTrips(t *testing.T) {
	msgs := []message{
		{Type: mtEstimate, Instance: 9, Round: 3, TS: 2, HasValue: true, Batch: batchOf(1, 4, 5)},
		{Type: mtEstimate, Instance: 9, Round: 3, HasValue: false, Batch: nil},
		{Type: mtProposal, Instance: 1, Round: 1, Batch: batchOf(0, 1)},
		{Type: mtAck, Instance: 2, Round: 7},
		{Type: mtNack, Instance: 2, Round: 7},
		{Type: mtDecisionTag, Instance: 3, Round: 1},
		{Type: mtDecisionReq, Instance: 4},
		{Type: mtDecisionFull, Instance: 4, Round: 2, Batch: batchOf(2, 8)},
	}
	for _, m := range msgs {
		got, err := unmarshalMessage(m.marshal())
		if err != nil {
			t.Fatalf("%s: %v", m.Type, err)
		}
		if got.Type != m.Type || got.Instance != m.Instance || got.Round != m.Round ||
			got.TS != m.TS || got.HasValue != m.HasValue || len(got.Batch) != len(m.Batch) {
			t.Fatalf("%s: round trip mismatch: %+v vs %+v", m.Type, got, m)
		}
	}
	if _, err := unmarshalMessage([]byte{0xFF}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := unmarshalMessage(nil); err == nil {
		t.Fatal("empty message accepted")
	}
}
