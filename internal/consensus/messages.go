package consensus

import (
	"fmt"

	"modab/internal/types"
	"modab/internal/wire"
)

// msgType enumerates the consensus wire messages.
type msgType uint8

const (
	// mtEstimate carries a process's current estimate to the coordinator
	// of a round >= 2 (the round-1 estimate phase is suppressed, §3.2).
	mtEstimate msgType = iota + 1
	// mtProposal carries the coordinator's proposal for a round.
	mtProposal
	// mtAck acknowledges a proposal to its coordinator.
	mtAck
	// mtNack rejects a round after suspecting its coordinator.
	mtNack
	// mtDecisionTag is the small DECISION tag reliably broadcast instead
	// of the full decision (§3.2 optimization).
	mtDecisionTag
	// mtDecisionReq asks a peer for the full decision of an instance
	// (recovery when the tag arrives without the matching proposal).
	mtDecisionReq
	// mtDecisionFull carries a full decision in reply to mtDecisionReq.
	mtDecisionFull
)

// String implements fmt.Stringer.
func (t msgType) String() string {
	switch t {
	case mtEstimate:
		return "estimate"
	case mtProposal:
		return "proposal"
	case mtAck:
		return "ack"
	case mtNack:
		return "nack"
	case mtDecisionTag:
		return "decision-tag"
	case mtDecisionReq:
		return "decision-req"
	case mtDecisionFull:
		return "decision-full"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// message is the uniform consensus wire unit; variant fields are used
// according to Type.
type message struct {
	Type     msgType
	Instance uint64
	Round    uint32
	// TS is the round in which the estimate was last adopted (mtEstimate).
	TS uint32
	// HasValue reports whether the estimate carries a value (mtEstimate).
	HasValue bool
	// Batch carries the value (mtEstimate, mtProposal, mtDecisionFull).
	Batch wire.Batch
}

// headerBytes is the fixed encoded size of the common message header.
const headerBytes = 1 + 8 + 4

func (m message) marshal() []byte {
	size := headerBytes
	switch m.Type {
	case mtEstimate:
		size += 4 + 1 + m.Batch.WireSize()
	case mtProposal, mtDecisionFull:
		size += m.Batch.WireSize()
	}
	w := wire.NewWriter(size)
	w.Uint8(uint8(m.Type))
	w.Uint64(m.Instance)
	w.Uint32(m.Round)
	switch m.Type {
	case mtEstimate:
		w.Uint32(m.TS)
		w.Bool(m.HasValue)
		m.Batch.Marshal(w)
	case mtProposal, mtDecisionFull:
		m.Batch.Marshal(w)
	}
	return w.Bytes()
}

func unmarshalMessage(data []byte) (message, error) {
	r := wire.NewReader(data)
	var m message
	m.Type = msgType(r.Uint8())
	m.Instance = r.Uint64()
	m.Round = r.Uint32()
	switch m.Type {
	case mtEstimate:
		m.TS = r.Uint32()
		m.HasValue = r.Bool()
		m.Batch = wire.UnmarshalBatch(r)
	case mtProposal, mtDecisionFull:
		m.Batch = wire.UnmarshalBatch(r)
	case mtAck, mtNack, mtDecisionTag, mtDecisionReq:
		// Header only.
	default:
		return message{}, fmt.Errorf("consensus: unknown message type %d", uint8(m.Type))
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return message{}, fmt.Errorf("consensus: decode %s: %w", m.Type, err)
	}
	return m, nil
}

// estimateEntry is one collected estimate at a coordinator.
type estimateEntry struct {
	from     types.ProcessID
	ts       uint32
	hasValue bool
	batch    wire.Batch
}
