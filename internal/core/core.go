// Package core assembles the pieces of the library into the high-level
// API surface that the root package modab re-exports: single real-time
// nodes (over any transport), whole in-process groups (over the in-memory
// network), TCP groups, and simulated clusters.
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/obs"
	"modab/internal/recovery"
	"modab/internal/rsm"
	"modab/internal/runtime"
	"modab/internal/stream"
	"modab/internal/trace"
	"modab/internal/transport"
	"modab/internal/types"
	"modab/internal/wal"
)

// DurabilityOptions enables the crash-recovery subsystem on the
// real-time drivers: each process appends its admissions and consensus
// decisions to a write-ahead log under Dir, and a restarted process
// replays that log and performs state transfer before resuming (see
// internal/recovery). A group places process i's log in Dir/p<i>; a
// single TCP node logs directly in Dir.
type DurabilityOptions struct {
	// Dir is the root directory of the write-ahead log(s).
	Dir string
	// Log tunes the segmented log (fsync policy, segment size); the zero
	// value means wal.SyncAlways with 4 MiB segments.
	Log wal.Options
}

// open opens the log of process p under the configured root, wiring the
// process's observability recorder (may be nil) into the log's fsync
// instrumentation.
func (d *DurabilityOptions) open(p types.ProcessID, rec *obs.Recorder) (recovery.Store, error) {
	opts := d.Log
	opts.Obs = rec
	return wal.Open(filepath.Join(d.Dir, fmt.Sprintf("p%d", p)), opts)
}

// DeliverFunc observes one adelivery at one process of a group.
type DeliverFunc func(p types.ProcessID, d engine.Delivery)

// GroupOptions carries the tunables of an in-process group beyond its
// size and stack. The zero value is fully usable.
type GroupOptions struct {
	// Engine optionally overrides the protocol tunables (zero value means
	// engine.DefaultConfig(n)).
	Engine engine.Config
	// HeartbeatPeriod and SuspectTimeout parameterize each node's failure
	// detector (zero values use the runtime defaults).
	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration
	// DeliveryBuffer is the default per-subscriber buffer for Deliveries;
	// 0 means stream.DefaultBuffer.
	DeliveryBuffer int
	// DeliveryOverflow is the default overflow policy for Deliveries.
	DeliveryOverflow stream.Policy
	// OnDeliver, when set, observes every adelivery — a convenience
	// adapter over the delivery stream (see Group.Deliveries).
	OnDeliver DeliverFunc
	// Durability, when non-nil, gives every node a write-ahead log under
	// Durability.Dir and enables Group.Restart.
	Durability *DurabilityOptions
	// StateMachine, when non-nil, gives every node a replicated state
	// machine fed from its delivery path (the factory runs once per node
	// incarnation). With Durability, snapshots persist under the node's
	// log directory and restarts are snapshot-anchored.
	StateMachine func() rsm.StateMachine
	// SnapshotEvery is the snapshot cadence in instances; 0 disables
	// automatic snapshots.
	SnapshotEvery uint64
	// Observability, when non-nil, gives every node an obs.Recorder
	// (latency histograms plus the sampled lifecycle tracer; the pointed-to
	// zero value selects the defaults). Recorders survive Crash/Restart,
	// accumulating across incarnations; read them with Group.Obs.
	Observability *obs.Config
}

// snapshotStore builds the snapshot store of one process: files alongside
// the write-ahead log when the group is durable, memory otherwise.
func snapshotStore(d *DurabilityOptions, dir string) (rsm.Store, error) {
	if d == nil {
		return rsm.NewMemStore(), nil
	}
	return rsm.OpenFileStore(dir)
}

// Group is a set of real-time nodes connected by an in-memory network —
// the quickest way to use the library inside one OS process.
type Group struct {
	// mu guards nodes (and the membership state below): Crash, Restart,
	// Close and joiner spawns swap or grow entries concurrently with
	// submissions reading them.
	mu    sync.RWMutex
	nodes []*runtime.Node
	net   *transport.MemNetwork
	hub   *stream.Hub[engine.Event]
	start time.Time

	// bootN is the boot group size — the epoch-0 view every incarnation
	// rebuilds its config history from (runtime Options.N must stay the
	// boot size across restarts and joins; the current membership is the
	// engines' business, not a driver constant).
	bootN int
	// nextID allocates dense joiner IDs; pending marks IDs whose OpAdd is
	// in flight so the first applied view naming one spawns it exactly
	// once. spawnErr surfaces a failed spawn to the waiting Add. closed
	// stops late spawns after Close.
	nextID   types.ProcessID
	pending  map[types.ProcessID]bool
	spawnErr map[types.ProcessID]error
	closed   bool
	// viewCh is closed and replaced on every applied view change and
	// joiner spawn — a condition broadcast for Add/Remove waiters.
	viewMu sync.Mutex
	viewCh chan struct{}

	// lifecycle serializes Crash, Restart and Close with each other (but
	// not with submissions): a Restart overlapping a Crash of the same
	// process could otherwise reopen the write-ahead log while the dying
	// incarnation is still appending to it.
	lifecycle sync.Mutex

	// stack and opts are retained so Restart can rebuild a node.
	stack types.Stack
	opts  GroupOptions

	// obsRecs holds the per-process observability recorders
	// (GroupOptions.Observability); like counters they outlive node
	// incarnations, so Restart hands the new node its predecessor's
	// recorder.
	obsRecs []*obs.Recorder

	// streamDropped counts drops at group-level subscriptions, which are
	// not attributable to one process; Stats folds it into the totals.
	streamDropped atomic.Int64
}

// NewGroup starts an n-process group running the given stack over an
// in-memory network.
func NewGroup(n int, stack types.Stack, opts GroupOptions) (*Group, error) {
	if n < 1 {
		return nil, types.ErrEmptyGroup
	}
	net := transport.NewMemNetwork()
	g := &Group{
		net:      net,
		nodes:    make([]*runtime.Node, n),
		start:    time.Now(),
		stack:    stack,
		opts:     opts,
		bootN:    n,
		nextID:   types.ProcessID(n),
		pending:  make(map[types.ProcessID]bool),
		spawnErr: make(map[types.ProcessID]error),
		viewCh:   make(chan struct{}),
	}
	g.hub = stream.NewHub[engine.Event](opts.DeliveryBuffer, opts.DeliveryOverflow,
		func() { g.streamDropped.Add(1) })
	if opts.Observability != nil {
		g.obsRecs = make([]*obs.Recorder, n)
		for i := range g.obsRecs {
			g.obsRecs[i] = obs.NewRecorder(*opts.Observability)
		}
	}
	for i := 0; i < n; i++ {
		node, err := g.startNode(types.ProcessID(i), net.Endpoint(types.ProcessID(i)), nil)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("core: start node %d: %w", i, err)
		}
		g.nodes[i] = node
	}
	return g, nil
}

// startNode builds one node of the group on the given transport endpoint,
// opening its write-ahead log when durability is configured. A non-nil
// initView marks the node a joiner: it starts from the admitting view
// and catches up through state transfer instead of assuming the boot
// group.
func (g *Group) startNode(p types.ProcessID, ep transport.Transport, initView *member.View) (*runtime.Node, error) {
	var rec *obs.Recorder
	g.mu.RLock()
	if g.obsRecs != nil && int(p) < len(g.obsRecs) {
		rec = g.obsRecs[p]
	}
	g.mu.RUnlock()
	var store recovery.Store
	if g.opts.Durability != nil {
		var err error
		store, err = g.opts.Durability.open(p, rec)
		if err != nil {
			return nil, err
		}
	}
	cb := func(d engine.Delivery) {
		if fn := g.opts.OnDeliver; fn != nil {
			fn(p, d)
		}
		g.hub.Publish(engine.Event{P: p, D: d, At: time.Since(g.start)})
	}
	var sm rsm.StateMachine
	var snaps rsm.Store
	if g.opts.StateMachine != nil {
		sm = g.opts.StateMachine()
		var err error
		snaps, err = snapshotStore(g.opts.Durability,
			filepath.Join(dirOf(g.opts.Durability), fmt.Sprintf("p%d", p), "snap"))
		if err != nil {
			if store != nil {
				_ = store.Close()
			}
			return nil, err
		}
	}
	node, err := runtime.NewNode(runtime.Options{
		Self:             p,
		N:                g.bootN,
		Stack:            g.stack,
		Engine:           g.opts.Engine,
		Transport:        ep,
		Store:            store,
		OnDeliver:        cb,
		HeartbeatPeriod:  g.opts.HeartbeatPeriod,
		SuspectTimeout:   g.opts.SuspectTimeout,
		DeliveryBuffer:   g.opts.DeliveryBuffer,
		DeliveryOverflow: g.opts.DeliveryOverflow,
		StateMachine:     sm,
		SnapshotStore:    snaps,
		SnapshotEvery:    g.opts.SnapshotEvery,
		Obs:              rec,
		InitialView:      initView,
		OnConfig:         func(v member.View, op member.Op) { g.onViewChange(v, op) },
	})
	if err != nil && store != nil {
		_ = store.Close()
	}
	return node, err
}

// dirOf is the durability root, or empty without durability (the snapshot
// store is then in-memory and the path unused).
func dirOf(d *DurabilityOptions) string {
	if d == nil {
		return ""
	}
	return d.Dir
}

// Restart brings a crashed process back — the crash-recovery model. It
// requires GroupOptions.Durability: the new incarnation replays the
// process's write-ahead log, announces itself, and catches up on missed
// decisions via state transfer before resuming. The survivors' failure
// detectors unsuspect it as soon as they hear from it again.
func (g *Group) Restart(p int) error {
	if g.opts.Durability == nil {
		return fmt.Errorf("%w: Restart requires GroupOptions.Durability", types.ErrBadConfig)
	}
	// Serialize against Crash/Close: the old incarnation must have fully
	// released its write-ahead log before this one reopens it.
	g.lifecycle.Lock()
	defer g.lifecycle.Unlock()
	g.mu.RLock()
	inRange := p >= 0 && p < len(g.nodes)
	running := inRange && g.nodes[p] != nil
	size := len(g.nodes)
	g.mu.RUnlock()
	if !inRange {
		return fmt.Errorf("%w: p%d of a group of %d", types.ErrBadConfig, p+1, size)
	}
	if running {
		return fmt.Errorf("%w: p%d is still running", types.ErrBadConfig, p+1)
	}
	pid := types.ProcessID(p)
	node, err := g.startNode(pid, g.net.Reset(pid), nil)
	if err != nil {
		return fmt.Errorf("core: restart node %d: %w", p, err)
	}
	g.mu.Lock()
	g.nodes[p] = node
	g.mu.Unlock()
	return nil
}

// Add admits a new process to the group: an OpAdd rides the total order
// through a live member, and when the first process applies the view
// that admits it, the joiner is spawned on a fresh in-memory endpoint
// (with its own write-ahead log and snapshot store when the group is
// durable) and catches up through the ordinary restart-style state
// transfer. Add blocks until the joiner is running and returns its ID.
func (g *Group) Add(ctx context.Context) (types.ProcessID, error) {
	if g.opts.Durability == nil {
		// Members without write-ahead logs cannot serve the decided
		// prefix, so the joiner's state transfer would never finish.
		return 0, fmt.Errorf("%w: Add requires GroupOptions.Durability", types.ErrBadConfig)
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return 0, types.ErrStopped
	}
	target := g.nextID
	g.nextID++
	g.pending[target] = true
	g.mu.Unlock()
	if err := g.submitConfig(ctx, member.Op{Kind: member.OpAdd, Target: target}, -1); err != nil {
		g.mu.Lock()
		delete(g.pending, target)
		g.mu.Unlock()
		return 0, err
	}
	for {
		wait := g.viewChanged()
		g.mu.RLock()
		var node *runtime.Node
		if int(target) < len(g.nodes) {
			node = g.nodes[target]
		}
		err := g.spawnErr[target]
		g.mu.RUnlock()
		if err != nil {
			return 0, err
		}
		if node != nil {
			return target, nil
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// Remove retires process p: an OpRemove rides the total order through a
// surviving member, and once every live process has applied the view
// that excludes p, the process is decommissioned (crashed). Removing an
// already-crashed process works — that is the permanent-node-loss
// recovery: the group stops waiting for it and quorums shrink.
func (g *Group) Remove(ctx context.Context, p int) error {
	target := types.ProcessID(p)
	if err := g.submitConfig(ctx, member.Op{Kind: member.OpRemove, Target: target}, p); err != nil {
		return err
	}
	for {
		wait := g.viewChanged()
		if g.removedEverywhere(target) {
			return g.Crash(p)
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// View returns process p's newest locally applied membership view (the
// zero view after Crash(p) or for an out-of-range index).
func (g *Group) View(p int) member.View {
	node, err := g.node(p)
	if err != nil {
		return member.View{}
	}
	return node.CurrentView()
}

// Views returns process p's locally applied view history, oldest first
// (nil after Crash(p); a joiner's history starts at its admitting view).
func (g *Group) Views(p int) []member.View {
	node, err := g.node(p)
	if err != nil {
		return nil
	}
	return node.Views()
}

// submitConfig drives one config op through a live member, retrying
// flow-control rejections (the op is an ordinary abcast competing for
// window slots). avoid names a process not to use as sponsor — the
// remove target; -1 for none.
func (g *Group) submitConfig(ctx context.Context, op member.Op, avoid int) error {
	for {
		node := g.sponsor(avoid)
		if node == nil {
			return types.ErrCrashed
		}
		_, err := node.SubmitConfig(op)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, types.ErrFlowControl):
			select {
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		default:
			return err
		}
	}
}

// sponsor picks a live node to submit a config op through.
func (g *Group) sponsor(avoid int) *runtime.Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for i, n := range g.nodes {
		if n != nil && i != avoid {
			return n
		}
	}
	return nil
}

// removedEverywhere reports whether every live process other than target
// has applied a view excluding target (and at least one such process
// exists).
func (g *Group) removedEverywhere(target types.ProcessID) bool {
	g.mu.RLock()
	nodes := make([]*runtime.Node, len(g.nodes))
	copy(nodes, g.nodes)
	g.mu.RUnlock()
	any := false
	for i, n := range nodes {
		if n == nil || i == int(target) {
			continue
		}
		any = true
		if n.CurrentView().Contains(target) {
			return false
		}
	}
	return any
}

// onViewChange observes every applied view at every process (the
// runtime's OnConfig hook, on a node's event loop): the first view
// naming a pending joiner spawns it, and every change wakes Add/Remove
// waiters.
func (g *Group) onViewChange(v member.View, op member.Op) {
	if op.Kind == member.OpAdd {
		g.maybeSpawn(op.Target, v)
	}
	g.viewPulse()
}

// maybeSpawn starts a pending joiner exactly once, asynchronously (a
// node spawn opens logs and starts goroutines — not event-loop work).
func (g *Group) maybeSpawn(id types.ProcessID, v member.View) {
	g.mu.Lock()
	if g.closed || !g.pending[id] {
		g.mu.Unlock()
		return
	}
	delete(g.pending, id)
	for int(id) >= len(g.nodes) {
		g.nodes = append(g.nodes, nil)
		if g.obsRecs != nil {
			g.obsRecs = append(g.obsRecs, obs.NewRecorder(*g.opts.Observability))
		}
	}
	g.mu.Unlock()
	view := v
	view.Members = append([]types.ProcessID(nil), v.Members...)
	go func() {
		node, err := g.startNode(id, g.net.Endpoint(id), &view)
		g.mu.Lock()
		switch {
		case err != nil:
			g.spawnErr[id] = err
		case g.closed:
			g.mu.Unlock()
			_ = node.Close()
			g.viewPulse()
			return
		default:
			g.nodes[id] = node
		}
		g.mu.Unlock()
		g.viewPulse()
	}()
}

// viewChanged returns a channel closed at the next view change or spawn.
func (g *Group) viewChanged() <-chan struct{} {
	g.viewMu.Lock()
	defer g.viewMu.Unlock()
	return g.viewCh
}

// viewPulse wakes every Add/Remove waiter.
func (g *Group) viewPulse() {
	g.viewMu.Lock()
	close(g.viewCh)
	g.viewCh = make(chan struct{})
	g.viewMu.Unlock()
}

// N returns the number of process slots ever created (boot group plus
// joiners; removed and crashed processes keep their slots).
func (g *Group) N() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// Node returns the i-th process's node (nil after Crash(i) or for an
// out-of-range index).
func (g *Group) Node(i int) *runtime.Node {
	n, _ := g.node(i)
	return n
}

// node fetches one process's live node, with bounds and crash checks.
func (g *Group) node(p int) (*runtime.Node, error) {
	g.mu.RLock()
	if p < 0 || p >= len(g.nodes) {
		size := len(g.nodes)
		g.mu.RUnlock()
		return nil, fmt.Errorf("%w: p%d of a group of %d", types.ErrBadConfig, p+1, size)
	}
	n := g.nodes[p]
	g.mu.RUnlock()
	if n == nil {
		return nil, types.ErrCrashed
	}
	return n, nil
}

// Abcast submits a payload at process p, blocking on flow control until
// the message is admitted, the context is canceled (returning ctx.Err())
// or the group shuts down. Submitting at a crashed process returns
// types.ErrCrashed.
func (g *Group) Abcast(ctx context.Context, p int, body []byte) (types.MsgID, error) {
	node, err := g.node(p)
	if err != nil {
		return types.MsgID{}, err
	}
	return node.Abcast(ctx, body)
}

// TryAbcast submits a payload at process p without waiting; it returns
// types.ErrFlowControl when p's window is full.
func (g *Group) TryAbcast(p int, body []byte) (types.MsgID, error) {
	node, err := g.node(p)
	if err != nil {
		return types.MsgID{}, err
	}
	return node.TryAbcast(body)
}

// Deliveries subscribes to the group-wide adelivery stream: every
// adelivery at every process, tagged with the delivering process.
// Per-process delivery order is preserved; the interleaving between
// processes is arbitrary. Options override the group's default buffer
// and overflow policy. The channel closes after Close.
func (g *Group) Deliveries(opts ...stream.SubOption) *stream.Sub[engine.Event] {
	return g.hub.Subscribe(opts...)
}

// Counters returns a snapshot of process p's instrumentation (zero after
// Crash(p)).
func (g *Group) Counters(p int) trace.Snapshot {
	node, err := g.node(p)
	if err != nil {
		return trace.Snapshot{}
	}
	return node.Counters()
}

// Obs returns process p's observability recorder, or nil when the group
// runs without GroupOptions.Observability (or for an out-of-range index).
// The recorder survives Crash/Restart, accumulating across incarnations.
func (g *Group) Obs(p int) *obs.Recorder {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.obsRecs == nil || p < 0 || p >= len(g.obsRecs) {
		return nil
	}
	return g.obsRecs[p]
}

// Stats returns the uniform whole-group snapshot.
func (g *Group) Stats() trace.Stats {
	n := g.N()
	st := trace.Stats{N: n, PerProcess: make([]trace.Snapshot, n)}
	for i := 0; i < n; i++ {
		st.PerProcess[i] = g.Counters(i)
		st.Total.Add(st.PerProcess[i])
	}
	st.Total.StreamDropped += g.streamDropped.Load()
	return st
}

// Crash closes one node, simulating a crash-stop failure. The survivors'
// failure detectors will suspect it after their timeout. Crash returns
// only after the node fully stopped (and, with durability, released its
// write-ahead log), so a subsequent Restart finds the log quiescent.
func (g *Group) Crash(p int) error {
	g.lifecycle.Lock()
	defer g.lifecycle.Unlock()
	g.mu.Lock()
	if p < 0 || p >= len(g.nodes) {
		size := len(g.nodes)
		g.mu.Unlock()
		return fmt.Errorf("%w: p%d of a group of %d", types.ErrBadConfig, p+1, size)
	}
	node := g.nodes[p]
	g.nodes[p] = nil
	g.mu.Unlock()
	if node == nil {
		return nil
	}
	return node.Close()
}

// Close shuts the whole group down and ends every delivery stream
// (subscribers drain what is buffered, then see their channels closed).
func (g *Group) Close() {
	g.lifecycle.Lock()
	defer g.lifecycle.Unlock()
	g.mu.Lock()
	g.closed = true
	nodes := make([]*runtime.Node, len(g.nodes))
	copy(nodes, g.nodes)
	for i := range g.nodes {
		g.nodes[i] = nil
	}
	g.mu.Unlock()
	for _, n := range nodes {
		if n != nil {
			_ = n.Close()
		}
	}
	g.hub.Close()
}

// TCPNodeOptions configures one process of a TCP group.
type TCPNodeOptions struct {
	// Self is the local process ID; Addrs lists every process's listen
	// address, indexed by ID.
	Self  types.ProcessID
	Addrs []string
	// Stack selects the implementation.
	Stack types.Stack
	// Engine optionally overrides the protocol tunables.
	Engine engine.Config
	// OnDeliver observes adeliveries — a convenience adapter over the
	// node's delivery stream (see runtime.Node.Deliveries).
	OnDeliver func(d engine.Delivery)
	// HeartbeatPeriod and SuspectTimeout parameterize the failure
	// detector (zero values use the runtime defaults).
	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration
	// DeliveryBuffer and DeliveryOverflow set the node's delivery-stream
	// defaults (see runtime.Options).
	DeliveryBuffer   int
	DeliveryOverflow stream.Policy
	// Durability, when non-nil, gives the node a write-ahead log directly
	// under Durability.Dir (each process of a TCP group runs with its own
	// directory) and makes a restarted process recover instead of
	// rejoining empty-handed.
	Durability *DurabilityOptions
	// StateMachine, when non-nil, attaches a replicated state machine to
	// the node (see runtime.Options.StateMachine). With Durability its
	// snapshots persist under Durability.Dir/snap.
	StateMachine rsm.StateMachine
	// SnapshotEvery is the snapshot cadence in instances.
	SnapshotEvery uint64
	// Obs, when non-nil, attaches the caller-owned observability recorder
	// (cmd/abnode builds one and serves it over HTTP with
	// obs.NewHTTPHandler). Wired through to the engine, the applier, and
	// the write-ahead log's fsync instrumentation.
	Obs *obs.Recorder
	// Join marks this process a joiner: Addrs[Self] is its own listen
	// address (the boot peers occupy the lower slots), and instead of
	// assuming boot membership it starts with restart-style empty state —
	// once a member sponsors its admission (runtime.Node.RequestJoin), it
	// announces itself and catches up through state transfer.
	Join bool
	// BootN is the original boot group size, the epoch-0 view a joiner
	// replays config history from. 0 infers it: len(Addrs) for members,
	// Self for a joiner (correct when this is the first join; later
	// joiners whose Addrs table already includes earlier joiners must set
	// it explicitly).
	BootN int
	// OnConfig, when non-nil, observes every applied membership view (see
	// runtime.Options.OnConfig). The node already grows its TCP address
	// table from OpAdd addresses and retargets its failure detector.
	OnConfig func(v member.View, op member.Op)
}

// NewTCPNode starts one process of a group communicating over TCP — the
// deployment used by cmd/abnode.
func NewTCPNode(opts TCPNodeOptions) (*runtime.Node, error) {
	var store recovery.Store
	if opts.Durability != nil {
		logOpts := opts.Durability.Log
		logOpts.Obs = opts.Obs
		var err error
		store, err = wal.Open(opts.Durability.Dir, logOpts)
		if err != nil {
			return nil, err
		}
	}
	var snaps rsm.Store
	if opts.StateMachine != nil {
		var err error
		snaps, err = snapshotStore(opts.Durability, filepath.Join(dirOf(opts.Durability), "snap"))
		if err != nil {
			if store != nil {
				_ = store.Close()
			}
			return nil, err
		}
	}
	tr, err := transport.NewTCP(opts.Self, opts.Addrs)
	if err != nil {
		if store != nil {
			_ = store.Close()
		}
		return nil, err
	}
	// A joiner's boot group is the peers below its own slot; a boot member
	// counts the whole table. BootN overrides both.
	n := len(opts.Addrs)
	if opts.Join && int(opts.Self) < n {
		n = int(opts.Self)
	}
	if opts.BootN > 0 {
		n = opts.BootN
	}
	// addrTable grows as OpAdd ops activate, so every member learns a
	// joiner's address from the decided op itself (no out-of-band address
	// exchange). Touched only on the node's event loop (OnConfig is
	// serial).
	addrTable := append([]string(nil), opts.Addrs...)
	node, err := runtime.NewNode(runtime.Options{
		Self:             opts.Self,
		N:                n,
		Stack:            opts.Stack,
		Engine:           opts.Engine,
		Transport:        tr,
		Store:            store,
		OnDeliver:        opts.OnDeliver,
		HeartbeatPeriod:  opts.HeartbeatPeriod,
		SuspectTimeout:   opts.SuspectTimeout,
		DeliveryBuffer:   opts.DeliveryBuffer,
		DeliveryOverflow: opts.DeliveryOverflow,
		StateMachine:     opts.StateMachine,
		SnapshotStore:    snaps,
		SnapshotEvery:    opts.SnapshotEvery,
		Obs:              opts.Obs,
		Join:             opts.Join,
		OnConfig: func(v member.View, op member.Op) {
			if op.Kind == member.OpAdd && op.Addr != "" {
				for int(op.Target) >= len(addrTable) {
					addrTable = append(addrTable, "")
				}
				if addrTable[op.Target] != op.Addr {
					addrTable[op.Target] = op.Addr
					tr.SetAddrs(addrTable)
				}
			}
			if fn := opts.OnConfig; fn != nil {
				fn(v, op)
			}
		},
	})
	if err != nil {
		_ = tr.Close()
		if store != nil {
			_ = store.Close()
		}
		return nil, err
	}
	return node, nil
}
