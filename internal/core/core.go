// Package core assembles the pieces of the library into the high-level
// API surface that the root package modab re-exports: single real-time
// nodes (over any transport), whole in-process groups (over the in-memory
// network), TCP groups, and simulated clusters.
package core

import (
	"fmt"
	"time"

	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/runtime"
	"modab/internal/transport"
	"modab/internal/types"
)

// DeliverFunc observes one adelivery at one process of a group.
type DeliverFunc func(p types.ProcessID, d engine.Delivery)

// Group is a set of real-time nodes connected by an in-memory network —
// the quickest way to use the library inside one OS process.
type Group struct {
	nodes []*runtime.Node
	net   *transport.MemNetwork
}

// NewLocalGroup starts an n-process group running the given stack over an
// in-memory network. onDeliver (optional) observes every adelivery; it is
// invoked from each node's event loop and must not block.
func NewLocalGroup(n int, stack types.Stack, onDeliver DeliverFunc) (*Group, error) {
	if n < 1 {
		return nil, types.ErrEmptyGroup
	}
	net := transport.NewMemNetwork()
	g := &Group{net: net, nodes: make([]*runtime.Node, n)}
	for i := 0; i < n; i++ {
		p := types.ProcessID(i)
		var cb func(engine.Delivery)
		if onDeliver != nil {
			cb = func(d engine.Delivery) { onDeliver(p, d) }
		}
		node, err := runtime.NewNode(runtime.Options{
			Self:      p,
			N:         n,
			Stack:     stack,
			Transport: net.Endpoint(p),
			OnDeliver: cb,
		})
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("core: start node %d: %w", i, err)
		}
		g.nodes[i] = node
	}
	return g, nil
}

// N returns the group size.
func (g *Group) N() int { return len(g.nodes) }

// Node returns the i-th process's node.
func (g *Group) Node(i int) *runtime.Node { return g.nodes[i] }

// Abcast submits a payload at process p, blocking on flow control.
func (g *Group) Abcast(p int, body []byte) (types.MsgID, error) {
	return g.nodes[p].AbcastBlocking(body)
}

// Crash closes one node, simulating a crash-stop failure. The survivors'
// failure detectors will suspect it after their timeout.
func (g *Group) Crash(p int) error {
	if g.nodes[p] == nil {
		return nil
	}
	err := g.nodes[p].Close()
	g.nodes[p] = nil
	return err
}

// Close shuts the whole group down.
func (g *Group) Close() {
	for i, n := range g.nodes {
		if n != nil {
			_ = n.Close()
			g.nodes[i] = nil
		}
	}
}

// TCPNodeOptions configures one process of a TCP group.
type TCPNodeOptions struct {
	// Self is the local process ID; Addrs lists every process's listen
	// address, indexed by ID.
	Self  types.ProcessID
	Addrs []string
	// Stack selects the implementation.
	Stack types.Stack
	// Engine optionally overrides the protocol tunables.
	Engine engine.Config
	// OnDeliver observes adeliveries (from the event loop; must not block).
	OnDeliver func(d engine.Delivery)
	// HeartbeatPeriod and SuspectTimeout parameterize the failure
	// detector (zero values use the runtime defaults).
	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration
}

// NewTCPNode starts one process of a group communicating over TCP — the
// deployment used by cmd/abnode.
func NewTCPNode(opts TCPNodeOptions) (*runtime.Node, error) {
	tr, err := transport.NewTCP(opts.Self, opts.Addrs)
	if err != nil {
		return nil, err
	}
	node, err := runtime.NewNode(runtime.Options{
		Self:            opts.Self,
		N:               len(opts.Addrs),
		Stack:           opts.Stack,
		Engine:          opts.Engine,
		Transport:       tr,
		OnDeliver:       opts.OnDeliver,
		HeartbeatPeriod: opts.HeartbeatPeriod,
		SuspectTimeout:  opts.SuspectTimeout,
	})
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	return node, nil
}

// NewSimCluster builds a deterministic simulated cluster (see
// internal/netsim); it is re-exported so library users can run the
// paper's experiments programmatically.
func NewSimCluster(opts netsim.Options) (*netsim.Cluster, error) {
	return netsim.NewCluster(opts)
}
