package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
)

func TestLocalGroupTotalOrder(t *testing.T) {
	var mu sync.Mutex
	orders := make(map[types.ProcessID][]types.MsgID)
	g, err := NewGroup(3, types.Modular, GroupOptions{OnDeliver: func(p types.ProcessID, d engine.Delivery) {
		mu.Lock()
		orders[p] = append(orders[p], d.Msg.ID)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	for p := 0; p < 3; p++ {
		if _, err := g.Abcast(context.Background(), p, []byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := len(orders[0]) == 3 && len(orders[1]) == 3 && len(orders[2]) == 3
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for p := types.ProcessID(1); p < 3; p++ {
		for i := range orders[0] {
			if orders[p][i] != orders[0][i] {
				t.Fatalf("divergence at %d", i)
			}
		}
	}
}

func TestLocalGroupCrashSurvivors(t *testing.T) {
	var mu sync.Mutex
	count := make(map[types.ProcessID]int)
	g, err := NewGroup(3, types.Monolithic, GroupOptions{OnDeliver: func(p types.ProcessID, _ engine.Delivery) {
		mu.Lock()
		count[p]++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := g.Crash(0); err != nil {
		t.Fatal("double crash should be nil")
	}
	// Survivors keep working once the FD suspects the dead coordinator.
	done := make(chan error, 1)
	go func() {
		_, err := g.Abcast(context.Background(), 1, []byte("after crash"))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("abcast blocked forever after crash")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		ok := count[1] >= 1 && count[2] >= 1
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never delivered")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLocalGroupValidation(t *testing.T) {
	if _, err := NewGroup(0, types.Modular, GroupOptions{}); err == nil {
		t.Error("accepted empty group")
	}
	if _, err := NewGroup(2, 0, GroupOptions{}); err == nil {
		t.Error("accepted zero stack")
	}
}

func TestTCPNodeEndToEnd(t *testing.T) {
	// A single-process TCP "group" sanity check (multi-process TCP is
	// covered in internal/runtime).
	var mu sync.Mutex
	delivered := 0
	node, err := NewTCPNode(TCPNodeOptions{
		Self:  0,
		Addrs: []string{"127.0.0.1:0"},
		Stack: types.Monolithic,
		OnDeliver: func(engine.Delivery) {
			mu.Lock()
			delivered++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := node.Abcast(context.Background(), []byte("solo")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := delivered == 1
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("not delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPNodeBadAddr(t *testing.T) {
	if _, err := NewTCPNode(TCPNodeOptions{
		Self:  0,
		Addrs: []string{"256.256.256.256:99999"},
		Stack: types.Modular,
	}); err == nil {
		t.Error("accepted unlistenable address")
	}
}

// TestGroupDeliveriesStream consumes the group-wide stream and checks
// per-process order and completeness.
func TestGroupDeliveriesStream(t *testing.T) {
	g, err := NewGroup(3, types.Monolithic, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub := g.Deliveries()
	const perProc = 4
	for p := 0; p < g.N(); p++ {
		for j := 0; j < perProc; j++ {
			if _, err := g.Abcast(context.Background(), p, []byte{byte(p), byte(j)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every process adelivers every message: 3 processes × 12 messages.
	want := g.N() * g.N() * perProc
	seen := make(map[types.ProcessID][]types.MsgID)
	timeout := time.After(15 * time.Second)
	for got := 0; got < want; got++ {
		select {
		case ev := <-sub.C():
			seen[ev.P] = append(seen[ev.P], ev.D.Msg.ID)
		case <-timeout:
			t.Fatalf("stream delivered %d of %d", got, want)
		}
	}
	ref := seen[0]
	for p := types.ProcessID(1); int(p) < g.N(); p++ {
		for i := range ref {
			if seen[p][i] != ref[i] {
				t.Fatalf("stream order diverges at %d: p0=%v p%d=%v", i, ref[i], p, seen[p][i])
			}
		}
	}
	// Close ends the stream.
	g.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("stream yielded a value after group close and drain")
	}
}

// TestGroupStats checks the uniform Stats surface.
func TestGroupStats(t *testing.T) {
	g, err := NewGroup(3, types.Modular, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Abcast(context.Background(), 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().Total.ADeliver < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("stats: %+v", g.Stats().Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := g.Stats()
	if st.N != 3 || len(st.PerProcess) != 3 {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.PerProcess[0].ABCast != 1 {
		t.Fatalf("p0 counters: %+v", st.PerProcess[0])
	}
}

// TestGroupAbcastCanceledContext checks ctx.Err() propagation through the
// group facade.
func TestGroupAbcastCanceledContext(t *testing.T) {
	g, err := NewGroup(3, types.Modular, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-canceled context may still win the race against instant
	// admission only when the window is full; force fullness first.
	cfgFull := 0
	for {
		if _, err := g.TryAbcast(0, []byte("fill")); err != nil {
			break
		}
		cfgFull++
		if cfgFull > 10000 {
			t.Skip("window never filled (deliveries too fast)")
		}
	}
	if _, err := g.Abcast(ctx, 0, []byte("blocked")); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
