package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/runtime"
	"modab/internal/types"
	"modab/internal/wal"
)

// growLog collects per-process delivery sequences, growing as joiners
// appear.
type growLog struct {
	mu   sync.Mutex
	seqs map[types.ProcessID][]types.MsgID
}

func newGrowLog() *growLog { return &growLog{seqs: make(map[types.ProcessID][]types.MsgID)} }

func (o *growLog) record(p types.ProcessID, d engine.Delivery) {
	o.mu.Lock()
	o.seqs[p] = append(o.seqs[p], d.Msg.ID)
	o.mu.Unlock()
}

func (o *growLog) count(p types.ProcessID) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.seqs[p])
}

func (o *growLog) seq(p types.ProcessID) []types.MsgID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]types.MsgID(nil), o.seqs[p]...)
}

// TestGroupAddRemove runs the full membership cycle on the real-time
// group driver: admit a fourth process under load (it catches up through
// state transfer and then contributes its own messages), retire the
// original coordinator, and check that every survivor — including the
// joiner — ends with the identical total order and the same final view.
func TestGroupAddRemove(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			log := newGrowLog()
			g, err := NewGroup(3, stk, GroupOptions{
				HeartbeatPeriod: 10 * time.Millisecond,
				SuspectTimeout:  80 * time.Millisecond,
				OnDeliver:       log.record,
				Durability: &DurabilityOptions{
					Dir: t.TempDir(),
					Log: wal.Options{Policy: wal.SyncNone},
				},
			})
			if err != nil {
				t.Fatalf("NewGroup: %v", err)
			}
			defer g.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			for i := 0; i < 8; i++ {
				if _, err := g.Abcast(ctx, 0, []byte{byte(i)}); err != nil {
					t.Fatalf("abcast %d: %v", i, err)
				}
			}
			waitFor(t, 30*time.Second, func() bool {
				return log.count(0) == 8 && log.count(1) == 8 && log.count(2) == 8
			}, "pre-join deliveries")

			id, err := g.Add(ctx)
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			if id != 3 {
				t.Fatalf("joiner ID = %v, want 3", id)
			}
			if g.N() != 4 {
				t.Fatalf("N = %d after join", g.N())
			}
			// Add returns once the first process applies the admitting
			// view; the others apply it asynchronously.
			waitFor(t, 30*time.Second, func() bool {
				v := g.View(1)
				return v.Contains(3) && len(v.Members) == 4
			}, "p1 view after join")
			for p := 0; p < 4; p++ {
				if _, err := g.Abcast(ctx, p, []byte{0x10, byte(p)}); err != nil {
					t.Fatalf("abcast at p%d after join: %v", p, err)
				}
			}

			if err := g.Remove(ctx, 0); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if _, err := g.Abcast(ctx, 0, []byte{0xff}); !errors.Is(err, types.ErrCrashed) {
				t.Fatalf("abcast at removed process: %v", err)
			}
			for p := 1; p < 4; p++ {
				if _, err := g.Abcast(ctx, p, []byte{0x20, byte(p)}); err != nil {
					t.Fatalf("abcast at p%d after remove: %v", p, err)
				}
			}

			const total = 8 + 4 + 3
			waitFor(t, 30*time.Second, func() bool {
				return log.count(1) == total && log.count(2) == total && log.count(3) == total
			}, "post-remove deliveries")
			ref := log.seq(1)
			for p := types.ProcessID(2); p < 4; p++ {
				got := log.seq(p)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("p%d diverges from p1 at %d: %v vs %v", p, i, got[i], ref[i])
					}
				}
			}
			for p := 1; p < 4; p++ {
				v := g.View(p)
				if v.Contains(0) || !v.Contains(3) || len(v.Members) != 3 {
					t.Fatalf("p%d final view: %v", p, v)
				}
			}
		})
	}
}

// freeAddrs reserves n distinct listen addresses by binding and
// immediately releasing them (the usual bind-races are negligible on a
// loopback test host).
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close()
	}
	return addrs
}

// TestTCPNodeJoin exercises the abnode deployment path: a three-process
// TCP group is running, a fourth process starts with Join set, asks a
// member to sponsor its admission (RequestJoin), and the members learn
// its address from the decided op itself — no restart, no out-of-band
// address exchange. The joiner then both delivers the full history and
// gets its own submissions ordered.
func TestTCPNodeJoin(t *testing.T) {
	addrs := freeAddrs(t, 4)
	log := newGrowLog()
	dir := t.TempDir()
	mkNode := func(self int, join bool) *runtime.Node {
		t.Helper()
		table := addrs[:3]
		if join {
			table = addrs // the joiner knows its own slot; members learn it from the op
		}
		node, err := NewTCPNode(TCPNodeOptions{
			Self:  types.ProcessID(self),
			Addrs: append([]string(nil), table...),
			Stack: types.Monolithic,
			OnDeliver: func(d engine.Delivery) {
				log.record(types.ProcessID(self), d)
			},
			HeartbeatPeriod: 10 * time.Millisecond,
			SuspectTimeout:  120 * time.Millisecond,
			Durability: &DurabilityOptions{
				Dir: filepath.Join(dir, fmt.Sprintf("p%d", self)),
				Log: wal.Options{Policy: wal.SyncNone},
			},
			Join: join,
		})
		if err != nil {
			t.Fatalf("NewTCPNode p%d: %v", self, err)
		}
		return node
	}
	nodes := make([]*runtime.Node, 3)
	for i := range nodes {
		nodes[i] = mkNode(i, false)
		defer nodes[i].Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := nodes[0].Abcast(ctx, []byte{byte(i)}); err != nil {
			t.Fatalf("abcast %d: %v", i, err)
		}
	}
	waitFor(t, 30*time.Second, func() bool {
		return log.count(0) == 5 && log.count(1) == 5 && log.count(2) == 5
	}, "boot deliveries")

	joiner := mkNode(3, true)
	defer joiner.Close()
	// Ask p0 to sponsor the admission, retrying until the view admits us
	// (the request is fire-and-forget and may race the decide).
	waitFor(t, 30*time.Second, func() bool {
		if joiner.CurrentView().Contains(3) {
			return true
		}
		_ = joiner.RequestJoin(0, addrs[3])
		return false
	}, "admission")
	waitFor(t, 30*time.Second, func() bool { return log.count(3) == 5 }, "joiner catch-up")
	if _, err := joiner.Abcast(ctx, []byte("from the joiner")); err != nil {
		t.Fatalf("joiner abcast: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		for p := types.ProcessID(0); p < 4; p++ {
			if log.count(p) != 6 {
				return false
			}
		}
		return true
	}, "joiner's message everywhere")
	ref := log.seq(0)
	for p := types.ProcessID(1); p < 4; p++ {
		got := log.seq(p)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("p%d diverges at %d", p, i)
			}
		}
	}
	for i, nd := range append(nodes, joiner) {
		if v := nd.CurrentView(); !v.Contains(3) || len(v.Members) != 4 {
			t.Fatalf("p%d final view: %v", i, v)
		}
	}
}
