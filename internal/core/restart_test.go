package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
	"modab/internal/wal"
)

// orderLog collects per-process delivery sequences under a mutex.
type orderLog struct {
	mu   sync.Mutex
	seqs [][]types.MsgID
}

func newOrderLog(n int) *orderLog { return &orderLog{seqs: make([][]types.MsgID, n)} }

func (o *orderLog) record(p types.ProcessID, d engine.Delivery) {
	o.mu.Lock()
	o.seqs[p] = append(o.seqs[p], d.Msg.ID)
	o.mu.Unlock()
}

func (o *orderLog) count(p int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.seqs[p])
}

func (o *orderLog) snapshot() [][]types.MsgID {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([][]types.MsgID, len(o.seqs))
	for i, s := range o.seqs {
		out[i] = append([]types.MsgID(nil), s...)
	}
	return out
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGroupRestartRecovers runs the crash-recovery scenario on the
// real-time driver with a real file-backed write-ahead log: crash one
// node of a loaded group, keep ordering without it, restart it, and
// every process — the restarted one's pre-crash and post-restart streams
// combined — ends with the identical total order.
func TestGroupRestartRecovers(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			const n = 3
			log := newOrderLog(n)
			g, err := NewGroup(n, stk, GroupOptions{
				HeartbeatPeriod: 10 * time.Millisecond,
				SuspectTimeout:  80 * time.Millisecond,
				OnDeliver:       log.record,
				Durability: &DurabilityOptions{
					Dir: t.TempDir(),
					Log: wal.Options{Policy: wal.SyncNone},
				},
			})
			if err != nil {
				t.Fatalf("NewGroup: %v", err)
			}
			defer g.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			total := 0
			submit := func(p, k int) {
				t.Helper()
				for i := 0; i < k; i++ {
					if _, err := g.Abcast(ctx, p, []byte{byte(p), byte(i)}); err != nil {
						t.Fatalf("abcast at p%d: %v", p+1, err)
					}
					total++
				}
			}

			// Phase 1: everybody submits; wait until everybody delivered.
			for p := 0; p < n; p++ {
				submit(p, 15)
			}
			waitFor(t, 10*time.Second, func() bool {
				for p := 0; p < n; p++ {
					if log.count(p) < total {
						return false
					}
				}
				return true
			}, "phase-1 deliveries")

			// Phase 2: p2 crashes; the survivors keep ordering without it.
			if err := g.Crash(1); err != nil {
				t.Fatalf("Crash: %v", err)
			}
			downAt := log.count(1)
			submit(0, 15)
			submit(2, 15)
			waitFor(t, 15*time.Second, func() bool {
				return log.count(0) >= total && log.count(2) >= total
			}, "phase-2 deliveries at the survivors")
			if got := log.count(1); got != downAt {
				t.Fatalf("crashed node delivered %d messages while down", got-downAt)
			}

			// Phase 3: p2 restarts, catches up on what it missed, and the
			// whole group — p2 submitting again included — converges.
			if err := g.Restart(1); err != nil {
				t.Fatalf("Restart: %v", err)
			}
			submit(1, 10)
			waitFor(t, 20*time.Second, func() bool {
				for p := 0; p < n; p++ {
					if log.count(p) < total {
						return false
					}
				}
				return true
			}, "post-restart convergence")

			snap := g.Counters(1)
			if snap.Recoveries != 1 {
				t.Errorf("restarted node Recoveries = %d, want 1", snap.Recoveries)
			}
			if snap.RecoveryReplayedMsgs == 0 {
				t.Error("restarted node replayed nothing from its log")
			}
			if snap.RecoveryFetchedMsgs == 0 {
				t.Error("restarted node fetched nothing from its peers")
			}

			// Identical total order everywhere, no duplicates or gaps.
			seqs := log.snapshot()
			ref := seqs[0][:total]
			seen := map[types.MsgID]struct{}{}
			for _, id := range ref {
				if _, dup := seen[id]; dup {
					t.Fatalf("p1 delivered %s twice", id)
				}
				seen[id] = struct{}{}
			}
			for p := 1; p < n; p++ {
				if len(seqs[p]) < total {
					t.Fatalf("p%d delivered %d of %d", p+1, len(seqs[p]), total)
				}
				for i := 0; i < total; i++ {
					if seqs[p][i] != ref[i] {
						t.Fatalf("p%d delivery %d = %s, p1 has %s (order diverges)", p+1, i, seqs[p][i], ref[i])
					}
				}
			}
		})
	}
}

// TestGroupRestartValidation: Restart is rejected without durability and
// on a still-running process.
func TestGroupRestartValidation(t *testing.T) {
	g, err := NewGroup(3, types.Modular, GroupOptions{})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	if err := g.Restart(0); err == nil {
		t.Fatal("Restart without durability succeeded")
	}

	gd, err := NewGroup(3, types.Modular, GroupOptions{
		Durability: &DurabilityOptions{Dir: t.TempDir(), Log: wal.Options{Policy: wal.SyncNone}},
	})
	if err != nil {
		t.Fatalf("NewGroup durable: %v", err)
	}
	defer gd.Close()
	if err := gd.Restart(0); err == nil {
		t.Fatal("Restart of a running process succeeded")
	}
}
