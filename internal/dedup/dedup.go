// Package dedup implements the per-sender duplicate-delivery suppressor
// shared by both atomic broadcast stacks: a contiguous watermark plus a
// sparse set, so memory stays bounded on long runs while still catching
// out-of-order duplicates.
//
// Both engines used to carry a private copy of this structure; it moved
// here when the crash-recovery subsystem needed to rebuild the delivered
// state from a replayed write-ahead log (internal/recovery constructs a
// Map from the logged decisions and hands it back to the engine that owns
// the log).
package dedup

import "modab/internal/types"

// Set tracks the delivered sequence numbers of one sender: every seq
// <= Watermark is delivered, plus the out-of-order seqs in Sparse.
type Set struct {
	watermark uint64
	sparse    map[uint64]struct{}
}

// NewSet returns an empty per-sender set.
func NewSet() *Set {
	return &Set{sparse: make(map[uint64]struct{})}
}

// Watermark returns the highest sequence number below which every message
// is delivered.
func (s *Set) Watermark() uint64 { return s.watermark }

// MaxSeen returns the highest sequence number marked delivered (the
// watermark or the largest sparse entry).
func (s *Set) MaxSeen() uint64 {
	max := s.watermark
	for seq := range s.sparse {
		if seq > max {
			max = seq
		}
	}
	return max
}

// Seen reports whether seq was already marked delivered.
func (s *Set) Seen(seq uint64) bool {
	if seq <= s.watermark {
		return true
	}
	_, ok := s.sparse[seq]
	return ok
}

// Mark records seq as delivered, advancing the contiguous watermark as far
// as the sparse set allows.
func (s *Set) Mark(seq uint64) {
	if seq <= s.watermark {
		return
	}
	s.sparse[seq] = struct{}{}
	for {
		if _, ok := s.sparse[s.watermark+1]; !ok {
			break
		}
		delete(s.sparse, s.watermark+1)
		s.watermark++
	}
}

// Map is the whole-group delivered state: one Set per sender, created on
// first use.
type Map map[types.ProcessID]*Set

// NewMap returns an empty delivered map sized for a group of n.
func NewMap(n int) Map { return make(Map, n) }

// For returns (creating if needed) the sender's set.
func (m Map) For(sender types.ProcessID) *Set {
	s := m[sender]
	if s == nil {
		s = NewSet()
		m[sender] = s
	}
	return s
}

// Seen reports whether the message id was already marked delivered.
func (m Map) Seen(id types.MsgID) bool { return m.For(id.Sender).Seen(id.Seq) }

// Mark records the message id as delivered.
func (m Map) Mark(id types.MsgID) { m.For(id.Sender).Mark(id.Seq) }
