package dedup

import (
	"testing"

	"modab/internal/types"
)

func TestSetWatermarkAdvance(t *testing.T) {
	s := NewSet()
	if s.Seen(1) {
		t.Fatal("fresh set claims seq 1 seen")
	}
	s.Mark(1)
	s.Mark(2)
	if got := s.Watermark(); got != 2 {
		t.Fatalf("watermark = %d, want 2", got)
	}
	// Out-of-order marks park in the sparse set until the gap fills.
	s.Mark(5)
	if got := s.Watermark(); got != 2 {
		t.Fatalf("watermark after sparse mark = %d, want 2", got)
	}
	if !s.Seen(5) || s.Seen(4) {
		t.Fatal("sparse membership wrong")
	}
	if got := s.MaxSeen(); got != 5 {
		t.Fatalf("MaxSeen = %d, want 5", got)
	}
	s.Mark(3)
	s.Mark(4)
	if got := s.Watermark(); got != 5 {
		t.Fatalf("watermark after gap fill = %d, want 5", got)
	}
	// Re-marking below the watermark is a no-op.
	s.Mark(2)
	if got := s.Watermark(); got != 5 {
		t.Fatalf("watermark after stale mark = %d, want 5", got)
	}
}

func TestMapPerSender(t *testing.T) {
	m := NewMap(3)
	a := types.MsgID{Sender: 0, Seq: 1}
	b := types.MsgID{Sender: 1, Seq: 1}
	m.Mark(a)
	if !m.Seen(a) {
		t.Fatal("marked id not seen")
	}
	if m.Seen(b) {
		t.Fatal("sender 1 inherited sender 0's marks")
	}
	m.Mark(b)
	if !m.Seen(b) {
		t.Fatal("second sender's mark lost")
	}
}
