package dedup

import (
	"fmt"
	"sort"

	"modab/internal/types"
	"modab/internal/wire"
)

// Marshal appends the map in a deterministic form (senders ascending,
// sparse seqs ascending), so two replicas with identical delivered state
// produce byte-identical encodings — the property the snapshot
// equivalence checks rely on.
func (m Map) Marshal(w *wire.Writer) {
	senders := make([]types.ProcessID, 0, len(m))
	for sender := range m {
		senders = append(senders, sender)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	w.Uint32(uint32(len(senders)))
	for _, sender := range senders {
		s := m[sender]
		w.Int32(int32(sender))
		w.Uint64(s.watermark)
		seqs := make([]uint64, 0, len(s.sparse))
		for seq := range s.sparse {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		w.Uint32(uint32(len(seqs)))
		for _, seq := range seqs {
			w.Uint64(seq)
		}
	}
}

// MarshalBytes returns the deterministic encoding of the map.
func (m Map) MarshalBytes() []byte {
	w := wire.NewWriter(16 + 16*len(m))
	m.Marshal(w)
	return w.Bytes()
}

// UnmarshalMap decodes a map produced by Marshal.
func UnmarshalMap(data []byte) (Map, error) {
	r := wire.NewReader(data)
	nSenders := r.Uint32()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nSenders > wire.MaxChunk/16 {
		return nil, fmt.Errorf("%w: %d senders", wire.ErrTooLarge, nSenders)
	}
	m := NewMap(int(nSenders))
	for i := uint32(0); i < nSenders; i++ {
		sender := types.ProcessID(r.Int32())
		s := NewSet()
		s.watermark = r.Uint64()
		nSparse := r.Uint32()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if nSparse > wire.MaxChunk/8 {
			return nil, fmt.Errorf("%w: %d sparse seqs", wire.ErrTooLarge, nSparse)
		}
		for j := uint32(0); j < nSparse; j++ {
			seq := r.Uint64()
			if seq > s.watermark {
				s.sparse[seq] = struct{}{}
			}
		}
		m[sender] = s
	}
	r.ExpectEOF()
	if r.Err() != nil {
		return nil, r.Err()
	}
	return m, nil
}

// Merge folds other into m: afterwards m has seen everything either map
// had seen. Used when installing a snapshot whose envelope carries the
// delivered state at the snapshot boundary.
func (m Map) Merge(other Map) {
	for sender, o := range other {
		s := m.For(sender)
		if o.watermark > s.watermark {
			s.watermark = o.watermark
			for seq := range s.sparse {
				if seq <= s.watermark {
					delete(s.sparse, seq)
				}
			}
		}
		for seq := range o.sparse {
			s.Mark(seq)
		}
		// Raising the watermark may have made existing sparse entries
		// contiguous with it.
		for {
			if _, ok := s.sparse[s.watermark+1]; !ok {
				break
			}
			delete(s.sparse, s.watermark+1)
			s.watermark++
		}
	}
}
