// Package dissem is the pluggable payload-dissemination seam shared by
// both atomic broadcast stacks: it decides how a payload-bearing frame
// reaches the group, independently of how the group then orders it.
//
// Two strategies exist. AllToAll is the paper's original behavior — the
// origin transmits the frame to all n-1 peers itself — and is bit-for-bit
// pinned by the netsim golden traces. Ring derives a deterministic
// successor order from the membership list: the origin transmits each
// frame exactly once (to its first live successor), every process relays
// it onward, and the relay stops when the frame would return to the
// origin, when its hop count reaches n, or when a dedup watermark has
// already seen it. Ring trades one broadcast for n-1 sequential hops,
// turning the origin's O(n) egress into O(1) — the coordinator-NIC
// bottleneck fix (cf. Ring Paxos).
//
// Only payload frames go through a Disseminator. Control traffic —
// consensus proposals/estimates/acks, decisions, recovery and snapshot
// frames — stays all-to-all or point-to-point since it is small; the
// engines keep those paths untouched.
//
// Fault tolerance: the successor walk skips processes the local failure
// detector currently suspects (FD-driven ring repair), so a cut ring
// heals as soon as suspicions propagate; the engines additionally
// re-spread still-undecided payloads on suspicion changes and on their
// kick/resend timers, with fresh sequence numbers, covering the window
// before the detector fires. Sequence numbers are incarnation-tagged in
// their high bits exactly like the modular rbcast's broadcast numbering,
// so a restarted origin is never dedup-suppressed against its pre-crash
// traffic.
package dissem

import (
	"modab/internal/types"
	"modab/internal/wire"
)

// Strategy selects a dissemination topology. The zero value is AllToAll,
// the paper's original behavior.
type Strategy int

const (
	// AllToAll has the origin transmit every payload frame to all n-1
	// peers itself (the paper's behavior; golden-trace pinned).
	AllToAll Strategy = iota
	// Ring has the origin transmit each payload frame once to its first
	// live successor; every process relays it onward until it would
	// return to the origin or a dedup watermark kills it.
	Ring
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case AllToAll:
		return "all-to-all"
	case Ring:
		return "ring"
	default:
		return "unknown"
	}
}

// Validate reports whether s names a known strategy.
func (s Strategy) Validate() error {
	switch s {
	case AllToAll, Ring:
		return nil
	default:
		return types.ErrBadConfig
	}
}

// ParseStrategy maps the command-line spelling of a strategy ("all-to-all"
// or "ring") to its value.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "all-to-all", "alltoall", "":
		return AllToAll, nil
	case "ring":
		return Ring, nil
	default:
		return 0, types.ErrBadConfig
	}
}

// Disseminator is the per-process dissemination state machine. Engines
// consult it at every payload spread (Origin) and at every received
// relay frame (Accept); it owns successor selection and duplicate
// suppression, never the bytes themselves — the engine performs the
// actual sends so its accounting and persistence hooks stay in one
// place. All methods run on the engine's single logical thread.
type Disseminator interface {
	// Strategy identifies the topology, letting engines keep their
	// original code path (and wire format) byte-identical under AllToAll.
	Strategy() Strategy
	// Origin starts the spread of one locally originated frame. When
	// relay is false the caller must broadcast the frame plainly to all
	// peers exactly as it always has (AllToAll, groups of one, or a ring
	// with no live successor). When relay is true the caller wraps the
	// frame with the returned header and transmits it to the single
	// process to.
	Origin() (h wire.RelayHeader, to types.ProcessID, relay bool)
	// Accept processes a received relay header. process is false when
	// the frame is a duplicate (already seen) and must be ignored
	// entirely. forward is true when the frame must be relayed onward:
	// the caller re-wraps the inner frame with nh and transmits it to
	// to. Accept marks the frame seen before answering, so a frame
	// lapping the ring dies at its first revisit.
	Accept(h wire.RelayHeader) (nh wire.RelayHeader, to types.ProcessID, process, forward bool)
	// Suspect updates the failure-detector view the successor walk
	// skips over. Engines forward every FD transition here.
	Suspect(p types.ProcessID, suspected bool)
	// SetMembers switches the membership view at a decided boundary.
	// The ring successor order is derived from the member list, so a
	// removed member closes its ring hole instead of being skipped as a
	// permanent suspect; suspicion state of non-members is pruned.
	SetMembers(members []types.ProcessID)
}

// incarnationShift splits a dissemination sequence number: the high 16
// bits carry the origin's boot count, the low 48 its per-incarnation
// counter (same layout as the modular rbcast's broadcast numbering).
const incarnationShift = 48

// New builds the Disseminator for strategy s at process self in a group
// of n. incarnation is the origin's boot count (RecoveredState.Boots;
// zero on a first boot, making the crash-stop wire bytes exact).
func New(s Strategy, self types.ProcessID, n int, incarnation uint64) Disseminator {
	if s == Ring {
		members := make([]types.ProcessID, n)
		for i := range members {
			members[i] = types.ProcessID(i)
		}
		return &ring{
			self:    self,
			members: members,
			nextSeq: incarnation<<incarnationShift + 1,
			seen:    make(map[types.ProcessID]map[uint64]*dedup),
		}
	}
	return allToAll{}
}

// allToAll is the trivial strategy: every Origin answers "broadcast it
// yourself" and no relay frames ever exist to Accept.
type allToAll struct{}

func (allToAll) Strategy() Strategy { return AllToAll }
func (allToAll) Origin() (wire.RelayHeader, types.ProcessID, bool) {
	return wire.RelayHeader{}, types.Nobody, false
}
func (allToAll) Accept(wire.RelayHeader) (wire.RelayHeader, types.ProcessID, bool, bool) {
	return wire.RelayHeader{}, types.Nobody, false, false
}
func (allToAll) Suspect(types.ProcessID, bool) {}
func (allToAll) SetMembers([]types.ProcessID)  {}

// ring implements the successor-relay topology.
type ring struct {
	self      types.ProcessID
	members   []types.ProcessID // sorted current view
	nextSeq   uint64
	suspected map[types.ProcessID]bool
	seen      map[types.ProcessID]map[uint64]*dedup
}

func (r *ring) Strategy() Strategy { return Ring }

// SetMembers implements Disseminator.
func (r *ring) SetMembers(members []types.ProcessID) {
	r.members = append([]types.ProcessID(nil), members...)
	for p := range r.suspected {
		if !r.isMember(p) {
			delete(r.suspected, p)
		}
	}
}

func (r *ring) isMember(p types.ProcessID) bool {
	for _, m := range r.members {
		if m == p {
			return true
		}
	}
	return false
}

// successor returns the first live member after from in member-rank ring
// order, skipping looping back to from (the search start) and every
// currently suspected process. ok is false when no live successor other
// than from exists. For the static boot view {0..n-1} the walk is
// identical to the original (from+i) mod n ID arithmetic.
func (r *ring) successor(from types.ProcessID) (types.ProcessID, bool) {
	n := len(r.members)
	if n == 0 {
		return types.Nobody, false
	}
	// Rank of the first member strictly after from (wrapping to 0); works
	// whether or not from itself is still a member.
	start := 0
	for i, p := range r.members {
		if p > from {
			start = i
			break
		}
	}
	for i := 0; i < n; i++ {
		p := r.members[(start+i)%n]
		if p == from || r.suspected[p] {
			continue
		}
		return p, true
	}
	return types.Nobody, false
}

func (r *ring) Origin() (wire.RelayHeader, types.ProcessID, bool) {
	if len(r.members) < 3 {
		// A ring of two degenerates to a direct send; plain broadcast is
		// the same wire cost and keeps the control path trivial.
		return wire.RelayHeader{}, types.Nobody, false
	}
	to, ok := r.successor(r.self)
	if !ok {
		// Everyone else is suspected: fall back to plain broadcast so a
		// wrongly suspected (still live) peer can still hear us.
		return wire.RelayHeader{}, types.Nobody, false
	}
	h := wire.RelayHeader{Origin: r.self, Seq: r.nextSeq}
	r.nextSeq++
	r.markSeen(r.self, h.Seq)
	return h, to, true
}

func (r *ring) Accept(h wire.RelayHeader) (wire.RelayHeader, types.ProcessID, bool, bool) {
	if h.Origin == r.self || r.isSeen(h.Origin, h.Seq) {
		// Our own frame lapped the ring, or a duplicate: drop it.
		return wire.RelayHeader{}, types.Nobody, false, false
	}
	r.markSeen(h.Origin, h.Seq)
	nh := wire.RelayHeader{Origin: h.Origin, Seq: h.Seq, Hops: h.Hops + 1}
	if int(nh.Hops) >= len(r.members) {
		// Hop budget exhausted — every process has had its chance.
		return wire.RelayHeader{}, types.Nobody, true, false
	}
	to, ok := r.successor(r.self)
	if !ok || to == h.Origin {
		// The walk came back around to the origin: the lap is complete.
		return wire.RelayHeader{}, types.Nobody, true, false
	}
	return nh, to, true, true
}

func (r *ring) Suspect(p types.ProcessID, suspected bool) {
	if p == r.self {
		return
	}
	if r.suspected == nil {
		r.suspected = make(map[types.ProcessID]bool)
	}
	if suspected {
		r.suspected[p] = true
	} else {
		delete(r.suspected, p)
	}
}

// dedup suppresses duplicate (origin, incarnation, seq) triples with a
// contiguous watermark plus a sparse set for out-of-order arrivals
// (same structure as the modular rbcast's suppressor): each origin
// incarnation numbers its frames contiguously from 1, so the watermark
// keeps advancing across restarts instead of wedging on the
// inter-incarnation gap.
type dedup struct {
	watermark uint64
	sparse    map[uint64]struct{}
}

func (r *ring) dedupFor(origin types.ProcessID, inc uint64) *dedup {
	byInc := r.seen[origin]
	if byInc == nil {
		byInc = make(map[uint64]*dedup, 1)
		r.seen[origin] = byInc
	}
	d := byInc[inc]
	if d == nil {
		d = &dedup{sparse: make(map[uint64]struct{})}
		byInc[inc] = d
	}
	return d
}

func splitSeq(seq uint64) (inc, ctr uint64) {
	return seq >> incarnationShift, seq & (1<<incarnationShift - 1)
}

func (r *ring) isSeen(origin types.ProcessID, seq uint64) bool {
	inc, ctr := splitSeq(seq)
	d := r.dedupFor(origin, inc)
	if ctr <= d.watermark {
		return true
	}
	_, ok := d.sparse[ctr]
	return ok
}

func (r *ring) markSeen(origin types.ProcessID, seq uint64) {
	inc, ctr := splitSeq(seq)
	d := r.dedupFor(origin, inc)
	if ctr <= d.watermark {
		return
	}
	d.sparse[ctr] = struct{}{}
	for {
		if _, ok := d.sparse[d.watermark+1]; !ok {
			break
		}
		delete(d.sparse, d.watermark+1)
		d.watermark++
	}
}
