package dissem

import (
	"errors"
	"testing"

	"modab/internal/types"
	"modab/internal/wire"
)

func TestStrategyValidateAndParse(t *testing.T) {
	if err := AllToAll.Validate(); err != nil {
		t.Fatalf("AllToAll.Validate: %v", err)
	}
	if err := Ring.Validate(); err != nil {
		t.Fatalf("Ring.Validate: %v", err)
	}
	if err := Strategy(7).Validate(); !errors.Is(err, types.ErrBadConfig) {
		t.Fatalf("Strategy(7).Validate = %v, want ErrBadConfig", err)
	}
	for _, tc := range []struct {
		in   string
		want Strategy
	}{{"", AllToAll}, {"all-to-all", AllToAll}, {"alltoall", AllToAll}, {"ring", Ring}} {
		got, err := ParseStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseStrategy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseStrategy("bogus"); !errors.Is(err, types.ErrBadConfig) {
		t.Fatalf("ParseStrategy(bogus) = %v, want ErrBadConfig", err)
	}
	if AllToAll.String() != "all-to-all" || Ring.String() != "ring" || Strategy(7).String() != "unknown" {
		t.Fatal("Strategy.String spellings changed")
	}
}

func TestAllToAllNeverRelays(t *testing.T) {
	d := New(AllToAll, 0, 5, 0)
	if d.Strategy() != AllToAll {
		t.Fatal("wrong strategy")
	}
	if _, _, relay := d.Origin(); relay {
		t.Fatal("AllToAll.Origin asked for a relay")
	}
	_, _, process, forward := d.Accept(wire.RelayHeader{Origin: 1, Seq: 1})
	if process || forward {
		t.Fatal("AllToAll.Accept processed a relay frame")
	}
}

// TestRingOriginWalksToSuccessor pins the deterministic successor order:
// process self originates to (self+1) mod n, skipping suspects.
func TestRingOriginWalksToSuccessor(t *testing.T) {
	d := New(Ring, 3, 5, 0)
	h, to, relay := d.Origin()
	if !relay || to != 4 {
		t.Fatalf("Origin = to %v relay %v, want to 4 (successor of 3)", to, relay)
	}
	if h.Origin != 3 || h.Seq != 1 || h.Hops != 0 {
		t.Fatalf("header = %+v, want {Origin:3 Seq:1 Hops:0}", h)
	}
	// Successive origins get fresh contiguous sequence numbers.
	h2, _, _ := d.Origin()
	if h2.Seq != 2 {
		t.Fatalf("second Seq = %d, want 2", h2.Seq)
	}
	// Suspecting the successor moves the walk one step (wrapping past n).
	d.Suspect(4, true)
	if _, to, _ := d.Origin(); to != 0 {
		t.Fatalf("Origin with p4 suspected = %v, want 0 (wrap)", to)
	}
	// Clearing the suspicion restores it.
	d.Suspect(4, false)
	if _, to, _ := d.Origin(); to != 4 {
		t.Fatalf("Origin after un-suspect = %v, want 4", to)
	}
}

// TestRingOriginFallsBackToBroadcast covers the two degenerate cases
// where the caller must broadcast plainly: tiny groups and an all-
// suspected membership.
func TestRingOriginFallsBackToBroadcast(t *testing.T) {
	if _, _, relay := New(Ring, 0, 2, 0).Origin(); relay {
		t.Fatal("n=2 ring should fall back to plain broadcast")
	}
	d := New(Ring, 0, 3, 0)
	d.Suspect(1, true)
	d.Suspect(2, true)
	if _, _, relay := d.Origin(); relay {
		t.Fatal("fully suspected ring should fall back to plain broadcast")
	}
	// Suspecting self is ignored (the FD never reports self, but guard it).
	d.Suspect(0, true)
	d.Suspect(1, false)
	if _, to, relay := d.Origin(); !relay || to != 1 {
		t.Fatalf("after un-suspecting p1: to %v relay %v, want relay to 1", to, relay)
	}
}

// TestRingAcceptForwardsAndStops walks one frame around a 4-ring by hand
// and checks the stop conditions: forward mid-ring, stop at the process
// whose successor is the origin, drop at the origin itself.
func TestRingAcceptForwardsAndStops(t *testing.T) {
	h := wire.RelayHeader{Origin: 0, Seq: 1}

	d1 := New(Ring, 1, 4, 0)
	nh, to, process, forward := d1.Accept(h)
	if !process || !forward || to != 2 {
		t.Fatalf("p1.Accept = process %v forward %v to %v, want forward to 2", process, forward, to)
	}
	if nh.Hops != 1 {
		t.Fatalf("p1 forwarded with Hops=%d, want 1", nh.Hops)
	}

	d2 := New(Ring, 2, 4, 0)
	nh2, to2, process, forward := d2.Accept(nh)
	if !process || !forward || to2 != 3 {
		t.Fatalf("p2.Accept = process %v forward %v to %v, want forward to 3", process, forward, to2)
	}

	d3 := New(Ring, 3, 4, 0)
	_, _, process, forward = d3.Accept(nh2)
	if !process || forward {
		t.Fatalf("p3.Accept = process %v forward %v, want process without forward (successor is origin)", process, forward)
	}

	// A frame lapping back to its origin is dropped outright.
	d0 := New(Ring, 0, 4, 0)
	d0.Origin()
	_, _, process, forward = d0.Accept(wire.RelayHeader{Origin: 0, Seq: 1, Hops: 3})
	if process || forward {
		t.Fatal("origin processed its own lapped frame")
	}
}

// TestRingAcceptDedup re-presents the same header twice: the second copy
// is neither processed nor forwarded.
func TestRingAcceptDedup(t *testing.T) {
	d := New(Ring, 1, 4, 0)
	h := wire.RelayHeader{Origin: 0, Seq: 1}
	if _, _, process, _ := d.Accept(h); !process {
		t.Fatal("first copy not processed")
	}
	if _, _, process, forward := d.Accept(h); process || forward {
		t.Fatal("duplicate copy processed or forwarded")
	}
	// Out-of-order arrivals are tracked sparsely, then folded into the
	// watermark once the gap fills.
	if _, _, process, _ := d.Accept(wire.RelayHeader{Origin: 0, Seq: 5}); !process {
		t.Fatal("out-of-order seq 5 not processed")
	}
	if _, _, process, _ := d.Accept(wire.RelayHeader{Origin: 0, Seq: 5}); process {
		t.Fatal("duplicate of sparse seq 5 processed")
	}
	for _, seq := range []uint64{2, 3, 4} {
		if _, _, process, _ := d.Accept(wire.RelayHeader{Origin: 0, Seq: seq}); !process {
			t.Fatalf("gap-filling seq %d not processed", seq)
		}
	}
	if _, _, process, _ := d.Accept(wire.RelayHeader{Origin: 0, Seq: 3}); process {
		t.Fatal("watermark-covered seq 3 processed again")
	}
}

// TestRingAcceptHopBudget exhausts the hop counter: once Hops reaches n
// the frame is processed but never forwarded, bounding a misrouted frame
// even if the origin check were fooled.
func TestRingAcceptHopBudget(t *testing.T) {
	d := New(Ring, 1, 4, 0)
	_, _, process, forward := d.Accept(wire.RelayHeader{Origin: 2, Seq: 1, Hops: 3})
	if !process || forward {
		t.Fatalf("Accept at hop budget = process %v forward %v, want process without forward", process, forward)
	}
}

// TestRingAcceptSkipsSuspectedSuccessor routes around a dead mid-ring
// process: p1 forwards straight to p3 when p2 is suspected.
func TestRingAcceptSkipsSuspectedSuccessor(t *testing.T) {
	d := New(Ring, 1, 4, 0)
	d.Suspect(2, true)
	_, to, process, forward := d.Accept(wire.RelayHeader{Origin: 0, Seq: 1})
	if !process || !forward || to != 3 {
		t.Fatalf("Accept with p2 suspected = process %v forward %v to %v, want forward to 3", process, forward, to)
	}
}

// TestRingIncarnationTagging checks a restarted origin's frames are not
// suppressed against its pre-crash traffic: the boot count lives in the
// sequence's high bits, giving each incarnation its own dedup space.
func TestRingIncarnationTagging(t *testing.T) {
	d := New(Ring, 0, 3, 2)
	h, _, relay := d.Origin()
	if !relay {
		t.Fatal("no relay")
	}
	if h.Seq != 2<<incarnationShift+1 {
		t.Fatalf("incarnation-2 first Seq = %#x, want %#x", h.Seq, uint64(2<<incarnationShift+1))
	}
	// A receiver that saw the pre-crash seq 1 still accepts the
	// post-restart seq 1 of the new incarnation.
	recv := New(Ring, 1, 3, 0)
	if _, _, process, _ := recv.Accept(wire.RelayHeader{Origin: 0, Seq: 1}); !process {
		t.Fatal("pre-crash frame not processed")
	}
	if _, _, process, _ := recv.Accept(wire.RelayHeader{Origin: 0, Seq: h.Seq}); !process {
		t.Fatal("post-restart frame wrongly dedup-suppressed against the old incarnation")
	}
}
