// Package engine defines the contract between protocol implementations
// (the modular and monolithic atomic broadcast stacks) and the drivers
// that run them (the discrete-event simulator and the real-time runtime).
//
// Engines are pure, single-threaded state machines: they never spawn
// goroutines, read wall-clock time, or block. All interaction with the
// world goes through the Env interface injected at construction. This is
// what lets the exact same protocol code run deterministically under
// simulated virtual time and concurrently over real TCP connections.
package engine

import (
	"time"

	"modab/internal/batch"
	"modab/internal/dedup"
	"modab/internal/dissem"
	"modab/internal/member"
	"modab/internal/obs"
	"modab/internal/trace"
	"modab/internal/types"
	"modab/internal/wire"
)

// TimerID names a logical timer owned by an engine. Re-arming an ID
// replaces the previous deadline; firing is edge-triggered.
type TimerID int64

// Well-known timer IDs. Engines may derive further IDs above TimerUser.
const (
	// TimerKick fires when no message has been received for the configured
	// idle period; the abcast layer then starts a consensus even with an
	// empty batch (paper §3.3, correctness under partial diffusion).
	TimerKick TimerID = 1
	// TimerResend drives crash-path retransmissions.
	TimerResend TimerID = 2
	// TimerFlush is the sender-side batching age trigger: it fires
	// Config.Batch.MaxDelay after the first message entered an empty
	// accumulator, sealing an undersized batch (see internal/batch).
	TimerFlush TimerID = 3
	// TimerRecover drives state-transfer retries while a restarted engine
	// is catching up on missed decisions (crash-recovery subsystem).
	TimerRecover TimerID = 4
	// TimerPayload drives digest-ordering payload re-fetch: armed while an
	// in-order decided descriptor's payload batch is not yet resident, it
	// fetches the missing bytes from one rotating live holder per fire.
	TimerPayload TimerID = 5
	// TimerUser is the first ID free for driver/application use.
	TimerUser TimerID = 64
)

// Delivery is one adelivered application message together with the
// consensus instance that ordered it.
type Delivery struct {
	Msg      wire.AppMsg
	Instance uint64
}

// Event is one adelivery attributed to the process that performed it —
// the element type of the group- and cluster-level delivery streams
// (core.Group.Deliveries, netsim.Cluster.Deliveries). At is the driver's
// clock at delivery: virtual time in simulation, elapsed monotonic time
// in real time.
type Event struct {
	P  types.ProcessID
	D  Delivery
	At time.Duration
}

// Env is the world as seen by an engine. Drivers provide it; engines must
// treat it as the only side-effect channel they have.
//
// Concurrency: drivers guarantee that all Engine methods and all Env
// callbacks run on a single logical thread per process, so engines need no
// internal locking.
type Env interface {
	// Self returns the local process identifier (0-based).
	Self() types.ProcessID
	// N returns the upper bound of the process-ID space: the boot group
	// size, growing when dynamic membership admits joiners with higher
	// IDs. It is NOT the current member count — layers that need quorum
	// sizes or fan-out sets consult the decided membership view, never N.
	N() int
	// Now returns the elapsed time since the process started, in the
	// driver's clock (virtual in simulation, monotonic in real time).
	Now() time.Duration
	// Send transmits data to the given process over the quasi-reliable
	// point-to-point channel. Send never blocks and never fails; if the
	// destination has crashed the message is silently dropped (crash-stop
	// model).
	Send(to types.ProcessID, data []byte)
	// SetTimer (re-)arms the timer with the given ID to fire after d.
	SetTimer(id TimerID, d time.Duration)
	// CancelTimer disarms the timer if armed.
	CancelTimer(id TimerID)
	// Deliver hands an adelivered message to the application. Drivers fan
	// deliveries out to pull-based subscriber streams; under the Block
	// overflow policy a full subscriber buffer stalls Deliver — and with
	// it the engine — which is how application backpressure reaches the
	// ordering layer. Engines must therefore treat Deliver as potentially
	// slow but must NOT assume it can re-enter the engine (it never does).
	Deliver(d Delivery)
	// Counters returns the per-process instrumentation sink.
	Counters() *trace.Counters
}

// Persister is the durable-store hook the engines write through when
// crash recovery is enabled (Config.Persist). Implementations — the
// file-backed write-ahead log (internal/wal) and netsim's in-memory
// simulated store — are injected by the drivers; a nil Persister means
// the original crash-stop model (nothing survives a crash).
//
// Write-ahead contract: PersistAdmit must complete before the admitted
// messages are first diffused, and PersistDecision before the decided
// batch is adelivered. Implementations absorb their own I/O errors by
// failing stop (a process that cannot persist must not keep running), so
// the methods return nothing and engines never branch on storage state.
type Persister interface {
	// PersistAdmit records locally admitted application messages before
	// they enter the ordering machinery.
	PersistAdmit(b wire.Batch)
	// PersistDecision records one decided consensus instance before its
	// batch is adelivered.
	PersistDecision(k uint64, b wire.Batch)
	// ReadDecision fetches a previously persisted decision, serving
	// state-transfer requests that fall behind the engine's in-memory
	// retention horizon. ok is false when the instance is unknown.
	ReadDecision(k uint64) (wire.Batch, bool)
}

// SnapshotHooks connects an engine to the driver's snapshot subsystem
// (internal/rsm). When non-nil, the engine serves snapshot state
// transfer to far-behind peers (whose missing instances were truncated
// out of every log) and installs a fetched snapshot instead of replaying
// unbounded history. The engine keeps its own consequences of an install
// — merging the envelope's dedup state and jumping its decided watermark
// — while the hooks own everything application-side: persistence,
// restoring the state machine, truncating the log.
type SnapshotHooks struct {
	// Latest returns the index of the newest durable local snapshot
	// (ok false when none exists yet).
	Latest func() (index uint64, ok bool)
	// Read returns the chunk [off, off+max) of the encoded snapshot
	// envelope at index, plus the envelope's total size. ok is false when
	// that snapshot is no longer available.
	Read func(index uint64, off, max int) (data []byte, total int, ok bool)
	// Install persists a fetched envelope locally and restores the
	// application state machine from it. Called before the engine adopts
	// the envelope's dedup state, so a failed install leaves the engine
	// unchanged.
	Install func(env wire.SnapshotEnvelope) error
}

// RecoveredState seeds a restarting engine with the state replayed from
// its write-ahead log (internal/recovery builds it). A nil state — or a
// fresh, empty log — means a first boot.
type RecoveredState struct {
	// NextDecide is the lowest consensus instance not yet decided locally
	// (the replayed decided watermark + 1).
	NextDecide uint64
	// Delivered is the reconstructed per-sender duplicate suppressor: the
	// engine adopts it so replayed messages are never adelivered twice.
	Delivered dedup.Map
	// Own holds this process's admitted-but-unordered messages: logged by
	// PersistAdmit but absent from every replayed decision. The engine
	// re-injects them into the ordering path after the restart.
	Own wire.Batch
	// NextSeq is the next local abcast sequence number to assign; resuming
	// above every logged sequence number is what makes a restarted
	// process's message IDs unambiguous.
	NextSeq uint64
	// ReplayedMsgs counts the adelivered messages reconstructed from the
	// log (feeds trace.Counters.RecoveryReplayedMsgs).
	ReplayedMsgs int64
	// Boots counts the previous incarnations found in the log (their boot
	// markers). Layers that stamp per-broadcast sequence numbers on the
	// wire namespace them by incarnation, so a restarted process's fresh
	// numbering is never mistaken for duplicates of its pre-crash traffic
	// (the modular rbcast needs this; see rbcast.New).
	Boots uint64
}

// Engine is a deterministic protocol state machine implementing atomic
// broadcast. Implementations: the modular stack (internal/modular) and the
// monolithic stack (internal/monolithic).
type Engine interface {
	// Start is invoked exactly once, after construction and before any
	// other call; engines arm their initial timers here.
	Start()
	// HandleMessage processes one inbound network message. Malformed
	// messages are dropped and reported as an error (drivers surface the
	// error in tests; production drivers count and continue).
	HandleMessage(from types.ProcessID, data []byte) error
	// HandleTimer fires a previously armed timer.
	HandleTimer(id TimerID)
	// Abcast submits an application payload for total-order broadcast.
	// It returns the assigned message ID, or types.ErrFlowControl when the
	// flow-control window is exhausted (the caller retries after
	// deliveries free the window).
	Abcast(body []byte) (types.MsgID, error)
	// Suspect updates the failure-detector output for process p.
	Suspect(p types.ProcessID, suspected bool)
	// Pending returns the number of locally known application messages
	// not yet adelivered (diagnostics and flow-control tests).
	Pending() int
}

// ConfigSubmitter is implemented by engines that support dynamic
// membership (both stacks do). SubmitConfig stamps the op with the
// engine's current epoch and submits it through the ordinary abcast
// path; the op decides like any message and activates at the decided
// boundary. Drivers type-assert for it on the Engine interface.
type ConfigSubmitter interface {
	SubmitConfig(op member.Op) (types.MsgID, error)
	// CurrentView returns the newest locally applied membership view
	// (possibly not yet activated — activation lags the decide by the
	// pipeline window).
	CurrentView() member.View
}

// Config carries the tunables shared by both stacks. The zero value is not
// valid; use DefaultConfig and override.
type Config struct {
	// N is the group size (required, >= 1).
	N int
	// Window is the per-process flow-control window: the maximum number of
	// locally abcast messages not yet adelivered. The paper's flow control
	// targets an average of M = 4 messages ordered per consensus.
	Window int
	// MaxBatch caps the number of messages packed into one consensus
	// proposal; 0 means unlimited.
	MaxBatch int
	// IdleKick is the paper's t: after this long without receiving any
	// message, a process starts a consensus even with an empty batch.
	// Zero disables the kick (useful in unit tests).
	IdleKick time.Duration
	// ResendEvery drives crash-path retransmission timers.
	ResendEvery time.Duration
	// DecisionHorizon is how many decided instances are retained for
	// catch-up retransmission before being pruned.
	DecisionHorizon int
	// ClassicRBcast makes the modular stack's reliable broadcast use the
	// classical re-send-at-every-process algorithm (≈n² messages per
	// broadcast) instead of the majority-relay optimization the paper's
	// modular stack uses. Benchmark ablation only; ignored by the
	// monolithic stack.
	ClassicRBcast bool
	// Batch configures sender-side batching: application messages are
	// coalesced at the submitting process and diffused/proposed as one
	// unit, amortizing per-message header bytes and handler dispatches.
	// The zero value disables it (one diffusion per message, the paper's
	// original behavior). Both stacks honor it identically.
	Batch batch.Config
	// Dissemination selects the payload-dissemination topology (see
	// internal/dissem): AllToAll (the zero value, the paper's original
	// behavior — golden-trace pinned) or Ring (origin sends each payload
	// frame once; successors relay; the coordinator's NIC stops being the
	// bottleneck). Control traffic — proposals as control, estimates,
	// acks, decisions, recovery, snapshots — is unaffected. Both stacks
	// honor it identically.
	Dissemination dissem.Strategy
	// DigestOrdering separates payload dissemination from ordering: the
	// sender rbcasts a batch's payload bytes exactly once (an announce
	// frame through the dissemination seam), and consensus then orders a
	// compact descriptor — (origin, incarnation-tagged batch seq, CRC
	// digest, count) — instead of the payload-carrying batch, so
	// proposal/estimate/ack/decision frames stop scaling with payload
	// size. Adelivery of a decided descriptor blocks until its payload is
	// resident (internal/payload), with a timer-driven re-fetch from a
	// rotating live holder. Off by default (the golden-trace-pinned
	// payload-ordering behavior). Both stacks honor it identically.
	DigestOrdering bool
	// PipelineDepth is the consensus pipeline window W: the maximum number
	// of consensus instances a process keeps in flight concurrently
	// instead of waiting for instance k to decide before proposing k+1.
	// 0 and 1 both mean the paper's strictly sequential behavior (and are
	// bit-identical to it); higher values overlap the decision round-trips
	// of up to W instances in both stacks. Delivery order, duplicate
	// suppression and the flow-control contract are unchanged — pipelining
	// only overlaps the wait. Both stacks honor it identically.
	PipelineDepth int
	// Persist, when non-nil, enables the crash-recovery subsystem: the
	// engine writes admissions and decisions through it ahead of acting on
	// them. Driver-injected (see internal/wal and netsim's simulated
	// store), not a user tunable.
	Persist Persister
	// Recovered, when non-nil, seeds the engine with the state replayed
	// from its durable store; the engine then performs state transfer for
	// the decisions it missed while down before resuming normal operation.
	// Driver-injected.
	Recovered *RecoveredState
	// Snapshots, when non-nil, enables snapshot state transfer: the engine
	// answers recovery requests it cannot serve from its (truncated) log
	// with its latest snapshot index, serves snapshot chunks, and installs
	// a peer snapshot when it is itself too far behind. Driver-injected
	// (see internal/rsm), not a user tunable.
	Snapshots *SnapshotHooks
	// InitialView, when non-nil, seeds the engine's membership history
	// with an explicit boot view instead of the static epoch-0 group
	// {0..N-1}. Drivers set it when spawning a joiner, whose first view
	// is the config it was admitted into, not history's beginning.
	InitialView *member.View
	// OnConfig, when non-nil, is invoked — in delivery order, while the
	// engine processes the deciding instance — each time a membership
	// change is applied locally, with the view it produced and the op
	// that produced it (op.Addr carries a joiner's transport address).
	// Drivers use it to spawn joiners, stop removed processes, grow
	// transport address tables, and retarget failure-detector monitor
	// sets. Like Deliver, it must not re-enter the engine.
	OnConfig func(v member.View, op member.Op)
	// Obs, when non-nil, enables the observability layer: the engine
	// records latency histogram samples and sampled message lifecycle
	// stages through it, using Env.Now timestamps only — recording never
	// sends a message or arms a timer, so enabling it cannot perturb the
	// protocol trace. Driver-injected (see internal/obs), not a user
	// tunable.
	Obs *obs.Recorder
}

// DefaultWindow returns the per-process flow-control window used by both
// stacks (the paper stresses that the two implementations share the same
// flow-control mechanism). It targets a group-wide backlog of about 12
// messages; with a delivery pipeline 2-3 instances deep this orders the
// paper's M ≈ 4 messages per consensus under saturation.
func DefaultWindow(n int) int {
	if n <= 0 {
		return 1
	}
	const backlog = 12
	w := (backlog + n - 1) / n
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultConfig returns the tunables used throughout the paper's
// evaluation for a group of n processes.
func DefaultConfig(n int) Config {
	return Config{
		N:               n,
		Window:          DefaultWindow(n),
		MaxBatch:        0,
		IdleKick:        50 * time.Millisecond,
		ResendEvery:     100 * time.Millisecond,
		DecisionHorizon: 128,
	}
}

// EffectivePipeline returns the consensus pipeline window the engines
// actually run: PipelineDepth, with the zero value meaning the sequential
// depth 1.
func (c Config) EffectivePipeline() int {
	if c.PipelineDepth < 1 {
		return 1
	}
	return c.PipelineDepth
}

// EffectiveWindow returns the flow-control window the engines actually
// use: Config.Window, widened to cover two full sender-side batches when
// batching is enabled, and multiplied by the pipeline depth when
// pipelining is enabled. Flow control keeps accounting in-flight messages
// at message granularity (each application message occupies one slot
// until its own adelivery); the widenings only ensure the window can span
// a batch boundary (a batch can fill while the previous one is still
// being ordered) and W concurrent consensus instances (W instances each
// ordering M messages need a W× deeper per-process backlog to stay
// busy). With the default window (≈12 messages group-wide) a 64-message
// batch — or an 8-deep pipeline — would otherwise starve.
func (c Config) EffectiveWindow() int {
	w := c.Window
	if c.Batch.Enabled() && 2*c.Batch.MaxMsgs > w {
		w = 2 * c.Batch.MaxMsgs
	}
	return w * c.EffectivePipeline()
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return types.ErrEmptyGroup
	case c.Window < 1:
		return types.ErrBadConfig
	case c.MaxBatch < 0:
		return types.ErrBadConfig
	case c.PipelineDepth < 0:
		return types.ErrBadConfig
	case c.DecisionHorizon < 1:
		return types.ErrBadConfig
	default:
		if err := c.Dissemination.Validate(); err != nil {
			return err
		}
		return c.Batch.Validate()
	}
}
