package engine

import (
	"errors"
	"testing"
	"time"

	"modab/internal/types"
)

func TestDefaultConfigIsValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 20} {
		cfg := DefaultConfig(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("DefaultConfig(%d) invalid: %v", n, err)
		}
		if cfg.N != n {
			t.Errorf("N = %d", cfg.N)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want error
	}{
		{"empty group", func(c *Config) { c.N = 0 }, types.ErrEmptyGroup},
		{"zero window", func(c *Config) { c.Window = 0 }, types.ErrBadConfig},
		{"negative batch", func(c *Config) { c.MaxBatch = -1 }, types.ErrBadConfig},
		{"zero horizon", func(c *Config) { c.DecisionHorizon = 0 }, types.ErrBadConfig},
		{"negative pipeline", func(c *Config) { c.PipelineDepth = -1 }, types.ErrBadConfig},
	}
	for _, c := range cases {
		cfg := DefaultConfig(3)
		c.mut(&cfg)
		if err := cfg.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

func TestDefaultWindowTargetsBacklog(t *testing.T) {
	// The window must give a group backlog of roughly 12 (±n rounding)
	// and never be below 1.
	for n := 1; n <= 24; n++ {
		w := DefaultWindow(n)
		if w < 1 {
			t.Fatalf("window(%d) = %d", n, w)
		}
		backlog := w * n
		if backlog < 12 || backlog > 12+n {
			t.Errorf("n=%d: backlog %d outside [12, %d]", n, backlog, 12+n)
		}
	}
	if DefaultWindow(0) != 1 {
		t.Error("degenerate group window")
	}
	// The paper's group sizes.
	if DefaultWindow(3) != 4 || DefaultWindow(7) != 2 {
		t.Errorf("paper windows: n=3 -> %d, n=7 -> %d", DefaultWindow(3), DefaultWindow(7))
	}
}

func TestEffectivePipelineAndWindowWidening(t *testing.T) {
	cfg := DefaultConfig(3)
	if cfg.EffectivePipeline() != 1 {
		t.Fatalf("zero PipelineDepth: effective %d, want 1", cfg.EffectivePipeline())
	}
	base := cfg.EffectiveWindow()
	cfg.PipelineDepth = 1
	if cfg.EffectiveWindow() != base {
		t.Fatalf("depth 1 widened the window: %d != %d", cfg.EffectiveWindow(), base)
	}
	cfg.PipelineDepth = 8
	if got := cfg.EffectiveWindow(); got != 8*base {
		t.Fatalf("depth 8 window = %d, want %d (W instances must be able to stay busy)", got, 8*base)
	}
	// Pipelining composes with batching: the batch widening applies first,
	// then the depth factor.
	cfg.Batch.MaxMsgs = 32
	cfg.Batch.MaxDelay = time.Millisecond
	if got := cfg.EffectiveWindow(); got != 8*64 {
		t.Fatalf("batched+pipelined window = %d, want %d", got, 8*64)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid pipelined config rejected: %v", err)
	}
}
