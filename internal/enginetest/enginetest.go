// Package enginetest provides a fake engine.Env for unit-testing protocol
// layers and engines in isolation: it records sends, timers and
// deliveries, and lets tests advance a manual clock.
package enginetest

import (
	"time"

	"modab/internal/engine"
	"modab/internal/trace"
	"modab/internal/types"
)

// Sent is one recorded transmission.
type Sent struct {
	To   types.ProcessID
	Data []byte
}

// Timer is one recorded timer arm/cancel.
type Timer struct {
	ID       engine.TimerID
	Delay    time.Duration
	Canceled bool
}

// Env is the recording fake.
type Env struct {
	SelfID types.ProcessID
	NProcs int
	Clock  time.Duration

	Sends      []Sent
	Timers     []Timer
	Deliveries []engine.Delivery
	Cnt        trace.Counters
}

var _ engine.Env = (*Env)(nil)

// New creates a fake environment for process self in a group of n.
func New(self types.ProcessID, n int) *Env {
	return &Env{SelfID: self, NProcs: n}
}

// Self implements engine.Env.
func (e *Env) Self() types.ProcessID { return e.SelfID }

// N implements engine.Env.
func (e *Env) N() int { return e.NProcs }

// Now implements engine.Env; advance Clock manually in tests.
func (e *Env) Now() time.Duration { return e.Clock }

// Send implements engine.Env.
func (e *Env) Send(to types.ProcessID, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	e.Cnt.MsgsSent.Add(1)
	e.Cnt.BytesSent.Add(int64(len(data)))
	e.Sends = append(e.Sends, Sent{To: to, Data: cp})
}

// SetTimer implements engine.Env.
func (e *Env) SetTimer(id engine.TimerID, d time.Duration) {
	e.Timers = append(e.Timers, Timer{ID: id, Delay: d})
}

// CancelTimer implements engine.Env.
func (e *Env) CancelTimer(id engine.TimerID) {
	e.Timers = append(e.Timers, Timer{ID: id, Canceled: true})
}

// Deliver implements engine.Env.
func (e *Env) Deliver(d engine.Delivery) { e.Deliveries = append(e.Deliveries, d) }

// Counters implements engine.Env.
func (e *Env) Counters() *trace.Counters { return &e.Cnt }

// SendsTo returns the recorded sends addressed to p.
func (e *Env) SendsTo(p types.ProcessID) []Sent {
	var out []Sent
	for _, s := range e.Sends {
		if s.To == p {
			out = append(out, s)
		}
	}
	return out
}

// Reset clears the recorded sends, timers and deliveries (counters keep
// accumulating, as they would in a real run).
func (e *Env) Reset() {
	e.Sends = nil
	e.Timers = nil
	e.Deliveries = nil
}
