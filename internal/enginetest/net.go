package enginetest

import (
	"fmt"

	"modab/internal/types"
)

// Net routes the recorded sends of a set of fake environments into their
// counterpart receivers, FIFO, until quiescence — a synchronous mini
// network for protocol unit tests. Drop (optional) filters messages for
// fault injection; Dup (optional) delivers a message twice, modeling the
// duplication a faulty link (or a transport-level retransmission race)
// produces. Every dropped or delivered message is consumed.
type Net struct {
	Envs []*Env
	// Deliver hands one message to the destination protocol instance.
	Deliver func(to, from types.ProcessID, data []byte) error
	// Drop, when non-nil and true, discards the message instead.
	Drop func(from, to types.ProcessID, data []byte) bool
	// Dup, when non-nil and true, re-enqueues the message once after
	// delivering it (the duplicate is itself exempt from further
	// duplication, keeping the fault bounded).
	Dup func(from, to types.ProcessID, data []byte) bool

	queue []netMsg
	// Delivered counts messages actually handed to receivers.
	Delivered int
	// LinkMsgs and LinkBytes count per-link transmissions (keyed by
	// directed link), including dropped ones — they model what crossed
	// the sender's NIC, which is what dissemination-topology tests
	// assert on.
	LinkMsgs  map[Link]int
	LinkBytes map[Link]int
}

// Link is one directed sender→receiver pair of the mini network.
type Link struct {
	From, To types.ProcessID
}

type netMsg struct {
	from, to types.ProcessID
	data     []byte
	// duped marks a fault-injected duplicate (never duplicated again).
	duped bool
}

// collect harvests new sends from every env into the FIFO queue.
func (n *Net) collect() {
	for _, e := range n.Envs {
		for _, s := range e.Sends {
			n.queue = append(n.queue, netMsg{from: e.SelfID, to: s.To, data: s.Data})
		}
		e.Sends = nil
	}
}

// Step delivers one queued message; it reports whether any was pending.
func (n *Net) Step() (bool, error) {
	n.collect()
	if len(n.queue) == 0 {
		return false, nil
	}
	m := n.queue[0]
	n.queue = n.queue[1:]
	if n.LinkMsgs == nil {
		n.LinkMsgs = make(map[Link]int)
		n.LinkBytes = make(map[Link]int)
	}
	if !m.duped {
		l := Link{From: m.from, To: m.to}
		n.LinkMsgs[l]++
		n.LinkBytes[l] += len(m.data)
	}
	if n.Drop != nil && n.Drop(m.from, m.to, m.data) {
		return true, nil
	}
	if int(m.to) < 0 || int(m.to) >= len(n.Envs) {
		return true, fmt.Errorf("enginetest: send to unknown process %v", m.to)
	}
	if !m.duped && n.Dup != nil && n.Dup(m.from, m.to, m.data) {
		n.queue = append(n.queue, netMsg{from: m.from, to: m.to, data: m.data, duped: true})
	}
	n.Delivered++
	return true, n.Deliver(m.to, m.from, m.data)
}

// Run delivers until quiescence (bounded by a generous step budget so a
// protocol livelock fails the test instead of hanging it).
func (n *Net) Run() error {
	for steps := 0; steps < 100000; steps++ {
		ok, err := n.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return fmt.Errorf("enginetest: no quiescence after 100000 steps")
}
