// Package fd implements the local failure-detector module of the system
// model (paper §2.1): each process maintains a list of processes it
// currently suspects of having crashed. The list may be wrong (◇S-style
// unreliability); the consensus protocols tolerate wrong suspicions and
// only need the crashed coordinator to be suspected eventually.
//
// The real-time implementation is heartbeat-based: every process
// broadcasts heartbeats; a peer silent for longer than the timeout is
// suspected, and unsuspected again as soon as it is heard from.
package fd

import (
	"sort"
	"sync"
	"time"

	"modab/internal/types"
)

// ChangeFunc observes suspicion changes. Implementations of Detector
// invoke it serially.
type ChangeFunc func(p types.ProcessID, suspected bool)

// Detector is the failure-detector interface consumed by the runtime.
type Detector interface {
	// Start begins monitoring and reporting changes to onChange.
	Start(onChange ChangeFunc)
	// Heard records a sign of life from p (a heartbeat or any message).
	Heard(p types.ProcessID)
	// Suspects returns the current suspicion list (diagnostics).
	Suspects() []types.ProcessID
	// Close stops the detector.
	Close()
}

// Heartbeat is the timeout-based Detector. The runtime calls Heard on
// every heartbeat (and may call it on every protocol message, which makes
// suspicions strictly more accurate).
type Heartbeat struct {
	self    types.ProcessID
	timeout time.Duration
	period  time.Duration
	send    func(to types.ProcessID) // emits one heartbeat to a peer

	// reportMu serializes suspicion transitions WITH their onChange
	// reports. Under message loss the checker (silence threshold) and
	// Heard (a late heartbeat) race on the same peer: deciding a
	// transition under mu but invoking the callback after unlocking let
	// the two reports cross — the consumer could see "unsuspected" before
	// the matching "suspected", or a report contradicting the final state.
	// Decide-and-report is atomic under reportMu; mu alone still guards
	// the maps for lock-free readers (Suspects). Lock order: reportMu
	// before mu, never the reverse. onChange must not call back into the
	// detector.
	reportMu  sync.Mutex
	mu        sync.Mutex
	members   map[types.ProcessID]bool // peers currently monitored (never self)
	lastSeen  map[types.ProcessID]time.Time
	suspected map[types.ProcessID]bool
	onChange  ChangeFunc
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ Detector = (*Heartbeat)(nil)

// NewHeartbeat creates a heartbeat detector for process self in a group
// of n. send emits one heartbeat to a peer (wired to the transport by the
// runtime); period is the emission interval and timeout the silence
// threshold (timeout should be several periods).
func NewHeartbeat(self types.ProcessID, n int, period, timeout time.Duration,
	send func(to types.ProcessID)) *Heartbeat {
	members := make(map[types.ProcessID]bool, n)
	for i := 0; i < n; i++ {
		if p := types.ProcessID(i); p != self {
			members[p] = true
		}
	}
	return &Heartbeat{
		self:      self,
		timeout:   timeout,
		period:    period,
		send:      send,
		members:   members,
		lastSeen:  make(map[types.ProcessID]time.Time, n),
		suspected: make(map[types.ProcessID]bool, n),
		done:      make(chan struct{}),
	}
}

// SetMembers replaces the monitor set with the given group view (self is
// excluded automatically). State of removed peers is pruned — without
// this, a removed process stays suspected forever, ring dissemination
// keeps skipping a hole, and a later re-add of the same ID would inherit
// a stale suspicion. Newly added peers start with a fresh grace period
// and are unsuspected; their first suspicion (and the unsuspect when
// they are heard) is therefore reported exactly once, as for any peer.
func (h *Heartbeat) SetMembers(members []types.ProcessID) {
	h.reportMu.Lock()
	defer h.reportMu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	want := make(map[types.ProcessID]bool, len(members))
	for _, p := range members {
		if p != h.self {
			want[p] = true
		}
	}
	now := time.Now()
	for p := range want {
		if !h.members[p] {
			h.lastSeen[p] = now // grace period for joiners
		}
	}
	for p := range h.members {
		if !want[p] {
			delete(h.lastSeen, p)
			delete(h.suspected, p)
		}
	}
	h.members = want
}

// Start implements Detector.
func (h *Heartbeat) Start(onChange ChangeFunc) {
	h.mu.Lock()
	h.onChange = onChange
	now := time.Now()
	for p := range h.members {
		h.lastSeen[p] = now // grace period at startup
	}
	h.mu.Unlock()
	h.wg.Add(1)
	go h.loop()
}

// loop emits heartbeats and checks for silence.
func (h *Heartbeat) loop() {
	defer h.wg.Done()
	ticker := time.NewTicker(h.period)
	defer ticker.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-ticker.C:
		}
		h.mu.Lock()
		peers := make([]types.ProcessID, 0, len(h.members))
		for p := range h.members {
			peers = append(peers, p)
		}
		h.mu.Unlock()
		for _, p := range peers {
			h.send(p)
		}
		h.check()
	}
}

// check updates the suspicion list from the silence threshold. Holding
// reportMu across decide-and-report keeps the callback sequence identical
// to the transition sequence (see the field comment).
func (h *Heartbeat) check() {
	h.reportMu.Lock()
	defer h.reportMu.Unlock()
	now := time.Now()
	var changes []types.ProcessID
	h.mu.Lock()
	for p := range h.members {
		silent := now.Sub(h.lastSeen[p]) > h.timeout
		if silent != h.suspected[p] {
			h.suspected[p] = silent
			changes = append(changes, p)
		}
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i] < changes[j] })
	cb := h.onChange
	suspectedNow := make(map[types.ProcessID]bool, len(changes))
	for _, p := range changes {
		suspectedNow[p] = h.suspected[p]
	}
	h.mu.Unlock()
	if cb == nil {
		return
	}
	for _, p := range changes {
		cb(p, suspectedNow[p])
	}
}

// Heard implements Detector. The common case — the peer is not suspected
// — updates lastSeen under mu alone and never touches reportMu: the
// runtime calls Heard on every protocol message, and serializing that
// hot path behind the checker's callback sequence would stall the
// transport reader. Refreshing lastSeen before the fast-path read means
// a concurrent check() computes silent=false and cannot introduce a
// transition this call would have to report. Only an actual unsuspect
// transition takes the slow, serialized path.
func (h *Heartbeat) Heard(p types.ProcessID) {
	if p == h.self {
		return
	}
	h.mu.Lock()
	if !h.members[p] {
		// A removed peer's late frames must not resurrect its FD state.
		h.mu.Unlock()
		return
	}
	h.lastSeen[p] = time.Now()
	suspected := h.suspected[p]
	h.mu.Unlock()
	if !suspected {
		return
	}
	h.reportMu.Lock()
	defer h.reportMu.Unlock()
	h.mu.Lock()
	if !h.members[p] {
		h.mu.Unlock()
		return
	}
	h.lastSeen[p] = time.Now()
	wasSuspected := h.suspected[p]
	if wasSuspected {
		h.suspected[p] = false
	}
	cb := h.onChange
	h.mu.Unlock()
	if wasSuspected && cb != nil {
		cb(p, false)
	}
}

// Suspects implements Detector.
func (h *Heartbeat) Suspects() []types.ProcessID {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []types.ProcessID
	for p, susp := range h.suspected {
		if susp {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close implements Detector.
func (h *Heartbeat) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	close(h.done)
	h.wg.Wait()
}

// Scripted is a Detector driven entirely by test code: call Inject to
// change the suspicion list. It never suspects on its own.
type Scripted struct {
	mu        sync.Mutex
	onChange  ChangeFunc
	suspected map[types.ProcessID]bool
}

var _ Detector = (*Scripted)(nil)

// NewScripted creates an inert detector for tests.
func NewScripted() *Scripted {
	return &Scripted{suspected: make(map[types.ProcessID]bool)}
}

// Start implements Detector.
func (s *Scripted) Start(onChange ChangeFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange = onChange
}

// Inject reports a suspicion change to the consumer.
func (s *Scripted) Inject(p types.ProcessID, suspected bool) {
	s.mu.Lock()
	s.suspected[p] = suspected
	cb := s.onChange
	s.mu.Unlock()
	if cb != nil {
		cb(p, suspected)
	}
}

// Heard implements Detector (ignored; scripts decide everything).
func (s *Scripted) Heard(types.ProcessID) {}

// Suspects implements Detector.
func (s *Scripted) Suspects() []types.ProcessID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []types.ProcessID
	for p, susp := range s.suspected {
		if susp {
			out = append(out, p)
		}
	}
	return out
}

// Close implements Detector.
func (s *Scripted) Close() {}
