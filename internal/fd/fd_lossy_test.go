package fd

import (
	"sync"
	"testing"
	"time"

	"modab/internal/types"
)

// TestLossyLinkFlapExactlyOnce extends the exactly-once-per-transition
// contract to lossy links: heartbeats arrive in bursts separated by
// silence windows longer than the timeout (the footprint of a partitioned
// then healed — or heavily dropping — link), and every suspect/unsuspect
// transition must be reported exactly once, in order, with no duplicate
// or inverted reports.
func TestLossyLinkFlapExactlyOnce(t *testing.T) {
	log := &transitionLog{}
	h := NewHeartbeat(0, 2, 4*time.Millisecond, 20*time.Millisecond, func(types.ProcessID) {})
	h.Start(log.onChange)
	defer h.Close()

	const cycles = 5
	for c := 0; c < cycles; c++ {
		// Silence: the link drops everything until the peer is suspected.
		deadline := time.Now().Add(2 * time.Second)
		for len(log.snapshot()) < 2*c+1 {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: suspicion never reported; log=%v", c, log.snapshot())
			}
			time.Sleep(time.Millisecond)
		}
		// Heal: a burst of heartbeats gets through; exactly one unsuspect.
		for i := 0; i < 8; i++ {
			h.Heard(1)
			time.Sleep(time.Millisecond)
		}
		deadline = time.Now().Add(2 * time.Second)
		for len(log.snapshot()) < 2*c+2 {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: unsuspicion never reported; log=%v", c, log.snapshot())
			}
			time.Sleep(time.Millisecond)
		}
	}
	got := log.snapshot()
	if len(got) < 2*cycles {
		t.Fatalf("flap transitions = %v, want %d", got, 2*cycles)
	}
	for i, s := range got {
		if want := i%2 == 0; s != want {
			t.Fatalf("transition %d = %v (log %v): duplicates or inversion under lossy link", i, s, got)
		}
	}
}

// TestLossySuspicionReportOrder pins the race the chaos work fixed: a
// heartbeat that arrives while the checker is still delivering its
// "suspected" report must not get its "unsuspected" report in front of
// it. The callback blocks mid-report to force the interleaving; with
// transitions and reports serialized the log must read suspected before
// unsuspected.
func TestLossySuspicionReportOrder(t *testing.T) {
	var (
		mu      sync.Mutex
		reports []bool
		first   = make(chan struct{})
		once    sync.Once
	)
	h := NewHeartbeat(0, 2, 4*time.Millisecond, 20*time.Millisecond, func(types.ProcessID) {})
	h.Start(func(p types.ProcessID, suspected bool) {
		if suspected {
			once.Do(func() {
				close(first)
				// Keep the "suspected" report in flight while the test
				// injects a heartbeat.
				time.Sleep(25 * time.Millisecond)
			})
		}
		mu.Lock()
		reports = append(reports, suspected)
		mu.Unlock()
	})
	defer h.Close()

	<-first    // the checker is inside its "suspected" report
	h.Heard(1) // late heartbeat races the in-flight report

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := append([]bool(nil), reports...)
		mu.Unlock()
		if len(got) >= 2 {
			if !got[0] || got[1] {
				t.Fatalf("reports = %v, want [true false]: unsuspected overtook the suspected report", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout, reports = %v", got)
		}
		time.Sleep(time.Millisecond)
	}
}
