package fd

import (
	"testing"
	"time"

	"modab/internal/types"
)

// countLog tallies per-process suspicion transitions.
type countLog struct {
	changeLog
}

func (c *countLog) counts(p types.ProcessID) (suspects, unsuspects int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.changes {
		if ch.p != p {
			continue
		}
		if ch.suspected {
			suspects++
		} else {
			unsuspects++
		}
	}
	return
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSetMembersPrunesRemovedPeer is the satellite-2 regression: without
// pruning, a removed process stays suspected forever.
func TestSetMembersPrunesRemovedPeer(t *testing.T) {
	h := NewHeartbeat(0, 3, 5*time.Millisecond, 20*time.Millisecond, func(types.ProcessID) {})
	defer h.Close()
	var log countLog
	h.Start(log.record)

	// Keep p1 alive; p2 goes silent and gets suspected.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				h.Heard(1)
			}
		}
	}()
	waitFor(t, "p2 suspected", func() bool {
		s, _ := log.counts(2)
		return s == 1
	})

	// Remove p2 from the group: its suspicion state must be pruned, with
	// no unsuspect report (it is no longer monitored, not "alive again").
	h.SetMembers([]types.ProcessID{0, 1})
	waitFor(t, "suspects empty", func() bool { return len(h.Suspects()) == 0 })
	if _, u := log.counts(2); u != 0 {
		t.Fatalf("remove reported %d unsuspects, want 0", u)
	}

	// A removed peer's late frames must not resurrect FD state.
	h.Heard(2)
	time.Sleep(50 * time.Millisecond)
	if got := h.Suspects(); len(got) != 0 {
		t.Fatalf("Suspects() after late Heard = %v", got)
	}
}

// TestRemoveReAddExactlyOnce asserts the exactly-once unsuspect
// semantics across a remove + re-add of the same process ID: the re-added
// incarnation starts fresh (grace period, unsuspected), is suspected
// exactly once when it goes silent, and unsuspected exactly once when
// heard — no stale transition inherited from its previous incarnation.
func TestRemoveReAddExactlyOnce(t *testing.T) {
	h := NewHeartbeat(0, 3, 5*time.Millisecond, 20*time.Millisecond, func(types.ProcessID) {})
	defer h.Close()
	var log countLog
	h.Start(log.record)

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				h.Heard(1)
			}
		}
	}()

	// Incarnation 1 of p2: silent, suspected once, then removed.
	waitFor(t, "first suspicion of p2", func() bool {
		s, _ := log.counts(2)
		return s == 1
	})
	h.SetMembers([]types.ProcessID{0, 1})

	// Re-add the same ID. It starts with a grace period, so no instant
	// re-suspicion from the stale lastSeen of incarnation 1.
	h.SetMembers([]types.ProcessID{0, 1, 2})
	if s, _ := log.counts(2); s != 1 {
		t.Fatalf("re-add caused immediate suspicion: %d suspects", s)
	}

	// Incarnation 2 goes silent → exactly one new suspicion.
	waitFor(t, "second suspicion of p2", func() bool {
		s, _ := log.counts(2)
		return s == 2
	})

	// Heard → exactly one unsuspect in total (incarnation 1's suspicion
	// was pruned silently, never unsuspected).
	h.Heard(2)
	waitFor(t, "unsuspect of p2", func() bool {
		_, u := log.counts(2)
		return u == 1
	})

	// Keep p2 alive and verify no further transitions appear.
	stop2 := make(chan struct{})
	defer close(stop2)
	go func() {
		for {
			select {
			case <-stop2:
				return
			case <-time.After(2 * time.Millisecond):
				h.Heard(2)
			}
		}
	}()
	time.Sleep(60 * time.Millisecond)
	if s, u := log.counts(2); s != 2 || u != 1 {
		t.Fatalf("transitions = %d suspects / %d unsuspects, want 2/1", s, u)
	}
}
