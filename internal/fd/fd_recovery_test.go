package fd

import (
	"sync"
	"testing"
	"time"

	"modab/internal/types"
)

// transitionLog records suspicion changes for one peer and verifies the
// exactly-once-per-transition contract.
type transitionLog struct {
	mu      sync.Mutex
	changes []bool
}

func (l *transitionLog) onChange(p types.ProcessID, suspected bool) {
	if p != 1 {
		return
	}
	l.mu.Lock()
	l.changes = append(l.changes, suspected)
	l.mu.Unlock()
}

func (l *transitionLog) snapshot() []bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]bool(nil), l.changes...)
}

// TestHeardUnsuspectsExactlyOnce is the failure-detector half of the
// crash-recovery path: a peer that was suspected (it crashed) and is then
// heard from again (it restarted and announced itself) must be
// unsuspected, and each suspicion change must be reported exactly once —
// no matter how many heartbeats the recovered peer sends afterwards.
func TestHeardUnsuspectsExactlyOnce(t *testing.T) {
	log := &transitionLog{}
	h := NewHeartbeat(0, 2, 5*time.Millisecond, 25*time.Millisecond, func(types.ProcessID) {})
	h.Start(log.onChange)
	defer h.Close()

	// Silence: p1 must be reported suspected (once).
	waitTransitions(t, log, []bool{true})
	if s := h.Suspects(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("Suspects = %v, want [p2]", s)
	}

	// The recovered peer is heard repeatedly — e.g. its recovery announce
	// followed by a burst of heartbeats. Exactly one unsuspected report.
	for i := 0; i < 10; i++ {
		h.Heard(1)
	}
	waitTransitions(t, log, []bool{true, false})
	if s := h.Suspects(); len(s) != 0 {
		t.Fatalf("Suspects after recovery = %v, want none", s)
	}

	// Give the checker a few periods to emit a spurious duplicate, then
	// let silence re-suspect: the log must read exactly true, false, true.
	time.Sleep(15 * time.Millisecond)
	if got := log.snapshot(); len(got) != 2 {
		t.Fatalf("changes after steady recovery = %v, want [true false]", got)
	}
	waitTransitions(t, log, []bool{true, false, true})
}

// waitTransitions polls until the transition log equals want, failing on
// any divergence or timeout.
func waitTransitions(t *testing.T, log *transitionLog, want []bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := log.snapshot()
		for i := range got {
			if i >= len(want) || got[i] != want[i] {
				t.Fatalf("transitions = %v, want prefix of %v", got, want)
			}
			if i > 0 && got[i] == got[i-1] {
				t.Fatalf("duplicate transition report: %v", got)
			}
		}
		if len(got) == len(want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: transitions = %v, want %v", got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
