package fd

import (
	"sync"
	"testing"
	"time"

	"modab/internal/types"
)

// changeLog records suspicion changes thread-safely.
type changeLog struct {
	mu      sync.Mutex
	changes []struct {
		p         types.ProcessID
		suspected bool
	}
}

func (c *changeLog) record(p types.ProcessID, s bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.changes = append(c.changes, struct {
		p         types.ProcessID
		suspected bool
	}{p, s})
}

func (c *changeLog) last() (types.ProcessID, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.changes) == 0 {
		return 0, false, false
	}
	l := c.changes[len(c.changes)-1]
	return l.p, l.suspected, true
}

func TestHeartbeatSuspectsSilentPeer(t *testing.T) {
	var sent sync.Map
	h := NewHeartbeat(0, 2, 5*time.Millisecond, 20*time.Millisecond,
		func(to types.ProcessID) { sent.Store(to, true) })
	defer h.Close()
	var log changeLog
	h.Start(log.record)

	deadline := time.Now().Add(2 * time.Second)
	for {
		if p, s, ok := log.last(); ok && p == 1 && s {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent peer never suspected")
		}
		time.Sleep(time.Millisecond)
	}
	if got := h.Suspects(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Suspects() = %v", got)
	}
	if _, ok := sent.Load(types.ProcessID(1)); !ok {
		t.Fatal("no heartbeats emitted")
	}
}

func TestHeartbeatUnsuspectsOnHeard(t *testing.T) {
	h := NewHeartbeat(0, 2, 5*time.Millisecond, 20*time.Millisecond, func(types.ProcessID) {})
	defer h.Close()
	var log changeLog
	h.Start(log.record)

	// Wait for suspicion, then revive.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if p, s, ok := log.last(); ok && p == 1 && s {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never suspected")
		}
		time.Sleep(time.Millisecond)
	}
	h.Heard(1)
	if p, s, _ := log.last(); p != 1 || s {
		t.Fatalf("unsuspect not reported: %v %v", p, s)
	}
	if got := h.Suspects(); len(got) != 0 {
		t.Fatalf("still suspected: %v", got)
	}
}

func TestHeartbeatKeepAliveNeverSuspects(t *testing.T) {
	h := NewHeartbeat(0, 2, 5*time.Millisecond, 25*time.Millisecond, func(types.ProcessID) {})
	defer h.Close()
	var log changeLog
	h.Start(log.record)
	// Feed liveness faster than the timeout for a while.
	for i := 0; i < 20; i++ {
		h.Heard(1)
		time.Sleep(5 * time.Millisecond)
	}
	if _, s, ok := log.last(); ok && s {
		t.Fatal("suspected a live peer")
	}
}

func TestHeartbeatHeardSelfIgnored(t *testing.T) {
	// Calling Heard(self) must not panic or create state.
	h := NewHeartbeat(0, 3, time.Hour, time.Hour, func(types.ProcessID) {})
	defer h.Close()
	h.Heard(0)
	if len(h.lastSeen) != 0 {
		t.Fatal("self recorded in lastSeen before Start")
	}
}

func TestScripted(t *testing.T) {
	s := NewScripted()
	defer s.Close()
	var log changeLog
	s.Start(log.record)
	s.Inject(2, true)
	if p, susp, ok := log.last(); !ok || p != 2 || !susp {
		t.Fatalf("inject not delivered: %v %v %v", p, susp, ok)
	}
	if got := s.Suspects(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Suspects() = %v", got)
	}
	s.Inject(2, false)
	if got := s.Suspects(); len(got) != 0 {
		t.Fatalf("still suspected: %v", got)
	}
	s.Heard(1) // no-op, must not panic
}

func TestHeartbeatCloseIdempotent(t *testing.T) {
	h := NewHeartbeat(0, 3, time.Millisecond, 5*time.Millisecond, func(types.ProcessID) {})
	h.Start(func(types.ProcessID, bool) {})
	h.Close()
	h.Close()
}
