// Package flow implements the flow-control mechanism shared by both
// atomic broadcast stacks (paper §5.1): abcast is blocked whenever the
// process already has Window of its own messages in flight (abcast but not
// yet adelivered). Bounding the per-process backlog bounds the number of
// messages ordered per consensus execution — the paper tunes it so that on
// average M = 4 messages are ordered per consensus.
//
// Accounting is always at message granularity, even when sender-side
// batching makes the stacks diffuse and propose at batch granularity:
// each application message occupies one window slot from admission until
// its own adelivery, whether it crosses the wire alone or inside a batch.
// The engines widen the window to span at least two batches when batching
// is enabled (engine.Config.EffectiveWindow), so an accumulating batch
// can fill while the previous one is still being ordered.
package flow

import (
	"fmt"

	"modab/internal/types"
)

// Controller tracks the local process's in-flight abcast messages and
// assigns sequence numbers. It is driven from the engine's single event
// loop and needs no locking.
type Controller struct {
	self     types.ProcessID
	window   int
	nextSeq  uint64
	inFlight map[uint64]struct{}
}

// NewController returns a controller for the given process with the given
// window (>= 1).
func NewController(self types.ProcessID, window int) *Controller {
	if window < 1 {
		window = 1
	}
	return &Controller{
		self:     self,
		window:   window,
		inFlight: make(map[uint64]struct{}, window),
	}
}

// Window returns the configured window.
func (c *Controller) Window() int { return c.window }

// SetWindow resizes the window at a membership boundary (the paper's
// per-process window is derived from the group size, so adds and
// removes re-balance it). Shrinking may leave the controller
// over-committed; Admit then blocks until deliveries drain the excess,
// exactly like the post-restart Resume over-commit.
func (c *Controller) SetWindow(w int) {
	if w < 1 {
		w = 1
	}
	c.window = w
}

// InFlight returns the number of local messages abcast but not yet
// adelivered.
func (c *Controller) InFlight() int { return len(c.inFlight) }

// Resume restores the controller after a crash-recovery restart: sequence
// assignment continues at lastSeq+1 — never reusing a sequence number that
// any previous incarnation may have put on the wire — and the given
// sequence numbers (the replayed admitted-but-unordered own messages)
// re-occupy their window slots until their adeliveries release them. It
// may leave the controller over-committed when the replayed backlog
// exceeds the window; Admit then blocks until deliveries drain it.
func (c *Controller) Resume(lastSeq uint64, inFlight []uint64) {
	if lastSeq > c.nextSeq {
		c.nextSeq = lastSeq
	}
	for _, seq := range inFlight {
		c.inFlight[seq] = struct{}{}
	}
}

// Admit reserves a window slot and assigns the next message ID. It returns
// types.ErrFlowControl when the window is full.
func (c *Controller) Admit() (types.MsgID, error) {
	if len(c.inFlight) >= c.window {
		return types.MsgID{}, types.ErrFlowControl
	}
	c.nextSeq++
	c.inFlight[c.nextSeq] = struct{}{}
	return types.MsgID{Sender: c.self, Seq: c.nextSeq}, nil
}

// Delivered releases the slot held by a locally originated message when it
// is adelivered. Messages from other senders are ignored. Releasing an
// unknown local message is an error (it indicates duplicate delivery).
func (c *Controller) Delivered(id types.MsgID) error {
	if id.Sender != c.self {
		return nil
	}
	if _, ok := c.inFlight[id.Seq]; !ok {
		return fmt.Errorf("flow: release of unknown or already-delivered message %s", id)
	}
	delete(c.inFlight, id.Seq)
	return nil
}
