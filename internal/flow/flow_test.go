package flow

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"modab/internal/types"
)

func TestAdmitUntilFull(t *testing.T) {
	c := NewController(2, 3)
	var ids []types.MsgID
	for i := 0; i < 3; i++ {
		id, err := c.Admit()
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if id.Sender != 2 {
			t.Fatalf("sender = %v", id.Sender)
		}
		ids = append(ids, id)
	}
	if _, err := c.Admit(); !errors.Is(err, types.ErrFlowControl) {
		t.Fatalf("want ErrFlowControl, got %v", err)
	}
	// Releasing one slot admits one more.
	if err := c.Delivered(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	c := NewController(0, 1)
	var last uint64
	for i := 0; i < 10; i++ {
		id, err := c.Admit()
		if err != nil {
			t.Fatal(err)
		}
		if id.Seq <= last {
			t.Fatalf("seq %d not > %d", id.Seq, last)
		}
		last = id.Seq
		if err := c.Delivered(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestForeignAndDuplicateRelease(t *testing.T) {
	c := NewController(1, 1)
	// Foreign messages are ignored.
	if err := c.Delivered(types.MsgID{Sender: 9, Seq: 1}); err != nil {
		t.Fatalf("foreign release: %v", err)
	}
	id, _ := c.Admit()
	if err := c.Delivered(id); err != nil {
		t.Fatal(err)
	}
	// Double release of an own message is an error (duplicate delivery).
	if err := c.Delivered(id); err == nil {
		t.Fatal("duplicate release not detected")
	}
}

func TestWindowClampedToOne(t *testing.T) {
	c := NewController(0, 0)
	if c.Window() != 1 {
		t.Fatalf("window = %d, want clamp to 1", c.Window())
	}
}

// TestInFlightNeverExceedsWindowQuick drives a random admit/release
// schedule and checks the core invariant.
func TestInFlightNeverExceedsWindowQuick(t *testing.T) {
	f := func(seed int64, rawWindow uint8) bool {
		window := int(rawWindow%8) + 1
		c := NewController(0, window)
		rng := rand.New(rand.NewSource(seed))
		var live []types.MsgID
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 {
				id, err := c.Admit()
				if err == nil {
					live = append(live, id)
				} else if len(live) != window {
					return false // rejected while not full
				}
			} else if len(live) > 0 {
				i := rng.Intn(len(live))
				if err := c.Delivered(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if c.InFlight() != len(live) || c.InFlight() > window {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
