// Package member implements dynamic group membership for both atomic
// broadcast stacks. A configuration change is an ordinary application
// message whose body carries a magic-prefixed Op; it rides the total
// order like any other payload, is decided in a consensus instance, and
// takes effect at a decided boundary: an op decided in instance k
// activates at instance k+W (W = consensus pipeline depth), so every
// process — including ones still catching up — switches quorum size, FD
// monitor set, ring successor order and flow/retention accounting at
// exactly the same instance.
//
// Safety rests on three rules enforced here:
//
//   - Single-member ops. One Op adds or removes exactly one process, so
//     adjacent configurations differ by at most one member and any
//     majority of the old view intersects any majority of the new view.
//   - Epoch CAS. An Op carries the epoch it was issued against; it
//     applies only if that epoch is still current when the op's instance
//     decides. Concurrent config changes therefore serialize through the
//     total order: the first to decide wins, later ones are
//     deterministically rejected at every process. The same rule makes
//     replaying a decided op during crash recovery idempotent.
//   - Delayed activation. The window [k+1, k+W] between decision and
//     activation covers the consensus pipeline: no instance that may
//     already be in flight under the old view can straddle the boundary.
package member

import (
	"encoding/binary"
	"fmt"
	"sort"

	"modab/internal/types"
)

// OpKind discriminates the two primitive configuration changes. A
// "replace" is not a primitive: it is an Add followed by a Remove, two
// decided instances apart, so views always differ by one member.
type OpKind uint8

const (
	// OpAdd admits Target into the group at the activation boundary.
	OpAdd OpKind = 1
	// OpRemove retires Target from the group at the activation boundary.
	OpRemove OpKind = 2
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one configuration change. It is encoded into an AppMsg body
// (EncodeOp) and submitted through the normal abcast path, so it is
// batched, diffused, decided and replayed exactly like application
// traffic — no new agreement machinery, no separate wire format.
type Op struct {
	// Kind selects add or remove.
	Kind OpKind
	// Target is the process joining or leaving.
	Target types.ProcessID
	// BaseEpoch is the epoch the issuer observed when submitting; the op
	// applies only if the group is still in that epoch when it decides
	// (compare-and-swap against concurrent reconfigurations).
	BaseEpoch uint64
	// Addr optionally carries the joiner's network address for drivers
	// with real transports (the TCP runtime); in-memory drivers leave it
	// empty.
	Addr string
}

// String implements fmt.Stringer.
func (o Op) String() string {
	return fmt.Sprintf("cfg{%s %s @e%d}", o.Kind, o.Target, o.BaseEpoch)
}

// opMagic prefixes every encoded Op. Application payloads beginning
// with these eight bytes are reserved for the membership layer; the
// leading NUL keeps any text-like payload out of the namespace.
var opMagic = []byte{0x00, 'M', 'B', 'R', 'C', 'F', 'G', 0x01}

const maxAddrLen = 1 << 12

// EncodeOp serializes an Op into an AppMsg body.
func EncodeOp(op Op) []byte {
	b := make([]byte, 0, len(opMagic)+1+4+8+2+len(op.Addr))
	b = append(b, opMagic...)
	b = append(b, byte(op.Kind))
	b = binary.BigEndian.AppendUint32(b, uint32(op.Target))
	b = binary.BigEndian.AppendUint64(b, op.BaseEpoch)
	b = binary.BigEndian.AppendUint16(b, uint16(len(op.Addr)))
	b = append(b, op.Addr...)
	return b
}

// IsConfigOp reports whether an AppMsg body is an encoded membership Op.
func IsConfigOp(body []byte) bool {
	return len(body) >= len(opMagic) && string(body[:len(opMagic)]) == string(opMagic)
}

// DecodeOp parses an encoded Op. ok is false when the body is not a
// config op or is malformed (malformed ops are ignored by the engines:
// a corrupt config change must not split the group).
func DecodeOp(body []byte) (Op, bool) {
	if !IsConfigOp(body) {
		return Op{}, false
	}
	rest := body[len(opMagic):]
	if len(rest) < 1+4+8+2 {
		return Op{}, false
	}
	op := Op{
		Kind:      OpKind(rest[0]),
		Target:    types.ProcessID(int32(binary.BigEndian.Uint32(rest[1:5]))),
		BaseEpoch: binary.BigEndian.Uint64(rest[5:13]),
	}
	alen := int(binary.BigEndian.Uint16(rest[13:15]))
	if alen > maxAddrLen || len(rest) != 15+alen {
		return Op{}, false
	}
	op.Addr = string(rest[15 : 15+alen])
	if op.Kind != OpAdd && op.Kind != OpRemove {
		return Op{}, false
	}
	if op.Target < 0 {
		return Op{}, false
	}
	return op, true
}

// View is one group configuration: the member set in force from
// instance Activation (inclusive) until the next view's activation.
type View struct {
	// Epoch numbers views densely from 0 (the static boot configuration).
	Epoch uint64
	// Activation is the first consensus instance governed by this view.
	Activation uint64
	// Members is the sorted member set.
	Members []types.ProcessID
}

// Contains reports whether p is a member of the view.
func (v View) Contains(p types.ProcessID) bool {
	for _, m := range v.Members {
		if m == p {
			return true
		}
	}
	return false
}

// Majority returns the quorum size of this view.
func (v View) Majority() int { return types.Majority(len(v.Members)) }

// Coordinator returns the coordinator of round r (1-based) under this
// view: members are rotated in sorted order. For the boot view
// {0..n-1} this degenerates to the paper's (r-1) mod n rule, so static
// groups behave bit-identically to the fixed-membership code.
func (v View) Coordinator(r uint32) types.ProcessID {
	return v.Members[(int(r)-1)%len(v.Members)]
}

// Rank returns p's index in the sorted member list, or -1 when p is not
// a member. Ring successor order and relay-set selection use ranks so
// that removing a member closes the hole instead of skipping it.
func (v View) Rank(p types.ProcessID) int {
	for i, m := range v.Members {
		if m == p {
			return i
		}
	}
	return -1
}

// MaxID returns the largest member ID of the view.
func (v View) MaxID() types.ProcessID {
	return v.Members[len(v.Members)-1]
}

// clone returns a deep copy of the member slice.
func (v View) clone() []types.ProcessID {
	return append([]types.ProcessID(nil), v.Members...)
}

// History is the totally ordered sequence of views a process has
// decided. Both engines own one and consult it per instance: quorum
// checks, coordinator rotation and send fan-out for instance k all go
// through At(k), never through a cached n — that cached n is exactly
// the bug class this package exists to fix.
type History struct {
	views []View
}

// NewHistory returns a history whose epoch-0 view is the static boot
// group {0..n-1} active from instance 0.
func NewHistory(n int) *History {
	members := make([]types.ProcessID, n)
	for i := range members {
		members[i] = types.ProcessID(i)
	}
	return &History{views: []View{{Epoch: 0, Activation: 0, Members: members}}}
}

// NewHistoryFrom returns a history seeded with an explicit boot view —
// how a joiner starts from config-at-join instead of from epoch 0.
func NewHistoryFrom(v View) *History {
	cp := v
	cp.Members = v.clone()
	sort.Slice(cp.Members, func(i, j int) bool { return cp.Members[i] < cp.Members[j] })
	return &History{views: []View{cp}}
}

// Current returns the newest view.
func (h *History) Current() View { return h.views[len(h.views)-1] }

// At returns the view governing consensus instance k: the newest view
// with Activation <= k.
func (h *History) At(k uint64) View {
	for i := len(h.views) - 1; i >= 0; i-- {
		if h.views[i].Activation <= k {
			return h.views[i]
		}
	}
	// Instances below the seed view's activation (possible only on a
	// joiner looking backwards) are governed by the seed view.
	return h.views[0]
}

// MaxID returns the largest process ID that has ever been a member —
// the upper bound of the ID space, which only grows. Per-process dense
// state (dedup maps, payload stores) is keyed, not sized, so a growing
// bound is free; drivers use it to size transport tables.
func (h *History) MaxID() types.ProcessID {
	max := types.Nobody
	for _, v := range h.views {
		if m := v.MaxID(); m > max {
			max = m
		}
	}
	return max
}

// Views returns a copy of the full view sequence (checker support: the
// chaos harness asserts all correct processes record identical
// epoch → activation maps).
func (h *History) Views() []View {
	out := make([]View, len(h.views))
	for i, v := range h.views {
		out[i] = v
		out[i].Members = v.clone()
	}
	return out
}

// Apply attempts to apply an op decided in instance decidedAt, with the
// engine's pipeline window W. On success it appends and returns the new
// view (activating at decidedAt+W, but never at or before the current
// view's activation) and true. It returns false — deterministically, as
// every correct process evaluates the same op against the same history
// — when the op's epoch CAS fails, the add target is already a member,
// the remove target is not a member, or the remove would empty the
// group.
func (h *History) Apply(op Op, decidedAt uint64, window int) (View, bool) {
	cur := h.Current()
	if op.BaseEpoch != cur.Epoch {
		return View{}, false
	}
	var members []types.ProcessID
	switch op.Kind {
	case OpAdd:
		if cur.Contains(op.Target) {
			return View{}, false
		}
		members = append(cur.clone(), op.Target)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	case OpRemove:
		if !cur.Contains(op.Target) || len(cur.Members) <= 1 {
			return View{}, false
		}
		members = make([]types.ProcessID, 0, len(cur.Members)-1)
		for _, m := range cur.Members {
			if m != op.Target {
				members = append(members, m)
			}
		}
	default:
		return View{}, false
	}
	if window < 1 {
		window = 1
	}
	activation := decidedAt + uint64(window)
	if activation <= cur.Activation {
		activation = cur.Activation + 1
	}
	v := View{Epoch: cur.Epoch + 1, Activation: activation, Members: members}
	h.views = append(h.views, v)
	return v, true
}
