package member

import (
	"testing"

	"modab/internal/types"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpAdd, Target: 3, BaseEpoch: 0},
		{Kind: OpRemove, Target: 0, BaseEpoch: 7},
		{Kind: OpAdd, Target: 12, BaseEpoch: 2, Addr: "127.0.0.1:9003"},
	}
	for _, want := range ops {
		body := EncodeOp(want)
		if !IsConfigOp(body) {
			t.Fatalf("IsConfigOp(%v) = false", want)
		}
		got, ok := DecodeOp(body)
		if !ok || got != want {
			t.Fatalf("DecodeOp round trip: got %v ok=%v, want %v", got, ok, want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("hello"),
		opMagic, // magic with no payload
		append(EncodeOp(Op{Kind: OpAdd, Target: 1}), 0xff), // trailing junk
		EncodeOp(Op{Kind: OpKind(9), Target: 1}),           // bad kind
	}
	for i, body := range cases {
		if _, ok := DecodeOp(body); ok {
			t.Fatalf("case %d: DecodeOp accepted malformed body", i)
		}
	}
	if IsConfigOp([]byte("app payload")) {
		t.Fatal("IsConfigOp misclassified an application payload")
	}
}

func TestHistoryBootView(t *testing.T) {
	h := NewHistory(5)
	v := h.Current()
	if v.Epoch != 0 || v.Activation != 0 || len(v.Members) != 5 {
		t.Fatalf("boot view = %+v", v)
	}
	if v.Majority() != 3 {
		t.Fatalf("majority(5) = %d", v.Majority())
	}
	// Epoch-0 coordinator rotation must match the paper's (r-1) mod n.
	for r := uint32(1); r <= 10; r++ {
		want := types.ProcessID((int(r) - 1) % 5)
		if got := v.Coordinator(r); got != want {
			t.Fatalf("coordinator(r=%d) = %v, want %v", r, got, want)
		}
	}
}

// TestQuorumShrinksAtBoundary is the satellite-1 regression: a decided
// remove from n=5 must shrink the quorum on the very next governed
// instance, not keep deciding with the stale majority of 3... which for
// n=4 happens to coincide, so also check 5→4→3 where maj drops 3→3→2.
func TestQuorumShrinksAtBoundary(t *testing.T) {
	h := NewHistory(5)
	v1, ok := h.Apply(Op{Kind: OpRemove, Target: 4, BaseEpoch: 0}, 10, 1)
	if !ok {
		t.Fatal("remove rejected")
	}
	if v1.Activation != 11 {
		t.Fatalf("activation = %d, want 11", v1.Activation)
	}
	if got := h.At(10).Majority(); got != 3 {
		t.Fatalf("majority at deciding instance = %d, want old quorum 3", got)
	}
	if got := h.At(11).Majority(); got != 3 {
		t.Fatalf("majority(4) at boundary = %d, want 3", got)
	}
	v2, ok := h.Apply(Op{Kind: OpRemove, Target: 3, BaseEpoch: 1}, 20, 1)
	if !ok {
		t.Fatal("second remove rejected")
	}
	if got := h.At(v2.Activation).Majority(); got != 2 {
		t.Fatalf("majority(3) after second remove = %d, want 2", got)
	}
	if got := h.At(20).Majority(); got != 3 {
		t.Fatalf("instance 20 must still use the 4-member view, got maj %d", got)
	}
}

func TestEpochCAS(t *testing.T) {
	h := NewHistory(3)
	if _, ok := h.Apply(Op{Kind: OpAdd, Target: 3, BaseEpoch: 0}, 5, 2); !ok {
		t.Fatal("first add rejected")
	}
	// A concurrent op issued against epoch 0 loses the CAS.
	if _, ok := h.Apply(Op{Kind: OpAdd, Target: 4, BaseEpoch: 0}, 6, 2); ok {
		t.Fatal("stale-epoch op applied")
	}
	// Replaying the winning op (crash recovery) is also rejected: the
	// CAS makes application idempotent.
	if _, ok := h.Apply(Op{Kind: OpAdd, Target: 3, BaseEpoch: 0}, 5, 2); ok {
		t.Fatal("replayed op applied twice")
	}
	if got := len(h.Views()); got != 2 {
		t.Fatalf("views = %d, want 2", got)
	}
}

func TestApplyRejections(t *testing.T) {
	h := NewHistory(2)
	if _, ok := h.Apply(Op{Kind: OpAdd, Target: 1, BaseEpoch: 0}, 1, 1); ok {
		t.Fatal("duplicate add applied")
	}
	if _, ok := h.Apply(Op{Kind: OpRemove, Target: 5, BaseEpoch: 0}, 1, 1); ok {
		t.Fatal("remove of non-member applied")
	}
	h2 := NewHistory(1)
	if _, ok := h2.Apply(Op{Kind: OpRemove, Target: 0, BaseEpoch: 0}, 1, 1); ok {
		t.Fatal("remove emptied the group")
	}
}

func TestRemoveAndReAdd(t *testing.T) {
	h := NewHistory(3)
	if _, ok := h.Apply(Op{Kind: OpRemove, Target: 1, BaseEpoch: 0}, 4, 1); !ok {
		t.Fatal("remove rejected")
	}
	v, ok := h.Apply(Op{Kind: OpAdd, Target: 1, BaseEpoch: 1}, 9, 1)
	if !ok {
		t.Fatal("re-add rejected")
	}
	if !v.Contains(1) || len(v.Members) != 3 {
		t.Fatalf("re-add view = %+v", v)
	}
	if h.At(7).Contains(1) {
		t.Fatal("instance 7 should be governed by the removed view")
	}
}

func TestActivationMonotonic(t *testing.T) {
	h := NewHistory(3)
	v1, _ := h.Apply(Op{Kind: OpAdd, Target: 3, BaseEpoch: 0}, 10, 8)
	if v1.Activation != 18 {
		t.Fatalf("activation = %d, want 18", v1.Activation)
	}
	// An op deciding inside the previous window still activates after it.
	v2, ok := h.Apply(Op{Kind: OpRemove, Target: 0, BaseEpoch: 1}, 11, 1)
	if !ok {
		t.Fatal("second op rejected")
	}
	if v2.Activation <= v1.Activation {
		t.Fatalf("activation %d not after previous %d", v2.Activation, v1.Activation)
	}
}

func TestHistoryFromSeedAndRank(t *testing.T) {
	seed := View{Epoch: 3, Activation: 40, Members: []types.ProcessID{0, 2, 5}}
	h := NewHistoryFrom(seed)
	if got := h.At(39); got.Epoch != 3 {
		t.Fatalf("At below seed activation = %+v", got)
	}
	v := h.Current()
	if v.Rank(2) != 1 || v.Rank(5) != 2 || v.Rank(1) != -1 {
		t.Fatalf("ranks wrong: %+v", v)
	}
	if h.MaxID() != 5 {
		t.Fatalf("MaxID = %v", h.MaxID())
	}
	// Coordinator rotates over sorted members, not raw IDs.
	if c := v.Coordinator(2); c != 2 {
		t.Fatalf("coordinator(2) = %v, want p3 (id 2)", c)
	}
}
