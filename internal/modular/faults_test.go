package modular

import (
	"testing"

	"modab/internal/engine"
	"modab/internal/types"
)

// TestDuplicatedLinksNoDoubleDelivery: with every link duplicating every
// message (transport retransmission races under a lossy network), the
// modular stack's layers — rbcast sequence suppression, consensus
// idempotent handlers, abcast per-sender delivered map — must keep the
// delivery sequence duplicate-free and totally ordered.
func TestDuplicatedLinksNoDoubleDelivery(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	r.net.Dup = func(from, to types.ProcessID, data []byte) bool { return true }
	for p := 0; p < 3; p++ {
		if _, err := r.engs[p].Abcast([]byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	r.run(t)
	r.checkTotalOrder(t, 3)
}
