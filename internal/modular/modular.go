// Package modular assembles the modular atomic broadcast implementation
// (paper §3, Fig. 1 left): the ABcast, Consensus and RBcast microprotocols
// composed as black boxes in the internal/stack framework.
//
// Compare with internal/monolithic, which implements the same algorithms
// merged into a single module (paper §4, Fig. 1 right).
package modular

import (
	"modab/internal/abcast"
	"modab/internal/consensus"
	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/rbcast"
	"modab/internal/stack"
	"modab/internal/types"
)

// Engine is the modular atomic broadcast engine.
type Engine struct {
	env engine.Env
	stk *stack.Stack
	ab  *abcast.Layer
}

var _ engine.Engine = (*Engine)(nil)

// New builds the modular stack for the given environment. The
// configuration must be valid (engine.Config.Validate).
func New(env engine.Env, cfg engine.Config) *Engine {
	mode := rbcast.Majority
	if cfg.ClassicRBcast {
		mode = rbcast.Classic
	}
	// A restarted process broadcasts under a fresh incarnation so its
	// rbcast numbering (not persisted) is not swallowed as duplicates of
	// its pre-crash broadcasts by the surviving peers.
	var incarnation uint64
	if cfg.Recovered != nil {
		incarnation = cfg.Recovered.Boots
	}
	rb := rbcast.New(stack.TagConsensus, mode, incarnation)
	cs := consensus.New(stack.TagABcast, cfg.ResendEvery, cfg.DecisionHorizon)
	ab := abcast.New(cfg)
	if cfg.InitialView != nil {
		// A joiner's first view is the config it was admitted into, not
		// history's beginning: seed every membership-aware layer before the
		// stack starts.
		rb.SeedView(*cfg.InitialView)
		cs.SeedView(*cfg.InitialView)
	}
	return &Engine{
		env: env,
		stk: stack.New(env, rb, cs, ab),
		ab:  ab,
	}
}

// Start implements engine.Engine.
func (e *Engine) Start() { e.stk.Start() }

// HandleMessage implements engine.Engine.
func (e *Engine) HandleMessage(from types.ProcessID, data []byte) error {
	return e.stk.Receive(from, data)
}

// HandleTimer implements engine.Engine.
func (e *Engine) HandleTimer(id engine.TimerID) { e.stk.HandleTimer(id) }

// Abcast implements engine.Engine.
func (e *Engine) Abcast(body []byte) (types.MsgID, error) { return e.ab.Abcast(body) }

// Suspect implements engine.Engine.
func (e *Engine) Suspect(p types.ProcessID, suspected bool) { e.stk.Suspect(p, suspected) }

// Pending implements engine.Engine.
func (e *Engine) Pending() int { return e.ab.Pending() }

// SubmitConfig implements engine.ConfigSubmitter: the op rides the
// ordinary abcast path and takes effect at its decided boundary.
func (e *Engine) SubmitConfig(op member.Op) (types.MsgID, error) { return e.ab.SubmitConfig(op) }

// CurrentView implements engine.ConfigSubmitter.
func (e *Engine) CurrentView() member.View { return e.ab.CurrentView() }

// Views returns the full decided view sequence (checker support).
func (e *Engine) Views() []member.View { return e.ab.Views() }

var _ engine.ConfigSubmitter = (*Engine)(nil)
