package modular

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/enginetest"
	"modab/internal/types"
)

// rig wires n modular engines over the enginetest network.
type rig struct {
	n    int
	envs []*enginetest.Env
	engs []*Engine
	net  *enginetest.Net
}

func newRig(t *testing.T, n int, cfg engine.Config) *rig {
	t.Helper()
	if cfg.N == 0 {
		cfg = engine.DefaultConfig(n)
		cfg.IdleKick = 0 // tests drive timers explicitly
	}
	r := &rig{n: n, envs: make([]*enginetest.Env, n), engs: make([]*Engine, n)}
	for i := 0; i < n; i++ {
		r.envs[i] = enginetest.New(types.ProcessID(i), n)
		r.engs[i] = New(r.envs[i], cfg)
		r.engs[i].Start()
	}
	r.net = &enginetest.Net{
		Envs: r.envs,
		Deliver: func(to, from types.ProcessID, data []byte) error {
			return r.engs[to].HandleMessage(from, data)
		},
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.net.Run(); err != nil {
		t.Fatal(err)
	}
}

// order returns the delivered MsgIDs at process p.
func (r *rig) order(p int) []types.MsgID {
	out := make([]types.MsgID, 0, len(r.envs[p].Deliveries))
	for _, d := range r.envs[p].Deliveries {
		out = append(out, d.Msg.ID)
	}
	return out
}

func (r *rig) checkTotalOrder(t *testing.T, want int) {
	t.Helper()
	ref := r.order(0)
	if len(ref) != want {
		t.Fatalf("p1 delivered %d, want %d", len(ref), want)
	}
	for p := 1; p < r.n; p++ {
		if got := r.order(p); !reflect.DeepEqual(got, ref) {
			t.Fatalf("order divergence: p1=%v p%d=%v", ref, p+1, got)
		}
	}
}

func TestSingleAbcastReachesEveryone(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	if _, err := r.engs[1].Abcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
	if got := r.order(0)[0]; got.Sender != 1 || got.Seq != 1 {
		t.Fatalf("delivered %v", got)
	}
}

func TestConcurrentAbcastsTotalOrder(t *testing.T) {
	r := newRig(t, 5, engine.Config{})
	for p := 0; p < 5; p++ {
		if _, err := r.engs[p].Abcast([]byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	r.run(t)
	r.checkTotalOrder(t, 5)
}

func TestFlowControlWindow(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.Window = 2
	cfg.IdleKick = 0
	r := newRig(t, 3, cfg)
	if _, err := r.engs[0].Abcast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engs[0].Abcast([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engs[0].Abcast([]byte("c")); !errors.Is(err, types.ErrFlowControl) {
		t.Fatalf("want ErrFlowControl, got %v", err)
	}
	r.run(t) // deliveries release the window
	if _, err := r.engs[0].Abcast([]byte("c")); err != nil {
		t.Fatalf("window not released: %v", err)
	}
}

func TestPipelinedLoadKeepsOrder(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	total := 0
	// Interleave submissions with partial network drains.
	for round := 0; round < 20; round++ {
		for p := 0; p < 3; p++ {
			if _, err := r.engs[p].Abcast([]byte{byte(round)}); err == nil {
				total++
			}
			// Deliver a few messages, not all, to force pipelining.
			for i := 0; i < 3; i++ {
				if ok, err := r.net.Step(); err != nil {
					t.Fatal(err)
				} else if !ok {
					break
				}
			}
		}
	}
	r.run(t)
	r.checkTotalOrder(t, total)
}

func TestDuplicateDiffusionIgnored(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	if _, err := r.engs[0].Abcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// Capture p0's diffusion to p1 and replay it after the run.
	var dup []byte
	for _, s := range r.envs[0].Sends {
		if s.To == 1 {
			dup = append([]byte(nil), s.Data...)
			break
		}
	}
	r.run(t)
	if err := r.engs[1].HandleMessage(0, dup); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 1) // no duplicate delivery
}

func TestIdleKickRecoversPartialDiffusion(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 10 * time.Millisecond
	r := newRig(t, 3, cfg)
	// p2 abcasts m but crashes mid-diffusion: only p3 receives the copy;
	// the coordinator p1 never sees it, and p2 is silent from then on.
	if _, err := r.engs[1].Abcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	for _, s := range r.envs[1].Sends {
		if s.To == 2 {
			if err := r.engs[2].HandleMessage(1, s.Data); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.envs[1].Sends = nil
	r.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return from == 1 || to == 1 // p2 crashed
	}
	r.run(t)
	// p3 holds m pending; nothing delivered anywhere.
	if got := r.engs[2].Pending(); got != 1 {
		t.Fatalf("p3 pending = %d", got)
	}
	// The kick timer at p3 re-diffuses to the coordinator and re-proposes.
	r.envs[2].Clock += time.Second
	fireKick(t, r, 2)
	r.run(t)
	// m must now be ordered at the survivors (p1 and p3).
	if len(r.envs[0].Deliveries) != 1 || len(r.envs[2].Deliveries) != 1 {
		t.Fatalf("recovery failed: p1=%d p3=%d deliveries",
			len(r.envs[0].Deliveries), len(r.envs[2].Deliveries))
	}
}

// fireKick fires every pending (non-canceled) timer at process p.
func fireKick(t *testing.T, r *rig, p int) {
	t.Helper()
	timers := r.envs[p].Timers
	r.envs[p].Timers = nil
	fired := map[engine.TimerID]bool{}
	for _, tm := range timers {
		if !tm.Canceled && !fired[tm.ID] {
			fired[tm.ID] = true
			r.engs[p].HandleTimer(tm.ID)
		}
	}
}

func TestCoordinatorCrashUnderLoad(t *testing.T) {
	r := newRig(t, 5, engine.Config{})
	for p := 0; p < 5; p++ {
		if _, err := r.engs[p].Abcast([]byte{1, byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash p1 before it can answer anything.
	r.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return from == 0 || to == 0
	}
	r.run(t)
	// Survivors suspect p1; round change orders the backlog.
	for p := 1; p < 5; p++ {
		r.engs[p].Suspect(0, true)
	}
	r.run(t)
	ref := r.order(1)
	if len(ref) != 4 { // p1's message died with it; 4 survivors' messages
		t.Fatalf("survivors delivered %d messages, want 4: %v", len(ref), ref)
	}
	for p := 2; p < 5; p++ {
		if got := r.order(p); !reflect.DeepEqual(got, ref) {
			t.Fatalf("divergence after crash: %v vs %v", ref, got)
		}
	}
}

func TestPendingCount(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	if got := r.engs[0].Pending(); got != 0 {
		t.Fatalf("initial pending = %d", got)
	}
	if _, err := r.engs[0].Abcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := r.engs[0].Pending(); got != 1 {
		t.Fatalf("pending after abcast = %d", got)
	}
	r.run(t)
	if got := r.engs[0].Pending(); got != 0 {
		t.Fatalf("pending after delivery = %d", got)
	}
}

func TestDeliveryInstanceMetadata(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	for i := 0; i < 3; i++ {
		if _, err := r.engs[0].Abcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.run(t)
	}
	// Instances must be monotonically non-decreasing in delivery order.
	last := uint64(0)
	for _, d := range r.envs[1].Deliveries {
		if d.Instance < last {
			t.Fatalf("instance went backwards: %d after %d", d.Instance, last)
		}
		last = d.Instance
	}
	if last == 0 {
		t.Fatal("no instances recorded")
	}
}

func TestManyMessagesManyInstances(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	total := 0
	for batch := 0; batch < 30; batch++ {
		for p := 0; p < 3; p++ {
			if _, err := r.engs[p].Abcast([]byte(fmt.Sprintf("%d-%d", batch, p))); err == nil {
				total++
			}
		}
		r.run(t)
	}
	r.checkTotalOrder(t, total)
	// Counters: every process delivered exactly total messages.
	for p := 0; p < 3; p++ {
		if got := r.envs[p].Cnt.ADeliver.Load(); got != int64(total) {
			t.Fatalf("p%d ADeliver = %d, want %d", p+1, got, total)
		}
	}
}
