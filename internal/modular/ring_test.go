package modular

import (
	"bytes"
	"testing"

	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/enginetest"
	"modab/internal/stack"
	"modab/internal/types"
	"modab/internal/wire"
)

// ringCfg is the default config with ring dissemination and timers off
// (the rig drives everything explicitly).
func ringCfg(n int) engine.Config {
	cfg := engine.DefaultConfig(n)
	cfg.IdleKick = 0
	cfg.Dissemination = dissem.Ring
	return cfg
}

// payloadFrame reports whether a modular wire message (stack tag byte +
// layer frame) carries application payload: a direct diffuse frame or a
// ring relay.
func payloadFrame(data []byte) bool {
	if len(data) < 2 || data[0] != byte(stack.TagABcast) {
		return false
	}
	switch data[1] {
	case wire.FrameAppMsg, wire.FrameBatch, wire.FrameRelay:
		return true
	}
	return false
}

// TestRingOriginSendsPayloadOnce pins the tentpole invariant: under Ring
// the origin transmits each payload frame exactly once (to its
// successor), not n-1 times, and the relay still reaches every process.
func TestRingOriginSendsPayloadOnce(t *testing.T) {
	r := newRig(t, 5, ringCfg(5))
	origin := 3
	body := bytes.Repeat([]byte("x"), 4096)

	sent := 0
	r.net.Deliver = func(to, from types.ProcessID, data []byte) error {
		if int(from) == origin && payloadFrame(data) {
			sent++
		}
		return r.engs[to].HandleMessage(from, data)
	}
	if _, err := r.engs[origin].Abcast(body); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
	if sent != 1 {
		t.Fatalf("origin transmitted %d payload frames, want exactly 1", sent)
	}
	// The per-link byte accounting agrees: the origin's egress is one
	// payload, not four (consensus control traffic is small next to the
	// 4KB body).
	egress := 0
	for l, b := range r.net.LinkBytes {
		if int(l.From) == origin {
			egress += b
		}
	}
	if egress >= 2*len(body) {
		t.Fatalf("origin egress %dB under Ring, want < %dB (one payload + control)", egress, 2*len(body))
	}
}

// TestAllToAllOriginSendsToEveryPeer is the counterpart baseline: the
// default strategy transmits the payload on every outbound link.
func TestAllToAllOriginSendsToEveryPeer(t *testing.T) {
	r := newRig(t, 5, engine.Config{})
	origin := 3
	body := bytes.Repeat([]byte("x"), 4096)
	if _, err := r.engs[origin].Abcast(body); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
	egress := 0
	for l, b := range r.net.LinkBytes {
		if int(l.From) == origin {
			egress += b
		}
	}
	if egress < 4*len(body) {
		t.Fatalf("origin egress %dB under AllToAll, want >= %dB (payload on all 4 links)", egress, 4*len(body))
	}
}

// TestRingDuplicateRelaySuppressed injects link-level duplication of
// every relay frame and asserts the dedup watermark stops the duplicates
// from being relayed onward: every ring link still carries each relay
// exactly once, and delivery stays duplicate-free.
func TestRingDuplicateRelaySuppressed(t *testing.T) {
	r := newRig(t, 4, ringCfg(4))
	r.net.Dup = func(from, to types.ProcessID, data []byte) bool {
		return payloadFrame(data) && data[1] == wire.FrameRelay
	}
	if _, err := r.engs[1].Abcast([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
	// LinkMsgs excludes the injected duplicates, so a relayer fooled into
	// re-forwarding would show up as 2 relay transmissions on its
	// successor link; count relay frames per link via the deliver log
	// instead: re-run a fresh rig with a counting Deliver.
	r2 := newRig(t, 4, ringCfg(4))
	relays := make(map[enginetest.Link]int)
	r2.net.Dup = func(from, to types.ProcessID, data []byte) bool {
		return payloadFrame(data) && data[1] == wire.FrameRelay
	}
	r2.net.Deliver = func(to, from types.ProcessID, data []byte) error {
		if payloadFrame(data) && data[1] == wire.FrameRelay {
			relays[enginetest.Link{From: from, To: to}]++
		}
		return r2.engs[to].HandleMessage(from, data)
	}
	if _, err := r2.engs[1].Abcast([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	r2.run(t)
	r2.checkTotalOrder(t, 1)
	for l, c := range relays {
		// Each link delivered the relay at most twice (original +
		// injected duplicate); more would mean a relayer forwarded a
		// duplicate it should have suppressed.
		if c > 2 {
			t.Fatalf("link %v→%v carried %d relay frames; dedup failed to suppress a duplicate", l.From, l.To, c)
		}
	}
}

// TestRingSkipsSuspectedSuccessor crashes the origin's successor (drops
// everything addressed to it) and tells the survivors' failure detectors;
// the relayer must skip it and the frame must still reach every live
// process.
func TestRingSkipsSuspectedSuccessor(t *testing.T) {
	r := newRig(t, 4, ringCfg(4))
	crashed := types.ProcessID(1) // successor of origin p0
	for p := 0; p < 4; p++ {
		if types.ProcessID(p) != crashed {
			r.engs[p].Suspect(crashed, true)
		}
	}
	toCrashed := 0
	r.net.Drop = func(from, to types.ProcessID, data []byte) bool {
		if to != crashed {
			return false
		}
		if payloadFrame(data) {
			toCrashed++
		}
		return true
	}
	if _, err := r.engs[0].Abcast([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if toCrashed != 0 {
		t.Fatalf("%d payload frames were sent to the suspected successor, want 0 (skip)", toCrashed)
	}
	// Every live process delivered the message.
	for _, p := range []int{0, 2, 3} {
		if got := len(r.order(p)); got != 1 {
			t.Fatalf("live process p%d delivered %d messages, want 1", p, got)
		}
	}
}
