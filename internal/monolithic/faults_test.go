package monolithic

import (
	"testing"

	"modab/internal/engine"
	"modab/internal/types"
	"modab/internal/wire"
)

// TestDuplicatedLinksNoDoubleDelivery: a link that duplicates every
// message (the footprint of transport retransmission races under a lossy
// network) must not duplicate deliveries or break total order — every
// handler is idempotent against replays.
func TestDuplicatedLinksNoDoubleDelivery(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	r.net.Dup = func(from, to types.ProcessID, data []byte) bool { return true }
	for p := 0; p < 3; p++ {
		if _, err := r.engs[p].Abcast([]byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	r.run(t)
	r.checkTotalOrder(t, 3)
}

// TestPrunedInstanceProposalNotAcked pins the safety guard behind the
// pruned-instance catch-up: a proposal for an instance decided so long
// ago it left the retention horizon must NOT be acknowledged (a badly
// lagging proposer could otherwise assemble a majority for a second,
// conflicting decision) — the receiver serves the original decision from
// its log instead.
func TestPrunedInstanceProposalNotAcked(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	cfg.DecisionHorizon = 1
	r := newRig(t, 3, cfg)
	store := newMemPersister()
	r.engs[0].cfg.Persist = store
	for i := 0; i < 4; i++ {
		if _, err := r.engs[0].Abcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.run(t)
	}
	e := r.engs[0]
	if e.decidedK != 4 {
		t.Fatalf("decidedK = %d, want 4", e.decidedK)
	}
	if e.insts[1] != nil {
		t.Fatal("instance 1 not pruned with horizon 1")
	}
	r.envs[0].Sends = nil
	// A lagging p3 re-proposes round 1 of the long-pruned instance 1.
	prop := message{Type: mPropDec, Instance: 1, Round: 1,
		Batch: e.insts[4].decision}
	if err := e.HandleMessage(2, prop.marshal()); err != nil {
		t.Fatal(err)
	}
	for _, s := range r.envs[0].Sends {
		if s.To == 2 && mtype(s.Data[0]) == mAckDiff {
			t.Fatal("pruned-instance proposal was acknowledged")
		}
	}
	served := false
	for _, s := range r.envs[0].Sends {
		if s.To == 2 && mtype(s.Data[0]) == mDecisionFull {
			served = true
		}
	}
	if !served {
		t.Fatal("pruned-instance proposal not answered with the logged decision")
	}
	if in := e.insts[1]; in != nil {
		t.Fatal("the pruned instance was recreated")
	}
}

// memPersister is a minimal in-test Persister retaining decisions.
type memPersister struct{ decisions map[uint64]wire.Batch }

func newMemPersister() *memPersister {
	return &memPersister{decisions: make(map[uint64]wire.Batch)}
}

func (m *memPersister) PersistAdmit(wire.Batch) {}
func (m *memPersister) PersistDecision(k uint64, b wire.Batch) {
	m.decisions[k] = append(wire.Batch(nil), b...)
}
func (m *memPersister) ReadDecision(k uint64) (wire.Batch, bool) {
	b, ok := m.decisions[k]
	return b, ok
}

// TestNackAdvancesProposedRound pins the liveness repair the chaos
// harness forced: a coordinator whose proposed round is nacked (the
// nacker abandoned it on suspicion and its ack will never come) must
// re-enter the round rotation instead of waiting for a majority that
// cannot complete. The nack for a round this process never proposed, or
// an old round, stays ignored.
func TestNackAdvancesProposedRound(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	e := r.engs[0] // round-1 coordinator
	if _, err := e.Abcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	// p1 has proposed round 1 of instance 1 and holds only its own ack.
	in := e.insts[1]
	if in == nil || !in.coord[1].proposed {
		t.Fatal("coordinator did not propose round 1")
	}
	if in.round != 1 {
		t.Fatalf("round = %d before any nack", in.round)
	}
	// A nack for an unproposed round is ignored.
	nack := message{Type: mNack, Instance: 1, Round: 3}
	if err := e.HandleMessage(1, nack.marshal()); err != nil {
		t.Fatal(err)
	}
	if in.round != 1 {
		t.Fatalf("nack for unproposed round advanced to %d", in.round)
	}
	// A nack for the proposed current round advances it: the estimate
	// goes to the round-2 coordinator.
	nack = message{Type: mNack, Instance: 1, Round: 1}
	if err := e.HandleMessage(2, nack.marshal()); err != nil {
		t.Fatal(err)
	}
	if in.round != 2 {
		t.Fatalf("round = %d after nacking the proposed round, want 2", in.round)
	}
	sentEst := false
	for _, s := range r.envs[0].Sends {
		if s.To == 1 && mtype(s.Data[0]) == mEstimate {
			sentEst = true
		}
	}
	if !sentEst {
		t.Fatal("no estimate sent to the round-2 coordinator after the nack")
	}
	// The duplicate nack is idempotent (the round moved past it).
	if err := e.HandleMessage(2, nack.marshal()); err != nil {
		t.Fatal(err)
	}
	if in.round != 2 {
		t.Fatalf("duplicate nack advanced to %d", in.round)
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
}
