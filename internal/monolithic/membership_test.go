package monolithic

import (
	"fmt"
	"testing"

	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/types"
)

// TestRemoveRetiresAnnouncedPayloads is the payload-leak regression
// test: under digest ordering, a batch announced by an origin that is
// then removed — before its descriptor was ever ordered — used to stay
// resident in every receiver's payload store forever (nothing would
// ever decide the descriptor, so MarkDelivered/PruneBelow never touched
// it). The remove boundary must retire it.
func TestRemoveRetiresAnnouncedPayloads(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	cfg.DigestOrdering = true
	r := newRig(t, 3, cfg)

	// p3 announces a batch that reaches only p2 (a non-coordinator, so
	// the descriptor is pooled but never proposed), then p3 is cut off.
	orphan, err := r.engs[2].Abcast([]byte("orphan"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.envs[2].SendsTo(1) {
		if err := r.engs[1].HandleMessage(2, s.Data); err != nil {
			t.Fatal(err)
		}
	}
	r.envs[2].Sends = nil
	if _, ok := r.engs[1].store.Get(2, orphan.Seq); !ok {
		t.Fatal("p2 should hold the announced batch")
	}
	r.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return from == 2 || to == 2
	}

	// Remove the origin; fillers push the decided watermark past the
	// activation boundary.
	if _, err := r.engs[0].SubmitConfig(member.Op{Kind: member.OpRemove, Target: 2}); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	activated := func() bool {
		cur := r.engs[1].hist.Current()
		return len(cur.Members) == 2 && r.engs[1].decidedK >= cur.Activation
	}
	for i := 0; !activated(); i++ {
		if i == 8 {
			t.Fatalf("remove never activated at p2: view %v, decidedK %d",
				r.engs[1].hist.Current(), r.engs[1].decidedK)
		}
		if _, err := r.engs[0].Abcast([]byte(fmt.Sprintf("filler-%d", i))); err != nil {
			t.Fatal(err)
		}
		r.run(t)
	}

	// The boundary must have swept the removed origin's state (delivered
	// fillers legitimately stay resident until horizon pruning).
	if _, ok := r.engs[1].store.Get(2, orphan.Seq); ok {
		t.Fatal("payload leak: p2 store still holds the removed origin's batch")
	}
	for id := range r.engs[1].pool {
		if id.Sender == 2 {
			t.Fatalf("removed origin's descriptor %v still pooled", id)
		}
	}
	if got := r.envs[1].Cnt.PayloadsRetired.Load(); got < 1 {
		t.Fatalf("PayloadsRetired = %d, want >= 1", got)
	}
	for _, d := range r.envs[1].Deliveries {
		if d.Msg.ID.Sender == 2 {
			t.Fatalf("orphan descriptor was delivered: %v", d.Msg.ID)
		}
	}

	// Survivors agree, and both sit in the shrunken view.
	for p := 0; p < 2; p++ {
		v := r.engs[p].hist.Current()
		if len(v.Members) != 2 || v.Contains(2) {
			t.Fatalf("p%d view after remove: %v", p+1, v)
		}
	}
}
