package monolithic

import (
	"fmt"

	"modab/internal/types"
	"modab/internal/wire"
)

// mtype enumerates the monolithic wire messages. The vocabulary shows the
// merge: consensus phases, abcast diffusion and decision dissemination are
// combined into single message types (paper §4, Fig. 6).
type mtype uint8

const (
	// mPropDec is the coordinator's combined "proposal k + decision k-1"
	// (§4.1). In good runs it is the only coordinator→others message.
	mPropDec mtype = iota + 1
	// mAckDiff is the combined "ack + diffusion" (§4.2): the consensus ack
	// carrying the sender's fresh abcast messages to the coordinator only.
	mAckDiff
	// mEstimate is the round-change estimate, again carrying the sender's
	// unordered messages to the new coordinator (§4.2).
	mEstimate
	// mNack rejects a round after suspecting its coordinator.
	mNack
	// mForward carries abcast messages to the coordinator when no
	// consensus is in flight to piggyback on (bootstrap/idle path).
	mForward
	// mDecisionOnly disseminates a decision when there is no next proposal
	// to piggyback it on (idle tail; never sent in the saturated good runs
	// the analysis of §5.2 considers).
	mDecisionOnly
	// mDecisionReq asks a peer for a missed decision (crash recovery).
	mDecisionReq
	// mDecisionFull answers mDecisionReq.
	mDecisionFull
	// mRecoverReq announces a restarted process and asks for the decided
	// instances it missed, starting at Instance (its decided watermark + 1).
	mRecoverReq
	// mRecoverResp answers mRecoverReq with the responder's decided horizon
	// (UpTo) and a contiguous chunk of decided instances.
	mRecoverResp
	// mSnapReq asks a peer for a chunk of its snapshot at Instance
	// (= snapshot index), starting at byte Offset — the far-behind branch of
	// crash recovery, taken when the responder truncated its log below its
	// snapshot horizon and cannot serve the instances themselves.
	mSnapReq
	// mSnapResp answers mSnapReq with one chunk of the serialized snapshot
	// envelope (Instance = snapshot index, Total = envelope size, Offset =
	// chunk position, UpTo = responder's decided horizon).
	mSnapResp
	// mRelay wraps an mPropDec traveling along the ring dissemination
	// topology (engine.Config.Dissemination = Ring): Instance carries the
	// origin-assigned relay sequence number, RelayOrigin/RelayHops the
	// rest of the relay header, and Data the marshaled inner proposal.
	// Every other message type stays on its original point-to-point or
	// all-to-all path — relaying only the bulky proposal is exactly the
	// coordinator-NIC fix. Under digest ordering the proposal is pure
	// control (it carries descriptors, not payloads), so mRelay instead
	// wraps the payload announce: Data holds a raw wire.FrameAnnounce
	// frame rather than a marshaled inner message.
	mRelay
	// mAnnounce carries one payload batch with its descriptor (digest
	// ordering): the one-time payload dissemination, after which every
	// ordering message — proposal, ack, estimate, decision — carries only
	// the ~32-byte descriptor pseudo-message. Data holds a raw
	// wire.FrameAnnounce frame, validated (count, ID range, CRC digest)
	// at the wire layer before the engine sees it.
	mAnnounce
	// mPayloadFetch asks one peer for the payload batch of a decided
	// descriptor that never became resident here (lost announce, restart).
	// Data holds a raw wire.FramePayloadFetch frame.
	mPayloadFetch
	// mPayloadResp answers mPayloadFetch; Data holds a raw
	// wire.FramePayloadResp frame, validated exactly like an announce.
	mPayloadResp
)

// String implements fmt.Stringer.
func (t mtype) String() string {
	switch t {
	case mPropDec:
		return "proposal+decision"
	case mAckDiff:
		return "ack+diffusion"
	case mEstimate:
		return "estimate"
	case mNack:
		return "nack"
	case mForward:
		return "forward"
	case mDecisionOnly:
		return "decision"
	case mDecisionReq:
		return "decision-req"
	case mDecisionFull:
		return "decision-full"
	case mRecoverReq:
		return "recover-req"
	case mRecoverResp:
		return "recover-resp"
	case mSnapReq:
		return "snap-req"
	case mSnapResp:
		return "snap-resp"
	case mRelay:
		return "relay"
	case mAnnounce:
		return "announce"
	case mPayloadFetch:
		return "payload-fetch"
	case mPayloadResp:
		return "payload-resp"
	default:
		return fmt.Sprintf("mtype(%d)", uint8(t))
	}
}

// message is the uniform monolithic wire unit; variant fields are used
// according to Type.
type message struct {
	Type     mtype
	Instance uint64
	Round    uint32
	// Batch is the proposal (mPropDec), the piggybacked diffusion
	// (mAckDiff, mForward), the estimate value (mEstimate) or the decided
	// batch (mDecisionFull).
	Batch wire.Batch
	// PrevDecided marks that PrevK/PrevRound identify the previous
	// instance's decision piggybacked on this proposal (mPropDec).
	PrevDecided bool
	PrevK       uint64
	PrevRound   uint32
	// TS and HasValue qualify the estimate (mEstimate).
	TS       uint32
	HasValue bool
	// Piggyback carries the sender's unordered messages on an estimate
	// (mEstimate); mAckDiff uses Batch for the same purpose.
	Piggyback wire.Batch
	// UpTo is the responder's highest contiguously decided instance and
	// Decisions the served chunk (mRecoverResp; Instance echoes the
	// requested starting instance). SnapIndex is the responder's newest
	// snapshot index (0 = none): a requester whose catch-up cannot advance
	// past a truncated log switches to snapshot transfer when SnapIndex
	// covers its missing instance.
	UpTo      uint64
	SnapIndex uint64
	Decisions []wire.DecidedInstance
	// Offset, Total and Data carry snapshot transfer chunks (mSnapReq uses
	// Offset; mSnapResp uses all three, with Instance as the snapshot
	// index and UpTo as the responder's decided horizon). mRelay reuses
	// Data for the marshaled inner proposal.
	Offset uint64
	Total  uint64
	Data   []byte
	// RelayOrigin and RelayHops complete the relay header of an mRelay
	// (Instance carries the relay sequence number).
	RelayOrigin types.ProcessID
	RelayHops   uint8
}

// marshal encodes the message through a pooled writer scratch buffer and
// returns an exact-size copy. The copy is required because env.Send may
// retain the slice (the simulator queues it for later dispatch); the
// pooling still removes the marshal buffer's grow-and-discard churn from
// the hot path.
func (m message) marshal() []byte {
	size := 1 + 8 + 4 + m.Batch.WireSize() + m.Piggyback.WireSize() + len(m.Data) + 48
	for _, d := range m.Decisions {
		size += d.WireSize()
	}
	w := wire.GetWriter(size)
	defer wire.PutWriter(w)
	m.marshalTo(w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

func (m message) marshalTo(w *wire.Writer) {
	w.Uint8(uint8(m.Type))
	w.Uint64(m.Instance)
	w.Uint32(m.Round)
	switch m.Type {
	case mPropDec:
		w.Bool(m.PrevDecided)
		w.Uint64(m.PrevK)
		w.Uint32(m.PrevRound)
		m.Batch.Marshal(w)
	case mAckDiff, mForward, mDecisionFull:
		m.Batch.Marshal(w)
	case mEstimate:
		w.Uint32(m.TS)
		w.Bool(m.HasValue)
		m.Batch.Marshal(w)
		m.Piggyback.Marshal(w)
	case mRecoverResp:
		w.Uint64(m.UpTo)
		w.Uint64(m.SnapIndex)
		w.Uint32(uint32(len(m.Decisions)))
		for _, d := range m.Decisions {
			d.Marshal(w)
		}
	case mSnapReq:
		w.Uint64(m.Offset)
	case mSnapResp:
		w.Uint64(m.Total)
		w.Uint64(m.Offset)
		w.Uint64(m.UpTo)
		w.Bytes32(m.Data)
	case mRelay:
		w.Int32(int32(m.RelayOrigin))
		w.Uint8(m.RelayHops)
		w.Bytes32(m.Data)
	case mAnnounce, mPayloadFetch, mPayloadResp:
		w.Bytes32(m.Data)
	case mNack, mDecisionOnly, mDecisionReq, mRecoverReq:
		// Header only.
	}
}

func unmarshalMessage(data []byte) (message, error) {
	r := wire.NewReader(data)
	var m message
	m.Type = mtype(r.Uint8())
	m.Instance = r.Uint64()
	m.Round = r.Uint32()
	switch m.Type {
	case mPropDec:
		m.PrevDecided = r.Bool()
		m.PrevK = r.Uint64()
		m.PrevRound = r.Uint32()
		m.Batch = wire.UnmarshalBatch(r)
	case mAckDiff, mForward, mDecisionFull:
		m.Batch = wire.UnmarshalBatch(r)
	case mEstimate:
		m.TS = r.Uint32()
		m.HasValue = r.Bool()
		m.Batch = wire.UnmarshalBatch(r)
		m.Piggyback = wire.UnmarshalBatch(r)
	case mRecoverResp:
		m.UpTo = r.Uint64()
		m.SnapIndex = r.Uint64()
		n := r.Uint32()
		if r.Err() == nil && n > wire.MaxChunk/16 {
			return message{}, fmt.Errorf("monolithic: recover-resp of %d decisions", n)
		}
		for i := uint32(0); i < n && r.Err() == nil; i++ {
			m.Decisions = append(m.Decisions, wire.UnmarshalDecidedInstance(r))
		}
	case mSnapReq:
		m.Offset = r.Uint64()
	case mSnapResp:
		m.Total = r.Uint64()
		m.Offset = r.Uint64()
		m.UpTo = r.Uint64()
		m.Data = r.Bytes32()
	case mRelay:
		m.RelayOrigin = types.ProcessID(r.Int32())
		m.RelayHops = r.Uint8()
		m.Data = r.Bytes32()
	case mAnnounce, mPayloadFetch, mPayloadResp:
		m.Data = r.Bytes32()
	case mNack, mDecisionOnly, mDecisionReq, mRecoverReq:
		// Header only.
	default:
		return message{}, fmt.Errorf("monolithic: unknown message type %d", uint8(m.Type))
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return message{}, fmt.Errorf("monolithic: decode %s: %w", m.Type, err)
	}
	return m, nil
}

// estimateEntry is one collected estimate at a coordinator.
type estimateEntry struct {
	ts       uint32
	hasValue bool
	batch    wire.Batch
}

// ownMsg tracks the lifecycle of a locally abcast message until delivery.
type ownMsg struct {
	msg wire.AppMsg
	// attached is the instance whose ack/estimate last carried this
	// message to a coordinator; 0 means never sent.
	attached uint64
}
