package monolithic

import (
	"testing"

	"modab/internal/types"
	"modab/internal/wire"
)

func testBatch(sender types.ProcessID, seqs ...uint64) wire.Batch {
	b := make(wire.Batch, 0, len(seqs))
	for _, s := range seqs {
		b = append(b, wire.AppMsg{ID: types.MsgID{Sender: sender, Seq: s}, Body: []byte{byte(s)}})
	}
	return b
}

// TestMessageRoundTrips covers every monolithic wire variant.
func TestMessageRoundTrips(t *testing.T) {
	msgs := []message{
		{Type: mPropDec, Instance: 5, Round: 1, Batch: testBatch(0, 1, 2),
			PrevDecided: true, PrevK: 4, PrevRound: 1},
		{Type: mPropDec, Instance: 1, Round: 1, Batch: testBatch(0, 1)},
		{Type: mAckDiff, Instance: 5, Round: 1, Batch: testBatch(1, 3)},
		{Type: mAckDiff, Instance: 5, Round: 1}, // empty piggyback
		{Type: mEstimate, Instance: 5, Round: 2, TS: 1, HasValue: true,
			Batch: testBatch(0, 1), Piggyback: testBatch(2, 9)},
		{Type: mNack, Instance: 5, Round: 1},
		{Type: mForward, Instance: 5, Round: 1, Batch: testBatch(2, 7)},
		{Type: mDecisionOnly, Instance: 5, Round: 1},
		{Type: mDecisionReq, Instance: 5},
		{Type: mDecisionFull, Instance: 5, Round: 2, Batch: testBatch(0, 1)},
	}
	for _, m := range msgs {
		got, err := unmarshalMessage(m.marshal())
		if err != nil {
			t.Fatalf("%s: %v", m.Type, err)
		}
		if got.Type != m.Type || got.Instance != m.Instance || got.Round != m.Round ||
			got.PrevDecided != m.PrevDecided || got.PrevK != m.PrevK ||
			got.PrevRound != m.PrevRound || got.TS != m.TS || got.HasValue != m.HasValue ||
			len(got.Batch) != len(m.Batch) || len(got.Piggyback) != len(m.Piggyback) {
			t.Fatalf("%s: mismatch %+v vs %+v", m.Type, got, m)
		}
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	if _, err := unmarshalMessage(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := unmarshalMessage([]byte{0xEE, 0, 0}); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Truncated PropDec.
	m := message{Type: mPropDec, Instance: 1, Round: 1, Batch: testBatch(0, 1)}
	data := m.marshal()
	if _, err := unmarshalMessage(data[:len(data)-3]); err == nil {
		t.Fatal("truncated message accepted")
	}
	// Trailing garbage.
	if _, err := unmarshalMessage(append(data, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	names := map[mtype]string{
		mPropDec: "proposal+decision", mAckDiff: "ack+diffusion",
		mEstimate: "estimate", mNack: "nack", mForward: "forward",
		mDecisionOnly: "decision", mDecisionReq: "decision-req",
		mDecisionFull: "decision-full",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d: %q != %q", typ, got, want)
		}
	}
	if mtype(77).String() != "mtype(77)" {
		t.Error("unknown mtype string")
	}
}
