// Package monolithic implements the monolithic atomic broadcast stack
// (paper §4, Fig. 1 right): the same reliable broadcast, consensus and
// atomic broadcast algorithms as internal/modular, merged into a single
// module so that the three cross-module optimizations become possible:
//
//  1. §4.1 — the decision of consensus instance k-1 is piggybacked on the
//     proposal of instance k (both come from the same coordinator in good
//     runs), saving the standalone decision dissemination;
//  2. §4.2 — abcast messages are not diffused to everyone; they ride on
//     the consensus ack (or, on coordinator change, on the estimate) to
//     the coordinator only, which is the one process that needs them;
//  3. §4.3 — the reliable broadcast of decisions is reduced from
//     (n-1)·⌊(n+1)/2⌋ messages to n-1: the messages of instance k+1 act as
//     implicit acknowledgments for the decision of instance k.
//
// In saturated good runs one consensus instance therefore costs exactly
// 2(n-1) messages — proposal+decision out, ack+diffusion back — versus
// (n-1)(M+2+⌊(n+1)/2⌋) for the modular stack (§5.2.1).
//
// Correctness in bad runs is preserved by the same Chandra–Toueg round
// machinery as the modular consensus (estimates carry the sender's
// unordered messages to the new coordinator), plus gap detection with
// decision refetch for processes that missed a piggybacked decision.
//
// With pipelining enabled (engine.Config.PipelineDepth > 1) the
// coordinator proposes into up to W instances past its decided watermark
// concurrently — the pool is partitioned so no message rides two open
// proposals — and the §4.1 piggyback generalizes to "the latest decided
// instance on every fresh proposal", with a standalone decision flush
// whenever a decision finds no fresh proposal to ride. Depth 1 reproduces
// the paper's strictly sequential engine bit-for-bit.
package monolithic

import (
	"fmt"
	"sort"
	"time"

	"modab/internal/batch"
	"modab/internal/dedup"
	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/flow"
	"modab/internal/member"
	"modab/internal/obs"
	"modab/internal/payload"
	"modab/internal/recovery"
	"modab/internal/types"
	"modab/internal/wire"
)

// attachGrace is how many instances an attached-but-unordered own message
// may wait before being re-attached to the next ack (covers acks that
// arrived after the coordinator already proposed). It sits above the
// natural pipeline wait (2-3 instances under saturation) so no duplicate
// piggybacking happens in good runs. With pipelining the grace scales by
// the window W, matching the W× deeper backlog and longer instance wait.
const attachGrace = 8

// Engine is the monolithic atomic broadcast engine.
type Engine struct {
	env engine.Env
	cfg engine.Config

	self types.ProcessID
	// hist is the totally ordered view sequence (internal/member): every
	// quorum check, coordinator rotation and send fan-out for instance k
	// consults the view governing k instead of a cached group size — the
	// cached n/majority pair was exactly the fixed-membership assumption
	// dynamic membership invalidates.
	hist *member.History
	// retires schedules a removed origin's local-state retirement, keyed
	// by the removing view's activation instance and consumed while
	// finalizing the last old-view instance (activation-1): by then every
	// decision that could reference the origin's state has been processed
	// locally, so pending entries, payload residency and suspicion
	// bookkeeping can be dropped without wedging an in-flight decide.
	retires map[uint64][]types.ProcessID
	// viewKick defers the post-view-change suspicion cascade out of the
	// delivery loop (applyConfig runs mid-finalize; advancing rounds there
	// could nest a decide under a half-updated instance).
	viewKick bool
	fc       *flow.Controller
	// diss is the payload-dissemination strategy (internal/dissem). Only
	// the bulky combined proposal+decision goes through it — under Ring
	// it is relayed successor-to-successor instead of broadcast, so the
	// coordinator's egress stops scaling with n; every other message
	// type keeps its original path.
	diss dissem.Disseminator

	// own tracks locally abcast messages until adelivery.
	own map[uint64]*ownMsg // keyed by local sequence number
	// pool holds messages this process would propose when coordinating
	// (its own plus those piggybacked to it).
	pool map[types.MsgID]wire.AppMsg
	// pipe is the effective pipeline window W (>= 1): how many instances
	// past decidedK this process keeps proposing into concurrently; 1
	// reproduces the paper's strictly sequential engine bit-for-bit.
	pipe int
	// assigned partitions the pool across the open window: a message
	// carried by one of this process's in-flight proposals (the mapped
	// instance) is excluded from concurrent proposals for other instances.
	// propIDs is the reverse index used to release a closed instance's
	// survivors back to the proposable pool; propSent counts proposals
	// ever sent (decide uses it to detect that a fresh proposal carried
	// the latest decision).
	assigned map[types.MsgID]uint64
	propIDs  map[uint64][]types.MsgID
	propSent int64
	// delivered deduplicates adeliveries per sender.
	delivered dedup.Map
	// decidedK is the highest instance decided locally; instances decide
	// strictly in order.
	decidedK uint64
	// insts holds per-instance round state for undecided instances and
	// recently decided ones (catch-up horizon).
	insts     map[uint64]*inst
	suspected map[types.ProcessID]bool
	// lastProgress is when the last decision was processed (kick guard).
	lastProgress time.Duration
	// ringWantK is the highest instance known decided remotely whose
	// refetch was deferred to the resend timer (ring dissemination only;
	// see ringWant/ringRetryWaiting).
	ringWantK uint64
	// ringResendArmed reports a pending TimerResend armed by ringWant.
	// SetTimer replaces the deadline, so re-arming on every announcement
	// would push the fire time forever into the future while the ring is
	// active — the timer must be armed once and left alone until it fires.
	ringResendArmed bool
	// ringRetryTo is the last single-target refetch recipient; the target
	// rotates so a dead or partitioned peer cannot absorb every retry.
	ringRetryTo types.ProcessID
	started     bool
	// pipelineIdle reports that the consensus pipeline stopped (the last
	// decision was flushed standalone because the coordinator's pool was
	// empty). While the pipeline runs, fresh abcast messages simply wait
	// for the next ack; when it is idle they must be forwarded explicitly
	// to restart it.
	pipelineIdle bool
	// acc is the sender-side batching accumulator, nil when batching is
	// disabled. Admitted messages wait here — holding a flow-control slot
	// but not yet in own/pool — until a count, byte or age trigger seals
	// the batch and ingestBatch hands it to the ordering machinery.
	acc *batch.Accumulator
	// rec tracks state-transfer progress after a crash-recovery restart;
	// while active the engine neither proposes nor advances rounds (a
	// recovering process re-entering long-decided instances could
	// manufacture a conflicting decision).
	rec recovery.Catchup
	// recLastSeen is decidedK at the last recovery-timer fire: the timer
	// re-announces only when no progress happened in between.
	recLastSeen uint64
	// snap tracks an in-progress snapshot fetch: the far-behind branch of
	// the catch-up, entered when a responder reports a snapshot at or above
	// this process's missing instance but cannot serve the instances
	// themselves (it truncated its log below the snapshot horizon).
	snap snapFetch

	// Digest-ordering state (cfg.DigestOrdering; see engine.Config). In
	// this mode own and pool hold descriptor pseudo-messages — one per
	// sealed batch — so the entire consensus machinery (acks, estimates,
	// proposals, piggybacks) carries ~32-byte descriptors while store
	// keeps the payload bytes disseminated once through mAnnounce.
	store *payload.Store
	// nextDSeq numbers own descriptors, incarnation-tagged in its high 16
	// bits so a restarted origin's regrouped batches never collide with
	// its pre-crash descriptors.
	nextDSeq uint64
	// descDone remembers decided descriptors (pseudo ID → deciding
	// instance) until the retention horizon prunes them. Descriptor IDs
	// alias real message IDs at incarnation 0, so the per-sender delivered
	// suppressor must never stand in for this map.
	descDone map[types.MsgID]uint64
	// pw is the blocked-head payload wait: the in-order decision whose
	// descriptor payload is not resident, parked until an announce/fetch
	// response lands (TimerPayload fetches from one rotating holder).
	pw payloadWait
}

// payloadWait parks the head decision of digest ordering while some
// decided descriptor's payload batch is missing.
type payloadWait struct {
	active bool
	k      uint64
	batch  wire.Batch
	round  uint32
	since  time.Duration
	to     types.ProcessID
}

// snapFetch is the chunk-assembly state of one snapshot transfer.
type snapFetch struct {
	active    bool
	from      types.ProcessID
	index     uint64
	total     int
	buf       []byte
	startedAt time.Duration
	lastLen   int // buffered bytes at the last recovery-timer fire
	stalls    int // consecutive recovery-timer fires without progress
}

var _ engine.Engine = (*Engine)(nil)

// inst is the per-instance consensus state, as in the modular consensus
// but with merged abcast bookkeeping.
type inst struct {
	k             uint64
	round         uint32
	est           wire.Batch
	estTS         uint32
	hasEst        bool
	proposals     map[uint32]wire.Batch
	nacked        map[uint32]bool
	coord         map[uint32]*coordRound
	decided       bool
	decision      wire.Batch
	decisionRound uint32
	// waitingRound is nonzero when a decision for this instance is known
	// to exist in that round but the matching proposal is missing.
	waitingRound uint32
	// full buffers an already-resolved decision batch under digest
	// ordering (mDecisionFull and recovery serve post-resolution bytes,
	// which must never be re-parsed as descriptors — a real 16-byte body
	// would alias one); hasFull/fullRound qualify it.
	full      wire.Batch
	fullRound uint32
	hasFull   bool
}

type coordRound struct {
	estimates map[types.ProcessID]estimateEntry
	proposed  bool
	proposal  wire.Batch
	acks      map[types.ProcessID]bool
}

func (in *inst) coordRound(r uint32) *coordRound {
	cr := in.coord[r]
	if cr == nil {
		cr = &coordRound{
			estimates: make(map[types.ProcessID]estimateEntry),
			acks:      make(map[types.ProcessID]bool),
		}
		in.coord[r] = cr
	}
	return cr
}

// New builds the monolithic engine for the given environment.
func New(env engine.Env, cfg engine.Config) *Engine {
	e := &Engine{
		env:       env,
		cfg:       cfg,
		self:      env.Self(),
		fc:        flow.NewController(env.Self(), cfg.EffectiveWindow()),
		own:       make(map[uint64]*ownMsg),
		pool:      make(map[types.MsgID]wire.AppMsg),
		pipe:      cfg.EffectivePipeline(),
		assigned:  make(map[types.MsgID]uint64),
		propIDs:   make(map[uint64][]types.MsgID),
		delivered: dedup.NewMap(env.N()),
		insts:     make(map[uint64]*inst),
		suspected: make(map[types.ProcessID]bool),
		retires:   make(map[uint64][]types.ProcessID),
	}
	if cfg.InitialView != nil {
		// A joiner's first view is the config it was admitted into, not
		// history's beginning.
		e.hist = member.NewHistoryFrom(*cfg.InitialView)
	} else {
		e.hist = member.NewHistory(env.N())
	}
	if cfg.Batch.Enabled() {
		e.acc = batch.NewAccumulator(cfg.Batch)
	}
	var incarnation uint64
	if st := cfg.Recovered; st != nil {
		incarnation = st.Boots
	}
	e.diss = dissem.New(cfg.Dissemination, e.self, env.N(), incarnation)
	if cfg.DigestOrdering {
		e.store = payload.NewStore()
		e.descDone = make(map[types.MsgID]uint64)
		e.nextDSeq = incarnation << wire.DSeqIncarnationShift
	}
	if st := cfg.Recovered; st != nil {
		// Adopt the replayed state: the decided watermark, the per-sender
		// delivered suppression, the unordered own backlog (re-occupying
		// its flow-control slots) and the resumed sequence numbering.
		e.decidedK = st.NextDecide - 1
		if st.Delivered != nil {
			e.delivered = st.Delivered
		}
		seqs := make([]uint64, 0, len(st.Own))
		for _, m := range st.Own {
			seqs = append(seqs, m.ID.Seq)
		}
		if cfg.DigestOrdering {
			// The replayed backlog re-enters the ordering path as fresh
			// descriptors (regrouped into contiguous runs), not as raw
			// messages; the flow slots stay bound to the real sequence
			// numbers either way.
			e.regroupOwn(st.Own)
		} else {
			for _, m := range st.Own {
				e.own[m.ID.Seq] = &ownMsg{msg: m}
				e.pool[m.ID] = m
			}
		}
		var last uint64
		if st.NextSeq > 0 {
			last = st.NextSeq - 1
		}
		e.fc.Resume(last, seqs)
		// Re-derive the view history from the durable log: decided config
		// ops replay idempotently (epoch CAS), so a restart resumes under
		// the membership it had decided. Logged batches hold resolved
		// bodies in both ordering modes, so the ops are directly visible.
		if cfg.Persist != nil {
			for k := uint64(1); k <= e.decidedK; k++ {
				b, ok := cfg.Persist.ReadDecision(k)
				if !ok {
					continue
				}
				for _, m := range b {
					if op, isCfg := member.DecodeOp(m.Body); isCfg {
						e.hist.Apply(op, k, e.pipe)
					}
				}
			}
		}
	}
	if cur := e.hist.Current(); cur.Epoch > 0 || cfg.InitialView != nil {
		e.reconfigureLocal(cur)
	}
	return e
}

// regroupOwn rebuilds a replayed own backlog as descriptors (digest
// ordering): the surviving messages are regrouped into maximal contiguous
// sequence runs — gaps are messages an old decision already ordered —
// each run becoming one resident payload batch whose fresh
// incarnation-tagged descriptor joins own and pool.
func (e *Engine) regroupOwn(own wire.Batch) {
	msgs := make(wire.Batch, len(own))
	copy(msgs, own)
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].ID.Seq < msgs[j].ID.Seq })
	for start := 0; start < len(msgs); {
		end := start + 1
		for end < len(msgs) && msgs[end].ID.Seq == msgs[end-1].ID.Seq+1 {
			end++
		}
		run := msgs[start:end]
		start = end
		e.nextDSeq++
		d, err := wire.DescriptorFor(run, e.nextDSeq)
		if err != nil {
			continue // impossible for a contiguous single-origin run
		}
		e.store.PutBatch(run)
		pm := d.AppMsg()
		e.own[d.DSeq] = &ownMsg{msg: pm}
		e.pool[pm.ID] = pm
	}
}

// Start implements engine.Engine. A recovered engine announces itself and
// begins state transfer before proposing anything.
func (e *Engine) Start() {
	e.started = true
	e.pipelineIdle = true
	if st := e.cfg.Recovered; st != nil {
		c := e.env.Counters()
		c.Recoveries.Add(1)
		c.RecoveryReplayedMsgs.Add(st.ReplayedMsgs)
		if e.others() > 0 {
			e.rec.Begin(e.env.Now(), recovery.Quorum(len(e.hist.Current().Members)))
			e.recLastSeen = e.decidedK
			e.sendAll(message{Type: mRecoverReq, Instance: e.decidedK + 1})
			if e.cfg.ResendEvery > 0 {
				e.env.SetTimer(engine.TimerRecover, e.cfg.ResendEvery)
			}
			// Re-inject the replayed own backlog: forward it to the current
			// coordinator now (the paper's bootstrap path) so its ordering
			// does not depend on the idle-kick timer being enabled. Under
			// digest ordering the payload bytes must travel too — the
			// forward carries only descriptors.
			e.reannounceOwn()
			e.forwardRecoveredOwn()
		} else {
			e.tryPropose()
		}
	}
	e.armKick()
}

// forwardRecoveredOwn pushes the admitted-but-unordered messages of the
// previous incarnation toward the current coordinator (when that is not
// this process — a coordinating self proposes them via tryPropose after
// catch-up, since the pool already holds them).
func (e *Engine) forwardRecoveredOwn() {
	if len(e.own) == 0 {
		return
	}
	cur := e.current()
	if coord := e.coordinatorAt(cur.k, cur.round); coord != e.self {
		e.forwardOwn(cur, coord)
	}
}

// Pending implements engine.Engine: unordered messages known locally,
// including any still waiting in the sender-side batch accumulator.
func (e *Engine) Pending() int {
	known := make(map[types.MsgID]struct{}, len(e.pool)+len(e.own))
	for id := range e.pool {
		known[id] = struct{}{}
	}
	for _, om := range e.own {
		known[om.msg.ID] = struct{}{}
	}
	n := len(known)
	if e.acc != nil {
		n += e.acc.Len()
	}
	return n
}

// viewAt returns the membership view governing consensus instance k.
func (e *Engine) viewAt(k uint64) member.View { return e.hist.At(k) }

// coordinatorAt returns the coordinator of round r (1-based) of
// instance k: members of the governing view rotate in sorted order. For
// the static boot view {0..n-1} this degenerates to the paper's
// (r-1) mod n rule.
func (e *Engine) coordinatorAt(k uint64, r uint32) types.ProcessID {
	return e.viewAt(k).Coordinator(r)
}

// others counts current-view members other than this process.
func (e *Engine) others() int {
	n := 0
	for _, p := range e.hist.Current().Members {
		if p != e.self {
			n++
		}
	}
	return n
}

// get returns (creating if needed) the instance state for k, advancing
// past rounds whose coordinator is already suspected.
func (e *Engine) get(k uint64) *inst {
	in := e.insts[k]
	if in != nil {
		return in
	}
	in = &inst{
		k:         k,
		round:     1,
		proposals: make(map[uint32]wire.Batch),
		nacked:    make(map[uint32]bool),
		coord:     make(map[uint32]*coordRound),
	}
	e.insts[k] = in
	for !e.rec.Active() && e.suspected[e.coordinatorAt(k, in.round)] {
		e.advanceRound(in)
	}
	return in
}

// current returns the instance currently being agreed on (decidedK+1).
func (e *Engine) current() *inst { return e.get(e.decidedK + 1) }

// Abcast implements engine.Engine. The message is NOT diffused: it waits
// for the next ack to the coordinator (§4.2), or is forwarded immediately
// when no consensus is in flight to piggyback on. With sender-side
// batching enabled it first waits in the accumulator and enters the
// ordering machinery together with its batch.
func (e *Engine) Abcast(body []byte) (types.MsgID, error) {
	id, err := e.fc.Admit()
	if err != nil {
		return types.MsgID{}, err
	}
	msg := wire.AppMsg{ID: id, Body: body}
	c := e.env.Counters()
	c.ABCast.Add(1)
	c.Dispatches.Add(1) // application downcall into the engine
	e.cfg.Obs.Submitted(id, e.env.Now())
	if e.acc == nil {
		e.ingestBatch(wire.Batch{msg})
		return id, nil
	}
	sealed, act := e.acc.Add(msg)
	for _, b := range sealed {
		c.SenderBatches.Add(1)
		c.SenderBatchedMsgs.Add(int64(len(b)))
		e.ingestBatch(b)
	}
	switch act {
	case batch.TimerArm:
		e.env.SetTimer(engine.TimerFlush, e.cfg.Batch.MaxDelay)
	case batch.TimerCancel:
		e.env.CancelTimer(engine.TimerFlush)
	}
	return id, nil
}

// ingestBatch hands locally submitted messages to the ordering machinery:
// they join own and the pool, and the coordinator/forward step runs once
// for the whole batch (§4.2's piggybacking then carries them together).
// With durability enabled the batch is logged first — write-ahead of its
// first appearance on the wire.
func (e *Engine) ingestBatch(b wire.Batch) {
	if e.cfg.Persist != nil {
		e.cfg.Persist.PersistAdmit(b)
	}
	if o := e.cfg.Obs; o != nil {
		now := e.env.Now()
		for _, m := range b {
			o.Stage(m.ID, obs.StageSeal, now)
		}
	}
	entries := b
	if e.cfg.DigestOrdering {
		// Disseminate the payload exactly once; only the descriptor
		// pseudo-message enters the ordering machinery (own, pool, acks,
		// proposals). Own sealed batches are contiguous by construction
		// (flow control assigns sequential seqs, the accumulator preserves
		// admission order); on the impossible shape error the raw messages
		// degrade to payload-style ordering instead of being lost.
		e.nextDSeq++
		if d, err := wire.DescriptorFor(b, e.nextDSeq); err == nil {
			e.store.PutBatch(b)
			entries = wire.Batch{d.AppMsg()}
			e.spreadAnnounce(d, b)
		}
	}
	for _, m := range entries {
		e.own[m.ID.Seq] = &ownMsg{msg: m}
		// Own messages always join the local pool: inert while another
		// process coordinates, but immediately proposable if this process
		// is (or becomes, after a round change) the coordinator.
		e.pool[m.ID] = m
	}
	cur := e.current()
	coord := e.coordinatorAt(cur.k, cur.round)
	if coord == e.self {
		for _, m := range entries {
			e.own[m.ID.Seq].attached = cur.k
		}
		e.tryPropose()
		e.armKick()
		return
	}
	if e.pipelineIdle && len(cur.proposals) == 0 && !cur.decided {
		// The pipeline is stopped, so no ack will come by to piggyback on:
		// forward directly to the coordinator to restart it.
		e.forwardOwn(cur, coord)
	}
	e.armKick()
}

// forwardOwn sends every eligible own message to the coordinator as a
// standalone forward (idle/bootstrap path).
func (e *Engine) forwardOwn(cur *inst, coord types.ProcessID) {
	batch := e.eligibleOwn(cur.k)
	if len(batch) == 0 {
		return
	}
	e.send(coord, message{Type: mForward, Instance: cur.k, Round: cur.round, Batch: batch})
}

// eligibleOwn collects own unordered messages that should be (re)sent to a
// coordinator when acking instance k, and marks them attached to k.
func (e *Engine) eligibleOwn(k uint64) wire.Batch {
	var batch wire.Batch
	for _, om := range e.own {
		if om.attached == 0 || k >= om.attached+attachGrace*uint64(e.pipe) {
			om.attached = k
			batch = append(batch, om.msg)
		}
	}
	batch.SortDeterministic()
	return batch
}

// allOwn collects every own unordered message (estimate path: the new
// coordinator starts with nothing of ours).
func (e *Engine) allOwn(k uint64) wire.Batch {
	var batch wire.Batch
	for _, om := range e.own {
		om.attached = k
		batch = append(batch, om.msg)
	}
	batch.SortDeterministic()
	return batch
}

// tryPropose makes this process propose for every window instance whose
// current round it coordinates and has not proposed yet (round 1: the
// proposable pool, estimate phase suppressed; rounds >= 2: the locked
// estimate once a majority of estimates arrived). With pipe == 1 the
// window is the single current instance — the paper's sequential engine;
// deeper windows keep up to W proposals in flight, each carrying a
// disjoint slice of the pool.
func (e *Engine) tryPropose() {
	if e.rec.Active() {
		return // never propose while catching up on missed decisions
	}
	for k := e.decidedK + 1; k <= e.decidedK+uint64(e.pipe); k++ {
		in := e.get(k)
		if in.decided {
			continue
		}
		r := in.round
		if e.coordinatorAt(k, r) != e.self {
			continue
		}
		cr := in.coordRound(r)
		if cr.proposed {
			continue
		}
		if r == 1 {
			batch := e.poolBatch(k)
			if len(batch) == 0 {
				continue // nothing proposable; later round-1 slots are empty too
			}
			e.env.Counters().ConsensusStarted.Add(1)
			e.proposeRound(in, r, batch)
			continue
		}
		e.coordMaybePropose(in, r)
	}
}

// poolBatch snapshots the pool slice proposable for instance k — messages
// not riding another in-flight proposal (those assigned to k itself stay
// eligible: a round change within k re-proposes them) — as a
// deterministic, optionally capped batch.
func (e *Engine) poolBatch(k uint64) wire.Batch {
	cur := e.hist.Current()
	batch := make(wire.Batch, 0, len(e.pool))
	for id, m := range e.pool {
		if a, ok := e.assigned[id]; ok && a != k {
			continue
		}
		if !cur.Contains(id.Sender) {
			// Removed origin: from the moment this process applies the
			// remove, none of its proposals carries the origin again — the
			// guarantee that lets the activation boundary retire the
			// origin's payload state without wedging a later decide.
			continue
		}
		batch = append(batch, m)
	}
	batch.SortDeterministic()
	if e.cfg.MaxBatch > 0 && len(batch) > e.cfg.MaxBatch {
		batch = batch[:e.cfg.MaxBatch]
	}
	return wire.CapBatchBytes(batch)
}

// openProposals counts this process's in-flight proposals: window
// instances whose current round this process proposed and that have not
// decided yet.
func (e *Engine) openProposals() int {
	open := 0
	for k := e.decidedK + 1; k <= e.decidedK+uint64(e.pipe); k++ {
		in := e.insts[k]
		if in == nil || in.decided {
			continue
		}
		if cr := in.coord[in.round]; cr != nil && cr.proposed {
			open++
		}
	}
	return open
}

// proposeRound sends the combined proposal(k)+decision (§4.1) and adopts
// the proposal locally.
func (e *Engine) proposeRound(in *inst, r uint32, batch wire.Batch) {
	cr := in.coordRound(r)
	cr.proposal = batch
	cr.proposed = true
	cr.acks[e.self] = true
	in.est = batch
	in.estTS = r
	in.hasEst = true
	if r > in.round {
		in.round = r
	}
	in.proposals[r] = batch
	// Partition bookkeeping: pool messages carried by this proposal must
	// not ride a second concurrent proposal (decide releases survivors).
	for _, pm := range batch {
		if _, ok := e.pool[pm.ID]; ok && e.assigned[pm.ID] != in.k {
			e.assigned[pm.ID] = in.k
			e.propIDs[in.k] = append(e.propIDs[in.k], pm.ID)
		}
	}
	e.propSent++
	e.env.Counters().ObserveDepth(e.openProposals())
	if o := e.cfg.Obs; o != nil {
		now := e.env.Now()
		for _, pm := range batch {
			o.Stage(pm.ID, obs.StagePropose, now)
		}
	}
	m := message{Type: mPropDec, Instance: in.k, Round: r, Batch: batch}
	// Piggyback a decision on the proposal (§4.1). Sequentially the
	// freshest decision is exactly instance in.k-1; under pipelining the
	// proposal of a newly opened window slot instead carries the latest
	// decided instance, which is what keeps every peer's in-order decide
	// cascade fed while earlier slots are still in flight.
	prevK := in.k - 1
	if e.pipe > 1 {
		prevK = e.decidedK
	}
	if prev := e.insts[prevK]; prev != nil && prev.decided {
		m.PrevDecided = true
		m.PrevK = prev.k
		m.PrevRound = prev.decisionRound
	}
	e.spreadPropDec(m)
	e.checkDecide(in, r)
}

// spreadPropDec disseminates a combined proposal+decision according to
// the strategy: a plain broadcast under AllToAll (the paper's behavior,
// bit-identical), or one transmission to the first live successor under
// Ring, wrapped in an mRelay that the successors carry around the group.
// The origin pays the payload bytes of exactly one transmission on the
// ring path (mRelay's own payloadBytes is zero — Data is opaque there).
func (e *Engine) spreadPropDec(m message) {
	if e.cfg.DigestOrdering {
		// Digest ordering: the proposal carries descriptors only — pure
		// control that no longer scales with payload size — so it never
		// rides the ring; mAnnounce is what relays (spreadAnnounce).
		e.sendAll(m)
		return
	}
	h, to, relay := e.diss.Origin()
	if !relay {
		e.sendAll(m)
		return
	}
	e.env.Counters().PayloadBytesSent.Add(int64(m.payloadBytes()))
	e.send(to, message{
		Type:        mRelay,
		Instance:    h.Seq,
		RelayOrigin: h.Origin,
		RelayHops:   h.Hops,
		Data:        m.marshal(),
	})
}

// handleRelay processes a ring-relayed proposal: validate the inner
// message, consult the disseminator's dedup watermark (a lapped or
// duplicated frame is dropped whole), forward to our successor when the
// lap is not complete, then process the proposal exactly as if the
// origin had sent it directly — acks, nacks and refetches all go
// straight back to the origin, never along the ring.
func (e *Engine) handleRelay(from types.ProcessID, m message) error {
	if e.cfg.DigestOrdering {
		return e.handleAnnounceRelay(from, m)
	}
	inner, err := unmarshalMessage(m.Data)
	if err != nil {
		return fmt.Errorf("monolithic: bad relayed proposal from %s: %w", from, err)
	}
	if inner.Type != mPropDec {
		return fmt.Errorf("monolithic: relayed %s from %s (only proposals relay)", inner.Type, from)
	}
	h := wire.RelayHeader{Origin: m.RelayOrigin, Seq: m.Instance, Hops: m.RelayHops}
	nh, to, process, forward := e.diss.Accept(h)
	if !process {
		return nil
	}
	if forward {
		e.env.Counters().PayloadBytesSent.Add(int64(inner.payloadBytes()))
		e.send(to, message{
			Type:        mRelay,
			Instance:    nh.Seq,
			RelayOrigin: nh.Origin,
			RelayHops:   nh.Hops,
			Data:        m.Data,
		})
	}
	e.handlePropDec(h.Origin, inner)
	return nil
}

// spreadAnnounce disseminates one payload batch with its descriptor
// through the strategy seam: a broadcast mAnnounce under AllToAll, or one
// transmission to the first live successor under Ring (the successors
// relay it around the group, so the origin's egress stays constant).
// This is digest ordering's only payload-bearing dissemination.
func (e *Engine) spreadAnnounce(d wire.Descriptor, b wire.Batch) {
	w := wire.GetWriter(32 + b.WireSize())
	wire.AppendAnnounceFrame(w, d, b)
	frame := make([]byte, w.Len())
	copy(frame, w.Bytes())
	wire.PutWriter(w)
	c := e.env.Counters()
	h, to, relay := e.diss.Origin()
	if !relay {
		c.PayloadBytesSent.Add(int64(b.PayloadBytes() * e.others()))
		e.sendAll(message{Type: mAnnounce, Data: frame})
		return
	}
	c.PayloadBytesSent.Add(int64(b.PayloadBytes()))
	e.send(to, message{
		Type:        mRelay,
		Instance:    h.Seq,
		RelayOrigin: h.Origin,
		RelayHops:   h.Hops,
		Data:        frame,
	})
}

// handleAnnounceRelay processes a ring-relayed payload announce (under
// digest ordering the relay wraps a raw announce frame — the proposal is
// pure control and never relays): validate the frame at the wire layer,
// dedup on the relay watermark, forward along the ring, then ingest
// exactly like a direct announce.
func (e *Engine) handleAnnounceRelay(from types.ProcessID, m message) error {
	d, b, err := wire.UnmarshalAnnounceFrame(m.Data)
	if err != nil {
		return fmt.Errorf("monolithic: bad relayed announce from %s: %w", from, err)
	}
	h := wire.RelayHeader{Origin: m.RelayOrigin, Seq: m.Instance, Hops: m.RelayHops}
	nh, to, process, forward := e.diss.Accept(h)
	if !process {
		return nil
	}
	if forward {
		e.env.Counters().PayloadBytesSent.Add(int64(b.PayloadBytes()))
		e.send(to, message{
			Type:        mRelay,
			Instance:    nh.Seq,
			RelayOrigin: nh.Origin,
			RelayHops:   nh.Hops,
			Data:        m.Data,
		})
	}
	e.handleAnnounce(d, b)
	return nil
}

// handleAnnounce ingests a disseminated payload batch: the bytes become
// resident (proposable, fetchable, resolvable), the descriptor joins the
// pool unless already decided, and a head decision blocked on this
// payload retries.
func (e *Engine) handleAnnounce(d wire.Descriptor, b wire.Batch) {
	if !e.hist.Current().Contains(d.Origin) {
		return // removed origin: its undecided payloads are retired state
	}
	pm := d.AppMsg()
	if _, done := e.descDone[pm.ID]; done {
		return // duplicate announce of a decided descriptor
	}
	e.store.PutBatch(b)
	if e.rangeFullyDelivered(d) {
		// Every message of the range is already adelivered — the decision
		// arrived pre-resolved (decision-full answer, recovery chunk)
		// while this announce was cut off, so no descriptor retirement
		// ever named this ID. Retire it here: pooling it would park a
		// fully-decided descriptor that no future decision will clear,
		// and the origin's kick would re-announce it forever.
		e.descDone[pm.ID] = e.decidedK
		e.store.MarkDelivered(d, e.decidedK)
		delete(e.pool, pm.ID)
		delete(e.assigned, pm.ID)
		return
	}
	if _, ok := e.pool[pm.ID]; !ok {
		e.pool[pm.ID] = pm
	}
	e.retryBlockedDecide()
	e.tryPropose()
	e.armKick()
}

// handlePayloadFetch serves a decided-but-not-resident repair request
// from the local store; a miss is silently ignored — the requester's
// timer rotates to the next holder.
func (e *Engine) handlePayloadFetch(from types.ProcessID, d wire.Descriptor) {
	b, ok := e.store.Range(d)
	if !ok {
		return
	}
	c := e.env.Counters()
	c.Retransmissions.Add(1)
	c.PayloadBytesSent.Add(int64(b.PayloadBytes()))
	w := wire.GetWriter(32 + b.WireSize())
	wire.AppendPayloadRespFrame(w, d, b)
	frame := make([]byte, w.Len())
	copy(frame, w.Bytes())
	wire.PutWriter(w)
	e.send(from, message{Type: mPayloadResp, Data: frame})
}

// handlePayloadResp ingests a repair response (validated against its
// descriptor at the wire layer) and retries the blocked head.
func (e *Engine) handlePayloadResp(d wire.Descriptor, b wire.Batch) {
	e.store.PutBatch(b)
	e.retryBlockedDecide()
	e.tryPropose()
}

// reannounceOwn re-disseminates the payload batch of every own undecided
// descriptor (digest ordering; no-op otherwise). Recovered backlogs and
// stalled kicks must re-spread the payload bytes, not just the
// descriptor — a forward alone could let the cluster order a digest
// whose bytes only this process holds.
func (e *Engine) reannounceOwn() {
	if !e.cfg.DigestOrdering || len(e.own) == 0 {
		return
	}
	dseqs := make([]uint64, 0, len(e.own))
	for dseq := range e.own {
		dseqs = append(dseqs, dseq)
	}
	sort.Slice(dseqs, func(i, j int) bool { return dseqs[i] < dseqs[j] })
	c := e.env.Counters()
	for _, dseq := range dseqs {
		d, err := wire.ParseDescriptor(e.own[dseq].msg)
		if err != nil {
			continue // shape-bug fallback entry: raw messages, nothing to announce
		}
		if b, ok := e.store.Range(d); ok {
			c.Retransmissions.Add(1)
			e.spreadAnnounce(d, b)
		}
	}
}

// respreadOpen re-disseminates every open proposal this process
// coordinates, with fresh relay sequence numbers — the ring's stall
// backstop. A relayed proposal that died mid-ring (crashed or partitioned
// successor, before the failure detector fired) leaves the coordinator
// waiting on a majority that cannot complete and nothing else would ever
// retransmit it; suspicion changes and the kick timer route it around the
// repaired ring. No-op under AllToAll, where the broadcast already
// reached everyone.
func (e *Engine) respreadOpen() {
	if e.diss.Strategy() != dissem.Ring || e.rec.Active() {
		return
	}
	c := e.env.Counters()
	for k := e.decidedK + 1; k <= e.decidedK+uint64(e.pipe); k++ {
		in := e.insts[k]
		if in == nil || in.decided {
			continue
		}
		cr := in.coord[in.round]
		if cr == nil || !cr.proposed || e.coordinatorAt(in.k, in.round) != e.self {
			continue
		}
		m := message{Type: mPropDec, Instance: in.k, Round: in.round, Batch: cr.proposal}
		prevK := in.k - 1
		if e.pipe > 1 {
			prevK = e.decidedK
		}
		if prev := e.insts[prevK]; prev != nil && prev.decided {
			m.PrevDecided = true
			m.PrevK = prev.k
			m.PrevRound = prev.decisionRound
		}
		c.Retransmissions.Add(1)
		e.spreadPropDec(m)
	}
}

// coordMaybePropose proposes for round r >= 2 once a majority of estimates
// is collected; if every estimate is bottom, the coordinator's own pool is
// the initial value.
func (e *Engine) coordMaybePropose(in *inst, r uint32) {
	if in.decided || r < 2 {
		return
	}
	cr := in.coordRound(r)
	if cr.proposed {
		return
	}
	// Quorum and tie-break iterate the view governing this instance:
	// estimates from processes outside it never count toward the
	// majority, and the majority itself is the view's.
	v := e.viewAt(in.k)
	votes := 0
	for _, p := range v.Members {
		if p == e.self {
			votes++ // own estimate is in.est/in.estTS, not in the map
			continue
		}
		if _, ok := cr.estimates[p]; ok {
			votes++
		}
	}
	if votes < v.Majority() {
		return
	}
	// Iterate in member order so tie-breaks are deterministic.
	best := estimateEntry{hasValue: in.hasEst, ts: in.estTS, batch: in.est}
	for _, p := range v.Members {
		en, ok := cr.estimates[p]
		if !ok || !en.hasValue {
			continue
		}
		if !best.hasValue || en.ts > best.ts {
			best = en
		}
	}
	if !best.hasValue {
		// No locked value anywhere: free to propose fresh messages.
		batch := e.poolBatch(in.k)
		if len(batch) == 0 {
			return
		}
		best = estimateEntry{hasValue: true, batch: batch}
		e.env.Counters().ConsensusStarted.Add(1)
	}
	e.proposeRound(in, r, best.batch)
}

// advanceRound abandons a round with a suspected coordinator: nack it and
// send the estimate — carrying all own unordered messages (§4.2) — to the
// next coordinator.
func (e *Engine) advanceRound(in *inst) {
	r := in.round
	if c := e.coordinatorAt(in.k, r); c != e.self && !in.nacked[r] {
		e.send(c, message{Type: mNack, Instance: in.k, Round: r})
	}
	in.nacked[r] = true
	in.round = r + 1
	e.env.Counters().Rounds.Add(1)
	next := e.coordinatorAt(in.k, in.round)
	if next == e.self {
		e.coordMaybePropose(in, in.round)
		return
	}
	e.send(next, message{
		Type:      mEstimate,
		Instance:  in.k,
		Round:     in.round,
		TS:        in.estTS,
		HasValue:  in.hasEst,
		Batch:     in.est,
		Piggyback: e.allOwn(in.k),
	})
}

// HandleMessage implements engine.Engine.
func (e *Engine) HandleMessage(from types.ProcessID, data []byte) error {
	m, err := unmarshalMessage(data)
	if err != nil {
		return fmt.Errorf("monolithic: from %s: %w", from, err)
	}
	e.env.Counters().Dispatches.Add(1)
	switch m.Type {
	case mPropDec:
		e.handlePropDec(from, m)
	case mAckDiff:
		e.handleAckDiff(from, m)
	case mEstimate:
		e.handleEstimate(from, m)
	case mNack:
		e.handleNack(m)
	case mForward:
		e.handleForward(m)
	case mDecisionOnly:
		e.handleDecisionOnly(from, m)
	case mDecisionReq:
		e.handleDecisionReq(from, m)
	case mDecisionFull:
		e.handleDecisionFull(m)
	case mRecoverReq:
		e.handleRecoverReq(from, m)
	case mRecoverResp:
		e.handleRecoverResp(from, m)
	case mSnapReq:
		e.handleSnapReq(from, m)
	case mSnapResp:
		e.handleSnapResp(from, m)
	case mRelay:
		return e.handleRelay(from, m)
	case mAnnounce:
		if !e.cfg.DigestOrdering {
			return fmt.Errorf("monolithic: announce from %s without digest ordering", from)
		}
		d, b, err := wire.UnmarshalAnnounceFrame(m.Data)
		if err != nil {
			return fmt.Errorf("monolithic: bad announce from %s: %w", from, err)
		}
		e.handleAnnounce(d, b)
	case mPayloadFetch:
		if !e.cfg.DigestOrdering {
			return fmt.Errorf("monolithic: payload fetch from %s without digest ordering", from)
		}
		d, err := wire.UnmarshalPayloadFetch(m.Data)
		if err != nil {
			return fmt.Errorf("monolithic: bad payload fetch from %s: %w", from, err)
		}
		e.handlePayloadFetch(from, d)
	case mPayloadResp:
		if !e.cfg.DigestOrdering {
			return fmt.Errorf("monolithic: payload response from %s without digest ordering", from)
		}
		d, b, err := wire.UnmarshalPayloadRespFrame(m.Data)
		if err != nil {
			return fmt.Errorf("monolithic: bad payload response from %s: %w", from, err)
		}
		e.handlePayloadResp(d, b)
	default:
		return fmt.Errorf("monolithic: unexpected message type %d from %s", uint8(m.Type), from)
	}
	return nil
}

// handlePropDec processes the combined proposal+decision: apply the
// piggybacked decision of k-1, then adopt and acknowledge proposal k,
// piggybacking fresh own messages on the ack (§4.1 + §4.2).
func (e *Engine) handlePropDec(from types.ProcessID, m message) {
	e.pipelineIdle = false
	if m.PrevDecided {
		e.applyRemoteDecision(from, m.PrevK, m.PrevRound)
	}
	if e.insts[m.Instance] == nil && m.Instance <= e.decidedK {
		// Proposal for an instance decided so long ago it was pruned:
		// get() would recreate it as undecided and this process would ack
		// — manufacturing a vote that could let a badly lagging proposer
		// assemble a majority for a second, conflicting decision. Serve
		// the original decision (the log keeps it past the prune horizon)
		// and never ack.
		e.catchUpPruned(from, m.Instance, m.Round)
		return
	}
	in := e.get(m.Instance)
	in.proposals[m.Round] = m.Batch
	if in.decided {
		// The proposer lags: it missed this instance's decision (a
		// round-changed coordinator decided it while links were faulty).
		// Catch it up instead of dropping the proposal silently — the
		// proposer would otherwise re-propose forever.
		e.catchUp(from, in)
		return
	}
	if in.waitingRound != 0 && m.Round == in.waitingRound {
		e.decide(in, m.Batch, m.Round)
		return
	}
	if m.Round < in.round {
		e.send(from, message{Type: mNack, Instance: in.k, Round: m.Round})
		return
	}
	if m.Instance > e.decidedK+uint64(e.pipe) {
		// Gap: a proposal beyond the pipeline window means the proposer's
		// decided horizon ran ahead of ours — we missed one or more
		// decisions (coordinator crash window). Proposals merely ahead
		// within the window are normal pipelining, and the decisions they
		// piggyback arrive in order on the same FIFO channel.
		e.requestMissing(from, m.Instance)
	}
	in.round = m.Round
	if in.nacked[m.Round] {
		return
	}
	in.est = m.Batch
	in.estTS = m.Round
	in.hasEst = true
	ack := message{Type: mAckDiff, Instance: in.k, Round: m.Round, Batch: e.eligibleOwn(in.k)}
	e.send(from, ack)
}

// handleAckDiff processes an ack at the coordinator: pool the piggybacked
// messages and decide on majority.
func (e *Engine) handleAckDiff(from types.ProcessID, m message) {
	e.poolIn(m.Batch)
	if e.insts[m.Instance] == nil && m.Instance <= e.decidedK {
		// Ack for a pruned decided instance: recreating it would disarm
		// the pruned-instance guard for every later stale message. The
		// acker adopted a proposal and is waiting on a decision that left
		// retention — serve it from the log.
		e.catchUpPruned(from, m.Instance, m.Round)
		e.tryPropose()
		return
	}
	in := e.get(m.Instance)
	if in.decided {
		// A late ack for a decided instance is normal (the coordinator
		// decides on the majority ack); the acker learns the decision from
		// the piggyback on the next proposal or the standalone flush.
		e.tryPropose()
		return
	}
	cr := in.coordRound(m.Round)
	if cr.proposed {
		cr.acks[from] = true
		e.checkDecide(in, m.Round)
	}
	e.tryPropose()
}

// handleEstimate processes a round-change estimate at the new coordinator.
func (e *Engine) handleEstimate(from types.ProcessID, m message) {
	e.poolIn(m.Piggyback)
	if e.insts[m.Instance] == nil && m.Instance <= e.decidedK {
		// Estimate for a pruned decided instance: recreating it could make
		// this process coordinate (and re-propose) an instance the cluster
		// settled long ago. Serve the original decision instead.
		e.catchUpPruned(from, m.Instance, m.Round)
		return
	}
	in := e.get(m.Instance)
	if in.decided {
		e.send(from, message{Type: mDecisionFull, Instance: in.k, Round: in.decisionRound, Batch: in.decision})
		return
	}
	if e.coordinatorAt(m.Instance, m.Round) != e.self || m.Round < 2 {
		return
	}
	cr := in.coordRound(m.Round)
	cr.estimates[from] = estimateEntry{ts: m.TS, hasValue: m.HasValue, batch: m.Batch}
	e.coordMaybePropose(in, m.Round)
}

// handleNack processes a nack for a round this process coordinated and
// proposed. Rounds normally advance on suspicion only (§3.2
// optimization), but a proposal lost to a peer's crash-recovery restart
// leaves the unsuspected coordinator waiting for a majority that cannot
// complete once another peer nacked the round away; the nack is proof the
// round was abandoned, so the coordinator re-enters the rotation (safe:
// the Chandra–Toueg locking rule protects agreement across rounds).
func (e *Engine) handleNack(m message) {
	if e.insts[m.Instance] == nil && m.Instance <= e.decidedK {
		return // late nack for a pruned decided instance: never resurrect it
	}
	in := e.get(m.Instance)
	if in.decided || m.Round != in.round || e.rec.Active() {
		return
	}
	cr := in.coord[m.Round]
	if cr == nil || !cr.proposed {
		return
	}
	// Advance, then keep advancing past coordinators that are currently
	// suspected (the same cascade Suspect performs): stopping on a round
	// whose coordinator is down would send the estimate into a void.
	e.advanceRound(in)
	for !in.decided && e.suspected[e.coordinatorAt(in.k, in.round)] {
		e.advanceRound(in)
	}
}

// handleForward pools directly forwarded messages at the coordinator.
func (e *Engine) handleForward(m message) {
	e.poolIn(m.Batch)
	e.tryPropose()
}

// catchUp sends the full decision of a decided instance to a peer that
// demonstrably missed it (it proposed into the instance after this
// process decided it — pathological outside fault scenarios).
// Response-driven: one message per stale proposal, no broadcasts.
func (e *Engine) catchUp(to types.ProcessID, in *inst) {
	e.send(to, message{Type: mDecisionFull, Instance: in.k, Round: in.decisionRound, Batch: in.decision})
	e.env.Counters().Retransmissions.Add(1)
}

// catchUpPruned serves the decision of an instance pruned from memory,
// reading it back from the durable log (the round of record is gone with
// the pruned state; the peer's own round stands in — handleDecisionFull
// only needs a consistent label). Without a log the decision is
// unservable here and a better-provisioned peer must answer.
func (e *Engine) catchUpPruned(to types.ProcessID, k uint64, round uint32) {
	batch, ok := e.lookupDecision(k)
	if !ok {
		return
	}
	e.send(to, message{Type: mDecisionFull, Instance: k, Round: round, Batch: batch})
	e.env.Counters().Retransmissions.Add(1)
}

// poolIn adds piggybacked messages to the pool, ignoring already-delivered
// ones.
func (e *Engine) poolIn(batch wire.Batch) {
	cur := e.hist.Current()
	for _, msg := range batch {
		if !cur.Contains(msg.ID.Sender) {
			// Removed origin: pooling it would let a proposal carry state
			// the activation boundary already retired cluster-wide.
			continue
		}
		if e.cfg.DigestOrdering {
			// The batch carries descriptor pseudo-messages here, whose IDs
			// alias real message IDs at incarnation 0 — the per-sender
			// delivered suppressor must not be consulted (a real seq n
			// delivery would falsely suppress descriptor counter n);
			// descDone is the descriptor-space dedup.
			if _, done := e.descDone[msg.ID]; done {
				continue
			}
			// A descriptor whose whole range is already adelivered (learned
			// through a pre-resolved decision that named no descriptors) has
			// nothing left to order — retire instead of pooling.
			if d, err := wire.ParseDescriptor(msg); err == nil && e.rangeFullyDelivered(d) {
				e.descDone[msg.ID] = e.decidedK
				e.store.MarkDelivered(d, e.decidedK)
				continue
			}
		} else if e.isDelivered(msg.ID) {
			continue
		}
		if _, ok := e.pool[msg.ID]; !ok {
			e.pool[msg.ID] = msg
		}
	}
}

// checkDecide decides instance k at the coordinator once a majority of
// the view governing k (including itself) acknowledged round r. Acks
// from processes outside that view never count.
func (e *Engine) checkDecide(in *inst, r uint32) {
	cr := in.coordRound(r)
	if in.decided || !cr.proposed {
		return
	}
	v := e.viewAt(in.k)
	acks := 0
	for _, p := range v.Members {
		if cr.acks[p] {
			acks++
		}
	}
	if acks < v.Majority() {
		return
	}
	e.decide(in, cr.proposal, r)
}

// applyRemoteDecision applies a decision learned from a peer (piggybacked
// on a proposal or flushed standalone). Decisions apply strictly in order;
// gaps trigger refetch, and announcements for future instances are
// remembered on the instance so the cascade in decide picks them up.
func (e *Engine) applyRemoteDecision(from types.ProcessID, k uint64, round uint32) {
	if k <= e.decidedK {
		return
	}
	if k > e.decidedK+1 {
		// Remember that k is decided in this round, then backfill the gap.
		in := e.get(k)
		if !in.decided && in.waitingRound == 0 {
			in.waitingRound = round
		}
		e.requestMissing(from, k)
		return
	}
	in := e.get(k)
	if in.decided {
		return
	}
	if batch, ok := in.proposals[round]; ok {
		e.decide(in, batch, round)
		return
	}
	in.waitingRound = round
	if e.diss.Strategy() == dissem.Ring {
		// Under ring dissemination the proposal carrying this decision is
		// usually still relaying around the ring (direct control frames
		// outrun it); an immediate refetch per announcement floods the
		// decider with full-decision re-serves. Record the want and let the
		// resend timer refetch only if the relay never arrives.
		e.ringWant(k)
		return
	}
	e.send(from, message{Type: mDecisionReq, Instance: k})
	e.env.Counters().Retransmissions.Add(1)
	if e.cfg.ResendEvery > 0 {
		e.env.SetTimer(engine.TimerResend, e.cfg.ResendEvery)
	}
}

// ringWant records that decisions up to k exist remotely and arms the
// resend timer; under ring dissemination retryWaiting refetches the gap
// in bounded chunks only when the ring has genuinely stopped delivering.
func (e *Engine) ringWant(k uint64) {
	if k > e.ringWantK {
		e.ringWantK = k
	}
	if e.cfg.ResendEvery > 0 && !e.ringResendArmed {
		e.ringResendArmed = true
		e.env.SetTimer(engine.TimerResend, e.cfg.ResendEvery)
	}
}

// requestMissing refetches every decision in [decidedK+1, upto] from a
// peer (upto itself is included: its announcement may have carried no
// usable proposal).
func (e *Engine) requestMissing(from types.ProcessID, upto uint64) {
	if e.rec.Active() {
		return // the bulk state transfer already covers the gap
	}
	if e.diss.Strategy() == dissem.Ring {
		e.ringWant(upto)
		return
	}
	c := e.env.Counters()
	for k := e.decidedK + 1; k <= upto; k++ {
		e.send(from, message{Type: mDecisionReq, Instance: k})
		c.Retransmissions.Add(1)
	}
	if e.cfg.ResendEvery > 0 {
		e.env.SetTimer(engine.TimerResend, e.cfg.ResendEvery)
	}
}

// decide finalizes the current instance from an unresolved decision
// batch: under digest ordering the decided descriptors are first resolved
// to their resident payload batches — parking the head (and arming the
// payload re-fetch) when some payload has not arrived — while payload
// ordering adelivers the batch directly.
func (e *Engine) decide(in *inst, batch wire.Batch, r uint32) {
	if in.decided || in.k != e.decidedK+1 {
		return
	}
	if !e.cfg.DigestOrdering {
		e.finalize(in, batch, nil, r)
		return
	}
	resolved, descs, blocked := e.resolveDecision(batch)
	if blocked {
		e.blockOnPayload(in.k, batch, r)
		return
	}
	if e.pw.active && e.pw.k == in.k {
		e.endPayloadWait()
	}
	e.finalize(in, resolved, descs, r)
}

// decideResolved finalizes the current instance from an already-resolved
// decision batch — a full-decision re-serve or a recovery chunk, whose
// batches were stored post-resolution (the WAL and instance memory keep
// resolved bytes under digest ordering). Re-resolving them would be
// wrong, not just wasteful: a real 16-byte message body aliases a
// descriptor encoding.
func (e *Engine) decideResolved(in *inst, batch wire.Batch, r uint32) {
	if in.decided || in.k != e.decidedK+1 {
		return
	}
	if e.pw.active && e.pw.k == in.k {
		e.endPayloadWait()
	}
	e.finalize(in, batch, nil, r)
}

// resolveDecision maps a decided descriptor batch to the real messages it
// ordered. Elements that do not parse as descriptors pass through raw
// (the shape-bug fallback ordered them as plain messages). A descriptor
// with no resident payload resolves trivially — to nothing — when every
// message of its range was already adelivered (an overlapping
// post-restart descriptor re-ordered after pruning); otherwise it blocks
// the decision until the payload lands.
func (e *Engine) resolveDecision(batch wire.Batch) (resolved wire.Batch, descs []wire.Descriptor, blocked bool) {
	for _, m := range batch {
		d, err := wire.ParseDescriptor(m)
		if err != nil {
			resolved = append(resolved, m)
			continue
		}
		if b, ok := e.store.Range(d); ok {
			resolved = append(resolved, b...)
			descs = append(descs, d)
			continue
		}
		if e.rangeFullyDelivered(d) {
			descs = append(descs, d)
			continue
		}
		blocked = true
	}
	if blocked {
		return nil, nil, true
	}
	return resolved, descs, false
}

// rangeFullyDelivered reports whether every real message of the
// descriptor's range was already adelivered (possible only when an
// overlapping post-restart descriptor ordered them first).
func (e *Engine) rangeFullyDelivered(d wire.Descriptor) bool {
	for i := uint32(0); i < d.Count; i++ {
		if !e.isDelivered(types.MsgID{Sender: d.Origin, Seq: d.FirstSeq + uint64(i)}) {
			return false
		}
	}
	return true
}

// blockOnPayload parks the head decision until its missing payload
// arrives (announce, relay, or fetched response). No immediate fetch: the
// announce is usually still in flight — direct control frames outrun ring
// relays — and TimerPayload fetches from a single rotating holder only if
// it never lands (the same deferral discipline as the ring's decision
// refetch).
func (e *Engine) blockOnPayload(k uint64, batch wire.Batch, r uint32) {
	if e.pw.active && e.pw.k == k {
		e.pw.batch = batch
		e.pw.round = r
		return
	}
	e.pw = payloadWait{active: true, k: k, batch: batch, round: r, since: e.env.Now(), to: e.pw.to}
	if e.cfg.ResendEvery > 0 {
		e.env.SetTimer(engine.TimerPayload, e.cfg.ResendEvery)
	}
}

// endPayloadWait closes the blocked-head wait, attributing the blocked
// duration to the payload-fetch accounting.
func (e *Engine) endPayloadWait() {
	dur := e.env.Now() - e.pw.since
	e.env.Counters().PayloadFetchNanos.Add(dur.Nanoseconds())
	e.cfg.Obs.PayloadFetchObserved(dur)
	e.pw.active = false
	e.env.CancelTimer(engine.TimerPayload)
}

// retryBlockedDecide re-attempts the head decision parked on a missing
// payload (after an announce, relay or fetch response made bytes
// resident).
func (e *Engine) retryBlockedDecide() {
	if !e.pw.active {
		return
	}
	in := e.insts[e.pw.k]
	if in == nil || in.decided || e.pw.k != e.decidedK+1 {
		// Stale wait: a snapshot install or a resolved re-serve advanced
		// the watermark past the parked instance.
		e.pw.active = false
		e.env.CancelTimer(engine.TimerPayload)
		return
	}
	e.decide(in, e.pw.batch, e.pw.round)
}

// payloadTimer is the digest-ordering re-fetch driver: if the head is
// still blocked after a full resend period, fetch the first missing
// payload from one rotating live holder — a single target per fire, so a
// cluster-wide stall never multiplies into a fetch storm.
func (e *Engine) payloadTimer() {
	if !e.pw.active {
		return
	}
	e.retryBlockedDecide()
	if !e.pw.active {
		return
	}
	if d, ok := e.headMissingDescriptor(); ok {
		if to := e.nextFetchTarget(); to != e.self {
			c := e.env.Counters()
			c.PayloadFetches.Add(1)
			c.Retransmissions.Add(1)
			w := wire.GetWriter(32)
			wire.AppendPayloadFetchFrame(w, d)
			frame := make([]byte, w.Len())
			copy(frame, w.Bytes())
			wire.PutWriter(w)
			e.send(to, message{Type: mPayloadFetch, Data: frame})
		}
	}
	if e.cfg.ResendEvery > 0 {
		e.env.SetTimer(engine.TimerPayload, e.cfg.ResendEvery)
	}
}

// headMissingDescriptor returns the first descriptor of the blocked head
// whose payload is neither resident nor fully delivered.
func (e *Engine) headMissingDescriptor() (wire.Descriptor, bool) {
	for _, m := range e.pw.batch {
		d, err := wire.ParseDescriptor(m)
		if err != nil {
			continue
		}
		if _, ok := e.store.Range(d); ok {
			continue
		}
		if e.rangeFullyDelivered(d) {
			continue
		}
		return d, true
	}
	return wire.Descriptor{}, false
}

// nextFetchTarget rotates the payload-fetch recipient across unsuspected
// peers — or, with everyone suspected, across all peers (suspicion can be
// wrong, and an unanswered fetch only costs one resend period). Returns
// self only when there are no peers at all.
func (e *Engine) nextFetchTarget() types.ProcessID {
	members := e.hist.Current().Members
	n := len(members)
	// Rank of the first member strictly after the previous target
	// (wrapping); for the static boot view this is the original
	// (prev+1+i) mod n walk.
	start := 0
	for i, p := range members {
		if p > e.pw.to {
			start = i
			break
		}
	}
	fallback := e.self
	for i := 0; i < n; i++ {
		p := members[(start+i)%n]
		if p == e.self {
			continue
		}
		if fallback == e.self {
			fallback = p
		}
		if !e.suspected[p] {
			e.pw.to = p
			return p
		}
	}
	e.pw.to = fallback
	return fallback
}

// finalize commits the head decision: persist, adeliver, release flow
// control, close proposal bookkeeping, cascade buffered successors and
// keep the pipeline moving. batch is the adeliverable form — the resolved
// real messages under digest ordering — and descs the descriptors the
// decision retired (digest ordering only; nil otherwise).
func (e *Engine) finalize(in *inst, batch wire.Batch, descs []wire.Descriptor, r uint32) {
	if e.cfg.Persist != nil {
		// Write-ahead: the decision reaches stable storage before any of
		// its messages is adelivered, so a crash-recovery replay never
		// misses a delivery it may have performed.
		e.cfg.Persist.PersistDecision(in.k, batch)
	}
	in.decided = true
	in.decision = batch
	in.decisionRound = r
	in.waitingRound = 0
	e.decidedK = in.k
	e.lastProgress = e.env.Now()
	c := e.env.Counters()
	c.ConsensusDecided.Add(1)
	c.BatchedMsgs.Add(int64(len(batch)))
	// Descriptor bookkeeping first (digest ordering): the retired
	// descriptors leave own/pool under their pseudo IDs, and descDone
	// suppresses late announces and piggybacks of them.
	for _, d := range descs {
		pmID := types.MsgID{Sender: d.Origin, Seq: d.DSeq}
		delete(e.pool, pmID)
		delete(e.assigned, pmID)
		if d.Origin == e.self {
			delete(e.own, d.DSeq)
		}
		e.descDone[pmID] = in.k
		e.store.MarkDelivered(d, in.k)
	}
	ordered := make(wire.Batch, len(batch))
	copy(ordered, batch)
	ordered.SortDeterministic()
	for _, msg := range ordered {
		if !e.cfg.DigestOrdering {
			// Under digest ordering own/pool hold only descriptor
			// pseudo-messages, whose IDs alias the resolved real IDs at
			// incarnation 0 — deleting by real ID here would silently drop
			// an undecided descriptor (the descs loop above is the
			// bookkeeping that replaces this one).
			delete(e.pool, msg.ID)
			delete(e.assigned, msg.ID)
			if msg.ID.Sender == e.self {
				delete(e.own, msg.ID.Seq)
			}
		}
		if e.isDelivered(msg.ID) {
			// With pipelining, two concurrent instances may both order a
			// message (it reached different coordinator rounds through
			// different acks); the per-sender suppressor makes the second
			// decision a delivery no-op.
			continue
		}
		e.markDelivered(msg.ID)
		if op, isCfg := member.DecodeOp(msg.Body); isCfg {
			// A config op consumes its slot in the total order but never
			// surfaces as an application delivery — the view change is its
			// whole effect. Its flow slot releases like any own message.
			e.applyConfig(in.k, op)
			if err := e.fc.Delivered(msg.ID); err != nil {
				c.Retransmissions.Add(1)
			}
			continue
		}
		c.ADeliver.Add(1)
		if o := e.cfg.Obs; o != nil {
			o.Stage(msg.ID, obs.StageDecide, e.lastProgress)
			o.Delivered(msg.ID, e.lastProgress)
		}
		e.env.Deliver(engine.Delivery{Msg: msg, Instance: in.k})
		if err := e.fc.Delivered(msg.ID); err != nil {
			c.Retransmissions.Add(1)
		}
	}
	// Sweep the pool for descriptor entries whose whole range is now
	// delivered and retire them like the loop above. Two ways such an
	// entry appears: a decision learned already-resolved (decision-full
	// answer, recovery chunk, buffered cascade) names no descriptors, so
	// the loop above could not retire the ones it covered; and a decision
	// naming a pre-crash descriptor can deliver the entire range of a
	// still-pooled post-restart sibling that regrouped the same seqs.
	// Either way the leftover would re-announce on the kick timer forever
	// and the cluster would never quiesce.
	if e.cfg.DigestOrdering {
		ids := make([]types.MsgID, 0, len(e.pool))
		for id := range e.pool {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		for _, id := range ids {
			d, err := wire.ParseDescriptor(e.pool[id])
			if err != nil || !e.rangeFullyDelivered(d) {
				continue
			}
			delete(e.pool, id)
			delete(e.assigned, id)
			if d.Origin == e.self {
				delete(e.own, d.DSeq)
			}
			e.descDone[id] = in.k
			e.store.MarkDelivered(d, in.k)
		}
	}
	// Close this instance's proposal bookkeeping: pool messages it carried
	// but did not order become proposable again for a later window slot.
	if ids := e.propIDs[in.k]; ids != nil {
		for _, id := range ids {
			if e.assigned[id] == in.k {
				delete(e.assigned, id)
			}
		}
		delete(e.propIDs, in.k)
	}
	// A view that removed an origin activates at in.k+1: this was the
	// last old-view instance, every decision that could reference the
	// origin's state has been processed locally, so its leftovers retire
	// now.
	if origins := e.retires[in.k+1]; len(origins) > 0 {
		delete(e.retires, in.k+1)
		for _, origin := range origins {
			e.retireOrigin(origin)
		}
	}
	// A config op applied in this instance may have reshaped the
	// coordinator rotation of open instances at or past its activation:
	// re-run the suspicion cascade outside the delivery loop.
	if e.viewKick {
		e.viewKick = false
		e.advanceSuspected()
	}
	e.prune()
	// Cascade: a decision announcement for the next instance may already
	// be buffered (out-of-order recovery). An already-resolved full
	// decision (digest ordering) takes precedence — it is applicable
	// as-is, where the raw proposal would have to re-resolve.
	if buf := e.insts[e.decidedK+1]; buf != nil && !buf.decided {
		if e.cfg.DigestOrdering && buf.hasFull {
			e.decideResolved(buf, buf.full, buf.fullRound)
			return
		}
		if buf.waitingRound != 0 {
			if batch, ok := buf.proposals[buf.waitingRound]; ok {
				e.decide(buf, batch, buf.waitingRound)
				return
			}
		}
	}
	// Cascade (ack path): with pipelining, a later window instance can
	// complete its ack majority while an earlier one is still undecided —
	// that checkDecide attempt is dropped by the in-order guard at the top
	// of this function, and since its acks are already consumed, nothing
	// would ever re-trigger it. Re-check the new window head's coordinator
	// rounds now that it became eligible. (Sequential operation keeps the
	// paper's exact behavior: the coordinator never has a completed
	// majority waiting beyond the current instance in good runs, and the
	// pinned golden traces assume the pre-pipelining tail.)
	if nxt := e.insts[e.decidedK+1]; nxt != nil && !nxt.decided && e.pipe > 1 {
		rounds := make([]uint32, 0, len(nxt.coord))
		for r := range nxt.coord {
			rounds = append(rounds, r)
		}
		sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
		for _, r := range rounds {
			e.checkDecide(nxt, r)
			if nxt.decided {
				return
			}
		}
	}
	// Keep the pipeline moving: sliding the window open one more slot lets
	// this coordinator propose again, piggybacking this decision (§4.1).
	// If no fresh proposal went out to carry it, flush the decision
	// standalone so the idle tail still learns it (never taken under
	// load). During state-transfer catch-up the decisions being applied
	// are old news to every peer, so the keepalive is skipped.
	//
	// The flush also runs when this process decided as the proposer of a
	// round it does NOT carry into the next instance — a round-changed
	// coordinator after the failure detector healed (the next instance
	// restarts at round 1 under the original coordinator). The §4.3
	// implicit acknowledgment assumes the decider keeps coordinating;
	// without this flush a decision taken in round >= 2 just before the
	// suspicion cleared would never be disseminated and the lagging peers
	// would wedge (found by the chaos harness under healed partitions).
	if e.rec.Active() {
		return
	}
	next := e.current()
	wasProposer := in.coord[r] != nil && in.coord[r].proposed
	if e.coordinatorAt(next.k, next.round) == e.self || wasProposer {
		sent := e.propSent
		e.tryPropose()
		noneOpen := e.openProposals() == 0
		if e.propSent == sent && (e.pipe > 1 || noneOpen) {
			// Sequentially the flush is gated on the whole (one-slot)
			// window being unproposed, exactly as the paper's engine; a
			// deeper pipeline must flush whenever no fresh proposal carried
			// the decision — earlier in-flight proposals predate it.
			e.pipelineIdle = noneOpen
			e.sendAll(message{Type: mDecisionOnly, Instance: in.k, Round: r})
		}
	}
	e.armKick()
}

// handleDecisionOnly processes a standalone decision flush: the pipeline
// has stopped, so any locally waiting messages must be forwarded to the
// coordinator explicitly to restart it.
func (e *Engine) handleDecisionOnly(from types.ProcessID, m message) {
	e.pipelineIdle = true
	e.applyRemoteDecision(from, m.Instance, m.Round)
	if len(e.own) > 0 {
		cur := e.current()
		if coord := e.coordinatorAt(cur.k, cur.round); coord != e.self && !cur.decided && len(cur.proposals) == 0 {
			e.forwardOwn(cur, coord)
		}
	}
}

// handleDecisionReq answers with the full decision if known.
func (e *Engine) handleDecisionReq(from types.ProcessID, m message) {
	in := e.insts[m.Instance]
	if in == nil || !in.decided {
		if m.Instance <= e.decidedK {
			// Decided here but pruned from memory: serve it from the
			// durable log if there is one (a peer lagging past the
			// retention horizon has no other way back without a full
			// state transfer). The round is a synthesized label — see
			// catchUpPruned.
			e.catchUpPruned(from, m.Instance, 1)
		}
		return
	}
	e.send(from, message{Type: mDecisionFull, Instance: in.k, Round: in.decisionRound, Batch: in.decision})
	e.env.Counters().Retransmissions.Add(1)
}

// handleDecisionFull applies a refetched decision. Early arrivals (for
// instances past the next one) are buffered on the instance and applied
// by the cascade in decide once their turn comes.
func (e *Engine) handleDecisionFull(m message) {
	if m.Instance <= e.decidedK {
		return
	}
	in := e.get(m.Instance)
	if in.decided {
		return
	}
	if e.cfg.DigestOrdering {
		// The served batch is already resolved (deciders store and serve
		// post-resolution bytes): buffer it apart from raw proposals so
		// the cascade never re-parses real messages as descriptors.
		in.full = m.Batch
		in.fullRound = m.Round
		in.hasFull = true
		in.waitingRound = m.Round
		if m.Instance == e.decidedK+1 {
			e.decideResolved(in, m.Batch, m.Round)
		}
		return
	}
	in.proposals[m.Round] = m.Batch
	in.waitingRound = m.Round
	if m.Instance == e.decidedK+1 {
		e.decide(in, m.Batch, m.Round)
	}
}

// handleRecoverReq serves a restarted peer a chunk of decided instances,
// from memory while the instance is inside the retention horizon and from
// the local write-ahead log beyond it.
func (e *Engine) handleRecoverReq(from types.ProcessID, m message) {
	resp := message{Type: mRecoverResp, Instance: m.Instance, UpTo: e.decidedK}
	if e.cfg.Snapshots != nil && e.cfg.Snapshots.Latest != nil {
		if idx, ok := e.cfg.Snapshots.Latest(); ok {
			resp.SnapIndex = idx
		}
	}
	end := recovery.ChunkEnd(m.Instance, e.decidedK)
	for k := m.Instance; end > 0 && k <= end; k++ {
		batch, ok := e.lookupDecision(k)
		if !ok {
			break // can't serve a contiguous run past this point
		}
		resp.Decisions = append(resp.Decisions, wire.DecidedInstance{K: k, Batch: batch})
	}
	e.env.Counters().Retransmissions.Add(1)
	e.send(from, resp)
}

// lookupDecision finds a decided batch in instance memory or the durable
// log.
func (e *Engine) lookupDecision(k uint64) (wire.Batch, bool) {
	if in := e.insts[k]; in != nil && in.decided {
		return in.decision, true
	}
	if e.cfg.Persist != nil {
		return e.cfg.Persist.ReadDecision(k)
	}
	return nil, false
}

// handleRecoverResp applies a state-transfer chunk: every decision goes
// through the normal decide path (persisted, adelivered, pruned), then
// either the catch-up completes or the next chunk is pulled from the same
// peer.
// Decisions are applied even when the catch-up has already finished:
// the finish can race a still-in-flight chunk (the quorum check can be
// satisfied by a responder that is itself lagging behind the cluster),
// and the raced chunk may carry decisions whose dissemination this
// process permanently missed while down.
func (e *Engine) handleRecoverResp(from types.ProcessID, m message) {
	c := e.env.Counters()
	before := e.decidedK
	for _, d := range m.Decisions {
		if d.K != e.decidedK+1 {
			continue // already applied (replay, cascade, or a racing chunk)
		}
		c.RecoveryFetchedMsgs.Add(int64(len(d.Batch)))
		in := e.get(d.K)
		if e.cfg.DigestOrdering {
			// Logged decisions hold resolved batches under digest ordering.
			e.decideResolved(in, d.Batch, in.round)
		} else {
			e.decide(in, d.Batch, in.round)
		}
	}
	if !e.rec.Active() {
		return // finished catch-up: the decisions above were still usable
	}
	e.rec.Observe(from, m.UpTo)
	if dur, done := e.rec.MaybeFinish(e.decidedK+1, e.env.Now()); done {
		c.RecoveryNanos.Add(dur.Nanoseconds())
		e.cfg.Obs.RecoveryObserved(dur)
		e.finishRecovery()
		return
	}
	// Pull the next chunk only from a peer whose response advanced us:
	// the broadcast announce fans out to everyone, and without this gate
	// every responder would ship the same backlog in parallel.
	if e.decidedK > before && e.decidedK+1 <= e.rec.Target() {
		e.send(from, message{Type: mRecoverReq, Instance: e.decidedK + 1})
		return
	}
	// Far-behind branch: the responder could not serve our missing instance
	// (it truncated its log below its snapshot horizon) but holds a snapshot
	// covering it. Fetch and install the snapshot, then resume per-instance
	// catch-up above it.
	if e.decidedK == before && m.SnapIndex >= e.decidedK+1 &&
		e.cfg.Snapshots != nil && !e.snap.active {
		e.beginSnapFetch(from, m.SnapIndex)
	}
}

// beginSnapFetch starts fetching the snapshot at index from one peer.
func (e *Engine) beginSnapFetch(from types.ProcessID, index uint64) {
	e.snap = snapFetch{active: true, from: from, index: index, startedAt: e.env.Now()}
	e.sendSnapReq()
}

// sendSnapReq requests the next chunk of the in-progress snapshot fetch.
func (e *Engine) sendSnapReq() {
	e.send(e.snap.from, message{Type: mSnapReq, Instance: e.snap.index, Offset: uint64(len(e.snap.buf))})
}

// handleSnapReq serves one chunk of the local latest snapshot. A request
// for a snapshot this process no longer has (it moved on) is answered with
// the newest one from offset 0; the requester restarts its assembly.
func (e *Engine) handleSnapReq(from types.ProcessID, m message) {
	if e.cfg.Snapshots == nil || e.cfg.Snapshots.Latest == nil || e.cfg.Snapshots.Read == nil {
		return
	}
	resp := message{Type: mSnapResp, UpTo: e.decidedK}
	if idx, ok := e.cfg.Snapshots.Latest(); ok {
		off := m.Offset
		if idx != m.Instance {
			off = 0
		}
		if data, total, ok := e.cfg.Snapshots.Read(idx, int(off), wire.SnapChunk); ok {
			resp.Instance = idx
			resp.Total = uint64(total)
			resp.Offset = off
			resp.Data = data
		}
	}
	e.env.Counters().Retransmissions.Add(1)
	e.send(from, resp)
}

// handleSnapResp assembles snapshot chunks and installs the completed
// envelope: application state through the driver hook, dedup merge and
// decided-watermark jump in the engine, then per-instance catch-up resumes
// for whatever suffix remains above the snapshot.
func (e *Engine) handleSnapResp(from types.ProcessID, m message) {
	if !e.snap.active || from != e.snap.from {
		return
	}
	if m.Total == 0 || m.Instance <= e.decidedK {
		// The responder lost its snapshot, or we advanced past it while
		// fetching; the recovery timer finds another path.
		e.snap = snapFetch{}
		return
	}
	if m.Instance != e.snap.index {
		// The responder rotated to a newer snapshot: restart the assembly.
		e.snap.index = m.Instance
		e.snap.buf = e.snap.buf[:0]
		if m.Offset != 0 {
			e.sendSnapReq()
			return
		}
	}
	if int(m.Offset) != len(e.snap.buf) {
		e.sendSnapReq() // duplicate or reordered chunk: re-request in place
		return
	}
	e.snap.total = int(m.Total)
	e.snap.buf = append(e.snap.buf, m.Data...)
	e.rec.Observe(from, m.UpTo)
	if len(e.snap.buf) < e.snap.total {
		e.sendSnapReq()
		return
	}
	env, err := wire.UnmarshalSnapshotEnvelope(e.snap.buf)
	took := e.env.Now() - e.snap.startedAt
	e.snap = snapFetch{}
	if err != nil || env.Index <= e.decidedK {
		return
	}
	if err := e.installSnapshot(env); err != nil {
		return
	}
	c := e.env.Counters()
	c.SnapshotInstalls.Add(1)
	c.SnapshotInstallNanos.Add(took.Nanoseconds())
	e.cfg.Obs.InstallObserved(took)
	if dur, done := e.rec.MaybeFinish(e.decidedK+1, e.env.Now()); done {
		c.RecoveryNanos.Add(dur.Nanoseconds())
		e.cfg.Obs.RecoveryObserved(dur)
		e.finishRecovery()
		return
	}
	if e.rec.Active() {
		e.send(from, message{Type: mRecoverReq, Instance: e.decidedK + 1})
	}
}

// installSnapshot adopts a fetched snapshot: the application side first
// (persist + state machine restore, through the driver hook), then the
// engine's own consequences — merged dedup state, jumped decided
// watermark, pruned per-instance state below the snapshot, released flow
// slots for own messages the snapshot ordered.
func (e *Engine) installSnapshot(env wire.SnapshotEnvelope) error {
	dm, err := dedup.UnmarshalMap(env.Dedup)
	if err != nil {
		return err
	}
	if e.cfg.Snapshots.Install != nil {
		if err := e.cfg.Snapshots.Install(env); err != nil {
			return err
		}
	}
	e.delivered.Merge(dm)
	e.decidedK = env.Index
	// A recovering process must never re-enter instances the cluster
	// settled at or below the snapshot: drop their round state outright
	// (the pruned-instance guards serve any late messages for them).
	for k := range e.insts {
		if k <= env.Index {
			delete(e.insts, k)
		}
	}
	for k := range e.propIDs {
		if k <= env.Index {
			delete(e.propIDs, k)
		}
	}
	// Own and pooled messages the snapshot already ordered: release their
	// flow slots and stop re-proposing them. Under digest ordering the
	// pool holds descriptor pseudo-messages whose IDs alias real IDs at
	// incarnation 0, so coverage is checked per real message of each
	// descriptor's range instead of per pool ID; a partially covered
	// descriptor stays proposable (it resolves trivially for the covered
	// prefix once re-ordered) but its delivered own slots release now.
	if e.cfg.DigestOrdering {
		for id, pm := range e.pool {
			d, err := wire.ParseDescriptor(pm)
			if err != nil {
				continue // shape-bug fallback entry: left for re-proposal
			}
			covered := 0
			for i := uint32(0); i < d.Count; i++ {
				rid := types.MsgID{Sender: d.Origin, Seq: d.FirstSeq + uint64(i)}
				if e.isDelivered(rid) {
					covered++
					if d.Origin == e.self {
						_ = e.fc.Delivered(rid)
					}
				}
			}
			if covered == int(d.Count) {
				delete(e.pool, id)
				delete(e.assigned, id)
				if d.Origin == e.self {
					delete(e.own, d.DSeq)
				}
				e.descDone[id] = env.Index
				e.store.MarkDelivered(d, env.Index)
			}
		}
		// A blocked head below the new watermark is obsolete; drop the
		// wait outright (retryBlockedDecide would also detect it).
		if e.pw.active {
			e.pw.active = false
			e.env.CancelTimer(engine.TimerPayload)
		}
	} else {
		for seq, om := range e.own {
			if e.isDelivered(om.msg.ID) {
				delete(e.own, seq)
				_ = e.fc.Delivered(om.msg.ID)
			}
		}
		for id := range e.pool {
			if e.isDelivered(id) {
				delete(e.pool, id)
				delete(e.assigned, id)
			}
		}
	}
	e.lastProgress = e.env.Now()
	return nil
}

// finishRecovery resumes normal operation after catch-up: round
// advancement deferred during recovery happens now, the surviving own
// backlog is pushed toward the coordinator, and the engine may propose
// again.
func (e *Engine) finishRecovery() {
	e.snap = snapFetch{}
	e.env.CancelTimer(engine.TimerRecover)
	e.advanceSuspected()
	e.tryPropose()
	e.forwardRecoveredOwn()
	e.armKick()
}

// HandleTimer implements engine.Engine.
func (e *Engine) HandleTimer(id engine.TimerID) {
	switch id {
	case engine.TimerResend:
		e.retryWaiting()
	case engine.TimerKick:
		e.kick()
	case engine.TimerFlush:
		e.flushBatch()
	case engine.TimerPayload:
		e.payloadTimer()
	case engine.TimerRecover:
		if e.rec.Active() {
			// Re-announce only when the transfer stalled since the last
			// fire — a lost request/response or a dead serving peer; a
			// healthy chunk chain re-arms without extra broadcasts. A
			// stalled snapshot fetch first retries its chunk, then (still
			// stalled) abandons the peer and re-announces.
			if e.snap.active {
				if len(e.snap.buf) == e.snap.lastLen {
					e.snap.stalls++
					if e.snap.stalls >= 2 {
						e.snap = snapFetch{}
						e.sendAll(message{Type: mRecoverReq, Instance: e.decidedK + 1})
					} else {
						e.sendSnapReq()
					}
				} else {
					e.snap.stalls = 0
					e.snap.lastLen = len(e.snap.buf)
				}
			} else if e.decidedK == e.recLastSeen {
				e.sendAll(message{Type: mRecoverReq, Instance: e.decidedK + 1})
			}
			e.recLastSeen = e.decidedK
			if e.cfg.ResendEvery > 0 {
				e.env.SetTimer(engine.TimerRecover, e.cfg.ResendEvery)
			}
		}
	}
}

// flushBatch is the batching age trigger: seal whatever accumulated. A
// fire that races a count-trigger seal finds the accumulator empty and
// does nothing.
func (e *Engine) flushBatch() {
	if e.acc == nil {
		return
	}
	b := e.acc.Flush()
	if len(b) == 0 {
		return
	}
	c := e.env.Counters()
	c.SenderBatches.Add(1)
	c.SenderBatchedMsgs.Add(int64(len(b)))
	e.ingestBatch(b)
}

// retryWaiting re-requests a decision this process knows exists but cannot
// resolve (the announcing peer may have crashed). Under pipelining the
// head of the window also retries when only a LATER window instance has
// an unresolved announcement: that announcement proves the head decided
// somewhere, even if its own announcement was lost with the announcer.
func (e *Engine) retryWaiting() {
	in := e.insts[e.decidedK+1]
	if in != nil && in.decided {
		return
	}
	// The head instance may not even exist locally (the gap was learned
	// from an announcement for a later instance only); the scan below must
	// still run, or the refetch chain dies with the crashed announcer.
	waiting := in != nil && in.waitingRound != 0
	if !waiting && e.pipe > 1 {
		for k := e.decidedK + 2; k <= e.decidedK+uint64(e.pipe); k++ {
			if buf := e.insts[k]; buf != nil && buf.waitingRound != 0 {
				waiting = true
				break
			}
		}
	}
	if e.diss.Strategy() == dissem.Ring {
		e.ringRetryWaiting(waiting)
		return
	}
	if !waiting {
		return
	}
	e.sendAll(message{Type: mDecisionReq, Instance: e.decidedK + 1})
	e.env.Counters().Retransmissions.Add(int64(e.others()))
	if e.cfg.ResendEvery > 0 {
		e.env.SetTimer(engine.TimerResend, e.cfg.ResendEvery)
	}
}

// ringRefetchChunk bounds how many gap decisions one resend-timer fire
// refetches under ring dissemination — enough to outpace a loaded ring
// while a cut lasts, small enough never to re-create the flood the
// deferral exists to prevent.
const ringRefetchChunk = 32

// ringRetryWaiting is the ring-dissemination resend path: deferred
// refetches (ringWant) resolve here. A live ring delivers the missing
// relays on its own — refetch only when nothing has decided for a full
// resend period (a cut ring edge or a crashed relayer), and then request
// a bounded chunk of the known gap from everyone still reachable.
func (e *Engine) ringRetryWaiting(waiting bool) {
	e.ringResendArmed = false
	if !waiting && e.ringWantK <= e.decidedK {
		return
	}
	if e.cfg.ResendEvery <= 0 {
		return
	}
	if e.env.Now()-e.lastProgress < e.cfg.ResendEvery {
		e.ringResendArmed = true
		e.env.SetTimer(engine.TimerResend, e.cfg.ResendEvery)
		return
	}
	upto := e.ringWantK
	if upto < e.decidedK+1 {
		upto = e.decidedK + 1
	}
	if max := e.decidedK + ringRefetchChunk; upto > max {
		upto = max
	}
	// Ask exactly one peer: a broadcast here would be answered with a full
	// decision batch by every peer that has it — an n-fold bulk-byte
	// amplification of every stall, feeding the very congestion that
	// caused the stall. The target rotates across retries, so a dead or
	// unreachable peer only costs one resend period.
	if target := e.ringRefetchTarget(); target != e.self {
		c := e.env.Counters()
		for k := e.decidedK + 1; k <= upto; k++ {
			e.send(target, message{Type: mDecisionReq, Instance: k})
			c.Retransmissions.Add(1)
		}
	}
	e.ringResendArmed = true
	e.env.SetTimer(engine.TimerResend, e.cfg.ResendEvery)
}

// ringRefetchTarget picks the next refetch recipient: the first
// unsuspected peer after the previous target, or — when everyone is
// suspected — the next peer regardless (suspicion can be wrong, and an
// unanswered request only costs the next timer period). Returns self
// only when there are no peers at all.
func (e *Engine) ringRefetchTarget() types.ProcessID {
	members := e.hist.Current().Members
	n := len(members)
	// Member-rank rotation: at the static boot view this walks
	// (prev+1+i) mod n exactly as the original ID arithmetic did.
	start := 0
	for i, p := range members {
		if p > e.ringRetryTo {
			start = i
			break
		}
	}
	fallback := e.self
	for i := 0; i < n; i++ {
		p := members[(start+i)%n]
		if p == e.self {
			continue
		}
		if fallback == e.self {
			fallback = p
		}
		if !e.suspected[p] {
			e.ringRetryTo = p
			return p
		}
	}
	e.ringRetryTo = fallback
	return fallback
}

// kick is the idle/stall timer: re-forward own messages and retry
// proposing when nothing has progressed for the configured period.
func (e *Engine) kick() {
	if e.cfg.IdleKick <= 0 {
		return
	}
	now := e.env.Now()
	stalled := now-e.lastProgress >= e.cfg.IdleKick
	if stalled && (len(e.own) > 0 || len(e.pool) > 0) {
		cur := e.current()
		coord := e.coordinatorAt(cur.k, cur.round)
		if coord == e.self {
			for _, om := range e.own {
				e.pool[om.msg.ID] = om.msg
			}
			// Digest backstop: peers may hold our descriptors without the
			// payload bytes (lost announce) — re-spread both.
			e.reannounceOwn()
			e.tryPropose()
			// Ring backstop: a stalled open proposal means the relay died
			// mid-ring before any suspicion fired — re-spread it along the
			// current (possibly repaired) ring.
			e.respreadOpen()
		} else {
			// Re-forward everything we still hold.
			e.reannounceOwn()
			batch := e.allOwn(cur.k)
			if len(batch) > 0 {
				e.send(coord, message{Type: mForward, Instance: cur.k, Round: cur.round, Batch: batch})
				e.env.Counters().Retransmissions.Add(1)
			}
		}
	}
	e.armKick()
}

// armKick re-arms the idle timer while there is anything outstanding.
func (e *Engine) armKick() {
	if e.cfg.IdleKick <= 0 || !e.started {
		return
	}
	if len(e.own) > 0 || len(e.pool) > 0 {
		e.env.SetTimer(engine.TimerKick, e.cfg.IdleKick)
	}
}

// Suspect implements engine.Engine: advance the current instance past
// rounds whose coordinator is suspected (the only round-change trigger).
// While catching up after a restart only the suspicion is recorded; the
// advancement runs when recovery finishes.
func (e *Engine) Suspect(p types.ProcessID, suspected bool) {
	e.suspected[p] = suspected
	e.diss.Suspect(p, suspected)
	if e.rec.Active() {
		return
	}
	if !suspected {
		// A cleared suspicion reshapes the ring too: re-spread open
		// proposals so a successor that was wrongly skipped (and whose
		// replacement may have been unreachable) still gets them.
		e.respreadOpen()
		return
	}
	e.advanceSuspected()
	e.tryPropose()
	// The ring just lost a link: immediately re-route open proposals
	// around the suspected successor instead of waiting for the kick.
	e.respreadOpen()
	e.armKick()
}

// advanceSuspected moves every undecided instance past rounds whose
// coordinator is currently suspected.
func (e *Engine) advanceSuspected() {
	keys := make([]uint64, 0, len(e.insts))
	for k := range e.insts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		in := e.insts[k]
		for !in.decided && e.suspected[e.coordinatorAt(in.k, in.round)] {
			e.advanceRound(in)
		}
	}
}

// prune drops instance state beyond the catch-up horizon, and with it —
// under digest ordering — the resolved payload batches and descriptor
// bookkeeping that are no longer servable repair targets.
func (e *Engine) prune() {
	h := uint64(e.cfg.DecisionHorizon)
	if h == 0 || e.decidedK <= h {
		return
	}
	cutoff := e.decidedK - h
	for k, in := range e.insts {
		if in.decided && k <= cutoff {
			delete(e.insts, k)
		}
	}
	if e.cfg.DigestOrdering {
		e.store.PruneBelow(cutoff)
		for id, dk := range e.descDone {
			if dk <= cutoff {
				delete(e.descDone, id)
			}
		}
	}
}

// payloadBytes sums the application payload carried by one message.
func (m message) payloadBytes() int {
	pb := m.Batch.PayloadBytes() + m.Piggyback.PayloadBytes()
	for _, d := range m.Decisions {
		pb += d.Batch.PayloadBytes()
	}
	return pb
}

// accountFrame attributes one marshaled frame to the ordering- or
// dissemination-path byte counters (the digest figure's split).
// Proposals, acks, estimates, forwards and decision traffic are ordering
// cost — the frames whose size digest ordering collapses to descriptor
// scale; announces and payload re-serves are dissemination cost; a relay
// frame is whichever its inner frame is (proposals in payload mode,
// announces under digest ordering). Recovery, snapshot transfer and
// payload-fetch requests count as neither.
func (e *Engine) accountFrame(t mtype, size, fanout int) {
	c := e.env.Counters()
	switch t {
	case mPropDec, mAckDiff, mEstimate, mNack, mForward, mDecisionOnly, mDecisionReq, mDecisionFull:
		c.OrderedBytes.Add(int64(size * fanout))
	case mAnnounce, mPayloadResp:
		c.DisseminatedBytes.Add(int64(size * fanout))
	case mRelay:
		if e.cfg.DigestOrdering {
			c.DisseminatedBytes.Add(int64(size * fanout))
		} else {
			c.OrderedBytes.Add(int64(size * fanout))
		}
	}
}

// send marshals and transmits one message, accounting payload bytes.
func (e *Engine) send(to types.ProcessID, m message) {
	e.env.Counters().PayloadBytesSent.Add(int64(m.payloadBytes()))
	data := m.marshal()
	e.accountFrame(m.Type, len(data), 1)
	e.env.Send(to, data)
}

// sendAll transmits one message to every other current-view member.
func (e *Engine) sendAll(m message) {
	members := e.hist.Current().Members
	others := 0
	for _, p := range members {
		if p != e.self {
			others++
		}
	}
	e.env.Counters().PayloadBytesSent.Add(int64(m.payloadBytes() * others))
	if others == 0 {
		return
	}
	data := m.marshal()
	e.accountFrame(m.Type, len(data), others)
	for _, p := range members {
		if p == e.self {
			continue
		}
		e.env.Send(p, data)
	}
}

// SubmitConfig implements engine.ConfigSubmitter: validate the op
// against the current view, stamp it with the current epoch (the
// compare-and-swap that makes concurrent and replayed ops idempotent),
// and submit it through the ordinary abcast path — it is forwarded,
// proposed and decided exactly like an application message.
func (e *Engine) SubmitConfig(op member.Op) (types.MsgID, error) {
	cur := e.hist.Current()
	op.BaseEpoch = cur.Epoch
	switch op.Kind {
	case member.OpAdd:
		if op.Target < 0 || cur.Contains(op.Target) {
			return types.MsgID{}, types.ErrBadConfig
		}
	case member.OpRemove:
		if !cur.Contains(op.Target) || len(cur.Members) <= 1 {
			return types.MsgID{}, types.ErrBadConfig
		}
	default:
		return types.MsgID{}, types.ErrBadConfig
	}
	return e.Abcast(member.EncodeOp(op))
}

// CurrentView implements engine.ConfigSubmitter.
func (e *Engine) CurrentView() member.View { return e.hist.Current() }

// Views returns the full decided view sequence (checker support).
func (e *Engine) Views() []member.View { return e.hist.Views() }

var _ engine.ConfigSubmitter = (*Engine)(nil)

// applyConfig applies one decided config op at instance k. A failed
// apply (stale epoch, duplicate add, absent remove) is a deterministic
// no-op at every process — the op was ordered, so everyone rejects it
// against the same history. A successful apply appends the new view
// (activating at k plus the pipeline window), repoints the local
// dissemination/flow seams, schedules the removed origin's state
// retirement, and notifies the driver.
func (e *Engine) applyConfig(k uint64, op member.Op) {
	v, ok := e.hist.Apply(op, k, e.pipe)
	if !ok {
		return
	}
	e.env.Counters().ConfigChanges.Add(1)
	e.reconfigureLocal(v)
	if op.Kind == member.OpRemove {
		e.retires[v.Activation] = append(e.retires[v.Activation], op.Target)
	}
	// The cascade itself runs in finalize, after the delivery loop.
	e.viewKick = true
	if e.cfg.OnConfig != nil {
		e.cfg.OnConfig(v, op)
	}
}

// reconfigureLocal points the engine's seams at a new view: the
// dissemination topology follows the member list, and the flow-control
// window is re-derived from the group size when it was the size-derived
// default (an explicitly configured window is left alone).
func (e *Engine) reconfigureLocal(v member.View) {
	e.diss.SetMembers(v.Members)
	if e.cfg.Window == engine.DefaultWindow(e.cfg.N) {
		ncfg := e.cfg
		ncfg.Window = engine.DefaultWindow(len(v.Members))
		e.fc.SetWindow(ncfg.EffectiveWindow())
	}
}

// retireOrigin drops the local state of a removed origin at its
// activation boundary: undecided pool entries (no proposal will carry
// them again), undelivered payload residency (no decision will resolve
// through them; delivered entries stay on the normal retention horizon
// for repair serving), and suspicion bookkeeping.
func (e *Engine) retireOrigin(origin types.ProcessID) {
	for id := range e.pool {
		if id.Sender == origin {
			delete(e.pool, id)
			delete(e.assigned, id)
		}
	}
	delete(e.suspected, origin)
	if e.store != nil {
		if retired := e.store.RetireOrigin(origin); retired > 0 {
			e.env.Counters().PayloadsRetired.Add(int64(retired))
		}
	}
}

// isDelivered and markDelivered wrap the shared per-sender suppressor
// (internal/dedup; crash recovery rebuilds it from the replayed log).
func (e *Engine) isDelivered(id types.MsgID) bool { return e.delivered.Seen(id) }

func (e *Engine) markDelivered(id types.MsgID) { e.delivered.Mark(id) }
