package monolithic

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/enginetest"
	"modab/internal/types"
)

// rig wires n monolithic engines over the enginetest network.
type rig struct {
	n    int
	envs []*enginetest.Env
	engs []*Engine
	net  *enginetest.Net
}

func newRig(t *testing.T, n int, cfg engine.Config) *rig {
	t.Helper()
	if cfg.N == 0 {
		cfg = engine.DefaultConfig(n)
		cfg.IdleKick = 0
	}
	r := &rig{n: n, envs: make([]*enginetest.Env, n), engs: make([]*Engine, n)}
	for i := 0; i < n; i++ {
		r.envs[i] = enginetest.New(types.ProcessID(i), n)
		r.engs[i] = New(r.envs[i], cfg)
		r.engs[i].Start()
	}
	r.net = &enginetest.Net{
		Envs: r.envs,
		Deliver: func(to, from types.ProcessID, data []byte) error {
			return r.engs[to].HandleMessage(from, data)
		},
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.net.Run(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) order(p int) []types.MsgID {
	out := make([]types.MsgID, 0, len(r.envs[p].Deliveries))
	for _, d := range r.envs[p].Deliveries {
		out = append(out, d.Msg.ID)
	}
	return out
}

func (r *rig) checkTotalOrder(t *testing.T, want int) {
	t.Helper()
	ref := r.order(0)
	if len(ref) != want {
		t.Fatalf("p1 delivered %d, want %d: %v", len(ref), want, ref)
	}
	for p := 1; p < r.n; p++ {
		if got := r.order(p); !reflect.DeepEqual(got, ref) {
			t.Fatalf("order divergence: p1=%v p%d=%v", ref, p+1, got)
		}
	}
}

func TestCoordinatorAbcastGoesStraightToPool(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	if _, err := r.engs[0].Abcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
}

func TestNonCoordinatorForwardWhenIdle(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	if _, err := r.engs[2].Abcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	// The idle pipeline forces an explicit forward to the coordinator.
	found := false
	for _, s := range r.envs[2].Sends {
		if s.To == 0 && mtype(s.Data[0]) == mForward {
			found = true
		}
	}
	if !found {
		t.Fatal("no forward to the coordinator on idle abcast")
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
}

func TestConcurrentAbcastsTotalOrder(t *testing.T) {
	r := newRig(t, 5, engine.Config{})
	for p := 0; p < 5; p++ {
		if _, err := r.engs[p].Abcast([]byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	r.run(t)
	r.checkTotalOrder(t, 5)
}

// TestPipelinedMessageCost checks §5.2.1's direction at the unit level:
// with the pipeline kept busy (submissions interleaved with partial
// message delivery), the per-instance message cost stays near 2(n-1) —
// the exact steady-state count is asserted under the simulator's
// saturating workload in internal/netsim. The synchronous unit network
// drains between rounds, so bootstrap forwards and idle-tail decision
// flushes add a bounded overhead here.
func TestPipelinedMessageCost(t *testing.T) {
	for _, n := range []int{3, 7} {
		cfg := engine.DefaultConfig(n)
		cfg.IdleKick = 0
		cfg.Window = 8
		r := newRig(t, n, cfg)
		for round := 0; round < 60; round++ {
			for p := 0; p < n; p++ {
				_, _ = r.engs[p].Abcast([]byte{byte(round)})
				// Partial drain keeps several instances in flight.
				for i := 0; i < n; i++ {
					if ok, err := r.net.Step(); err != nil {
						t.Fatal(err)
					} else if !ok {
						break
					}
				}
			}
		}
		r.run(t)
		var sent, decided int64
		for p := 0; p < n; p++ {
			s := r.envs[p].Cnt.Snapshot()
			sent += s.MsgsSent
			decided += s.ConsensusDecided
		}
		perInstance := float64(sent) / (float64(decided) / float64(n))
		analytic := float64(2 * (n - 1))
		if perInstance > 2.2*analytic {
			t.Errorf("n=%d: %.2f msgs/instance, analytical %.0f (allowing idle-tail overhead)",
				n, perInstance, analytic)
		}
	}
}

func TestFlowControlWindow(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.Window = 1
	cfg.IdleKick = 0
	r := newRig(t, 3, cfg)
	if _, err := r.engs[1].Abcast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engs[1].Abcast([]byte("b")); !errors.Is(err, types.ErrFlowControl) {
		t.Fatalf("want ErrFlowControl, got %v", err)
	}
	r.run(t)
	if _, err := r.engs[1].Abcast([]byte("b")); err != nil {
		t.Fatalf("window not released: %v", err)
	}
}

func TestDecisionOnlyFlushAtIdleTail(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	if _, err := r.engs[0].Abcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	// Everyone must have delivered even though no further proposal will
	// ever piggyback the decision.
	r.checkTotalOrder(t, 1)
}

func TestCoordinatorCrashRoundChange(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	// p1 is dead from the start.
	r.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return from == 0 || to == 0
	}
	if _, err := r.engs[1].Abcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engs[2].Abcast([]byte("y")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if len(r.envs[1].Deliveries)+len(r.envs[2].Deliveries) != 0 {
		t.Fatal("delivered without coordinator")
	}
	r.engs[1].Suspect(0, true)
	r.engs[2].Suspect(0, true)
	r.run(t)
	// p2 coordinates round 2; both survivor messages get ordered
	// (estimates piggyback them to the new coordinator).
	got1, got2 := r.order(1), r.order(2)
	if len(got1) != 2 || !reflect.DeepEqual(got1, got2) {
		t.Fatalf("survivors: p2=%v p3=%v", got1, got2)
	}
	if r.envs[1].Cnt.Rounds.Load() == 0 && r.envs[2].Cnt.Rounds.Load() == 0 {
		t.Error("no round change counted")
	}
}

func TestCrashAfterProposeKeepsAgreement(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	// p1 proposes instance 1 but its messages reach only p3 (idx 2).
	if _, err := r.engs[0].Abcast([]byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, s := range r.envs[0].Sends {
		if s.To == 2 {
			if err := r.engs[2].HandleMessage(0, s.Data); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.envs[0].Sends = nil
	r.net.Drop = func(from, to types.ProcessID, _ []byte) bool {
		return from == 0 || to == 0 // p1 crashed
	}
	r.run(t)
	// p3 adopted p1's proposal (ts=1); after suspicion, the round-2
	// coordinator p2 must learn it via p3's estimate and decide "v".
	r.engs[1].Suspect(0, true)
	r.engs[2].Suspect(0, true)
	r.run(t)
	got := r.order(1)
	if len(got) != 1 || got[0].Sender != 0 {
		t.Fatalf("locking broken: %v", got)
	}
	if !reflect.DeepEqual(got, r.order(2)) {
		t.Fatal("survivor divergence")
	}
}

func TestGapRecoveryViaDecisionReq(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	// p3 misses instance 1 entirely (both the PropDec and the flush).
	r.net.Drop = func(from, to types.ProcessID, data []byte) bool {
		return to == 2
	}
	if _, err := r.engs[0].Abcast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	// p1+p2 decided instance 1; p3 knows nothing.
	if len(r.envs[2].Deliveries) != 0 {
		t.Fatal("p3 should have missed everything")
	}
	// Network heals; instance 2 runs; p3 sees PropDec{2} with a decided
	// gap and must refetch instance 1.
	r.net.Drop = nil
	if _, err := r.engs[0].Abcast([]byte("b")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 2)
}

func TestKickTimerReforwardsAfterLoss(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 10 * time.Millisecond
	r := newRig(t, 3, cfg)
	// p3's initial forward to the coordinator is lost.
	dropped := false
	r.net.Drop = func(from, to types.ProcessID, data []byte) bool {
		if !dropped && from == 2 && to == 0 && mtype(data[0]) == mForward {
			dropped = true
			return true
		}
		return false
	}
	if _, err := r.engs[2].Abcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if len(r.envs[0].Deliveries) != 0 {
		t.Fatal("should be stuck")
	}
	// Kick fires: re-forward.
	r.envs[2].Clock += time.Second
	timers := r.envs[2].Timers
	r.envs[2].Timers = nil
	fired := map[engine.TimerID]bool{}
	for _, tm := range timers {
		if !tm.Canceled && !fired[tm.ID] {
			fired[tm.ID] = true
			r.engs[2].HandleTimer(tm.ID)
		}
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
}

func TestPipelinedManyRounds(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	total := 0
	for round := 0; round < 40; round++ {
		for p := 0; p < 3; p++ {
			if _, err := r.engs[p].Abcast([]byte{byte(round), byte(p)}); err == nil {
				total++
			}
			for i := 0; i < 2; i++ {
				if ok, err := r.net.Step(); err != nil {
					t.Fatal(err)
				} else if !ok {
					break
				}
			}
		}
	}
	r.run(t)
	r.checkTotalOrder(t, total)
}

func TestPendingCount(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	if got := r.engs[1].Pending(); got != 0 {
		t.Fatalf("initial pending = %d", got)
	}
	if _, err := r.engs[1].Abcast([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if got := r.engs[1].Pending(); got != 1 {
		t.Fatalf("pending = %d", got)
	}
	r.run(t)
	if got := r.engs[1].Pending(); got != 0 {
		t.Fatalf("pending after delivery = %d", got)
	}
}

func TestMalformedMessage(t *testing.T) {
	r := newRig(t, 3, engine.Config{})
	if err := r.engs[0].HandleMessage(1, []byte{0xEE, 1, 2}); err == nil {
		t.Fatal("malformed message accepted")
	}
}

func TestPruneBoundsState(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	cfg.DecisionHorizon = 8
	r := newRig(t, 3, cfg)
	for i := 0; i < 50; i++ {
		if _, err := r.engs[0].Abcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.run(t)
	}
	for p := 0; p < 3; p++ {
		if got := len(r.engs[p].insts); got > 10 {
			t.Fatalf("p%d retains %d instances, horizon 8", p+1, got)
		}
	}
	r.checkTotalOrder(t, 50)
}

// TestPipelinedWindowProposals drives the windowed coordinator directly:
// with PipelineDepth 3 and submissions arriving while earlier instances
// are still collecting acks, the coordinator must keep up to three
// proposals in flight over disjoint pool slices, and the cluster must
// still converge to one duplicate-free total order.
func TestPipelinedWindowProposals(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	cfg.Window = 16
	cfg.PipelineDepth = 3
	r := newRig(t, 3, cfg)

	// Submit at the coordinator one at a time WITHOUT running the network:
	// instance k cannot decide, so each submission must open a new window
	// slot rather than wait (the sequential engine would sit on one).
	for i := 0; i < 3; i++ {
		if _, err := r.engs[0].Abcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.engs[0].openProposals(); got != 3 {
		t.Fatalf("open proposals at the coordinator = %d, want 3", got)
	}
	seen := make(map[types.MsgID]uint64)
	for k := uint64(1); k <= 3; k++ {
		in := r.engs[0].insts[k]
		if in == nil {
			t.Fatalf("instance %d not open", k)
		}
		cr := in.coord[in.round]
		if cr == nil || !cr.proposed {
			t.Fatalf("instance %d not proposed", k)
		}
		if len(cr.proposal) != 1 {
			t.Fatalf("instance %d proposal carries %d messages, want 1 (partitioning)", k, len(cr.proposal))
		}
		if prev, dup := seen[cr.proposal[0].ID]; dup {
			t.Fatalf("message %s rides instances %d and %d", cr.proposal[0].ID, prev, k)
		}
		seen[cr.proposal[0].ID] = k
	}
	// A fourth submission must NOT open instance 4: the window is full.
	if _, err := r.engs[0].Abcast([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if got := r.engs[0].openProposals(); got != 3 {
		t.Fatalf("window overran: %d open proposals", got)
	}
	// Let the network run: everything decides, in order, exactly once.
	r.run(t)
	r.checkTotalOrder(t, 4)
	if got := r.envs[0].Counters().PipelineDepthObserved.Load(); got != 3 {
		t.Fatalf("PipelineDepthObserved = %d, want 3", got)
	}
}

// TestPipelinedOutOfOrderAckMajority is the regression test for the
// window-head wedge: with W=2, the coordinator's second in-flight
// instance completes its ack majority BEFORE the first decides. The
// decision attempt fires while the instance is not yet the window head
// (decide's in-order guard drops it) and no further ack will re-trigger
// it — decide must therefore re-check the new head's coordinator rounds
// after the watermark advances, or instance 2 never decides.
func TestPipelinedOutOfOrderAckMajority(t *testing.T) {
	cfg := engine.DefaultConfig(3)
	cfg.IdleKick = 0
	cfg.ResendEvery = 0 // no timers: the cascade alone must recover
	cfg.Window = 8
	cfg.PipelineDepth = 2
	r := newRig(t, 3, cfg)

	// Two submissions at the coordinator: proposals for instances 1 and 2
	// go out back-to-back.
	for i := 0; i < 2; i++ {
		if _, err := r.engs[0].Abcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Deliver instance 2's proposals and acks FIRST, withholding
	// instance 1's: p0 collects a full majority for 2 while 1 is
	// undecided.
	var held []enginetest.Sent
	take := func(env *enginetest.Env) []enginetest.Sent {
		out := env.Sends
		env.Sends = nil
		return out
	}
	instOf := func(data []byte) uint64 {
		m, err := unmarshalMessage(data)
		if err != nil {
			t.Fatal(err)
		}
		return m.Instance
	}
	for _, s := range take(r.envs[0]) {
		if instOf(s.Data) == 2 {
			if err := r.engs[s.To].HandleMessage(0, s.Data); err != nil {
				t.Fatal(err)
			}
		} else {
			held = append(held, s)
		}
	}
	for p := 1; p < 3; p++ {
		for _, s := range take(r.envs[p]) {
			if err := r.engs[s.To].HandleMessage(types.ProcessID(p), s.Data); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e0 := r.engs[0]; e0.decidedK != 0 {
		t.Fatalf("instance decided out of order: decidedK = %d", e0.decidedK)
	}
	// Now release instance 1's proposals and run to quiescence: deciding 1
	// must cascade into the already-complete majority of 2.
	for _, s := range held {
		if err := r.engs[s.To].HandleMessage(0, s.Data); err != nil {
			t.Fatal(err)
		}
	}
	r.run(t)
	if got := r.engs[0].decidedK; got != 2 {
		t.Fatalf("decidedK = %d, want 2 (ready ack-majority decision was dropped)", got)
	}
	r.checkTotalOrder(t, 2)
}
