package monolithic

import (
	"bytes"
	"testing"

	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/enginetest"
	"modab/internal/types"
)

// ringCfg is the default config with ring dissemination and timers off.
func ringCfg(n int) engine.Config {
	cfg := engine.DefaultConfig(n)
	cfg.IdleKick = 0
	cfg.Dissemination = dissem.Ring
	return cfg
}

// proposalFrame reports whether a monolithic wire message carries the
// bulky combined proposal+decision — directly (mPropDec) or ring-wrapped
// (mRelay). The mtype is the first wire byte.
func proposalFrame(data []byte) bool {
	return len(data) > 0 && (mtype(data[0]) == mPropDec || mtype(data[0]) == mRelay)
}

// TestRingCoordinatorProposesOnce pins the coordinator-NIC fix: under
// Ring the coordinator transmits each proposal exactly once (as a relay
// to its successor) instead of broadcasting it n-1 times.
func TestRingCoordinatorProposesOnce(t *testing.T) {
	r := newRig(t, 5, ringCfg(5))
	body := bytes.Repeat([]byte("x"), 4096)

	proposals := 0
	r.net.Deliver = func(to, from types.ProcessID, data []byte) error {
		if from == 0 && proposalFrame(data) {
			proposals++
		}
		return r.engs[to].HandleMessage(from, data)
	}
	if _, err := r.engs[0].Abcast(body); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
	if proposals != 1 {
		t.Fatalf("coordinator transmitted %d proposal frames, want exactly 1", proposals)
	}
	egress := 0
	for l, b := range r.net.LinkBytes {
		if l.From == 0 {
			egress += b
		}
	}
	if egress >= 2*len(body) {
		t.Fatalf("coordinator egress %dB under Ring, want < %dB (one payload + control)", egress, 2*len(body))
	}
}

// TestRingDuplicateRelaySuppressed duplicates every relay frame on the
// wire and asserts the dedup watermark keeps relayers from forwarding the
// copy: every ring link carries each relay at most twice (the original
// plus the injected duplicate; a third would be a relayed duplicate), and
// delivery stays an exact, duplicate-free total order.
func TestRingDuplicateRelaySuppressed(t *testing.T) {
	r := newRig(t, 4, ringCfg(4))
	relays := make(map[enginetest.Link]int)
	r.net.Dup = func(from, to types.ProcessID, data []byte) bool {
		return len(data) > 0 && mtype(data[0]) == mRelay
	}
	r.net.Deliver = func(to, from types.ProcessID, data []byte) error {
		if len(data) > 0 && mtype(data[0]) == mRelay {
			relays[enginetest.Link{From: from, To: to}]++
		}
		return r.engs[to].HandleMessage(from, data)
	}
	if _, err := r.engs[0].Abcast([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	r.checkTotalOrder(t, 1)
	for l, c := range relays {
		if c > 2 {
			t.Fatalf("link %v→%v carried %d relay frames; dedup failed to suppress a duplicate", l.From, l.To, c)
		}
	}
}

// TestRingSkipsSuspectedSuccessor crashes the coordinator's successor
// and suspects it everywhere: the proposal relay must skip it and every
// live process must still decide and deliver.
func TestRingSkipsSuspectedSuccessor(t *testing.T) {
	r := newRig(t, 4, ringCfg(4))
	crashed := types.ProcessID(1)
	for p := 0; p < 4; p++ {
		if types.ProcessID(p) != crashed {
			r.engs[p].Suspect(crashed, true)
		}
	}
	toCrashed := 0
	r.net.Drop = func(from, to types.ProcessID, data []byte) bool {
		if to != crashed {
			return false
		}
		if proposalFrame(data) {
			toCrashed++
		}
		return true
	}
	if _, err := r.engs[0].Abcast([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if toCrashed != 0 {
		t.Fatalf("%d proposal frames were sent to the suspected successor, want 0 (skip)", toCrashed)
	}
	for _, p := range []int{0, 2, 3} {
		if got := len(r.order(p)); got != 1 {
			t.Fatalf("live process p%d delivered %d messages, want 1", p, got)
		}
	}
}
