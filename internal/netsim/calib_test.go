package netsim

import (
	"testing"
	"time"

	"modab/internal/types"
)

// TestCalibrationProbe prints steady-state behaviour of both stacks under
// the paper's workloads. Run with -v to inspect; it asserts only sanity.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
			for _, load := range []float64{200, 500, 1000, 2000, 4000} {
				lc, err := NewLoadedCluster(Options{N: n, Stack: stk, Seed: 7},
					Workload{OfferedLoad: load, Size: 16384},
					2*time.Second, 4*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				lc.Run(7 * time.Second)
				if errs := lc.Errs(); len(errs) > 0 {
					t.Fatalf("engine errors: %v", errs[0])
				}
				tot := lc.TotalCounters()
				t.Logf("n=%d %-10s load=%5.0f  thr=%7.1f lat=%7.3fms  M=%5.2f util0=%4.2f msgs/dec=%5.2f blocked=%d",
					n, stk, load, lc.Recorder.Throughput(),
					lc.Recorder.MeanLatency()*1e3, tot.AvgBatch(),
					lc.Utilization(0),
					float64(tot.MsgsSent)/float64(tot.ConsensusDecided/int64(n)+1),
					lc.Recorder.Blocked)
			}
		}
	}
}
