package netsim

import "time"

// CostModel parameterizes the simulated hardware: per-message and per-byte
// CPU costs, microprotocol dispatch cost, NIC egress bandwidth and
// propagation delay. The defaults are calibrated so that the simulated
// cluster reproduces the shape of the paper's testbed (3.2 GHz Pentium 4,
// Sun JVM 1.5, Cactus framework, switched Gigabit Ethernet): CPU saturates
// in the few-hundreds-of-messages-per-second range and per-byte costs
// dominate once messages reach tens of kilobytes.
//
// Absolute values are NOT meant to match the paper's milliseconds exactly;
// docs/BENCHMARKS.md records reproduced runs against the paper's tables.
type CostModel struct {
	// RecvPerMsg is the fixed CPU cost of handling one inbound message
	// (demarshaling entry, buffer management, protocol bookkeeping).
	RecvPerMsg time.Duration
	// SendPerMsg is the fixed CPU cost of emitting one message.
	SendPerMsg time.Duration
	// PerDispatch is the CPU cost of one microprotocol event dispatch
	// (layer crossing) — the framework overhead the paper attributes to
	// modularity. Both stacks are charged by their measured dispatch
	// counts; the monolithic engine simply performs far fewer.
	PerDispatch time.Duration
	// AbcastPerMsg is the fixed CPU cost of the application downcall.
	AbcastPerMsg time.Duration
	// TimerPerFire is the CPU cost of a timer callback.
	TimerPerFire time.Duration
	// RecvNsPerByte and SendNsPerByte are the per-byte CPU costs
	// (copying, marshaling, GC pressure), in nanoseconds per byte.
	RecvNsPerByte float64
	SendNsPerByte float64
	// BandwidthBytesPerSec is the per-NIC egress bandwidth (wire
	// serialization is charged to the sender's NIC queue).
	BandwidthBytesPerSec float64
	// PropDelay is the one-way network propagation+switching delay.
	PropDelay time.Duration
	// FDDetect is how long after a crash the other processes' failure
	// detectors begin suspecting the crashed process.
	FDDetect time.Duration
}

// DefaultModel returns the calibrated cost model used for the paper's
// figures (the calibration rationale is summarized in the CostModel doc
// above; docs/ARCHITECTURE.md describes the simulator's charging model).
func DefaultModel() CostModel {
	return CostModel{
		RecvPerMsg:           230 * time.Microsecond,
		SendPerMsg:           60 * time.Microsecond,
		PerDispatch:          110 * time.Microsecond,
		AbcastPerMsg:         30 * time.Microsecond,
		TimerPerFire:         4 * time.Microsecond,
		RecvNsPerByte:        12,
		SendNsPerByte:        4,
		BandwidthBytesPerSec: 125e6, // Gigabit Ethernet
		PropDelay:            120 * time.Microsecond,
		FDDetect:             100 * time.Millisecond,
	}
}

// MetroModel returns the modern-hardware, metro-latency variant of the
// cost model used by the pipelining figure: CPU and copy costs an order
// of magnitude below the 2007 calibration (a current server core against
// the paper's Pentium 4), 10GbE, and a 1 ms one-way propagation delay (a
// metro-area or cross-site link). On this model the sequential stacks are
// latency-bound — the decision round-trip is dead air on the wire — which
// is precisely the regime consensus pipelining reclaims; on the default
// 2007 model both stacks saturate their CPUs first and pipelining can
// only fill the remaining ~15% idle. FDDetect is unchanged.
func MetroModel() CostModel {
	m := DefaultModel()
	m.RecvPerMsg /= 10
	m.SendPerMsg /= 10
	m.PerDispatch /= 10
	m.AbcastPerMsg /= 10
	m.RecvNsPerByte /= 10
	m.SendNsPerByte /= 10
	m.BandwidthBytesPerSec *= 10
	m.PropDelay = time.Millisecond
	return m
}

// recvCost returns the CPU cost of receiving a message of the given size.
func (m CostModel) recvCost(bytes int) time.Duration {
	return m.RecvPerMsg + time.Duration(m.RecvNsPerByte*float64(bytes))
}

// sendCost returns the CPU cost of emitting a message of the given size.
func (m CostModel) sendCost(bytes int) time.Duration {
	return m.SendPerMsg + time.Duration(m.SendNsPerByte*float64(bytes))
}

// serialization returns the wire time of a message of the given size on
// the sender's NIC.
func (m CostModel) serialization(bytes int) time.Duration {
	if m.BandwidthBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / m.BandwidthBytesPerSec * 1e9)
}
