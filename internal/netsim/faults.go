package netsim

import (
	"time"

	"modab/internal/types"
)

// LinkFault degrades one directed link over a virtual-time window. All
// probabilities are per transmission attempt and drawn from the cluster's
// seeded RNG, so the same seed and schedule reproduce the same fault
// pattern bit for bit.
//
// Faults degrade the link but keep the model's quasi-reliable channel
// contract: a transmission discarded by a fault is retried by the link
// layer with bounded backoff (the role TCP plays under the real-time
// driver), so a message between two processes that stay up is eventually
// delivered once the fault window closes. What the engines observe is
// therefore added latency, duplication, bounded reordering, and —
// during full partitions — failure-detector suspicions that flap on and
// clear again after heal. Safety must survive all of it; liveness
// resumes once faults clear.
type LinkFault struct {
	// From and To bound the active window [From, To) in virtual time.
	// To == 0 means the fault stays active until Heal.
	From, To time.Duration
	// Drop is the probability a transmission attempt is discarded.
	// Drop >= 1 fully blocks the link (a partition): the failure
	// detector of the receiving process then suspects the sender after
	// the cost model's FDDetect, and unsuspects it FDDetect after the
	// window closes.
	Drop float64
	// Delay is added to every delivery's propagation time.
	Delay time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Dup is the probability a delivered message arrives twice.
	Dup float64
	// Reorder is the probability a message is held back by an extra
	// skew uniform in (0, ReorderSkew], overtaking later traffic —
	// bounded reordering.
	Reorder float64
	// ReorderSkew bounds the reordering skew; 0 means 4x the model's
	// propagation delay.
	ReorderSkew time.Duration
}

// active reports whether the fault window covers virtual time t.
func (f LinkFault) active(t time.Duration) bool {
	return t >= f.From && (f.To == 0 || t < f.To)
}

// blocking reports whether the fault fully blocks the link while active.
func (f LinkFault) blocking() bool { return f.Drop >= 1 }

// pending reports whether the fault can still affect traffic at or after t.
func (f LinkFault) pending(t time.Duration) bool { return f.To == 0 || f.To > t }

// linkKey identifies one directed link.
type linkKey struct{ from, to types.ProcessID }

// linkState is the fault bookkeeping of one directed link. It exists only
// for links that ever had a fault installed; fault-free clusters carry no
// link state, draw nothing from the RNG on the send path, and reproduce
// the pre-fault schedules bit for bit (pinned by the golden traces).
type linkState struct {
	faults []LinkFault
	// blocked tracks whether a blocking fault currently covers the link,
	// with blockedSince the transition time (partition accounting and
	// failure detection both key off it).
	blocked      bool
	blockedSince time.Duration
	// suspected records that the link's receiver currently suspects the
	// link's sender because of this link (the simulated failure detector
	// reports each transition exactly once).
	suspected bool
}

// Link-layer retransmission: a transmission attempt discarded by a fault
// is retried after retryBase, doubling up to retryCap — the deterministic
// stand-in for the transport-level retransmission that restores
// quasi-reliability under the real-time driver.
const (
	retryBase = 20 * time.Millisecond
	retryCap  = 320 * time.Millisecond
)

// link returns (creating if needed) the fault state of a directed link.
// Creation order is recorded so fault-topology sweeps (Heal) iterate links
// deterministically — map iteration would scramble event sequence numbers
// and with them the reproducibility contract.
func (c *Cluster) link(k linkKey) *linkState {
	if c.linkFaults == nil {
		c.linkFaults = make(map[linkKey]*linkState)
	}
	st := c.linkFaults[k]
	if st == nil {
		st = &linkState{}
		c.linkFaults[k] = st
		c.linkOrder = append(c.linkOrder, k)
	}
	return st
}

// SetLinkFault installs a fault on the directed link from -> to. Faults
// may overlap in time; a transmission consults every active window (any
// blocking or successful drop roll discards it; delays accumulate).
// Self-links and out-of-range processes are ignored.
func (c *Cluster) SetLinkFault(from, to types.ProcessID, f LinkFault) {
	if from == to || from < 0 || to < 0 || int(from) >= c.opts.N || int(to) >= c.opts.N {
		return
	}
	if f.ReorderSkew <= 0 {
		f.ReorderSkew = 4 * c.model.PropDelay
	}
	k := linkKey{from: from, to: to}
	st := c.link(k)
	st.faults = append(st.faults, f)
	if f.blocking() {
		// Drive the link's partition state machine at the window edges;
		// Heal may close the window earlier, which the transition handler
		// observes by recomputing coverage.
		c.At(f.From, func() { c.linkTransition(k) })
		if f.To > 0 {
			c.At(f.To, func() { c.linkTransition(k) })
		}
	}
}

// Partition symmetrically cuts both directions between a and b during
// [from, to): every transmission attempt is dropped (and retried), and the
// failure detectors on both sides suspect the unreachable peer after
// FDDetect, unsuspecting it FDDetect after the window closes. to == 0
// keeps the partition up until Heal.
func (c *Cluster) Partition(a, b types.ProcessID, from, to time.Duration) {
	c.SetLinkFault(a, b, LinkFault{From: from, To: to, Drop: 1})
	c.SetLinkFault(b, a, LinkFault{From: from, To: to, Drop: 1})
}

// PartitionOneWay cuts only the direction a -> b during [from, to): b
// stops hearing a (and eventually suspects it) while a still hears b —
// the asymmetric-connectivity case the heartbeat failure detector maps to
// one-sided suspicion.
func (c *Cluster) PartitionOneWay(a, b types.ProcessID, from, to time.Duration) {
	c.SetLinkFault(a, b, LinkFault{From: from, To: to, Drop: 1})
}

// Heal clears every link fault at virtual time at: windows still open are
// truncated to end at that instant, windows that would only start later
// are removed, and the failure detectors clear fault-driven suspicions
// FDDetect later.
func (c *Cluster) Heal(at time.Duration) {
	c.At(at, func() {
		for _, k := range c.linkOrder {
			st := c.linkFaults[k]
			kept := st.faults[:0]
			for _, f := range st.faults {
				if f.From >= c.now {
					continue // never became active
				}
				if f.To == 0 || f.To > c.now {
					f.To = c.now
				}
				kept = append(kept, f)
			}
			st.faults = kept
			c.linkTransition(k)
		}
	})
}

// linkTransition recomputes the blocked state of a link at the current
// virtual time and, on a transition, accounts partition exposure and arms
// the failure-detector check.
func (c *Cluster) linkTransition(k linkKey) {
	st := c.linkFaults[k]
	if st == nil {
		return
	}
	blocked := false
	for _, f := range st.faults {
		if f.blocking() && f.active(c.now) {
			blocked = true
			break
		}
	}
	if blocked == st.blocked {
		return
	}
	st.blocked = blocked
	if blocked {
		st.blockedSince = c.now
	} else {
		c.procs[k.from].counters.PartitionNanos.Add(int64(c.now - st.blockedSince))
	}
	c.At(c.now+c.model.FDDetect, func() { c.fdCheck(k) })
}

// fdCheck is the simulated failure detector of the link's receiver: a
// link blocked for FDDetect makes the receiver suspect the sender; a link
// open again for FDDetect clears the suspicion. Transitions are reported
// to the engine exactly once, and never to or about a crashed process
// (crash suspicion is the Crash/Restart machinery's job).
func (c *Cluster) fdCheck(k linkKey) {
	st := c.linkFaults[k]
	if st == nil {
		return
	}
	observer := c.procs[k.to]
	if observer.crashed {
		return
	}
	if st.blocked {
		if !st.suspected && c.now-st.blockedSince >= c.model.FDDetect {
			st.suspected = true
			subject := k.from
			c.exec(observer, c.now, c.model.TimerPerFire, func() {
				observer.eng.Suspect(subject, true)
			})
		}
		return
	}
	if st.suspected && !c.procs[k.from].crashed {
		st.suspected = false
		subject := k.from
		c.exec(observer, c.now, c.model.TimerPerFire, func() {
			observer.eng.Suspect(subject, false)
		})
	}
}

// transmit schedules the delivery of one message leaving the sender's NIC
// at departure time, applying any link faults. The fault-free path pushes
// the arrival event directly — bit-for-bit the pre-fault schedule.
func (c *Cluster) transmit(from, to types.ProcessID, data []byte, depart time.Duration) {
	st := c.linkFaults[linkKey{from: from, to: to}]
	if st == nil || len(st.faults) == 0 {
		if c.procs[to].crashed {
			return
		}
		c.push(&event{at: depart + c.model.PropDelay, kind: evMsg, proc: to, from: from, data: data})
		return
	}
	c.attempt(from, to, data, depart, 0)
}

// attempt makes one fault-aware delivery attempt at virtual time at,
// scheduling a retry with bounded backoff when a fault discards it.
func (c *Cluster) attempt(from, to types.ProcessID, data []byte, at time.Duration, try int) {
	if c.procs[to].crashed {
		return // crash-stop: messages to a crashed process vanish
	}
	snd := &c.procs[from].counters
	extra := time.Duration(0)
	dup := false
	st := c.linkFaults[linkKey{from: from, to: to}]
	if st != nil {
		for _, f := range st.faults {
			if !f.active(at) {
				continue
			}
			if f.blocking() || (f.Drop > 0 && c.rng.Float64() < f.Drop) {
				snd.DroppedByFault.Add(1)
				backoff := retryBase << try
				if backoff > retryCap || backoff <= 0 {
					backoff = retryCap
				}
				retryAt := at + backoff
				if try < 62 {
					try++
				}
				attempt := try
				c.push(&event{at: retryAt, kind: evCall, proc: types.Nobody, fn: func() {
					c.attempt(from, to, data, retryAt, attempt)
				}})
				return
			}
			extra += f.Delay
			if f.Jitter > 0 {
				extra += time.Duration(c.rng.Int63n(int64(f.Jitter)))
			}
			if f.Reorder > 0 && c.rng.Float64() < f.Reorder {
				extra += 1 + time.Duration(c.rng.Int63n(int64(f.ReorderSkew)))
				snd.ReorderedByFault.Add(1)
			}
			if f.Dup > 0 && c.rng.Float64() < f.Dup {
				dup = true
			}
		}
	}
	arrive := at + c.model.PropDelay + extra
	c.push(&event{at: arrive, kind: evMsg, proc: to, from: from, data: data})
	if dup {
		snd.DupedByFault.Add(1)
		c.push(&event{at: arrive + c.model.PropDelay, kind: evMsg, proc: to, from: from, data: data})
	}
}
