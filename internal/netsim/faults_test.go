package netsim

import (
	"fmt"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
)

// faultCluster builds a small loaded cluster for fault-model tests.
func faultCluster(t *testing.T, stk types.Stack, seed int64, durable bool,
	onDeliver func(p types.ProcessID, d engine.Delivery, at time.Duration)) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{N: 3, Stack: stk, Seed: seed, Durable: durable, OnDeliver: onDeliver})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

// TestPartitionDropsAndAccounts: a partition window drops traffic on both
// directions, accounts the drops to the senders, and accumulates the
// partition exposure time once the window closes.
func TestPartitionDropsAndAccounts(t *testing.T) {
	c := faultCluster(t, types.Modular, 1, false, nil)
	c.Partition(0, 1, 100*time.Millisecond, 400*time.Millisecond)
	InstallWorkload(c, Workload{OfferedLoad: 900, Size: 64, End: 600 * time.Millisecond}, nil)
	c.Run(time.Second)
	c.RunIdle(30 * time.Second)
	if c.Events() != 0 {
		t.Fatalf("cluster did not quiesce: %d events left", c.Events())
	}
	for _, p := range []types.ProcessID{0, 1} {
		snap := c.Counters(p)
		if snap.DroppedByFault == 0 {
			t.Errorf("p%d dropped nothing during the partition", p)
		}
		want := int64(300 * time.Millisecond)
		if snap.PartitionNanos != want {
			t.Errorf("p%d PartitionNanos = %d, want %d", p, snap.PartitionNanos, want)
		}
		if sec := snap.PartitionSecs(); sec < 0.29 || sec > 0.31 {
			t.Errorf("p%d PartitionSecs = %v, want 0.3", p, sec)
		}
	}
	if snap := c.Counters(2); snap.DroppedByFault != 0 || snap.PartitionNanos != 0 {
		t.Errorf("p3 was not partitioned but has fault counters: %+v", snap)
	}
}

// TestPartitionOneWayIsAsymmetric: only the blocked direction drops.
func TestPartitionOneWayIsAsymmetric(t *testing.T) {
	c := faultCluster(t, types.Modular, 2, false, nil)
	c.PartitionOneWay(0, 2, 100*time.Millisecond, 500*time.Millisecond)
	InstallWorkload(c, Workload{OfferedLoad: 900, Size: 64, End: 700 * time.Millisecond}, nil)
	c.Run(time.Second)
	c.RunIdle(30 * time.Second)
	if got := c.Counters(0).DroppedByFault; got == 0 {
		t.Errorf("p1 (blocked direction) dropped nothing")
	}
	if got := c.Counters(2).DroppedByFault; got != 0 {
		t.Errorf("p3 (open direction) dropped %d", got)
	}
}

// TestLossyLinkCountersAndDelivery: probabilistic drops, duplication and
// reordering are counted, and the protocol still delivers everything
// identically (the link layer's retransmission preserves quasi-reliable
// channels).
func TestLossyLinkCountersAndDelivery(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			seqs := make([][]types.MsgID, 3)
			c := faultCluster(t, stk, 3, false, func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
				seqs[p] = append(seqs[p], d.Msg.ID)
			})
			f := LinkFault{Drop: 0.3, Delay: time.Millisecond, Jitter: time.Millisecond, Dup: 0.2, Reorder: 0.3}
			for _, pair := range [][2]types.ProcessID{{0, 1}, {1, 0}, {1, 2}} {
				f.From, f.To = 100*time.Millisecond, 700*time.Millisecond
				c.SetLinkFault(pair[0], pair[1], f)
			}
			InstallWorkload(c, Workload{OfferedLoad: 900, Size: 64, End: 900 * time.Millisecond}, nil)
			c.Run(2 * time.Second)
			c.RunIdle(30 * time.Second)
			for _, err := range c.Errs() {
				t.Errorf("engine error: %v", err)
			}
			tot := c.TotalCounters()
			if tot.DroppedByFault == 0 || tot.DupedByFault == 0 || tot.ReorderedByFault == 0 {
				t.Errorf("fault counters not exercised: %+v", tot)
			}
			if len(seqs[0]) == 0 {
				t.Fatal("no deliveries")
			}
			for p := 1; p < 3; p++ {
				if fmt.Sprint(seqs[p]) != fmt.Sprint(seqs[0]) {
					t.Fatalf("delivery orders diverge between p1 and p%d under lossy links", p+1)
				}
			}
		})
	}
}

// TestPartitionDrivesSuspicionFlap: the simulated failure detector
// suspects across a partitioned link after FDDetect and clears the
// suspicion after heal — observable as consensus round changes during the
// window and none before it.
func TestPartitionDrivesSuspicionFlap(t *testing.T) {
	c := faultCluster(t, types.Modular, 4, false, nil)
	InstallWorkload(c, Workload{OfferedLoad: 600, Size: 64, End: 900 * time.Millisecond}, nil)

	// Cut p1 (the round-1 coordinator of every instance) off from p2: p2
	// must suspect p1 and drive round changes; p3 sees nothing.
	c.Partition(0, 1, 300*time.Millisecond, 700*time.Millisecond)
	c.Run(250 * time.Millisecond)
	if got := c.Counters(1).Rounds; got != 0 {
		t.Fatalf("rounds advanced before the partition: %d", got)
	}
	c.Run(time.Second)
	c.RunIdle(30 * time.Second)
	if got := c.Counters(1).Rounds; got == 0 {
		t.Error("p2 never advanced a round although its link to the coordinator was cut")
	}
	if c.Events() != 0 {
		t.Errorf("cluster did not quiesce after heal: %d events", c.Events())
	}
}

// TestFaultDeterminism: identical seeds and fault schedules produce
// identical delivery traces and counters, fault injection included.
func TestFaultDeterminism(t *testing.T) {
	run := func() ([][]types.MsgID, string) {
		seqs := make([][]types.MsgID, 3)
		c := faultCluster(t, types.Monolithic, 9, false, func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
			seqs[p] = append(seqs[p], d.Msg.ID)
		})
		c.SetLinkFault(0, 1, LinkFault{From: 100 * time.Millisecond, To: 600 * time.Millisecond,
			Drop: 0.25, Jitter: 2 * time.Millisecond, Dup: 0.1, Reorder: 0.2})
		c.Partition(1, 2, 400*time.Millisecond, 800*time.Millisecond)
		InstallWorkload(c, Workload{OfferedLoad: 900, Size: 64, End: time.Second}, nil)
		c.Run(2 * time.Second)
		c.RunIdle(30 * time.Second)
		return seqs, fmt.Sprint(c.TotalCounters())
	}
	aSeqs, aStats := run()
	bSeqs, bStats := run()
	if fmt.Sprint(aSeqs) != fmt.Sprint(bSeqs) || aStats != bStats {
		t.Fatal("same seed and schedule produced different fault-injected traces")
	}
}

// TestHealTruncatesOpenFault: an open-ended fault cleared by Heal stops
// dropping and the cluster converges.
func TestHealTruncatesOpenFault(t *testing.T) {
	seqs := make([][]types.MsgID, 3)
	c := faultCluster(t, types.Modular, 6, false, func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
		seqs[p] = append(seqs[p], d.Msg.ID)
	})
	c.Partition(0, 2, 200*time.Millisecond, 0) // open-ended
	c.Heal(600 * time.Millisecond)
	InstallWorkload(c, Workload{OfferedLoad: 600, Size: 64, End: 800 * time.Millisecond}, nil)
	c.Run(2 * time.Second)
	c.RunIdle(30 * time.Second)
	if c.Events() != 0 {
		t.Fatalf("cluster did not quiesce after Heal: %d events", c.Events())
	}
	if len(seqs[0]) == 0 || fmt.Sprint(seqs[0]) != fmt.Sprint(seqs[2]) {
		t.Fatalf("p1 and p3 disagree after heal: %d vs %d deliveries", len(seqs[0]), len(seqs[2]))
	}
	// Partition exposure accounted at heal time: 400ms on both directions.
	want := int64(400 * time.Millisecond)
	if got := c.Counters(0).PartitionNanos; got != want {
		t.Errorf("p1 PartitionNanos = %d, want %d", got, want)
	}
}

// TestRepartitionAfterRestartStillSuspects pins a stale-flag bug: if a
// partition on p->q heals while p is crashed, the unsuspect branch of the
// link failure detector skips the crashed sender and the link's
// suspicion flag went stale — a LATER partition on the same link would
// then never report a suspicion to q, silently wedging the cluster.
// Restart must reset the flag so the second partition flaps normally.
func TestRepartitionAfterRestartStillSuspects(t *testing.T) {
	seqs := make([][]types.MsgID, 3)
	c, err := NewCluster(Options{
		N: 3, Stack: types.Modular, Seed: 8, Durable: true,
		OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
			seqs[p] = append(seqs[p], d.Msg.ID)
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	// First partition on p1<->p3 heals at 500ms while p1 is down.
	c.Partition(0, 2, 200*time.Millisecond, 500*time.Millisecond)
	c.Crash(0, 300*time.Millisecond)
	c.Restart(0, 700*time.Millisecond)
	// Second partition on the same link, after everything stabilized.
	c.Partition(0, 2, 1100*time.Millisecond, 1500*time.Millisecond)
	InstallWorkload(c, Workload{OfferedLoad: 600, Size: 64, End: 1400 * time.Millisecond}, nil)

	c.Run(1050 * time.Millisecond)
	roundsBefore := c.Counters(2).Rounds
	c.Run(2 * time.Second)
	c.RunIdle(30 * time.Second)
	for _, err := range c.Errs() {
		t.Errorf("engine error: %v", err)
	}
	if got := c.Counters(2).Rounds; got <= roundsBefore {
		t.Errorf("p3 advanced no rounds during the second partition (%d before, %d after): suspicion flag went stale",
			roundsBefore, got)
	}
	if c.Events() != 0 {
		t.Errorf("cluster did not quiesce: %d events", c.Events())
	}
	if len(seqs[1]) == 0 || fmt.Sprint(seqs[1]) != fmt.Sprint(seqs[2]) {
		t.Fatalf("p2 and p3 disagree: %d vs %d deliveries", len(seqs[1]), len(seqs[2]))
	}
}

// TestFaultFreeSendPathUntouched: installing no faults leaves the cluster
// byte-for-byte on the pre-fault schedule — no RNG draws, no extra
// events. (TestGoldenTraces pins this against recorded fingerprints; this
// is the cheap in-package cousin comparing against a second fresh run.)
func TestFaultFreeSendPathUntouched(t *testing.T) {
	run := func() string {
		c := faultCluster(t, types.Modular, 5, false, nil)
		InstallWorkload(c, Workload{OfferedLoad: 900, Size: 64, End: 500 * time.Millisecond}, nil)
		c.Run(time.Second)
		c.RunIdle(30 * time.Second)
		return fmt.Sprint(c.TotalCounters())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fault-free runs diverged:\n%s\n%s", a, b)
	}
}
