package netsim

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"modab/internal/batch"
	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/types"
)

// goldenScenario is one deterministic simulated run whose full observable
// behavior — the delivery sequence at every process plus the byte-exact
// wire and dispatch counters — is pinned by a recorded fingerprint.
//
// The fingerprints were captured from the pre-pipelining engines (every
// consensus instance strictly sequential). The pipelined refactor must
// reproduce them bit-for-bit at pipeline depth 1: same deliveries in the
// same order, same messages, same bytes on the wire, same dispatch
// counts. Any divergence means depth-1 operation is not the exact
// sequential protocol the paper measured.
type goldenScenario struct {
	name string
	n    int
	seed int64
	load float64
	size int
	// crash, when >= 0, crash-stops that process at crashAt.
	crash   int
	crashAt time.Duration
	// restart re-enables the crashed process at restartAt on a durable
	// cluster (crash-recovery model).
	restart   bool
	restartAt time.Duration
	// partition, when set, symmetrically cuts both directions between the
	// two processes during [partFrom, partTo) — the link-fault subsystem's
	// pinned scenario (recorded when the subsystem landed; the chaos-free
	// scenarios above must stay bit-for-bit on their pre-fault
	// fingerprints).
	partition        bool
	partA, partB     int
	partFrom, partTo time.Duration
	// ring runs the scenario with engine.DefaultConfig(n) plus
	// Dissemination=Ring, pinning the successor-relay order (the
	// ring-free scenarios run the zero config and stay on their original
	// AllToAll fingerprints untouched).
	ring bool
	// digest runs the scenario with engine.DefaultConfig(n) plus
	// DigestOrdering and an 8-message sender batch, pinning the
	// announce/descriptor split (the digest-free scenarios run with the
	// feature off and stay on their original fingerprints untouched).
	digest bool
}

// goldenScenarios is the pinned scenario matrix: good runs at both group
// sizes, a round-1 coordinator crash (p0 coordinates round 1 of every
// instance), and a durable crash+restart.
var goldenScenarios = []goldenScenario{
	{name: "good/n=3", n: 3, seed: 42, load: 1500, size: 128, crash: -1},
	{name: "good/n=7", n: 7, seed: 7, load: 2100, size: 64, crash: -1},
	{name: "coordcrash/n=3", n: 3, seed: 5, load: 1200, size: 64, crash: 0, crashAt: 500 * time.Millisecond},
	{name: "restart/n=3", n: 3, seed: 11, load: 1500, size: 128, crash: 1, crashAt: 500 * time.Millisecond,
		restart: true, restartAt: 1200 * time.Millisecond},
	{name: "partition/n=3", n: 3, seed: 13, load: 1200, size: 64, crash: -1,
		partition: true, partA: 0, partB: 2, partFrom: 400 * time.Millisecond, partTo: 900 * time.Millisecond},
	// Ring-dissemination matrix: good runs at two group sizes plus a cut
	// ring edge (0→1 is p0's successor link), pinning the relay order so
	// future refactors can't silently change it.
	{name: "ring/n=3", n: 3, seed: 42, load: 1500, size: 128, crash: -1, ring: true},
	{name: "ring/n=5", n: 5, seed: 9, load: 1800, size: 96, crash: -1, ring: true},
	// The cut is the ring's first relay edge (p0→p1), so p1 hears no
	// proposals at all until the heal; the load and cut length are sized
	// so its decision gap stays inside the non-durable DecisionHorizon
	// (the chaos ring-cut family covers longer cuts on durable clusters,
	// where the log serves pruned decisions).
	{name: "ring-partition/n=3", n: 3, seed: 13, load: 300, size: 64, crash: -1, ring: true,
		partition: true, partA: 0, partB: 1, partFrom: 400 * time.Millisecond, partTo: 650 * time.Millisecond},
	// Digest-ordering matrix: a good run (announce + descriptor consensus
	// in steady state) and a partition between the two non-coordinator
	// processes (decided descriptors arrive before their payload on the
	// far side, exercising the blocked-head delivery and the late-announce
	// retirement), pinning the split's wire behavior bit-for-bit.
	{name: "digest/n=3", n: 3, seed: 42, load: 1500, size: 128, crash: -1, digest: true},
	{name: "digest-partition/n=3", n: 3, seed: 13, load: 900, size: 64, crash: -1, digest: true,
		partition: true, partA: 1, partB: 2, partFrom: 400 * time.Millisecond, partTo: 800 * time.Millisecond},
}

// goldenFingerprints maps scenario/stack to the recorded pre-pipelining
// fingerprint (see goldenScenario). To regenerate, empty this map, run
//
//	go test ./internal/netsim -run TestGoldenTraces -v
//
// and copy the logged GOLDEN lines back — but only when a deliberate
// wire- or schedule-visible protocol change is being made; say so in the
// commit.
var goldenFingerprints = map[string]string{
	"good/n=3/modular":          "p0{del=2684 sent=4740 B=1125272 disp=7480 cons=685/685} p1{del=2684 sent=3739 B=291074 disp=6110 cons=1/685} p2{del=2684 sent=2369 B=255454 disp=6795 cons=1/685} order=42e8c2506f31c70c",
	"good/n=3/monolithic":       "p0{del=3000 sent=3604 B=972086 disp=4604 cons=1801/1801} p1{del=3000 sent=1802 B=174634 disp=2802 cons=0/1801} p2{del=3000 sent=1802 B=174634 disp=2802 cons=0/1801} order=d175104a3a0dbf60",
	"good/n=7/modular":          "p0{del=1639 sent=5916 B=1034952 disp=5917 cons=329/329} p1{del=1639 sent=3617 B=163678 disp=3943 cons=1/329} p2{del=1639 sent=3611 B=163186 disp=3943 cons=1/329} p3{del=1639 sent=3617 B=163678 disp=3943 cons=1/329} p4{del=1639 sent=1643 B=112354 disp=4272 cons=1/329} p5{del=1639 sent=1637 B=111862 disp=4272 cons=1/329} p6{del=1639 sent=1637 B=111862 disp=4272 cons=1/329} order=63e0891ab3a8ba52",
	"good/n=7/monolithic":       "p0{del=2987 sent=4788 B=1577298 disp=5385 cons=797/797} p1{del=2987 sent=798 B=46046 disp=1204 cons=0/797} p2{del=2987 sent=797 B=46029 disp=1204 cons=0/797} p3{del=2987 sent=798 B=46046 disp=1204 cons=0/797} p4{del=2987 sent=798 B=44686 disp=1187 cons=0/797} p5{del=2987 sent=797 B=44749 disp=1188 cons=0/797} p6{del=2987 sent=797 B=44749 disp=1188 cons=0/797} order=9abff4015fa86255",
	"coordcrash/n=3/modular":    "p0{del=596 sent=1138 B=144868 disp=1886 cons=185/184} p1{del=1722 sent=4043 B=358378 disp=5387 cons=390/574} p2{del=1722 sent=3675 B=169280 disp=4791 cons=390/574} order=5cc46d5530af63ec",
	"coordcrash/n=3/monolithic": "p0{del=597 sent=910 B=122640 disp=1103 cons=445/444} p1{del=1723 sent=3262 B=259704 disp=2898 cons=560/1005} p2{del=1723 sent=2694 B=154928 disp=2338 cons=0/1005} order=4f965e8252b2740e",
	// The restart fingerprints were re-recorded when recover responses
	// gained the SnapIndex field (snapshot state transfer): responses are 8
	// bytes larger on the wire, with identical delivery orders.
	"restart/n=3/modular":      "p0{del=2432 sent=5394 B=1076824 disp=7578 cons=848/848} p1{del=2432 sent=2429 B=186526 disp=3973 cons=2/448} p2{del=2432 sent=2657 B=386490 disp=7141 cons=2/848} order=9e3fd0ad53a3d1e3",
	"restart/n=3/monolithic":   "p0{del=2640 sent=3609 B=874135 disp=3973 cons=1799/1799} p1{del=2640 sent=1192 B=113780 disp=1834 cons=0/1799} p2{del=2640 sent=1821 B=286205 disp=2824 cons=0/1799} order=61acde73bb09578b",
	"partition/n=3/modular":    "p0{del=1893 sent=4224 B=502976 disp=7010 cons=669/669} p1{del=1893 sent=3668 B=200708 disp=5627 cons=3/669} p2{del=1893 sent=2424 B=128716 disp=6277 cons=197/669} order=4701b1310b02188",
	"partition/n=3/monolithic": "p0{del=900 sent=4251 B=430295 disp=4635 cons=762/762} p1{del=900 sent=1332 B=91390 disp=1678 cons=0/762} p2{del=900 sent=3742 B=205610 disp=3912 cons=0/762} order=d4ad21ea02127b49",
	// Ring-dissemination fingerprints (recorded when the dissemination
	// seam landed). Note the monolithic coordinator's send count halving
	// versus its all-to-all golden — the relay offload at work.
	"ring/n=3/modular":              "p0{del=2688 sent=4601 B=1129976 disp=7512 cons=689/689} p1{del=2688 sent=3910 B=340354 disp=6134 cons=1/689} p2{del=2688 sent=2377 B=279726 disp=6823 cons=1/689} order=3a390ad85a6764e8",
	"ring/n=3/monolithic":           "p0{del=3000 sent=1753 B=523078 disp=4504 cons=1751/1751} p1{del=3000 sent=3503 B=696836 disp=2752 cons=0/1751} p2{del=3000 sent=1752 B=173784 disp=2752 cons=0/1751} order=288ca4b7ace98886",
	"ring/n=5/modular":              "p0{del=2272 sent=5193 B=1328944 disp=6443 cons=417/417} p1{del=2272 sent=3942 B=286902 disp=4775 cons=1/417} p2{del=2272 sent=3942 B=286902 disp=4775 cons=1/417} p3{del=2272 sent=2273 B=243406 disp=5192 cons=1/417} p4{del=2272 sent=2078 B=218446 disp=5192 cons=1/417} order=7ab907290812dc0c",
	"ring/n=5/monolithic":           "p0{del=3600 sent=1085 B=459464 disp=5047 cons=1081/1081} p1{del=3600 sent=2162 B=558429 disp=1802 cons=0/1081} p2{del=3600 sent=2163 B=558446 disp=1802 cons=0/1081} p3{del=3600 sent=2163 B=558446 disp=1802 cons=0/1081} p4{del=3600 sent=1082 B=99034 disp=1802 cons=0/1081} order=c96b408699c69e34",
	"ring-partition/n=3/modular":    "p0{del=566 sent=2651 B=178888 disp=4679 cons=560/560} p1{del=566 sent=2219 B=83030 disp=3289 cons=491/560} p2{del=566 sent=1054 B=55216 disp=4079 cons=371/560} order=abda69b561df9d41",
	"ring-partition/n=3/monolithic": "p0{del=535 sent=1595 B=87094 disp=1664 cons=526/526} p1{del=535 sent=1302 B=90089 disp=1202 cons=0/526} p2{del=535 sent=753 B=31761 disp=1319 cons=0/526} order=ffc69bbaa6a7739a",
	// Digest-ordering fingerprints (recorded when the
	// dissemination/ordering split landed). Note the bytes-sent drop versus
	// the matching payload-mode goldens at the same seed and load: payloads
	// cross the wire once as announces while consensus frames carry only
	// descriptors.
	"digest/n=3/modular":              "p0{del=3000 sent=4294 B=490748 disp=8266 cons=823/823} p1{del=3000 sent=3473 B=376454 disp=6620 cons=6/823} p2{del=3000 sent=1825 B=333590 disp=7443 cons=6/823} order=e5561d2e0be487c",
	"digest/n=3/monolithic":           "p0{del=3000 sent=4254 B=527302 disp=5379 cons=1255/1255} p1{del=3000 sent=2876 B=398142 disp=3630 cons=0/1255} p2{del=3000 sent=2631 B=382021 disp=3752 cons=0/1255} order=e3fde66d7f621d18",
	"digest-partition/n=3/modular":    "p0{del=642 sent=2050 B=143028 disp=8059 cons=377/377} p1{del=642 sent=6054 B=650720 disp=4636 cons=3/377} p2{del=642 sent=5100 B=549116 disp=5103 cons=3/377} order=7df8e679e06c01b6",
	"digest-partition/n=3/monolithic": "p0{del=1800 sent=4428 B=453908 disp=5219 cons=1434/1434} p1{del=1800 sent=2910 B=203266 disp=3364 cons=0/1434} p2{del=1800 sent=2908 B=203042 disp=3463 cons=0/1434} order=c8cb69cf65e82d4f",
}

// fingerprint runs the scenario and folds every process's delivery
// sequence and counters into one comparable string.
func (s goldenScenario) fingerprint(t *testing.T, stk types.Stack, cfg engine.Config) string {
	t.Helper()
	seqs := make([][]types.MsgID, s.n)
	c, err := NewCluster(Options{
		N:       s.n,
		Stack:   stk,
		Engine:  cfg,
		Seed:    s.seed,
		Durable: s.restart,
		OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
			seqs[p] = append(seqs[p], d.Msg.ID)
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	InstallWorkload(c, Workload{OfferedLoad: s.load, Size: s.size, End: 2 * time.Second}, nil)
	if s.partition {
		c.Partition(types.ProcessID(s.partA), types.ProcessID(s.partB), s.partFrom, s.partTo)
	}
	if s.crash >= 0 {
		c.Crash(types.ProcessID(s.crash), s.crashAt)
		if s.restart {
			c.Restart(types.ProcessID(s.crash), s.restartAt)
		}
	}
	c.Run(3 * time.Second)
	c.RunIdle(30 * time.Second)
	for _, err := range c.Errs() {
		t.Errorf("engine error: %v", err)
	}
	h := fnv.New64a()
	for p := 0; p < s.n; p++ {
		for _, id := range seqs[p] {
			fmt.Fprintf(h, "%d:%s;", p, id)
		}
	}
	var out string
	for p := 0; p < s.n; p++ {
		snap := c.Counters(types.ProcessID(p))
		out += fmt.Sprintf("p%d{del=%d sent=%d B=%d disp=%d cons=%d/%d} ",
			p, len(seqs[p]), snap.MsgsSent, snap.BytesSent, snap.Dispatches,
			snap.ConsensusStarted, snap.ConsensusDecided)
	}
	return fmt.Sprintf("%sorder=%x", out, h.Sum64())
}

// TestGoldenTraces pins the depth-1 behavior of both stacks to the
// recorded pre-pipelining fingerprints, for the default configuration.
func TestGoldenTraces(t *testing.T) {
	for _, sc := range goldenScenarios {
		for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
			sc, stk := sc, stk
			t.Run(sc.name+"/"+stk.String(), func(t *testing.T) {
				var cfg engine.Config // zero: netsim applies DefaultConfig(n)
				if sc.ring {
					cfg = engine.DefaultConfig(sc.n)
					cfg.Dissemination = dissem.Ring
				}
				if sc.digest {
					cfg = engine.DefaultConfig(sc.n)
					cfg.DigestOrdering = true
					cfg.Batch = batch.Config{MaxMsgs: 8, MaxDelay: 2 * time.Millisecond}
				}
				got := sc.fingerprint(t, stk, cfg)
				key := sc.name + "/" + stk.String()
				want, ok := goldenFingerprints[key]
				if !ok {
					t.Logf("GOLDEN %q: %q,", key, got)
					t.Fatalf("no golden recorded for %s", key)
				}
				if got != want {
					t.Errorf("trace diverged from the sequential golden:\n got %s\nwant %s", got, want)
				}
			})
		}
	}
}
