// Membership operations of the simulated cluster: config changes ride
// the total order exactly as in the real drivers — a sponsor submits the
// op through its engine, the decided view activates at the boundary
// instance, and a joiner is spawned only once some correct process has
// applied the view that admits it (it then bootstraps through the
// ordinary crash-recovery state transfer, including snapshot install
// when snapshots are enabled).
package netsim

import (
	"fmt"
	"time"

	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/obs"
	"modab/internal/recovery"
	"modab/internal/rsm"
	"modab/internal/types"
)

// Join admits a new process: at virtual time at, sponsor submits the
// OpAdd; when the first correct process applies the resulting view the
// joiner is spawned with that view as its initial config and catches up
// through state transfer. Joiner IDs must be dense — the next unused ID
// — and joins must be spaced far enough apart that each joiner spawns
// before the next OpAdd decides (the chaos schedules and benchmarks
// sequence them through the delivery stream).
func (c *Cluster) Join(sponsor, id types.ProcessID, at time.Duration) {
	c.At(at, func() {
		if int(id) < len(c.procs) {
			c.errs = append(c.errs, fmt.Errorf("sim t=%v: join %s: ID already spawned", c.now, id))
			return
		}
		if c.stores == nil {
			// Members without durable stores cannot serve the decided
			// prefix, so the joiner's state transfer would never finish.
			c.errs = append(c.errs, fmt.Errorf("sim t=%v: join %s: requires Options.Durable", c.now, id))
			return
		}
		c.pendingJoins[id] = true
		c.submitConfig(sponsor, member.Op{Kind: member.OpAdd, Target: id})
	})
}

// Remove retires a member: at virtual time at, sponsor submits the
// OpRemove. The removed process keeps running until the caller crashes
// it (decommissioning is the driver's business); from the activation
// boundary on, the survivors neither send to it nor accept its state.
func (c *Cluster) Remove(sponsor, target types.ProcessID, at time.Duration) {
	c.At(at, func() {
		c.submitConfig(sponsor, member.Op{Kind: member.OpRemove, Target: target})
	})
}

// submitConfig drives one config op through the sponsor's engine. A
// flow-control rejection retries after a delivery-scale delay — the op
// is an ordinary abcast competing for window slots, and membership
// sweeps run under load.
func (c *Cluster) submitConfig(sponsor types.ProcessID, op member.Op) {
	pr := c.procs[sponsor]
	if pr == nil || pr.crashed {
		c.errs = append(c.errs, fmt.Errorf("sim t=%v: submit %v: sponsor %s down", c.now, op, sponsor))
		return
	}
	sub, ok := pr.eng.(engine.ConfigSubmitter)
	if !ok {
		c.errs = append(c.errs, fmt.Errorf("sim t=%v: %s engine cannot submit config ops", c.now, sponsor))
		return
	}
	var err error
	c.exec(pr, c.now, c.model.AbcastPerMsg, func() {
		_, err = sub.SubmitConfig(op)
	})
	if err == types.ErrFlowControl {
		c.At(c.now+time.Millisecond, func() { c.submitConfig(sponsor, op) })
		return
	}
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("sim t=%v %s: submit %v: %w", c.now, sponsor, op, err))
	}
}

// View returns process p's current membership view.
func (c *Cluster) View(p types.ProcessID) member.View {
	return c.procs[p].eng.(engine.ConfigSubmitter).CurrentView()
}

// ViewHistory returns process p's full decided view sequence (checker
// support: correct processes must agree on the epoch → activation map).
func (c *Cluster) ViewHistory(p types.ProcessID) []member.View {
	return c.procs[p].eng.(interface{ Views() []member.View }).Views()
}

// Procs returns the number of processes ever spawned (boot group plus
// joiners; removed and crashed processes keep their slots).
func (c *Cluster) Procs() int { return len(c.procs) }

// Live reports whether process p is spawned and not crashed.
func (c *Cluster) Live(p types.ProcessID) bool {
	if int(p) < 0 || int(p) >= len(c.procs) {
		return false
	}
	pr := c.procs[p]
	return pr != nil && !pr.crashed
}

// onViewChange observes every applied view at every process (the
// engines' OnConfig hook): the first view naming a pending joiner
// spawns it.
func (c *Cluster) onViewChange(_ types.ProcessID, v member.View) {
	if len(c.pendingJoins) == 0 {
		return
	}
	for _, m := range v.Members {
		if !c.pendingJoins[m] {
			continue
		}
		delete(c.pendingJoins, m)
		id := m
		view := v
		view.Members = append([]types.ProcessID(nil), v.Members...)
		c.At(c.now, func() { c.spawnJoiner(id, view) })
	}
}

// spawnJoiner brings a freshly admitted process online: a new proc slot
// (with durable and snapshot stores when the cluster has them), an
// engine seeded with the admitting view, and the restart-style empty
// recovered state that makes it announce itself and pull the decided
// prefix — or a snapshot — before participating.
func (c *Cluster) spawnJoiner(id types.ProcessID, v member.View) {
	if int(id) != len(c.procs) {
		c.errs = append(c.errs, fmt.Errorf("sim t=%v: joiner %s out of order (%d procs spawned)", c.now, id, len(c.procs)))
		return
	}
	p := &proc{
		id:       id,
		timerGen: make(map[engine.TimerID]uint64),
		obs:      obs.NewRecorder(c.opts.Obs),
	}
	p.env = &simEnv{c: c, p: p}
	c.procs = append(c.procs, p)
	if c.stores != nil {
		c.stores = append(c.stores, recovery.NewMemStore())
		c.stores[id].PersistBoot()
	}
	if c.snapStores != nil {
		c.snapStores = append(c.snapStores, rsm.NewMemStore())
	}
	if c.opts.StateMachine != nil {
		p.applier = c.newApplier(p)
	}
	st := &engine.RecoveredState{NextDecide: 1, NextSeq: 1}
	p.eng = c.newEngine(p, st, &v)
	c.exec(p, c.now, 0, p.eng.Start)
	// The joiner's failure detector learns which members are already down.
	for _, q := range c.procs {
		if q == nil || q == p || !q.crashed {
			continue
		}
		down := q.id
		c.At(c.now+c.model.FDDetect, func() {
			if p.crashed {
				return
			}
			c.exec(p, c.now, c.model.TimerPerFire, func() { p.eng.Suspect(down, true) })
		})
	}
}
