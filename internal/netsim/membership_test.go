package netsim

import (
	"fmt"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
)

// membershipHarness collects per-process delivery orders keyed by ID so
// the proc set can grow mid-run (joiners).
type membershipHarness struct {
	orders map[types.ProcessID][]types.MsgID
}

func newMembershipCluster(t *testing.T, stk types.Stack, n int, durable bool) (*Cluster, *membershipHarness) {
	t.Helper()
	h := &membershipHarness{orders: make(map[types.ProcessID][]types.MsgID)}
	c, err := NewCluster(Options{
		N:       n,
		Stack:   stk,
		Durable: durable,
		OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
			h.orders[p] = append(h.orders[p], d.Msg.ID)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, h
}

// submitTracked abcasts a body at p and records the admitted ID.
func submitTracked(c *Cluster, ids *[]types.MsgID, p types.ProcessID, at time.Duration) {
	idx := len(*ids)
	*ids = append(*ids, types.MsgID{})
	c.Abcast(p, at, []byte(fmt.Sprintf("m-%d", idx)), func(id types.MsgID, _ time.Duration, err error) {
		if err == nil {
			(*ids)[idx] = id
		}
	})
}

// assertSameOrder fails unless every listed process delivered the exact
// same sequence; it returns that sequence.
func assertSameOrder(t *testing.T, h *membershipHarness, procs []types.ProcessID) []types.MsgID {
	t.Helper()
	ref := h.orders[procs[0]]
	for _, p := range procs[1:] {
		got := h.orders[p]
		if len(got) != len(ref) {
			t.Fatalf("p%d delivered %d messages, p%d delivered %d",
				p, len(got), procs[0], len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order differs at %d: p%d=%v p%d=%v", i, p, got[i], procs[0], ref[i])
			}
		}
	}
	return ref
}

// assertNoDuplicates fails if the sequence delivers any ID twice or an
// ID that was never admitted.
func assertNoDuplicates(t *testing.T, seq []types.MsgID, admitted []types.MsgID) map[types.MsgID]bool {
	t.Helper()
	valid := map[types.MsgID]bool{}
	for _, id := range admitted {
		if id != (types.MsgID{}) {
			valid[id] = true
		}
	}
	seen := map[types.MsgID]bool{}
	for _, id := range seq {
		if seen[id] {
			t.Fatalf("duplicate delivery %v", id)
		}
		seen[id] = true
		if !valid[id] {
			t.Fatalf("delivered never-admitted %v", id)
		}
	}
	return seen
}

// assertViewAgreement fails unless the listed processes agree on the
// epoch → (activation, members) map for every epoch they share: no
// decided instance may straddle two configs, so the view sequence is
// itself totally ordered state. A joiner's history starts at its
// admitting view rather than at history's beginning, hence the
// intersection (but all listed processes must agree on the final epoch).
func assertViewAgreement(t *testing.T, c *Cluster, procs []types.ProcessID) {
	t.Helper()
	byEpoch := func(p types.ProcessID) map[uint64]struct {
		act     uint64
		members []types.ProcessID
	} {
		m := make(map[uint64]struct {
			act     uint64
			members []types.ProcessID
		})
		for _, v := range c.ViewHistory(p) {
			m[v.Epoch] = struct {
				act     uint64
				members []types.ProcessID
			}{v.Activation, v.Members}
		}
		return m
	}
	ref := byEpoch(procs[0])
	last := c.View(procs[0]).Epoch
	for _, p := range procs[1:] {
		if e := c.View(p).Epoch; e != last {
			t.Fatalf("p%d at epoch %d, p%d at epoch %d", p, e, procs[0], last)
		}
		for epoch, got := range byEpoch(p) {
			want, ok := ref[epoch]
			if !ok {
				continue
			}
			if got.act != want.act {
				t.Fatalf("epoch %d: p%d activates at %d, p%d at %d",
					epoch, p, got.act, procs[0], want.act)
			}
			if len(got.members) != len(want.members) {
				t.Fatalf("epoch %d member count differs across p%d and p%d", epoch, p, procs[0])
			}
			for j := range want.members {
				if got.members[j] != want.members[j] {
					t.Fatalf("epoch %d members differ across p%d and p%d", epoch, p, procs[0])
				}
			}
		}
	}
}

// TestMembershipQuorumShrink is the regression test for the cached-
// majority bug: with n=5 both engines used to freeze majority=3 at
// construction, so after removing two members the three-process view
// {0,1,2} would still demand three acks and a single further crash
// (leaving two correct processes — a majority of 3, not of 5) stalled
// the protocol forever. With per-instance views the two survivors keep
// deciding.
func TestMembershipQuorumShrink(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		stk := stk
		t.Run(stk.String(), func(t *testing.T) {
			t.Parallel()
			c, h := newMembershipCluster(t, stk, 5, false)
			var ids []types.MsgID

			// Load before, during and — critically — after the crashes.
			for i := 0; i < 20; i++ {
				submitTracked(c, &ids, 0, time.Duration(i)*50*time.Millisecond)
			}
			c.Remove(0, 4, 150*time.Millisecond)
			c.Remove(0, 3, 600*time.Millisecond)
			c.Crash(4, 1000*time.Millisecond)
			c.Crash(3, 1000*time.Millisecond)
			// Two correct processes left: a majority of the 3-member view,
			// but not of the boot view.
			c.Crash(2, 1300*time.Millisecond)
			for i := 0; i < 10; i++ {
				submitTracked(c, &ids, 0, 1600*time.Millisecond+time.Duration(i)*40*time.Millisecond)
			}

			c.Run(30 * time.Second)
			if errs := c.Errs(); len(errs) > 0 {
				t.Fatalf("engine error: %v", errs[0])
			}

			survivors := []types.ProcessID{0, 1}
			seq := assertSameOrder(t, h, survivors)
			seen := assertNoDuplicates(t, seq, ids)
			for i, id := range ids {
				if id != (types.MsgID{}) && !seen[id] {
					t.Fatalf("message %d (%v) never delivered", i, id)
				}
			}
			v := c.View(0)
			if len(v.Members) != 3 || v.Epoch != 2 {
				t.Fatalf("final view: epoch %d members %v", v.Epoch, v.Members)
			}
			assertViewAgreement(t, c, survivors)
		})
	}
}

// TestMembershipJoin admits a fourth process into a running 3-group:
// the joiner must bootstrap through state transfer, deliver the full
// prefix (including messages ordered before it existed), agree on the
// view history, and accept submissions of its own.
func TestMembershipJoin(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		stk := stk
		t.Run(stk.String(), func(t *testing.T) {
			t.Parallel()
			c, h := newMembershipCluster(t, stk, 3, true)
			var ids []types.MsgID

			for i := 0; i < 15; i++ {
				submitTracked(c, &ids, types.ProcessID(i%3), time.Duration(i)*40*time.Millisecond)
			}
			c.Join(0, 3, 700*time.Millisecond)
			for i := 0; i < 12; i++ {
				submitTracked(c, &ids, types.ProcessID(i%4), 1100*time.Millisecond+time.Duration(i)*40*time.Millisecond)
			}

			c.Run(30 * time.Second)
			if errs := c.Errs(); len(errs) > 0 {
				t.Fatalf("engine error: %v", errs[0])
			}
			if c.Procs() != 4 {
				t.Fatalf("joiner never spawned: %d procs", c.Procs())
			}

			all := []types.ProcessID{0, 1, 2, 3}
			seq := assertSameOrder(t, h, all)
			seen := assertNoDuplicates(t, seq, ids)
			for i, id := range ids {
				if id != (types.MsgID{}) && !seen[id] {
					t.Fatalf("message %d (%v) never delivered", i, id)
				}
			}
			for _, p := range all {
				v := c.View(p)
				if len(v.Members) != 4 || !v.Contains(3) {
					t.Fatalf("p%d view: epoch %d members %v", p, v.Epoch, v.Members)
				}
			}
			assertViewAgreement(t, c, all)
		})
	}
}

// TestMembershipRollingReplace is the acceptance scenario: a 3-node
// cluster under continuous load survives a rolling replacement of all
// three boot processes — join 3, retire 0; join 4, retire 1; join 5,
// retire 2 — with zero delivery gaps or duplicates and an identical
// total order at the final members, none of which existed at boot.
func TestMembershipRollingReplace(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		stk := stk
		t.Run(stk.String(), func(t *testing.T) {
			t.Parallel()
			c, h := newMembershipCluster(t, stk, 3, true)
			var ids []types.MsgID
			load := func(p types.ProcessID, from, to time.Duration) {
				for at := from; at < to; at += 50 * time.Millisecond {
					submitTracked(c, &ids, p, at)
				}
			}

			// Each boot process stops submitting well before its removal is
			// proposed, so its messages are ordered before the boundary.
			load(0, 0, 400*time.Millisecond)
			load(1, 0, 1100*time.Millisecond)
			load(2, 0, 1800*time.Millisecond)
			// Joiners pick up the load once they are caught up.
			load(3, 1100*time.Millisecond, 2600*time.Millisecond)
			load(4, 1800*time.Millisecond, 2800*time.Millisecond)
			load(5, 2500*time.Millisecond, 3000*time.Millisecond)

			c.Join(1, 3, 450*time.Millisecond)
			c.Remove(1, 0, 800*time.Millisecond)
			c.Crash(0, 1050*time.Millisecond)
			c.Join(2, 4, 1200*time.Millisecond)
			c.Remove(2, 1, 1500*time.Millisecond)
			c.Crash(1, 1750*time.Millisecond)
			c.Join(3, 5, 1900*time.Millisecond)
			c.Remove(3, 2, 2200*time.Millisecond)
			c.Crash(2, 2450*time.Millisecond)

			c.Run(30 * time.Second)
			if errs := c.Errs(); len(errs) > 0 {
				t.Fatalf("engine error: %v", errs[0])
			}
			if c.Procs() != 6 {
				t.Fatalf("expected 6 procs, have %d", c.Procs())
			}

			final := []types.ProcessID{3, 4, 5}
			seq := assertSameOrder(t, h, final)
			seen := assertNoDuplicates(t, seq, ids)
			// Zero gaps: every admitted message was delivered — the boot
			// processes stopped submitting long before their removal, the
			// joiners stayed members to the end.
			for i, id := range ids {
				if id != (types.MsgID{}) && !seen[id] {
					t.Fatalf("message %d (%v) never delivered", i, id)
				}
			}
			for _, p := range final {
				v := c.View(p)
				if len(v.Members) != 3 || !v.Contains(3) || !v.Contains(4) || !v.Contains(5) {
					t.Fatalf("p%d final view: epoch %d members %v", p, v.Epoch, v.Members)
				}
			}
			assertViewAgreement(t, c, final)
			if len(seq) < 60 {
				t.Fatalf("suspiciously few deliveries under load: %d", len(seq))
			}
		})
	}
}
