// Package netsim is a deterministic discrete-event simulator for the
// atomic broadcast stacks: virtual time, a per-process CPU server with a
// calibrated cost model, per-NIC egress bandwidth and propagation delay,
// seeded workload generation and fault injection.
//
// The same engine code (internal/modular, internal/monolithic) that runs
// over real TCP in internal/runtime runs here unchanged; the simulator
// merely drives HandleMessage/HandleTimer/Abcast in virtual time and
// charges CPU according to the measured work (message sizes and dispatch
// counts). Identical seeds and options yield identical traces.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"modab/internal/dedup"
	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/modular"
	"modab/internal/monolithic"
	"modab/internal/obs"
	"modab/internal/recovery"
	"modab/internal/rsm"
	"modab/internal/stream"
	"modab/internal/trace"
	"modab/internal/types"
	"modab/internal/wire"
)

// Options configures a simulated cluster.
type Options struct {
	// N is the group size (required).
	N int
	// Stack selects the implementation under test (required).
	Stack types.Stack
	// Engine carries the protocol tunables; the zero value means
	// engine.DefaultConfig(N).
	Engine engine.Config
	// Model is the hardware cost model; the zero value means
	// DefaultModel().
	Model CostModel
	// Seed drives workload jitter. Same seed, same trace.
	Seed int64
	// OnDeliver, when set, observes every adelivery synchronously in
	// virtual time — the measurement harness uses it for exact
	// timestamps. For pull-based consumption use Cluster.Deliveries.
	OnDeliver func(p types.ProcessID, d engine.Delivery, at time.Duration)
	// DeliveryBuffer is the default per-subscriber buffer for Deliveries;
	// 0 means stream.DefaultBuffer.
	DeliveryBuffer int
	// DeliveryOverflow is the default overflow policy for Deliveries.
	// Note that stream.Block makes the simulation's Run stall in real
	// time until the subscriber drains.
	DeliveryOverflow stream.Policy
	// Durable gives every process a simulated durable store (an in-memory
	// write-ahead log that survives Crash), enabling Restart: crash-recovery
	// scenarios then run fully deterministically under virtual time.
	Durable bool
	// StateMachine, when non-nil, gives every process a replicated state
	// machine (the factory is called once per process and once more per
	// restart) fed synchronously from the delivery path through an
	// rsm.Applier. Snapshot state transfer between engines and
	// snapshot-anchored restarts switch on with it.
	StateMachine func() rsm.StateMachine
	// SnapshotEvery is the applier's snapshot cadence in instances
	// (rsm.Options.Interval); 0 disables automatic snapshots.
	SnapshotEvery uint64
	// Obs tunes the per-process observability recorders. Observability is
	// always on under the simulator — recording only reads the frozen
	// handler clock, so the traces stay bit-for-bit deterministic — and
	// the zero value selects the defaults (sample 1 in 32 messages).
	Obs obs.Config
}

// Cluster is a simulated group of processes running one stack.
type Cluster struct {
	opts  Options
	model CostModel
	now   time.Duration
	seq   uint64
	queue eventQueue
	procs []*proc
	// stores are the per-process simulated durable stores (Options.Durable);
	// they survive Crash, which is what makes Restart possible.
	stores []*recovery.MemStore
	// snapStores are the per-process snapshot stores
	// (Options.StateMachine); like stores they survive Crash, modelling
	// snapshot files that outlive the process.
	snapStores []*rsm.MemStore
	rng        *rand.Rand
	hub        *stream.Hub[engine.Event]
	// linkFaults holds the per-directed-link fault state (internal/netsim
	// faults.go); nil or empty entries leave the send path untouched.
	// linkOrder records link creation order for deterministic sweeps.
	linkFaults map[linkKey]*linkState
	linkOrder  []linkKey
	// streamDropped counts drops at cluster-level subscriptions; Stats
	// folds it into the totals.
	streamDropped atomic.Int64
	// errs collects engine errors (malformed messages etc.); tests assert
	// it stays empty.
	errs []error
	// pendingJoins are processes whose OpAdd was submitted but whose view
	// has not yet been observed at any correct process; the first
	// OnConfig naming one spawns it (membership.go).
	pendingJoins map[types.ProcessID]bool
}

// proc is one simulated process.
type proc struct {
	id       types.ProcessID
	eng      engine.Engine
	counters trace.Counters
	env      *simEnv

	// obs is the process's observability recorder; it survives Crash and
	// Restart (like counters), accumulating across incarnations.
	obs *obs.Recorder

	// applier is the process's state machine applier (Options.StateMachine);
	// deliveries feed it synchronously inside exec.
	applier *rsm.Applier

	cpuFreeAt time.Duration
	nicFreeAt time.Duration
	crashed   bool
	timerGen  map[engine.TimerID]uint64

	// busy accumulates CPU time consumed (utilization reporting).
	busy time.Duration
}

// eventKind discriminates queue entries.
type eventKind uint8

const (
	evMsg eventKind = iota + 1
	evTimer
	evCall
)

// event is one queue entry.
type event struct {
	at   time.Duration
	seq  uint64
	kind eventKind
	proc types.ProcessID
	// evMsg fields.
	from types.ProcessID
	data []byte
	// evTimer fields.
	timerID  engine.TimerID
	timerGen uint64
	// evCall field.
	fn func()
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewCluster builds a simulated cluster. The engines are constructed and
// started immediately (at virtual time zero).
func NewCluster(opts Options) (*Cluster, error) {
	if opts.N < 1 {
		return nil, types.ErrEmptyGroup
	}
	if opts.Stack != types.Modular && opts.Stack != types.Monolithic {
		return nil, fmt.Errorf("%w: unknown stack %v", types.ErrBadConfig, opts.Stack)
	}
	if opts.Engine.N == 0 {
		opts.Engine = engine.DefaultConfig(opts.N)
	}
	if opts.Engine.N != opts.N {
		return nil, fmt.Errorf("%w: engine config N=%d, cluster N=%d", types.ErrBadConfig, opts.Engine.N, opts.N)
	}
	if err := opts.Engine.Validate(); err != nil {
		return nil, err
	}
	if opts.Model == (CostModel{}) {
		opts.Model = DefaultModel()
	}
	c := &Cluster{
		opts:         opts,
		model:        opts.Model,
		procs:        make([]*proc, opts.N),
		rng:          rand.New(rand.NewSource(opts.Seed)),
		pendingJoins: make(map[types.ProcessID]bool),
	}
	c.hub = stream.NewHub[engine.Event](opts.DeliveryBuffer, opts.DeliveryOverflow,
		func() { c.streamDropped.Add(1) })
	heap.Init(&c.queue)
	if opts.Durable {
		c.stores = make([]*recovery.MemStore, opts.N)
		for i := range c.stores {
			c.stores[i] = recovery.NewMemStore()
			c.stores[i].PersistBoot()
		}
	}
	if opts.StateMachine != nil {
		c.snapStores = make([]*rsm.MemStore, opts.N)
		for i := range c.snapStores {
			c.snapStores[i] = rsm.NewMemStore()
		}
	}
	for i := 0; i < opts.N; i++ {
		p := &proc{
			id:       types.ProcessID(i),
			timerGen: make(map[engine.TimerID]uint64),
			obs:      obs.NewRecorder(opts.Obs),
		}
		p.env = &simEnv{c: c, p: p}
		if opts.StateMachine != nil {
			p.applier = c.newApplier(p)
		}
		p.eng = c.newEngine(p, nil, nil)
		c.procs[i] = p
	}
	for _, p := range c.procs {
		c.exec(p, 0, 0, p.eng.Start)
	}
	return c, nil
}

// newApplier builds a fresh applier incarnation for process p over its
// surviving snapshot store, with write-ahead-log truncation hooked to
// snapshot completion.
func (c *Cluster) newApplier(p *proc) *rsm.Applier {
	return rsm.NewApplier(c.opts.StateMachine(), rsm.Options{
		N:        c.opts.N,
		Store:    c.snapStores[p.id],
		Interval: c.opts.SnapshotEvery,
		Counters: &p.counters,
		Obs:      p.obs,
		Now:      p.env.Now,
		OnSnapshot: func(snap uint64, covered func(m wire.AppMsg) bool) {
			if c.stores == nil {
				return
			}
			if n := c.stores[p.id].TruncateBelow(snap, covered); n > 0 {
				p.counters.WalTruncatedSegments.Add(int64(n))
			}
		},
	})
}

// newEngine constructs the engine of process p, wiring its simulated
// durable store (if any), the recovered state of a restart, and — for a
// joiner's first incarnation — the view it was admitted into.
func (c *Cluster) newEngine(p *proc, recovered *engine.RecoveredState, initView *member.View) engine.Engine {
	cfg := c.opts.Engine
	if c.stores != nil {
		cfg.Persist = c.stores[p.id]
	}
	if p.applier != nil {
		cfg.Snapshots = p.applier.Hooks()
	}
	cfg.Obs = p.obs
	cfg.Recovered = recovered
	cfg.InitialView = initView
	id := p.id
	cfg.OnConfig = func(v member.View, _ member.Op) { c.onViewChange(id, v) }
	switch c.opts.Stack {
	case types.Monolithic:
		return monolithic.New(p.env, cfg)
	default:
		return modular.New(p.env, cfg)
	}
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.now }

// N returns the group size.
func (c *Cluster) N() int { return c.opts.N }

// Errs returns engine errors collected so far (nil in healthy runs).
func (c *Cluster) Errs() []error { return c.errs }

// Counters returns a snapshot of one process's counters.
func (c *Cluster) Counters(p types.ProcessID) trace.Snapshot {
	return c.procs[p].counters.Snapshot()
}

// TotalCounters returns the group-wide counter totals, including drops
// at cluster-level delivery streams.
func (c *Cluster) TotalCounters() trace.Snapshot {
	var total trace.Snapshot
	for _, p := range c.procs {
		total.Add(p.counters.Snapshot())
	}
	total.StreamDropped += c.streamDropped.Load()
	return total
}

// Stats returns the uniform whole-cluster snapshot (same shape as the
// real-time drivers').
func (c *Cluster) Stats() trace.Stats {
	st := trace.Stats{N: len(c.procs), PerProcess: make([]trace.Snapshot, len(c.procs))}
	for i, p := range c.procs {
		st.PerProcess[i] = p.counters.Snapshot()
		st.Total.Add(st.PerProcess[i])
	}
	st.Total.StreamDropped += c.streamDropped.Load()
	return st
}

// Deliveries subscribes to the cluster-wide adelivery stream: every
// adelivery at every process, tagged with the delivering process and the
// virtual delivery time. Values are published while Run executes events,
// from Run's goroutine — with the Block policy a full subscriber stalls
// the simulation in real time (virtual time is unaffected). The channel
// closes after Close.
func (c *Cluster) Deliveries(opts ...stream.SubOption) *stream.Sub[engine.Event] {
	return c.hub.Subscribe(opts...)
}

// Close ends the cluster's delivery streams; subscribers drain and see
// their channels closed. The cluster itself holds no other resources —
// Run can still be called, but further deliveries reach no stream.
func (c *Cluster) Close() {
	c.hub.Close()
}

// Utilization returns the fraction of virtual time process p's CPU was
// busy, up to the current time.
func (c *Cluster) Utilization(p types.ProcessID) float64 {
	if c.now <= 0 {
		return 0
	}
	return float64(c.procs[p].busy) / float64(c.now)
}

// Pending returns the engine's count of unordered messages at p.
func (c *Cluster) Pending(p types.ProcessID) int { return c.procs[p].eng.Pending() }

// Applier returns process p's state machine applier, or nil when the
// cluster runs without Options.StateMachine. The harness reads applied
// indexes, awaits results, and compares state digests through it.
func (c *Cluster) Applier(p types.ProcessID) *rsm.Applier { return c.procs[p].applier }

// Obs returns process p's observability recorder (latency histograms and
// the sampled lifecycle trace). The recorder survives crashes and
// restarts, accumulating across incarnations.
func (c *Cluster) Obs(p types.ProcessID) *obs.Recorder { return c.procs[p].obs }

// Events returns the number of queued simulation events. A cluster that
// reaches zero has quiesced: no message, timer, or fault event is
// outstanding (the chaos harness's liveness check keys off it).
func (c *Cluster) Events() int { return c.queue.Len() }

// push schedules an event.
func (c *Cluster) push(e *event) {
	c.seq++
	e.seq = c.seq
	heap.Push(&c.queue, e)
}

// At schedules a harness callback at the given virtual time (or now,
// whichever is later). Callbacks run outside any process CPU.
func (c *Cluster) At(t time.Duration, fn func()) {
	if t < c.now {
		t = c.now
	}
	c.push(&event{at: t, kind: evCall, proc: types.Nobody, fn: fn})
}

// Abcast schedules an abcast submission at process p at the given time.
// report, if non-nil, observes the outcome: the assigned ID and t0 (the
// time the abcast call completed), or the admission error.
func (c *Cluster) Abcast(p types.ProcessID, at time.Duration, body []byte,
	report func(id types.MsgID, t0 time.Duration, err error)) {
	if at < c.now {
		at = c.now
	}
	c.push(&event{at: at, kind: evCall, proc: types.Nobody, fn: func() {
		if p < 0 || int(p) >= len(c.procs) {
			// A joiner that has not spawned yet behaves like a crashed
			// process for submissions.
			if report != nil {
				report(types.MsgID{}, c.now, types.ErrCrashed)
			}
			return
		}
		pr := c.procs[p]
		if pr.crashed {
			if report != nil {
				report(types.MsgID{}, c.now, types.ErrCrashed)
			}
			return
		}
		var id types.MsgID
		var err error
		end := c.exec(pr, c.now, c.model.AbcastPerMsg, func() {
			id, err = pr.eng.Abcast(body)
		})
		if report != nil {
			report(id, end, err)
		}
	}})
}

// Crash stops process p at the given time: its pending and future events
// are discarded and every other process's failure detector reports it
// after the configured detection delay.
func (c *Cluster) Crash(p types.ProcessID, at time.Duration) {
	c.At(at, func() {
		pr := c.procs[p]
		if pr.crashed {
			return
		}
		pr.crashed = true
		for _, q := range c.procs {
			if q.id == p || q.crashed {
				continue
			}
			qp := q
			c.At(c.now+c.model.FDDetect, func() {
				if qp.crashed {
					return
				}
				c.exec(qp, c.now, c.model.TimerPerFire, func() {
					qp.eng.Suspect(p, true)
				})
			})
		}
	})
}

// Restart brings a crashed process back at the given time — the
// crash-recovery model (Options.Durable required). The new incarnation
// replays the process's simulated durable store, announces itself, and
// performs state transfer from a live peer before resuming; the previous
// incarnation's queued timers are invalidated, and every live process's
// failure detector reports the recovered peer unsuspected after the
// detection delay (the restarted process likewise suspects peers that are
// still down).
func (c *Cluster) Restart(p types.ProcessID, at time.Duration) {
	c.At(at, func() {
		pr := c.procs[p]
		if !pr.crashed {
			return
		}
		if c.stores == nil {
			c.errs = append(c.errs, fmt.Errorf("sim t=%v %s: Restart requires Options.Durable", c.now, p))
			return
		}
		// Snapshot-anchored restart: restore the state machine from the
		// newest local snapshot (if any), then replay only the log suffix
		// above it — both into the engine's recovered state and into the
		// fresh applier incarnation. Without a state machine this
		// degenerates to the plain full-log replay.
		var snap uint64
		var snapDedup dedup.Map
		if pr.applier != nil {
			pr.applier = c.newApplier(pr)
			var err error
			snap, snapDedup, err = pr.applier.Bootstrap()
			if err != nil {
				c.errs = append(c.errs, fmt.Errorf("sim t=%v %s: snapshot bootstrap: %w", c.now, p, err))
				return
			}
		}
		st, err := recovery.ReplayStateFrom(c.stores[p], c.opts.N, p, snap, snapDedup)
		if err != nil {
			c.errs = append(c.errs, fmt.Errorf("sim t=%v %s: replay: %w", c.now, p, err))
			return
		}
		if st == nil {
			// Crashed before logging anything: rejoin with empty state, but
			// still as a restart — catch-up must run.
			st = &engine.RecoveredState{NextDecide: 1, NextSeq: 1}
		}
		if pr.applier != nil {
			// Re-apply the replayed suffix in delivery order (the decided
			// batch, deterministically sorted, is exactly what the previous
			// incarnation adelivered); the applier's dedup absorbs messages
			// the snapshot already covers.
			if err := c.stores[p].Replay(func(r recovery.Rec) error {
				if r.Kind != recovery.RecDecision || r.Instance <= snap {
					return nil
				}
				ordered := append(wire.Batch(nil), r.Batch...)
				ordered.SortDeterministic()
				for _, m := range ordered {
					pr.applier.Apply(engine.Delivery{Msg: m, Instance: r.Instance})
				}
				return nil
			}); err != nil {
				c.errs = append(c.errs, fmt.Errorf("sim t=%v %s: suffix replay: %w", c.now, p, err))
				return
			}
		}
		c.stores[p].PersistBoot()
		// Invalidate every timer armed by the previous incarnation; queued
		// fires carry the old generation and are dropped on dispatch.
		for id := range pr.timerGen {
			pr.timerGen[id]++
		}
		pr.crashed = false
		pr.eng = c.newEngine(pr, st, nil)
		c.exec(pr, c.now, 0, pr.eng.Start)
		// Failure detection: the survivors hear the recovered process and
		// unsuspect it; the recovered process detects peers still down.
		for _, q := range c.procs {
			if q.id == p {
				continue
			}
			qp := q
			if qp.crashed {
				down := qp.id
				c.At(c.now+c.model.FDDetect, func() {
					if pr.crashed {
						return
					}
					c.exec(pr, c.now, c.model.TimerPerFire, func() {
						pr.eng.Suspect(down, true)
					})
				})
				continue
			}
			c.At(c.now+c.model.FDDetect, func() {
				if qp.crashed {
					return
				}
				c.exec(qp, c.now, c.model.TimerPerFire, func() {
					qp.eng.Suspect(p, false)
				})
			})
		}
		// Link faults outlive the crash, but the suspicion state attached
		// to them does not: inbound links (k.to == p) fed the dead
		// engine's failure detector, and outbound links (k.from == p) may
		// have healed while p was down — the unsuspect branch of fdCheck
		// skips crashed senders, leaving the flag stale, which would
		// silently swallow the suspicion of a LATER partition on the same
		// link. Reset both directions; still-blocked links re-report after
		// the detection delay (outbound ones re-suspecting at the observer
		// right after the crash-path unsuspect scheduled above, which runs
		// first at the same virtual time).
		for _, k := range c.linkOrder {
			if k.to != p && k.from != p {
				continue
			}
			key := k
			st := c.linkFaults[key]
			st.suspected = false
			if st.blocked {
				c.At(c.now+c.model.FDDetect, func() { c.fdCheck(key) })
			}
		}
	})
}

// SuspectWindow injects a wrong suspicion: process q suspects p during
// [at, at+dur) although p is alive.
func (c *Cluster) SuspectWindow(q, p types.ProcessID, at, dur time.Duration) {
	c.At(at, func() {
		qp := c.procs[q]
		if qp.crashed {
			return
		}
		c.exec(qp, c.now, c.model.TimerPerFire, func() { qp.eng.Suspect(p, true) })
	})
	c.At(at+dur, func() {
		qp := c.procs[q]
		if qp.crashed {
			return
		}
		c.exec(qp, c.now, c.model.TimerPerFire, func() { qp.eng.Suspect(p, false) })
	})
}

// Step processes the single next queued event, advancing virtual time to
// it. It reports false when the queue is empty. Step is how callers that
// need fine-grained control (e.g. blocking submission in virtual time)
// interleave with the simulation; Run remains the bulk driver.
func (c *Cluster) Step() bool {
	if c.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*event)
	c.now = e.at
	c.dispatch(e)
	return true
}

// Run processes events until the queue is exhausted or virtual time
// exceeds until. It returns the virtual time reached.
func (c *Cluster) Run(until time.Duration) time.Duration {
	for c.queue.Len() > 0 {
		e := c.queue[0]
		if e.at > until {
			c.now = until
			return c.now
		}
		heap.Pop(&c.queue)
		c.now = e.at
		c.dispatch(e)
	}
	if c.now < until {
		c.now = until
	}
	return c.now
}

// RunIdle processes events until the queue is empty (engines must
// quiesce; periodic timers re-arm only while work is outstanding).
// The safety valve bounds runaway executions.
func (c *Cluster) RunIdle(safetyValve time.Duration) time.Duration {
	return c.Run(c.now + safetyValve)
}

// dispatch executes one event.
func (c *Cluster) dispatch(e *event) {
	switch e.kind {
	case evCall:
		e.fn()
	case evMsg:
		p := c.procs[e.proc]
		if p.crashed {
			return
		}
		p.counters.MsgsRecv.Add(1)
		p.counters.BytesRecv.Add(int64(len(e.data)))
		c.exec(p, e.at, c.model.recvCost(len(e.data)), func() {
			if err := p.eng.HandleMessage(e.from, e.data); err != nil {
				c.errs = append(c.errs, fmt.Errorf("sim t=%v %s: %w", e.at, p.id, err))
			}
		})
	case evTimer:
		p := c.procs[e.proc]
		if p.crashed || p.timerGen[e.timerID] != e.timerGen {
			return
		}
		c.exec(p, e.at, c.model.TimerPerFire, func() {
			p.eng.HandleTimer(e.timerID)
		})
	}
}

// exec runs one engine call on p's CPU at virtual time at (or when the
// CPU frees up), charges baseCost plus the per-dispatch and per-send
// costs measured during the call, and flushes buffered sends through the
// NIC model. It returns the time the handler completed.
func (c *Cluster) exec(p *proc, at time.Duration, baseCost time.Duration, fn func()) time.Duration {
	start := at
	if p.cpuFreeAt > start {
		start = p.cpuFreeAt
	}
	env := p.env
	env.handlerNow = start
	env.outbox = env.outbox[:0]
	env.deliveries = env.deliveries[:0]
	d0 := p.counters.Dispatches.Load()
	fn()
	dd := p.counters.Dispatches.Load() - d0

	cost := baseCost + time.Duration(dd)*c.model.PerDispatch
	for _, om := range env.outbox {
		cost += c.model.sendCost(len(om.data))
	}
	end := start + cost
	p.cpuFreeAt = end
	p.busy += cost

	// NIC egress: messages serialize in emission order on the sender's
	// link, then arrive after the propagation delay (possibly degraded by
	// injected link faults).
	for _, om := range env.outbox {
		sendStart := end
		if p.nicFreeAt > sendStart {
			sendStart = p.nicFreeAt
		}
		ser := c.model.serialization(len(om.data))
		p.nicFreeAt = sendStart + ser
		c.transmit(p.id, om.to, om.data, sendStart+ser)
	}
	// The state machine applies synchronously in the delivery path, before
	// observers run — an OnDeliver callback already sees the applied state.
	if p.applier != nil {
		for _, d := range env.deliveries {
			p.applier.Apply(d)
		}
	}
	// Application upcalls complete when the handler does.
	if c.opts.OnDeliver != nil {
		for _, d := range env.deliveries {
			c.opts.OnDeliver(p.id, d, end)
		}
	}
	if c.hub.HasSubscribers() {
		for _, d := range env.deliveries {
			c.hub.Publish(engine.Event{P: p.id, D: d, At: end})
		}
	}
	return end
}

// outMsg is one buffered send.
type outMsg struct {
	to   types.ProcessID
	data []byte
}

// simEnv implements engine.Env for one simulated process.
type simEnv struct {
	c          *Cluster
	p          *proc
	handlerNow time.Duration
	outbox     []outMsg
	deliveries []engine.Delivery
}

var _ engine.Env = (*simEnv)(nil)

func (e *simEnv) Self() types.ProcessID     { return e.p.id }
func (e *simEnv) N() int                    { return e.c.opts.N }
func (e *simEnv) Now() time.Duration        { return e.handlerNow }
func (e *simEnv) Counters() *trace.Counters { return &e.p.counters }
func (e *simEnv) Deliver(d engine.Delivery) { e.deliveries = append(e.deliveries, d) }

func (e *simEnv) Send(to types.ProcessID, data []byte) {
	// The upper bound is the spawned-process count, not the boot size:
	// joiners admitted by config changes extend the ID space.
	if to == e.p.id || to < 0 || int(to) >= len(e.c.procs) {
		return
	}
	e.p.counters.MsgsSent.Add(1)
	e.p.counters.BytesSent.Add(int64(len(data)))
	e.outbox = append(e.outbox, outMsg{to: to, data: data})
}

func (e *simEnv) SetTimer(id engine.TimerID, d time.Duration) {
	e.p.timerGen[id]++
	e.c.push(&event{
		at:       e.handlerNow + d,
		kind:     evTimer,
		proc:     e.p.id,
		timerID:  id,
		timerGen: e.p.timerGen[id],
	})
}

func (e *simEnv) CancelTimer(id engine.TimerID) {
	e.p.timerGen[id]++
}
