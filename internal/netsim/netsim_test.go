package netsim

import (
	"math"
	"testing"
	"time"

	"modab/internal/analytical"
	"modab/internal/engine"
	"modab/internal/types"
)

// TestDeterminism: identical options and seed must yield bit-identical
// traces (counters, latency, throughput).
func TestDeterminism(t *testing.T) {
	run := func() (float64, float64, int64, int64) {
		lc, err := NewLoadedCluster(Options{N: 3, Stack: types.Modular, Seed: 11},
			Workload{OfferedLoad: 1500, Size: 4096}, time.Second, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		lc.Run(4 * time.Second)
		tot := lc.TotalCounters()
		return lc.Recorder.MeanLatency(), lc.Recorder.Throughput(), tot.MsgsSent, tot.BytesSent
	}
	l1, t1, m1, b1 := run()
	l2, t2, m2, b2 := run()
	if l1 != l2 || t1 != t2 || m1 != m2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%v,%d,%d) vs (%v,%v,%d,%d)", l1, t1, m1, b1, l2, t2, m2, b2)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed int64) int64 {
		lc, err := NewLoadedCluster(Options{N: 3, Stack: types.Monolithic, Seed: seed},
			Workload{OfferedLoad: 1000, Size: 1024}, time.Second, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		lc.Run(3 * time.Second)
		return lc.TotalCounters().BytesSent
	}
	if run(1) == run(2) {
		t.Skip("seeds coincidentally identical byte counts; acceptable but unusual")
	}
}

// TestAnalyticalMessageCountsExact pins §5.2.1 under saturation: the
// measured messages per decided instance equal the closed forms —
// (n-1)(M+2+⌊(n+1)/2⌋) for modular (with the measured M), 2(n-1) for
// monolithic.
func TestAnalyticalMessageCountsExact(t *testing.T) {
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
			lc, err := NewLoadedCluster(Options{N: n, Stack: stk, Seed: 5},
				Workload{OfferedLoad: 4000, Size: 16384}, 2*time.Second, 4*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			lc.Run(7 * time.Second)
			if errs := lc.Errs(); len(errs) > 0 {
				t.Fatalf("engine errors: %v", errs[0])
			}
			tot := lc.TotalCounters()
			decisions := float64(tot.ConsensusDecided) / float64(n)
			perDec := float64(tot.MsgsSent) / decisions
			m := tot.AvgBatch()
			var want float64
			switch stk {
			case types.Modular:
				want = float64(n-1) * (m + 2 + float64((n+1)/2))
			case types.Monolithic:
				want = float64(analytical.MonolithicMessages(n))
			}
			if math.Abs(perDec-want)/want > 0.02 {
				t.Errorf("n=%d %s: %.2f msgs/decision, analytical %.2f (M=%.2f)",
					n, stk, perDec, want, m)
			}
		}
	}
}

// TestAnalyticalDataVolume pins §5.2.2: payload bytes per instance track
// the closed forms 2(n-1)M·l (modular) and at most (n-1)(1+1/n)M·l
// (monolithic; the coordinator's own above-average share only lowers it).
func TestAnalyticalDataVolume(t *testing.T) {
	const l = 16384
	for _, n := range []int{3, 7} {
		for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
			lc, err := NewLoadedCluster(Options{N: n, Stack: stk, Seed: 5},
				Workload{OfferedLoad: 4000, Size: l}, 2*time.Second, 4*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			lc.Run(7 * time.Second)
			tot := lc.TotalCounters()
			decisions := float64(tot.ConsensusDecided) / float64(n)
			perDec := float64(tot.PayloadBytesSent) / decisions
			m := tot.AvgBatch()
			switch stk {
			case types.Modular:
				want := 2 * float64(n-1) * m * l
				if math.Abs(perDec-want)/want > 0.03 {
					t.Errorf("n=%d modular: %.0f payload B/decision, analytical %.0f", n, perDec, want)
				}
			case types.Monolithic:
				upper := float64(n-1) * (1 + 1/float64(n)) * m * l
				lower := float64(n-1) * m * l // proposal fan-out alone
				if perDec > upper*1.03 || perDec < lower*0.97 {
					t.Errorf("n=%d monolithic: %.0f payload B/decision outside [%.0f, %.0f]",
						n, perDec, lower, upper)
				}
			}
		}
	}
}

// TestModularOverheadDirection asserts the paper's headline orderings at
// saturation: monolithic sustains higher throughput and no worse latency,
// and the modular stack moves at least 40% more payload bytes.
func TestModularOverheadDirection(t *testing.T) {
	type res struct{ lat, thr, bytesPerDec float64 }
	measure := func(n int, stk types.Stack) res {
		lc, err := NewLoadedCluster(Options{N: n, Stack: stk, Seed: 9},
			Workload{OfferedLoad: 5000, Size: 16384}, 2*time.Second, 4*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		lc.Run(7 * time.Second)
		tot := lc.TotalCounters()
		dec := float64(tot.ConsensusDecided) / float64(n)
		return res{lc.Recorder.MeanLatency(), lc.Recorder.Throughput(),
			float64(tot.PayloadBytesSent) / dec / tot.AvgBatch()}
	}
	for _, n := range []int{3, 7} {
		mod, mono := measure(n, types.Modular), measure(n, types.Monolithic)
		if mono.thr <= mod.thr {
			t.Errorf("n=%d: monolithic throughput %.0f <= modular %.0f", n, mono.thr, mod.thr)
		}
		if mono.lat > mod.lat*1.05 {
			t.Errorf("n=%d: monolithic latency %.2fms worse than modular %.2fms",
				n, mono.lat*1e3, mod.lat*1e3)
		}
		if mod.bytesPerDec < 1.4*mono.bytesPerDec {
			t.Errorf("n=%d: modular data per message %.0f not >= 1.4x monolithic %.0f",
				n, mod.bytesPerDec, mono.bytesPerDec)
		}
	}
}

// TestCrashUnderLoadPreservesTotalOrder crashes the round-1 coordinator
// mid-run; survivors must keep a single total order and keep delivering.
func TestCrashUnderLoadPreservesTotalOrder(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			const n = 5
			col := newCollector(n)
			c, err := NewCluster(Options{N: n, Stack: stk, Seed: 3, OnDeliver: col.onDeliver})
			if err != nil {
				t.Fatal(err)
			}
			rec := NewRecorder(n, 0, time.Hour)
			InstallWorkload(c, Workload{OfferedLoad: 800, Size: 512, End: 3 * time.Second}, rec)
			c.Crash(0, 900*time.Millisecond)
			c.Run(10 * time.Second)
			if errs := c.Errs(); len(errs) > 0 {
				t.Fatalf("engine errors: %v", errs[0])
			}
			// Survivors agree on a common prefix (p0's log stops early).
			ref := col.orders[1]
			if len(ref) == 0 {
				t.Fatal("no deliveries at survivors")
			}
			for p := 2; p < n; p++ {
				got := col.orders[p]
				m := len(ref)
				if len(got) < m {
					m = len(got)
				}
				for i := 0; i < m; i++ {
					if got[i] != ref[i] {
						t.Fatalf("order violation at %d: %v vs %v", i, ref[i], got[i])
					}
				}
			}
			// Progress after the crash: deliveries include post-crash
			// abcasts (the workload runs to 3s, crash at 0.9s).
			postCrash := 0
			for _, id := range ref {
				if id.Sender != 0 {
					postCrash++
				}
			}
			if postCrash == 0 {
				t.Fatal("no survivor messages delivered after crash")
			}
		})
	}
}

// TestWrongSuspicionIsHarmless injects a transient wrong suspicion of the
// coordinator; safety and liveness must be unaffected.
func TestWrongSuspicionIsHarmless(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			const n = 3
			col := newCollector(n)
			c, err := NewCluster(Options{N: n, Stack: stk, Seed: 8, OnDeliver: col.onDeliver})
			if err != nil {
				t.Fatal(err)
			}
			rec := NewRecorder(n, 0, time.Hour)
			InstallWorkload(c, Workload{OfferedLoad: 600, Size: 256, End: 2 * time.Second}, rec)
			// p2 wrongly suspects the coordinator for 300ms mid-run.
			c.SuspectWindow(1, 0, 700*time.Millisecond, 300*time.Millisecond)
			c.Run(8 * time.Second)
			if errs := c.Errs(); len(errs) > 0 {
				t.Fatalf("engine errors: %v", errs[0])
			}
			col.checkTotalOrder(t)
			if len(col.orders[0]) == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

// TestThroughputTracksOfferedLoadBelowSaturation: below the plateau the
// system delivers what is offered (Fig 10's left side).
func TestThroughputTracksOfferedLoadBelowSaturation(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		lc, err := NewLoadedCluster(Options{N: 3, Stack: stk, Seed: 2},
			Workload{OfferedLoad: 300, Size: 16384}, time.Second, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		lc.Run(5 * time.Second)
		thr := lc.Recorder.Throughput()
		if math.Abs(thr-300)/300 > 0.05 {
			t.Errorf("%s: throughput %.1f, offered 300", stk, thr)
		}
		if lc.Recorder.Blocked != 0 {
			t.Errorf("%s: %d blocked below saturation", stk, lc.Recorder.Blocked)
		}
	}
}

// TestLatencyPlateausUnderOverload: flow control must bound latency as
// offered load grows (Fig 8's plateau).
func TestLatencyPlateausUnderOverload(t *testing.T) {
	lat := func(load float64) float64 {
		lc, err := NewLoadedCluster(Options{N: 3, Stack: types.Modular, Seed: 4},
			Workload{OfferedLoad: load, Size: 16384}, 2*time.Second, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		lc.Run(6 * time.Second)
		return lc.Recorder.MeanLatency()
	}
	l4, l7 := lat(4000), lat(7000)
	if l7 > 1.35*l4 {
		t.Errorf("latency not plateaued: %.2fms at 4000 vs %.2fms at 7000", l4*1e3, l7*1e3)
	}
}

func TestUtilizationAndPendingAccessors(t *testing.T) {
	lc, err := NewLoadedCluster(Options{N: 3, Stack: types.Monolithic, Seed: 1},
		Workload{OfferedLoad: 2000, Size: 8192}, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lc.Run(3 * time.Second)
	u := lc.Utilization(0)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if lc.Pending(0) < 0 {
		t.Error("negative pending")
	}
	if lc.N() != 3 {
		t.Error("N accessor")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Options{N: 0, Stack: types.Modular}); err == nil {
		t.Error("accepted empty group")
	}
	if _, err := NewCluster(Options{N: 3}); err == nil {
		t.Error("accepted zero stack")
	}
	if _, err := NewCluster(Options{N: 3, Stack: types.Modular,
		Engine: engine.Config{N: 5, Window: 1, DecisionHorizon: 1}}); err == nil {
		t.Error("accepted mismatched engine config")
	}
	bad := engine.DefaultConfig(3)
	bad.Window = 0
	if _, err := NewCluster(Options{N: 3, Stack: types.Modular, Engine: bad}); err == nil {
		t.Error("accepted invalid engine config")
	}
}

func TestAbcastToCrashedProcessReports(t *testing.T) {
	c, err := NewCluster(Options{N: 3, Stack: types.Modular, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(1, 0)
	var got error
	c.Abcast(1, 10*time.Millisecond, []byte("x"), func(_ types.MsgID, _ time.Duration, err error) {
		got = err
	})
	c.Run(time.Second)
	if got != types.ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", got)
	}
}
