package netsim

import (
	"reflect"
	"testing"
	"time"

	"modab/internal/obs"
	"modab/internal/types"
)

// obsRun drives one traced loaded cluster and returns its per-process
// stage events and the merged deliver histogram.
func obsRun(t *testing.T, stk types.Stack, seed int64) ([][]obs.StageEvent, obs.HistSnapshot) {
	t.Helper()
	const n = 3
	lc, err := NewLoadedCluster(
		Options{N: n, Stack: stk, Seed: seed, Obs: obs.Config{SampleEvery: 8}},
		Workload{OfferedLoad: 2000, Size: 128, End: 400 * time.Millisecond},
		100*time.Millisecond, 300*time.Millisecond)
	if err != nil {
		t.Fatalf("NewLoadedCluster: %v", err)
	}
	lc.Run(time.Second)
	if errs := lc.Errs(); len(errs) > 0 {
		t.Fatalf("engine error: %v", errs[0])
	}
	evs := make([][]obs.StageEvent, n)
	for p := 0; p < n; p++ {
		evs[p] = lc.Obs(types.ProcessID(p)).TraceEvents()
	}
	return evs, lc.DeliverHistogram()
}

// TestObsTraceDeterminism: the tracer records in virtual time off the
// frozen handler clock, so two runs with the same seed produce
// bit-identical stage timelines and histograms on both stacks.
func TestObsTraceDeterminism(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		evsA, histA := obsRun(t, stk, 7)
		evsB, histB := obsRun(t, stk, 7)
		if !reflect.DeepEqual(evsA, evsB) {
			t.Errorf("%s: same seed produced different trace timelines", stk)
		}
		if histA != histB {
			t.Errorf("%s: same seed produced different deliver histograms", stk)
		}

		// The run must actually have traced and measured something.
		total := 0
		for _, evs := range evsA {
			total += len(evs)
		}
		if total == 0 {
			t.Errorf("%s: no stage events recorded", stk)
		}
		if histA.Count == 0 {
			t.Errorf("%s: empty deliver histogram", stk)
		}

		// Sampling is by sequence number: every traced event's seq must be
		// a multiple of the sampling period, and every process must agree
		// on which messages it traced.
		for p, evs := range evsA {
			for _, e := range evs {
				if e.ID.Seq%8 != 0 {
					t.Fatalf("%s p%d traced unsampled message %v", stk, p, e.ID)
				}
			}
		}

		// A different seed must change the timelines (the test would
		// otherwise pass on a tracer that records nothing seed-dependent).
		evsC, _ := obsRun(t, stk, 8)
		if reflect.DeepEqual(evsA, evsC) {
			t.Errorf("%s: different seeds produced identical timelines", stk)
		}
	}
}

// TestObsWarmupReset: NewLoadedCluster drops warm-up samples from the
// deliver histograms at the window boundary. Injection here ends long
// before the warm-up does, so everything recorded is a warm-up sample —
// and the post-run histogram must come back empty.
func TestObsWarmupReset(t *testing.T) {
	lc, err := NewLoadedCluster(
		Options{N: 3, Stack: types.Monolithic, Seed: 1},
		Workload{OfferedLoad: 2000, Size: 128, End: 200 * time.Millisecond},
		5*time.Second, time.Second)
	if err != nil {
		t.Fatalf("NewLoadedCluster: %v", err)
	}
	var beforeReset int64
	lc.At(4*time.Second, func() {
		beforeReset = lc.DeliverHistogram().Count
	})
	lc.Run(7 * time.Second)
	if errs := lc.Errs(); len(errs) > 0 {
		t.Fatalf("engine error: %v", errs[0])
	}
	if beforeReset == 0 {
		t.Fatal("no warm-up samples recorded before the reset")
	}
	if got := lc.DeliverHistogram().Count; got != 0 {
		t.Fatalf("histogram kept %d warm-up samples past the window boundary", got)
	}
}
