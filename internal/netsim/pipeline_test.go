package netsim

import (
	"fmt"
	"testing"
	"time"

	"modab/internal/batch"
	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/types"
)

// measureThroughput runs a saturating 64-byte workload at n=3 on the
// metro cost model (the latency-bound regime pipelining targets; see
// MetroModel) for the given stack and pipeline depth, returning the
// measured throughput (msgs/s) and the observed pipeline depth.
func measureThroughput(t *testing.T, stk types.Stack, depth int) (float64, int64) {
	t.Helper()
	cfg := engine.DefaultConfig(3)
	cfg.PipelineDepth = depth
	lc, err := NewLoadedCluster(
		Options{N: 3, Stack: stk, Engine: cfg, Seed: 42, Model: MetroModel()},
		Workload{OfferedLoad: 120000, Size: 64},
		500*time.Millisecond, 2*time.Second)
	if err != nil {
		t.Fatalf("NewLoadedCluster: %v", err)
	}
	lc.Run(3 * time.Second)
	if errs := lc.Errs(); len(errs) > 0 {
		t.Fatalf("engine error: %v", errs[0])
	}
	return lc.Recorder.Throughput(), lc.TotalCounters().PipelineDepthObserved
}

// TestPipelineThroughputScales is the acceptance measurement of the
// pipelined refactor: at n=3 with 64-byte messages under saturating load
// in the latency-bound regime, a window of 8 concurrent instances must at
// least double both stacks' throughput over sequential operation (the
// decision round-trips overlap instead of serializing), and the observed
// depth must actually reach the configured window.
func TestPipelineThroughputScales(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			seqThr, seqDepth := measureThroughput(t, stk, 1)
			pipeThr, pipeDepth := measureThroughput(t, stk, 8)
			t.Logf("%s: W=1 %.0f msgs/s (depth %d) -> W=8 %.0f msgs/s (depth %d)",
				stk, seqThr, seqDepth, pipeThr, pipeDepth)
			if seqDepth != 1 {
				t.Errorf("sequential run observed pipeline depth %d, want 1", seqDepth)
			}
			if pipeDepth != 8 {
				t.Errorf("pipelined run observed depth %d, want 8", pipeDepth)
			}
			if pipeThr < 2*seqThr {
				t.Errorf("W=8 throughput %.0f < 2x W=1 throughput %.0f", pipeThr, seqThr)
			}
		})
	}
}

// TestPipelineDepthOneMatchesDefault pins the contract that
// PipelineDepth: 1 is the same engine as the unconfigured default, not
// merely an equivalent one: identical seeds must produce byte-identical
// traces. (TestGoldenTraces separately pins the default to the recorded
// pre-pipelining behavior.)
func TestPipelineDepthOneMatchesDefault(t *testing.T) {
	for _, sc := range goldenScenarios {
		for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
			sc, stk := sc, stk
			t.Run(sc.name+"/"+stk.String(), func(t *testing.T) {
				cfg := engine.DefaultConfig(sc.n)
				if sc.ring {
					cfg.Dissemination = dissem.Ring
				}
				if sc.digest {
					cfg.DigestOrdering = true
					cfg.Batch = batch.Config{MaxMsgs: 8, MaxDelay: 2 * time.Millisecond}
				}
				cfg.PipelineDepth = 1
				got := sc.fingerprint(t, stk, cfg)
				if want := goldenFingerprints[sc.name+"/"+stk.String()]; got != want {
					t.Errorf("PipelineDepth=1 diverged from the default engine:\n got %s\nwant %s", got, want)
				}
			})
		}
	}
}

// runPipelinedCoordCrash drives the crash-mid-pipeline scenario for one
// stack and seed: a 3-process cluster under load with W=4 instances open,
// whose round-1 coordinator (p0 — it coordinates round 1 of every
// instance) crashes mid-run. It returns every process's delivery
// sequence after quiescence.
func runPipelinedCoordCrash(t *testing.T, stk types.Stack, seed int64) [][]types.MsgID {
	t.Helper()
	const n = 3
	cfg := engine.DefaultConfig(n)
	cfg.PipelineDepth = 4
	seqs := make([][]types.MsgID, n)
	c, err := NewCluster(Options{
		N:      n,
		Stack:  stk,
		Engine: cfg,
		Seed:   seed,
		OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
			seqs[p] = append(seqs[p], d.Msg.ID)
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	InstallWorkload(c, Workload{OfferedLoad: 1800, Size: 64, End: 2 * time.Second}, nil)
	c.Crash(0, 500*time.Millisecond)
	c.Run(3 * time.Second)
	c.RunIdle(60 * time.Second)
	for _, err := range c.Errs() {
		t.Errorf("engine error: %v", err)
	}
	return seqs
}

// TestPipelineCoordinatorCrash is the fault-tolerance acceptance test of
// the pipelined refactor, the seed-sweep extension of the PR 3
// trace-equality harness: with W=4 instances in flight, the round-1
// coordinator crashes mid-run, and the survivors of both stacks must
// still converge — per stack — to one gap-free, duplicate-free total
// order, deterministically per seed.
func TestPipelineCoordinatorCrash(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
			seed, stk := seed, stk
			t.Run(fmt.Sprintf("%s/seed=%d", stk, seed), func(t *testing.T) {
				t.Parallel()
				seqs := runPipelinedCoordCrash(t, stk, seed)
				// Survivor agreement: p1 and p2 delivered identical
				// sequences with no duplicates (p0's prefix is a prefix of
				// theirs, but it is dead and excluded).
				if len(seqs[1]) == 0 {
					t.Fatal("survivors delivered nothing")
				}
				if len(seqs[1]) != len(seqs[2]) {
					t.Fatalf("p2 delivered %d messages, p3 delivered %d", len(seqs[1]), len(seqs[2]))
				}
				seen := make(map[types.MsgID]struct{}, len(seqs[1]))
				for i, id := range seqs[1] {
					if seqs[2][i] != id {
						t.Fatalf("order diverges at %d: p2=%s p3=%s", i, id, seqs[2][i])
					}
					if _, dup := seen[id]; dup {
						t.Fatalf("duplicate delivery %s", id)
					}
					seen[id] = struct{}{}
				}
				// Determinism: the same seed reproduces the same trace.
				again := runPipelinedCoordCrash(t, stk, seed)
				if fmt.Sprint(seqs) != fmt.Sprint(again) {
					t.Fatal("same seed produced different crash-mid-pipeline traces")
				}
			})
		}
	}
}

// TestPipelineCoordinatorCrashRestart extends the sweep to the
// crash-recovery model: the coordinator crashes with W=4 instances open
// on a durable cluster and restarts mid-load; afterwards every process —
// the recovered coordinator included, counting both incarnations as one
// stream — must hold the same duplicate-free total order in both stacks.
func TestPipelineCoordinatorCrashRestart(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
			seed, stk := seed, stk
			t.Run(fmt.Sprintf("%s/seed=%d", stk, seed), func(t *testing.T) {
				t.Parallel()
				const n = 3
				cfg := engine.DefaultConfig(n)
				cfg.PipelineDepth = 4
				seqs := make([][]types.MsgID, n)
				c, err := NewCluster(Options{
					N:       n,
					Stack:   stk,
					Engine:  cfg,
					Seed:    seed,
					Durable: true,
					OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
						seqs[p] = append(seqs[p], d.Msg.ID)
					},
				})
				if err != nil {
					t.Fatalf("NewCluster: %v", err)
				}
				InstallWorkload(c, Workload{OfferedLoad: 1500, Size: 64, End: 3 * time.Second}, nil)
				c.Crash(0, 500*time.Millisecond)
				c.Restart(0, 1200*time.Millisecond)
				c.Run(4 * time.Second)
				c.RunIdle(60 * time.Second)
				for _, err := range c.Errs() {
					t.Errorf("engine error: %v", err)
				}
				assertIdenticalTotalOrder(t, seqs)
			})
		}
	}
}
