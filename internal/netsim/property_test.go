package netsim

import (
	"math/rand"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
)

// TestRandomScheduleTotalOrderProperty is the system-level property test:
// under randomized workloads, message sizes, group sizes, crashes and
// wrong suspicions, the three atomic broadcast safety properties must
// hold at every correct process:
//
//	agreement  — all correct processes deliver the same sequence prefix;
//	integrity  — no message is delivered twice, and only abcast messages
//	             are delivered;
//	validity   — messages abcast by processes that stay correct are
//	             eventually delivered.
func TestRandomScheduleTotalOrderProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
			stk := stk
			t.Run(stk.String(), func(t *testing.T) {
				t.Parallel()
				runRandomSchedule(t, stk, seed)
			})
		}
	}
}

func runRandomSchedule(t *testing.T, stk types.Stack, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(3)*2 // 3, 5 or 7
	type sent struct {
		id      types.MsgID
		byProc  types.ProcessID
		crashed bool // sender crashed during the run
	}
	var (
		submitted []sent
		orders    = make([][]types.MsgID, n)
	)
	c, err := NewCluster(Options{
		N:     n,
		Stack: stk,
		Seed:  seed,
		OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
			orders[p] = append(orders[p], d.Msg.ID)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Random workload: 40-120 messages across random processes and times.
	total := 40 + rng.Intn(80)
	horizon := 2 * time.Second
	for i := 0; i < total; i++ {
		p := types.ProcessID(rng.Intn(n))
		at := time.Duration(rng.Int63n(int64(horizon)))
		size := 16 + rng.Intn(2048)
		body := make([]byte, size)
		idx := len(submitted)
		submitted = append(submitted, sent{byProc: p})
		c.Abcast(p, at, body, func(id types.MsgID, _ time.Duration, err error) {
			if err != nil {
				submitted[idx].id = types.MsgID{} // rejected or crashed
				return
			}
			submitted[idx].id = id
		})
	}

	// Random faults: crash at most a minority; maybe a wrong suspicion.
	crashed := map[types.ProcessID]bool{}
	for f := 0; f < types.MaxFaulty(n) && rng.Intn(2) == 0; f++ {
		victim := types.ProcessID(rng.Intn(n))
		if crashed[victim] {
			continue
		}
		crashed[victim] = true
		c.Crash(victim, time.Duration(rng.Int63n(int64(horizon))))
	}
	if rng.Intn(3) == 0 {
		q := types.ProcessID(rng.Intn(n))
		p := types.ProcessID(rng.Intn(n))
		if q != p && !crashed[q] {
			c.SuspectWindow(q, p, time.Duration(rng.Int63n(int64(horizon))), 200*time.Millisecond)
		}
	}

	c.Run(30 * time.Second)
	if errs := c.Errs(); len(errs) > 0 {
		t.Fatalf("seed=%d n=%d: engine error: %v", seed, n, errs[0])
	}

	// Agreement: all correct processes share a common prefix (and equal
	// totals after quiescence).
	var ref []types.MsgID
	refProc := -1
	for p := 0; p < n; p++ {
		if crashed[types.ProcessID(p)] {
			continue
		}
		if refProc == -1 {
			ref, refProc = orders[p], p
			continue
		}
		got := orders[p]
		if len(got) != len(ref) {
			t.Fatalf("seed=%d n=%d: p%d delivered %d, p%d delivered %d",
				seed, n, p+1, len(got), refProc+1, len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed=%d n=%d: order differs at %d: %v vs %v",
					seed, n, ref[i], got[i], i)
			}
		}
	}

	// Integrity: no duplicates; only submitted IDs delivered.
	validIDs := map[types.MsgID]bool{}
	for _, s := range submitted {
		if s.id != (types.MsgID{}) {
			validIDs[s.id] = true
		}
	}
	seen := map[types.MsgID]bool{}
	for _, id := range ref {
		if seen[id] {
			t.Fatalf("seed=%d: duplicate delivery %v", seed, id)
		}
		seen[id] = true
		if !validIDs[id] {
			t.Fatalf("seed=%d: delivered never-submitted %v", seed, id)
		}
	}

	// Validity: every message admitted at a process that stayed correct
	// must be delivered.
	for _, s := range submitted {
		if s.id == (types.MsgID{}) || crashed[s.byProc] {
			continue
		}
		if !seen[s.id] {
			t.Fatalf("seed=%d n=%d stack=%s: message %v from correct %v never delivered",
				seed, n, stk, s.id, s.byProc)
		}
	}
}
