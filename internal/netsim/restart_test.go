package netsim

import (
	"fmt"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
)

// runCrashRestart drives the acceptance scenario of the crash-recovery
// subsystem under one stack: load the cluster, crash a process mid-load,
// restart it, run to quiescence, and return every process's delivery
// sequence.
func runCrashRestart(t *testing.T, stk types.Stack, seed int64) [][]types.MsgID {
	t.Helper()
	const n = 3
	seqs := make([][]types.MsgID, n)
	c, err := NewCluster(Options{
		N:       n,
		Stack:   stk,
		Seed:    seed,
		Durable: true,
		OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
			seqs[p] = append(seqs[p], d.Msg.ID)
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	InstallWorkload(c, Workload{OfferedLoad: 1500, Size: 128, End: 3 * time.Second}, nil)
	c.Crash(1, 500*time.Millisecond)
	c.Restart(1, 1200*time.Millisecond)
	c.Run(4 * time.Second)
	c.RunIdle(30 * time.Second)
	for _, err := range c.Errs() {
		t.Errorf("engine error: %v", err)
	}

	// The restarted process must report a recovery with both replayed and
	// fetched messages, and a measured recovery latency.
	snap := c.Counters(1)
	if snap.Recoveries != 1 {
		t.Errorf("p2 Recoveries = %d, want 1", snap.Recoveries)
	}
	if snap.RecoveryReplayedMsgs == 0 {
		t.Errorf("p2 replayed no messages from its log")
	}
	if snap.RecoveryFetchedMsgs == 0 {
		t.Errorf("p2 fetched no missed decisions from its peers")
	}
	if snap.RecoveryNanos <= 0 {
		t.Errorf("p2 recovery latency not recorded")
	}
	return seqs
}

// assertIdenticalTotalOrder checks that every process — the restarted one
// included, counting its pre-crash and post-restart deliveries as one
// stream — delivered the exact same sequence, with no duplicates.
func assertIdenticalTotalOrder(t *testing.T, seqs [][]types.MsgID) {
	t.Helper()
	ref := seqs[0]
	if len(ref) == 0 {
		t.Fatal("no deliveries recorded")
	}
	seen := make(map[types.MsgID]struct{}, len(ref))
	for _, id := range ref {
		if _, dup := seen[id]; dup {
			t.Fatalf("p1 delivered %s twice", id)
		}
		seen[id] = struct{}{}
	}
	for p := 1; p < len(seqs); p++ {
		if len(seqs[p]) != len(ref) {
			t.Fatalf("p%d delivered %d messages, p1 delivered %d", p+1, len(seqs[p]), len(ref))
		}
		for i, id := range seqs[p] {
			if id != ref[i] {
				t.Fatalf("p%d delivery %d = %s, p1 delivered %s there (order diverges)", p+1, i, id, ref[i])
			}
		}
	}
}

// TestCrashRestartTotalOrder is the acceptance test of the
// crash-recovery subsystem: crash a node mid-load, restart it, and the
// full cluster — restarted node included — delivers an identical total
// order with no duplicates or gaps, in both stacks.
func TestCrashRestartTotalOrder(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			seqs := runCrashRestart(t, stk, 7)
			assertIdenticalTotalOrder(t, seqs)
		})
	}
}

// TestCrashRestartDeterministic re-runs the recovery scenario with the
// same seed and requires byte-for-byte identical traces — recovery is as
// deterministic as every other simulated scenario.
func TestCrashRestartDeterministic(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			a := runCrashRestart(t, stk, 11)
			b := runCrashRestart(t, stk, 11)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatal("same seed produced different recovery traces")
			}
		})
	}
}

// TestRestartRequiresDurable: restarting without a durable store is
// reported as a scenario error, not silently ignored.
func TestRestartRequiresDurable(t *testing.T) {
	c, err := NewCluster(Options{N: 3, Stack: types.Modular})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	c.Crash(1, 0)
	c.Restart(1, time.Millisecond)
	c.RunIdle(time.Second)
	if len(c.Errs()) == 0 {
		t.Fatal("Restart without Options.Durable reported no error")
	}
}

// TestRestartIdleCluster restarts a process of an idle, previously loaded
// cluster: catch-up must complete (and further submissions order
// normally) even when no new traffic is flowing to piggyback on.
func TestRestartIdleCluster(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			const n = 3
			seqs := make([][]types.MsgID, n)
			c, err := NewCluster(Options{
				N:       n,
				Stack:   stk,
				Seed:    3,
				Durable: true,
				OnDeliver: func(p types.ProcessID, d engine.Delivery, _ time.Duration) {
					seqs[p] = append(seqs[p], d.Msg.ID)
				},
			})
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			// Load, then crash p3 and keep loading only until t=1s, so the
			// cluster is idle when p3 comes back at t=2s.
			InstallWorkload(c, Workload{OfferedLoad: 900, Size: 64, End: time.Second}, nil)
			c.Crash(2, 400*time.Millisecond)
			c.Restart(2, 2*time.Second)
			// After recovery, the restarted process submits one more message.
			c.Abcast(2, 2500*time.Millisecond, []byte("after-recovery"), func(_ types.MsgID, _ time.Duration, err error) {
				if err != nil {
					t.Errorf("post-recovery abcast failed: %v", err)
				}
			})
			c.Run(3 * time.Second)
			c.RunIdle(30 * time.Second)
			for _, err := range c.Errs() {
				t.Errorf("engine error: %v", err)
			}
			assertIdenticalTotalOrder(t, seqs)
		})
	}
}
