package netsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/rsm"
	"modab/internal/types"
)

// runSnapshotRecovery drives the acceptance scenario of the replicated
// state machine subsystem under one stack: a KV-loaded cluster snapshots
// on a short cadence (truncating write-ahead logs as it goes), one
// process crashes and comes back long after its peers' logs were
// truncated below its watermark, so its only way back is a snapshot
// install plus a bounded suffix replay. Returns the cluster (quiesced)
// and the per-process canonical state digests.
func runSnapshotRecovery(t *testing.T, stk types.Stack, seed int64) (*Cluster, [][]byte) {
	t.Helper()
	const (
		n    = 3
		cmds = 120
	)
	// A short retention horizon makes the peers prune decided instances
	// from memory; with their logs truncated below the snapshot horizon
	// too, old history is genuinely unservable — the restarted process
	// must install a snapshot.
	cfg := engine.DefaultConfig(n)
	cfg.DecisionHorizon = 16
	c, err := NewCluster(Options{
		N:             n,
		Stack:         stk,
		Engine:        cfg,
		Seed:          seed,
		Durable:       true,
		StateMachine:  func() rsm.StateMachine { return rsm.NewKV() },
		SnapshotEvery: 4,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	// Unique keys: the final map is the same whatever order the two
	// stacks interleave the commands in, so digests compare across stacks.
	for i := 0; i < cmds; i++ {
		p := types.ProcessID(i % n)
		if p == 2 && i >= 24 {
			p = types.ProcessID(i % 2) // p3 is down from t=300ms on
		}
		cmd := rsm.EncodePut([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
		c.Abcast(p, time.Duration(i)*10*time.Millisecond, cmd, nil)
	}
	c.Crash(2, 300*time.Millisecond)
	c.Restart(2, 900*time.Millisecond)
	c.Run(2 * time.Second)
	c.RunIdle(30 * time.Second)
	for _, err := range c.Errs() {
		t.Errorf("engine error: %v", err)
	}

	digests := make([][]byte, n)
	for p := 0; p < n; p++ {
		digests[p] = c.Applier(types.ProcessID(p)).StateDigest()
		if len(digests[p]) == 0 {
			t.Fatalf("p%d produced an empty state digest", p+1)
		}
	}
	return c, digests
}

// TestSnapshotRecovery is the acceptance test of the snapshot state
// transfer path: the restarted process recovers via snapshot install —
// not by replaying history — and every process (both stacks) ends with
// byte-identical KV state.
func TestSnapshotRecovery(t *testing.T) {
	var crossStack [][]byte
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			c, digests := runSnapshotRecovery(t, stk, 7)

			// Applied-state equivalence: byte-identical digests everywhere.
			for p := 1; p < len(digests); p++ {
				if !bytes.Equal(digests[p], digests[0]) {
					t.Errorf("p%d state digest differs from p1", p+1)
				}
			}
			// All commands reached the state machine on a live process.
			if got := c.Applier(0).AppliedIndex(); got == 0 {
				t.Errorf("p1 applied nothing")
			}
			if got := c.Counters(0).Applied; got != 120 {
				t.Errorf("p1 applied %d commands, want 120", got)
			}

			// The peers snapshotted and truncated their logs.
			live := c.Counters(0)
			if live.SnapshotsTaken == 0 {
				t.Errorf("p1 took no snapshots")
			}
			if live.WalTruncatedSegments == 0 {
				t.Errorf("p1 truncated nothing from its log")
			}

			// The restarted process recovered through a snapshot install...
			rec := c.Counters(2)
			if rec.Recoveries != 1 {
				t.Errorf("p3 Recoveries = %d, want 1", rec.Recoveries)
			}
			if rec.SnapshotInstalls == 0 {
				t.Errorf("p3 installed no snapshot (peers could not have served truncated history)")
			}
			if rec.SnapshotInstalls > 0 && rec.SnapshotInstallNanos <= 0 {
				t.Errorf("p3 snapshot install latency not recorded")
			}
			// ...with replay bounded by the snapshot suffix, not history:
			// its own log replay resumes from its last local snapshot (at
			// most SnapshotEvery instances plus in-flight batching behind),
			// and the installed snapshot covers the middle of the log — so
			// p3 never applies the full command stream.
			if rec.RecoveryReplayedMsgs >= 120/2 {
				t.Errorf("p3 replayed %d messages — not bounded by the snapshot suffix", rec.RecoveryReplayedMsgs)
			}
			if got := c.Counters(2).Applied; got >= 120 {
				t.Errorf("p3 applied %d commands individually — snapshot install did not skip history", got)
			}

			crossStack = append(crossStack, digests[0])
		})
	}
	if len(crossStack) == 2 && !bytes.Equal(crossStack[0], crossStack[1]) {
		t.Errorf("modular and monolithic stacks converged to different KV states")
	}
}

// TestSnapshotRecoveryDeterministic re-runs the snapshot recovery
// scenario with the same seed and requires identical digests and
// counters — snapshot transfer is as deterministic as everything else
// under the simulator.
func TestSnapshotRecoveryDeterministic(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		t.Run(stk.String(), func(t *testing.T) {
			c1, d1 := runSnapshotRecovery(t, stk, 11)
			c2, d2 := runSnapshotRecovery(t, stk, 11)
			if !bytes.Equal(d1[2], d2[2]) {
				t.Fatal("same seed produced different restored state")
			}
			a, b := c1.Counters(2), c2.Counters(2)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("same seed produced different recovery counters:\n%+v\n%+v", a, b)
			}
		})
	}
}
