package netsim

import (
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
)

// collector records deliveries per process for order checking.
type collector struct {
	orders [][]types.MsgID
}

func newCollector(n int) *collector {
	return &collector{orders: make([][]types.MsgID, n)}
}

func (col *collector) onDeliver(p types.ProcessID, d engine.Delivery, _ time.Duration) {
	col.orders[p] = append(col.orders[p], d.Msg.ID)
}

// checkTotalOrder asserts every process delivered the same sequence.
func (col *collector) checkTotalOrder(t *testing.T) {
	t.Helper()
	ref := col.orders[0]
	for p := 1; p < len(col.orders); p++ {
		got := col.orders[p]
		if len(got) != len(ref) {
			t.Fatalf("process %d delivered %d messages, process 0 delivered %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order divergence at position %d: p0=%v p%d=%v", i, ref[i], p, got[i])
			}
		}
	}
}

func TestSmokeBothStacks(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		for _, n := range []int{1, 2, 3, 7} {
			stk, n := stk, n
			t.Run(stk.String()+"/n="+string(rune('0'+n)), func(t *testing.T) {
				col := newCollector(n)
				c, err := NewCluster(Options{
					N:         n,
					Stack:     stk,
					Seed:      1,
					OnDeliver: col.onDeliver,
				})
				if err != nil {
					t.Fatal(err)
				}
				// Every process abcasts 5 messages, spaced out; flow-control
				// rejections are retried (the blocking abcast behaviour).
				const perProc = 5
				var submit func(p types.ProcessID, at time.Duration, body []byte)
				submit = func(p types.ProcessID, at time.Duration, body []byte) {
					c.Abcast(p, at, body, func(_ types.MsgID, t0 time.Duration, err error) {
						if err != nil {
							submit(p, t0+2*time.Millisecond, body)
						}
					})
				}
				for i := 0; i < n; i++ {
					for j := 0; j < perProc; j++ {
						submit(types.ProcessID(i), time.Duration(j*3)*time.Millisecond, []byte{byte(i), byte(j)})
					}
				}
				c.Run(5 * time.Second)
				if errs := c.Errs(); len(errs) > 0 {
					t.Fatalf("engine errors: %v", errs)
				}
				for p := 0; p < n; p++ {
					if got := len(col.orders[p]); got != n*perProc {
						t.Fatalf("process %d delivered %d of %d messages", p, got, n*perProc)
					}
				}
				col.checkTotalOrder(t)
			})
		}
	}
}
