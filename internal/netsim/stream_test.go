package netsim

import (
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/stream"
	"modab/internal/types"
)

// TestClusterDeliveriesStream pulls simulated adeliveries through the
// stream and checks attribution, virtual timestamps and close semantics.
func TestClusterDeliveriesStream(t *testing.T) {
	c, err := NewCluster(Options{N: 3, Stack: types.Monolithic, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sub := c.Deliveries(stream.WithBuffer(64))
	c.Abcast(0, 10*time.Millisecond, []byte("x"), nil)
	c.Abcast(1, 20*time.Millisecond, []byte("y"), nil)
	c.RunIdle(5 * time.Second)
	c.Close()

	perProc := make(map[types.ProcessID]int)
	var lastAt time.Duration
	for ev := range sub.C() {
		perProc[ev.P]++
		if ev.At <= 0 || ev.At > c.Now() {
			t.Fatalf("delivery timestamp %v outside (0, %v]", ev.At, c.Now())
		}
		if ev.At < lastAt {
			// The hub publishes in dispatch order, which is monotone in
			// virtual time.
			t.Fatalf("timestamps regressed: %v after %v", ev.At, lastAt)
		}
		lastAt = ev.At
	}
	for p := types.ProcessID(0); p < 3; p++ {
		if perProc[p] != 2 {
			t.Fatalf("process %v streamed %d of 2 deliveries", p, perProc[p])
		}
	}
}

// TestClusterStep single-steps the queue and checks virtual time follows
// the event order.
func TestClusterStep(t *testing.T) {
	c, err := NewCluster(Options{N: 3, Stack: types.Modular, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	c.opts.OnDeliver = func(types.ProcessID, engine.Delivery, time.Duration) { delivered++ }
	c.Abcast(0, time.Millisecond, []byte("s"), nil)
	prev := c.Now()
	steps := 0
	for c.Step() {
		if c.Now() < prev {
			t.Fatalf("virtual time regressed: %v -> %v", prev, c.Now())
		}
		prev = c.Now()
		steps++
		if steps > 1_000_000 {
			t.Fatal("queue never drained")
		}
	}
	if delivered != 3 {
		t.Fatalf("delivered %d of 3", delivered)
	}
	if c.Step() {
		t.Fatal("Step on an empty queue reported work")
	}
}

// TestClusterStatsUniform checks the Stats surface matches TotalCounters.
func TestClusterStatsUniform(t *testing.T) {
	c, err := NewCluster(Options{N: 3, Stack: types.Monolithic, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Abcast(0, time.Millisecond, []byte("x"), nil)
	c.RunIdle(5 * time.Second)
	st := c.Stats()
	if st.N != 3 || len(st.PerProcess) != 3 {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.Total != c.TotalCounters() {
		t.Fatalf("Stats total %+v != TotalCounters %+v", st.Total, c.TotalCounters())
	}
	if st.Total.ADeliver != 3 {
		t.Fatalf("ADeliver = %d, want 3", st.Total.ADeliver)
	}
}
