package netsim

import (
	"time"

	"modab/internal/engine"
	"modab/internal/obs"
	"modab/internal/stats"
	"modab/internal/types"
)

// Workload is the paper's symmetric workload (§5.1): every process abcasts
// fixed-size messages at a constant rate. OfferedLoad is the global rate
// across all processes, in messages per second; each process injects
// OfferedLoad/n.
type Workload struct {
	// OfferedLoad is the global abcast attempt rate (msgs/s).
	OfferedLoad float64
	// Size is the application payload size in bytes.
	Size int
	// Start and End bound the injection interval.
	Start, End time.Duration
}

// Recorder accumulates the paper's two metrics over a measurement window:
// early latency (min over processes of adeliver time, minus t0) and
// throughput (mean per-process adeliver rate). Messages abcast during
// warm-up are excluded from latency; deliveries outside the window are
// excluded from throughput.
type Recorder struct {
	n                      int
	WindowStart, WindowEnd time.Duration

	// Latency holds one early-latency sample (in seconds) per measured
	// message.
	Latency stats.Series

	t0        map[types.MsgID]time.Duration
	delivered map[types.MsgID]struct{}
	perProc   []int64

	// Attempted/Admitted/Blocked count abcast attempts inside the window.
	Attempted int64
	Admitted  int64
	Blocked   int64
}

// NewRecorder creates a recorder measuring the given window for a group of
// n processes.
func NewRecorder(n int, windowStart, windowEnd time.Duration) *Recorder {
	return &Recorder{
		n:           n,
		WindowStart: windowStart,
		WindowEnd:   windowEnd,
		t0:          make(map[types.MsgID]time.Duration),
		delivered:   make(map[types.MsgID]struct{}),
		perProc:     make([]int64, n),
	}
}

// inWindow reports whether t falls inside the measurement window.
func (r *Recorder) inWindow(t time.Duration) bool {
	return t >= r.WindowStart && t < r.WindowEnd
}

// onAbcast records one abcast outcome.
func (r *Recorder) onAbcast(id types.MsgID, t0 time.Duration, err error) {
	if r.inWindow(t0) {
		r.Attempted++
		if err != nil {
			r.Blocked++
		} else {
			r.Admitted++
		}
	}
	if err == nil && r.inWindow(t0) {
		r.t0[id] = t0
	}
}

// OnDeliver records one adelivery; wire it to Options.OnDeliver.
func (r *Recorder) OnDeliver(p types.ProcessID, id types.MsgID, at time.Duration) {
	if r.inWindow(at) {
		r.perProc[p]++
	}
	if _, seen := r.delivered[id]; seen {
		return
	}
	r.delivered[id] = struct{}{}
	if t0, ok := r.t0[id]; ok {
		r.Latency.Add((at - t0).Seconds())
		delete(r.t0, id)
	}
}

// Throughput returns the paper's T = (1/n) Σ r_i in msgs/s over the
// measurement window.
func (r *Recorder) Throughput() float64 {
	window := (r.WindowEnd - r.WindowStart).Seconds()
	if window <= 0 {
		return 0
	}
	var sum float64
	for _, cnt := range r.perProc {
		sum += float64(cnt) / window
	}
	return sum / float64(r.n)
}

// MeanLatency returns the mean early latency in seconds (0 if no samples).
func (r *Recorder) MeanLatency() float64 { return r.Latency.Mean() }

// InstallWorkload wires the workload and recorder into the cluster: every
// process submits Size-byte messages at rate OfferedLoad/n with a seeded
// phase offset, and every delivery feeds the recorder.
//
// Call before Run; the cluster's OnDeliver must route to rec.OnDeliver
// (NewLoadedCluster does all of this).
func InstallWorkload(c *Cluster, w Workload, rec *Recorder) {
	if w.OfferedLoad <= 0 || c.opts.N == 0 {
		return
	}
	perProc := w.OfferedLoad / float64(c.opts.N)
	interval := time.Duration(float64(time.Second) / perProc)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	body := make([]byte, w.Size)
	for i := 0; i < c.opts.N; i++ {
		p := types.ProcessID(i)
		// Deterministic per-process phase spreads senders across the
		// interval; the paper's workload is symmetric, not synchronized.
		phase := time.Duration(c.rng.Int63n(int64(interval) + 1))
		scheduleSender(c, p, w, body, rec, w.Start+phase, interval)
	}
}

// scheduleSender arms the periodic injection loop for one process.
func scheduleSender(c *Cluster, p types.ProcessID, w Workload, body []byte,
	rec *Recorder, next time.Duration, interval time.Duration) {
	if next >= w.End {
		return
	}
	c.Abcast(p, next, body, func(id types.MsgID, t0 time.Duration, err error) {
		if rec != nil && err != types.ErrCrashed {
			rec.onAbcast(id, t0, err)
		}
	})
	c.At(next, func() {
		scheduleSender(c, p, w, body, rec, next+interval, interval)
	})
}

// LoadedCluster bundles a cluster with its workload recorder.
type LoadedCluster struct {
	*Cluster
	Recorder *Recorder
	Workload Workload
}

// NewLoadedCluster builds a cluster running the paper's symmetric workload
// with a measurement window of [warmup, warmup+measure) and the injection
// running for the whole horizon.
func NewLoadedCluster(opts Options, w Workload, warmup, measure time.Duration) (*LoadedCluster, error) {
	rec := NewRecorder(opts.N, warmup, warmup+measure)
	opts.OnDeliver = func(p types.ProcessID, d engine.Delivery, at time.Duration) {
		rec.OnDeliver(p, d.Msg.ID, at)
	}
	if w.End == 0 {
		w.End = warmup + measure
	}
	c, err := NewCluster(opts)
	if err != nil {
		return nil, err
	}
	// Align the deliver-latency histograms with the measurement window:
	// drop the warm-up samples at the window boundary, so the percentile
	// columns of the benchmark reports cover the same interval as the
	// mean-latency metric. A scheduled call never touches an engine, so
	// the protocol trace is unaffected.
	c.At(warmup, func() {
		for _, p := range c.procs {
			p.obs.Deliver.Reset()
		}
	})
	InstallWorkload(c, w, rec)
	return &LoadedCluster{Cluster: c, Recorder: rec, Workload: w}, nil
}

// DeliverHistogram merges every process's deliver-latency histogram over
// the run (the warm-up samples having been dropped at the window
// boundary) into one cluster-wide snapshot.
func (lc *LoadedCluster) DeliverHistogram() obs.HistSnapshot {
	var out obs.HistSnapshot
	for _, p := range lc.procs {
		out = out.Merge(p.obs.Deliver.Snapshot())
	}
	return out
}
