package netsim

import (
	"math"
	"testing"
	"time"

	"modab/internal/types"
)

func TestRecorderWindowing(t *testing.T) {
	r := NewRecorder(2, time.Second, 2*time.Second)
	id := types.MsgID{Sender: 0, Seq: 1}

	// Before the window: ignored for stats.
	r.onAbcast(id, 500*time.Millisecond, nil)
	if r.Admitted != 0 || r.Attempted != 0 {
		t.Fatal("counted outside window")
	}
	// Inside the window.
	id2 := types.MsgID{Sender: 0, Seq: 2}
	r.onAbcast(id2, 1100*time.Millisecond, nil)
	if r.Admitted != 1 || r.Attempted != 1 {
		t.Fatalf("admitted=%d attempted=%d", r.Admitted, r.Attempted)
	}
	// Blocked attempts count separately.
	r.onAbcast(types.MsgID{}, 1200*time.Millisecond, types.ErrFlowControl)
	if r.Blocked != 1 || r.Attempted != 2 {
		t.Fatalf("blocked=%d attempted=%d", r.Blocked, r.Attempted)
	}

	// First delivery anywhere defines early latency; later deliveries of
	// the same message only add to per-process throughput.
	r.OnDeliver(0, id2, 1150*time.Millisecond)
	r.OnDeliver(1, id2, 1300*time.Millisecond)
	if r.Latency.N() != 1 {
		t.Fatalf("latency samples = %d", r.Latency.N())
	}
	if got := r.Latency.Mean(); math.Abs(got-0.050) > 1e-9 {
		t.Fatalf("latency = %v, want 50ms", got)
	}
	// Throughput: both processes delivered once in a 1s window.
	if got := r.Throughput(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("throughput = %v", got)
	}
}

func TestRecorderDeliveryOutsideWindow(t *testing.T) {
	r := NewRecorder(1, 0, time.Second)
	id := types.MsgID{Sender: 0, Seq: 1}
	r.onAbcast(id, 900*time.Millisecond, nil)
	// Delivered after the window: not in throughput, but latency still
	// recorded (the message was abcast inside the window).
	r.OnDeliver(0, id, 1500*time.Millisecond)
	if r.Throughput() != 0 {
		t.Fatalf("throughput = %v", r.Throughput())
	}
	if r.Latency.N() != 1 {
		t.Fatal("latency sample missing")
	}
}

func TestWorkloadOffersAtConfiguredRate(t *testing.T) {
	lc, err := NewLoadedCluster(Options{N: 3, Stack: types.Monolithic, Seed: 3},
		Workload{OfferedLoad: 900, Size: 64}, 500*time.Millisecond, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lc.Run(4 * time.Second)
	// 900 msgs/s over a 2s window ≈ 1800 attempts (± edge effects).
	if lc.Recorder.Attempted < 1700 || lc.Recorder.Attempted > 1900 {
		t.Fatalf("attempted = %d, want ≈1800", lc.Recorder.Attempted)
	}
}

func TestCostModelArithmetic(t *testing.T) {
	m := CostModel{
		RecvPerMsg:           100 * time.Microsecond,
		SendPerMsg:           50 * time.Microsecond,
		RecvNsPerByte:        10,
		SendNsPerByte:        5,
		BandwidthBytesPerSec: 1e6,
	}
	if got := m.recvCost(1000); got != 110*time.Microsecond {
		t.Errorf("recvCost = %v", got)
	}
	if got := m.sendCost(1000); got != 55*time.Microsecond {
		t.Errorf("sendCost = %v", got)
	}
	if got := m.serialization(1000); got != time.Millisecond {
		t.Errorf("serialization = %v", got)
	}
	var zero CostModel
	if got := zero.serialization(1000); got != 0 {
		t.Errorf("zero-bandwidth serialization = %v", got)
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if m.RecvPerMsg <= 0 || m.PerDispatch <= 0 || m.BandwidthBytesPerSec <= 0 ||
		m.PropDelay <= 0 || m.FDDetect <= 0 {
		t.Fatalf("default model has zero fields: %+v", m)
	}
	// Receiving must cost more than sending (interrupt + copy + decode):
	// the reproduced runs in docs/BENCHMARKS.md depend on it.
	if m.RecvPerMsg <= m.SendPerMsg {
		t.Error("recv fixed cost should exceed send fixed cost")
	}
}
