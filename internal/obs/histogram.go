package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers every non-negative int64 nanosecond duration: bucket
// 0 holds exact zeros, bucket i (i >= 1) holds durations whose
// nanosecond count has i significant bits — the half-open range
// [2^(i-1), 2^i). bits.Len64 of the largest int64 is 63, so 64 buckets
// suffice.
const numBuckets = 64

// Histogram is a lock-free fixed-bucket log₂ latency histogram: every
// Observe is three atomic adds plus a CAS loop for the running maximum,
// so it is safe to record from an engine thread while an HTTP scraper
// reads it. The zero value is ready for use. All methods are nil-safe,
// so a disabled recording site costs exactly one nil check.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf returns the bucket index of a nanosecond count.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// BucketUpper returns the inclusive upper bound of bucket i in
// nanoseconds (0 for bucket 0).
func BucketUpper(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return time.Duration(int64(^uint64(0) >> 1)) // max int64
	}
	return time.Duration(int64(1)<<uint(i) - 1)
}

// Observe records one duration. Negative durations clamp to zero (a
// restarted virtual clock can produce them; they carry no information).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot returns a consistent-enough copy for reporting: each field is
// read atomically (cross-field skew of in-flight observations is
// harmless for statistics).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Reset zeroes the histogram. It is not atomic with respect to
// concurrent observers; use it only at measurement-window boundaries the
// caller controls (the simulator resets at the end of warm-up).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistSnapshot is a plain-value histogram state: mergeable across
// processes and queryable for percentiles.
type HistSnapshot struct {
	Count   int64
	Sum     int64 // nanoseconds
	Max     int64 // nanoseconds
	Buckets [numBuckets]int64
}

// Merge returns the combination of two snapshots (counts and sums add,
// maxima take the larger). Merge is commutative and associative, so
// cross-process aggregation order does not matter.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Mean returns the mean observed duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of
// the bucket holding the rank, clamped to the observed maximum — so a
// single-sample histogram reports that exact sample at every quantile,
// and the estimate never exceeds log₂-bucket resolution (a factor of 2).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			est := BucketUpper(i)
			if est > time.Duration(s.Max) {
				est = time.Duration(s.Max)
			}
			return est
		}
	}
	return time.Duration(s.Max)
}

// P50 returns the estimated median.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P95 returns the estimated 95th percentile.
func (s HistSnapshot) P95() time.Duration { return s.Quantile(0.95) }

// P99 returns the estimated 99th percentile.
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// MaxDur returns the observed maximum as a duration.
func (s HistSnapshot) MaxDur() time.Duration { return time.Duration(s.Max) }
