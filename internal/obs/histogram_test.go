package obs

import (
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)            // bucket 1: [1, 1]
	h.Observe(2)            // bucket 2: [2, 3]
	h.Observe(3)            // bucket 2
	h.Observe(4)            // bucket 3: [4, 7]
	h.Observe(-time.Second) // clamps to bucket 0
	s := h.Snapshot()
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, b, want[i])
		}
	}
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 1+2+3+4 {
		t.Errorf("Sum = %d, want 10 (negatives clamp to 0)", s.Sum)
	}
	if s.Max != 4 {
		t.Errorf("Max = %d, want 4", s.Max)
	}
}

func TestBucketUpperCoversBucketOf(t *testing.T) {
	// Every observation must land in a bucket whose upper bound is >= the
	// observation and whose predecessor's upper bound is < it.
	for _, ns := range []int64{1, 2, 3, 4, 7, 8, 1000, 1 << 20, (1 << 20) - 1, 1<<62 + 5} {
		b := bucketOf(ns)
		if got := int64(BucketUpper(b)); got < ns {
			t.Errorf("BucketUpper(bucketOf(%d)) = %d < observation", ns, got)
		}
		if prev := int64(BucketUpper(b - 1)); prev >= ns {
			t.Errorf("BucketUpper(%d) = %d >= %d; observation belongs one bucket down", b-1, prev, ns)
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	var s HistSnapshot
	if s.Mean() != 0 || s.P50() != 0 || s.P99() != 0 || s.MaxDur() != 0 {
		t.Fatalf("empty snapshot not all-zero: %+v", s)
	}
}

func TestSingleSampleExactQuantiles(t *testing.T) {
	var h Histogram
	const d = 700 * time.Microsecond
	h.Observe(d)
	s := h.Snapshot()
	// The bucket upper bound clamps to the observed max, so a one-sample
	// histogram reports that exact sample at every quantile.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != d {
			t.Errorf("Quantile(%g) = %v, want %v", q, got, d)
		}
	}
	if s.Mean() != d {
		t.Errorf("Mean = %v, want %v", s.Mean(), d)
	}
}

func TestQuantileRanks(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(16 * time.Millisecond)
	s := h.Snapshot()
	msUpper := BucketUpper(bucketOf(int64(time.Millisecond)))
	if got := s.P50(); got != msUpper {
		t.Errorf("P50 = %v, want the 1ms bucket upper bound %v", got, msUpper)
	}
	if got := s.P99(); got != msUpper {
		t.Errorf("P99 = %v, want the 1ms bucket upper bound %v (rank 99 of 100)", got, msUpper)
	}
	if got := s.Quantile(1); got != 16*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want the exact max 16ms", got)
	}
}

func TestMergeCommutativeAssociative(t *testing.T) {
	mk := func(ds ...time.Duration) HistSnapshot {
		var h Histogram
		for _, d := range ds {
			h.Observe(d)
		}
		return h.Snapshot()
	}
	a := mk(time.Millisecond, 2*time.Millisecond)
	b := mk(16 * time.Millisecond)
	c := mk(0, 400*time.Microsecond, time.Second)

	if a.Merge(b) != b.Merge(a) {
		t.Error("Merge not commutative")
	}
	if a.Merge(b).Merge(c) != a.Merge(b.Merge(c)) {
		t.Error("Merge not associative")
	}
	m := a.Merge(b).Merge(c)
	if m.Count != 6 {
		t.Errorf("merged Count = %d, want 6", m.Count)
	}
	if m.MaxDur() != time.Second {
		t.Errorf("merged Max = %v, want 1s", m.MaxDur())
	}
	if m.Sum != a.Sum+b.Sum+c.Sum {
		t.Errorf("merged Sum = %d, want %d", m.Sum, a.Sum+b.Sum+c.Sum)
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Reset()
	if s := h.Snapshot(); s != (HistSnapshot{}) {
		t.Fatalf("snapshot after Reset not zero: %+v", s)
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Millisecond) // must not panic
	h.Reset()
	if s := h.Snapshot(); s != (HistSnapshot{}) {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	// The disabled path: one nil check per recording site.
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
