package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"

	"modab/internal/trace"
)

// NewHTTPHandler builds the live exposition surface of one process:
//
//	/metrics            Prometheus text format — every trace counter and
//	                    every latency histogram;
//	/debug/vars         expvar (standard vars plus a "modab" var with the
//	                    counter snapshot and histogram summaries);
//	/debug/pprof/...    net/http/pprof profiles.
//
// counters supplies the live counter snapshot; rec may be nil (the
// histogram and trace sections are then omitted).
func NewHTTPHandler(counters func() trace.Snapshot, rec *Recorder) http.Handler {
	publishExpvar(counters, rec)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, counters(), rec)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// expvarOnce guards the process-global expvar names (Publish panics on
// reuse; the first handler in a process wins, which matches the
// one-node-per-process deployment shape).
var expvarOnce sync.Once

func publishExpvar(counters func() trace.Snapshot, rec *Recorder) {
	expvarOnce.Do(func() {
		expvar.Publish("modab", expvar.Func(func() any {
			out := map[string]any{"counters": counters()}
			if rec != nil {
				hists := map[string]map[string]any{}
				for _, nh := range rec.Histograms() {
					s := nh.H.Snapshot()
					hists[nh.Name] = map[string]any{
						"count": s.Count,
						"mean":  s.Mean().String(),
						"p50":   s.P50().String(),
						"p95":   s.P95().String(),
						"p99":   s.P99().String(),
						"max":   s.MaxDur().String(),
					}
				}
				out["latency"] = hists
			}
			return out
		}))
	})
}

// WriteMetrics renders one counter snapshot plus one recorder in the
// Prometheus text exposition format: every trace.Snapshot field becomes
// modab_<snake_case_name>, every histogram a modab_<name>_latency_seconds
// histogram with cumulative log₂ buckets. The counter list is built by
// reflection, so a new trace counter shows up here without code changes.
func WriteMetrics(w io.Writer, snap trace.Snapshot, rec *Recorder) {
	v := reflect.ValueOf(snap)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			continue
		}
		name := "modab_" + snakeCase(f.Name)
		kind := "counter"
		if f.Name == "PipelineDepthObserved" {
			kind = "gauge" // aggregates as a max, not a monotone sum
		}
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, kind, name, v.Field(i).Int())
	}
	for _, nh := range rec.Histograms() {
		s := nh.H.Snapshot()
		name := "modab_" + nh.Name + "_latency_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		hi := 0
		for i, b := range s.Buckets {
			if b != 0 {
				hi = i
			}
		}
		var cum int64
		for i := 0; i <= hi; i++ {
			cum += s.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(BucketUpper(i)), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
		fmt.Fprintf(w, "%s_sum %g\n", name, time.Duration(s.Sum).Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	}
	if rec != nil {
		fmt.Fprintf(w, "# TYPE modab_trace_sample_every gauge\nmodab_trace_sample_every %d\n", rec.SampleEvery())
	}
}

// formatLE renders a bucket upper bound in seconds for a Prometheus le
// label.
func formatLE(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// snakeCase converts a Go exported identifier to snake_case, keeping
// acronym runs together ("PayloadBytesSent" → "payload_bytes_sent",
// "ABCast" → "ab_cast").
func snakeCase(s string) string {
	rs := []rune(s)
	var b strings.Builder
	for i, r := range rs {
		upper := r >= 'A' && r <= 'Z'
		if upper && i > 0 {
			prevLower := rs[i-1] >= 'a' && rs[i-1] <= 'z' || rs[i-1] >= '0' && rs[i-1] <= '9'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if prevLower || nextLower {
				b.WriteByte('_')
			}
		}
		if upper {
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}
