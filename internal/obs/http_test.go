package obs

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"modab/internal/trace"
)

func TestWriteMetricsPrometheusFormat(t *testing.T) {
	var c trace.Counters
	c.MsgsSent.Add(3)
	c.ADeliver.Add(7)
	c.PipelineDepthObserved.Store(4)
	r := NewRecorder(Config{})
	r.Deliver.Observe(time.Millisecond)
	r.Deliver.Observe(2 * time.Millisecond)

	var b strings.Builder
	WriteMetrics(&b, c.Snapshot(), r)
	out := b.String()

	for _, want := range []string{
		"# TYPE modab_msgs_sent counter\nmodab_msgs_sent 3\n",
		"# TYPE modab_a_deliver counter\nmodab_a_deliver 7\n",
		"# TYPE modab_pipeline_depth_observed gauge\nmodab_pipeline_depth_observed 4\n",
		"# TYPE modab_deliver_latency_seconds histogram\n",
		`modab_deliver_latency_seconds_bucket{le="+Inf"} 2`,
		"modab_deliver_latency_seconds_sum 0.003\n",
		"modab_deliver_latency_seconds_count 2\n",
		"# TYPE modab_trace_sample_every gauge\nmodab_trace_sample_every 32\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative: the +Inf bucket equals the
	// count and every preceding bucket is non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "modab_deliver_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		last = v
	}
	if last != 2 {
		t.Fatalf("final bucket = %d, want the total count 2", last)
	}
}

func TestWriteMetricsNilRecorder(t *testing.T) {
	var b strings.Builder
	WriteMetrics(&b, trace.Snapshot{}, nil)
	out := b.String()
	if !strings.Contains(out, "modab_msgs_sent 0") {
		t.Errorf("counters missing without a recorder:\n%s", out)
	}
	if strings.Contains(out, "latency_seconds") || strings.Contains(out, "trace_sample_every") {
		t.Errorf("nil recorder still emitted histogram series:\n%s", out)
	}
}

func TestHTTPHandlerSurface(t *testing.T) {
	var c trace.Counters
	c.ADeliver.Add(5)
	rec := NewRecorder(Config{})
	rec.Deliver.Observe(time.Millisecond)
	h := NewHTTPHandler(func() trace.Snapshot { return c.Snapshot() }, rec)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		data, _ := io.ReadAll(resp.Body)
		return string(data), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}
	if !strings.Contains(body, "modab_a_deliver 5") {
		t.Errorf("/metrics lacks live counter:\n%s", body)
	}
	if body, _ := get("/debug/vars"); !strings.Contains(body, `"modab"`) {
		t.Errorf("/debug/vars lacks the modab var:\n%s", body)
	}
	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"MsgsSent":              "msgs_sent",
		"PayloadBytesSent":      "payload_bytes_sent",
		"ABCast":                "ab_cast",
		"ADeliver":              "a_deliver",
		"PipelineDepthObserved": "pipeline_depth_observed",
		"RecoveryNanos":         "recovery_nanos",
	} {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}
