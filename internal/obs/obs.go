// Package obs is the end-to-end observability layer: latency histograms
// and a sampled message lifecycle tracer, recorded at fixed points in
// the stacks and exposed live over HTTP (see http.go).
//
// # Recording points
//
// The histograms cover the hot paths of the paper's §5.2 cost model:
//
//	Deliver  — abcast admission → adelivery, measured at the submitter
//	           (the paper's latency metric, as a distribution);
//	Apply    — time spent inside the state machine apply call;
//	Fsync    — write-ahead-log fsync duration (real-time drivers only);
//	Recovery — crash-recovery catch-up duration;
//	Install  — snapshot fetch+install duration.
//
// All timestamps come from the driver clock (engine.Env.Now), so under
// the deterministic simulator the histograms are measured in virtual
// time and are bit-for-bit reproducible for a given seed; recording
// never sends a message or arms a timer, so the golden-trace
// fingerprints are identical with observability on or off.
//
// The tracer follows one in every Config.SampleEvery application
// messages per sender (chosen by sequence number, so every process
// samples the same messages without coordination) through the named
// lifecycle stages accept → seal → propose → decide → adeliver → apply,
// into a bounded per-process ring buffer. abbench dumps it with
// -trace-sample, and the chaos harness attaches it to violation reports.
//
// # Cost when disabled
//
// Every Recorder and Histogram method is nil-safe: a site compiled
// against a nil recorder costs exactly one nil check, which is what
// keeps the saturating-load throughput of the benchmarks inside noise.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"modab/internal/types"
)

// Lifecycle stage names, in causal order at the message's origin.
const (
	// StageAccept marks flow-control admission at the sender.
	StageAccept = "accept"
	// StageSeal marks the sender-side batch carrying the message sealing.
	StageSeal = "seal"
	// StagePropose marks the message joining a consensus proposal.
	StagePropose = "propose"
	// StageDecide marks the instance carrying the message deciding.
	StageDecide = "decide"
	// StageADeliver marks adelivery to the application.
	StageADeliver = "adeliver"
	// StageApply marks the state machine apply completing.
	StageApply = "apply"
)

// DefaultSampleEvery is the default lifecycle sampling period: one in
// every 32 messages per sender is traced.
const DefaultSampleEvery = 32

// defaultTraceCap bounds the per-process stage-event ring buffer.
const defaultTraceCap = 4096

// Config tunes a Recorder. The zero value selects the defaults.
type Config struct {
	// SampleEvery traces every SampleEvery-th message of each sender
	// (by sequence number); 0 selects DefaultSampleEvery.
	SampleEvery uint64
	// TraceCap bounds the stage-event ring buffer; 0 selects the
	// default (4096 events). The oldest events are overwritten.
	TraceCap int
}

func (c Config) withDefaults() Config {
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.TraceCap <= 0 {
		c.TraceCap = defaultTraceCap
	}
	return c
}

// StageEvent is one recorded lifecycle point of a sampled message.
type StageEvent struct {
	ID    types.MsgID
	Stage string
	At    time.Duration
}

// String implements fmt.Stringer as "stage@t".
func (e StageEvent) String() string { return fmt.Sprintf("%s@%v", e.Stage, e.At) }

// Recorder is one process's observability state: the latency histograms
// (lock-free, scrapeable mid-run) and the sampled lifecycle tracer
// (mutex-guarded ring buffer). All methods are nil-safe.
type Recorder struct {
	// Deliver is the abcast→adeliver latency of this process's own
	// messages, measured at the submitter in driver-clock time.
	Deliver Histogram
	// Apply is the per-command state machine apply duration.
	Apply Histogram
	// Fsync is the write-ahead-log fsync duration (wall clock; the
	// simulator's in-memory store never fsyncs).
	Fsync Histogram
	// Recovery is the crash-recovery catch-up duration.
	Recovery Histogram
	// Install is the snapshot fetch+install duration.
	Install Histogram
	// PayloadFetch is the time adelivery of a decided descriptor was
	// blocked waiting for its payload to become resident (digest ordering
	// only; the submit→adeliver Deliver histogram already includes this
	// wait, because Delivered is recorded at payload-resident delivery,
	// never at digest decide).
	PayloadFetch Histogram

	cfg Config

	mu        sync.Mutex
	submitted map[types.MsgID]time.Duration
	ring      []StageEvent
	next      int // overwrite cursor once len(ring) == TraceCap
}

// NewRecorder builds a recorder with the given config.
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{
		cfg:       cfg.withDefaults(),
		submitted: make(map[types.MsgID]time.Duration),
	}
}

// SampleEvery returns the effective sampling period (0 on a nil
// recorder).
func (r *Recorder) SampleEvery() uint64 {
	if r == nil {
		return 0
	}
	return r.cfg.SampleEvery
}

// Sampled reports whether the message's lifecycle is traced. The rule
// depends only on the message ID, so every process samples the same
// messages without coordination.
func (r *Recorder) Sampled(id types.MsgID) bool {
	if r == nil {
		return false
	}
	return id.Seq%r.cfg.SampleEvery == 0
}

// pushLocked appends one stage event to the ring, overwriting the
// oldest once full. Caller holds mu.
func (r *Recorder) pushLocked(e StageEvent) {
	if len(r.ring) < r.cfg.TraceCap {
		r.ring = append(r.ring, e)
		return
	}
	r.ring[r.next] = e
	r.next = (r.next + 1) % r.cfg.TraceCap
}

// Stage records one lifecycle point of a sampled message; unsampled
// messages cost one modulo.
func (r *Recorder) Stage(id types.MsgID, stage string, now time.Duration) {
	if r == nil || !r.Sampled(id) {
		return
	}
	r.mu.Lock()
	r.pushLocked(StageEvent{ID: id, Stage: stage, At: now})
	r.mu.Unlock()
}

// Submitted records a local abcast admission: the submit timestamp that
// anchors the Deliver histogram, plus the accept stage when sampled.
func (r *Recorder) Submitted(id types.MsgID, now time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.submitted[id] = now
	if r.Sampled(id) {
		r.pushLocked(StageEvent{ID: id, Stage: StageAccept, At: now})
	}
	r.mu.Unlock()
}

// Delivered records an adelivery: the adeliver stage when sampled, and —
// for this process's own messages — one Deliver histogram sample.
func (r *Recorder) Delivered(id types.MsgID, now time.Duration) {
	if r == nil {
		return
	}
	var lat time.Duration
	have := false
	r.mu.Lock()
	if t0, ok := r.submitted[id]; ok {
		lat, have = now-t0, true
		delete(r.submitted, id)
	}
	if r.Sampled(id) {
		r.pushLocked(StageEvent{ID: id, Stage: StageADeliver, At: now})
	}
	r.mu.Unlock()
	if have {
		r.Deliver.Observe(lat)
	}
}

// Applied records one state machine apply spanning [start, end] in
// driver-clock time.
func (r *Recorder) Applied(id types.MsgID, start, end time.Duration) {
	if r == nil {
		return
	}
	r.Apply.Observe(end - start)
	r.Stage(id, StageApply, end)
}

// FsyncObserved records one write-ahead-log fsync duration.
func (r *Recorder) FsyncObserved(d time.Duration) {
	if r == nil {
		return
	}
	r.Fsync.Observe(d)
}

// RecoveryObserved records one completed crash-recovery catch-up.
func (r *Recorder) RecoveryObserved(d time.Duration) {
	if r == nil {
		return
	}
	r.Recovery.Observe(d)
}

// InstallObserved records one completed snapshot fetch+install.
func (r *Recorder) InstallObserved(d time.Duration) {
	if r == nil {
		return
	}
	r.Install.Observe(d)
}

// PayloadFetchObserved records one decided-but-not-resident wait: the
// time from the blocking decide to the payload becoming resident.
func (r *Recorder) PayloadFetchObserved(d time.Duration) {
	if r == nil {
		return
	}
	r.PayloadFetch.Observe(d)
}

// TraceEvents returns the recorded stage events, oldest first.
func (r *Recorder) TraceEvents() []StageEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]StageEvent, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Histograms returns the recorder's named histograms in stable order
// (exposition and reports iterate it).
func (r *Recorder) Histograms() []NamedHistogram {
	if r == nil {
		return nil
	}
	return []NamedHistogram{
		{"deliver", &r.Deliver},
		{"apply", &r.Apply},
		{"fsync", &r.Fsync},
		{"recovery", &r.Recovery},
		{"install", &r.Install},
		{"payload_fetch", &r.PayloadFetch},
	}
}

// NamedHistogram pairs a histogram with its exposition name.
type NamedHistogram struct {
	Name string
	H    *Histogram
}

// Timeline is the ordered stage history of one traced message at one
// process.
type Timeline struct {
	ID     types.MsgID
	Events []StageEvent
}

// String implements fmt.Stringer as "p0#32: accept@1ms seal@1ms ...".
func (t Timeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", t.ID)
	for _, e := range t.Events {
		fmt.Fprintf(&b, " %s", e)
	}
	return b.String()
}

// Timelines groups a stage-event dump per message, ordered by message ID
// (events within a message keep recording order).
func Timelines(evs []StageEvent) []Timeline {
	byID := make(map[types.MsgID][]StageEvent)
	for _, e := range evs {
		byID[e.ID] = append(byID[e.ID], e)
	}
	out := make([]Timeline, 0, len(byID))
	for id, es := range byID {
		out = append(out, Timeline{ID: id, Events: es})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}
