package obs

import (
	"reflect"
	"testing"
	"time"

	"modab/internal/types"
)

func id(sender int, seq uint64) types.MsgID {
	return types.MsgID{Sender: types.ProcessID(sender), Seq: seq}
}

func TestSamplingRule(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 4})
	if r.SampleEvery() != 4 {
		t.Fatalf("SampleEvery = %d, want 4", r.SampleEvery())
	}
	for seq, want := range map[uint64]bool{0: true, 1: false, 3: false, 4: true, 8: true, 9: false} {
		if got := r.Sampled(id(1, seq)); got != want {
			t.Errorf("Sampled(seq=%d) = %v, want %v", seq, got, want)
		}
	}
	// The rule depends only on the ID, so every process agrees.
	if r.Sampled(id(0, 4)) != r.Sampled(id(2, 4)) {
		t.Error("sampling disagrees across senders of the same seq")
	}
	if def := NewRecorder(Config{}); def.SampleEvery() != DefaultSampleEvery {
		t.Errorf("default SampleEvery = %d, want %d", def.SampleEvery(), DefaultSampleEvery)
	}
}

func TestSubmittedDelivered(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 2})
	m := id(0, 2) // sampled
	r.Submitted(m, 10*time.Millisecond)
	r.Delivered(m, 25*time.Millisecond)

	s := r.Deliver.Snapshot()
	if s.Count != 1 || s.MaxDur() != 15*time.Millisecond {
		t.Fatalf("Deliver histogram = count %d max %v, want 1 sample of 15ms", s.Count, s.MaxDur())
	}
	evs := r.TraceEvents()
	want := []StageEvent{
		{ID: m, Stage: StageAccept, At: 10 * time.Millisecond},
		{ID: m, Stage: StageADeliver, At: 25 * time.Millisecond},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("TraceEvents = %v, want %v", evs, want)
	}

	// A remote message (never submitted here) contributes a stage when
	// sampled but no Deliver histogram sample.
	r.Delivered(id(1, 4), 30*time.Millisecond)
	if got := r.Deliver.Snapshot().Count; got != 1 {
		t.Fatalf("remote delivery entered the Deliver histogram (count %d)", got)
	}
	if got := len(r.TraceEvents()); got != 3 {
		t.Fatalf("remote sampled delivery not traced (%d events)", got)
	}
}

func TestAppliedRecordsHistogramAndStage(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1})
	m := id(0, 7)
	r.Applied(m, 10*time.Millisecond, 12*time.Millisecond)
	if s := r.Apply.Snapshot(); s.Count != 1 || s.MaxDur() != 2*time.Millisecond {
		t.Fatalf("Apply histogram = count %d max %v", s.Count, s.MaxDur())
	}
	evs := r.TraceEvents()
	if len(evs) != 1 || evs[0].Stage != StageApply || evs[0].At != 12*time.Millisecond {
		t.Fatalf("TraceEvents = %v", evs)
	}
}

func TestTraceRingWrap(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, TraceCap: 4})
	for seq := uint64(1); seq <= 6; seq++ {
		r.Stage(id(0, seq), StageDecide, time.Duration(seq)*time.Millisecond)
	}
	evs := r.TraceEvents()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(i + 3); e.ID.Seq != want {
			t.Errorf("event %d is seq %d, want %d (oldest-first after wrap)", i, e.ID.Seq, want)
		}
	}
}

func TestTimelinesGrouping(t *testing.T) {
	evs := []StageEvent{
		{ID: id(1, 32), Stage: StageAccept, At: 1 * time.Millisecond},
		{ID: id(0, 32), Stage: StageDecide, At: 3 * time.Millisecond},
		{ID: id(1, 32), Stage: StageADeliver, At: 5 * time.Millisecond},
	}
	tls := Timelines(evs)
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2", len(tls))
	}
	if tls[0].ID != id(0, 32) || tls[1].ID != id(1, 32) {
		t.Fatalf("timelines not ordered by ID: %v", tls)
	}
	if len(tls[1].Events) != 2 || tls[1].Events[0].Stage != StageAccept {
		t.Fatalf("events not grouped in recording order: %v", tls[1])
	}
	if got := tls[1].String(); got != "p2#32: accept@1ms adeliver@5ms" {
		t.Fatalf("Timeline.String() = %q", got)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	m := id(0, 0)
	r.Submitted(m, time.Millisecond)
	r.Delivered(m, time.Millisecond)
	r.Applied(m, 0, time.Millisecond)
	r.Stage(m, StageSeal, time.Millisecond)
	r.FsyncObserved(time.Millisecond)
	r.RecoveryObserved(time.Millisecond)
	r.InstallObserved(time.Millisecond)
	r.PayloadFetchObserved(time.Millisecond)
	if r.Sampled(m) {
		t.Error("nil recorder samples")
	}
	if r.SampleEvery() != 0 {
		t.Error("nil SampleEvery != 0")
	}
	if r.TraceEvents() != nil {
		t.Error("nil TraceEvents != nil")
	}
	if r.Histograms() != nil {
		t.Error("nil Histograms != nil")
	}
}

func TestHistogramsStableOrder(t *testing.T) {
	r := NewRecorder(Config{})
	var names []string
	for _, nh := range r.Histograms() {
		names = append(names, nh.Name)
	}
	want := []string{"deliver", "apply", "fsync", "recovery", "install", "payload_fetch"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Histograms order = %v, want %v", names, want)
	}
}

func BenchmarkRecorderUnsampledStage(b *testing.B) {
	// The common tracer path: an unsampled message costs one modulo.
	r := NewRecorder(Config{})
	m := id(0, 1)
	for i := 0; i < b.N; i++ {
		r.Stage(m, StageDecide, time.Duration(i))
	}
}

func BenchmarkRecorderNilStage(b *testing.B) {
	var r *Recorder
	m := id(0, 1)
	for i := 0; i < b.N; i++ {
		r.Stage(m, StageDecide, time.Duration(i))
	}
}
