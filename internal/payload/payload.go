// Package payload implements the resident payload store for digest
// ordering (modab.WithDigestOrdering): the bounded, origin+seq-indexed
// side table holding disseminated application messages while consensus
// orders only their compact descriptors (internal/wire.Descriptor).
//
// Life cycle of an entry:
//
//   - an announce (or payload-fetch response, or a restarted origin's
//     replayed backlog) Puts the batch's messages;
//   - when the descriptor decides and the engine adelivers the resolved
//     messages, MarkDelivered stamps the range with its instance number;
//   - PruneBelow(cutoff) drops delivered entries whose instance fell
//     behind the engine's decision retention horizon — until then they
//     remain servable to lagging peers through the payload-fetch repair
//     path, mirroring how decided instances themselves are retained.
//
// The store is bounded without its own eviction policy: undelivered
// entries are capped by the per-origin flow-control windows (an origin
// cannot have more undelivered messages in flight than its window), and
// delivered entries are capped by the decision horizon via PruneBelow.
//
// Like the batching accumulator, the store is a pure data structure driven
// from the owning engine's single-threaded event loop: no locks, clocks,
// or I/O.
package payload

import (
	"modab/internal/types"
	"modab/internal/wire"
)

// entry is one resident message and the instance that delivered it
// (0 = not yet adelivered).
type entry struct {
	msg         wire.AppMsg
	deliveredAt uint64
}

// Store indexes resident payload messages by (origin, application seq).
type Store struct {
	byOrigin map[types.ProcessID]map[uint64]entry
	bytes    int
	count    int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byOrigin: make(map[types.ProcessID]map[uint64]entry)}
}

// Len returns the number of resident messages.
func (s *Store) Len() int { return s.count }

// Bytes returns the total body bytes resident.
func (s *Store) Bytes() int { return s.bytes }

// Put makes one message resident. Re-putting an existing seq is a no-op
// (the first copy wins; a re-announce after restart carries identical
// bodies for surviving seqs, and dedup at delivery handles the rest).
func (s *Store) Put(m wire.AppMsg) {
	seqs := s.byOrigin[m.ID.Sender]
	if seqs == nil {
		seqs = make(map[uint64]entry)
		s.byOrigin[m.ID.Sender] = seqs
	}
	if _, ok := seqs[m.ID.Seq]; ok {
		return
	}
	seqs[m.ID.Seq] = entry{msg: m}
	s.bytes += len(m.Body)
	s.count++
}

// PutBatch makes every message of a batch resident.
func (s *Store) PutBatch(b wire.Batch) {
	for _, m := range b {
		s.Put(m)
	}
}

// Get returns one resident message.
func (s *Store) Get(origin types.ProcessID, seq uint64) (wire.AppMsg, bool) {
	e, ok := s.byOrigin[origin][seq]
	return e.msg, ok
}

// Has reports whether every message of the descriptor's range is
// resident.
func (s *Store) Has(d wire.Descriptor) bool {
	seqs := s.byOrigin[d.Origin]
	if len(seqs) == 0 {
		return false
	}
	for i := uint32(0); i < d.Count; i++ {
		if _, ok := seqs[d.FirstSeq+uint64(i)]; !ok {
			return false
		}
	}
	return true
}

// Range resolves a descriptor to its payload batch, in sequence order.
// Returns false if any message of the range is not resident.
func (s *Store) Range(d wire.Descriptor) (wire.Batch, bool) {
	seqs := s.byOrigin[d.Origin]
	if len(seqs) == 0 {
		return nil, false
	}
	b := make(wire.Batch, 0, d.Count)
	for i := uint32(0); i < d.Count; i++ {
		e, ok := seqs[d.FirstSeq+uint64(i)]
		if !ok {
			return nil, false
		}
		b = append(b, e.msg)
	}
	return b, true
}

// MarkDelivered stamps the descriptor's range as adelivered at instance
// k, starting its retention countdown. Messages of the range that are not
// resident (already pruned, or delivered through an overlapping
// post-restart descriptor) are skipped.
func (s *Store) MarkDelivered(d wire.Descriptor, k uint64) {
	seqs := s.byOrigin[d.Origin]
	if len(seqs) == 0 {
		return
	}
	for i := uint32(0); i < d.Count; i++ {
		seq := d.FirstSeq + uint64(i)
		if e, ok := seqs[seq]; ok && e.deliveredAt == 0 {
			e.deliveredAt = k
			seqs[seq] = e
		}
	}
}

// RetireOrigin drops every undelivered entry of the given origin,
// returning how many were dropped. It is the remove-boundary
// counterpart of PruneBelow: once an origin has been removed from the
// group, no descriptor can ever decide for its still-undelivered
// announced batches, so without retirement they would sit in the store
// until process shutdown (the flow-window bound caps them but never
// frees them). Delivered entries are left to normal horizon retention —
// they may still serve payload-fetch repair for lagging peers.
func (s *Store) RetireOrigin(origin types.ProcessID) int {
	seqs := s.byOrigin[origin]
	retired := 0
	for seq, e := range seqs {
		if e.deliveredAt == 0 {
			delete(seqs, seq)
			s.bytes -= len(e.msg.Body)
			s.count--
			retired++
		}
	}
	if len(seqs) == 0 {
		delete(s.byOrigin, origin)
	}
	return retired
}

// PruneBelow drops every delivered entry whose delivery instance is at or
// below cutoff. Undelivered entries are never pruned — they are bounded by
// the origins' flow windows and still needed for delivery.
func (s *Store) PruneBelow(cutoff uint64) {
	for origin, seqs := range s.byOrigin {
		for seq, e := range seqs {
			if e.deliveredAt != 0 && e.deliveredAt <= cutoff {
				delete(seqs, seq)
				s.bytes -= len(e.msg.Body)
				s.count--
			}
		}
		if len(seqs) == 0 {
			delete(s.byOrigin, origin)
		}
	}
}
