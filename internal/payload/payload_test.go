package payload

import (
	"testing"

	"modab/internal/types"
	"modab/internal/wire"
)

func msg(origin types.ProcessID, seq uint64, body string) wire.AppMsg {
	return wire.AppMsg{ID: types.MsgID{Sender: origin, Seq: seq}, Body: []byte(body)}
}

func contiguous(origin types.ProcessID, first uint64, n int) wire.Batch {
	b := make(wire.Batch, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, msg(origin, first+uint64(i), "x"))
	}
	return b
}

func TestStoreRangeResolvesDescriptor(t *testing.T) {
	s := NewStore()
	b := contiguous(1, 10, 5)
	d, err := wire.DescriptorFor(b, 77)
	if err != nil {
		t.Fatalf("DescriptorFor: %v", err)
	}
	if s.Has(d) {
		t.Fatal("empty store claims residency")
	}
	s.PutBatch(b)
	if !s.Has(d) {
		t.Fatal("full range not resident after PutBatch")
	}
	got, ok := s.Range(d)
	if !ok || len(got) != 5 {
		t.Fatalf("Range: ok=%v len=%d", ok, len(got))
	}
	if err := d.Validate(got); err != nil {
		t.Fatalf("resolved batch does not validate: %v", err)
	}
	if s.Len() != 5 || s.Bytes() != 5 {
		t.Fatalf("Len=%d Bytes=%d, want 5/5", s.Len(), s.Bytes())
	}
}

func TestStoreRangeMissingMessage(t *testing.T) {
	s := NewStore()
	b := contiguous(2, 1, 4)
	d, _ := wire.DescriptorFor(b, 1)
	for i, m := range b {
		if i == 2 {
			continue // hole
		}
		s.Put(m)
	}
	if s.Has(d) {
		t.Fatal("store with a hole claims residency")
	}
	if _, ok := s.Range(d); ok {
		t.Fatal("Range resolved across a hole")
	}
}

func TestStorePutIdempotent(t *testing.T) {
	s := NewStore()
	m := msg(0, 1, "abc")
	s.Put(m)
	s.Put(msg(0, 1, "different"))
	got, _ := s.Get(0, 1)
	if string(got.Body) != "abc" {
		t.Fatalf("second Put overwrote body: %q", got.Body)
	}
	if s.Len() != 1 || s.Bytes() != 3 {
		t.Fatalf("Len=%d Bytes=%d after duplicate Put", s.Len(), s.Bytes())
	}
}

func TestStoreRetention(t *testing.T) {
	s := NewStore()
	b1 := contiguous(1, 0, 3)
	b2 := contiguous(1, 3, 3)
	d1, _ := wire.DescriptorFor(b1, 1)
	d2, _ := wire.DescriptorFor(b2, 2)
	s.PutBatch(b1)
	s.PutBatch(b2)
	s.MarkDelivered(d1, 5)
	// Undelivered and above-cutoff entries survive.
	s.PruneBelow(4)
	if !s.Has(d1) || !s.Has(d2) {
		t.Fatal("prune below delivery instance dropped entries")
	}
	// At the cutoff the delivered range goes; the undelivered one stays
	// (it is bounded by flow control, not the horizon).
	s.PruneBelow(5)
	if s.Has(d1) {
		t.Fatal("delivered range survived its horizon")
	}
	if !s.Has(d2) {
		t.Fatal("undelivered range was pruned")
	}
	if s.Len() != 3 {
		t.Fatalf("Len=%d after prune, want 3", s.Len())
	}
}

func TestStoreOverlappingDescriptorsAfterRestart(t *testing.T) {
	// A restarted origin re-announces its backlog under fresh descriptor
	// boundaries: ranges may partially overlap an old descriptor. Both
	// must resolve, and delivery stamps must not double-apply.
	s := NewStore()
	old := contiguous(3, 1, 10) // [1,11)
	s.PutBatch(old)
	dOld, _ := wire.DescriptorFor(old, 1)
	reAnnounced := contiguous(3, 1, 20) // [1,21) regrouped after restart
	dNew, _ := wire.DescriptorFor(reAnnounced, (1<<48)|1)
	s.PutBatch(reAnnounced)
	if !s.Has(dOld) || !s.Has(dNew) {
		t.Fatal("overlapping ranges not both resident")
	}
	s.MarkDelivered(dOld, 7)
	s.MarkDelivered(dNew, 9) // seqs 1-10 keep their earlier stamp
	s.PruneBelow(7)
	if s.Has(dNew) {
		t.Fatal("overlap prefix should be pruned at the old stamp")
	}
	if _, ok := s.Get(3, 11); !ok {
		t.Fatal("suffix delivered at 9 pruned at cutoff 7")
	}
	s.PruneBelow(9)
	if s.Len() != 0 {
		t.Fatalf("Len=%d after full prune", s.Len())
	}
}

// TestRetireOrigin is the satellite-3 leak regression: a removed
// origin's undelivered announced batches must be dropped at the remove
// boundary, while its delivered entries stay on normal horizon
// retention, and other origins are untouched.
func TestRetireOrigin(t *testing.T) {
	s := NewStore()
	// Origin 1: 3 delivered + 4 undelivered messages.
	del := contiguous(1, 1, 3)
	s.PutBatch(del)
	d1, _ := wire.DescriptorFor(del, 9)
	s.MarkDelivered(d1, 9)
	s.PutBatch(contiguous(1, 4, 4))
	// Origin 2: 2 undelivered messages — must survive.
	s.PutBatch(contiguous(2, 1, 2))

	base := s.Len()
	if base != 9 {
		t.Fatalf("setup Len=%d, want 9", base)
	}
	if got := s.RetireOrigin(1); got != 4 {
		t.Fatalf("RetireOrigin retired %d, want 4", got)
	}
	if s.Len() != 5 || s.Bytes() != 5 {
		t.Fatalf("after retire Len=%d Bytes=%d, want 5/5", s.Len(), s.Bytes())
	}
	// Delivered entries still resident (serve payload-fetch repair)...
	if _, ok := s.Get(1, 2); !ok {
		t.Fatal("delivered entry of retired origin was dropped")
	}
	// ...until the horizon prunes them as usual.
	s.PruneBelow(9)
	if s.Len() != 2 {
		t.Fatalf("after prune Len=%d, want 2 (origin 2 only)", s.Len())
	}
	if _, ok := s.Get(2, 1); !ok {
		t.Fatal("unrelated origin lost an entry")
	}
	// Retiring an origin with no state is a no-op.
	if got := s.RetireOrigin(7); got != 0 {
		t.Fatalf("RetireOrigin(empty) = %d, want 0", got)
	}
}
