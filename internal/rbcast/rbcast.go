// Package rbcast implements the reliable broadcast microprotocol of the
// modular stack (paper §3.1).
//
// Classical algorithm: the sender sends a copy of m to all processes; on
// receiving m for the first time, every process re-sends m to all. That
// costs about n² messages per broadcast.
//
// Majority optimization (the mode used in the paper's modular stack):
// assuming a majority of processes never crash, only a fixed relay set of
// ⌊(n-1)/2⌋ processes re-sends, giving (n-1)·(⌊(n-1)/2⌋+1) =
// (n-1)·⌊(n+1)/2⌋ messages per broadcast. Together with the origin, the
// relay set forms a majority, so at least one correct process re-sends
// every rdelivered message and all correct processes rdeliver it.
package rbcast

import (
	"fmt"

	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/stack"
	"modab/internal/types"
	"modab/internal/wire"
)

// Mode selects the re-send strategy.
type Mode int

const (
	// Majority uses the relay-set optimization (default in the paper).
	Majority Mode = iota + 1
	// Classic re-sends at every process on first receipt.
	Classic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Majority:
		return "majority"
	case Classic:
		return "classic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// MessagesPerBroadcast returns the number of point-to-point messages a
// single rbcast generates in a good run for the given group size — the
// quantity used in the paper's §5.2.1 analysis.
func (m Mode) MessagesPerBroadcast(n int) int {
	switch m {
	case Majority:
		return (n - 1) * ((n-1)/2 + 1)
	case Classic:
		return (n - 1) * n
	default:
		return 0
	}
}

// incarnationShift splits the 64-bit wire sequence number into an
// incarnation tag (high 16 bits) and a per-incarnation counter (low 48
// bits). A restarted process broadcasts under a fresh incarnation, so its
// numbering — which necessarily restarts, rbcast state is not persisted —
// is never swallowed by peers' duplicate suppression for its pre-crash
// traffic. Incarnation 0 produces the exact wire bytes of the
// crash-stop protocol.
const incarnationShift = 48

// Layer is the reliable broadcast microprotocol. It accepts
// stack.EvBroadcastReq events and emits stack.EvRDeliver events to the
// subscriber layer.
type Layer struct {
	ctx        *stack.Context
	subscriber stack.Tag
	mode       Mode

	self types.ProcessID
	// members is the current view's sorted member set (updated by
	// stack.EvConfig at decided boundaries). Relay-set selection works in
	// member-rank space, not raw ID space: removing a member closes the
	// ring hole instead of skipping it, and the relay count follows the
	// live view size rather than the boot n.
	members     []types.ProcessID
	incarnation uint64
	nextSeq     uint64
	// seen suppresses duplicates per origin and per origin-incarnation
	// (each incarnation numbers its broadcasts independently).
	seen map[types.ProcessID]map[uint64]*dedup
}

var _ stack.Layer = (*Layer)(nil)

// New returns a reliable broadcast layer that rdelivers to the layer with
// the given tag. incarnation is the number of previous incarnations of
// this process (0 on first boot; the replayed boot-marker count after a
// crash-recovery restart) — it namespaces the broadcast sequence numbers
// this layer stamps on the wire.
func New(subscriber stack.Tag, mode Mode, incarnation uint64) *Layer {
	return &Layer{subscriber: subscriber, mode: mode, incarnation: incarnation}
}

// Tag implements stack.Layer.
func (l *Layer) Tag() stack.Tag { return stack.TagRBcast }

// Init implements stack.Layer.
func (l *Layer) Init(ctx *stack.Context) {
	l.ctx = ctx
	l.self = ctx.Env().Self()
	if l.members == nil {
		l.members = member.NewHistory(ctx.Env().N()).Current().Members
	}
	l.seen = make(map[types.ProcessID]map[uint64]*dedup, len(l.members))
}

// SeedView replaces the boot member set (joiners start from the config
// they were admitted into). Call before the stack starts; it survives
// Init in either order.
func (l *Layer) SeedView(v member.View) {
	l.members = append([]types.ProcessID(nil), v.Members...)
}

// Start implements stack.Layer.
func (l *Layer) Start() {}

// Event implements stack.Layer: EvBroadcastReq broadcasts, EvConfig
// switches the member set at a decided boundary. Broadcasts in flight
// across the switch stay reliable: the origin's send already reached
// every member of its view, and the decision-fetch path of the consensus
// layer repairs any rdelivery a relay-set change may have cost.
func (l *Layer) Event(ev stack.Event) {
	switch ev.Kind {
	case stack.EvConfig:
		l.members = append([]types.ProcessID(nil), ev.Members...)
		return
	case stack.EvBroadcastReq:
	default:
		return
	}
	l.nextSeq++
	m := message{origin: l.self, seq: l.incarnation<<incarnationShift | l.nextSeq, payload: ev.Data}
	// The local process rdelivers its own broadcast immediately.
	l.markSeen(m.origin, m.seq)
	l.ctx.Emit(l.subscriber, stack.Event{Kind: stack.EvRDeliver, From: m.origin, Data: m.payload})
	l.sendToOthers(m, types.Nobody)
}

// Receive implements stack.Layer.
func (l *Layer) Receive(from types.ProcessID, data []byte) error {
	m, err := unmarshalMessage(data)
	if err != nil {
		return fmt.Errorf("rbcast: bad message from %s: %w", from, err)
	}
	if l.isSeen(m.origin, m.seq) {
		return nil
	}
	l.markSeen(m.origin, m.seq)
	if l.shouldRelay(m.origin) {
		l.sendToOthers(m, from)
	}
	l.ctx.Emit(l.subscriber, stack.Event{Kind: stack.EvRDeliver, From: m.origin, Data: m.payload})
	return nil
}

// Timer implements stack.Layer; rbcast arms no timers.
func (l *Layer) Timer(engine.TimerID) {}

// Suspect implements stack.Layer; rbcast ignores the failure detector.
func (l *Layer) Suspect(types.ProcessID, bool) {}

// shouldRelay reports whether the local process re-sends broadcasts
// originated by origin.
func (l *Layer) shouldRelay(origin types.ProcessID) bool {
	if l.mode == Classic {
		return true
	}
	// Relay set: the ⌊(n-1)/2⌋ members following the origin in member-rank
	// ring order. Origin plus relay set is a majority of the view. A
	// non-member never relays, and broadcasts from a non-member origin (a
	// removed process draining) are not relayed either — the origin's own
	// send-to-all plus the decision-fetch path cover them.
	n := len(l.members)
	ro, rs := -1, -1
	for i, p := range l.members {
		if p == origin {
			ro = i
		}
		if p == l.self {
			rs = i
		}
	}
	if ro < 0 || rs < 0 {
		return false
	}
	relays := (n - 1) / 2
	d := (rs - ro + n) % n
	return d >= 1 && d <= relays
}

// sendToOthers transmits m to every current member except self. The
// textbook algorithm (and the paper's §5.2.1 message count) re-sends to
// all n-1 other processes, including the origin.
func (l *Layer) sendToOthers(m message, relayedFrom types.ProcessID) {
	sends := 0
	for _, p := range l.members {
		if p != l.self {
			sends++
		}
	}
	if relayedFrom != types.Nobody {
		l.ctx.Env().Counters().Retransmissions.Add(int64(sends))
	}
	l.ctx.NetSendMembers(l.members, m.marshal())
}

// message is the rbcast wire unit.
type message struct {
	origin  types.ProcessID
	seq     uint64
	payload []byte
}

func (m message) marshal() []byte {
	w := wire.NewWriter(16 + len(m.payload))
	w.Int32(int32(m.origin))
	w.Uint64(m.seq)
	w.Raw(m.payload)
	return w.Bytes()
}

func unmarshalMessage(data []byte) (message, error) {
	r := wire.NewReader(data)
	var m message
	m.origin = types.ProcessID(r.Int32())
	m.seq = r.Uint64()
	m.payload = r.Rest()
	if err := r.Err(); err != nil {
		return message{}, err
	}
	return m, nil
}

// dedup suppresses duplicate (origin, incarnation, seq) triples with a
// contiguous watermark plus a sparse set for out-of-order arrivals, so
// memory stays bounded on long runs. Each origin incarnation numbers its
// broadcasts contiguously from 1, so the watermark keeps advancing across
// restarts instead of wedging on the inter-incarnation gap.
type dedup struct {
	watermark uint64
	sparse    map[uint64]struct{}
}

func (l *Layer) dedupFor(origin types.ProcessID, inc uint64) *dedup {
	byInc := l.seen[origin]
	if byInc == nil {
		byInc = make(map[uint64]*dedup, 1)
		l.seen[origin] = byInc
	}
	d := byInc[inc]
	if d == nil {
		d = &dedup{sparse: make(map[uint64]struct{})}
		byInc[inc] = d
	}
	return d
}

// splitSeq separates a wire sequence number into its incarnation tag and
// per-incarnation counter.
func splitSeq(seq uint64) (inc, ctr uint64) {
	return seq >> incarnationShift, seq & (1<<incarnationShift - 1)
}

func (l *Layer) isSeen(origin types.ProcessID, seq uint64) bool {
	inc, ctr := splitSeq(seq)
	d := l.dedupFor(origin, inc)
	if ctr <= d.watermark {
		return true
	}
	_, ok := d.sparse[ctr]
	return ok
}

func (l *Layer) markSeen(origin types.ProcessID, seq uint64) {
	inc, ctr := splitSeq(seq)
	d := l.dedupFor(origin, inc)
	if ctr <= d.watermark {
		return
	}
	d.sparse[ctr] = struct{}{}
	for {
		if _, ok := d.sparse[d.watermark+1]; !ok {
			break
		}
		delete(d.sparse, d.watermark+1)
		d.watermark++
	}
}
