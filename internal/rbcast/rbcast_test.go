package rbcast

import (
	"fmt"
	"testing"

	"modab/internal/engine"
	"modab/internal/enginetest"
	"modab/internal/stack"
	"modab/internal/types"
)

// sink records rdelivered payloads; it stands in for the consensus layer.
type sink struct {
	delivered []stack.Event
}

var _ stack.Layer = (*sink)(nil)

func (s *sink) Tag() stack.Tag                        { return stack.TagConsensus }
func (s *sink) Init(*stack.Context)                   {}
func (s *sink) Start()                                {}
func (s *sink) Event(ev stack.Event)                  { s.delivered = append(s.delivered, ev) }
func (s *sink) Receive(types.ProcessID, []byte) error { return nil }
func (s *sink) Timer(engine.TimerID)                  {}
func (s *sink) Suspect(types.ProcessID, bool)         {}

// rig builds an rbcast layer wired to a sink at a given process.
func rig(self types.ProcessID, n int, mode Mode) (*enginetest.Env, *stack.Stack, *Layer, *sink) {
	env := enginetest.New(self, n)
	rb := New(stack.TagConsensus, mode, 0)
	sk := &sink{}
	st := stack.New(env, rb, sk)
	st.Start()
	return env, st, rb, sk
}

func TestBroadcastDeliversLocallyAndSendsToAll(t *testing.T) {
	env, _, rb, sk := rig(0, 5, Majority)
	rb.Event(stack.Event{Kind: stack.EvBroadcastReq, Data: []byte("m1")})
	if len(sk.delivered) != 1 || string(sk.delivered[0].Data) != "m1" {
		t.Fatalf("local rdeliver missing: %+v", sk.delivered)
	}
	if sk.delivered[0].From != 0 {
		t.Fatalf("origin = %v", sk.delivered[0].From)
	}
	if len(env.Sends) != 4 {
		t.Fatalf("sends = %d, want n-1 = 4", len(env.Sends))
	}
}

func TestFirstReceiptDeliversOnceAndDupSuppressed(t *testing.T) {
	env0, st0, rb0, _ := rig(0, 5, Majority)
	// Broadcast at p0, replay its wire message into p3 twice.
	rb0.Event(stack.Event{Kind: stack.EvBroadcastReq, Data: []byte("m")})
	frame := env0.Sends[0].Data

	_, st3, _, sk3 := rig(3, 5, Majority)
	if err := st3.Receive(0, frame); err != nil {
		t.Fatal(err)
	}
	if err := st3.Receive(0, frame); err != nil {
		t.Fatal(err)
	}
	if len(sk3.delivered) != 1 {
		t.Fatalf("delivered %d times, want 1", len(sk3.delivered))
	}
	_ = st0
}

// TestRelaySetSize checks that exactly ⌊(n-1)/2⌋ processes relay each
// origin's broadcasts, so the total message count matches §5.2.1.
func TestRelaySetSize(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 9} {
		for origin := 0; origin < n; origin++ {
			relays := 0
			for self := 0; self < n; self++ {
				if self == origin {
					continue
				}
				l := &Layer{mode: Majority, members: bootMembers(n), self: types.ProcessID(self)}
				if l.shouldRelay(types.ProcessID(origin)) {
					relays++
				}
			}
			if want := (n - 1) / 2; relays != want {
				t.Errorf("n=%d origin=%d: %d relays, want %d", n, origin, relays, want)
			}
		}
	}
}

// TestMessageCountPerBroadcast simulates a full broadcast through every
// process and counts wire messages against the analytical formulas.
func TestMessageCountPerBroadcast(t *testing.T) {
	for _, mode := range []Mode{Majority, Classic} {
		for _, n := range []int{3, 5, 7} {
			envs := make([]*enginetest.Env, n)
			stacks := make([]*stack.Stack, n)
			rbs := make([]*Layer, n)
			for i := 0; i < n; i++ {
				envs[i], stacks[i], rbs[i], _ = rig(types.ProcessID(i), n, mode)
			}
			// p0 broadcasts; deliver every queued send until quiescence.
			rbs[0].Event(stack.Event{Kind: stack.EvBroadcastReq, Data: []byte("x")})
			total := 0
			queue := []enginetest.Sent{}
			drain := func(from types.ProcessID, env *enginetest.Env) []enginetest.Sent {
				out := make([]enginetest.Sent, len(env.Sends))
				copy(out, env.Sends)
				env.Sends = nil
				return out
			}
			type inflight struct {
				from types.ProcessID
				s    enginetest.Sent
			}
			var fly []inflight
			for _, s := range drain(0, envs[0]) {
				fly = append(fly, inflight{0, s})
			}
			for len(fly) > 0 {
				m := fly[0]
				fly = fly[1:]
				total++
				if err := stacks[m.s.To].Receive(m.from, m.s.Data); err != nil {
					t.Fatal(err)
				}
				for _, s := range drain(m.s.To, envs[m.s.To]) {
					fly = append(fly, inflight{m.s.To, s})
				}
			}
			if want := mode.MessagesPerBroadcast(n); total != want {
				t.Errorf("mode=%s n=%d: %d messages, want %d", mode, n, total, want)
			}
			_ = queue
		}
	}
}

// TestAllCorrectDeliverDespiteOriginCrash drops the origin's sends to a
// subset of processes (crash mid-broadcast); relays must cover everyone.
func TestAllCorrectDeliverDespiteOriginCrash(t *testing.T) {
	const n = 5
	envs := make([]*enginetest.Env, n)
	stacks := make([]*stack.Stack, n)
	rbs := make([]*Layer, n)
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		envs[i], stacks[i], rbs[i], sinks[i] = rig(types.ProcessID(i), n, Majority)
	}
	// p0 broadcasts but "crashes" after reaching only its relay set
	// (p1, p2): drop sends to p3, p4.
	rbs[0].Event(stack.Event{Kind: stack.EvBroadcastReq, Data: []byte("m")})
	type inflight struct {
		from types.ProcessID
		s    enginetest.Sent
	}
	var fly []inflight
	for _, s := range envs[0].Sends {
		if s.To == 3 || s.To == 4 {
			continue // lost in the crash
		}
		fly = append(fly, inflight{0, s})
	}
	envs[0].Sends = nil
	for len(fly) > 0 {
		m := fly[0]
		fly = fly[1:]
		if err := stacks[m.s.To].Receive(m.from, m.s.Data); err != nil {
			t.Fatal(err)
		}
		env := envs[m.s.To]
		for _, s := range env.Sends {
			fly = append(fly, inflight{m.s.To, s})
		}
		env.Sends = nil
	}
	for i := 1; i < n; i++ {
		if len(sinks[i].delivered) != 1 {
			t.Errorf("p%d delivered %d, want 1 (relay coverage broken)", i+1, len(sinks[i].delivered))
		}
	}
}

func TestModeStringsAndCounts(t *testing.T) {
	if Majority.String() != "majority" || Classic.String() != "classic" {
		t.Error("mode names")
	}
	if got := Mode(9).String(); got != "mode(9)" {
		t.Errorf("unknown mode = %q", got)
	}
	// Paper's §5.2.1: majority = (n-1)·⌊(n+1)/2⌋.
	for n := 2; n <= 9; n++ {
		if got, want := Majority.MessagesPerBroadcast(n), (n-1)*((n+1)/2); got != want {
			t.Errorf("majority n=%d: %d != %d", n, got, want)
		}
		if got, want := Classic.MessagesPerBroadcast(n), (n-1)*n; got != want {
			t.Errorf("classic n=%d: %d != %d", n, got, want)
		}
	}
	if Mode(0).MessagesPerBroadcast(3) != 0 {
		t.Error("unknown mode count should be 0")
	}
}

func TestMalformedMessage(t *testing.T) {
	_, st, _, _ := rig(1, 3, Majority)
	if err := st.Receive(0, []byte{byte(stack.TagRBcast), 1, 2}); err == nil {
		t.Fatal("truncated rbcast message accepted")
	}
}

func TestWatermarkCompaction(t *testing.T) {
	_, _, rb, _ := rig(0, 3, Majority)
	// Mark 1..100 in order: everything should compact into the watermark.
	for seq := uint64(1); seq <= 100; seq++ {
		rb.markSeen(1, seq)
	}
	d := rb.seen[1][0]
	if d.watermark != 100 || len(d.sparse) != 0 {
		t.Fatalf("watermark=%d sparse=%d", d.watermark, len(d.sparse))
	}
	// Out-of-order: gap keeps sparse entries until filled.
	rb.markSeen(2, 5)
	if rb.seen[2][0].watermark != 0 || len(rb.seen[2][0].sparse) != 1 {
		t.Fatal("gap not kept sparse")
	}
	for _, seq := range []uint64{1, 2, 3, 4} {
		rb.markSeen(2, seq)
	}
	if rb.seen[2][0].watermark != 5 || len(rb.seen[2][0].sparse) != 0 {
		t.Fatalf("gap fill: watermark=%d sparse=%d", rb.seen[2][0].watermark, len(rb.seen[2][0].sparse))
	}
}

// TestIncarnationNamespacing pins the crash-recovery contract: a restarted
// origin's broadcasts restart their numbering under a fresh incarnation
// and must NOT be suppressed by the duplicate state of its previous
// incarnation — that wedge is exactly the bug that stalled survivors
// after a coordinator restart. Each incarnation compacts independently.
func TestIncarnationNamespacing(t *testing.T) {
	env0, _, rb0, _ := rig(0, 3, Majority)
	rb0.Event(stack.Event{Kind: stack.EvBroadcastReq, Data: []byte("before-crash")})
	preCrash := env0.Sends[0].Data

	// The same process after a crash-recovery restart: incarnation 1.
	env1 := enginetest.New(0, 3)
	rb1 := New(stack.TagConsensus, Majority, 1)
	sk1 := &sink{}
	st1 := stack.New(env1, rb1, sk1)
	st1.Start()
	rb1.Event(stack.Event{Kind: stack.EvBroadcastReq, Data: []byte("after-restart")})
	postRestart := env1.Sends[0].Data

	// A survivor that saw the pre-crash broadcast must still rdeliver the
	// restarted incarnation's first broadcast (both carry counter 1).
	_, st2, rb2, sk2 := rig(1, 3, Majority)
	if err := st2.Receive(0, preCrash); err != nil {
		t.Fatal(err)
	}
	if err := st2.Receive(0, postRestart); err != nil {
		t.Fatal(err)
	}
	if len(sk2.delivered) != 2 {
		t.Fatalf("survivor rdelivered %d of 2 broadcasts across the origin's restart", len(sk2.delivered))
	}
	// Both incarnations' duplicates stay suppressed independently.
	if err := st2.Receive(0, preCrash); err != nil {
		t.Fatal(err)
	}
	if err := st2.Receive(0, postRestart); err != nil {
		t.Fatal(err)
	}
	if len(sk2.delivered) != 2 {
		t.Fatalf("duplicate suppression broke across incarnations: %d deliveries", len(sk2.delivered))
	}
	if got := len(rb2.seen[0]); got != 2 {
		t.Fatalf("survivor tracks %d incarnations of p1, want 2", got)
	}
}

func TestClassicEveryoneRelays(t *testing.T) {
	for self := 1; self < 4; self++ {
		l := &Layer{mode: Classic, members: bootMembers(4), self: types.ProcessID(self)}
		if !l.shouldRelay(0) {
			t.Errorf("classic: p%d should relay", self+1)
		}
	}
}

func ExampleMode_MessagesPerBroadcast() {
	fmt.Println(Majority.MessagesPerBroadcast(3), Classic.MessagesPerBroadcast(3))
	// Output: 4 6
}

// bootMembers is the static epoch-0 member set {0..n-1}.
func bootMembers(n int) []types.ProcessID {
	out := make([]types.ProcessID, n)
	for i := range out {
		out[i] = types.ProcessID(i)
	}
	return out
}
