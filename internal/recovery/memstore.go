package recovery

import "modab/internal/wire"

// MemStore is the in-memory Store used by the deterministic simulator
// (netsim's "simulated durable storage") and by engine tests: it survives
// a simulated crash exactly the way a file-backed log survives a process
// crash, with none of the I/O nondeterminism. Appends deep-copy their
// batches so a recycled caller buffer cannot corrupt the log.
type MemStore struct {
	recs      []Rec
	decisions map[uint64]wire.Batch
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{decisions: make(map[uint64]wire.Batch)}
}

// copyBatch clones a batch including its message bodies.
func copyBatch(b wire.Batch) wire.Batch {
	cp := make(wire.Batch, len(b))
	for i, m := range b {
		body := make([]byte, len(m.Body))
		copy(body, m.Body)
		cp[i] = wire.AppMsg{ID: m.ID, Body: body}
	}
	return cp
}

// PersistAdmit implements engine.Persister.
func (s *MemStore) PersistAdmit(b wire.Batch) {
	s.recs = append(s.recs, Rec{Kind: RecAdmit, Batch: copyBatch(b)})
}

// PersistBoot implements Store.
func (s *MemStore) PersistBoot() {
	s.recs = append(s.recs, Rec{Kind: RecBoot})
}

// PersistDecision implements engine.Persister.
func (s *MemStore) PersistDecision(k uint64, b wire.Batch) {
	cp := copyBatch(b)
	s.recs = append(s.recs, Rec{Kind: RecDecision, Instance: k, Batch: cp})
	s.decisions[k] = cp
}

// ReadDecision implements engine.Persister.
func (s *MemStore) ReadDecision(k uint64) (wire.Batch, bool) {
	b, ok := s.decisions[k]
	return b, ok
}

// Replay implements Store.
func (s *MemStore) Replay(fn func(r Rec) error) error {
	for _, r := range s.recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements Store (memory is always "stable").
func (s *MemStore) Sync() error { return nil }

// TruncateBelow implements Store at record granularity: decision records
// at or below snap and admit records fully covered by the snapshot are
// dropped; boot markers always survive. Served decisions at or below
// snap disappear too, so a peer asking for them is answered the way a
// truncated WAL would answer — with the snapshot instead.
func (s *MemStore) TruncateBelow(snap uint64, covered func(m wire.AppMsg) bool) int {
	if snap == 0 {
		return 0
	}
	removed := 0
	kept := s.recs[:0]
	for _, r := range s.recs {
		drop := false
		switch r.Kind {
		case RecDecision:
			drop = r.Instance <= snap
		case RecAdmit:
			if covered != nil && len(r.Batch) > 0 {
				drop = true
				for _, m := range r.Batch {
					if !covered(m) {
						drop = false
						break
					}
				}
			}
		}
		if drop {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	s.recs = kept
	for k := range s.decisions {
		if k <= snap {
			delete(s.decisions, k)
		}
	}
	return removed
}

// Close implements Store; the store stays replayable afterwards, like a
// log file outliving its process.
func (s *MemStore) Close() error { return nil }

// Len returns the number of appended records (tests).
func (s *MemStore) Len() int { return len(s.recs) }
