// Package recovery implements the crash-recovery subsystem shared by both
// atomic broadcast stacks: the durable-store contract the engines persist
// through, the replay that turns a write-ahead log back into engine state,
// and the bookkeeping of the state-transfer protocol a restarted node runs
// to fetch the decisions it missed while down.
//
// The paper's system model (§2.1) is crash-stop: a crashed process is gone
// forever. This package relaxes that to crash-recovery — a process may
// stop and later restart with its stable storage intact — which is the
// model a deployable atomic broadcast service needs (cf. Ring Paxos's
// treatment of recovery as a first-class concern). The protocol:
//
//  1. Replay: the restarting node replays its local log (ReplayState),
//     reconstructing its decided watermark, the per-sender delivered
//     state, its unordered own messages, and its next sequence number.
//  2. Announce: the engine broadcasts a state-transfer request carrying
//     its decided watermark (wire.FrameRecoverReq in the modular stack, a
//     RECOVER message in the monolithic one).
//  3. Catch-up: live peers answer with chunks of contiguous decided
//     instances (served from memory or their own log); the node applies
//     them through its normal decision path — persisting and adelivering
//     each — and pulls the next chunk until it reaches the highest decided
//     instance any peer reported.
//  4. Resume: only then does the node propose again, exactly at the right
//     instance and sequence number — no duplicate, missed, or reordered
//     deliveries.
//
// While catching up the node neither proposes nor advances rounds for
// instances below its target: a recovering process re-entering consensus
// instances that its peers have long decided (and pruned past their
// retention horizon) could otherwise manufacture a second, conflicting
// decision. Consensus votes themselves are not persisted — the recovery
// guarantee therefore assumes, like the paper's model, that a majority of
// processes stays up while an instance is in flight (see
// docs/ARCHITECTURE.md for the model delta).
package recovery

import (
	"fmt"
	"time"

	"modab/internal/dedup"
	"modab/internal/engine"
	"modab/internal/types"
	"modab/internal/wire"
)

// ChunkInstances is how many decided instances a state-transfer response
// carries at most; the requester pulls chunk after chunk until caught up.
const ChunkInstances = 32

// RecKind discriminates write-ahead log records.
type RecKind uint8

const (
	// RecAdmit records locally admitted application messages (written
	// before their first diffusion).
	RecAdmit RecKind = 1
	// RecDecision records one decided consensus instance (written before
	// its batch is adelivered).
	RecDecision RecKind = 2
	// RecBoot marks one incarnation starting. Drivers stamp it on every
	// store open, so a process that crashed before logging any protocol
	// record is still recognized as restarting — it must catch up, not
	// rejoin as if the group were fresh.
	RecBoot RecKind = 3
)

// Rec is one replayed log record.
type Rec struct {
	Kind RecKind
	// Instance is set for RecDecision records.
	Instance uint64
	// Batch carries the admitted messages (RecAdmit) or the decided batch
	// (RecDecision).
	Batch wire.Batch
}

// Store is the durable persistence abstraction of the subsystem: the
// engines write through it (engine.Persister), replay reads it back, and
// state transfer serves old decisions from it. internal/wal implements it
// on segmented files; MemStore implements it in memory for the
// deterministic simulator and for tests.
type Store interface {
	engine.Persister
	// PersistBoot stamps the start of a new incarnation (see RecBoot).
	PersistBoot()
	// Replay streams every record from the beginning of the log in append
	// order. A non-nil error from fn aborts the replay and is returned.
	Replay(fn func(r Rec) error) error
	// Sync flushes buffered appends to stable storage.
	Sync() error
	// TruncateBelow drops log state made redundant by a durable snapshot
	// at instance snap: decision records at or below snap, and admit
	// records all of whose messages covered reports as folded into the
	// snapshot. Boot markers are never dropped — they carry the
	// incarnation count, which no snapshot covers. Implementations may
	// retain more than required (the WAL frees whole segments only); they
	// must never drop anything else. Returns the number of storage units
	// removed (segments for the WAL, records for MemStore); snap == 0
	// is a no-op.
	TruncateBelow(snap uint64, covered func(m wire.AppMsg) bool) int
	// Close syncs and releases the store. The underlying log remains on
	// stable storage for the next incarnation to replay.
	Close() error
}

// ReplayState replays a store into the compact state a restarting engine
// is seeded with. It returns nil for an empty (first-boot) log.
func ReplayState(s Store, n int) (*engine.RecoveredState, error) {
	return ReplayStateFrom(s, n, types.Nobody, 0, nil)
}

// ReplayStateFrom is ReplayState seeded with a local snapshot: the log is
// replayed on top of the snapshot boundary, so only the suffix above snap
// contributes replayed decisions (O(suffix), not O(history) — the point
// of snapshotting). snapDedup is the delivered state carried by the
// snapshot envelope; self lets the node's own highest ordered sequence
// number be recovered from it even after the admit records were
// truncated away. With snap == 0 it degenerates to a plain replay.
func ReplayStateFrom(s Store, n int, self types.ProcessID, snap uint64, snapDedup dedup.Map) (*engine.RecoveredState, error) {
	st := &engine.RecoveredState{
		NextDecide: snap + 1,
		Delivered:  dedup.NewMap(n),
	}
	if snapDedup != nil {
		st.Delivered.Merge(snapDedup)
	}
	admitted := make(map[uint64]wire.AppMsg) // own seq -> msg, not yet ordered
	selfKnown := self != types.Nobody        // admit records also identify the local process
	var maxSeq uint64
	if selfKnown && snapDedup != nil {
		maxSeq = snapDedup.For(self).MaxSeen()
	}
	empty := true
	err := s.Replay(func(r Rec) error {
		empty = false
		switch r.Kind {
		case RecAdmit:
			for _, m := range r.Batch {
				self = m.ID.Sender
				selfKnown = true
				admitted[m.ID.Seq] = m
				if m.ID.Seq > maxSeq {
					maxSeq = m.ID.Seq
				}
			}
		case RecDecision:
			if r.Instance < st.NextDecide {
				// Duplicate from a previous incarnation's catch-up, or an
				// instance the snapshot already covers; the append order
				// still guarantees instances never regress below what
				// replay already processed.
				return nil
			}
			if r.Instance != st.NextDecide {
				return fmt.Errorf("recovery: log skips from instance %d to %d", st.NextDecide, r.Instance)
			}
			for _, m := range r.Batch {
				st.Delivered.Mark(m.ID)
				st.ReplayedMsgs++
				if selfKnown && m.ID.Sender == self {
					delete(admitted, m.ID.Seq)
					if m.ID.Seq > maxSeq {
						maxSeq = m.ID.Seq
					}
				}
			}
			st.NextDecide++
		case RecBoot:
			// A previous incarnation existed; beyond making the replay
			// non-empty, the marker count becomes the new incarnation's
			// number (wire-visible sequence numbering is namespaced by it).
			st.Boots++
		default:
			return fmt.Errorf("recovery: unknown record kind %d", r.Kind)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if empty && snap == 0 {
		return nil, nil
	}
	st.NextSeq = maxSeq + 1
	st.Own = make(wire.Batch, 0, len(admitted))
	for _, m := range admitted {
		// An admit whose message the snapshot already covers was ordered
		// before the boundary; re-proposing it would deliver a duplicate.
		if st.Delivered.Seen(m.ID) {
			continue
		}
		st.Own = append(st.Own, m)
	}
	st.Own.SortDeterministic()
	return st, nil
}

// Catchup tracks one restarted engine's state-transfer progress. Engines
// drive it from their single-threaded event loop; it needs no locking.
type Catchup struct {
	// active reports that the engine is still fetching missed decisions
	// and must not propose.
	active bool
	// target is the highest decided instance any peer has reported.
	target uint64
	// startedAt is the engine clock when recovery began (latency metric).
	startedAt time.Duration
	// quorum is how many distinct peers must report their horizon before
	// the catch-up may finish; responders records who already did. The
	// first response could come from a peer that is itself behind (e.g.
	// in a simultaneous restart) — finishing against its horizon alone
	// would let a lagging node resume proposing into instances the rest
	// of the cluster decided and pruned long ago.
	quorum     int
	responders map[types.ProcessID]struct{}
}

// Quorum returns how many distinct peer horizons a recovering process of
// an n-group waits for before trusting its catch-up target: enough that
// the process plus the responders form a majority. Exactly satisfiable
// whenever the cluster can make progress at all (a majority up), so
// waiting for it never blocks a recoverable configuration.
func Quorum(n int) int { return types.Majority(n) - 1 }

// Begin marks the catch-up active from now (engine clock); quorum is the
// number of distinct responders required to finish (see Quorum).
func (c *Catchup) Begin(now time.Duration, quorum int) {
	c.active = true
	c.startedAt = now
	c.quorum = quorum
	c.responders = make(map[types.ProcessID]struct{})
}

// Active reports whether the engine is still catching up.
func (c *Catchup) Active() bool { return c.active }

// Observe folds one peer's reported decided horizon into the target.
func (c *Catchup) Observe(from types.ProcessID, upTo uint64) {
	if c.responders != nil {
		c.responders[from] = struct{}{}
	}
	if upTo > c.target {
		c.target = upTo
	}
}

// Target returns the highest decided instance reported so far.
func (c *Catchup) Target() uint64 { return c.target }

// MaybeFinish ends the catch-up once a quorum of peers has reported and
// the engine's next undecided instance passed every reported target; it
// returns the recovery latency and true exactly once, at the transition.
func (c *Catchup) MaybeFinish(nextDecide uint64, now time.Duration) (time.Duration, bool) {
	if !c.active || nextDecide <= c.target || len(c.responders) < c.quorum {
		return 0, false
	}
	c.active = false
	return now - c.startedAt, true
}

// ChunkEnd returns the last instance of the response chunk that starts at
// from given the responder's decided horizon (0 when nothing to serve).
func ChunkEnd(from, decidedUpTo uint64) uint64 {
	if from > decidedUpTo {
		return 0
	}
	end := from + ChunkInstances - 1
	if end > decidedUpTo {
		end = decidedUpTo
	}
	return end
}
