package recovery

import (
	"errors"
	"testing"
	"time"

	"modab/internal/types"
	"modab/internal/wire"
)

func msg(sender types.ProcessID, seq uint64, body string) wire.AppMsg {
	return wire.AppMsg{ID: types.MsgID{Sender: sender, Seq: seq}, Body: []byte(body)}
}

func TestReplayStateEmpty(t *testing.T) {
	st, err := ReplayState(NewMemStore(), 3)
	if err != nil {
		t.Fatalf("ReplayState: %v", err)
	}
	if st != nil {
		t.Fatalf("empty store replayed to %+v, want nil", st)
	}
}

func TestReplayStateBootOnly(t *testing.T) {
	s := NewMemStore()
	s.PersistBoot()
	st, err := ReplayState(s, 3)
	if err != nil {
		t.Fatalf("ReplayState: %v", err)
	}
	if st == nil {
		t.Fatal("boot-marked store replayed to nil — a crashed-at-boot process would rejoin as fresh")
	}
	if st.NextDecide != 1 || st.NextSeq != 1 || len(st.Own) != 0 {
		t.Fatalf("boot-only state = %+v", st)
	}
}

func TestReplayStateReconstruction(t *testing.T) {
	s := NewMemStore()
	s.PersistBoot()
	// Local process 1 admits seqs 1..3; instances 1 and 2 decide seqs 1-2
	// (plus peer traffic); seq 3 stays unordered.
	s.PersistAdmit(wire.Batch{msg(1, 1, "a"), msg(1, 2, "b")})
	s.PersistDecision(1, wire.Batch{msg(0, 1, "x"), msg(1, 1, "a")})
	s.PersistAdmit(wire.Batch{msg(1, 3, "c")})
	s.PersistDecision(2, wire.Batch{msg(1, 2, "b"), msg(2, 1, "y")})

	st, err := ReplayState(s, 3)
	if err != nil {
		t.Fatalf("ReplayState: %v", err)
	}
	if st.NextDecide != 3 {
		t.Errorf("NextDecide = %d, want 3", st.NextDecide)
	}
	if st.NextSeq != 4 {
		t.Errorf("NextSeq = %d, want 4 (resume above every logged own seq)", st.NextSeq)
	}
	if st.ReplayedMsgs != 4 {
		t.Errorf("ReplayedMsgs = %d, want 4", st.ReplayedMsgs)
	}
	if len(st.Own) != 1 || st.Own[0].ID.Seq != 3 || string(st.Own[0].Body) != "c" {
		t.Errorf("Own = %v, want just p2#3", st.Own)
	}
	for _, id := range []types.MsgID{{Sender: 0, Seq: 1}, {Sender: 1, Seq: 1}, {Sender: 1, Seq: 2}, {Sender: 2, Seq: 1}} {
		if !st.Delivered.Seen(id) {
			t.Errorf("replayed delivered state misses %s", id)
		}
	}
	if st.Delivered.Seen(types.MsgID{Sender: 1, Seq: 3}) {
		t.Error("unordered own message marked delivered")
	}
}

func TestReplayStateDecisionGap(t *testing.T) {
	s := NewMemStore()
	s.PersistDecision(1, wire.Batch{msg(0, 1, "x")})
	s.PersistDecision(3, wire.Batch{msg(0, 2, "y")})
	if _, err := ReplayState(s, 3); err == nil {
		t.Fatal("gapped decision log replayed without error")
	}
}

func TestReplayStateDuplicateDecisionTolerated(t *testing.T) {
	s := NewMemStore()
	s.PersistDecision(1, wire.Batch{msg(0, 1, "x")})
	s.PersistDecision(1, wire.Batch{msg(0, 1, "x")})
	s.PersistDecision(2, wire.Batch{msg(0, 2, "y")})
	st, err := ReplayState(s, 2)
	if err != nil {
		t.Fatalf("ReplayState: %v", err)
	}
	if st.NextDecide != 3 {
		t.Fatalf("NextDecide = %d, want 3", st.NextDecide)
	}
}

func TestReplayAbortPropagates(t *testing.T) {
	s := NewMemStore()
	s.PersistBoot()
	s.PersistBoot()
	want := errors.New("stop")
	calls := 0
	err := s.Replay(func(Rec) error {
		calls++
		return want
	})
	if !errors.Is(err, want) || calls != 1 {
		t.Fatalf("Replay aborted after %d calls with %v", calls, err)
	}
}

func TestMemStoreCopiesBatches(t *testing.T) {
	s := NewMemStore()
	body := []byte("mutate-me")
	b := wire.Batch{{ID: types.MsgID{Sender: 0, Seq: 1}, Body: body}}
	s.PersistDecision(1, b)
	body[0] = 'X'
	got, ok := s.ReadDecision(1)
	if !ok || string(got[0].Body) != "mutate-me" {
		t.Fatalf("stored decision aliased the caller's buffer: %q", got[0].Body)
	}
}

func TestCatchupLifecycle(t *testing.T) {
	var c Catchup
	if c.Active() {
		t.Fatal("zero Catchup is active")
	}
	c.Begin(10*time.Millisecond, 2) // e.g. a 5-group: self + 2 responders = majority
	if !c.Active() {
		t.Fatal("Begin did not activate")
	}
	c.Observe(1, 5)
	c.Observe(1, 3) // lower horizons never regress the target
	if c.Target() != 5 {
		t.Fatalf("Target = %d, want 5", c.Target())
	}
	if _, done := c.MaybeFinish(5, 20*time.Millisecond); done {
		t.Fatal("finished while instance 5 still missing")
	}
	// Past the only reported horizon, but one responder is not a quorum:
	// the first answer could come from a peer that is itself behind.
	if _, done := c.MaybeFinish(6, 22*time.Millisecond); done {
		t.Fatal("finished off a single (possibly lagging) responder")
	}
	c.Observe(2, 4)
	dur, done := c.MaybeFinish(6, 25*time.Millisecond)
	if !done || dur != 15*time.Millisecond {
		t.Fatalf("MaybeFinish = (%v, %v), want (15ms, true)", dur, done)
	}
	if _, again := c.MaybeFinish(7, 30*time.Millisecond); again {
		t.Fatal("MaybeFinish reported completion twice")
	}
}

func TestQuorum(t *testing.T) {
	for n, want := range map[int]int{1: 0, 2: 1, 3: 1, 5: 2, 7: 3} {
		if got := Quorum(n); got != want {
			t.Errorf("Quorum(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestChunkEnd(t *testing.T) {
	if end := ChunkEnd(5, 4); end != 0 {
		t.Fatalf("ChunkEnd past horizon = %d, want 0", end)
	}
	if end := ChunkEnd(1, 10); end != 10 {
		t.Fatalf("ChunkEnd small = %d, want 10", end)
	}
	if end := ChunkEnd(1, 1000); end != ChunkInstances {
		t.Fatalf("ChunkEnd capped = %d, want %d", end, ChunkInstances)
	}
}
