package rsm

import (
	"bytes"
	"sync"
	"time"

	"modab/internal/dedup"
	"modab/internal/engine"
	"modab/internal/obs"
	"modab/internal/trace"
	"modab/internal/types"
	"modab/internal/wire"
)

// resultHistory bounds the per-applier result cache backing
// read-your-writes waits: results older than this many applies are
// evicted (Await then reports a nil result, still proving the write
// applied).
const resultHistory = 4096

// Options configures an Applier.
type Options struct {
	// N is the group size (sizes the applied-ID dedup map).
	N int
	// Store is the snapshot store; nil disables snapshotting (the applier
	// still applies and tracks indexes).
	Store Store
	// Interval is the snapshot cadence in instances: a snapshot is taken
	// at the first instance boundary at least Interval instances past the
	// previous one. 0 disables automatic snapshots.
	Interval uint64
	// Counters is the per-process instrumentation sink (may be nil).
	Counters *trace.Counters
	// OnSnapshot, when non-nil, runs after a snapshot reached the Store —
	// both locally taken and installed from a peer. covered reports
	// whether a message was ordered at or below the snapshot index;
	// drivers hook write-ahead-log truncation here.
	OnSnapshot func(index uint64, covered func(m wire.AppMsg) bool)
	// Obs, when non-nil, records per-command apply latency and the apply
	// lifecycle stage of sampled messages. Requires Now.
	Obs *obs.Recorder
	// Now supplies driver-clock timestamps for Obs (engine.Env.Now of the
	// owning process). Ignored when Obs is nil.
	Now func() time.Duration
}

// Applier consumes the totally ordered delivery stream, applies each
// command to the state machine exactly once, snapshots at instance
// boundaries, and answers read-your-writes waits. Drivers call Apply from
// the delivery path; all other methods are safe from any goroutine.
type Applier struct {
	mu sync.Mutex

	sm   StateMachine
	opts Options

	// applied is the highest instance with at least one applied command;
	// open is the instance whose commands are currently arriving (a
	// snapshot may only cover instances strictly below it).
	applied  uint64
	open     uint64
	lastSnap uint64
	// seen is the applier-owned applied-ID set. At an instance boundary it
	// is exactly the set of messages ordered at or below the completed
	// instance — the dedup state carried inside snapshots.
	seen dedup.Map

	results map[types.MsgID][]byte
	order   []types.MsgID
	waiters map[types.MsgID][]chan []byte
}

// NewApplier builds an applier over one state machine.
func NewApplier(sm StateMachine, opts Options) *Applier {
	if opts.N < 1 {
		opts.N = 1
	}
	return &Applier{
		sm:      sm,
		opts:    opts,
		seen:    dedup.NewMap(opts.N),
		results: make(map[types.MsgID][]byte),
		waiters: make(map[types.MsgID][]chan []byte),
	}
}

// Apply consumes one adelivered message: boundary snapshot first (when
// due), then exactly-once apply, result recording and waiter wake-up.
func (a *Applier) Apply(d engine.Delivery) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d.Instance > a.open {
		completed := a.open
		a.open = d.Instance
		if completed > 0 && a.opts.Interval > 0 && completed-a.lastSnap >= a.opts.Interval {
			a.snapshotLocked(completed)
		}
	}
	if a.seen.Seen(d.Msg.ID) {
		return // replay overlap: already applied by a previous incarnation path
	}
	a.seen.Mark(d.Msg.ID)
	var start time.Duration
	if a.opts.Obs != nil && a.opts.Now != nil {
		start = a.opts.Now()
	}
	res := a.sm.Apply(Entry{Instance: d.Instance, ID: d.Msg.ID, Cmd: d.Msg.Body})
	if a.opts.Obs != nil && a.opts.Now != nil {
		a.opts.Obs.Applied(d.Msg.ID, start, a.opts.Now())
	}
	if d.Instance > a.applied {
		a.applied = d.Instance
	}
	if a.opts.Counters != nil {
		a.opts.Counters.Applied.Add(1)
	}
	a.record(d.Msg.ID, res)
	a.wake(d.Msg.ID, res)
}

// snapshotLocked serializes the state machine and applied-ID set at a
// completed instance and persists the envelope. Failures leave the
// previous snapshot in place (the next boundary retries).
func (a *Applier) snapshotLocked(index uint64) {
	if a.opts.Store == nil {
		return
	}
	var buf bytes.Buffer
	if err := a.sm.Snapshot(&buf); err != nil {
		return
	}
	env := wire.SnapshotEnvelope{
		Index: index,
		Dedup: a.seen.MarshalBytes(),
		State: buf.Bytes(),
	}
	if err := a.opts.Store.Save(env); err != nil {
		return
	}
	a.lastSnap = index
	if a.opts.Counters != nil {
		a.opts.Counters.SnapshotsTaken.Add(1)
	}
	a.afterSnapshotLocked(env)
}

// afterSnapshotLocked runs the driver hook with a covered-predicate built
// from the envelope's own dedup state (exactly the messages ordered at or
// below the snapshot index, never the live set).
func (a *Applier) afterSnapshotLocked(env wire.SnapshotEnvelope) {
	if a.opts.OnSnapshot == nil {
		return
	}
	dm, err := dedup.UnmarshalMap(env.Dedup)
	if err != nil {
		return
	}
	a.opts.OnSnapshot(env.Index, func(m wire.AppMsg) bool { return dm.Seen(m.ID) })
}

// Snapshot forces a snapshot at the current applied index, regardless of
// the interval. It is only sound when delivery is quiescent — no decided
// batch partially applied — because the envelope's dedup state must be
// exactly the set of messages ordered at or below the snapshot index
// (drain/shutdown paths and tests; the steady-state cadence uses the
// boundary rule inside Apply instead). It reports the index taken, or
// false when there is nothing new to snapshot.
func (a *Applier) Snapshot() (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.opts.Store == nil || a.applied == 0 || a.applied <= a.lastSnap {
		return 0, false
	}
	a.snapshotLocked(a.applied)
	return a.applied, a.lastSnap == a.applied
}

// Install adopts a snapshot fetched from a peer: restore the state
// machine, merge the applied-ID set, jump the indexes, persist the
// envelope locally (so this process can serve it onward and restart from
// it), and release waiters whose writes the snapshot covers.
func (a *Applier) Install(env wire.SnapshotEnvelope) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	dm, err := dedup.UnmarshalMap(env.Dedup)
	if err != nil {
		return err
	}
	if err := a.sm.Restore(bytes.NewReader(env.State)); err != nil {
		return err
	}
	a.seen.Merge(dm)
	a.applied = env.Index
	a.open = env.Index
	a.lastSnap = env.Index
	if a.opts.Store != nil {
		if err := a.opts.Store.Save(env); err == nil {
			a.afterSnapshotLocked(env)
		}
	}
	for id, chans := range a.waiters {
		if a.seen.Seen(id) {
			for _, ch := range chans {
				ch <- nil
			}
			delete(a.waiters, id)
		}
	}
	return nil
}

// Bootstrap restores the state machine from the newest local snapshot (if
// any) before log replay; drivers call it once, then seed the engine's
// recovered state with the returned index and dedup map
// (recovery.ReplayStateFrom) and replay only the log suffix above it.
func (a *Applier) Bootstrap() (snap uint64, dm dedup.Map, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.opts.Store == nil {
		return 0, nil, nil
	}
	env, ok := a.opts.Store.LatestEnvelope()
	if !ok {
		return 0, nil, nil
	}
	dm, err = dedup.UnmarshalMap(env.Dedup)
	if err != nil {
		return 0, nil, err
	}
	if err := a.sm.Restore(bytes.NewReader(env.State)); err != nil {
		return 0, nil, err
	}
	a.seen.Merge(dm)
	a.applied = env.Index
	a.open = env.Index
	a.lastSnap = env.Index
	return env.Index, dm, nil
}

// Hooks returns the engine-facing snapshot hooks backed by this applier
// and its store.
func (a *Applier) Hooks() *engine.SnapshotHooks {
	return &engine.SnapshotHooks{
		Latest: func() (uint64, bool) {
			if a.opts.Store == nil {
				return 0, false
			}
			return a.opts.Store.Latest()
		},
		Read: func(index uint64, off, max int) ([]byte, int, bool) {
			if a.opts.Store == nil {
				return nil, 0, false
			}
			return a.opts.Store.ReadAt(index, off, max)
		},
		Install: a.Install,
	}
}

// AppliedIndex returns the highest instance with an applied command.
func (a *Applier) AppliedIndex() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// LastSnapshot returns the index of the newest snapshot taken or
// installed by this applier (0 = none).
func (a *Applier) LastSnapshot() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSnap
}

// Applied reports whether the message has been applied.
func (a *Applier) Applied(id types.MsgID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seen.Seen(id)
}

// Result returns the apply result of a message still inside the bounded
// result history.
func (a *Applier) Result(id types.MsgID) ([]byte, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	res, ok := a.results[id]
	return res, ok
}

// Await returns a channel that receives the message's apply result
// exactly once — immediately when already applied (nil result when the
// result left the bounded history or arrived inside an installed
// snapshot), else upon apply. This is the read-your-writes wait the KV
// service builds on.
func (a *Applier) Await(id types.MsgID) <-chan []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	ch := make(chan []byte, 1)
	if res, ok := a.results[id]; ok {
		ch <- res
		return ch
	}
	if a.seen.Seen(id) {
		ch <- nil
		return ch
	}
	a.waiters[id] = append(a.waiters[id], ch)
	return ch
}

// StateDigest serializes the current state machine state canonically
// (the same bytes every replica with equal state produces) — the chaos
// harness's applied-state equivalence check compares these.
func (a *Applier) StateDigest() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	var buf bytes.Buffer
	if err := a.sm.Snapshot(&buf); err != nil {
		return nil
	}
	return buf.Bytes()
}

// record caches one apply result, evicting the oldest beyond the history
// bound.
func (a *Applier) record(id types.MsgID, res []byte) {
	a.results[id] = res
	a.order = append(a.order, id)
	if len(a.order) > resultHistory {
		evict := a.order[0]
		a.order = a.order[1:]
		delete(a.results, evict)
	}
}

// wake releases the waiters of one applied message.
func (a *Applier) wake(id types.MsgID, res []byte) {
	chans, ok := a.waiters[id]
	if !ok {
		return
	}
	delete(a.waiters, id)
	for _, ch := range chans {
		ch <- res
	}
}
