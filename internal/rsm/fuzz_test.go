package rsm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"modab/internal/dedup"
	"modab/internal/types"
	"modab/internal/wire"
)

// fuzzEnvelope builds a small valid snapshot envelope encoding.
func fuzzEnvelope(index uint64) []byte {
	kv := NewKV()
	kv.Apply(Entry{Instance: 1, ID: types.MsgID{Sender: 0, Seq: 1}, Cmd: EncodePut([]byte("k"), []byte("v"))})
	var state bytes.Buffer
	if err := kv.Snapshot(&state); err != nil {
		panic(err)
	}
	dm := dedup.NewMap(3)
	dm.Mark(types.MsgID{Sender: 0, Seq: 1})
	env := wire.SnapshotEnvelope{Index: index, Dedup: dm.MarshalBytes(), State: state.Bytes()}
	w := wire.NewWriter(env.WireSize())
	env.Marshal(w)
	return w.Bytes()
}

// FuzzSnapshotOpen fuzzes the snapshot file codec: arbitrary bytes are
// written as the only snapshot file of a store directory, then opened.
// Open must never panic or error on corruption (a bad file is skipped,
// like a torn tail), and anything it accepts must decode to a usable
// envelope whose KV state restores cleanly and round-trips.
func FuzzSnapshotOpen(f *testing.F) {
	valid := encodeSnapFile(7, fuzzEnvelope(7))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	corrupt := append([]byte(nil), valid...)
	corrupt[snapHeaderBytes+2] ^= 0xff // flip a byte inside the body
	f.Add(corrupt)
	badmagic := append([]byte(nil), valid...)
	badmagic[0] = 'X'
	f.Add(badmagic)
	f.Add([]byte{})
	f.Add([]byte("MODABSNP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "0000000000000007.snap"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenFileStore(dir)
		if err != nil {
			t.Fatalf("OpenFileStore must skip bad files, got: %v", err)
		}
		idx, ok := s.Latest()
		if !ok {
			return // rejected: corruption detected
		}
		// Accepted: the envelope must decode, restore and round-trip.
		env, ok := s.LatestEnvelope()
		if !ok {
			t.Fatalf("Latest()=%d but LatestEnvelope failed", idx)
		}
		if env.Index != idx {
			t.Fatalf("envelope index %d != selected index %d", env.Index, idx)
		}
		if _, err := dedup.UnmarshalMap(env.Dedup); err != nil {
			return // dedup corruption is caught at install time, not open
		}
		kv := NewKV()
		if err := kv.Restore(bytes.NewReader(env.State)); err != nil {
			return // state corruption is caught at restore time
		}
		// A decodable state must reach a canonical fixpoint: snapshotting
		// the restored state and restoring that again is stable byte-wise
		// (the original file may legally be non-canonical — e.g. unsorted —
		// but one restore/snapshot cycle canonicalizes it).
		var again bytes.Buffer
		if err := kv.Snapshot(&again); err != nil {
			t.Fatalf("re-snapshot of restored state: %v", err)
		}
		kv2 := NewKV()
		if err := kv2.Restore(bytes.NewReader(again.Bytes())); err != nil {
			t.Fatalf("canonical snapshot failed to restore: %v", err)
		}
		var third bytes.Buffer
		if err := kv2.Snapshot(&third); err != nil {
			t.Fatalf("re-snapshot: %v", err)
		}
		if !bytes.Equal(again.Bytes(), third.Bytes()) {
			t.Fatalf("canonical serialization is not a fixpoint")
		}
		// Chunked reads must reassemble exactly the stored encoding.
		var assembled []byte
		for off := 0; ; {
			chunk, total, ok := s.ReadAt(idx, off, 5)
			if !ok {
				t.Fatalf("ReadAt(%d, %d) failed", idx, off)
			}
			assembled = append(assembled, chunk...)
			off += len(chunk)
			if off >= total {
				break
			}
		}
		w := wire.NewWriter(env.WireSize())
		env.Marshal(w)
		if !bytes.Equal(assembled, w.Bytes()) {
			t.Fatalf("chunked reads did not reassemble the envelope")
		}
	})
}
