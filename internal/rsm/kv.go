package rsm

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"modab/internal/wire"
)

// KV command opcodes (first byte of a command).
const (
	// OpPut sets a key to a value.
	OpPut byte = 1
	// OpDelete removes a key.
	OpDelete byte = 2
	// OpCAS sets key to new iff its current value equals old (a missing
	// key matches an empty old).
	OpCAS byte = 3
	// OpGet reads a key through the ordering layer (a linearizable read:
	// the value as of this command's position in the total order).
	OpGet byte = 4
)

// KV result status codes (first byte of an Apply result).
const (
	// StatusOK means the operation succeeded; gets carry the value.
	StatusOK byte = 0
	// StatusMissing means the key did not exist (gets and deletes).
	StatusMissing byte = 1
	// StatusCASFailed means the compare-and-swap expectation did not hold.
	StatusCASFailed byte = 2
	// StatusBadCommand means the command bytes did not decode; every
	// replica rejects it identically.
	StatusBadCommand byte = 3
)

// EncodePut builds a put command.
func EncodePut(key, value []byte) []byte {
	w := wire.NewWriter(1 + 8 + len(key) + len(value))
	w.Uint8(OpPut)
	w.Bytes32(key)
	w.Bytes32(value)
	return w.Bytes()
}

// EncodeDelete builds a delete command.
func EncodeDelete(key []byte) []byte {
	w := wire.NewWriter(1 + 4 + len(key))
	w.Uint8(OpDelete)
	w.Bytes32(key)
	return w.Bytes()
}

// EncodeCAS builds a compare-and-swap command (old empty = expect the key
// to be absent).
func EncodeCAS(key, old, new []byte) []byte {
	w := wire.NewWriter(1 + 12 + len(key) + len(old) + len(new))
	w.Uint8(OpCAS)
	w.Bytes32(key)
	w.Bytes32(old)
	w.Bytes32(new)
	return w.Bytes()
}

// EncodeGet builds an ordered (linearizable) get command.
func EncodeGet(key []byte) []byte {
	w := wire.NewWriter(1 + 4 + len(key))
	w.Uint8(OpGet)
	w.Bytes32(key)
	return w.Bytes()
}

// DecodeResult splits an Apply result into its status and value bytes.
func DecodeResult(res []byte) (status byte, value []byte) {
	if len(res) == 0 {
		return StatusBadCommand, nil
	}
	return res[0], res[1:]
}

// KV is the built-in replicated key/value state machine: put, delete,
// compare-and-swap and ordered get, with a canonical sorted-key snapshot
// serialization. All state transitions happen through Apply; Get reads
// the local replica directly (serve stale-tolerant reads, or wait on the
// submitting write's Await for read-your-writes).
type KV struct {
	mu sync.RWMutex
	m  map[string]string
}

var _ StateMachine = (*KV)(nil)

// NewKV returns an empty key/value state machine.
func NewKV() *KV { return &KV{m: make(map[string]string)} }

// Apply implements StateMachine.
func (kv *KV) Apply(e Entry) []byte {
	r := wire.NewReader(e.Cmd)
	op := r.Uint8()
	key := r.Bytes32()
	var old, val []byte
	switch op {
	case OpPut, OpGet, OpDelete:
		if op == OpPut {
			val = r.Bytes32()
		}
	case OpCAS:
		old = r.Bytes32()
		val = r.Bytes32()
	}
	r.ExpectEOF()
	if r.Err() != nil {
		return []byte{StatusBadCommand}
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	switch op {
	case OpPut:
		kv.m[string(key)] = string(val)
		return []byte{StatusOK}
	case OpDelete:
		if _, ok := kv.m[string(key)]; !ok {
			return []byte{StatusMissing}
		}
		delete(kv.m, string(key))
		return []byte{StatusOK}
	case OpCAS:
		if kv.m[string(key)] != string(old) {
			return []byte{StatusCASFailed}
		}
		kv.m[string(key)] = string(val)
		return []byte{StatusOK}
	case OpGet:
		v, ok := kv.m[string(key)]
		if !ok {
			return []byte{StatusMissing}
		}
		return append([]byte{StatusOK}, v...)
	default:
		return []byte{StatusBadCommand}
	}
}

// Get reads one key from the local replica (no ordering).
func (kv *KV) Get(key []byte) ([]byte, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.m[string(key)]
	if !ok {
		return nil, false
	}
	return []byte(v), true
}

// Len returns the number of keys.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.m)
}

// Snapshot implements StateMachine: entry count, then key/value pairs in
// ascending key order (canonical — equal state serializes identically on
// every replica).
func (kv *KV) Snapshot(out io.Writer) error {
	kv.mu.RLock()
	keys := make([]string, 0, len(kv.m))
	size := 4
	for k, v := range kv.m {
		keys = append(keys, k)
		size += 8 + len(k) + len(v)
	}
	sort.Strings(keys)
	w := wire.GetWriter(size)
	defer wire.PutWriter(w)
	w.Uint32(uint32(len(keys)))
	for _, k := range keys {
		w.Bytes32([]byte(k))
		w.Bytes32([]byte(kv.m[k]))
	}
	kv.mu.RUnlock()
	_, err := out.Write(w.Bytes())
	return err
}

// Restore implements StateMachine.
func (kv *KV) Restore(in io.Reader) error {
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	r := wire.NewReader(data)
	n := r.Uint32()
	if r.Err() == nil && uint64(n) > uint64(wire.MaxChunk/8) {
		return fmt.Errorf("rsm: kv snapshot with %d entries", n)
	}
	m := make(map[string]string, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		k := r.Bytes32()
		v := r.Bytes32()
		m[string(k)] = string(v)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return fmt.Errorf("rsm: kv snapshot decode: %w", err)
	}
	kv.mu.Lock()
	kv.m = m
	kv.mu.Unlock()
	return nil
}
