// Package rsm is the replicated state machine layer on top of atomic
// broadcast: it consumes the totally ordered delivery stream of either
// stack, applies each command to an application StateMachine exactly
// once, takes periodic snapshots of the resulting state, and restores
// from a snapshot after a crash so that recovery replays only the log
// suffix above the snapshot horizon instead of unbounded history.
//
// The layer is strictly above the engines: engines order opaque bodies
// and know nothing about application state. The drivers connect the two —
// they feed adeliveries into an Applier and inject the Applier's
// engine.SnapshotHooks so a far-behind peer can fetch and install the
// newest snapshot over the wire (the recover-snapshot frames) instead of
// replaying every decided instance since the beginning of time.
//
// Snapshot timing: the Applier snapshots only at instance boundaries —
// when the first command of a later instance arrives and the completed
// prefix has grown by at least the configured interval. At a boundary the
// applied-ID set is exactly the set of messages ordered at or below the
// completed instance, which is what makes the snapshot's dedup state (and
// the write-ahead-log truncation predicate derived from it) sound.
package rsm

import (
	"io"

	"modab/internal/types"
)

// Entry is one totally ordered command handed to a state machine: the
// consensus instance that ordered it, the unique message identity (for
// idempotence and read-your-writes waits) and the opaque command bytes.
type Entry struct {
	Instance uint64
	ID       types.MsgID
	Cmd      []byte
}

// StateMachine is the application contract of the replicated state
// machine layer. Implementations must be deterministic: the same command
// sequence produces the same state and the same results on every replica,
// and Snapshot must serialize the state canonically (two replicas with
// equal state write identical bytes).
//
// The Applier serializes all calls, so implementations only need internal
// locking when the application also reads the state directly (as the KV
// demo does for local gets).
type StateMachine interface {
	// Apply executes one command and returns its result bytes (nil is a
	// valid result). Apply must not fail: an invalid command must be
	// rejected deterministically (e.g. an error result), never skipped
	// non-deterministically.
	Apply(e Entry) []byte
	// Snapshot writes a canonical serialization of the full state.
	Snapshot(w io.Writer) error
	// Restore replaces the full state with a previously written snapshot.
	Restore(r io.Reader) error
}
