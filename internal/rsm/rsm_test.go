package rsm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"modab/internal/dedup"
	"modab/internal/engine"
	"modab/internal/trace"
	"modab/internal/types"
	"modab/internal/wire"
)

func mid(sender, seq uint64) types.MsgID {
	return types.MsgID{Sender: types.ProcessID(sender), Seq: seq}
}

func TestKVApplyOps(t *testing.T) {
	kv := NewKV()
	apply := func(seq uint64, cmd []byte) []byte {
		return kv.Apply(Entry{Instance: seq, ID: mid(0, seq), Cmd: cmd})
	}
	if st, _ := DecodeResult(apply(1, EncodePut([]byte("a"), []byte("1")))); st != StatusOK {
		t.Fatalf("put status %d", st)
	}
	st, v := DecodeResult(apply(2, EncodeGet([]byte("a"))))
	if st != StatusOK || string(v) != "1" {
		t.Fatalf("get = %d %q", st, v)
	}
	if st, _ := DecodeResult(apply(3, EncodeCAS([]byte("a"), []byte("2"), []byte("3")))); st != StatusCASFailed {
		t.Fatalf("cas with wrong old: %d", st)
	}
	if st, _ := DecodeResult(apply(4, EncodeCAS([]byte("a"), []byte("1"), []byte("3")))); st != StatusOK {
		t.Fatalf("cas with right old: %d", st)
	}
	if st, _ := DecodeResult(apply(5, EncodeCAS([]byte("b"), nil, []byte("x")))); st != StatusOK {
		t.Fatalf("cas expecting absent: %d", st)
	}
	if st, _ := DecodeResult(apply(6, EncodeDelete([]byte("a")))); st != StatusOK {
		t.Fatalf("delete: %d", st)
	}
	if st, _ := DecodeResult(apply(7, EncodeGet([]byte("a")))); st != StatusMissing {
		t.Fatalf("get after delete: %d", st)
	}
	if st, _ := DecodeResult(apply(8, EncodeDelete([]byte("a")))); st != StatusMissing {
		t.Fatalf("delete missing: %d", st)
	}
	if st, _ := DecodeResult(apply(9, []byte{99, 1, 2})); st != StatusBadCommand {
		t.Fatalf("garbage command: %d", st)
	}
	if v, ok := kv.Get([]byte("b")); !ok || string(v) != "x" {
		t.Fatalf("local get b = %q %v", v, ok)
	}
	if kv.Len() != 1 {
		t.Fatalf("len = %d", kv.Len())
	}
}

func TestKVSnapshotCanonical(t *testing.T) {
	a, b := NewKV(), NewKV()
	// Same state, different apply orders.
	a.Apply(Entry{ID: mid(0, 1), Cmd: EncodePut([]byte("x"), []byte("1"))})
	a.Apply(Entry{ID: mid(0, 2), Cmd: EncodePut([]byte("y"), []byte("2"))})
	b.Apply(Entry{ID: mid(0, 1), Cmd: EncodePut([]byte("y"), []byte("2"))})
	b.Apply(Entry{ID: mid(0, 2), Cmd: EncodePut([]byte("x"), []byte("1"))})
	var sa, sb bytes.Buffer
	if err := a.Snapshot(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatalf("equal state serialized differently")
	}
	c := NewKV()
	if err := c.Restore(bytes.NewReader(sa.Bytes())); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get([]byte("y")); !ok || string(v) != "2" {
		t.Fatalf("restored get = %q %v", v, ok)
	}
}

// deliver feeds one single-message instance to an applier.
func deliver(a *Applier, k uint64, id types.MsgID, cmd []byte) {
	a.Apply(engine.Delivery{Msg: wire.AppMsg{ID: id, Body: cmd}, Instance: k})
}

func TestApplierBoundarySnapshots(t *testing.T) {
	var c trace.Counters
	store := NewMemStore()
	a := NewApplier(NewKV(), Options{N: 3, Store: store, Interval: 3, Counters: &c})
	for k := uint64(1); k <= 10; k++ {
		deliver(a, k, mid(0, k), EncodePut([]byte{byte(k)}, []byte("v")))
	}
	// Boundaries complete at k-1 when k arrives: snapshots at 3, 6, 9.
	if got := a.LastSnapshot(); got != 9 {
		t.Fatalf("last snapshot = %d, want 9", got)
	}
	if got := c.Snapshot().SnapshotsTaken; got != 3 {
		t.Fatalf("snapshots taken = %d, want 3", got)
	}
	if idx, ok := store.Latest(); !ok || idx != 9 {
		t.Fatalf("store latest = %d %v", idx, ok)
	}
	env, ok := store.LatestEnvelope()
	if !ok || env.Index != 9 {
		t.Fatalf("envelope index = %d %v", env.Index, ok)
	}
	// The envelope's dedup covers exactly instances <= 9.
	dm, err := dedup.UnmarshalMap(env.Dedup)
	if err != nil {
		t.Fatal(err)
	}
	if !dm.Seen(mid(0, 9)) || dm.Seen(mid(0, 10)) {
		t.Fatalf("snapshot dedup does not cut at the boundary")
	}
	if got := a.AppliedIndex(); got != 10 {
		t.Fatalf("applied index = %d, want 10", got)
	}
}

func TestApplierExactlyOnceAndResults(t *testing.T) {
	a := NewApplier(NewKV(), Options{N: 3})
	id := mid(1, 1)
	done := a.Await(id)
	deliver(a, 1, id, EncodePut([]byte("k"), []byte("v")))
	if st, _ := DecodeResult(<-done); st != StatusOK {
		t.Fatalf("awaited status %d", st)
	}
	// Duplicate delivery is a no-op (replay overlap).
	deliver(a, 1, id, EncodePut([]byte("k"), []byte("other")))
	if res, ok := a.Result(id); !ok || res[0] != StatusOK {
		t.Fatalf("result lookup = %v %v", res, ok)
	}
	if !a.Applied(id) {
		t.Fatalf("Applied(id) = false")
	}
	// Await after the fact resolves immediately.
	if st, _ := DecodeResult(<-a.Await(id)); st != StatusOK {
		t.Fatalf("late await status %d", st)
	}
}

func TestApplierInstallAndBootstrap(t *testing.T) {
	// Build a source applier with a snapshot at 3.
	src := NewApplier(NewKV(), Options{N: 3, Store: NewMemStore(), Interval: 3})
	for k := uint64(1); k <= 4; k++ {
		deliver(src, k, mid(0, k), EncodePut([]byte{byte(k)}, []byte("v")))
	}
	env, ok := src.opts.Store.LatestEnvelope()
	if !ok || env.Index != 3 {
		t.Fatalf("source snapshot = %d %v", env.Index, ok)
	}

	// Install it into a fresh applier; a pre-registered waiter for a
	// covered message must be released.
	dstStore := NewMemStore()
	dst := NewApplier(NewKV(), Options{N: 3, Store: dstStore, Interval: 3})
	wait := dst.Await(mid(0, 2))
	if err := dst.Install(env); err != nil {
		t.Fatal(err)
	}
	<-wait
	if got := dst.AppliedIndex(); got != 3 {
		t.Fatalf("applied after install = %d", got)
	}
	if !dst.Applied(mid(0, 3)) || dst.Applied(mid(0, 4)) {
		t.Fatalf("install dedup wrong")
	}
	// The installed envelope was persisted locally: a restart bootstraps
	// from it.
	re := NewApplier(NewKV(), Options{N: 3, Store: dstStore, Interval: 3})
	snap, dm, err := re.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if snap != 3 || dm == nil || !dm.Seen(mid(0, 3)) {
		t.Fatalf("bootstrap = %d %v", snap, dm)
	}
	if got := re.StateDigest(); !bytes.Equal(got, src.applierStateAt3(t)) {
		t.Fatalf("bootstrapped state differs from snapshot state")
	}
	// Replaying the suffix above the snapshot converges with the source.
	deliver(re, 4, mid(0, 4), EncodePut([]byte{4}, []byte("v")))
	if !bytes.Equal(re.StateDigest(), src.StateDigest()) {
		t.Fatalf("suffix replay did not converge")
	}
}

// applierStateAt3 restores the source's snapshot-at-3 state for comparison.
func (a *Applier) applierStateAt3(t *testing.T) []byte {
	t.Helper()
	env, ok := a.opts.Store.LatestEnvelope()
	if !ok {
		t.Fatal("no envelope")
	}
	kv := NewKV()
	if err := kv.Restore(bytes.NewReader(env.State)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := kv.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFileStoreSaveOpenPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Latest(); ok {
		t.Fatalf("empty store reports a snapshot")
	}
	for i := uint64(1); i <= 4; i++ {
		env := wire.SnapshotEnvelope{Index: i, Dedup: []byte{0, 0, 0, 0}, State: []byte{byte(i)}}
		if err := s.Save(env); err != nil {
			t.Fatal(err)
		}
	}
	if idx, ok := s.Latest(); !ok || idx != 4 {
		t.Fatalf("latest = %d %v", idx, ok)
	}
	// Stale saves never step backwards.
	if err := s.Save(wire.SnapshotEnvelope{Index: 2, State: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	if idx, _ := s.Latest(); idx != 4 {
		t.Fatalf("stale save moved latest to %d", idx)
	}
	// Retention: only snapRetain files remain.
	names, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	if len(names) != snapRetain {
		t.Fatalf("retained %d files, want %d", len(names), snapRetain)
	}
	// Reopen selects the newest.
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if idx, ok := s2.Latest(); !ok || idx != 4 {
		t.Fatalf("reopen latest = %d %v", idx, ok)
	}
	env, ok := s2.LatestEnvelope()
	if !ok || env.Index != 4 || env.State[0] != 4 {
		t.Fatalf("reopen envelope = %+v %v", env, ok)
	}
}

func TestFileStoreSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 2; i++ {
		env := wire.SnapshotEnvelope{Index: i, Dedup: []byte{0, 0, 0, 0}, State: []byte{byte(i)}}
		if err := s.Save(env); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest file; open must fall back to the predecessor.
	name := filepath.Join(dir, "0000000000000002.snap")
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if idx, ok := s2.Latest(); !ok || idx != 1 {
		t.Fatalf("fallback latest = %d %v, want 1", idx, ok)
	}
}
