package rsm

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"modab/internal/wire"
)

// Store is the durable home of snapshot envelopes. Implementations keep
// (at least) the newest valid envelope in its wire encoding, which is
// what the chunked snapshot state transfer serves.
type Store interface {
	// Save persists one envelope; newer indexes supersede older ones.
	Save(env wire.SnapshotEnvelope) error
	// Latest returns the index of the newest valid envelope.
	Latest() (index uint64, ok bool)
	// ReadAt returns the chunk [off, off+max) of the encoded envelope at
	// index plus its total encoded size; ok is false when that snapshot is
	// not (or no longer) available.
	ReadAt(index uint64, off, max int) (data []byte, total int, ok bool)
	// LatestEnvelope decodes and returns the newest valid envelope.
	LatestEnvelope() (env wire.SnapshotEnvelope, ok bool)
}

// Snapshot file format: a fixed header followed by the wire-encoded
// envelope, CRC-protected so a torn or corrupted file is detected and
// skipped at open (the previous snapshot then serves).
//
//	magic   [8]byte  "MODABSNP"
//	version uint32   (1)
//	index   uint64   snapshot index (redundant with the envelope, for
//	                 selection without decoding the body)
//	length  uint32   body length in bytes
//	crc     uint32   CRC-32C (Castagnoli) of the body
//	body    []byte   wire-encoded SnapshotEnvelope
const (
	snapMagic       = "MODABSNP"
	snapVersion     = 1
	snapHeaderBytes = 8 + 4 + 8 + 4 + 4
	// snapRetain is how many snapshot files Save keeps: the newest plus
	// one predecessor, so a crash mid-rotation never leaves zero valid
	// snapshots behind.
	snapRetain = 2
)

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeSnapFile frames one encoded envelope body into the file format.
func encodeSnapFile(index uint64, body []byte) []byte {
	w := wire.NewWriter(snapHeaderBytes + len(body))
	w.Raw([]byte(snapMagic))
	w.Uint32(snapVersion)
	w.Uint64(index)
	w.Uint32(uint32(len(body)))
	w.Uint32(crc32.Checksum(body, snapCastagnoli))
	w.Raw(body)
	return w.Bytes()
}

// decodeSnapFile validates one snapshot file image and returns its index
// and envelope body. It never panics on arbitrary input (fuzzed).
func decodeSnapFile(data []byte) (index uint64, body []byte, err error) {
	if len(data) < snapHeaderBytes {
		return 0, nil, fmt.Errorf("rsm: snapshot file too short (%d bytes)", len(data))
	}
	if string(data[:8]) != snapMagic {
		return 0, nil, fmt.Errorf("rsm: bad snapshot magic")
	}
	r := wire.NewReader(data[8:])
	if v := r.Uint32(); v != snapVersion {
		return 0, nil, fmt.Errorf("rsm: unsupported snapshot version %d", v)
	}
	index = r.Uint64()
	n := r.Uint32()
	sum := r.Uint32()
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	rest := data[snapHeaderBytes:]
	if uint64(n) != uint64(len(rest)) {
		return 0, nil, fmt.Errorf("rsm: snapshot body length %d, have %d", n, len(rest))
	}
	if crc32.Checksum(rest, snapCastagnoli) != sum {
		return 0, nil, fmt.Errorf("rsm: snapshot CRC mismatch")
	}
	return index, rest, nil
}

// FileStore keeps snapshot files in one directory, alongside the
// write-ahead log. Writes go through a temp file and an atomic rename, so
// a crash mid-save leaves either the old set or the new set, never a
// half-written file selected at open. The newest envelope's encoding is
// cached in memory for chunked serving.
type FileStore struct {
	dir    string
	index  uint64
	body   []byte // encoded envelope of the newest valid snapshot
	loaded bool
}

var _ Store = (*FileStore)(nil)

// OpenFileStore opens (creating if needed) the snapshot directory and
// selects the newest valid snapshot file, skipping corrupted or torn
// files (a crash mid-write plus the retained predecessor makes this safe).
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rsm: open snapshot dir: %w", err)
	}
	s := &FileStore{dir: dir}
	names, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // newest index first
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		index, body, err := decodeSnapFile(data)
		if err != nil {
			continue // torn or corrupted: fall back to the predecessor
		}
		env, err := wire.UnmarshalSnapshotEnvelope(body)
		if err != nil || env.Index != index {
			continue // body does not decode, or disagrees with the header
		}
		s.index, s.body, s.loaded = index, body, true
		break
	}
	return s, nil
}

func (s *FileStore) path(index uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x.snap", index))
}

// Save implements Store: temp file, fsync, atomic rename, then prune all
// but the newest snapRetain files.
func (s *FileStore) Save(env wire.SnapshotEnvelope) error {
	if s.loaded && env.Index <= s.index {
		return nil // stale: never step the durable snapshot backwards
	}
	w := wire.NewWriter(env.WireSize())
	env.Marshal(w)
	body := w.Bytes()
	framed := encodeSnapFile(env.Index, body)
	tmp := s.path(env.Index) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(framed); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path(env.Index)); err != nil {
		os.Remove(tmp)
		return err
	}
	s.index = env.Index
	s.body = append(s.body[:0:0], body...)
	s.loaded = true
	s.prune()
	return nil
}

// prune removes all but the newest snapRetain snapshot files.
func (s *FileStore) prune() {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.snap"))
	if err != nil {
		return
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for i, name := range names {
		if i >= snapRetain {
			os.Remove(name)
		}
	}
}

// Latest implements Store.
func (s *FileStore) Latest() (uint64, bool) { return s.index, s.loaded }

// ReadAt implements Store, serving chunks from the in-memory cache of the
// newest envelope.
func (s *FileStore) ReadAt(index uint64, off, max int) ([]byte, int, bool) {
	if !s.loaded || index != s.index {
		return nil, 0, false
	}
	return sliceChunk(s.body, off, max)
}

// LatestEnvelope implements Store.
func (s *FileStore) LatestEnvelope() (wire.SnapshotEnvelope, bool) {
	if !s.loaded {
		return wire.SnapshotEnvelope{}, false
	}
	env, err := wire.UnmarshalSnapshotEnvelope(s.body)
	if err != nil {
		return wire.SnapshotEnvelope{}, false
	}
	return env, true
}

// sliceChunk bounds-checks one chunked read against an encoded envelope.
func sliceChunk(body []byte, off, max int) ([]byte, int, bool) {
	if off < 0 || max <= 0 || off > len(body) {
		return nil, len(body), off == len(body)
	}
	end := off + max
	if end > len(body) {
		end = len(body)
	}
	return body[off:end], len(body), true
}

// MemStore is the in-memory Store used by the deterministic simulator: it
// survives a simulated crash the way snapshot files survive a process
// crash, with none of the I/O nondeterminism.
type MemStore struct {
	index  uint64
	body   []byte
	loaded bool
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory snapshot store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements Store.
func (s *MemStore) Save(env wire.SnapshotEnvelope) error {
	if s.loaded && env.Index <= s.index {
		return nil
	}
	w := wire.NewWriter(env.WireSize())
	env.Marshal(w)
	s.index = env.Index
	s.body = w.Bytes()
	s.loaded = true
	return nil
}

// Latest implements Store.
func (s *MemStore) Latest() (uint64, bool) { return s.index, s.loaded }

// ReadAt implements Store.
func (s *MemStore) ReadAt(index uint64, off, max int) ([]byte, int, bool) {
	if !s.loaded || index != s.index {
		return nil, 0, false
	}
	return sliceChunk(s.body, off, max)
}

// LatestEnvelope implements Store.
func (s *MemStore) LatestEnvelope() (wire.SnapshotEnvelope, bool) {
	if !s.loaded {
		return wire.SnapshotEnvelope{}, false
	}
	env, err := wire.UnmarshalSnapshotEnvelope(s.body)
	if err != nil {
		return wire.SnapshotEnvelope{}, false
	}
	return env, true
}
