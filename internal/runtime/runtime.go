// Package runtime is the real-time driver for the atomic broadcast
// engines: one Node per process, with a single-goroutine event loop that
// serializes transport deliveries, timer fires, failure-detector changes
// and application abcasts into the engine — the same calls the simulator
// makes in virtual time, so protocol code is shared verbatim.
//
// Frames on the wire carry a one-byte channel tag so protocol traffic and
// failure-detector heartbeats can share one transport.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"modab/internal/dedup"
	"modab/internal/engine"
	"modab/internal/fd"
	"modab/internal/member"
	"modab/internal/modular"
	"modab/internal/monolithic"
	"modab/internal/obs"
	"modab/internal/recovery"
	"modab/internal/rsm"
	"modab/internal/stream"
	"modab/internal/trace"
	"modab/internal/transport"
	"modab/internal/types"
	"modab/internal/wire"
)

// Frame channel tags.
const (
	chanEngine byte = 0
	chanFD     byte = 1
	// chanJoin carries a join request: a process not yet in the group asks
	// a member to submit its admission (member.EncodeOp body). Fire-and-
	// forget; the joiner retries until it sees itself in the view.
	chanJoin byte = 2
)

// Options configures a Node.
type Options struct {
	// Self is the local process ID; N the group size. Required.
	Self types.ProcessID
	N    int
	// Stack selects the implementation. Required.
	Stack types.Stack
	// Engine carries protocol tunables; zero means engine.DefaultConfig(N).
	Engine engine.Config
	// Transport is the quasi-reliable channel endpoint. Required.
	Transport transport.Transport
	// Store, when non-nil, enables the crash-recovery subsystem: the node
	// replays it at start (recovering the previous incarnation's state and
	// catching up via state transfer), stamps a boot marker, and persists
	// admissions and decisions through it. The node owns the store from
	// here on and closes it on Close; the on-disk log survives for the
	// next incarnation.
	Store recovery.Store
	// Detector is the failure detector; nil means a heartbeat detector
	// with the intervals below.
	Detector fd.Detector
	// HeartbeatPeriod/SuspectTimeout parameterize the default detector.
	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration
	// OnDeliver observes adeliveries. It is a convenience adapter over the
	// delivery stream (see Node.Deliveries): deliveries reach it in order
	// on a dedicated goroutine, and a callback that stalls for long
	// eventually backpressures the engine through the stream buffer. It
	// must not call back into the Node.
	OnDeliver func(d engine.Delivery)
	// DeliveryBuffer is the default per-subscriber buffer capacity for
	// Deliveries (and the OnDeliver adapter); 0 means stream.DefaultBuffer.
	DeliveryBuffer int
	// DeliveryOverflow is the default overflow policy for Deliveries:
	// stream.Block (backpressure the engine, the default) or stream.Drop
	// (discard for the lagging subscriber and count in
	// trace.Counters.StreamDropped).
	DeliveryOverflow stream.Policy
	// StateMachine, when non-nil, attaches a replicated state machine fed
	// synchronously from the delivery path through an rsm.Applier
	// (Node.Applier). With a Store, the node restores the newest local
	// snapshot at start and replays only the log suffix above it; the
	// engine additionally serves and installs snapshots during state
	// transfer (see engine.SnapshotHooks).
	StateMachine rsm.StateMachine
	// SnapshotStore persists the applier's snapshots; nil disables
	// snapshotting (the state machine still applies).
	SnapshotStore rsm.Store
	// SnapshotEvery is the snapshot cadence in instances; 0 disables
	// automatic snapshots.
	SnapshotEvery uint64
	// Obs, when non-nil, attaches the observability layer: the engine and
	// applier record latency histograms and sampled lifecycle stages into
	// it (see internal/obs), and it can be served over HTTP with
	// obs.NewHTTPHandler. Nil disables recording at one nil check per
	// site.
	Obs *obs.Recorder
	// InitialView, when non-nil, marks this node a joiner: the engine is
	// seeded with the admitting view instead of the static boot group and
	// bootstraps through the restart-style state transfer (pulling the
	// decided prefix — or a snapshot — before participating). The failure
	// detector monitors the view's members.
	InitialView *member.View
	// Join marks the node a joiner that does not yet know its admitting
	// view (the TCP deployment, where the admission decides while the
	// process is already running): the engine starts from the epoch-0 boot
	// view with restart-style empty state, announces itself, and pulls the
	// decided prefix — replaying every config op on the way to the current
	// view. Mutually redundant with InitialView (which skips the replay of
	// pre-admission config history).
	Join bool
	// OnConfig, when non-nil, observes every applied membership view (in
	// delivery order, on the event loop — it must not call back into the
	// Node). The node itself already retargets its failure detector;
	// drivers use the hook to spawn joiners, decommission removed
	// processes, and grow transport address tables (op.Addr carries a
	// joiner's address).
	OnConfig func(v member.View, op member.Op)
}

// Node is one running process of the group.
type Node struct {
	opts Options
	eng  engine.Engine
	env  *nodeEnv
	det  fd.Detector
	tr   transport.Transport
	// applier is the state machine applier (Options.StateMachine);
	// deliveries feed it synchronously on the event loop.
	applier *rsm.Applier

	loop    chan func()
	quit    chan struct{}
	stopped chan struct{}
	wg      sync.WaitGroup

	hub       *stream.Hub[engine.Delivery]
	deliverWG sync.WaitGroup // OnDeliver adapter goroutine

	mu     sync.Mutex
	closed bool

	// winMu guards winCh, which is closed and replaced each time one of
	// this node's own messages is adelivered — a broadcast that wakes every
	// Abcast call blocked on flow control so it can retry.
	winMu sync.Mutex
	winCh chan struct{}
}

// NewNode builds and starts a node: the engine starts, the transport
// begins delivering, and the failure detector begins monitoring.
func NewNode(opts Options) (*Node, error) {
	if opts.N < 1 {
		return nil, types.ErrEmptyGroup
	}
	if opts.Transport == nil {
		return nil, fmt.Errorf("%w: transport required", types.ErrBadConfig)
	}
	if opts.Engine.N == 0 {
		opts.Engine = engine.DefaultConfig(opts.N)
	}
	if err := opts.Engine.Validate(); err != nil {
		return nil, err
	}
	if opts.HeartbeatPeriod <= 0 {
		opts.HeartbeatPeriod = 25 * time.Millisecond
	}
	if opts.SuspectTimeout <= 0 {
		opts.SuspectTimeout = 8 * opts.HeartbeatPeriod
	}
	n := &Node{
		tr:      opts.Transport,
		loop:    make(chan func(), 1024),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
		winCh:   make(chan struct{}),
	}
	n.env = &nodeEnv{node: n, start: time.Now(), timers: make(map[engine.TimerID]*timerState)}
	opts.Engine.Obs = opts.Obs
	if opts.StateMachine != nil {
		n.applier = rsm.NewApplier(opts.StateMachine, rsm.Options{
			N:        opts.N,
			Store:    opts.SnapshotStore,
			Interval: opts.SnapshotEvery,
			Counters: &n.env.counters,
			Obs:      opts.Obs,
			Now:      n.env.Now,
			OnSnapshot: func(snap uint64, covered func(m wire.AppMsg) bool) {
				if opts.Store == nil {
					return
				}
				if removed := opts.Store.TruncateBelow(snap, covered); removed > 0 {
					n.env.counters.WalTruncatedSegments.Add(int64(removed))
				}
			},
		})
		opts.Engine.Snapshots = n.applier.Hooks()
	}
	if opts.Store != nil {
		// Snapshot-anchored restart: restore the newest local snapshot
		// first, then replay only the log suffix above it — into the
		// engine's recovered state and into the applier. Without a state
		// machine this degenerates to the plain full-log replay.
		var snap uint64
		var snapDedup dedup.Map
		if n.applier != nil {
			var err error
			snap, snapDedup, err = n.applier.Bootstrap()
			if err != nil {
				return nil, fmt.Errorf("runtime: restoring local snapshot: %w", err)
			}
		}
		st, err := recovery.ReplayStateFrom(opts.Store, opts.N, opts.Self, snap, snapDedup)
		if err != nil {
			return nil, fmt.Errorf("runtime: replaying durable store: %w", err)
		}
		if n.applier != nil {
			// Re-apply the replayed suffix in delivery order (the decided
			// batch, deterministically sorted); the applier's dedup absorbs
			// messages the snapshot already covers.
			if err := opts.Store.Replay(func(r recovery.Rec) error {
				if r.Kind != recovery.RecDecision || r.Instance <= snap {
					return nil
				}
				ordered := append(wire.Batch(nil), r.Batch...)
				ordered.SortDeterministic()
				for _, m := range ordered {
					n.applier.Apply(engine.Delivery{Msg: m, Instance: r.Instance})
				}
				return nil
			}); err != nil {
				return nil, fmt.Errorf("runtime: replaying suffix into state machine: %w", err)
			}
		}
		opts.Store.PersistBoot()
		opts.Engine.Persist = opts.Store
		opts.Engine.Recovered = st
	}
	if opts.InitialView != nil {
		opts.Engine.InitialView = opts.InitialView
	}
	if (opts.InitialView != nil || opts.Join) && opts.Engine.Recovered == nil {
		// A joiner without a pre-existing log bootstraps like a restarted
		// process with an empty state: announce, then pull the decided
		// prefix (or a snapshot) through state transfer.
		opts.Engine.Recovered = &engine.RecoveredState{NextDecide: 1, NextSeq: 1}
	}
	opts.Engine.OnConfig = func(v member.View, op member.Op) {
		// Keep the failure detector pointed at the current members: removed
		// processes stop being suspected (and their suspicion state is
		// pruned), joiners start being monitored. Custom detectors without
		// a SetMembers keep their static monitor set.
		if sm, ok := n.det.(interface{ SetMembers([]types.ProcessID) }); ok {
			sm.SetMembers(v.Members)
		}
		if fn := opts.OnConfig; fn != nil {
			fn(v, op)
		}
	}
	n.opts = opts
	n.hub = stream.NewHub[engine.Delivery](opts.DeliveryBuffer, opts.DeliveryOverflow,
		func() { n.env.counters.StreamDropped.Add(1) })
	if cb := opts.OnDeliver; cb != nil {
		sub := n.hub.Subscribe()
		n.deliverWG.Add(1)
		go func() {
			defer n.deliverWG.Done()
			for d := range sub.C() {
				cb(d)
			}
		}()
	}
	switch opts.Stack {
	case types.Modular:
		n.eng = modular.New(n.env, opts.Engine)
	case types.Monolithic:
		n.eng = monolithic.New(n.env, opts.Engine)
	default:
		return nil, fmt.Errorf("%w: unknown stack %v", types.ErrBadConfig, opts.Stack)
	}

	n.det = opts.Detector
	if n.det == nil {
		hb := fd.NewHeartbeat(opts.Self, opts.N, opts.HeartbeatPeriod, opts.SuspectTimeout,
			func(to types.ProcessID) {
				_ = n.tr.Send(to, []byte{chanFD})
			})
		if opts.InitialView != nil {
			// A joiner monitors the members of its admitting view, not the
			// (possibly long-replaced) boot group 0..N-1.
			hb.SetMembers(opts.InitialView.Members)
		}
		n.det = hb
	}

	n.wg.Add(1)
	go n.run()

	if err := n.tr.Start(n.onFrame); err != nil {
		n.shutdownLoop()
		n.hub.Close()
		n.deliverWG.Wait()
		if opts.Store != nil {
			_ = opts.Store.Close()
		}
		return nil, err
	}
	n.det.Start(func(p types.ProcessID, suspected bool) {
		n.post(func() { n.eng.Suspect(p, suspected) })
	})
	n.post(n.eng.Start)
	return n, nil
}

// run is the event loop: every engine interaction happens here.
func (n *Node) run() {
	defer n.wg.Done()
	defer close(n.stopped)
	for {
		select {
		case fn := <-n.loop:
			fn()
		case <-n.quit:
			return
		}
	}
}

// post enqueues a closure on the event loop; it is dropped if the node is
// closed (equivalent to a message lost at crash time).
func (n *Node) post(fn func()) {
	select {
	case n.loop <- fn:
	case <-n.quit:
	}
}

// onFrame routes one transport frame.
func (n *Node) onFrame(from types.ProcessID, data []byte) {
	if len(data) < 1 {
		return
	}
	n.det.Heard(from) // any traffic is a sign of life
	switch data[0] {
	case chanFD:
		// Heartbeat: nothing beyond Heard.
	case chanEngine:
		payload := data[1:]
		n.post(func() {
			// Malformed frames are dropped; quasi-reliable channels do not
			// corrupt, so this only fires on version mismatch.
			_ = n.eng.HandleMessage(from, payload)
		})
	case chanJoin:
		// A non-member asks us to sponsor its admission. Submit the OpAdd
		// on its behalf; duplicates (retries racing the in-flight decide)
		// fall out of the epoch CAS, and rejections are silent — the joiner
		// keeps retrying until it sees itself in the view.
		op, ok := member.DecodeOp(data[1:])
		if !ok || op.Kind != member.OpAdd {
			return
		}
		n.post(func() {
			cs, ok := n.eng.(engine.ConfigSubmitter)
			if !ok || cs.CurrentView().Contains(op.Target) {
				return
			}
			_, _ = cs.SubmitConfig(op)
		})
	}
}

// TryAbcast submits one payload for total-order broadcast without
// waiting on flow control: it returns types.ErrFlowControl when the
// window is full and types.ErrStopped on a closed node. It is the only
// entry point that surfaces ErrFlowControl.
func (n *Node) TryAbcast(body []byte) (types.MsgID, error) {
	id, err, _ := n.submit(body, nil)
	return id, err
}

// submit runs one engine.Abcast on the event loop. cancel (may be nil)
// aborts the wait at any point — including while the submission is still
// queued behind a busy or stalled loop; ok=false then means the caller's
// context ended and the outcome is unknown (the submission may still be
// admitted when the loop gets to it).
func (n *Node) submit(body []byte, cancel <-chan struct{}) (id types.MsgID, err error, ok bool) {
	type result struct {
		id  types.MsgID
		err error
	}
	ch := make(chan result, 1)
	fn := func() {
		id, err := n.eng.Abcast(body)
		ch <- result{id, err}
	}
	select {
	case n.loop <- fn:
	case <-cancel:
		return types.MsgID{}, nil, false
	case <-n.quit:
		return types.MsgID{}, types.ErrStopped, true
	}
	select {
	case r := <-ch:
		return r.id, r.err, true
	case <-cancel:
		return types.MsgID{}, nil, false
	case <-n.stopped:
		return types.MsgID{}, types.ErrStopped, true
	}
}

// Abcast submits one payload for total-order broadcast — the paper's
// blocking abcast. When the flow-control window is full it parks until a
// delivery of one of this node's own messages frees the window (a
// condition broadcast, not a poll), the context is canceled (returning
// ctx.Err()), or the node stops (returning types.ErrStopped).
//
// Cancellation that fires after the submission already reached the event
// loop cannot retract it: the message may still be broadcast even though
// Abcast returns ctx.Err() (the usual at-most-once ambiguity of any
// canceled submission).
func (n *Node) Abcast(ctx context.Context, body []byte) (types.MsgID, error) {
	for {
		if err := ctx.Err(); err != nil {
			return types.MsgID{}, err
		}
		// Capture the wakeup channel before trying: a delivery between the
		// failed try and the wait then shows up as an already-closed
		// channel, so no wakeup is ever lost.
		wait := n.windowChanged()
		id, err, ok := n.submit(body, ctx.Done())
		if !ok {
			return types.MsgID{}, ctx.Err()
		}
		if !errors.Is(err, types.ErrFlowControl) {
			return id, err
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return types.MsgID{}, ctx.Err()
		case <-n.stopped:
			return types.MsgID{}, types.ErrStopped
		}
	}
}

// windowChanged returns a channel that is closed the next time one of
// this node's own messages is adelivered (i.e. the flow-control window
// may have room again).
func (n *Node) windowChanged() <-chan struct{} {
	n.winMu.Lock()
	defer n.winMu.Unlock()
	return n.winCh
}

// windowPulse broadcasts a window change to every blocked Abcast.
func (n *Node) windowPulse() {
	n.winMu.Lock()
	close(n.winCh)
	n.winCh = make(chan struct{})
	n.winMu.Unlock()
}

// Deliveries subscribes to this node's adelivery stream: a pull-based,
// per-subscriber buffered feed of every adelivered message, in delivery
// order. Options override the node's default buffer capacity and
// overflow policy (stream.WithBuffer, stream.WithPolicy). The channel
// closes after the node is closed and the buffer drains; close the
// subscription to detach early.
func (n *Node) Deliveries(opts ...stream.SubOption) *stream.Sub[engine.Delivery] {
	return n.hub.Subscribe(opts...)
}

// Pending returns the engine's unordered message count (diagnostics).
func (n *Node) Pending() int {
	ch := make(chan int, 1)
	n.post(func() { ch <- n.eng.Pending() })
	select {
	case v := <-ch:
		return v
	case <-n.stopped:
		return 0
	}
}

// Counters returns a snapshot of the node's instrumentation.
func (n *Node) Counters() trace.Snapshot { return n.env.counters.Snapshot() }

// Applier returns the node's state machine applier, or nil when the node
// runs without Options.StateMachine. Applications read applied results,
// await their writes, and take state digests through it.
func (n *Node) Applier() *rsm.Applier { return n.applier }

// Obs returns the node's observability recorder (Options.Obs; nil when
// observability is disabled).
func (n *Node) Obs() *obs.Recorder { return n.opts.Obs }

// SubmitConfig submits a membership change (add or remove) for total
// ordering. The op rides the ordinary abcast path: it decides in some
// consensus instance and activates a pipeline window later, at which
// point every process switches views at the same instance (OnConfig
// fires). Like TryAbcast it surfaces types.ErrFlowControl when the
// window is full — callers retry.
func (n *Node) SubmitConfig(op member.Op) (types.MsgID, error) {
	cs, ok := n.eng.(engine.ConfigSubmitter)
	if !ok {
		return types.MsgID{}, fmt.Errorf("%w: engine does not support membership changes", types.ErrBadConfig)
	}
	type result struct {
		id  types.MsgID
		err error
	}
	ch := make(chan result, 1)
	fn := func() {
		id, err := cs.SubmitConfig(op)
		ch <- result{id, err}
	}
	select {
	case n.loop <- fn:
	case <-n.quit:
		return types.MsgID{}, types.ErrStopped
	}
	select {
	case r := <-ch:
		return r.id, r.err
	case <-n.stopped:
		return types.MsgID{}, types.ErrStopped
	}
}

// RequestJoin asks an existing member to sponsor this node's admission:
// an OpAdd naming this process, with addr the address peers should dial
// (grown into their transport tables at activation). Fire-and-forget —
// callers retry on an interval until CurrentView contains this node.
func (n *Node) RequestJoin(sponsor types.ProcessID, addr string) error {
	op := member.Op{Kind: member.OpAdd, Target: n.opts.Self, Addr: addr}
	return n.tr.Send(sponsor, append([]byte{chanJoin}, member.EncodeOp(op)...))
}

// CurrentView returns the newest locally applied membership view.
func (n *Node) CurrentView() member.View {
	cs, ok := n.eng.(engine.ConfigSubmitter)
	if !ok {
		return member.View{}
	}
	ch := make(chan member.View, 1)
	n.post(func() { ch <- cs.CurrentView() })
	select {
	case v := <-ch:
		return v
	case <-n.stopped:
		return member.View{}
	}
}

// Views returns this node's locally applied view history, oldest first
// (a joiner's history starts at its admitting view).
func (n *Node) Views() []member.View {
	vh, ok := n.eng.(interface{ Views() []member.View })
	if !ok {
		return nil
	}
	ch := make(chan []member.View, 1)
	n.post(func() { ch <- vh.Views() })
	select {
	case v := <-ch:
		return v
	case <-n.stopped:
		return nil
	}
}

// Close stops the node: detector, transport, event loop.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()

	n.det.Close()
	err := n.tr.Close()
	n.env.stopTimers()
	// Stop the loop before closing the hub: the currently-executing
	// handler finishes (including its Deliver publishes), so every
	// delivery that was counted also reaches the streams; queued but
	// unexecuted closures are dropped (crash-equivalent) and never
	// counted anything. Only then does the hub drain and close. A
	// Block-policy subscriber that was abandoned — neither drained nor
	// Closed — stalls this wait; that is the same contract violation
	// that stalls the engine itself (see package stream).
	n.shutdownLoop()
	n.hub.Close()
	n.deliverWG.Wait()
	// The loop has stopped, so no append can race the store closing; the
	// final sync makes even SyncNone logs durable across a graceful stop.
	if n.opts.Store != nil {
		if serr := n.opts.Store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

func (n *Node) shutdownLoop() {
	close(n.quit)
	n.wg.Wait()
}

// timerState tracks one armed timer.
type timerState struct {
	gen   uint64
	timer *time.Timer
}

// nodeEnv implements engine.Env on real time.
type nodeEnv struct {
	node     *Node
	start    time.Time
	counters trace.Counters

	mu     sync.Mutex
	timers map[engine.TimerID]*timerState
}

var _ engine.Env = (*nodeEnv)(nil)

func (e *nodeEnv) Self() types.ProcessID     { return e.node.opts.Self }
func (e *nodeEnv) N() int                    { return e.node.opts.N }
func (e *nodeEnv) Now() time.Duration        { return time.Since(e.start) }
func (e *nodeEnv) Counters() *trace.Counters { return &e.counters }

func (e *nodeEnv) Send(to types.ProcessID, data []byte) {
	if to == e.node.opts.Self {
		return
	}
	// The channel-tagged frame lives in a pooled buffer: Transport.Send
	// must not retain its argument (the in-memory network copies, TCP
	// writes synchronously), so the buffer is recycled immediately.
	w := wire.GetWriter(1 + len(data))
	w.Uint8(chanEngine)
	w.Raw(data)
	e.counters.MsgsSent.Add(1)
	e.counters.BytesSent.Add(int64(len(data)))
	_ = e.node.tr.Send(to, w.Bytes()) // send failures = crash-stop message loss
	wire.PutWriter(w)
}

func (e *nodeEnv) SetTimer(id engine.TimerID, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.timers[id]
	if st == nil {
		st = &timerState{}
		e.timers[id] = st
	}
	st.gen++
	gen := st.gen
	if st.timer != nil {
		st.timer.Stop()
	}
	st.timer = time.AfterFunc(d, func() {
		e.node.post(func() {
			e.mu.Lock()
			live := e.timers[id] != nil && e.timers[id].gen == gen
			e.mu.Unlock()
			if live {
				e.node.eng.HandleTimer(id)
			}
		})
	})
}

func (e *nodeEnv) CancelTimer(id engine.TimerID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st := e.timers[id]; st != nil {
		st.gen++
		if st.timer != nil {
			st.timer.Stop()
		}
	}
}

func (e *nodeEnv) stopTimers() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.timers {
		st.gen++
		if st.timer != nil {
			st.timer.Stop()
		}
	}
}

func (e *nodeEnv) Deliver(d engine.Delivery) {
	// The state machine applies synchronously in the delivery path, before
	// streams observe the message — an Await that resolves implies the
	// local replica reflects the write (read-your-writes).
	if e.node.applier != nil {
		e.node.applier.Apply(d)
	}
	if d.Msg.ID.Sender == e.node.opts.Self {
		e.node.windowPulse()
	}
	e.node.hub.Publish(d)
}
