package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/transport"
	"modab/internal/types"
)

// group spins up n nodes over an in-memory network and records deliveries.
type group struct {
	nodes  []*Node
	mu     sync.Mutex
	orders [][]types.MsgID
}

func newGroup(t *testing.T, n int, stk types.Stack) *group {
	t.Helper()
	net := transport.NewMemNetwork()
	g := &group{orders: make([][]types.MsgID, n)}
	g.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		node, err := NewNode(Options{
			Self:      types.ProcessID(i),
			N:         n,
			Stack:     stk,
			Transport: net.Endpoint(types.ProcessID(i)),
			OnDeliver: func(d engine.Delivery) {
				g.mu.Lock()
				g.orders[i] = append(g.orders[i], d.Msg.ID)
				g.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		g.nodes[i] = node
	}
	t.Cleanup(func() {
		for _, nd := range g.nodes {
			_ = nd.Close()
		}
	})
	return g
}

// waitDelivered blocks until every node delivered want messages (or times
// out).
func (g *group) waitDelivered(t *testing.T, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		g.mu.Lock()
		done := true
		for _, o := range g.orders {
			if len(o) < want {
				done = false
			}
		}
		g.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			g.mu.Lock()
			counts := make([]int, len(g.orders))
			for i, o := range g.orders {
				counts[i] = len(o)
			}
			g.mu.Unlock()
			t.Fatalf("timeout waiting for %d deliveries; got %v", want, counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (g *group) checkTotalOrder(t *testing.T) {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	ref := g.orders[0]
	for p := 1; p < len(g.orders); p++ {
		if len(g.orders[p]) != len(ref) {
			t.Fatalf("node %d delivered %d, node 0 delivered %d", p, len(g.orders[p]), len(ref))
		}
		for i := range ref {
			if g.orders[p][i] != ref[i] {
				t.Fatalf("divergence at %d: node0=%v node%d=%v", i, ref[i], p, g.orders[p][i])
			}
		}
	}
}

func TestNodeTotalOrderMem(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		for _, n := range []int{3, 5} {
			stk, n := stk, n
			t.Run(fmt.Sprintf("%s/n=%d", stk, n), func(t *testing.T) {
				t.Parallel()
				g := newGroup(t, n, stk)
				const perProc = 20
				var wg sync.WaitGroup
				for i, node := range g.nodes {
					wg.Add(1)
					go func(i int, node *Node) {
						defer wg.Done()
						for j := 0; j < perProc; j++ {
							if _, err := node.AbcastBlocking([]byte(fmt.Sprintf("p%d-%d", i, j))); err != nil {
								t.Errorf("abcast: %v", err)
								return
							}
						}
					}(i, node)
				}
				wg.Wait()
				g.waitDelivered(t, n*perProc, 10*time.Second)
				g.checkTotalOrder(t)
			})
		}
	}
}
