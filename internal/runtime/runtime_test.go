package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/stream"
	"modab/internal/transport"
	"modab/internal/types"
)

// group spins up n nodes over an in-memory network and records deliveries.
type group struct {
	nodes  []*Node
	mu     sync.Mutex
	orders [][]types.MsgID
}

func newGroup(t *testing.T, n int, stk types.Stack) *group {
	t.Helper()
	net := transport.NewMemNetwork()
	g := &group{orders: make([][]types.MsgID, n)}
	g.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		node, err := NewNode(Options{
			Self:      types.ProcessID(i),
			N:         n,
			Stack:     stk,
			Transport: net.Endpoint(types.ProcessID(i)),
			OnDeliver: func(d engine.Delivery) {
				g.mu.Lock()
				g.orders[i] = append(g.orders[i], d.Msg.ID)
				g.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		g.nodes[i] = node
	}
	t.Cleanup(func() {
		for _, nd := range g.nodes {
			_ = nd.Close()
		}
	})
	return g
}

// waitDelivered blocks until every node delivered want messages (or times
// out).
func (g *group) waitDelivered(t *testing.T, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		g.mu.Lock()
		done := true
		for _, o := range g.orders {
			if len(o) < want {
				done = false
			}
		}
		g.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			g.mu.Lock()
			counts := make([]int, len(g.orders))
			for i, o := range g.orders {
				counts[i] = len(o)
			}
			g.mu.Unlock()
			t.Fatalf("timeout waiting for %d deliveries; got %v", want, counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (g *group) checkTotalOrder(t *testing.T) {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	ref := g.orders[0]
	for p := 1; p < len(g.orders); p++ {
		if len(g.orders[p]) != len(ref) {
			t.Fatalf("node %d delivered %d, node 0 delivered %d", p, len(g.orders[p]), len(ref))
		}
		for i := range ref {
			if g.orders[p][i] != ref[i] {
				t.Fatalf("divergence at %d: node0=%v node%d=%v", i, ref[i], p, g.orders[p][i])
			}
		}
	}
}

func TestNodeTotalOrderMem(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		for _, n := range []int{3, 5} {
			stk, n := stk, n
			t.Run(fmt.Sprintf("%s/n=%d", stk, n), func(t *testing.T) {
				t.Parallel()
				g := newGroup(t, n, stk)
				const perProc = 20
				var wg sync.WaitGroup
				for i, node := range g.nodes {
					wg.Add(1)
					go func(i int, node *Node) {
						defer wg.Done()
						for j := 0; j < perProc; j++ {
							if _, err := node.Abcast(context.Background(), []byte(fmt.Sprintf("p%d-%d", i, j))); err != nil {
								t.Errorf("abcast: %v", err)
								return
							}
						}
					}(i, node)
				}
				wg.Wait()
				g.waitDelivered(t, n*perProc, 10*time.Second)
				g.checkTotalOrder(t)
			})
		}
	}
}

// soloStuckNode starts one node of a 3-process group whose peers never
// come up: consensus cannot reach a majority, so nothing is ever
// adelivered and the flow-control window never drains.
func soloStuckNode(t *testing.T, window int) *Node {
	t.Helper()
	net := transport.NewMemNetwork()
	cfg := engine.DefaultConfig(3)
	cfg.Window = window
	node, err := NewNode(Options{
		Self:      0,
		N:         3,
		Stack:     types.Modular,
		Engine:    cfg,
		Transport: net.Endpoint(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node
}

// TestTryAbcastFlowControl pins the typed-error contract: ErrFlowControl
// surfaces only from TryAbcast, never from the blocking Abcast.
func TestTryAbcastFlowControl(t *testing.T) {
	node := soloStuckNode(t, 1)
	if _, err := node.TryAbcast([]byte("a")); err != nil {
		t.Fatalf("first try-abcast: %v", err)
	}
	if _, err := node.TryAbcast([]byte("b")); !errors.Is(err, types.ErrFlowControl) {
		t.Fatalf("second try-abcast: got %v, want ErrFlowControl", err)
	}
}

// TestAbcastContextCancelMidFlowControl submits against a full window
// and checks that Abcast returns promptly with the context's error — no
// busy-wait, no hang.
func TestAbcastContextCancelMidFlowControl(t *testing.T) {
	node := soloStuckNode(t, 1)
	if _, err := node.TryAbcast([]byte("fill")); err != nil {
		t.Fatalf("fill: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := node.Abcast(ctx, []byte("blocked"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, types.ErrFlowControl) {
		t.Fatal("blocking Abcast leaked ErrFlowControl")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Abcast took %v to honor the deadline", elapsed)
	}

	// Explicit cancellation behaves the same.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel2()
	}()
	if _, err := node.Abcast(ctx2, []byte("blocked2")); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestAbcastUnblocksOnWindowRoom checks the condition-broadcast wakeup:
// a blocked Abcast proceeds as soon as an own-message delivery frees the
// window, with no polling.
func TestAbcastUnblocksOnWindowRoom(t *testing.T) {
	net := transport.NewMemNetwork()
	cfg := engine.DefaultConfig(3)
	cfg.Window = 1
	nodes := make([]*Node, 3)
	for i := range nodes {
		node, err := NewNode(Options{
			Self:      types.ProcessID(i),
			N:         3,
			Stack:     types.Monolithic,
			Engine:    cfg,
			Transport: net.Endpoint(types.ProcessID(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	})
	// With Window=1, message k+1 can only be admitted after message k is
	// adelivered locally — every submission after the first must block
	// and then be woken by the delivery broadcast.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for j := 0; j < 10; j++ {
		if _, err := nodes[0].Abcast(ctx, []byte{byte(j)}); err != nil {
			t.Fatalf("abcast %d: %v", j, err)
		}
	}
}

// TestDeliveriesStream reads a node's adeliveries from the pull-based
// stream and checks content and order.
func TestDeliveriesStream(t *testing.T) {
	net := transport.NewMemNetwork()
	node, err := NewNode(Options{Self: 0, N: 1, Stack: types.Monolithic, Transport: net.Endpoint(0)})
	if err != nil {
		t.Fatal(err)
	}
	sub := node.Deliveries()
	const k = 5
	ids := make([]types.MsgID, 0, k)
	for j := 0; j < k; j++ {
		id, err := node.Abcast(context.Background(), []byte{byte(j)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for j := 0; j < k; j++ {
		select {
		case d := <-sub.C():
			if d.Msg.ID != ids[j] {
				t.Fatalf("position %d: got %v, want %v", j, d.Msg.ID, ids[j])
			}
			if len(d.Msg.Body) != 1 || d.Msg.Body[0] != byte(j) {
				t.Fatalf("position %d: body %v", j, d.Msg.Body)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delivery %d", j)
		}
	}
	// Closing the node ends the stream.
	_ = node.Close()
	select {
	case _, ok := <-sub.C():
		if ok {
			t.Fatal("unexpected extra delivery")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream not closed after node close")
	}
}

// TestDeliveriesOverflowDrop checks the drop policy: a subscriber that
// never reads loses deliveries, the losses are counted in
// trace.Counters.StreamDropped, and nothing is lost twice.
func TestDeliveriesOverflowDrop(t *testing.T) {
	net := transport.NewMemNetwork()
	node, err := NewNode(Options{Self: 0, N: 1, Stack: types.Monolithic, Transport: net.Endpoint(0)})
	if err != nil {
		t.Fatal(err)
	}
	sub := node.Deliveries(stream.WithBuffer(1), stream.WithPolicy(stream.Drop))
	const k = 30
	for j := 0; j < k; j++ {
		if _, err := node.Abcast(context.Background(), []byte{byte(j)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for node.Counters().ADeliver < k {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d delivered", node.Counters().ADeliver, k)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = node.Close()
	received := 0
	for range sub.C() {
		received++
	}
	dropped := node.Counters().StreamDropped
	if dropped == 0 {
		t.Fatal("no drops counted for an unread drop-policy subscriber")
	}
	if dropped != sub.Dropped() {
		t.Fatalf("trace counter %d != subscription counter %d", dropped, sub.Dropped())
	}
	if int64(received)+dropped != k {
		t.Fatalf("received %d + dropped %d != abcast %d", received, dropped, k)
	}
}

// TestSubscribeAfterNodeClose checks the documented semantics: a
// subscription taken after Close sees an immediately closed channel.
func TestSubscribeAfterNodeClose(t *testing.T) {
	net := transport.NewMemNetwork()
	node, err := NewNode(Options{Self: 0, N: 1, Stack: types.Modular, Transport: net.Endpoint(0)})
	if err != nil {
		t.Fatal(err)
	}
	_ = node.Close()
	sub := node.Deliveries()
	select {
	case _, ok := <-sub.C():
		if ok {
			t.Fatal("received a delivery from a closed node")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-close subscription channel not closed")
	}
	sub.Close() // safe no-op
}

// TestOnDeliverAdapterDrainsOnClose checks that the callback adapter
// delivers everything that was adelivered before Close returns.
func TestOnDeliverAdapterDrainsOnClose(t *testing.T) {
	net := transport.NewMemNetwork()
	var mu sync.Mutex
	var got int
	node, err := NewNode(Options{
		Self: 0, N: 1, Stack: types.Monolithic,
		Transport: net.Endpoint(0),
		OnDeliver: func(engine.Delivery) {
			mu.Lock()
			got++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	for j := 0; j < k; j++ {
		if _, err := node.Abcast(context.Background(), []byte{byte(j)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for node.Counters().ADeliver < k {
		if time.Now().After(deadline) {
			t.Fatal("deliveries never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = node.Close()
	mu.Lock()
	defer mu.Unlock()
	if got != k {
		t.Fatalf("callback saw %d of %d after Close", got, k)
	}
}
