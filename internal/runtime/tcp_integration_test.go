package runtime

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/transport"
	"modab/internal/types"
)

// tcpGroup starts n nodes over loopback TCP with dynamically bound ports.
func tcpGroup(t *testing.T, n int, stk types.Stack) ([]*Node, *[][]types.MsgID, *sync.Mutex) {
	t.Helper()
	// Bind all listeners on dynamic ports first, then exchange addresses.
	wildcard := make([]string, n)
	for i := range wildcard {
		wildcard[i] = "127.0.0.1:0"
	}
	trs := make([]*transport.TCP, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := transport.NewTCP(types.ProcessID(i), wildcard)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	for _, tr := range trs {
		tr.SetAddrs(addrs)
	}
	var mu sync.Mutex
	orders := make([][]types.MsgID, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		node, err := NewNode(Options{
			Self:      types.ProcessID(i),
			N:         n,
			Stack:     stk,
			Transport: trs[i],
			OnDeliver: func(d engine.Delivery) {
				mu.Lock()
				orders[i] = append(orders[i], d.Msg.ID)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			if nd != nil {
				_ = nd.Close()
			}
		}
	})
	return nodes, &orders, &mu
}

func TestTCPGroupTotalOrder(t *testing.T) {
	for _, stk := range []types.Stack{types.Modular, types.Monolithic} {
		stk := stk
		t.Run(stk.String(), func(t *testing.T) {
			const n, perProc = 3, 15
			nodes, orders, mu := tcpGroup(t, n, stk)
			var wg sync.WaitGroup
			for i, node := range nodes {
				wg.Add(1)
				go func(i int, node *Node) {
					defer wg.Done()
					for j := 0; j < perProc; j++ {
						if _, err := node.Abcast(context.Background(), []byte(fmt.Sprintf("%d-%d", i, j))); err != nil {
							t.Errorf("abcast: %v", err)
							return
						}
					}
				}(i, node)
			}
			wg.Wait()
			deadline := time.Now().Add(15 * time.Second)
			for {
				mu.Lock()
				done := true
				for _, o := range *orders {
					if len(o) < n*perProc {
						done = false
					}
				}
				mu.Unlock()
				if done {
					break
				}
				if time.Now().After(deadline) {
					mu.Lock()
					counts := []int{len((*orders)[0]), len((*orders)[1]), len((*orders)[2])}
					mu.Unlock()
					t.Fatalf("timeout; delivered %v of %d", counts, n*perProc)
				}
				time.Sleep(10 * time.Millisecond)
			}
			mu.Lock()
			defer mu.Unlock()
			ref := (*orders)[0]
			for p := 1; p < n; p++ {
				for i := range ref {
					if (*orders)[p][i] != ref[i] {
						t.Fatalf("divergence at %d", i)
					}
				}
			}
		})
	}
}

func TestTCPGroupCrashFailover(t *testing.T) {
	const n = 3
	nodes, orders, mu := tcpGroup(t, n, types.Modular)
	// Get some traffic through first.
	for j := 0; j < 5; j++ {
		if _, err := nodes[1].Abcast(context.Background(), []byte{byte(j)}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the coordinator.
	_ = nodes[0].Close()
	nodes[0] = nil
	// Survivors must keep ordering after suspicion kicks in.
	deadline := time.Now().Add(20 * time.Second)
	delivered := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len((*orders)[1])
	}
	before := delivered()
	for j := 0; j < 5; j++ {
		if _, err := nodes[1].Abcast(context.Background(), []byte{0xF0, byte(j)}); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout submitting after crash")
		}
	}
	for delivered() < before+5 {
		if time.Now().After(deadline) {
			t.Fatalf("no progress after crash: %d of %d", delivered(), before+5)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Survivor orders agree on the common prefix.
	mu.Lock()
	defer mu.Unlock()
	o1, o2 := (*orders)[1], (*orders)[2]
	m := len(o1)
	if len(o2) < m {
		m = len(o2)
	}
	for i := 0; i < m; i++ {
		if o1[i] != o2[i] {
			t.Fatalf("survivor divergence at %d", i)
		}
	}
}

func TestNodeLifecycle(t *testing.T) {
	net := transport.NewMemNetwork()
	node, err := NewNode(Options{
		Self: 0, N: 1, Stack: types.Monolithic,
		Transport: net.Endpoint(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.TryAbcast([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if _, err := node.TryAbcast([]byte("after close")); err != types.ErrStopped {
		t.Fatalf("try-abcast after close: %v", err)
	}
	if _, err := node.Abcast(context.Background(), []byte("after close")); err != types.ErrStopped {
		t.Fatalf("abcast after close: %v", err)
	}
}

func TestNodeValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	if _, err := NewNode(Options{Self: 0, N: 0, Stack: types.Modular, Transport: net.Endpoint(0)}); err == nil {
		t.Error("accepted empty group")
	}
	if _, err := NewNode(Options{Self: 0, N: 1, Stack: types.Modular}); err == nil {
		t.Error("accepted nil transport")
	}
	if _, err := NewNode(Options{Self: 0, N: 1, Stack: 0, Transport: net.Endpoint(1)}); err == nil {
		t.Error("accepted zero stack")
	}
}

func TestCountersExposed(t *testing.T) {
	net := transport.NewMemNetwork()
	node, err := NewNode(Options{Self: 0, N: 1, Stack: types.Modular, Transport: net.Endpoint(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := node.Abcast(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for node.Counters().ADeliver < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no delivery counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if node.Counters().ABCast != 1 {
		t.Fatalf("counters: %+v", node.Counters())
	}
}
