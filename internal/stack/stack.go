// Package stack is the microprotocol composition framework used by the
// modular atomic broadcast implementation (the role Cactus plays for
// Fortika in the paper).
//
// A stack is an ordered set of layers (microprotocols). Layers interact
// only through:
//
//   - typed service events dispatched by tag (e.g. abcast asks consensus
//     to propose; consensus notifies abcast of a decision) — every such
//     dispatch is counted, because crossing module boundaries is precisely
//     the overhead under study;
//   - the shared network service: each layer sends point-to-point messages
//     tagged with its own identity, and inbound frames are demultiplexed
//     back to the owning layer.
//
// Layers are black boxes to each other: no layer may reach into another's
// state, and the framework offers no way to do so. The monolithic
// implementation (internal/monolithic) does not use this package at all —
// that asymmetry is the experiment.
package stack

import (
	"fmt"
	"time"

	"modab/internal/engine"
	"modab/internal/types"
	"modab/internal/wire"
)

// Tag identifies a layer on the wire and as an event target.
type Tag uint8

// Wire tags of the modular stack's layers.
const (
	TagRBcast    Tag = 1
	TagConsensus Tag = 2
	TagABcast    Tag = 3
)

// String implements fmt.Stringer.
func (t Tag) String() string {
	switch t {
	case TagRBcast:
		return "rbcast"
	case TagConsensus:
		return "consensus"
	case TagABcast:
		return "abcast"
	default:
		return fmt.Sprintf("tag(%d)", uint8(t))
	}
}

// EventKind enumerates the inter-layer service events.
type EventKind uint8

// Service events exchanged between the modular layers.
const (
	// EvBroadcastReq asks the reliable broadcast layer to rbcast Data.
	EvBroadcastReq EventKind = iota + 1
	// EvRDeliver notifies the subscribing layer that Data was rdelivered
	// (From is the rbcast origin).
	EvRDeliver
	// EvProposeReq asks the consensus layer to propose Batch as the local
	// initial value of Instance.
	EvProposeReq
	// EvDecide notifies the subscribing layer that Instance decided Batch.
	EvDecide
	// EvConfig notifies the subscribing layer of a decided membership
	// change: Members is the new view's sorted member set, Instance its
	// activation instance (the first instance it governs). The abcast
	// layer — which processes decisions in total order — emits it to the
	// consensus and rbcast layers, so every layer switches quorum size
	// and relay topology at exactly the same boundary.
	EvConfig
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvBroadcastReq:
		return "broadcast-req"
	case EvRDeliver:
		return "rdeliver"
	case EvProposeReq:
		return "propose-req"
	case EvDecide:
		return "decide"
	case EvConfig:
		return "config"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one inter-layer service event. Fields beyond Kind are
// kind-specific; unused fields are zero.
type Event struct {
	Kind     EventKind
	From     types.ProcessID
	Instance uint64
	Data     []byte
	Batch    wire.Batch
	// Members carries the new view's sorted member set (EvConfig only).
	Members []types.ProcessID
}

// Layer is a microprotocol participating in a stack.
type Layer interface {
	// Tag returns the layer's wire and event-routing identity.
	Tag() Tag
	// Init hands the layer its context. Called once, before Start.
	Init(ctx *Context)
	// Start is called once after every layer is initialized.
	Start()
	// Event handles a service event addressed to this layer.
	Event(ev Event)
	// Receive handles a network message addressed to this layer.
	Receive(from types.ProcessID, data []byte) error
	// Timer fires a layer-local timer previously armed via Context.
	Timer(id engine.TimerID)
	// Suspect updates the failure-detector view.
	Suspect(p types.ProcessID, suspected bool)
}

// timerStride namespaces layer-local timer IDs into the engine-wide space.
const timerStride engine.TimerID = 1 << 20

// Stack composes layers and routes network frames, service events, timers
// and suspicions between them.
type Stack struct {
	env    engine.Env
	layers []Layer
	byTag  map[Tag]*Context
}

// New builds a stack from the given layers (any order; routing is by tag)
// and initializes them. It panics on duplicate tags — that is a
// programming error, not a runtime condition.
func New(env engine.Env, layers ...Layer) *Stack {
	s := &Stack{
		env:    env,
		layers: layers,
		byTag:  make(map[Tag]*Context, len(layers)),
	}
	for i, l := range layers {
		if _, dup := s.byTag[l.Tag()]; dup {
			panic(fmt.Sprintf("stack: duplicate layer tag %s", l.Tag()))
		}
		ctx := &Context{stack: s, layer: l, timerBase: timerStride * engine.TimerID(i+1)}
		s.byTag[l.Tag()] = ctx
		l.Init(ctx)
	}
	return s
}

// Start starts every layer in composition order.
func (s *Stack) Start() {
	for _, l := range s.layers {
		l.Start()
	}
}

// Receive demultiplexes one inbound network frame to its owning layer.
func (s *Stack) Receive(from types.ProcessID, data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("stack: empty frame from %s", from)
	}
	ctx, ok := s.byTag[Tag(data[0])]
	if !ok {
		return fmt.Errorf("stack: frame for unknown layer tag %d from %s", data[0], from)
	}
	s.env.Counters().Dispatches.Add(1)
	return ctx.layer.Receive(from, data[1:])
}

// Emit dispatches a service event to the layer with the given tag.
func (s *Stack) Emit(target Tag, ev Event) {
	ctx, ok := s.byTag[target]
	if !ok {
		panic(fmt.Sprintf("stack: event %s for unknown layer tag %s", ev.Kind, target))
	}
	s.env.Counters().Dispatches.Add(1)
	ctx.layer.Event(ev)
}

// HandleTimer routes an engine-wide timer ID back to the owning layer.
func (s *Stack) HandleTimer(id engine.TimerID) {
	idx := int(id/timerStride) - 1
	if idx < 0 || idx >= len(s.layers) {
		return // stale timer from a removed layer; ignore
	}
	s.env.Counters().Dispatches.Add(1)
	s.layers[idx].Timer(id % timerStride)
}

// Suspect fans a failure-detector change out to every layer.
func (s *Stack) Suspect(p types.ProcessID, suspected bool) {
	for _, l := range s.layers {
		s.env.Counters().Dispatches.Add(1)
		l.Suspect(p, suspected)
	}
}

// Context is a layer's handle on its stack: network service, event
// dispatch, timers, and the environment. Layers hold it from Init on.
type Context struct {
	stack     *Stack
	layer     Layer
	timerBase engine.TimerID
}

// Env exposes the driver environment (identity, clock, delivery upcall,
// counters).
func (c *Context) Env() engine.Env { return c.stack.env }

// Emit dispatches a service event to another layer.
func (c *Context) Emit(target Tag, ev Event) { c.stack.Emit(target, ev) }

// NetSend transmits a layer message to one peer over the quasi-reliable
// channel, framed with the layer's tag.
func (c *Context) NetSend(to types.ProcessID, payload []byte) {
	frame := make([]byte, 0, 1+len(payload))
	frame = append(frame, byte(c.layer.Tag()))
	frame = append(frame, payload...)
	c.stack.env.Send(to, frame)
}

// NetSendAll transmits a layer message to every process except the local
// one (n-1 sends).
func (c *Context) NetSendAll(payload []byte) {
	self := c.stack.env.Self()
	n := c.stack.env.N()
	frame := make([]byte, 0, 1+len(payload))
	frame = append(frame, byte(c.layer.Tag()))
	frame = append(frame, payload...)
	for p := 0; p < n; p++ {
		if types.ProcessID(p) == self {
			continue
		}
		c.stack.env.Send(types.ProcessID(p), frame)
	}
}

// NetSendMembers transmits a layer message to every process in members
// except the local one. Layers that track a dynamic view use it instead
// of NetSendAll, whose 0..N-1 fan-out assumes static membership.
func (c *Context) NetSendMembers(members []types.ProcessID, payload []byte) {
	self := c.stack.env.Self()
	frame := make([]byte, 0, 1+len(payload))
	frame = append(frame, byte(c.layer.Tag()))
	frame = append(frame, payload...)
	for _, p := range members {
		if p == self {
			continue
		}
		c.stack.env.Send(p, frame)
	}
}

// SetTimer arms a layer-local timer.
func (c *Context) SetTimer(id engine.TimerID, d time.Duration) {
	c.stack.env.SetTimer(c.timerBase+id, d)
}

// CancelTimer disarms a layer-local timer.
func (c *Context) CancelTimer(id engine.TimerID) {
	c.stack.env.CancelTimer(c.timerBase + id)
}
