package stack

import (
	"testing"
	"time"

	"modab/internal/engine"
	"modab/internal/enginetest"
	"modab/internal/types"
)

// recorderLayer records everything routed to it.
type recorderLayer struct {
	tag    Tag
	ctx    *Context
	events []Event
	recvs  []struct {
		from types.ProcessID
		data []byte
	}
	timers   []engine.TimerID
	suspects []types.ProcessID
	started  bool
}

var _ Layer = (*recorderLayer)(nil)

func (l *recorderLayer) Tag() Tag          { return l.tag }
func (l *recorderLayer) Init(ctx *Context) { l.ctx = ctx }
func (l *recorderLayer) Start()            { l.started = true }
func (l *recorderLayer) Event(ev Event)    { l.events = append(l.events, ev) }
func (l *recorderLayer) Timer(id engine.TimerID) {
	l.timers = append(l.timers, id)
}
func (l *recorderLayer) Suspect(p types.ProcessID, s bool) {
	if s {
		l.suspects = append(l.suspects, p)
	}
}
func (l *recorderLayer) Receive(from types.ProcessID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	l.recvs = append(l.recvs, struct {
		from types.ProcessID
		data []byte
	}{from, cp})
	return nil
}

func newTestStack(t *testing.T) (*enginetest.Env, *Stack, *recorderLayer, *recorderLayer) {
	t.Helper()
	env := enginetest.New(0, 3)
	a := &recorderLayer{tag: TagRBcast}
	b := &recorderLayer{tag: TagConsensus}
	s := New(env, a, b)
	return env, s, a, b
}

func TestStartReachesEveryLayer(t *testing.T) {
	_, s, a, b := newTestStack(t)
	s.Start()
	if !a.started || !b.started {
		t.Fatal("Start did not reach all layers")
	}
}

func TestNetworkDemux(t *testing.T) {
	env, s, a, b := newTestStack(t)
	frame := append([]byte{byte(TagConsensus)}, 1, 2, 3)
	if err := s.Receive(2, frame); err != nil {
		t.Fatal(err)
	}
	if len(b.recvs) != 1 || len(a.recvs) != 0 {
		t.Fatalf("misrouted: a=%d b=%d", len(a.recvs), len(b.recvs))
	}
	if b.recvs[0].from != 2 || string(b.recvs[0].data) != string([]byte{1, 2, 3}) {
		t.Fatalf("frame mangled: %+v", b.recvs[0])
	}
	if env.Cnt.Dispatches.Load() != 1 {
		t.Fatalf("demux dispatch count = %d", env.Cnt.Dispatches.Load())
	}
}

func TestReceiveErrors(t *testing.T) {
	_, s, _, _ := newTestStack(t)
	if err := s.Receive(1, nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if err := s.Receive(1, []byte{99, 1}); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestEmitRoutesAndCounts(t *testing.T) {
	env, s, a, _ := newTestStack(t)
	s.Emit(TagRBcast, Event{Kind: EvBroadcastReq, Data: []byte("x")})
	if len(a.events) != 1 || a.events[0].Kind != EvBroadcastReq {
		t.Fatalf("event not routed: %+v", a.events)
	}
	if env.Cnt.Dispatches.Load() != 1 {
		t.Fatalf("dispatch count = %d", env.Cnt.Dispatches.Load())
	}
}

func TestEmitUnknownTagPanics(t *testing.T) {
	_, s, _, _ := newTestStack(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown event target")
		}
	}()
	s.Emit(TagABcast, Event{Kind: EvDecide})
}

func TestDuplicateTagPanics(t *testing.T) {
	env := enginetest.New(0, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate tags")
		}
	}()
	New(env, &recorderLayer{tag: TagRBcast}, &recorderLayer{tag: TagRBcast})
}

func TestNetSendFramesWithTag(t *testing.T) {
	env, _, a, _ := newTestStack(t)
	a.ctx.NetSend(1, []byte{7, 8})
	if len(env.Sends) != 1 {
		t.Fatalf("sends = %d", len(env.Sends))
	}
	if env.Sends[0].To != 1 || env.Sends[0].Data[0] != byte(TagRBcast) {
		t.Fatalf("frame = %+v", env.Sends[0])
	}
	if string(env.Sends[0].Data[1:]) != string([]byte{7, 8}) {
		t.Fatalf("payload mangled")
	}
}

func TestNetSendAllSkipsSelf(t *testing.T) {
	env, _, a, _ := newTestStack(t)
	a.ctx.NetSendAll([]byte{1})
	if len(env.Sends) != 2 {
		t.Fatalf("sends = %d, want n-1 = 2", len(env.Sends))
	}
	for _, snd := range env.Sends {
		if snd.To == env.SelfID {
			t.Fatal("sent to self")
		}
	}
}

func TestTimerNamespacing(t *testing.T) {
	env, s, a, b := newTestStack(t)
	a.ctx.SetTimer(1, time.Second)
	b.ctx.SetTimer(1, time.Second)
	if len(env.Timers) != 2 || env.Timers[0].ID == env.Timers[1].ID {
		t.Fatalf("timer IDs collide: %+v", env.Timers)
	}
	// Route both back: each layer sees its LOCAL id.
	s.HandleTimer(env.Timers[0].ID)
	s.HandleTimer(env.Timers[1].ID)
	if len(a.timers) != 1 || a.timers[0] != 1 {
		t.Fatalf("layer a timers: %v", a.timers)
	}
	if len(b.timers) != 1 || b.timers[0] != 1 {
		t.Fatalf("layer b timers: %v", b.timers)
	}
	// A stale/foreign timer ID is ignored, not crashed on.
	s.HandleTimer(1 << 40)
}

func TestSuspectFansOut(t *testing.T) {
	_, s, a, b := newTestStack(t)
	s.Suspect(2, true)
	if len(a.suspects) != 1 || len(b.suspects) != 1 {
		t.Fatalf("suspicion fan-out: a=%v b=%v", a.suspects, b.suspects)
	}
}

func TestCancelTimerNamespaced(t *testing.T) {
	env, _, a, _ := newTestStack(t)
	a.ctx.SetTimer(2, time.Second)
	a.ctx.CancelTimer(2)
	if len(env.Timers) != 2 || !env.Timers[1].Canceled {
		t.Fatalf("cancel not recorded: %+v", env.Timers)
	}
	if env.Timers[0].ID != env.Timers[1].ID {
		t.Fatal("cancel used a different namespaced ID")
	}
}
