// Package stats provides the small statistical toolkit used by the
// benchmark harness: running mean/variance (Welford), 95% confidence
// intervals (the paper reports 95% CIs on all results), and sample series
// with percentiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single pass, numerically
// stably. The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for fewer than 2 points).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using Student's t quantile for the observed sample size.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return tQuantile95(w.n-1) * w.StdErr()
}

// String implements fmt.Stringer as "mean ± ci95 (n=..)".
func (w *Welford) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", w.Mean(), w.CI95(), w.N())
}

// tQuantile95 returns the two-sided 95% Student-t quantile for df degrees
// of freedom. Exact table for small df, asymptotic 1.96 beyond.
func tQuantile95(df int64) float64 {
	// Two-sided 0.95 quantiles, df = 1..30.
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return 0
	case df <= int64(len(table)):
		return table[df-1]
	case df <= 60:
		return 2.00
	case df <= 120:
		return 1.98
	default:
		return 1.96
	}
}

// Series collects raw samples for percentile queries. Unlike Welford it
// retains all points; use it for latency distributions.
type Series struct {
	xs     []float64
	sorted bool
}

// Add appends one sample.
func (s *Series) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of samples.
func (s *Series) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Welford converts the series into a Welford accumulator (for CI queries).
func (s *Series) Welford() *Welford {
	var w Welford
	for _, x := range s.xs {
		w.Add(x)
	}
	return &w
}

func (s *Series) sortInPlace() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between closest ranks. Returns 0 when empty.
func (s *Series) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortInPlace()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Series) Median() float64 { return s.Percentile(50) }

// Min returns the smallest sample (0 when empty).
func (s *Series) Min() float64 { return s.Percentile(0) }

// Max returns the largest sample (0 when empty).
func (s *Series) Max() float64 { return s.Percentile(100) }
