package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%100) + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			w.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(n - 1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 {
		t.Error("empty accumulator not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 || w.CI95() != 0 {
		t.Error("single observation stats wrong")
	}
	if w.N() != 1 {
		t.Errorf("N = %d", w.N())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Welford
	for i := 0; i < 10; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: n=10 %g vs n=1000 %g", small.CI95(), large.CI95())
	}
}

func TestTQuantileTable(t *testing.T) {
	cases := []struct {
		df   int64
		want float64
	}{{1, 12.706}, {5, 2.571}, {30, 2.042}, {50, 2.00}, {100, 1.98}, {1000, 1.96}}
	for _, c := range cases {
		if got := tQuantile95(c.df); got != c.want {
			t.Errorf("tQuantile95(%d) = %g, want %g", c.df, got, c.want)
		}
	}
}

func TestSeriesPercentiles(t *testing.T) {
	var s Series
	for i := 100; i >= 1; i-- { // reverse order on purpose
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Median = %g", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %g", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %g", got)
	}
	if got := s.Percentile(99); got < 99 || got > 100 {
		t.Errorf("P99 = %g", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %g", got)
	}
}

func TestSeriesPercentileMonotoneQuick(t *testing.T) {
	f := func(seed int64, p1, p2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Series
		for i := 0; i < 50; i++ {
			s.Add(rng.Float64() * 100)
		}
		lo, hi := float64(p1%101), float64(p2%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return s.Percentile(lo) <= s.Percentile(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Median() != 0 || s.N() != 0 {
		t.Error("empty series not zero")
	}
}

func TestSeriesWelfordConversion(t *testing.T) {
	var s Series
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	w := s.Welford()
	if w.Mean() != 2.5 || w.N() != 4 {
		t.Errorf("converted: mean=%g n=%d", w.Mean(), w.N())
	}
}
