// Package stream implements the pull-based delivery subscriptions behind
// Node.Deliveries, Group.Deliveries and Cluster.Deliveries: a Hub fans
// every published value out to any number of Subs, each with its own
// bounded buffer and an explicit overflow policy.
//
// Two policies exist, mirroring the two ways an application can lag
// behind the ordering layer:
//
//   - Block: the publisher (the protocol engine's event loop) blocks
//     until the subscriber drains — end-to-end backpressure. This is the
//     default: atomic broadcast throughput lives or dies on how ordering
//     hands batches to the application, and silently losing deliveries
//     would break state-machine replication.
//   - Drop: the value is discarded for that subscriber and counted (per
//     subscriber via Sub.Dropped, and globally via the hub's drop hook,
//     wired to trace.Counters.StreamDropped by the drivers). For
//     monitoring taps that prefer staleness over backpressure.
//
// A Sub owns one forwarding goroutine that moves values from its buffer
// to the channel returned by C. Closing the hub (driver shutdown) lets
// every subscriber drain what is already buffered and then closes their
// channels; closing a Sub (consumer cancellation) stops it immediately.
// Subscribing to a closed hub yields a Sub whose channel is already
// closed, so "range sub.C()" terminates at once.
package stream

import (
	"sync"
	"sync/atomic"
)

// Policy selects what Publish does when a subscriber's buffer is full.
type Policy int

const (
	// Block stalls the publisher until the subscriber makes room.
	Block Policy = iota
	// Drop discards the value for that subscriber and counts it.
	Drop
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	default:
		return "policy(?)"
	}
}

// DefaultBuffer is the per-subscriber buffer capacity used when a
// subscription does not specify one.
const DefaultBuffer = 256

// SubOption customizes one subscription.
type SubOption func(*subConfig)

type subConfig struct {
	buffer int
	policy Policy
	setPol bool
}

// WithBuffer sets the subscription's buffer capacity (values < 1 are
// clamped to 1).
func WithBuffer(n int) SubOption {
	return func(c *subConfig) { c.buffer = n }
}

// WithPolicy sets the subscription's overflow policy.
func WithPolicy(p Policy) SubOption {
	return func(c *subConfig) { c.policy = p; c.setPol = true }
}

// Hub fans published values out to subscribers. The zero value is not
// usable; call NewHub.
type Hub[T any] struct {
	mu     sync.Mutex
	subs   []*Sub[T] // replaced wholesale on change (copy-on-write)
	closed bool

	defBuffer int
	defPolicy Policy
	onDrop    func() // global drop hook (e.g. trace counter); may be nil
}

// NewHub creates a hub whose subscriptions default to the given buffer
// capacity and policy. onDrop, if non-nil, is invoked once per value
// dropped at any subscriber.
func NewHub[T any](defaultBuffer int, defaultPolicy Policy, onDrop func()) *Hub[T] {
	if defaultBuffer < 1 {
		defaultBuffer = DefaultBuffer
	}
	return &Hub[T]{defBuffer: defaultBuffer, defPolicy: defaultPolicy, onDrop: onDrop}
}

// Subscribe registers a new subscriber. Subscribing to a closed hub
// returns a subscription whose channel is already closed.
func (h *Hub[T]) Subscribe(opts ...SubOption) *Sub[T] {
	cfg := subConfig{buffer: h.defBuffer, policy: h.defPolicy}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.buffer < 1 {
		cfg.buffer = 1
	}
	s := &Sub[T]{
		hub:    h,
		buf:    make([]T, cfg.buffer),
		policy: cfg.policy,
		out:    make(chan T),
		quit:   make(chan struct{}),
		onDrop: h.onDrop,
	}
	s.cond = sync.NewCond(&s.mu)

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		s.closed = true
		close(s.out)
		return s
	}
	subs := make([]*Sub[T], len(h.subs)+1)
	copy(subs, h.subs)
	subs[len(h.subs)] = s
	h.subs = subs
	h.mu.Unlock()

	go s.forward()
	return s
}

// Publish fans v out to every subscriber, honoring each one's policy.
// Publishers must be externally serialized per ordering domain (the
// drivers publish from a single event loop per process), which is what
// preserves delivery order within each subscription.
func (h *Hub[T]) Publish(v T) {
	h.mu.Lock()
	subs := h.subs
	h.mu.Unlock()
	for _, s := range subs {
		s.publish(v)
	}
}

// HasSubscribers reports whether at least one subscription is active —
// a fast path so drivers can skip assembling events nobody listens to.
func (h *Hub[T]) HasSubscribers() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) > 0
}

// Close shuts the hub down: no further values are accepted, every
// subscriber drains what is buffered and then sees its channel closed.
// Close is idempotent and safe to call concurrently with Publish.
func (h *Hub[T]) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := h.subs
	h.subs = nil
	h.mu.Unlock()
	for _, s := range subs {
		s.shutdown()
	}
}

// remove detaches s from the hub's fan-out list.
func (h *Hub[T]) remove(s *Sub[T]) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, cur := range h.subs {
		if cur == s {
			subs := make([]*Sub[T], 0, len(h.subs)-1)
			subs = append(subs, h.subs[:i]...)
			subs = append(subs, h.subs[i+1:]...)
			h.subs = subs
			return
		}
	}
}

// Sub is one delivery subscription: a bounded ring buffer between the
// publisher and the channel returned by C.
type Sub[T any] struct {
	hub    *Hub[T]
	policy Policy
	onDrop func()

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []T // ring of cap(buf)
	head   int // index of oldest buffered value
	count  int
	closed bool // no further publishes are accepted

	out     chan T
	quit    chan struct{} // closed by Close (consumer cancellation)
	once    sync.Once
	dropped atomic.Int64
}

// C returns the subscription's delivery channel. It is closed after the
// hub shuts down and the buffer drains, or when Close is called — so
// "for v := range sub.C()" is the normal consumption loop.
func (s *Sub[T]) C() <-chan T { return s.out }

// Dropped returns how many values were discarded at this subscription
// under the Drop policy.
func (s *Sub[T]) Dropped() int64 { return s.dropped.Load() }

// Close cancels the subscription: it detaches from the hub, unblocks any
// stalled publisher, stops the forwarder and closes C. Buffered but
// unread values are discarded. Close is idempotent.
func (s *Sub[T]) Close() {
	s.once.Do(func() {
		s.hub.remove(s)
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
		close(s.quit)
	})
}

// shutdown is the hub-side close: stop accepting values but let the
// forwarder drain the buffer before closing the channel.
func (s *Sub[T]) shutdown() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// publish offers one value according to the policy. It is a no-op on a
// closed subscription.
func (s *Sub[T]) publish(v T) {
	s.mu.Lock()
	if s.policy == Block {
		for s.count == len(s.buf) && !s.closed {
			s.cond.Wait()
		}
	}
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.count == len(s.buf) { // Drop policy, full buffer
		s.mu.Unlock()
		s.dropped.Add(1)
		if s.onDrop != nil {
			s.onDrop()
		}
		return
	}
	s.buf[(s.head+s.count)%len(s.buf)] = v
	s.count++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// forward moves buffered values to the consumer channel. It is the sole
// sender on s.out, which makes closing it race-free.
func (s *Sub[T]) forward() {
	for {
		s.mu.Lock()
		for s.count == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.count == 0 { // closed and drained
			s.mu.Unlock()
			close(s.out)
			return
		}
		v := s.buf[s.head]
		var zero T
		s.buf[s.head] = zero
		s.head = (s.head + 1) % len(s.buf)
		s.count--
		s.cond.Broadcast()
		s.mu.Unlock()

		select {
		case s.out <- v:
		case <-s.quit:
			close(s.out)
			return
		}
	}
}
