package stream

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFanOutOrder(t *testing.T) {
	h := NewHub[int](8, Block, nil)
	a := h.Subscribe()
	b := h.Subscribe(WithBuffer(4))
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			h.Publish(i)
		}
		h.Close()
	}()
	// Both subscribers use the Block policy, so they must drain
	// concurrently: the publisher stalls on whichever lags.
	var wg sync.WaitGroup
	for name, sub := range map[string]*Sub[int]{"a": a, "b": b} {
		wg.Add(1)
		go func(name string, sub *Sub[int]) {
			defer wg.Done()
			i := 0
			for v := range sub.C() {
				if v != i {
					t.Errorf("%s: got %d at position %d", name, v, i)
					return
				}
				i++
			}
			if i != n {
				t.Errorf("%s: received %d of %d", name, i, n)
			}
		}(name, sub)
	}
	wg.Wait()
}

func TestBlockPolicyBackpressure(t *testing.T) {
	h := NewHub[int](1, Block, nil)
	sub := h.Subscribe()
	done := make(chan struct{})
	var published atomic.Int64
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			h.Publish(i)
			published.Add(1)
		}
	}()
	// Buffer 1: the publisher must stall after ~2 values (1 buffered +
	// 1 in the forwarder's hand) until the consumer reads.
	time.Sleep(50 * time.Millisecond)
	if got := published.Load(); got >= 3 {
		t.Fatalf("publisher not blocked: published %d with no consumer", got)
	}
	var got []int
	for v := range sub.C() {
		got = append(got, v)
		if len(got) == 3 {
			break
		}
	}
	<-done
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("consumed %v", got)
	}
	sub.Close()
}

func TestDropPolicyCounts(t *testing.T) {
	var hubDrops atomic.Int64
	h := NewHub[int](2, Drop, func() { hubDrops.Add(1) })
	sub := h.Subscribe()
	// Nobody consumes: forwarder takes one value, buffer holds two, the
	// rest must be dropped and counted.
	const n = 10
	for i := 0; i < n; i++ {
		h.Publish(i)
	}
	// The forwarder may race the first publishes; dropped + deliverable
	// must account for every publish.
	deadline := time.Now().Add(2 * time.Second)
	for sub.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sub.Dropped() == 0 {
		t.Fatal("no drops recorded with a full buffer and no consumer")
	}
	if hubDrops.Load() != sub.Dropped() {
		t.Fatalf("hub hook %d != sub dropped %d", hubDrops.Load(), sub.Dropped())
	}
	h.Close()
	var got int
	for range sub.C() {
		got++
	}
	if int64(got)+sub.Dropped() != n {
		t.Fatalf("delivered %d + dropped %d != published %d", got, sub.Dropped(), n)
	}
}

func TestSubscribeAfterClose(t *testing.T) {
	h := NewHub[string](4, Block, nil)
	h.Close()
	sub := h.Subscribe()
	select {
	case _, ok := <-sub.C():
		if ok {
			t.Fatal("received a value from a closed hub")
		}
	case <-time.After(time.Second):
		t.Fatal("channel of post-close subscription not closed")
	}
	sub.Close() // must be a safe no-op
}

func TestHubCloseDrainsBuffered(t *testing.T) {
	h := NewHub[int](16, Block, nil)
	sub := h.Subscribe()
	for i := 0; i < 5; i++ {
		h.Publish(i)
	}
	h.Close()
	var got []int
	for v := range sub.C() {
		got = append(got, v)
	}
	if len(got) != 5 {
		t.Fatalf("drained %d of 5 buffered values: %v", len(got), got)
	}
}

func TestSubCloseUnblocksPublisher(t *testing.T) {
	h := NewHub[int](1, Block, nil)
	sub := h.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			h.Publish(i)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the publisher hit the full buffer
	sub.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher still blocked after subscriber closed")
	}
	if h.HasSubscribers() {
		t.Fatal("closed subscription still registered")
	}
}

func TestConcurrentSubscribeCloseRace(t *testing.T) {
	h := NewHub[int](4, Drop, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Publish(i)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		sub := h.Subscribe()
		go func() {
			for range sub.C() {
			}
		}()
		sub.Close()
	}
	close(stop)
	wg.Wait()
	h.Close()
}
