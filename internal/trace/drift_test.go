package trace

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// counterFieldNames returns the names of every atomic.Int64 field of
// Counters — the set the three hand-maintained mirrors (Snapshot struct,
// Counters.Snapshot, Snapshot.Add) must each cover.
func counterFieldNames(t *testing.T) []string {
	t.Helper()
	ct := reflect.TypeOf(Counters{})
	atomicInt64 := reflect.TypeOf(atomic.Int64{})
	var names []string
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		if f.Type != atomicInt64 {
			t.Fatalf("Counters.%s is %s; every counter must be an atomic.Int64", f.Name, f.Type)
		}
		names = append(names, f.Name)
	}
	return names
}

// TestSnapshotCoversEveryCounter catches the drift bug this package
// invites: adding a counter to Counters but forgetting one of its three
// hand-maintained mirrors. The Snapshot struct must declare exactly the
// counter fields, and Counters.Snapshot must actually load each one.
func TestSnapshotCoversEveryCounter(t *testing.T) {
	names := counterFieldNames(t)

	st := reflect.TypeOf(Snapshot{})
	snapFields := map[string]bool{}
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			t.Errorf("Snapshot.%s is %s, want int64", f.Name, f.Type)
		}
		snapFields[f.Name] = true
	}
	for _, n := range names {
		if !snapFields[n] {
			t.Errorf("Counters.%s has no Snapshot field", n)
		}
		delete(snapFields, n)
	}
	for n := range snapFields {
		t.Errorf("Snapshot.%s has no Counters field", n)
	}

	// Behavioral half: give every counter a distinct value and check it
	// survives into the snapshot — a Snapshot() missing one Load line
	// passes the structural check above but fails here.
	var c Counters
	cv := reflect.ValueOf(&c).Elem()
	for i, n := range names {
		cv.FieldByName(n).Addr().Interface().(*atomic.Int64).Store(int64(i + 1))
	}
	sv := reflect.ValueOf(c.Snapshot())
	for i, n := range names {
		if got := sv.FieldByName(n).Int(); got != int64(i+1) {
			t.Errorf("Snapshot().%s = %d, want %d (Counters.Snapshot drifted)", n, got, i+1)
		}
	}
}

// TestAddCoversEveryCounter checks the third mirror: Snapshot.Add must
// accumulate every field — as a sum, except the pipeline-depth
// high-water mark, which aggregates as a max.
func TestAddCoversEveryCounter(t *testing.T) {
	names := counterFieldNames(t)

	var src Snapshot
	srcv := reflect.ValueOf(&src).Elem()
	for i, n := range names {
		srcv.FieldByName(n).SetInt(int64(i + 1))
	}
	var total Snapshot
	total.Add(src)
	total.Add(src)
	tv := reflect.ValueOf(total)
	for i, n := range names {
		want := int64(2 * (i + 1))
		if n == "PipelineDepthObserved" {
			want = int64(i + 1) // max of two equal observations
		}
		if got := tv.FieldByName(n).Int(); got != want {
			t.Errorf("after two Adds, %s = %d, want %d (Snapshot.Add drifted)", n, got, want)
		}
	}
}
